(* Fault-tolerance profile of flooding on an LHG: sweep the number of
   crashed nodes from 0 past the design threshold k-1 and watch the
   delivery guarantee hold exactly up to it, then degrade gracefully —
   while a spanning tree falls apart immediately.

   Run with: dune exec examples/failure_resilience.exe *)

let n = 302
let k = 4
let trials = 40

let () =
  let lhg = (Lhg_core.Build.kdiamond_exn ~n ~k).Lhg_core.Build.graph in
  let tree =
    let rng = Graph_core.Prng.create ~seed:5 in
    Topo.Spanning_tree.random_spanning_tree rng lhg
  in
  Printf.printf "flooding resilience on LHG(%d,%d) vs spanning tree; %d trials per point\n\n" n k
    trials;
  Printf.printf "%8s | %12s %10s | %12s %10s\n" "crashes" "LHG cover%" "all-ok%" "tree cover%"
    "all-ok%";
  for crash_count = 0 to 2 * k do
    let a = Flood.Runner.flood_trials_env ~env:(Flood.Env.make ~seed:11 ()) ~graph:lhg ~source:0 ~crash_count ~trials () in
    let t = Flood.Runner.flood_trials_env ~env:(Flood.Env.make ~seed:11 ()) ~graph:tree ~source:0 ~crash_count ~trials () in
    Printf.printf "%8d | %11.2f%% %9.0f%% | %11.2f%% %9.0f%%%s\n" crash_count
      (100.0 *. a.Flood.Runner.mean_coverage)
      (100.0 *. a.Flood.Runner.all_covered_fraction)
      (100.0 *. t.Flood.Runner.mean_coverage)
      (100.0 *. t.Flood.Runner.all_covered_fraction)
      (if crash_count = k - 1 then "   <- design threshold k-1" else "")
  done;
  print_newline ();

  (* link failures: the same guarantee holds for k-1 failed links *)
  Printf.printf "%8s | %12s %10s\n" "links" "LHG cover%" "all-ok%";
  for link_failures = 0 to 2 * k do
    let a =
      Flood.Runner.flood_trials_env ~env:(Flood.Env.make ~seed:13 ()) ~link_failures ~graph:lhg ~source:0 ~crash_count:0 ~trials ()
    in
    Printf.printf "%8d | %11.2f%% %9.0f%%%s\n" link_failures
      (100.0 *. a.Flood.Runner.mean_coverage)
      (100.0 *. a.Flood.Runner.all_covered_fraction)
      (if link_failures = k - 1 then "   <- design threshold k-1" else "")
  done;
  Printf.printf
    "\nCoverage is exactly 100%% of survivors for every trial with <= %d failures\n\
     (Menger: k disjoint paths), and degrades only statistically beyond.\n"
    (k - 1)
