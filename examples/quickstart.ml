(* Quickstart: build an LHG, verify the four defining properties, flood it.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let n = 46 and k = 4 in

  (* 1. Build a Logarithmic Harary Graph for (n, k). K-DIAMOND succeeds
     for every n >= 2k and gives a k-regular graph whenever
     (n - 2k) mod (k-1) = 0. *)
  let lhg =
    match Lhg_core.Build.kdiamond ~n ~k with
    | Ok b -> b
    | Error e -> failwith (Lhg_core.Build.error_to_string e)
  in
  let g = lhg.Lhg_core.Build.graph in
  Printf.printf "built LHG(%d,%d): %d vertices, %d edges\n" n k (Graph_core.Graph.n g)
    (Graph_core.Graph.m g);

  (* 2. Verify P1-P4 independently with max-flow machinery. *)
  let report = Lhg_core.Verify.verify g ~k in
  Format.printf "%a@." Lhg_core.Verify.pp_report report;
  assert (Lhg_core.Verify.is_lhg g ~k);

  (* 3. Compare with the classic Harary graph H(k,n): same edge economy,
     but linear diameter. *)
  let h = Harary.make ~k ~n in
  let diam graph =
    match Graph_core.Paths.diameter graph with Some d -> d | None -> -1
  in
  Printf.printf "diameter: LHG = %d, classic Harary = %d\n" (diam g) (diam h);

  (* 4. Flood the network from node 0 and watch it reach everyone. *)
  let r = Flood.Flooding.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  Printf.printf "flooding: %d messages, %d rounds, covered everyone: %b\n"
    r.Flood.Flooding.messages_sent r.Flood.Flooding.max_hops r.Flood.Flooding.covers_all_alive;

  (* 5. Crash any k-1 = 3 nodes: delivery to all survivors is guaranteed. *)
  let r = Flood.Flooding.run_env ~env:(Flood.Env.make ~crashed:[ 7; 21; 40 ] ()) ~graph:g ~source:0 () in
  Printf.printf "with 3 crashes: covered all survivors: %b\n" r.Flood.Flooding.covers_all_alive;

  (* 6. Export for graphviz, coloured by construction role (root copies,
     internal copies per tree, shared leaves, cliques). *)
  Lhg_core.Viz.write_file ~path:"lhg_quickstart.dot" lhg;
  print_endline "wrote lhg_quickstart.dot (render with: dot -Tsvg lhg_quickstart.dot)"
