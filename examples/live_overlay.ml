(* A living overlay: peers join one by one through the incremental
   proof-step operations while the system keeps broadcasting — the
   integration of the existence theory (joins possible at EVERY size),
   the O(k^2) maintenance cost, and the flooding guarantee.

   Run with: dune exec examples/live_overlay.exe *)

module Graph = Graph_core.Graph
module Incremental = Overlay.Incremental

let k = 4

let () =
  let overlay = Incremental.start ~k () in
  Printf.printf "bootstrapped LHG overlay with %d peers (k = %d)\n\n" (Incremental.n overlay) k;
  Printf.printf "%6s %18s %8s %8s | %8s %9s %10s\n" "n" "op" "+edges" "-edges" "regular"
    "flood-ok" "rounds";
  let epochs = [ 12; 20; 40; 80; 160; 320 ] in
  let next_epoch = ref epochs in
  let total_ops = ref 0 in
  while Incremental.n overlay < 320 do
    let r = Incremental.join overlay in
    incr total_ops;
    let n = Incremental.n overlay in
    match !next_epoch with
    | target :: rest when n = target ->
        next_epoch := rest;
        let g = Incremental.graph overlay in
        (* broadcast with k-1 random crashes at every epoch *)
        let rng = Graph_core.Prng.create ~seed:n in
        let crashed = Flood.Runner.random_crashes rng ~n ~count:(k - 1) ~avoid:0 in
        let f = Flood.Flooding.run_env ~env:(Flood.Env.make ~crashed ~seed:n ()) ~graph:g ~source:0 () in
        Printf.printf "%6d %18s %8d %8d | %8b %9b %10d\n" n
          (Incremental.op_name r.Incremental.op)
          r.Incremental.edges_added r.Incremental.edges_removed
          (Graph_core.Degree.is_k_regular g ~k)
          f.Flood.Flooding.covers_all_alive f.Flood.Flooding.max_hops
    | _ -> ()
  done;
  let g = Incremental.graph overlay in
  Printf.printf
    "\nfinal: %d peers, %d edges; %d joins cost %d rewired edges total (%.1f per join)\n"
    (Graph.n g) (Graph.m g) !total_ops
    (Incremental.total_rewired overlay)
    (float_of_int (Incremental.total_rewired overlay) /. float_of_int !total_ops);
  Printf.printf "verifier: %s\n"
    (if Lhg_core.Verify.is_lhg ~check_minimality:false g ~k then
       "the grown overlay is a Logarithmic Harary Graph"
     else "NOT an LHG (bug!)");
  (* flooding latency stayed logarithmic throughout: compare ends *)
  let rounds n' =
    let b = Lhg_core.Build.kdiamond_exn ~n:n' ~k in
    (Flood.Sync.flood_env ~env:Flood.Env.default b.Lhg_core.Build.graph ~source:0).Flood.Sync.rounds
  in
  Printf.printf "canonical build at n=320 floods in %d rounds; the grown overlay in %d\n"
    (rounds 320)
    (Flood.Sync.flood_env ~env:Flood.Env.default g ~source:0).Flood.Sync.rounds
