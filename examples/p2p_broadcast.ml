(* A peer-to-peer event-dissemination scenario — the workload the paper's
   introduction motivates.

   A tracker must push an update to 500 peers. Peers crash; links are
   lossy and have heterogeneous latency. We compare four overlays at
   equal (or better) degree budgets:

   - LHG (K-DIAMOND, k=4): deterministic delivery under <= 3 failures
   - classic Harary H(4,n): same guarantee, linear latency
   - random expander (degree 4): good latency, probabilistic guarantee
   - BFS spanning tree: minimal messages, no fault tolerance

   Run with: dune exec examples/p2p_broadcast.exe *)

module Graph = Graph_core.Graph

let n = 500
let k = 4
let crash_count = 3 (* anything <= k-1 keeps the LHG guarantee *)
let trials = 20

let overlays () =
  let rng = Graph_core.Prng.create ~seed:2024 in
  let lhg = (Lhg_core.Build.kdiamond_exn ~n ~k).Lhg_core.Build.graph in
  let harary = Harary.make ~k ~n in
  let expander = Topo.Expander.random_regular rng ~n ~degree:k in
  let tree = Topo.Spanning_tree.bfs_tree expander ~root:0 in
  [ ("LHG (K-DIAMOND)", lhg); ("Harary H(k,n)", harary); ("random expander", expander);
    ("spanning tree", tree) ]

let () =
  Printf.printf "p2p broadcast: n=%d, k=%d, %d random crashes, %d trials\n" n k crash_count trials;
  Printf.printf "WAN latency: uniform in [1,3); per-message loss 0.5%%\n\n";
  Printf.printf "%-18s %8s %8s %10s %10s %12s\n" "overlay" "edges" "diam" "coverage"
    "all-ok%" "msgs/trial";
  let latency = Netsim.Network.uniform_latency ~lo:1.0 ~hi:3.0 in
  List.iter
    (fun (name, g) ->
      let agg =
        Flood.Runner.flood_trials_env ~env:(Flood.Env.make ~latency ~loss_rate:0.005 ~seed:7 ()) ~graph:g ~source:0 ~crash_count ~trials ()
      in
      let diam =
        match Graph_core.Paths.diameter g with Some d -> string_of_int d | None -> "inf"
      in
      Printf.printf "%-18s %8d %8s %9.1f%% %9.0f%% %12.0f\n" name (Graph.m g) diam
        (100.0 *. agg.Flood.Runner.mean_coverage)
        (100.0 *. agg.Flood.Runner.all_covered_fraction)
        agg.Flood.Runner.mean_messages)
    (overlays ());
  print_newline ();

  (* The gossip alternative needs several times more messages for a
     weaker, probabilistic guarantee. *)
  let lhg = List.assoc "LHG (K-DIAMOND)" (overlays ()) in
  let agg =
    Flood.Runner.gossip_trials_env ~env:(Flood.Env.make ~loss_rate:0.005 ~seed:8 ()) ~graph:lhg ~source:0 ~fanout:k ~crash_count ~trials ()
  in
  Printf.printf "gossip on the same LHG (fanout %d): coverage %.1f%%, all-ok %.0f%%, msgs %.0f\n" k
    (100.0 *. agg.Flood.Runner.mean_coverage)
    (100.0 *. agg.Flood.Runner.all_covered_fraction)
    agg.Flood.Runner.mean_messages;
  Printf.printf
    "\nLHG matches Harary's guarantee at logarithmic latency, and beats\ngossip on both message count and certainty.\n"
