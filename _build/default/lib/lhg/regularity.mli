(** Characteristic regularity functions REG_Π(n,k).

    REG_Π(n,k) is true iff a *k-regular* LHG exists for (n,k) under
    constraint Π — the minimum-edge, i.e. cheapest-flooding, case.

    Theorem 3: REG_KTREE(n,k) ⇔ n = 2k + 2α(k−1).
    Theorem 6: REG_KDIAMOND(n,k) ⇔ n = 2k + α(k−1).
    Corollary 2 / Theorem 7: REG_KTREE ⇒ REG_KDIAMOND, and the odd-α
    values of K-DIAMOND give infinitely many pairs where only K-DIAMOND
    yields a regular graph. *)

val reg_ktree : n:int -> k:int -> bool

val reg_kdiamond : n:int -> k:int -> bool

val kdiamond_only : n:int -> k:int -> bool
(** The Theorem-7 set: REG_KDIAMOND true, REG_KTREE false. *)

val regular_sizes_ktree : k:int -> max_n:int -> int list
(** All n ≤ max_n with REG_KTREE(n,k). *)

val regular_sizes_kdiamond : k:int -> max_n:int -> int list
