module Graph = Graph_core.Graph

let height (b : Build.t) =
  let shape = b.Build.shape in
  List.fold_left (fun acc l -> max acc (Shape.depth shape l)) 0 (Shape.leaves shape)

let max_route_length b = (4 * (height b + 1)) + 4

(* Tree path between two shape nodes as a node list (inclusive):
   root-first ancestor chains, strip the common prefix, join at the
   last common ancestor. *)
let tree_path shape a b =
  let chain n =
    let rec go n acc = if n < 0 then acc else go (Shape.parent shape n) (n :: acc) in
    go n []
  in
  let rec strip lca ca cb =
    match (ca, cb) with
    | x :: ca', y :: cb' when x = y -> strip x ca' cb'
    | _ -> (lca, ca, cb)
  in
  let lca, below_a, below_b = strip (-1) (chain a) (chain b) in
  if lca < 0 then invalid_arg "Route.tree_path: nodes in different trees";
  List.rev below_a @ (lca :: below_b)

(* Nearest descendant leaf by following first regular children. *)
let rec descend_to_leaf shape node acc =
  if Shape.is_leaf shape node then (node, List.rev acc)
  else
    match Shape.regular_children shape node with
    | child :: _ -> descend_to_leaf shape child (child :: acc)
    | [] -> invalid_arg "Route: non-leaf without regular children (corrupt shape)"

(* Map a shape node to its vertex as seen from [copy]. *)
let vertex_in (b : Build.t) node ~copy = Realize.vertex_of b.Build.layout ~node ~copy

(* Entry of vertex [v] (at shape position (node, own_copy)) into tree
   copy [copy]: the vertex prefix (starting at v) and the shape node at
   which the copy-[copy] tree is joined. *)
let entry (b : Build.t) ~node ~own_copy ~copy v =
  let shape = b.Build.shape in
  match Shape.kind shape node with
  | Shape.Shared_leaf | Shape.Added_leaf -> ([ v ], node)
  | Shape.Unshared_leaf ->
      if own_copy = copy then ([ v ], node)
      else ([ v; vertex_in b node ~copy ], node) (* clique hop *)
  | Shape.Root | Shape.Internal ->
      if own_copy = copy then ([ v ], node)
      else begin
        (* descend inside own copy to the nearest shared junction *)
        let leaf, path_nodes = descend_to_leaf shape node [] in
        let descent = v :: List.map (fun nd -> vertex_in b nd ~copy:own_copy) path_nodes in
        match Shape.kind shape leaf with
        | Shape.Unshared_leaf ->
            (* descent ends on own copy's clique member; hop to copy's *)
            (descent @ [ vertex_in b leaf ~copy ], leaf)
        | Shape.Shared_leaf | Shape.Added_leaf -> (descent, leaf)
        | Shape.Root | Shape.Internal -> assert false
      end

(* Remove loops: keep the segment up to the *last* occurrence of any
   repeated vertex. *)
let simplify path =
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest ->
        if List.mem v acc then
          let rec unwind = function w :: tl when w <> v -> unwind tl | tl -> tl in
          go (unwind acc) rest
        else go (v :: acc) rest
  in
  go [] path

let dedup_consecutive path =
  let rec go = function
    | a :: (b :: _ as rest) -> if a = b then go rest else a :: go rest
    | tail -> tail
  in
  go path

let via_copy (b : Build.t) ~src ~dst ~copy =
  let n = Graph.n b.Build.graph in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Route.via_copy: vertex out of range";
  if copy < 0 || copy >= b.Build.k then invalid_arg "Route.via_copy: copy out of range";
  if src = dst then [ src ]
  else begin
    let shape = b.Build.shape in
    let node_of v = Realize.shape_node_of_vertex b.Build.layout ~n_vertices:n v in
    let nu, cu = node_of src in
    let nv, cv = node_of dst in
    let prefix, enter_node = entry b ~node:nu ~own_copy:cu ~copy src in
    let suffix_rev, exit_node = entry b ~node:nv ~own_copy:cv ~copy dst in
    let middle_nodes = tree_path shape enter_node exit_node in
    let middle = List.map (fun nd -> vertex_in b nd ~copy) middle_nodes in
    dedup_consecutive (simplify (prefix @ middle @ List.rev suffix_rev))
  end

let all_routes b ~src ~dst =
  List.sort_uniq compare (List.init b.Build.k (fun copy -> via_copy b ~src ~dst ~copy))

let route ?avoid (b : Build.t) ~src ~dst =
  let ok path =
    match avoid with
    | None -> true
    | Some mask -> List.for_all (fun v -> not mask.(v)) path
  in
  let structured = List.find_opt ok (List.init b.Build.k (fun copy -> via_copy b ~src ~dst ~copy)) in
  match structured with
  | Some p -> Some p
  | None ->
      let alive =
        match avoid with
        | None -> None
        | Some mask -> Some (Array.map not mask)
      in
      Graph_core.Bfs.path ?alive b.Build.graph ~src ~dst
