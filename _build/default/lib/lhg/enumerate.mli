(** Enumeration of K-TREE witnesses.

    For a pair (n,k) the skeleton (α breadth-first conversions) is
    forced, but the j added leaves may sit on any node just above the
    leaves, up to 2k−3 per host (rule 3d) — every distribution is a
    distinct valid witness realising a (generally) different graph.
    This module counts and materialises them: the "how much freedom does
    the constraint leave" question, and a fuzzing source of
    non-canonical LHGs for the verifier. *)

val count_ktree : n:int -> k:int -> int
(** Number of added-leaf distributions (bounded compositions of j over
    the above-leaf hosts with per-host cap 2k−3); 0 when no witness
    exists, 1 when j = 0. Computed by dynamic programming — beware the
    count grows quickly with j and host count. *)

val iter_ktree : ?limit:int -> n:int -> k:int -> (Build.t -> unit) -> int
(** Materialise witnesses one by one (at most [limit], default 1000) and
    return how many were produced. Each carries its own shape; all share
    the same skeleton. *)

val distinct_graphs : ?limit:int -> n:int -> k:int -> unit -> int
(** Number of distinct realised graphs among the first [limit]
    enumerated witnesses (exact equality of labelled graphs, not
    isomorphism). *)
