(** The tree T underlying every LHG construction.

    Jenkins & Demers build an LHG as k copies of a tree pasted together
    at the leaves. This module represents that tree *shape*: a rooted
    tree whose nodes carry a kind that determines how the realisation
    ({!Realize}) multiplies them into graph vertices:

    - [Root] / [Internal] — replicated once per copy (k vertices each);
    - [Shared_leaf] — a single vertex shared by all k copies;
    - [Added_leaf] — a shared leaf attached beyond the regular k−1
      children (K-TREE rule 3d / JD's "up to k+1 children" / K-DIAMOND
      rule 5d);
    - [Unshared_leaf] — K-DIAMOND rule 4: realised as a k-clique, member
      i attached to copy i.

    The shape is built incrementally by the constructions in {!Build}:
    start from {!base} (root plus k shared leaves) and apply
    {!convert_leaf} / {!add_added_leaf} / {!mark_unshared}. *)

type kind = Root | Internal | Shared_leaf | Unshared_leaf | Added_leaf

type t

val base : k:int -> t
(** Root node 0 with k shared-leaf children 1..k. Requires [k >= 2]. *)

val k : t -> int

val size : t -> int
(** Number of shape nodes (not graph vertices). *)

val kind : t -> int -> kind

val parent : t -> int -> int
(** [-1] for the root. *)

val depth : t -> int -> int

val children : t -> int -> int list
(** All children in creation order, added leaves included. *)

val regular_children : t -> int -> int list
(** Children excluding added leaves. *)

val added_children : t -> int -> int list

val is_leaf : t -> int -> bool
(** Kind is [Shared_leaf], [Unshared_leaf] or [Added_leaf]. *)

val leaves : t -> int list
(** Ascending ids of all leaf nodes. *)

val convert_leaf : t -> int -> unit
(** Turn a [Shared_leaf] or [Unshared_leaf] into an [Internal] node with
    k−1 fresh [Shared_leaf] children.
    @raise Invalid_argument if the node is not a convertible leaf. *)

val add_added_leaf : t -> parent:int -> unit
(** Attach one [Added_leaf] to [parent], which must be a non-leaf node
    that currently has at least one leaf child ("just above the
    leaves"). Per-constraint caps are the callers' business
    ({!Constraint_check} enforces them). *)

val mark_unshared : t -> int -> unit
(** Flip a [Shared_leaf] to an [Unshared_leaf].
    @raise Invalid_argument otherwise. *)

val above_leaf_nodes : t -> int list
(** Non-leaf nodes having at least one regular leaf child, ascending.
    These are the nodes eligible for added leaves. *)

val height_balanced : t -> bool
(** Max regular-leaf depth − min leaf depth ≤ 1 (K-TREE rule 3a /
    K-DIAMOND rule 5a). Added leaves sit at frontier depth and are
    included in the check. *)

val vertex_count : t -> int
(** Number of graph vertices the realisation will produce:
    k·(#root + #internal) + #shared + #added + k·(#unshared). *)

val counts : t -> int * int * int * int
(** [(non_leaf, shared, added, unshared)] node counts. *)

val pp : Format.formatter -> t -> unit
