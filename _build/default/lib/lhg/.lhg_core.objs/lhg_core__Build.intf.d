lib/lhg/build.mli: Format Graph_core Realize Shape
