lib/lhg/regularity.ml: Existence List
