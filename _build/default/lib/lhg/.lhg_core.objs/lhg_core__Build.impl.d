lib/lhg/build.ml: Existence Format Graph_core List Option Printf Realize Shape Skeleton
