lib/lhg/shape.mli: Format
