lib/lhg/skeleton.ml: List Queue Shape
