lib/lhg/viz.mli: Build
