lib/lhg/existence.ml: Skeleton
