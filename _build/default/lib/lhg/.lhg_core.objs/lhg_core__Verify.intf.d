lib/lhg/verify.mli: Build Format Graph_core
