lib/lhg/enumerate.mli: Build
