lib/lhg/route.mli: Build
