lib/lhg/existence.mli:
