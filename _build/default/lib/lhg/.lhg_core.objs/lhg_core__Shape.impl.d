lib/lhg/shape.ml: Array Format List Printf
