lib/lhg/realize.ml: Array Graph_core Shape
