lib/lhg/skeleton.mli: Shape
