lib/lhg/regularity.mli:
