lib/lhg/constraint_check.mli: Format Shape
