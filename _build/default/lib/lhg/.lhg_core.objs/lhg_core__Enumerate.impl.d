lib/lhg/enumerate.ml: Array Build Existence Graph_core List Shape Skeleton
