lib/lhg/viz.ml: Array Build Graph_core Printf Realize Shape
