lib/lhg/constraint_check.ml: Format List Shape
