lib/lhg/realize.mli: Graph_core Shape
