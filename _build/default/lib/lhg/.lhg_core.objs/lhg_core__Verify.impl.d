lib/lhg/verify.ml: Build Format Graph_core Realize
