lib/lhg/route.ml: Array Build Graph_core List Realize Shape
