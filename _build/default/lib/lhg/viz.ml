module Graph = Graph_core.Graph

let copy_palette = [| "#c6dbef"; "#c7e9c0"; "#fdd0a2"; "#dadaeb"; "#f7b6d2"; "#d9d9d9"; "#fee391"; "#ccebc5" |]

let to_dot ?(name = "lhg") (b : Build.t) =
  let g = b.Build.graph in
  let layout = b.Build.layout in
  let shape = b.Build.shape in
  let label v =
    let node, copy = Realize.shape_node_of_vertex layout ~n_vertices:(Graph.n g) v in
    match Shape.kind shape node with
    | Shape.Root -> Printf.sprintf "R%d" copy
    | Shape.Internal -> Printf.sprintf "%d:%d" node copy
    | Shape.Shared_leaf -> Printf.sprintf "L%d" node
    | Shape.Added_leaf -> Printf.sprintf "A%d" node
    | Shape.Unshared_leaf -> Printf.sprintf "U%d:%d" node copy
  in
  let color v =
    let node, copy = Realize.shape_node_of_vertex layout ~n_vertices:(Graph.n g) v in
    match Shape.kind shape node with
    | Shape.Root -> Some "gold"
    | Shape.Internal -> Some copy_palette.(copy mod Array.length copy_palette)
    | Shape.Shared_leaf -> Some "#d9d9d9"
    | Shape.Added_leaf -> Some "#9ecae1"
    | Shape.Unshared_leaf -> Some "#fcae91"
  in
  Graph_core.Dot.to_dot ~name ~label ~color:(fun v -> color v) g

let write_file ~path b = Graph_core.Dot.write_file ~path (to_dot b)
