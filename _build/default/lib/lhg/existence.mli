(** Characteristic existence functions EX_Π(n,k).

    EX_Π(n,k) is true iff an LHG on n vertices with connectivity k
    exists satisfying constraint Π. The closed forms are Theorems 2
    and 5 of the constraint analysis (EX_KTREE = EX_KDIAMOND = [n ≥ 2k]),
    while EX_JD is computed from the Jenkins–Demers added-leaf capacity
    and exhibits infinitely many gaps — the motivation for K-TREE.

    Parameter decompositions: every admissible n is written
    n = 2k + step·α + j with
    - K-TREE / JD: step = 2(k−1), j ∈ \{0..2k−3\};
    - K-DIAMOND:  step = k−1,    j ∈ \{0..k−2\};
    both residue systems are complete, so the decomposition is unique. *)

val decompose_ktree : n:int -> k:int -> (int * int) option
(** [(alpha, j)] with n = 2k + 2·alpha·(k−1) + j, or [None] when n < 2k
    or k < 2. *)

val decompose_kdiamond : n:int -> k:int -> (int * int) option
(** [(alpha, j)] with n = 2k + alpha·(k−1) + j. *)

val ex_ktree : n:int -> k:int -> bool
(** Theorem 2: true iff k ≥ 2 and n ≥ 2k. *)

val ex_kdiamond : n:int -> k:int -> bool
(** Theorem 5: same predicate — K-TREE and K-DIAMOND are equivalent for
    existence (Corollary 1). *)

val ex_jd : ?strict:bool -> n:int -> k:int -> unit -> bool
(** Existence under the Jenkins–Demers operational rule. [strict]
    (default [true]) is the reading in which a special node carries
    exactly two extra children, making every odd j unreachable; either
    way j is bounded by twice the number of eligible above-leaf interior
    nodes (≤ 2k). *)

val jd_added_capacity : k:int -> alpha:int -> int
(** Max total added leaves the JD rule allows on the α-step skeleton. *)
