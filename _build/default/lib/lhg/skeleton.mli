(** Breadth-first tree skeletons.

    Every construction grows the base tree (root + k shared leaves) by
    converting leaves to internal nodes in breadth-first order — filling
    a level completely before starting the next — which is what keeps
    the tree height-balanced and the diameter logarithmic. One
    conversion replaces a leaf with an internal node carrying k−1 fresh
    leaves, i.e. adds 2(k−1) graph vertices. *)

val make : k:int -> alpha:int -> Shape.t
(** Base shape plus [alpha] breadth-first leaf conversions. *)

val make_depth_first : k:int -> alpha:int -> Shape.t
(** ABLATION ONLY: the same [alpha] conversions applied depth-first
    (always the most recently created leaf). This deliberately violates
    the height-balance rule (3a/5a): the tree degenerates towards a
    (k−1)-ary caterpillar and the realised graph's diameter grows as
    Θ(n/k) instead of Θ(log n) — the experiment that shows why the
    breadth-first rule is load-bearing. The realisation is still
    k-connected and link-minimal. *)

val conversion_order : Shape.t -> int list
(** The current leaves in BFS order — the order in which further
    conversions would proceed. *)

val jd_special_capacity : Shape.t -> int
(** Number of non-root internal nodes just above the leaves, capped at
    k — the nodes Jenkins–Demers allow to exceed k−1 children. The JD
    added-leaf capacity is twice this value. *)

val last_above_leaf : Shape.t -> int
(** Deepest (most recently created) node just above the leaves — the
    canonical host for added leaves. The base shape's root qualifies. *)
