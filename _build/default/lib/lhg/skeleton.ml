let make ~k ~alpha =
  if alpha < 0 then invalid_arg "Skeleton.make: negative alpha";
  let shape = Shape.base ~k in
  (* Leaves are created with increasing ids and BFS conversion visits
     them in id order, so a FIFO of fresh ids is the conversion queue. *)
  let q = Queue.create () in
  for leaf = 1 to k do
    Queue.add leaf q
  done;
  for _ = 1 to alpha do
    let leaf = Queue.pop q in
    let before = Shape.size shape in
    Shape.convert_leaf shape leaf;
    for child = before to Shape.size shape - 1 do
      Queue.add child q
    done
  done;
  shape

let make_depth_first ~k ~alpha =
  if alpha < 0 then invalid_arg "Skeleton.make_depth_first: negative alpha";
  let shape = Shape.base ~k in
  (* LIFO: always convert the newest leaf. *)
  let stack = ref (List.rev (List.init k (fun i -> i + 1))) in
  for _ = 1 to alpha do
    match !stack with
    | [] -> invalid_arg "Skeleton.make_depth_first: no leaf left (impossible)"
    | leaf :: rest ->
        let before = Shape.size shape in
        Shape.convert_leaf shape leaf;
        let fresh = List.rev (List.init (Shape.size shape - before) (fun i -> before + i)) in
        stack := fresh @ rest
  done;
  shape

let conversion_order shape =
  (* Leaves sorted by (depth, id): creation order within a depth matches
     id order, so this reproduces the BFS queue. *)
  Shape.leaves shape
  |> List.map (fun l -> (Shape.depth shape l, l))
  |> List.sort compare
  |> List.map snd

let jd_special_capacity shape =
  let k = Shape.k shape in
  let eligible =
    List.filter (fun nd -> Shape.kind shape nd <> Shape.Root) (Shape.above_leaf_nodes shape)
  in
  min k (List.length eligible)

let last_above_leaf shape =
  match List.rev (Shape.above_leaf_nodes shape) with
  | last :: _ -> last
  | [] -> invalid_arg "Skeleton.last_above_leaf: no above-leaf node (corrupt shape)"
