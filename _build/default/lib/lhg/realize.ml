module Graph = Graph_core.Graph

type layout = { copies : int; base_vertex : int array; width : int array }

let vertex_of layout ~node ~copy =
  if copy < 0 || copy >= layout.copies then invalid_arg "Realize.vertex_of: copy out of range";
  if layout.width.(node) = 1 then layout.base_vertex.(node)
  else layout.base_vertex.(node) + copy

let realize shape =
  let k = Shape.k shape in
  let sz = Shape.size shape in
  let base_vertex = Array.make sz 0 in
  let width = Array.make sz 1 in
  let next = ref 0 in
  for node = 0 to sz - 1 do
    let w =
      match Shape.kind shape node with
      | Shape.Root | Shape.Internal | Shape.Unshared_leaf -> k
      | Shape.Shared_leaf | Shape.Added_leaf -> 1
    in
    base_vertex.(node) <- !next;
    width.(node) <- w;
    next := !next + w
  done;
  let layout = { copies = k; base_vertex; width } in
  let g = Graph.create ~n:!next in
  for node = 0 to sz - 1 do
    let p = Shape.parent shape node in
    if p >= 0 then
      for copy = 0 to k - 1 do
        Graph.add_edge g (vertex_of layout ~node:p ~copy) (vertex_of layout ~node ~copy)
      done;
    (match Shape.kind shape node with
    | Shape.Unshared_leaf ->
        (* rule 4a: the k members form a clique *)
        for a = 0 to k - 1 do
          for b = a + 1 to k - 1 do
            Graph.add_edge g (base_vertex.(node) + a) (base_vertex.(node) + b)
          done
        done
    | Shape.Root | Shape.Internal | Shape.Shared_leaf | Shape.Added_leaf -> ())
  done;
  (g, layout)

let shape_node_of_vertex layout ~n_vertices v =
  if v < 0 || v >= n_vertices then invalid_arg "Realize.shape_node_of_vertex: out of range";
  (* binary search: greatest node with base_vertex <= v *)
  let lo = ref 0 and hi = ref (Array.length layout.base_vertex - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if layout.base_vertex.(mid) <= v then lo := mid else hi := mid - 1
  done;
  let node = !lo in
  (node, v - layout.base_vertex.(node))
