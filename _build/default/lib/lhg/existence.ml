let decompose ~step ~j_max ~n ~k =
  if k < 2 || n < 2 * k then None
  else begin
    let rest = n - (2 * k) in
    let alpha = rest / step and j = rest mod step in
    assert (j <= j_max);
    Some (alpha, j)
  end

let decompose_ktree ~n ~k = decompose ~step:(2 * (k - 1)) ~j_max:((2 * k) - 3) ~n ~k

let decompose_kdiamond ~n ~k = decompose ~step:(k - 1) ~j_max:(k - 2) ~n ~k

let ex_ktree ~n ~k = k >= 2 && n >= 2 * k

let ex_kdiamond ~n ~k = ex_ktree ~n ~k

let jd_added_capacity ~k ~alpha =
  let shape = Skeleton.make ~k ~alpha in
  2 * Skeleton.jd_special_capacity shape

let ex_jd ?(strict = true) ~n ~k () =
  match decompose_ktree ~n ~k with
  | None -> false
  | Some (alpha, j) ->
      if j = 0 then true
      else if strict && j mod 2 = 1 then false
      else j <= jd_added_capacity ~k ~alpha
