(** Structured point-to-point routing over an LHG witness.

    An LHG is k pasted tree copies, so any vertex can reach any other
    through a chosen copy without global routing tables: descend to a
    leaf of your own copy (leaves are shared), switch to the target
    copy, climb to the lowest common ancestor, descend. Route length is
    bounded by {!max_route_length} = O(log n), and the k copies give k
    alternative routes to fail over between — the constructive reading
    of the k-connectivity proof.

    Per-copy routes through different copies are not guaranteed mutually
    vertex-disjoint at their shared-leaf junctions, so {!route} falls
    back to masked BFS when every structured route is blocked; with at
    most k−1 failed vertices the BFS fallback always succeeds (P1). *)

val via_copy : Build.t -> src:int -> dst:int -> copy:int -> int list
(** The structured route through tree copy [copy]: a valid vertex path
    from [src] to [dst] inclusive, using only that copy's tree edges
    plus at most one clique hop at each end (for unshared-leaf
    endpoints) and the endpoints' own descent paths.
    @raise Invalid_argument on bad vertices or copy index. *)

val all_routes : Build.t -> src:int -> dst:int -> int list list
(** The k structured routes, one per copy, duplicates removed. *)

val route : ?avoid:bool array -> Build.t -> src:int -> dst:int -> int list option
(** First structured route avoiding the masked vertices, falling back to
    BFS on the surviving subgraph; [None] only when [src] and [dst] are
    genuinely disconnected (which needs ≥ k failures). *)

val max_route_length : Build.t -> int
(** Upper bound on {!via_copy} path length (vertex count): each
    endpoint may descend to a leaf (≤ height hops each, + a clique hop),
    and the in-copy leg crosses the root (≤ 2·height hops), so
    4·(height+1) + 4 is safe — still O(log n). Routes that pick the
    endpoint's own copy skip the descents and meet the paper's 2·height
    diameter figure. *)

val height : Build.t -> int
(** Height of the underlying tree shape (max leaf depth). *)
