type violation = { rule : string; node : int option; message : string }

let pp_violation fmt v =
  match v.node with
  | Some n -> Format.fprintf fmt "[%s] node %d: %s" v.rule n v.message
  | None -> Format.fprintf fmt "[%s] %s" v.rule v.message

let violation ?node rule fmt = Format.kasprintf (fun message -> { rule; node; message }) fmt

(* Rules shared by all three constraints: rooted-tree skeleton, root with
   exactly k regular children, internal nodes with exactly k-1 regular
   children, added leaves only just above the leaves, height balance. *)
let skeleton_violations ?(added_allowed_on_root = true) shape =
  let k = Shape.k shape in
  let errs = ref [] in
  let push v = errs := v :: !errs in
  if Shape.size shape = 0 || Shape.kind shape 0 <> Shape.Root then
    push (violation "skeleton" "node 0 must be the root");
  for i = 1 to Shape.size shape - 1 do
    if Shape.kind shape i = Shape.Root then
      push (violation ~node:i "skeleton" "secondary root")
  done;
  for i = 0 to Shape.size shape - 1 do
    match Shape.kind shape i with
    | Shape.Root ->
        let r = List.length (Shape.regular_children shape i) in
        if r <> k then push (violation ~node:i "3b/5b" "root has %d regular children, wants %d" r k)
    | Shape.Internal ->
        let r = List.length (Shape.regular_children shape i) in
        if r <> k - 1 then
          push (violation ~node:i "3c/5c" "internal node has %d regular children, wants %d" r (k - 1))
    | Shape.Shared_leaf | Shape.Unshared_leaf | Shape.Added_leaf ->
        if Shape.children shape i <> [] then
          push (violation ~node:i "skeleton" "leaf with children")
  done;
  (* added leaves: parent must be just above the leaves *)
  for i = 0 to Shape.size shape - 1 do
    if Shape.kind shape i = Shape.Added_leaf then begin
      let p = Shape.parent shape i in
      let regular_leaf_child =
        List.exists
          (fun c -> Shape.kind shape c <> Shape.Added_leaf && Shape.is_leaf shape c)
          (Shape.children shape p)
      in
      if not regular_leaf_child then
        push (violation ~node:i "3d/5d" "added leaf on a node that is not just above the leaves");
      if (not added_allowed_on_root) && Shape.kind shape p = Shape.Root then
        push (violation ~node:i "jd" "added leaf on the root")
    end
  done;
  if not (Shape.height_balanced shape) then push (violation "3a/5a" "tree is not height-balanced");
  List.rev !errs

let max_added_violations shape ~cap ~rule =
  let errs = ref [] in
  List.iter
    (fun node ->
      let a = List.length (Shape.added_children shape node) in
      if a > cap then
        errs := violation ~node rule "%d added leaves exceed the cap %d" a cap :: !errs)
    (Shape.above_leaf_nodes shape);
  (* Added leaves can only hang off above-leaf nodes; skeleton already
     checks that, so only caps are verified here. *)
  List.rev !errs

let no_unshared_violations shape ~rule =
  let errs = ref [] in
  for i = 0 to Shape.size shape - 1 do
    if Shape.kind shape i = Shape.Unshared_leaf then
      errs := violation ~node:i rule "unshared leaves are not part of this constraint" :: !errs
  done;
  List.rev !errs

let check_ktree shape =
  let k = Shape.k shape in
  skeleton_violations shape
  @ no_unshared_violations shape ~rule:"2"
  @ max_added_violations shape ~cap:(2 * k - 3) ~rule:"3d"

let check_kdiamond shape =
  let k = Shape.k shape in
  skeleton_violations shape @ max_added_violations shape ~cap:(k - 2) ~rule:"5d"

let check_jd ~strict shape =
  let k = Shape.k shape in
  let base =
    skeleton_violations ~added_allowed_on_root:false shape
    @ no_unshared_violations shape ~rule:"jd"
    @ max_added_violations shape ~cap:2 ~rule:"jd"
  in
  let special =
    List.filter (fun node -> Shape.added_children shape node <> []) (Shape.above_leaf_nodes shape)
  in
  let count_err =
    if List.length special > k then
      [ violation "jd" "%d special nodes exceed the limit k=%d" (List.length special) k ]
    else []
  in
  let parity_err =
    if strict then
      List.filter_map
        (fun node ->
          let a = List.length (Shape.added_children shape node) in
          if a = 1 then
            Some (violation ~node "jd-strict" "special node carries 1 added leaf; strict reading wants 2")
          else None)
        special
    else []
  in
  base @ count_err @ parity_err

let satisfies_ktree shape = check_ktree shape = []

let satisfies_kdiamond shape = check_kdiamond shape = []

let satisfies_jd ~strict shape = check_jd ~strict shape = []
