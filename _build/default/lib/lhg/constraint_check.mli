(** Validation of the three construction rule-sets against a tree shape.

    The builders in {!Build} produce shapes; these checkers re-verify
    every structural rule of the corresponding constraint independently,
    so tests can assert that what was built is what the paper defines.

    Rule numbering follows the constraint definitions: K-TREE rules
    1–3d, K-DIAMOND rules 1–5d, and JD is the Jenkins–Demers prose rule
    ("k copies of a tree whose root node has k children, and whose other
    interior nodes mostly have k−1 children, except for at most k
    interior nodes just above the leaf nodes, which may have up to k+1
    children"). Copy-pasting (rules 1–2) is part of the realisation and
    checked by {!Verify.check_realization}; here we check the shape
    rules. *)

type violation = { rule : string; node : int option; message : string }

val pp_violation : Format.formatter -> violation -> unit

val check_ktree : Shape.t -> violation list
(** Empty when the shape satisfies K-TREE: no unshared leaves; root has
    exactly k regular children; internal nodes have exactly k−1 regular
    children; added leaves only on nodes just above the leaves, at most
    2k−3 each; height-balanced. *)

val check_kdiamond : Shape.t -> violation list
(** Empty when the shape satisfies K-DIAMOND: same skeleton rules, added
    leaves at most k−2 per above-leaf node, unshared leaves allowed. *)

val check_jd : strict:bool -> Shape.t -> violation list
(** Empty when the shape obeys the Jenkins–Demers rule: no unshared
    leaves; at most k above-leaf interior (non-root) nodes carry added
    leaves; each carries at most 2 (bringing it from k−1 to at most k+1
    children); the root carries none. With [~strict:true] (the reading
    under which the follow-on paper's impossibility claims hold) a
    special node carries exactly 2 added leaves, never 1. *)

val satisfies_ktree : Shape.t -> bool

val satisfies_kdiamond : Shape.t -> bool

val satisfies_jd : strict:bool -> Shape.t -> bool
