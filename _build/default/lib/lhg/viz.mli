(** Graphviz rendering of LHG witnesses.

    Colours and labels encode the construction: root copies (gold),
    internal copies (per-copy pastel), shared leaves (grey), added
    leaves (light blue), unshared clique members (salmon). Makes the
    "k trees pasted at the leaves" structure visible at a glance —
    render with [dot -Tsvg] or [neato]. *)

val to_dot : ?name:string -> Build.t -> string
(** DOT document with role/copy colouring and [node:copy] labels. *)

val write_file : path:string -> Build.t -> unit
