let reg_ktree ~n ~k =
  match Existence.decompose_ktree ~n ~k with
  | Some (_, 0) -> true
  | Some _ | None -> false

let reg_kdiamond ~n ~k =
  match Existence.decompose_kdiamond ~n ~k with
  | Some (_, 0) -> true
  | Some _ | None -> false

let kdiamond_only ~n ~k = reg_kdiamond ~n ~k && not (reg_ktree ~n ~k)

let regular_sizes ~start ~step ~max_n =
  let rec go n acc = if n > max_n then List.rev acc else go (n + step) (n :: acc) in
  if start > max_n then [] else go start []

let regular_sizes_ktree ~k ~max_n =
  if k < 2 then invalid_arg "Regularity.regular_sizes_ktree: k < 2";
  regular_sizes ~start:(2 * k) ~step:(2 * (k - 1)) ~max_n

let regular_sizes_kdiamond ~k ~max_n =
  if k < 2 then invalid_arg "Regularity.regular_sizes_kdiamond: k < 2";
  regular_sizes ~start:(2 * k) ~step:(k - 1) ~max_n
