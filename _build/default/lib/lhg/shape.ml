type kind = Root | Internal | Shared_leaf | Unshared_leaf | Added_leaf

type t = {
  k : int;
  mutable size : int;
  mutable parents : int array;
  mutable kinds : kind array;
  mutable depths : int array;
  mutable childs : int list array; (* reverse creation order *)
}

let grow t =
  let cap = Array.length t.parents in
  if t.size = cap then begin
    let ncap = 2 * cap in
    let extend a fill = Array.append a (Array.make (ncap - cap) fill) in
    t.parents <- extend t.parents (-1);
    t.kinds <- extend t.kinds Shared_leaf;
    t.depths <- extend t.depths 0;
    t.childs <- extend t.childs []
  end

let new_node t ~parent ~kind =
  grow t;
  let id = t.size in
  t.size <- t.size + 1;
  t.parents.(id) <- parent;
  t.kinds.(id) <- kind;
  t.depths.(id) <- (if parent < 0 then 0 else t.depths.(parent) + 1);
  t.childs.(id) <- [];
  if parent >= 0 then t.childs.(parent) <- id :: t.childs.(parent);
  id

let base ~k =
  if k < 2 then invalid_arg "Shape.base: k must be >= 2";
  let cap = 4 * k in
  let t =
    {
      k;
      size = 0;
      parents = Array.make cap (-1);
      kinds = Array.make cap Shared_leaf;
      depths = Array.make cap 0;
      childs = Array.make cap [];
    }
  in
  let root = new_node t ~parent:(-1) ~kind:Root in
  for _ = 1 to k do
    ignore (new_node t ~parent:root ~kind:Shared_leaf)
  done;
  t

let k t = t.k

let size t = t.size

let check_node t i name =
  if i < 0 || i >= t.size then invalid_arg (Printf.sprintf "Shape.%s: node %d out of range" name i)

let kind t i =
  check_node t i "kind";
  t.kinds.(i)

let parent t i =
  check_node t i "parent";
  t.parents.(i)

let depth t i =
  check_node t i "depth";
  t.depths.(i)

let children t i =
  check_node t i "children";
  List.rev t.childs.(i)

let is_leaf_kind = function
  | Shared_leaf | Unshared_leaf | Added_leaf -> true
  | Root | Internal -> false

let is_leaf t i = is_leaf_kind (kind t i)

let regular_children t i =
  List.filter (fun c -> t.kinds.(c) <> Added_leaf) (children t i)

let added_children t i = List.filter (fun c -> t.kinds.(c) = Added_leaf) (children t i)

let leaves t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    if is_leaf t i then acc := i :: !acc
  done;
  !acc

let convert_leaf t i =
  check_node t i "convert_leaf";
  (match t.kinds.(i) with
  | Shared_leaf | Unshared_leaf -> ()
  | Root | Internal | Added_leaf -> invalid_arg "Shape.convert_leaf: not a convertible leaf");
  t.kinds.(i) <- Internal;
  for _ = 1 to t.k - 1 do
    ignore (new_node t ~parent:i ~kind:Shared_leaf)
  done

let add_added_leaf t ~parent =
  check_node t parent "add_added_leaf";
  if is_leaf t parent then invalid_arg "Shape.add_added_leaf: parent is a leaf";
  let has_leaf_child = List.exists (fun c -> is_leaf t c) (children t parent) in
  if not has_leaf_child then
    invalid_arg "Shape.add_added_leaf: parent is not just above the leaves";
  ignore (new_node t ~parent ~kind:Added_leaf)

let mark_unshared t i =
  check_node t i "mark_unshared";
  if t.kinds.(i) <> Shared_leaf then invalid_arg "Shape.mark_unshared: not a shared leaf";
  t.kinds.(i) <- Unshared_leaf

let above_leaf_nodes t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    if (not (is_leaf t i)) && List.exists (fun c -> is_leaf t c) (children t i) then
      acc := i :: !acc
  done;
  !acc

let height_balanced t =
  let dmin = ref max_int and dmax = ref 0 in
  for i = 0 to t.size - 1 do
    if is_leaf t i then begin
      if t.depths.(i) < !dmin then dmin := t.depths.(i);
      if t.depths.(i) > !dmax then dmax := t.depths.(i)
    end
  done;
  !dmax - !dmin <= 1

let counts t =
  let non_leaf = ref 0 and shared = ref 0 and added = ref 0 and unshared = ref 0 in
  for i = 0 to t.size - 1 do
    match t.kinds.(i) with
    | Root | Internal -> incr non_leaf
    | Shared_leaf -> incr shared
    | Added_leaf -> incr added
    | Unshared_leaf -> incr unshared
  done;
  (!non_leaf, !shared, !added, !unshared)

let vertex_count t =
  let non_leaf, shared, added, unshared = counts t in
  (t.k * non_leaf) + shared + added + (t.k * unshared)

let pp fmt t =
  let non_leaf, shared, added, unshared = counts t in
  Format.fprintf fmt "shape(k=%d, nodes=%d, internal=%d, shared=%d, added=%d, unshared=%d, vertices=%d)"
    t.k t.size non_leaf shared added unshared (vertex_count t)
