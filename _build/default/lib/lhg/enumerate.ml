let hosts_and_j ~n ~k =
  match Existence.decompose_ktree ~n ~k with
  | None -> None
  | Some (alpha, j) ->
      let skeleton = Skeleton.make ~k ~alpha in
      Some (alpha, j, List.length (Shape.above_leaf_nodes skeleton))

let count_ktree ~n ~k =
  match hosts_and_j ~n ~k with
  | None -> 0
  | Some (_, j, hosts) ->
      if j = 0 then 1
      else begin
        let cap = (2 * k) - 3 in
        (* DP over hosts: ways.(r) = #compositions of r so far *)
        let ways = Array.make (j + 1) 0 in
        ways.(0) <- 1;
        for _ = 1 to hosts do
          let next = Array.make (j + 1) 0 in
          for r = 0 to j do
            if ways.(r) > 0 then
              for c = 0 to min cap (j - r) do
                next.(r + c) <- next.(r + c) + ways.(r)
              done
          done;
          Array.blit next 0 ways 0 (j + 1)
        done;
        ways.(j)
      end

let iter_ktree ?(limit = 1000) ~n ~k f =
  match hosts_and_j ~n ~k with
  | None -> 0
  | Some (alpha, j, hosts) ->
      let cap = (2 * k) - 3 in
      let produced = ref 0 in
      let emit distribution =
        if !produced < limit then begin
          let shape = Skeleton.make ~k ~alpha in
          let host_nodes = Shape.above_leaf_nodes shape in
          List.iteri
            (fun i count ->
              let host = List.nth host_nodes i in
              for _ = 1 to count do
                Shape.add_added_leaf shape ~parent:host
              done)
            distribution;
          f (Build.of_shape shape);
          incr produced
        end
      in
      (* generate bounded compositions of j over [hosts] slots *)
      let rec go slot remaining acc =
        if !produced >= limit then ()
        else if slot = hosts then begin
          if remaining = 0 then emit (List.rev acc)
        end
        else
          for c = 0 to min cap remaining do
            go (slot + 1) (remaining - c) (c :: acc)
          done
      in
      go 0 j [];
      !produced

let distinct_graphs ?limit ~n ~k () =
  let graphs = ref [] in
  let _ =
    iter_ktree ?limit ~n ~k (fun b ->
        let g = b.Build.graph in
        if not (List.exists (fun g' -> Graph_core.Graph.equal g g') !graphs) then
          graphs := g :: !graphs)
  in
  List.length !graphs
