lib/overlay/incremental.mli: Graph_core
