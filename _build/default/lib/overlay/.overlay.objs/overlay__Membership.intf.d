lib/overlay/membership.mli: Diff Graph_core Lhg_core
