lib/overlay/churn.ml: Diff Format Graph_core List Membership
