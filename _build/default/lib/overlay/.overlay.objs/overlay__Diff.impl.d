lib/overlay/diff.ml: Format Graph_core List
