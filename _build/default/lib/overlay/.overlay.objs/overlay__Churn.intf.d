lib/overlay/churn.mli: Format Graph_core Membership
