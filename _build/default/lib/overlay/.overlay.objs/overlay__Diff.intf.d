lib/overlay/diff.mli: Format Graph_core
