lib/overlay/membership.ml: Diff Graph_core Harary Lhg_core Printf
