lib/overlay/incremental.ml: Array Graph_core List
