module Graph = Graph_core.Graph

type t = { added : (int * int) list; removed : (int * int) list; kept : int }

let edges ~old_graph ~new_graph =
  let old_edges = Graph.edges old_graph in
  let new_edges = Graph.edges new_graph in
  (* both lists are lexicographically sorted: merge *)
  let rec merge old_e new_e added removed kept =
    match (old_e, new_e) with
    | [], [] -> { added = List.rev added; removed = List.rev removed; kept }
    | [], e :: rest -> merge [] rest (e :: added) removed kept
    | e :: rest, [] -> merge rest [] added (e :: removed) kept
    | o :: orest, n :: nrest ->
        if o = n then merge orest nrest added removed (kept + 1)
        else if o < n then merge orest new_e added (o :: removed) kept
        else merge old_e nrest (n :: added) removed kept
  in
  merge old_edges new_edges [] [] 0

let cost d = List.length d.added + List.length d.removed

let pp fmt d =
  Format.fprintf fmt "diff(+%d edges, -%d edges, %d kept)" (List.length d.added)
    (List.length d.removed) d.kept
