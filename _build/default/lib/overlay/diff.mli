(** Structural diffs between overlay topologies.

    When membership changes (n → n±1) the overlay is rebuilt to the
    canonical topology for the new size; the diff between the two edge
    sets is the *reconfiguration cost* — the number of connections peers
    must open and close. Vertices are compared by id: the canonical LHG
    labelling keeps existing ids stable under added-leaf growth and
    reshuffles only when the tree shape itself changes, so the diff
    faithfully exposes both cheap and expensive growth steps. *)

type t = {
  added : (int * int) list;  (** edges in the new graph only *)
  removed : (int * int) list;  (** edges in the old graph only *)
  kept : int;  (** edges present in both *)
}

val edges : old_graph:Graph_core.Graph.t -> new_graph:Graph_core.Graph.t -> t
(** Compare edge sets (vertex counts may differ). *)

val cost : t -> int
(** |added| + |removed|. *)

val pp : Format.formatter -> t -> unit
