module Prng = Graph_core.Prng

type stats = {
  ops : int;
  skipped : int;
  total_added : int;
  total_removed : int;
  mean_cost : float;
  max_cost : int;
  final_n : int;
}

let run rng ~family ~k ~n0 ~steps ?(join_probability = 0.55) () =
  if steps < 0 then invalid_arg "Churn.run: negative steps";
  if join_probability < 0.0 || join_probability > 1.0 then
    invalid_arg "Churn.run: join_probability outside [0,1]";
  match Membership.create ~family ~k ~n:n0 with
  | Error e -> Error e
  | Ok overlay ->
      let floor = 2 * k in
      let ops = ref 0 and skipped = ref 0 in
      let total_added = ref 0 and total_removed = ref 0 and max_cost = ref 0 in
      for _ = 1 to steps do
        let joining =
          Membership.n overlay <= floor || Prng.float rng 1.0 < join_probability
        in
        let result = if joining then Membership.join overlay else Membership.leave overlay in
        match result with
        | Error _ -> incr skipped
        | Ok d ->
            incr ops;
            let cost = Diff.cost d in
            total_added := !total_added + List.length d.Diff.added;
            total_removed := !total_removed + List.length d.Diff.removed;
            if cost > !max_cost then max_cost := cost
      done;
      Ok
        {
          ops = !ops;
          skipped = !skipped;
          total_added = !total_added;
          total_removed = !total_removed;
          mean_cost =
            (if !ops = 0 then 0.0
             else float_of_int (!total_added + !total_removed) /. float_of_int !ops);
          max_cost = !max_cost;
          final_n = Membership.n overlay;
        }

let pp_stats fmt s =
  Format.fprintf fmt
    "churn(ops=%d, skipped=%d, +%d/-%d edges, mean %.1f per op, max %d, final n=%d)" s.ops
    s.skipped s.total_added s.total_removed s.mean_cost s.max_cost s.final_n
