type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 finaliser: advance by the golden gamma, then mix. *)
let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed64 = bits64 g in
  { state = seed64 }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = Int64.shift_right_logical (bits64 g) 2 in
  let v = Int64.to_int mask in
  if bound land (bound - 1) = 0 then v land (bound - 1)
  else
    let max_v = (1 lsl 62) - 1 in
    let limit = max_v - (max_v mod bound) in
    let rec loop v = if v >= limit then loop (Int64.to_int (Int64.shift_right_logical (bits64 g) 2)) else v mod bound in
    loop v

let float g bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let exponential g ~mean =
  let u = ref (float g 1.0) in
  while !u = 0.0 do
    u := float g 1.0
  done;
  -.mean *. log !u

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let sample_without_replacement g ~k ~n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  if 3 * k >= n then begin
    let p = permutation g n in
    Array.to_list (Array.sub p 0 k)
  end
  else begin
    let seen = Hashtbl.create (2 * k) in
    let rec draw acc remaining =
      if remaining = 0 then acc
      else
        let v = int g n in
        if Hashtbl.mem seen v then draw acc remaining
        else begin
          Hashtbl.add seen v ();
          draw (v :: acc) (remaining - 1)
        end
    in
    draw [] k
  end
