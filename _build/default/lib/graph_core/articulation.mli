(** Cut vertices and bridges (Tarjan's low-link algorithm, O(n + m)).

    Fast structural diagnostics: a k-connected graph (k ≥ 2) has no cut
    vertices and no bridges, so these run as a cheap pre-check before
    the max-flow machinery, and they pinpoint the weak spots of
    topologies that fail verification (e.g. spanning trees, barbells). *)

val cut_vertices : Graph.t -> int list
(** Ascending list of articulation points. *)

val bridges : Graph.t -> (int * int) list
(** Bridge edges as (u < v) pairs, lexicographically sorted. *)

val is_biconnected : Graph.t -> bool
(** Connected, at least 3 vertices, and no cut vertex. *)

val is_two_edge_connected : Graph.t -> bool
(** Connected, at least 2 vertices, and no bridge. *)
