type stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  histogram : (int * int) list;
}

let stats g =
  let nv = Graph.n g in
  if nv = 0 then invalid_arg "Degree.stats: empty graph";
  let tbl = Hashtbl.create 16 in
  let dmin = ref max_int and dmax = ref 0 and total = ref 0 in
  for v = 0 to nv - 1 do
    let d = Graph.degree g v in
    dmin := min !dmin d;
    dmax := max !dmax d;
    total := !total + d;
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  let histogram =
    Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
    |> List.sort (fun (d1, _) (d2, _) -> compare d1 d2)
  in
  {
    min_degree = !dmin;
    max_degree = !dmax;
    mean_degree = float_of_int !total /. float_of_int nv;
    histogram;
  }

let is_regular g =
  let nv = Graph.n g in
  nv <= 1
  ||
  let d0 = Graph.degree g 0 in
  let rec check v = v >= nv || (Graph.degree g v = d0 && check (v + 1)) in
  check 1

let is_k_regular g ~k =
  let nv = Graph.n g in
  let rec check v = v >= nv || (Graph.degree g v = k && check (v + 1)) in
  check 0

let degree_sequence g =
  List.init (Graph.n g) (fun v -> Graph.degree g v)
  |> List.sort (fun a b -> compare b a)
