let live_fun g alive =
  match alive with
  | None -> fun _ -> true
  | Some a ->
      if Array.length a <> Graph.n g then invalid_arg "Paths: alive mask has wrong length";
      fun v -> a.(v)

let eccentricities ?alive g =
  let nv = Graph.n g in
  let live = live_fun g alive in
  Array.init nv (fun v -> if live v then Bfs.eccentricity ?alive g ~src:v else None)

(* Fold alive vertices' eccentricities with [f]; None when the graph is
   empty or some alive vertex has undefined (infinite) eccentricity. *)
let fold_ecc ?alive g f =
  let live = live_fun g alive in
  let eccs = eccentricities ?alive g in
  let best = ref None and ok = ref true in
  Array.iteri
    (fun v e ->
      if live v then
        match e with
        | None -> ok := false
        | Some e -> best := Some (match !best with None -> e | Some b -> f b e))
    eccs;
  if !ok then !best else None

let diameter ?alive g = fold_ecc ?alive g max

let radius ?alive g = fold_ecc ?alive g min

let average_path_length ?alive g =
  let nv = Graph.n g in
  let live = live_fun g alive in
  let total = ref 0 and pairs = ref 0 and ok = ref true in
  for src = 0 to nv - 1 do
    if !ok && live src then begin
      let dist = Bfs.distances ?alive g ~src in
      Array.iteri
        (fun v d ->
          if live v && v <> src then
            if d < 0 then ok := false
            else begin
              total := !total + d;
              incr pairs
            end)
        dist
    end
  done;
  if !ok && !pairs > 0 then Some (float_of_int !total /. float_of_int !pairs) else None

let diameter_lower_bound g ~seeds =
  if seeds = [] then invalid_arg "Paths.diameter_lower_bound: empty seeds";
  List.fold_left
    (fun acc s ->
      match Bfs.eccentricity g ~src:s with
      | Some e -> max acc e
      | None -> invalid_arg "Paths.diameter_lower_bound: graph is disconnected")
    0 seeds
