let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 1)) in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec parse lineno g = function
    | [] -> (
        match g with Some g -> Ok g | None -> Error "empty input: missing 'n <count>' header")
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then parse (lineno + 1) g rest
        else
          match (g, String.split_on_char ' ' line |> List.filter (fun t -> t <> "")) with
          | None, [ "n"; count ] -> (
              match int_of_string_opt count with
              | Some n when n >= 0 -> parse (lineno + 1) (Some (Graph.create ~n)) rest
              | Some _ | None -> error lineno "invalid vertex count")
          | None, _ -> error lineno "expected 'n <count>' header"
          | Some _, [ "n"; _ ] -> error lineno "duplicate header"
          | Some g', [ u; v ] -> (
              match (int_of_string_opt u, int_of_string_opt v) with
              | Some u, Some v -> (
                  match Graph.add_edge g' u v with
                  | () -> parse (lineno + 1) g rest
                  | exception Invalid_argument msg -> error lineno msg)
              | _ -> error lineno "expected two vertex ids")
          | Some _, _ -> error lineno "expected 'u v' edge line")
  in
  parse 1 None lines

let write_file ~path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let read_file ~path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content
