let check_alive g alive =
  match alive with
  | None -> fun _ -> true
  | Some a ->
      if Array.length a <> Graph.n g then invalid_arg "Bfs: alive mask has wrong length";
      fun v -> a.(v)

let distances_and_parents ?alive g ~src =
  let nv = Graph.n g in
  let live = check_alive g alive in
  if src < 0 || src >= nv then invalid_arg "Bfs: source out of range";
  if not (live src) then invalid_arg "Bfs: source is not alive";
  let dist = Array.make nv (-1) in
  let parent = Array.make nv (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v ->
        if live v && dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v q
        end)
  done;
  (dist, parent)

let distances ?alive g ~src = fst (distances_and_parents ?alive g ~src)

let path ?alive g ~src ~dst =
  let dist, parent = distances_and_parents ?alive g ~src in
  if dst < 0 || dst >= Graph.n g then invalid_arg "Bfs.path: dst out of range";
  if dist.(dst) < 0 then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end

let eccentricity ?alive g ~src =
  let live = check_alive g alive in
  let dist = distances ?alive g ~src in
  let ecc = ref 0 and complete = ref true in
  Array.iteri
    (fun v d ->
      if live v then if d < 0 then complete := false else if d > !ecc then ecc := d)
    dist;
  if !complete then Some !ecc else None

let reachable_count ?alive g ~src =
  let dist = distances ?alive g ~src in
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 dist
