(** Binary min-heap priority queue.

    Generic over the element type via a comparison function supplied at
    creation. Used by the discrete-event simulator ({!Netsim.Sim}) and by
    graph algorithms. Not thread-safe. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty queue ordered by [cmp] (smallest element popped first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] when empty. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: all elements in ascending order. O(n log n). *)
