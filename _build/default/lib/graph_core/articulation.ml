(* Iterative Tarjan low-link: an explicit stack avoids overflow on the
   deep DFS trees that path-like graphs produce. *)

type dfs_state = {
  disc : int array;
  low : int array;
  parent : int array;
  mutable timer : int;
}

let dfs g state ~on_tree_edge_done ~on_root_children root =
  let stack = Stack.create () in
  (* Each frame is (vertex, remaining neighbours). *)
  state.disc.(root) <- state.timer;
  state.low.(root) <- state.timer;
  state.timer <- state.timer + 1;
  Stack.push (root, Graph.neighbors g root) stack;
  let root_children = ref 0 in
  while not (Stack.is_empty stack) do
    let v, ns = Stack.pop stack in
    match ns with
    | [] ->
        if v <> root then begin
          let p = state.parent.(v) in
          if state.low.(v) < state.low.(p) then state.low.(p) <- state.low.(v);
          on_tree_edge_done ~parent:p ~child:v
        end
    | w :: rest ->
        Stack.push (v, rest) stack;
        if state.disc.(w) < 0 then begin
          state.parent.(w) <- v;
          if v = root then incr root_children;
          state.disc.(w) <- state.timer;
          state.low.(w) <- state.timer;
          state.timer <- state.timer + 1;
          Stack.push (w, Graph.neighbors g w) stack
        end
        else if w <> state.parent.(v) && state.disc.(w) < state.low.(v) then
          state.low.(v) <- state.disc.(w)
  done;
  on_root_children !root_children

let fresh_state n =
  { disc = Array.make n (-1); low = Array.make n 0; parent = Array.make n (-1); timer = 0 }

let cut_vertices g =
  let n = Graph.n g in
  let state = fresh_state n in
  let is_cut = Array.make n false in
  for root = 0 to n - 1 do
    if state.disc.(root) < 0 then
      dfs g state root
        ~on_tree_edge_done:(fun ~parent ~child ->
          (* non-root p is a cut vertex iff some child c has
             low(c) >= disc(p); roots are handled by child count *)
          if state.parent.(parent) <> -1 && state.low.(child) >= state.disc.(parent) then
            is_cut.(parent) <- true)
        ~on_root_children:(fun children -> if children > 1 then is_cut.(root) <- true)
  done;
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if is_cut.(v) then acc := v :: !acc
  done;
  !acc

let bridges g =
  let n = Graph.n g in
  let state = fresh_state n in
  let acc = ref [] in
  for root = 0 to n - 1 do
    if state.disc.(root) < 0 then
      dfs g state root
        ~on_tree_edge_done:(fun ~parent ~child ->
          if state.low.(child) > state.disc.(parent) then
            acc := (min parent child, max parent child) :: !acc)
        ~on_root_children:(fun _ -> ())
  done;
  List.sort compare !acc

let is_biconnected g =
  Graph.n g >= 3 && Components.is_connected g && cut_vertices g = []

let is_two_edge_connected g = Graph.n g >= 2 && Components.is_connected g && bridges g = []
