(** Gomory–Hu (equivalent-flow) trees via Gusfield's algorithm.

    All-pairs local edge connectivity from n−1 max-flow computations: the
    tree spans the vertices, and λ(u,v) equals the minimum edge weight on
    the unique tree path between u and v. Used to map *where* a topology
    is weakest (every bottleneck appears as a light tree edge), rather
    than probing pairs one flow at a time. *)

type t

val build : Graph.t -> t
(** n−1 max-flows. Disconnected inputs are fine: cross-component pairs
    get value 0. Requires n ≥ 1. *)

val min_cut_value : t -> int -> int -> int
(** λ(u,v): minimum weight on the tree path. O(n) per query. *)

val tree_edges : t -> (int * int * int) list
(** The n−1 tree edges as (vertex, parent, weight), for vertices 1..n−1
    in order. Weight 0 edges join components. *)

val bottleneck : t -> (int * int * int) option
(** A lightest tree edge (u, parent, λ) — a global weakest cut pair.
    [None] for graphs with fewer than 2 vertices. *)
