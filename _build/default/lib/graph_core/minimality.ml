let edge_is_critical g ~k u v =
  if not (Graph.has_edge g u v) then invalid_arg "Minimality.edge_is_critical: edge absent";
  let g' = Graph.without_edge g u v in
  let lambda = Connectivity.local_edge_connectivity ~limit:k g' ~s:u ~t:v in
  if lambda < k then true
  else
    let kappa = Connectivity.local_vertex_connectivity ~limit:k g' ~s:u ~t:v in
    kappa < k

let non_critical_edges g ~k =
  let bad = ref [] in
  Graph.iter_edges g (fun u v -> if not (edge_is_critical g ~k u v) then bad := (u, v) :: !bad);
  List.rev !bad

let is_link_minimal g ~k =
  let ok = ref true in
  Graph.iter_edges g (fun u v -> if !ok && not (edge_is_critical g ~k u v) then ok := false);
  !ok
