lib/graph_core/degree.ml: Graph Hashtbl List Option
