lib/graph_core/graph.mli: Format
