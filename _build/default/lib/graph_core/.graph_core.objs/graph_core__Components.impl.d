lib/graph_core/components.ml: Array Graph Queue
