lib/graph_core/articulation.mli: Graph
