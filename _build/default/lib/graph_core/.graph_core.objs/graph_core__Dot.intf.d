lib/graph_core/dot.mli: Graph
