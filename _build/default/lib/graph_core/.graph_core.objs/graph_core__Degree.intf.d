lib/graph_core/degree.mli: Graph
