lib/graph_core/connectivity.mli: Graph Maxflow
