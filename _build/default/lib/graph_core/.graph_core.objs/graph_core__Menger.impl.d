lib/graph_core/menger.ml: Array Connectivity Graph Hashtbl List Maxflow Option
