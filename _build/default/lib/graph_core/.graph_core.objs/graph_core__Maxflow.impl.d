lib/graph_core/maxflow.ml: Array Queue
