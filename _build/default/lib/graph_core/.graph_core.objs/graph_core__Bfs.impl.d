lib/graph_core/bfs.ml: Array Graph Queue
