lib/graph_core/bfs.mli: Graph
