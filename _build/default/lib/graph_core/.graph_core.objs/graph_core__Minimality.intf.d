lib/graph_core/minimality.mli: Graph
