lib/graph_core/prng.ml: Array Hashtbl Int64
