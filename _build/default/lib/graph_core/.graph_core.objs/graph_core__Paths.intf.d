lib/graph_core/paths.mli: Graph
