lib/graph_core/pqueue.ml: Array List
