lib/graph_core/dot.ml: Buffer Fun Graph Option Printf
