lib/graph_core/articulation.ml: Array Components Graph List Stack
