lib/graph_core/union_find.ml: Array
