lib/graph_core/union_find.mli:
