lib/graph_core/serial.mli: Graph
