lib/graph_core/serial.ml: Buffer Fun Graph List Printf String
