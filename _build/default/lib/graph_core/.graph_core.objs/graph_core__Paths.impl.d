lib/graph_core/paths.ml: Array Bfs Graph List
