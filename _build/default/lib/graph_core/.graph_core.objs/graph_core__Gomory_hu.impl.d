lib/graph_core/gomory_hu.ml: Array Connectivity Graph Hashtbl List Maxflow
