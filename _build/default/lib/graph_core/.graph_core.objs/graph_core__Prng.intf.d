lib/graph_core/prng.mli:
