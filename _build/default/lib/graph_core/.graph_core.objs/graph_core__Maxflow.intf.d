lib/graph_core/maxflow.mli:
