lib/graph_core/gomory_hu.mli: Graph
