lib/graph_core/spectral.ml: Array Graph Prng
