lib/graph_core/connectivity.ml: Array Components Graph List Maxflow Option
