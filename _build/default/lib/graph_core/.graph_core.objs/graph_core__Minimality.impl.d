lib/graph_core/minimality.ml: Connectivity Graph List
