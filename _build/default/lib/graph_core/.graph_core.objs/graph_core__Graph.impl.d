lib/graph_core/graph.ml: Array Format Int List Printf Set
