lib/graph_core/pqueue.mli:
