lib/graph_core/generators.ml: Array Graph List Pqueue Prng
