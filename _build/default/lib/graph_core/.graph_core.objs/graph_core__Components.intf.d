lib/graph_core/components.mli: Graph
