lib/graph_core/spectral.mli: Graph
