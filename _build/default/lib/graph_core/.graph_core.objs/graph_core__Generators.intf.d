lib/graph_core/generators.mli: Graph Prng
