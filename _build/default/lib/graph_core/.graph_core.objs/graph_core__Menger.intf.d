lib/graph_core/menger.mli: Graph
