(** Plain-text graph serialisation.

    Format: a header line ["n <vertices>"], then one ["u v"] line per
    edge; blank lines and ["#"] comments are ignored. Stable across the
    CLI (`lhg_tool generate` emits it, `verify --input` reads it) and
    handy for interchange with external tools. *)

val to_string : Graph.t -> string

val of_string : string -> (Graph.t, string) result
(** Parse; the error mentions the offending line. *)

val write_file : path:string -> Graph.t -> unit

val read_file : path:string -> (Graph.t, string) result
