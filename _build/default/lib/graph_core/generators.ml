let path_graph n =
  let g = Graph.create ~n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: n < 3";
  let g = path_graph n in
  Graph.add_edge g (n - 1) 0;
  g

let complete n =
  let g = Graph.create ~n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.add_edge g u v
    done
  done;
  g

let complete_bipartite a b =
  let g = Graph.create ~n:(a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      Graph.add_edge g u v
    done
  done;
  g

let star n =
  if n < 1 then invalid_arg "Generators.star: n < 1";
  let g = Graph.create ~n in
  for v = 1 to n - 1 do
    Graph.add_edge g 0 v
  done;
  g

let circulant ~n ~jumps =
  if n < 1 then invalid_arg "Generators.circulant: n < 1";
  let g = Graph.create ~n in
  List.iter
    (fun j ->
      let j = ((j mod n) + n) mod n in
      if j = 0 then invalid_arg "Generators.circulant: jump is a multiple of n";
      for v = 0 to n - 1 do
        let w = (v + j) mod n in
        if v <> w then Graph.add_edge g v w
      done)
    jumps;
  g

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let g = Graph.create ~n:(rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then Graph.add_edge g v (v + 1);
      if r + 1 < rows then Graph.add_edge g v (v + cols)
    done
  done;
  g

let balanced_tree ~branching ~height =
  if branching < 1 || height < 0 then invalid_arg "Generators.balanced_tree";
  (* n = 1 + b + b² + ... + b^h *)
  let n = ref 1 and level = ref 1 in
  for _ = 1 to height do
    level := !level * branching;
    n := !n + !level
  done;
  let g = Graph.create ~n:!n in
  for v = 1 to !n - 1 do
    Graph.add_edge g v ((v - 1) / branching)
  done;
  g

let gnp rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Generators.gnp: p outside [0,1]";
  let g = Graph.create ~n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng 1.0 < p then Graph.add_edge g u v
    done
  done;
  g

let random_tree rng ~n =
  if n < 1 then invalid_arg "Generators.random_tree: n < 1";
  if n = 1 then Graph.create ~n:1
  else if n = 2 then Graph.of_edges ~n:2 [ (0, 1) ]
  else begin
    (* Decode a random Prüfer sequence of length n-2. *)
    let seq = Array.init (n - 2) (fun _ -> Prng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    let g = Graph.create ~n in
    let leaves = Pqueue.create ~cmp:compare in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then Pqueue.push leaves v
    done;
    Array.iter
      (fun v ->
        let leaf = Pqueue.pop_exn leaves in
        Graph.add_edge g leaf v;
        deg.(leaf) <- 0;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then Pqueue.push leaves v)
      seq;
    let a = Pqueue.pop_exn leaves in
    let b = Pqueue.pop_exn leaves in
    Graph.add_edge g a b;
    g
  end
