module Net = struct
  (* Arc i and its reverse are stored at indices 2j and 2j+1, so the
     reverse of arc a is [a lxor 1]. *)
  type t = {
    n : int;
    mutable heads : int array; (* arc -> destination node *)
    mutable caps : int array; (* arc -> remaining capacity *)
    mutable orig_caps : int array;
    mutable arc_count : int;
    adj : int list array; (* node -> incident arc indices, reversed order *)
    mutable adj_frozen : int array array option;
  }

  let create ~n =
    if n <= 0 then invalid_arg "Maxflow.Net.create";
    {
      n;
      heads = Array.make 16 0;
      caps = Array.make 16 0;
      orig_caps = Array.make 16 0;
      arc_count = 0;
      adj = Array.make n [];
      adj_frozen = None;
    }

  let node_count net = net.n

  let ensure net needed =
    let capn = Array.length net.heads in
    if needed > capn then begin
      let ncap = max needed (2 * capn) in
      let grow a = Array.append a (Array.make (ncap - Array.length a) 0) in
      net.heads <- grow net.heads;
      net.caps <- grow net.caps;
      net.orig_caps <- grow net.orig_caps
    end

  let add_arc net ~src ~dst ~cap =
    if src < 0 || src >= net.n || dst < 0 || dst >= net.n then
      invalid_arg "Maxflow.Net.add_arc: node out of range";
    if cap < 0 then invalid_arg "Maxflow.Net.add_arc: negative capacity";
    net.adj_frozen <- None;
    ensure net (net.arc_count + 2);
    let a = net.arc_count in
    net.heads.(a) <- dst;
    net.caps.(a) <- cap;
    net.orig_caps.(a) <- cap;
    net.heads.(a + 1) <- src;
    net.caps.(a + 1) <- 0;
    net.orig_caps.(a + 1) <- 0;
    net.adj.(src) <- a :: net.adj.(src);
    net.adj.(dst) <- (a + 1) :: net.adj.(dst);
    net.arc_count <- net.arc_count + 2

  let add_edge_bidir net u v ~cap =
    add_arc net ~src:u ~dst:v ~cap;
    add_arc net ~src:v ~dst:u ~cap

  let reset_flow net = Array.blit net.orig_caps 0 net.caps 0 net.arc_count

  let frozen_adj net =
    match net.adj_frozen with
    | Some a -> a
    | None ->
        let a = Array.map Array.of_list net.adj in
        net.adj_frozen <- Some a;
        a
end

let infinity_cap = max_int / 4

let max_flow ?(limit = infinity_cap) (net : Net.t) ~s ~t =
  if s = t then invalid_arg "Maxflow.max_flow: s = t";
  if s < 0 || s >= net.Net.n || t < 0 || t >= net.Net.n then
    invalid_arg "Maxflow.max_flow: node out of range";
  let adj = Net.frozen_adj net in
  let nn = net.Net.n in
  let level = Array.make nn (-1) in
  let iter = Array.make nn 0 in
  let q = Queue.create () in
  let build_levels () =
    Array.fill level 0 nn (-1);
    Queue.clear q;
    level.(s) <- 0;
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun a ->
          let v = net.Net.heads.(a) in
          if net.Net.caps.(a) > 0 && level.(v) < 0 then begin
            level.(v) <- level.(u) + 1;
            Queue.add v q
          end)
        adj.(u)
    done;
    level.(t) >= 0
  in
  let rec dfs u pushed =
    if u = t then pushed
    else begin
      let res = ref 0 in
      let arcs = adj.(u) in
      let narcs = Array.length arcs in
      while !res = 0 && iter.(u) < narcs do
        let a = arcs.(iter.(u)) in
        let v = net.Net.heads.(a) in
        if net.Net.caps.(a) > 0 && level.(v) = level.(u) + 1 then begin
          let d = dfs v (min pushed net.Net.caps.(a)) in
          if d > 0 then begin
            net.Net.caps.(a) <- net.Net.caps.(a) - d;
            net.Net.caps.(a lxor 1) <- net.Net.caps.(a lxor 1) + d;
            res := d
          end
          else iter.(u) <- iter.(u) + 1
        end
        else iter.(u) <- iter.(u) + 1
      done;
      !res
    end
  in
  let flow = ref 0 in
  let continue = ref true in
  while !continue && !flow < limit && build_levels () do
    Array.fill iter 0 nn 0;
    let pushed = ref (dfs s (limit - !flow)) in
    while !pushed > 0 do
      flow := !flow + !pushed;
      pushed := if !flow < limit then dfs s (limit - !flow) else 0
    done;
    if !pushed = 0 && !flow >= limit then continue := false
  done;
  !flow

let iter_flow_arcs (net : Net.t) f =
  let a = ref 0 in
  while !a < net.Net.arc_count do
    (* Forward arcs sit at even indices; flow = original - residual. *)
    let flow = net.Net.orig_caps.(!a) - net.Net.caps.(!a) in
    if flow > 0 then begin
      let src = net.Net.heads.(!a + 1) and dst = net.Net.heads.(!a) in
      f ~src ~dst ~flow
    end;
    a := !a + 2
  done

let min_cut_side (net : Net.t) ~s =
  let adj = Net.frozen_adj net in
  let seen = Array.make net.Net.n false in
  let q = Queue.create () in
  seen.(s) <- true;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun a ->
        let v = net.Net.heads.(a) in
        if net.Net.caps.(a) > 0 && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      adj.(u)
  done;
  seen
