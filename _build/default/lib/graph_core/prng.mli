(** Deterministic pseudo-random number generator.

    A small, fast, splittable PRNG (splitmix64 core) used everywhere in
    the library instead of [Stdlib.Random], so that every simulation,
    generator and experiment is reproducible from a single integer seed
    and independent random streams can be derived with {!split}. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split g] derives a new generator from [g], advancing [g]. The two
    subsequent streams are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform random permutation of [0..n-1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement g ~k ~n] draws [k] distinct values from
    [0..n-1]. Requires [0 <= k <= n]. *)
