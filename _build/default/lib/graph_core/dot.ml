let to_dot ?(name = "g") ?label ?color g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle];\n";
  for v = 0 to Graph.n g - 1 do
    let lbl = match label with Some f -> f v | None -> string_of_int v in
    let attrs =
      match Option.bind color (fun f -> f v) with
      | Some c -> Printf.sprintf " [label=\"%s\", style=filled, fillcolor=\"%s\"]" lbl c
      | None -> Printf.sprintf " [label=\"%s\"]" lbl
    in
    Buffer.add_string buf (Printf.sprintf "  %d%s;\n" v attrs)
  done;
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path doc =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
