let live_fun g alive =
  match alive with
  | None -> fun _ -> true
  | Some a ->
      if Array.length a <> Graph.n g then invalid_arg "Components: alive mask has wrong length";
      fun v -> a.(v)

let labels ?alive g =
  let nv = Graph.n g in
  let live = live_fun g alive in
  let label = Array.make nv (-1) in
  let next = ref 0 in
  let q = Queue.create () in
  for s = 0 to nv - 1 do
    if live s && label.(s) < 0 then begin
      let c = !next in
      incr next;
      label.(s) <- c;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Graph.iter_neighbors g u (fun v ->
            if live v && label.(v) < 0 then begin
              label.(v) <- c;
              Queue.add v q
            end)
      done
    end
  done;
  label

let count ?alive g =
  let l = labels ?alive g in
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 l

let is_connected ?alive g =
  let live = live_fun g alive in
  let alive_count = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if live v then incr alive_count
  done;
  !alive_count > 0 && count ?alive g = 1

let components ?alive g =
  let l = labels ?alive g in
  let nclasses = Array.fold_left (fun acc c -> max acc (c + 1)) 0 l in
  let buckets = Array.make nclasses [] in
  for v = Graph.n g - 1 downto 0 do
    if l.(v) >= 0 then buckets.(l.(v)) <- v :: buckets.(l.(v))
  done;
  Array.to_list buckets
