type t = { parent : int array; weight : int array }

let build g =
  let n = Graph.n g in
  let parent = Array.make (max 1 n) 0 in
  let weight = Array.make (max 1 n) 0 in
  if n > 1 then begin
    let net = Connectivity.edge_flow_network g in
    for i = 1 to n - 1 do
      Maxflow.Net.reset_flow net;
      let f = Maxflow.max_flow net ~s:i ~t:parent.(i) in
      weight.(i) <- f;
      (* re-parent the unprocessed vertices that fall on i's side of the
         cut: classic Gusfield equivalent-flow-tree step *)
      let side = Maxflow.min_cut_side net ~s:i in
      for j = i + 1 to n - 1 do
        if side.(j) && parent.(j) = parent.(i) then parent.(j) <- i
      done
    done
  end;
  { parent; weight }

let check t v =
  if v < 0 || v >= Array.length t.parent then invalid_arg "Gomory_hu: vertex out of range"

let min_cut_value t u v =
  check t u;
  check t v;
  if u = v then invalid_arg "Gomory_hu.min_cut_value: u = v";
  (* walk u to the root recording running minima, then walk v up to the
     first recorded vertex *)
  let best_at = Hashtbl.create 32 in
  let rec up_u x best =
    Hashtbl.replace best_at x best;
    if x <> 0 then up_u t.parent.(x) (min best t.weight.(x))
  in
  up_u u max_int;
  let rec up_v x best =
    match Hashtbl.find_opt best_at x with
    | Some from_u -> min from_u best
    | None -> up_v t.parent.(x) (min best t.weight.(x))
  in
  up_v v max_int

let tree_edges t =
  List.init
    (Array.length t.parent - 1)
    (fun i ->
      let v = i + 1 in
      (v, t.parent.(v), t.weight.(v)))

let bottleneck t =
  match tree_edges t with
  | [] -> None
  | e :: rest ->
      Some
        (List.fold_left
           (fun ((_, _, bw) as best) ((_, _, w) as cand) -> if w < bw then cand else best)
           e rest)
