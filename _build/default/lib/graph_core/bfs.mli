(** Breadth-first search.

    All functions accept an optional [alive] mask (length [n]); vertices
    with [alive.(v) = false] are treated as removed — the view used for
    node-crash experiments. The source must be alive. *)

val distances : ?alive:bool array -> Graph.t -> src:int -> int array
(** Hop distances from [src]; unreachable (or dead) vertices get [-1]. *)

val distances_and_parents : ?alive:bool array -> Graph.t -> src:int -> int array * int array
(** As {!distances}, plus a BFS parent array ([-1] for [src] and
    unreached vertices). *)

val path : ?alive:bool array -> Graph.t -> src:int -> dst:int -> int list option
(** A shortest path from [src] to [dst] inclusive, if one exists. *)

val eccentricity : ?alive:bool array -> Graph.t -> src:int -> int option
(** Max finite distance from [src], or [None] when some alive vertex is
    unreachable (infinite eccentricity). *)

val reachable_count : ?alive:bool array -> Graph.t -> src:int -> int
(** Number of vertices reachable from [src], including [src] itself. *)
