(** Graphviz DOT export. *)

val to_dot :
  ?name:string ->
  ?label:(int -> string) ->
  ?color:(int -> string option) ->
  Graph.t ->
  string
(** Render the graph as an undirected DOT document. [label] supplies
    vertex labels (default: the vertex id); [color] an optional fill
    colour per vertex. *)

val write_file : path:string -> string -> unit
(** Write a rendered document to a file. *)
