type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

let grow q x =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nd = Array.make ncap x in
    Array.blit q.data 0 nd 0 q.size;
    q.data <- nd
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.cmp q.data.(i) q.data.(parent) < 0 then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(parent);
      q.data.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.cmp q.data.(l) q.data.(!smallest) < 0 then smallest := l;
  if r < q.size && q.cmp q.data.(r) q.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = q.data.(i) in
    q.data.(i) <- q.data.(!smallest);
    q.data.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q x =
  grow q x;
  q.data.(q.size) <- x;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some top
  end

let pop_exn q =
  match pop q with Some x -> x | None -> invalid_arg "Pqueue.pop_exn: empty"

let peek q = if q.size = 0 then None else Some q.data.(0)

let clear q = q.size <- 0

let to_sorted_list q =
  let copy = { cmp = q.cmp; data = Array.sub q.data 0 q.size; size = q.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
