(** Elementary graph generators.

    The LHG and Harary families live in their own libraries
    ([Harary], [Lhg_core]); these are the generic building blocks and
    test fixtures. *)

val path_graph : int -> Graph.t
(** P_n: vertices 0..n-1 in a line. *)

val cycle : int -> Graph.t
(** C_n, n ≥ 3. *)

val complete : int -> Graph.t
(** K_n. *)

val complete_bipartite : int -> int -> Graph.t
(** K_{a,b}: vertices 0..a-1 on the left, a..a+b-1 on the right. *)

val star : int -> Graph.t
(** K_{1,n-1} with centre 0. *)

val circulant : n:int -> jumps:int list -> Graph.t
(** Circulant graph C_n(jumps): vertex i adjacent to i ± j (mod n) for
    each jump j. Jumps are taken modulo n; jump 0 and multiples of n are
    rejected. The backbone of classic Harary graphs. *)

val grid : rows:int -> cols:int -> Graph.t
(** 2-D mesh; vertex (r,c) is [r*cols + c]. *)

val balanced_tree : branching:int -> height:int -> Graph.t
(** Rooted complete [branching]-ary tree of the given height (height 0 is
    a single vertex); vertices in BFS order with root 0. *)

val gnp : Prng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi G(n,p). *)

val random_tree : Prng.t -> n:int -> Graph.t
(** Uniform random labelled tree (random Prüfer sequence), n ≥ 1. *)
