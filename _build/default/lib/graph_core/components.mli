(** Connected components of an undirected graph. *)

val labels : ?alive:bool array -> Graph.t -> int array
(** Component label per vertex (labels are arbitrary but consistent);
    dead vertices get [-1]. *)

val count : ?alive:bool array -> Graph.t -> int
(** Number of connected components among alive vertices. *)

val is_connected : ?alive:bool array -> Graph.t -> bool
(** [true] iff the alive vertices form one non-empty connected component.
    A graph with zero alive vertices is not connected; a single alive
    vertex is. *)

val components : ?alive:bool array -> Graph.t -> int list list
(** The components as vertex lists, each ascending, ordered by smallest
    member. *)
