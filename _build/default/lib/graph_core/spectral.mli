(** Spectral expansion estimates.

    λ₂ — the second-largest eigenvalue of the normalised adjacency
    matrix D^{-1/2} A D^{-1/2} — controls how fast anything spreads:
    by Cheeger's inequality the conductance of the graph is at least
    (1 − λ₂)/2, and random processes mix in O(1/(1 − λ₂)) steps. The
    experiments use it to quantify *why* flooding on a ring-like Harary
    graph is slow (gap → 0) while LHGs and expanders keep a healthy gap.

    Computed by power iteration on (M + I)/2 with the known top
    eigenvector (∝ √degree) deflated — the shift makes the spectrum
    non-negative so the iteration converges to λ₂ itself rather than to
    whichever eigenvalue has the largest magnitude. *)

val second_eigenvalue : ?iterations:int -> ?seed:int -> Graph.t -> float
(** λ₂ estimate (default 600 iterations, ~1e-3 accuracy on the test
    fixtures).
    @raise Invalid_argument on graphs with < 2 vertices or with isolated
    vertices (degree 0 breaks the normalisation). *)

val spectral_gap : ?iterations:int -> ?seed:int -> Graph.t -> float
(** 1 − λ₂, clamped to [0, 1]. *)
