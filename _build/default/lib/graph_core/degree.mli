(** Degree statistics and regularity predicates. *)

type stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  histogram : (int * int) list;  (** (degree, count), ascending degree *)
}

val stats : Graph.t -> stats
(** @raise Invalid_argument on the empty graph. *)

val is_regular : Graph.t -> bool
(** All vertices share one degree (vacuously true for n ≤ 1). *)

val is_k_regular : Graph.t -> k:int -> bool

val degree_sequence : Graph.t -> int list
(** Descending degree sequence. *)
