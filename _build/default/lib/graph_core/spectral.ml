let second_eigenvalue ?(iterations = 600) ?(seed = 7) g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Spectral.second_eigenvalue: need at least 2 vertices";
  let inv_sqrt_deg =
    Array.init n (fun v ->
        let d = Graph.degree g v in
        if d = 0 then invalid_arg "Spectral.second_eigenvalue: isolated vertex";
        1.0 /. sqrt (float_of_int d))
  in
  (* top eigenvector of the normalised adjacency: u_v = sqrt(deg v), normalised *)
  let top = Array.init n (fun v -> 1.0 /. inv_sqrt_deg.(v)) in
  let norm x = sqrt (Array.fold_left (fun acc xi -> acc +. (xi *. xi)) 0.0 x) in
  let scale x s = Array.iteri (fun i xi -> x.(i) <- xi *. s) x in
  scale top (1.0 /. norm top);
  let deflate x =
    let proj = ref 0.0 in
    Array.iteri (fun i xi -> proj := !proj +. (xi *. top.(i))) x;
    Array.iteri (fun i xi -> x.(i) <- xi -. (!proj *. top.(i))) x
  in
  (* y = ((M + I)/2) x  where M = D^{-1/2} A D^{-1/2} *)
  let apply x y =
    for v = 0 to n - 1 do
      let acc = ref 0.0 in
      Graph.iter_neighbors g v (fun w -> acc := !acc +. (x.(w) *. inv_sqrt_deg.(w)));
      y.(v) <- 0.5 *. (x.(v) +. (!acc *. inv_sqrt_deg.(v)))
    done
  in
  let rng = Prng.create ~seed in
  let x = Array.init n (fun _ -> Prng.float rng 2.0 -. 1.0) in
  deflate x;
  let nx = norm x in
  if nx > 0.0 then scale x (1.0 /. nx);
  let y = Array.make n 0.0 in
  for _ = 1 to iterations do
    apply x y;
    Array.blit y 0 x 0 n;
    deflate x;
    let nx = norm x in
    if nx > 1e-300 then scale x (1.0 /. nx)
  done;
  (* Rayleigh quotient of the shifted operator, then undo the shift. *)
  apply x y;
  let num = ref 0.0 and den = ref 0.0 in
  for v = 0 to n - 1 do
    num := !num +. (x.(v) *. y.(v));
    den := !den +. (x.(v) *. x.(v))
  done;
  if !den < 1e-300 then -1.0 (* x collapsed: spectrum besides the top is -1 (e.g. K2) *)
  else (2.0 *. (!num /. !den)) -. 1.0

let spectral_gap ?iterations ?seed g =
  let l2 = second_eigenvalue ?iterations ?seed g in
  min 1.0 (max 0.0 (1.0 -. l2))
