(** Spanning-tree extraction.

    Trees are the message-optimal dissemination topology (n−1 links,
    n−1 messages) but are 1-connected: a single failure partitions them.
    They anchor the fragile end of the fault-tolerance experiments. *)

val bfs_tree : Graph_core.Graph.t -> root:int -> Graph_core.Graph.t
(** The BFS spanning tree of the root's component, as a graph on the
    same vertex set. *)

val random_spanning_tree : Graph_core.Prng.t -> Graph_core.Graph.t -> Graph_core.Graph.t
(** A uniformly random spanning tree (Wilson's loop-erased random walk).
    Requires a connected graph. *)
