(** Hypercube topologies Q_d.

    The d-dimensional hypercube has 2^d vertices, is d-regular,
    d-connected and has diameter d = log₂ n — an LHG, but one that exists
    only when n is a power of two (the applicability limitation the
    paper's introduction points out). *)

val make : dim:int -> Graph_core.Graph.t
(** Q_dim on 2^dim vertices; vertices are adjacent iff their ids differ
    in exactly one bit. [dim] between 0 and 29. *)

val admissible : n:int -> k:int -> bool
(** True iff a k-connected hypercube on n vertices exists:
    n = 2^k exactly. *)

val admissible_sizes : k:int -> max_n:int -> int list
(** The (at most one) admissible n ≤ max_n. *)
