module Graph = Graph_core.Graph
module Prng = Graph_core.Prng

let hamiltonian_cycles rng ~n ~cycles =
  if n < 3 then invalid_arg "Expander.hamiltonian_cycles: n < 3";
  if cycles < 1 then invalid_arg "Expander.hamiltonian_cycles: cycles < 1";
  let g = Graph.create ~n in
  for _ = 1 to cycles do
    let p = Prng.permutation rng n in
    for i = 0 to n - 1 do
      let u = p.(i) and v = p.((i + 1) mod n) in
      if u <> v then Graph.add_edge g u v
    done
  done;
  g

let random_regular rng ~n ~degree =
  if degree < 2 || degree mod 2 <> 0 then
    invalid_arg "Expander.random_regular: degree must be even and >= 2";
  hamiltonian_cycles rng ~n ~cycles:(degree / 2)
