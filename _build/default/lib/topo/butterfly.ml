module Graph = Graph_core.Graph

let make ~dim =
  if dim < 2 || dim > 24 then invalid_arg "Butterfly.make: dim outside [2, 24]";
  let rows = 1 lsl dim in
  let n = dim * rows in
  let g = Graph.create ~n in
  let id level row = (level * rows) + row in
  for level = 0 to dim - 1 do
    let next = (level + 1) mod dim in
    for row = 0 to rows - 1 do
      Graph.add_edge g (id level row) (id next row);
      Graph.add_edge g (id level row) (id next (row lxor (1 lsl level)))
    done
  done;
  g

let admissible_sizes ~max_n =
  let rec go d acc =
    let n = d * (1 lsl d) in
    if n > max_n then List.rev acc else go (d + 1) (n :: acc)
  in
  go 2 []
