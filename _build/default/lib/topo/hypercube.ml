module Graph = Graph_core.Graph

let make ~dim =
  if dim < 0 || dim > 29 then invalid_arg "Hypercube.make: dim outside [0, 29]";
  let n = 1 lsl dim in
  let g = Graph.create ~n in
  for v = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let w = v lxor (1 lsl b) in
      if v < w then Graph.add_edge g v w
    done
  done;
  g

let admissible ~n ~k = k >= 0 && k <= 29 && n = 1 lsl k

let admissible_sizes ~k ~max_n = if k >= 0 && k <= 29 && 1 lsl k <= max_n then [ 1 lsl k ] else []
