(** Kautz graphs K(b, d).

    Vertices are length-(d+1) words over an alphabet of b+1 symbols with
    no two consecutive symbols equal — (b+1)·b^d of them; edges connect
    each word to its left-shifts. Degree ≤ 2b, diameter d+1 (the word length): the densest
    known degree-diameter family and another "exists only at magic
    sizes" baseline for T5. *)

val size : b:int -> d:int -> int
(** (b+1)·b^d. *)

val make : b:int -> d:int -> Graph_core.Graph.t
(** Requires b ≥ 2, d ≥ 1 and size ≤ 2^22. *)

val admissible_sizes : b:int -> max_n:int -> int list
