module Generators = Graph_core.Generators

let log2_floor n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let make ~n =
  if n < 3 then invalid_arg "Chord.make: n < 3";
  let jumps =
    List.filter (fun j -> j < n)
      (1 :: List.init (max 0 (log2_floor n - 1)) (fun i -> 1 lsl (i + 1)))
  in
  Generators.circulant ~n ~jumps

let expected_degree ~n = max 1 (log2_floor n)
