(** Random regular expander overlays (Law–Siu style).

    A 2c-regular graph built as the union of c independent random
    Hamiltonian cycles — the randomized baseline for LHGs: logarithmic
    diameter and good connectivity hold only {e with high probability},
    which is exactly the qualitative difference from the deterministic
    LHG guarantees highlighted in the related-work discussion. *)

val hamiltonian_cycles : Graph_core.Prng.t -> n:int -> cycles:int -> Graph_core.Graph.t
(** Union of [cycles] uniformly random Hamiltonian cycles on n vertices
    (n ≥ 3). Coinciding edges are merged, so the degree is at most
    2·cycles. *)

val random_regular : Graph_core.Prng.t -> n:int -> degree:int -> Graph_core.Graph.t
(** Even-degree wrapper: [degree/2] Hamiltonian cycles.
    @raise Invalid_argument when [degree] is odd or < 2. *)
