module Graph = Graph_core.Graph
module Bfs = Graph_core.Bfs
module Prng = Graph_core.Prng

let bfs_tree g ~root =
  let _, parent = Bfs.distances_and_parents g ~src:root in
  let t = Graph.create ~n:(Graph.n g) in
  Array.iteri (fun v p -> if p >= 0 then Graph.add_edge t v p) parent;
  t

let random_spanning_tree rng g =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Spanning_tree.random_spanning_tree: empty graph";
  let in_tree = Array.make n false in
  let next = Array.make n (-1) in
  let root = Prng.int rng n in
  in_tree.(root) <- true;
  let random_neighbor v =
    let ns = Graph.neighbors g v in
    match ns with
    | [] -> invalid_arg "Spanning_tree.random_spanning_tree: disconnected graph"
    | _ -> List.nth ns (Prng.int rng (List.length ns))
  in
  for start = 0 to n - 1 do
    if not in_tree.(start) then begin
      (* random walk with loop erasure, recorded in [next] *)
      let v = ref start in
      while not in_tree.(!v) do
        next.(!v) <- random_neighbor !v;
        v := next.(!v)
      done;
      let v = ref start in
      while not in_tree.(!v) do
        in_tree.(!v) <- true;
        v := next.(!v)
      done
    end
  done;
  let t = Graph.create ~n in
  for v = 0 to n - 1 do
    if v <> root && next.(v) >= 0 && in_tree.(v) then
      (* follow the final loop-erased successor chain *)
      Graph.add_edge t v next.(v)
  done;
  t
