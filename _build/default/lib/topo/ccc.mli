(** Cube-connected cycles CCC(d).

    Replace each hypercube corner with a d-cycle; vertex (corner, pos)
    links to its cycle neighbours and across dimension [pos]. 3-regular,
    d·2^d vertices, Θ(d) diameter — the constant-degree cousin of the
    hypercube, with the same "only at magic sizes" limitation. *)

val make : dim:int -> Graph_core.Graph.t
(** Requires 3 ≤ dim ≤ 22; vertex (corner, pos) has id corner·dim + pos. *)

val admissible_sizes : max_n:int -> int list
(** All d·2^d ≤ max_n for d ≥ 3. *)
