lib/topo/kautz.mli: Graph_core
