lib/topo/hypercube.mli: Graph_core
