lib/topo/debruijn.mli: Graph_core
