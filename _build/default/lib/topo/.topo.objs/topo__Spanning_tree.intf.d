lib/topo/spanning_tree.mli: Graph_core
