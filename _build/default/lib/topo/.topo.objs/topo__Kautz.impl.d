lib/topo/kautz.ml: Array Graph_core Hashtbl List
