lib/topo/chord.mli: Graph_core
