lib/topo/expander.mli: Graph_core
