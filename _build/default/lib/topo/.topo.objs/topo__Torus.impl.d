lib/topo/torus.ml: Graph_core
