lib/topo/expander.ml: Array Graph_core
