lib/topo/butterfly.ml: Graph_core List
