lib/topo/hypercube.ml: Graph_core
