lib/topo/butterfly.mli: Graph_core
