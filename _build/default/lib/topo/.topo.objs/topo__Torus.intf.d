lib/topo/torus.mli: Graph_core
