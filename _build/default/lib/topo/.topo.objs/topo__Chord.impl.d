lib/topo/chord.ml: Graph_core List
