lib/topo/ccc.ml: Graph_core List
