lib/topo/debruijn.ml: Graph_core List
