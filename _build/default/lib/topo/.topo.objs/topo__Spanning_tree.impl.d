lib/topo/spanning_tree.ml: Array Graph_core List
