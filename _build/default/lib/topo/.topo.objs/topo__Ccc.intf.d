lib/topo/ccc.mli: Graph_core
