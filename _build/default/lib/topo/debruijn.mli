(** Undirected de Bruijn graphs B(b, d).

    The directed de Bruijn graph on b^d vertices connects word
    w = (x·b + y) mod b^d style shifts; the undirected version used in
    overlay networks (Koorde-style) identifies v with its shift
    neighbours, giving degree ≤ 2b, connectivity 2b−2 in the classic
    analysis, and diameter d = log_b n. Like hypercubes, they exist only
    for n = b^d — a sparse applicability set. *)

val make : base:int -> dim:int -> Graph_core.Graph.t
(** Vertices 0..base^dim−1; v is adjacent to (v·base + c) mod base^dim
    for c = 0..base−1 (self-loops and duplicates dropped). Requires
    base ≥ 2, dim ≥ 1 and base^dim ≤ 2^29. *)

val admissible : n:int -> base:int -> bool
(** n is an exact power base^d. *)

val admissible_sizes : base:int -> max_n:int -> int list
(** All powers of [base] up to [max_n], smallest first. *)
