module Graph = Graph_core.Graph

let make ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Torus.make: needs rows >= 3 and cols >= 3";
  let g = Graph.create ~n:(rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      Graph.add_edge g v ((r * cols) + ((c + 1) mod cols));
      Graph.add_edge g v ((((r + 1) mod rows) * cols) + c)
    done
  done;
  g
