(** 2-D torus (wrapped mesh).

    4-regular, 4-connected, diameter (rows+cols)/2 — polynomial, not
    logarithmic; a useful "in-between" baseline between Harary's linear
    diameter and the LHG's logarithmic one. *)

val make : rows:int -> cols:int -> Graph_core.Graph.t
(** Vertex (r,c) is r·cols + c; wrap-around in both dimensions.
    Requires rows ≥ 3 and cols ≥ 3 (smaller sizes create parallel
    edges). *)
