module Graph = Graph_core.Graph

let size ~b ~d =
  let rec pow acc i = if i = 0 then acc else pow (acc * b) (i - 1) in
  (b + 1) * pow 1 d

let make ~b ~d =
  if b < 2 then invalid_arg "Kautz.make: b < 2";
  if d < 1 then invalid_arg "Kautz.make: d < 1";
  let n = size ~b ~d in
  if n > 1 lsl 22 then invalid_arg "Kautz.make: too large";
  (* Enumerate admissible words in lexicographic order and index them. *)
  let words = Array.make n [||] in
  let index = Hashtbl.create (2 * n) in
  let count = ref 0 in
  let rec enumerate word pos =
    if pos > d then begin
      words.(!count) <- Array.of_list (List.rev word);
      Hashtbl.replace index (List.rev word) !count;
      incr count
    end
    else
      for c = 0 to b do
        match word with
        | prev :: _ when prev = c -> ()
        | _ -> enumerate (c :: word) (pos + 1)
      done
  in
  enumerate [] 0;
  assert (!count = n);
  let g = Graph.create ~n in
  for v = 0 to n - 1 do
    let w = words.(v) in
    let shifted = List.init d (fun i -> w.(i + 1)) in
    for c = 0 to b do
      if c <> w.(d) then begin
        let target = shifted @ [ c ] in
        let u = Hashtbl.find index target in
        if u <> v then Graph.add_edge g v u
      end
    done
  done;
  g

let admissible_sizes ~b ~max_n =
  if b < 2 then invalid_arg "Kautz.admissible_sizes: b < 2";
  let rec go d acc =
    let n = size ~b ~d in
    if n > max_n then List.rev acc else go (d + 1) (n :: acc)
  in
  go 1 []
