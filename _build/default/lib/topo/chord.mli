(** Chord-style finger overlays.

    A ring plus "fingers" at power-of-two distances: vertex i links to
    i ± 1 and i + 2^j (mod n) for j = 1..⌊log₂ n⌋−1. Exists for every n
    (like LHGs) with Θ(log n) degree and diameter — but pays Θ(n log n)
    edges where a k-regular LHG pays kn/2 for the same latency class, a
    useful cost-comparison baseline. *)

val make : n:int -> Graph_core.Graph.t
(** Requires n ≥ 3. *)

val expected_degree : n:int -> int
(** ⌊log₂ n⌋ distinct jump lengths (ring + fingers 2..2^⌊log₂ n⌋−1), so
    degrees are about twice that. *)
