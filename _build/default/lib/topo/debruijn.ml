module Graph = Graph_core.Graph

let power ~base ~dim =
  let rec go acc i = if i = 0 then acc else go (acc * base) (i - 1) in
  go 1 dim

let make ~base ~dim =
  if base < 2 then invalid_arg "Debruijn.make: base < 2";
  if dim < 1 then invalid_arg "Debruijn.make: dim < 1";
  let n = power ~base ~dim in
  if n > 1 lsl 29 then invalid_arg "Debruijn.make: too large";
  let g = Graph.create ~n in
  for v = 0 to n - 1 do
    for c = 0 to base - 1 do
      let w = ((v * base) + c) mod n in
      if v <> w then Graph.add_edge g v w
    done
  done;
  g

let admissible ~n ~base =
  if base < 2 || n < base then false
  else begin
    let rec divide v = if v = 1 then true else v mod base = 0 && divide (v / base) in
    divide n
  end

let admissible_sizes ~base ~max_n =
  if base < 2 then invalid_arg "Debruijn.admissible_sizes: base < 2";
  let rec go v acc = if v > max_n then List.rev acc else go (v * base) (v :: acc) in
  go base []
