module Graph = Graph_core.Graph

let make ~dim =
  if dim < 3 || dim > 22 then invalid_arg "Ccc.make: dim outside [3, 22]";
  let corners = 1 lsl dim in
  let g = Graph.create ~n:(corners * dim) in
  let id corner pos = (corner * dim) + pos in
  for corner = 0 to corners - 1 do
    for pos = 0 to dim - 1 do
      Graph.add_edge g (id corner pos) (id corner ((pos + 1) mod dim));
      let other = corner lxor (1 lsl pos) in
      if corner < other then Graph.add_edge g (id corner pos) (id other pos)
    done
  done;
  g

let admissible_sizes ~max_n =
  let rec go d acc =
    let n = d * (1 lsl d) in
    if n > max_n then List.rev acc else go (d + 1) (n :: acc)
  in
  go 3 []
