(** Wrapped butterfly networks BF(d).

    d·2^d vertices arranged in d levels of 2^d rows; vertex (level, row)
    connects to ((level+1) mod d, row) and ((level+1) mod d,
    row ⊕ 2^level). 4-regular with Θ(log n) diameter — the Viceroy-style
    constant-degree overlay baseline. *)

val make : dim:int -> Graph_core.Graph.t
(** BF(dim) on dim·2^dim vertices; vertex (l, r) has id l·2^dim + r.
    Requires 2 ≤ dim ≤ 24. *)

val admissible_sizes : max_n:int -> int list
(** All d·2^d ≤ max_n for d ≥ 2. *)
