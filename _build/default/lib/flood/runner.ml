module Graph = Graph_core.Graph
module Prng = Graph_core.Prng

type aggregate = {
  trials : int;
  mean_coverage : float;
  min_coverage : float;
  all_covered_fraction : float;
  mean_messages : float;
  mean_completion : float;
  mean_max_hops : float;
}

let random_crashes rng ~n ~count ~avoid =
  if count < 0 || count > n - 1 then invalid_arg "Runner.random_crashes: bad count";
  (* Sample from n-1 slots, skipping [avoid] by shifting. *)
  Prng.sample_without_replacement rng ~k:count ~n:(n - 1)
  |> List.map (fun v -> if v >= avoid then v + 1 else v)

let random_link_failures rng g ~count =
  let es = Array.of_list (Graph.edges g) in
  if count < 0 || count > Array.length es then
    invalid_arg "Runner.random_link_failures: bad count";
  Prng.sample_without_replacement rng ~k:count ~n:(Array.length es)
  |> List.map (fun i -> es.(i))

let coverage_of ~delivered ~crashed ~n =
  let is_crashed = Array.make n false in
  List.iter (fun v -> is_crashed.(v) <- true) crashed;
  let alive = ref 0 and covered = ref 0 in
  for v = 0 to n - 1 do
    if not is_crashed.(v) then begin
      incr alive;
      if delivered.(v) then incr covered
    end
  done;
  float_of_int !covered /. float_of_int (max 1 !alive)

let aggregate_of results =
  let trials = List.length results in
  let ft = float_of_int trials in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 results in
  let covs = List.map (fun (c, _, _, _) -> c) results in
  {
    trials;
    mean_coverage = sum (fun (c, _, _, _) -> c) /. ft;
    min_coverage = List.fold_left min 1.0 covs;
    all_covered_fraction =
      float_of_int (List.length (List.filter (fun c -> c >= 1.0) covs)) /. ft;
    mean_messages = sum (fun (_, m, _, _) -> float_of_int m) /. ft;
    mean_completion = sum (fun (_, _, t, _) -> t) /. ft;
    mean_max_hops = sum (fun (_, _, _, h) -> float_of_int h) /. ft;
  }

let flood_trials ?latency ?loss_rate ?(link_failures = 0) ~graph ~source ~crash_count ~trials ~seed () =
  if trials < 1 then invalid_arg "Runner.flood_trials: trials < 1";
  let rng = Prng.create ~seed in
  let n = Graph.n graph in
  let results =
    List.init trials (fun t ->
        let crashed = random_crashes rng ~n ~count:crash_count ~avoid:source in
        let failed_links =
          if link_failures = 0 then [] else random_link_failures rng graph ~count:link_failures
        in
        let r =
          Flooding.run ?latency ?loss_rate ~crashed ~failed_links ~seed:(seed + (1000 * t)) ~graph ~source ()
        in
        ( coverage_of ~delivered:r.Flooding.delivered ~crashed ~n,
          r.Flooding.messages_sent,
          r.Flooding.completion_time,
          r.Flooding.max_hops ))
  in
  aggregate_of results

let gossip_trials ?latency ?loss_rate ~graph ~source ~fanout ~crash_count ~trials ~seed () =
  if trials < 1 then invalid_arg "Runner.gossip_trials: trials < 1";
  let rng = Prng.create ~seed in
  let n = Graph.n graph in
  let ttl = Gossip.default_ttl ~n in
  let results =
    List.init trials (fun t ->
        let crashed = random_crashes rng ~n ~count:crash_count ~avoid:source in
        let r =
          Gossip.run ?latency ?loss_rate ~crashed ~seed:(seed + (1000 * t)) ~graph ~source ~fanout ~ttl ()
        in
        ( coverage_of ~delivered:r.Gossip.delivered ~crashed ~n,
          r.Gossip.messages_sent,
          r.Gossip.completion_time,
          0 ))
  in
  aggregate_of results
