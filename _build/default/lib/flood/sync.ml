module Graph = Graph_core.Graph
module Bfs = Graph_core.Bfs

type t = { reached : int; rounds : int; messages : int; covers_all_alive : bool }

let flood ?alive g ~source =
  let dist = Bfs.distances ?alive g ~src:source in
  let live = match alive with None -> fun _ -> true | Some a -> fun v -> a.(v) in
  let reached = ref 0 and rounds = ref 0 and degree_sum = ref 0 and alive_total = ref 0 in
  Array.iteri
    (fun v d ->
      if live v then incr alive_total;
      if d >= 0 then begin
        incr reached;
        if d > !rounds then rounds := d;
        degree_sum := !degree_sum + Graph.degree g v
      end)
    dist;
  (* Every reached vertex sends to all neighbours except its first
     parent; the source has no parent. *)
  let messages = !degree_sum - (!reached - 1) in
  { reached = !reached; rounds = !rounds; messages; covers_all_alive = !reached = !alive_total }

let message_bound g = (2 * Graph.m g) - (Graph.n g - 1)
