(** Experiment helpers: failure sampling and repeated trials.

    These drive the fault-tolerance figures: sample f random crashed
    nodes (never the source), flood, measure coverage of the surviving
    component, repeat over seeds, and aggregate. *)

type aggregate = {
  trials : int;
  mean_coverage : float;  (** of alive nodes *)
  min_coverage : float;
  all_covered_fraction : float;  (** trials with 100% coverage of alive nodes *)
  mean_messages : float;
  mean_completion : float;
  mean_max_hops : float;
}

val random_crashes : Graph_core.Prng.t -> n:int -> count:int -> avoid:int -> int list
(** [count] distinct crash victims among [0..n-1] − \{avoid\}. *)

val random_link_failures : Graph_core.Prng.t -> Graph_core.Graph.t -> count:int -> (int * int) list
(** [count] distinct edges of the graph. *)

val flood_trials :
  ?latency:Netsim.Network.latency ->
  ?loss_rate:float ->
  ?link_failures:int ->
  graph:Graph_core.Graph.t ->
  source:int ->
  crash_count:int ->
  trials:int ->
  seed:int ->
  unit ->
  aggregate
(** Repeated flooding runs, fresh random failure sets per trial.
    Coverage counts delivered alive nodes over all alive nodes, so a
    partitioned survivor graph shows up as < 1 coverage. *)

val gossip_trials :
  ?latency:Netsim.Network.latency ->
  ?loss_rate:float ->
  graph:Graph_core.Graph.t ->
  source:int ->
  fanout:int ->
  crash_count:int ->
  trials:int ->
  seed:int ->
  unit ->
  aggregate
(** Same aggregation for the gossip baseline (TTL
    {!Gossip.default_ttl}). [mean_max_hops] is reported as 0 — gossip
    payloads carry no hop counter. *)
