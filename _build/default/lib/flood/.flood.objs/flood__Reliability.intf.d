lib/flood/reliability.mli: Graph_core
