lib/flood/sync.ml: Array Graph_core
