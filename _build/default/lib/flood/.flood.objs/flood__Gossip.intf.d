lib/flood/gossip.mli: Graph_core Netsim
