lib/flood/sync.mli: Graph_core
