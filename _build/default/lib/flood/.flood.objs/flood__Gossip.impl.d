lib/flood/gossip.ml: Array Graph_core List Netsim
