lib/flood/multi.ml: Array Graph_core Hashtbl List Netsim
