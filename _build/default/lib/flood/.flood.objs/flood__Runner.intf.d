lib/flood/runner.mli: Graph_core Netsim
