lib/flood/reliable.ml: Array Graph_core Hashtbl List Multi Netsim
