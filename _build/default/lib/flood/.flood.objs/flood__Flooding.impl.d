lib/flood/flooding.ml: Array Graph_core List Netsim
