lib/flood/flooding.mli: Graph_core Netsim
