lib/flood/runner.ml: Array Flooding Gossip Graph_core List
