lib/flood/pif.ml: Array Graph_core List Netsim
