lib/flood/pif.mli: Graph_core Netsim
