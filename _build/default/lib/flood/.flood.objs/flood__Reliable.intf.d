lib/flood/reliable.mli: Graph_core Multi Netsim
