lib/flood/multi.mli: Graph_core Netsim
