lib/flood/reliability.ml: Array Gossip Graph_core Sync
