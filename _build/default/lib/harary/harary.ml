module Graph = Graph_core.Graph
module Generators = Graph_core.Generators

let check ~k ~n =
  if k < 2 then invalid_arg "Harary.make: k must be >= 2";
  if k >= n then invalid_arg "Harary.make: k must be < n"

let make ~k ~n =
  check ~k ~n;
  let r = k / 2 in
  if k mod 2 = 0 then Generators.circulant ~n ~jumps:(List.init r (fun i -> i + 1))
  else if n mod 2 = 0 then
    Generators.circulant ~n ~jumps:((n / 2) :: List.init r (fun i -> i + 1))
  else begin
    let g =
      if r = 0 then Graph.create ~n
      else Generators.circulant ~n ~jumps:(List.init r (fun i -> i + 1))
    in
    let h = (n - 1) / 2 in
    for i = 0 to h do
      Graph.add_edge g i (i + h)
    done;
    g
  end

let edge_count ~k ~n =
  check ~k ~n;
  ((k * n) + 1) / 2

let diameter_formula ~k ~n =
  check ~k ~n;
  let r = max 1 (k / 2) in
  (* Farthest circulant distance is about n/2 positions, covered r at a
     time; the odd-k diameter chord halves it once. *)
  let base = ((n / 2) + r - 1) / r in
  if k mod 2 = 0 then base else max 1 ((base / 2) + 1)
