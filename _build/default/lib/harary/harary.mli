(** Classic Harary graphs H(k,n).

    H(k,n) is the canonical minimal k-connected graph on n vertices with
    exactly ⌈kn/2⌉ edges (Harary, 1962). The construction is
    circulant-based:
    - k = 2r: the circulant C_n(1..r);
    - k = 2r+1, n even: C_n(1..r) plus all "diameters" i ↔ i + n/2;
    - k = 2r+1, n odd: C_n(1..r) plus the (n+1)/2 chords
      i ↔ i + (n−1)/2 for i = 0..(n−1)/2 (one vertex ends up with
      degree k+1).

    These graphs motivate the paper: they are k-connected and
    link-minimal but their diameter grows as Θ(n/k), making flooding
    latency linear in n — the problem LHGs solve. *)

val make : k:int -> n:int -> Graph_core.Graph.t
(** [make ~k ~n] builds H(k,n).
    @raise Invalid_argument unless [2 <= k] and [k < n]. *)

val edge_count : k:int -> n:int -> int
(** ⌈kn/2⌉ — the number of edges of H(k,n), which is also the minimum
    possible for any k-edge-connected graph on n vertices. *)

val diameter_formula : k:int -> n:int -> int
(** Analytic diameter of the even-k case: ⌈(n/2) / ⌊k/2⌋⌉-style bound
    used as the "linear diameter" reference curve in the experiments.
    For odd k the true diameter is within 1 of this value for the n
    used in the paper's plots. *)
