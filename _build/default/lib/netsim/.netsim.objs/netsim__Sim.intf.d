lib/netsim/sim.mli: Graph_core
