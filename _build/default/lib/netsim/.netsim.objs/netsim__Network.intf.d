lib/netsim/network.mli: Graph_core Sim Trace
