lib/netsim/trace.ml: Array Format List
