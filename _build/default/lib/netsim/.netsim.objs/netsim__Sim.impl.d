lib/netsim/sim.ml: Graph_core
