lib/netsim/network.ml: Array Float Graph_core Hashtbl Sim Trace
