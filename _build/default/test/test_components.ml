open Helpers
module Graph = Graph_core.Graph
module Components = Graph_core.Components
module Generators = Graph_core.Generators

let test_single_component () =
  check_int "petersen" 1 (Components.count (petersen ()));
  check_bool "connected" true (Components.is_connected (petersen ()))

let test_isolated_vertices () =
  let g = Graph.create ~n:4 in
  check_int "four singletons" 4 (Components.count g);
  check_bool "not connected" false (Components.is_connected g)

let test_empty_graph () =
  let g = Graph.create ~n:0 in
  check_int "zero components" 0 (Components.count g);
  check_bool "empty not connected" false (Components.is_connected g)

let test_single_vertex_connected () =
  check_bool "K1 connected" true (Components.is_connected (Graph.create ~n:1))

let test_two_components () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3); (3, 4) ] in
  check_int "two" 2 (Components.count g);
  Alcotest.(check (list (list int))) "membership" [ [ 0; 1 ]; [ 2; 3; 4 ] ]
    (Components.components g)

let test_labels_consistent () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3); (3, 4) ] in
  let l = Components.labels g in
  check_bool "0~1" true (l.(0) = l.(1));
  check_bool "2~3~4" true (l.(2) = l.(3) && l.(3) = l.(4));
  check_bool "0!~2" true (l.(0) <> l.(2))

let test_alive_mask_splits () =
  let g = Generators.path_graph 5 in
  let alive = [| true; true; false; true; true |] in
  check_int "cut splits path" 2 (Components.count ~alive g);
  let l = Components.labels ~alive g in
  check_int "dead label" (-1) l.(2)

let test_bridge_removal () =
  let g = barbell () in
  check_bool "barbell connected" true (Components.is_connected g);
  Graph.remove_edge g 2 3;
  check_int "two triangles" 2 (Components.count g)

let prop_components_partition =
  qcheck "components partition the alive vertices" QCheck2.Gen.(int_bound 1000) (fun seed ->
      let rng = Graph_core.Prng.create ~seed in
      let g = Generators.gnp rng ~n:25 ~p:0.08 in
      let comps = Components.components g in
      let all = List.sort compare (List.concat comps) in
      all = List.init 25 Fun.id)

let suite =
  [
    Alcotest.test_case "single component" `Quick test_single_component;
    Alcotest.test_case "isolated vertices" `Quick test_isolated_vertices;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "single vertex" `Quick test_single_vertex_connected;
    Alcotest.test_case "two components" `Quick test_two_components;
    Alcotest.test_case "labels consistent" `Quick test_labels_consistent;
    Alcotest.test_case "alive mask splits" `Quick test_alive_mask_splits;
    Alcotest.test_case "bridge removal" `Quick test_bridge_removal;
    prop_components_partition;
  ]
