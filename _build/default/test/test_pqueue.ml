open Helpers
module Pqueue = Graph_core.Pqueue
module Prng = Graph_core.Prng

let test_empty () =
  let q = Pqueue.create ~cmp:compare in
  check_bool "is_empty" true (Pqueue.is_empty q);
  check_int "length" 0 (Pqueue.length q);
  Alcotest.(check (option int)) "pop" None (Pqueue.pop q);
  Alcotest.(check (option int)) "peek" None (Pqueue.peek q)

let test_pop_exn_empty () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Pqueue.pop_exn: empty") (fun () ->
      ignore (Pqueue.pop_exn q))

let test_ordering () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (Pqueue.push q) [ 5; 3; 8; 1; 9; 2 ];
  let order = List.init 6 (fun _ -> Pqueue.pop_exn q) in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 8; 9 ] order

let test_duplicates () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (Pqueue.push q) [ 4; 4; 4; 1; 1 ];
  let order = List.init 5 (fun _ -> Pqueue.pop_exn q) in
  Alcotest.(check (list int)) "duplicates preserved" [ 1; 1; 4; 4; 4 ] order

let test_peek_does_not_remove () =
  let q = Pqueue.create ~cmp:compare in
  Pqueue.push q 3;
  Alcotest.(check (option int)) "peek" (Some 3) (Pqueue.peek q);
  check_int "still there" 1 (Pqueue.length q)

let test_clear () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (Pqueue.push q) [ 1; 2; 3 ];
  Pqueue.clear q;
  check_bool "cleared" true (Pqueue.is_empty q)

let test_to_sorted_list_nondestructive () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (Pqueue.push q) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Pqueue.to_sorted_list q);
  check_int "unchanged" 3 (Pqueue.length q)

let test_custom_comparator () =
  let q = Pqueue.create ~cmp:(fun a b -> compare b a) in
  List.iter (Pqueue.push q) [ 5; 3; 8 ];
  Alcotest.(check int) "max first" 8 (Pqueue.pop_exn q)

let test_interleaved () =
  let q = Pqueue.create ~cmp:compare in
  Pqueue.push q 5;
  Pqueue.push q 1;
  check_int "pop min" 1 (Pqueue.pop_exn q);
  Pqueue.push q 0;
  Pqueue.push q 7;
  check_int "pop new min" 0 (Pqueue.pop_exn q);
  check_int "pop" 5 (Pqueue.pop_exn q);
  check_int "pop" 7 (Pqueue.pop_exn q)

let test_random_stress () =
  let g = rng () in
  let values = List.init 2000 (fun _ -> Prng.int g 1_000) in
  let q = Pqueue.create ~cmp:compare in
  List.iter (Pqueue.push q) values;
  let drained = List.init 2000 (fun _ -> Pqueue.pop_exn q) in
  Alcotest.(check (list int)) "matches sort" (List.sort compare values) drained

let prop_heap_matches_sort =
  qcheck "pqueue drain = List.sort"
    QCheck2.Gen.(list_size (int_bound 200) int)
    (fun xs ->
      let q = Pqueue.create ~cmp:compare in
      List.iter (Pqueue.push q) xs;
      Pqueue.to_sorted_list q = List.sort compare xs)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "pop_exn on empty" `Quick test_pop_exn_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list_nondestructive;
    Alcotest.test_case "custom comparator" `Quick test_custom_comparator;
    Alcotest.test_case "interleaved" `Quick test_interleaved;
    Alcotest.test_case "random stress" `Quick test_random_stress;
    prop_heap_matches_sort;
  ]
