open Helpers
module Graph = Graph_core.Graph
module Bfs = Graph_core.Bfs
module Generators = Graph_core.Generators

let test_distances_path () =
  let g = Generators.path_graph 5 in
  Alcotest.(check (array int)) "line distances" [| 0; 1; 2; 3; 4 |] (Bfs.distances g ~src:0)

let test_distances_cycle () =
  let g = Generators.cycle 6 in
  Alcotest.(check (array int)) "cycle distances" [| 0; 1; 2; 3; 2; 1 |] (Bfs.distances g ~src:0)

let test_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let d = Bfs.distances g ~src:0 in
  check_int "reachable" 1 d.(1);
  check_int "unreachable" (-1) d.(2)

let test_alive_mask_blocks () =
  let g = Generators.path_graph 5 in
  let alive = [| true; true; false; true; true |] in
  let d = Bfs.distances ~alive g ~src:0 in
  check_int "before cut" 1 d.(1);
  check_int "dead vertex" (-1) d.(2);
  check_int "behind cut" (-1) d.(3)

let test_dead_source_rejected () =
  let g = Generators.path_graph 3 in
  let alive = [| false; true; true |] in
  Alcotest.check_raises "dead source" (Invalid_argument "Bfs: source is not alive") (fun () ->
      ignore (Bfs.distances ~alive g ~src:0))

let test_wrong_mask_length () =
  let g = Generators.path_graph 3 in
  Alcotest.check_raises "mask length" (Invalid_argument "Bfs: alive mask has wrong length")
    (fun () -> ignore (Bfs.distances ~alive:[| true |] g ~src:0))

let check_valid_path g p ~src ~dst =
  (match p with
  | [] -> Alcotest.fail "empty path"
  | first :: _ -> check_int "starts at src" src first);
  check_int "ends at dst" dst (List.nth p (List.length p - 1));
  let rec edges_ok = function
    | u :: (v :: _ as rest) ->
        check_bool "consecutive adjacency" true (Graph.has_edge g u v);
        edges_ok rest
    | [ _ ] | [] -> ()
  in
  edges_ok p

let test_path_valid_and_shortest () =
  let g = petersen () in
  let d = Bfs.distances g ~src:0 in
  for dst = 1 to 9 do
    match Bfs.path g ~src:0 ~dst with
    | None -> Alcotest.fail "petersen is connected"
    | Some p ->
        check_valid_path g p ~src:0 ~dst;
        check_int "length matches distance" (d.(dst) + 1) (List.length p)
  done

let test_path_none () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  check_bool "no path" true (Bfs.path g ~src:0 ~dst:2 = None)

let test_eccentricity () =
  let g = Generators.path_graph 5 in
  check_int_opt "end vertex" (Some 4) (Bfs.eccentricity g ~src:0);
  check_int_opt "middle vertex" (Some 2) (Bfs.eccentricity g ~src:2)

let test_eccentricity_disconnected () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  check_int_opt "infinite" None (Bfs.eccentricity g ~src:0)

let test_reachable_count () =
  let g = barbell () in
  check_int "all reachable" 6 (Bfs.reachable_count g ~src:0);
  let alive = [| true; true; true; true; true; true |] in
  alive.(2) <- false;
  check_int "triangle only" 2 (Bfs.reachable_count ~alive g ~src:0)

let test_parents_form_tree () =
  let g = petersen () in
  let dist, parent = Bfs.distances_and_parents g ~src:0 in
  check_int "root parent" (-1) parent.(0);
  Array.iteri
    (fun v p ->
      if v <> 0 then begin
        check_bool "parent edge exists" true (Graph.has_edge g v p);
        check_int "parent one closer" (dist.(v) - 1) dist.(p)
      end)
    parent

let prop_bfs_triangle_inequality =
  qcheck "dist(src,w) <= dist(src,v)+1 for edges (v,w)" QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let rng = Graph_core.Prng.create ~seed in
      let g = Generators.gnp rng ~n:30 ~p:0.15 in
      let d = Bfs.distances g ~src:0 in
      let ok = ref true in
      Graph.iter_edges g (fun u v ->
          if d.(u) >= 0 && d.(v) >= 0 && abs (d.(u) - d.(v)) > 1 then ok := false;
          if (d.(u) >= 0) <> (d.(v) >= 0) then ok := false);
      !ok)

let suite =
  [
    Alcotest.test_case "distances on path" `Quick test_distances_path;
    Alcotest.test_case "distances on cycle" `Quick test_distances_cycle;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "alive mask blocks" `Quick test_alive_mask_blocks;
    Alcotest.test_case "dead source rejected" `Quick test_dead_source_rejected;
    Alcotest.test_case "wrong mask length" `Quick test_wrong_mask_length;
    Alcotest.test_case "path valid and shortest" `Quick test_path_valid_and_shortest;
    Alcotest.test_case "path none" `Quick test_path_none;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "eccentricity disconnected" `Quick test_eccentricity_disconnected;
    Alcotest.test_case "reachable count" `Quick test_reachable_count;
    Alcotest.test_case "parents form tree" `Quick test_parents_form_tree;
    prop_bfs_triangle_inequality;
  ]
