open Helpers
module Graph = Graph_core.Graph
module Build = Lhg_core.Build
module Route = Lhg_core.Route
module Prng = Graph_core.Prng

let check_valid_path g path ~src ~dst =
  (match path with
  | first :: _ -> check_int "starts at src" src first
  | [] -> Alcotest.fail "empty path");
  check_int "ends at dst" dst (List.nth path (List.length path - 1));
  check_int "simple path" (List.length path) (List.length (List.sort_uniq compare path));
  let rec edges_ok = function
    | u :: (v :: _ as rest) ->
        check_bool (Printf.sprintf "edge %d-%d exists" u v) true (Graph.has_edge g u v);
        edges_ok rest
    | [ _ ] | [] -> ()
  in
  edges_ok path

let test_all_pairs_all_copies_small () =
  let b = Build.kdiamond_exn ~n:14 ~k:3 in
  let g = b.Build.graph in
  let bound = Route.max_route_length b in
  for src = 0 to Graph.n g - 1 do
    for dst = 0 to Graph.n g - 1 do
      if src <> dst then
        for copy = 0 to 2 do
          let p = Route.via_copy b ~src ~dst ~copy in
          check_valid_path g p ~src ~dst;
          check_bool "length bounded" true (List.length p <= bound)
        done
    done
  done

let test_all_pairs_ktree () =
  let b = Build.ktree_exn ~n:18 ~k:3 in
  let g = b.Build.graph in
  for src = 0 to Graph.n g - 1 do
    for dst = src + 1 to Graph.n g - 1 do
      List.iter (fun p -> check_valid_path g p ~src ~dst) (Route.all_routes b ~src ~dst)
    done
  done

let test_jd_routes () =
  let b = Build.jd_exn ~n:20 ~k:4 () in
  let g = b.Build.graph in
  for copy = 0 to 3 do
    let p = Route.via_copy b ~src:0 ~dst:(Graph.n g - 1) ~copy in
    check_valid_path g p ~src:0 ~dst:(Graph.n g - 1)
  done

let test_self_route () =
  let b = Build.kdiamond_exn ~n:10 ~k:3 in
  Alcotest.(check (list int)) "trivial" [ 4 ] (Route.via_copy b ~src:4 ~dst:4 ~copy:0)

let test_bad_args () =
  let b = Build.kdiamond_exn ~n:10 ~k:3 in
  Alcotest.check_raises "copy range" (Invalid_argument "Route.via_copy: copy out of range")
    (fun () -> ignore (Route.via_copy b ~src:0 ~dst:1 ~copy:3));
  Alcotest.check_raises "vertex range" (Invalid_argument "Route.via_copy: vertex out of range")
    (fun () -> ignore (Route.via_copy b ~src:0 ~dst:99 ~copy:0))

let test_route_length_logarithmic () =
  (* route length stays O(log n) as n grows *)
  List.iter
    (fun n ->
      let b = Build.kdiamond_exn ~n ~k:4 in
      let bound = Route.max_route_length b in
      check_bool
        (Printf.sprintf "bound small at n=%d (got %d)" n bound)
        true
        (bound <= (8 * int_of_float (log (float_of_int n) /. log 3.0)) + 14);
      let p = Route.via_copy b ~src:0 ~dst:(n - 1) ~copy:1 in
      check_bool "actual route within bound" true (List.length p <= bound))
    [ 20; 100; 500; 2000 ]

let test_route_avoids_failures () =
  let b = Build.kdiamond_exn ~n:38 ~k:4 in
  let g = b.Build.graph in
  let n = Graph.n g in
  let rngv = rng () in
  for trial = 1 to 40 do
    ignore trial;
    let avoid = Array.make n false in
    (* fail k-1 = 3 vertices, never the endpoints *)
    let src = Prng.int rngv n in
    let dst = (src + 1 + Prng.int rngv (n - 1)) mod n in
    let rec crash count =
      if count > 0 then begin
        let v = Prng.int rngv n in
        if v <> src && v <> dst && not avoid.(v) then begin
          avoid.(v) <- true;
          crash (count - 1)
        end
        else crash count
      end
    in
    crash 3;
    match Route.route ~avoid b ~src ~dst with
    | None -> Alcotest.fail "k-1 failures cannot disconnect an LHG"
    | Some p ->
        check_valid_path g p ~src ~dst;
        List.iter (fun v -> check_bool "avoids failed" false avoid.(v)) p
  done

let test_route_none_when_isolated () =
  let b = Build.kdiamond_exn ~n:14 ~k:3 in
  let g = b.Build.graph in
  (* isolate vertex dst by failing its whole neighbourhood *)
  let dst = Graph.n g - 1 in
  let avoid = Array.make (Graph.n g) false in
  List.iter (fun v -> avoid.(v) <- true) (Graph.neighbors g dst);
  check_bool "unroutable" true (Route.route ~avoid b ~src:0 ~dst = None)


let test_routes_on_unshared_rich_builds () =
  (* clique-heavy realisations stress the unshared-leaf entry logic *)
  List.iter
    (fun (n, k) ->
      let b =
        match Build.kdiamond_unshared_rich ~n ~k with
        | Ok b -> b
        | Error e -> Alcotest.fail (Build.error_to_string e)
      in
      let g = b.Build.graph in
      for src = 0 to Graph.n g - 1 do
        let dst = (src + (Graph.n g / 2)) mod Graph.n g in
        if src <> dst then
          List.iter (fun p -> check_valid_path g p ~src ~dst) (Route.all_routes b ~src ~dst)
      done)
    [ (13, 3); (17, 4); (26, 5) ]

let test_height () =
  let b = Build.kdiamond_exn ~n:6 ~k:3 in
  check_int "base height" 1 (Route.height b);
  let b = Build.ktree_exn ~n:10 ~k:3 in
  check_int "one conversion" 2 (Route.height b)

let prop_structured_routes_valid =
  qcheck ~count:60 "structured routes valid on random builds"
    QCheck2.Gen.(pair (int_range 3 6) (int_range 0 60))
    (fun (k, extra) ->
      let n = (2 * k) + extra in
      let b = Build.kdiamond_exn ~n ~k in
      let g = b.Build.graph in
      let src = 0 and dst = n - 1 in
      List.for_all
        (fun p ->
          List.hd p = src
          && List.nth p (List.length p - 1) = dst
          && List.length p <= Route.max_route_length b
          &&
          let rec ok = function
            | u :: (v :: _ as rest) -> Graph.has_edge g u v && ok rest
            | [ _ ] | [] -> true
          in
          ok p)
        (Route.all_routes b ~src ~dst))

let suite =
  [
    Alcotest.test_case "all pairs all copies (kdiamond)" `Quick test_all_pairs_all_copies_small;
    Alcotest.test_case "all pairs (ktree)" `Quick test_all_pairs_ktree;
    Alcotest.test_case "jd routes" `Quick test_jd_routes;
    Alcotest.test_case "self route" `Quick test_self_route;
    Alcotest.test_case "bad args" `Quick test_bad_args;
    Alcotest.test_case "route length logarithmic" `Quick test_route_length_logarithmic;
    Alcotest.test_case "route avoids failures" `Quick test_route_avoids_failures;
    Alcotest.test_case "route none when isolated" `Quick test_route_none_when_isolated;
    Alcotest.test_case "routes on unshared-rich" `Quick test_routes_on_unshared_rich_builds;
    Alcotest.test_case "height" `Quick test_height;
    prop_structured_routes_valid;
  ]
