open Helpers
module Graph = Graph_core.Graph
module Connectivity = Graph_core.Connectivity
module Components = Graph_core.Components
module Degree = Graph_core.Degree
module Paths = Graph_core.Paths
module Prng = Graph_core.Prng

let test_hypercube_structure () =
  let g = Topo.Hypercube.make ~dim:4 in
  check_int "n" 16 (Graph.n g);
  check_int "m" 32 (Graph.m g);
  check_bool "4-regular" true (Degree.is_k_regular g ~k:4);
  check_int_opt "diameter = dim" (Some 4) (Paths.diameter g)

let test_hypercube_connectivity () =
  let g = Topo.Hypercube.make ~dim:3 in
  check_int "kappa = dim" 3 (Connectivity.vertex_connectivity g);
  check_int "lambda = dim" 3 (Connectivity.edge_connectivity g)

let test_hypercube_trivial () =
  check_int "Q0" 1 (Graph.n (Topo.Hypercube.make ~dim:0));
  check_int "Q1 edges" 1 (Graph.m (Topo.Hypercube.make ~dim:1))

let test_hypercube_admissible () =
  check_bool "16 at k=4" true (Topo.Hypercube.admissible ~n:16 ~k:4);
  check_bool "17 at k=4" false (Topo.Hypercube.admissible ~n:17 ~k:4);
  Alcotest.(check (list int)) "sizes k=4" [ 16 ] (Topo.Hypercube.admissible_sizes ~k:4 ~max_n:100);
  Alcotest.(check (list int)) "too small" [] (Topo.Hypercube.admissible_sizes ~k:8 ~max_n:100)

let test_debruijn_structure () =
  let g = Topo.Debruijn.make ~base:2 ~dim:3 in
  check_int "n = 8" 8 (Graph.n g);
  check_bool "connected" true (Components.is_connected g);
  let s = Degree.stats g in
  check_bool "degree bounded by 2*base" true (s.Degree.max_degree <= 4)

let test_debruijn_diameter () =
  (* de Bruijn diameter = dim (shift in dim steps) *)
  check_int_opt "B(2,4)" (Some 4) (Paths.diameter (Topo.Debruijn.make ~base:2 ~dim:4));
  check_int_opt "B(3,3)" (Some 3) (Paths.diameter (Topo.Debruijn.make ~base:3 ~dim:3))

let test_debruijn_admissible () =
  check_bool "27 = 3^3" true (Topo.Debruijn.admissible ~n:27 ~base:3);
  check_bool "28" false (Topo.Debruijn.admissible ~n:28 ~base:3);
  Alcotest.(check (list int)) "powers of 2" [ 2; 4; 8; 16 ]
    (Topo.Debruijn.admissible_sizes ~base:2 ~max_n:20)

let test_butterfly_structure () =
  let g = Topo.Butterfly.make ~dim:3 in
  check_int "n = 3*8" 24 (Graph.n g);
  check_bool "connected" true (Components.is_connected g);
  let s = Degree.stats g in
  check_bool "max degree 4" true (s.Degree.max_degree <= 4);
  Alcotest.(check (list int)) "sizes" [ 8; 24; 64 ] (Topo.Butterfly.admissible_sizes ~max_n:100)

let test_torus_structure () =
  let g = Topo.Torus.make ~rows:4 ~cols:5 in
  check_int "n" 20 (Graph.n g);
  check_bool "4-regular" true (Degree.is_k_regular g ~k:4);
  check_int "kappa" 4 (Connectivity.vertex_connectivity g);
  check_int_opt "diameter" (Some (2 + 2)) (Paths.diameter g)

let test_torus_too_small () =
  Alcotest.check_raises "2x5" (Invalid_argument "Torus.make: needs rows >= 3 and cols >= 3")
    (fun () -> ignore (Topo.Torus.make ~rows:2 ~cols:5))

let test_expander_degree_and_connectivity () =
  let rngv = rng () in
  let g = Topo.Expander.random_regular rngv ~n:64 ~degree:4 in
  let s = Degree.stats g in
  check_bool "max degree <= 4" true (s.Degree.max_degree <= 4);
  check_bool "connected (hamiltonian backbone)" true (Components.is_connected g);
  check_bool "2-connected at least" true (Connectivity.is_k_vertex_connected g ~k:2)

let test_expander_logarithmic_diameter_whp () =
  let rngv = rng ~salt:1 () in
  let g = Topo.Expander.random_regular rngv ~n:256 ~degree:6 in
  match Paths.diameter g with
  | None -> Alcotest.fail "connected"
  | Some d -> check_bool "small diameter" true (d <= 10)

let test_expander_odd_degree_rejected () =
  let rngv = rng ~salt:2 () in
  Alcotest.check_raises "odd degree"
    (Invalid_argument "Expander.random_regular: degree must be even and >= 2") (fun () ->
      ignore (Topo.Expander.random_regular rngv ~n:10 ~degree:3))

let test_bfs_tree () =
  let g = petersen () in
  let t = Topo.Spanning_tree.bfs_tree g ~root:0 in
  check_int "n-1 edges" 9 (Graph.m t);
  check_bool "connected" true (Components.is_connected t);
  check_bool "subgraph" true (List.for_all (fun (u, v) -> Graph.has_edge g u v) (Graph.edges t))

let test_random_spanning_tree () =
  let rngv = rng ~salt:3 () in
  let g = Graph_core.Generators.complete 12 in
  for _ = 1 to 5 do
    let t = Topo.Spanning_tree.random_spanning_tree rngv g in
    check_int "n-1 edges" 11 (Graph.m t);
    check_bool "connected" true (Components.is_connected t)
  done

let prop_wilson_on_random_connected =
  qcheck ~count:40 "wilson produces spanning trees" QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 5 + Prng.int rngv 20 in
      let g = Graph_core.Generators.gnp rngv ~n ~p:0.4 in
      for v = 0 to n - 1 do
        Graph.add_edge g v ((v + 1) mod n)
      done;
      let t = Topo.Spanning_tree.random_spanning_tree rngv g in
      Graph.m t = n - 1
      && Components.is_connected t
      && List.for_all (fun (u, v) -> Graph.has_edge g u v) (Graph.edges t))

let suite =
  [
    Alcotest.test_case "hypercube structure" `Quick test_hypercube_structure;
    Alcotest.test_case "hypercube connectivity" `Quick test_hypercube_connectivity;
    Alcotest.test_case "hypercube trivial" `Quick test_hypercube_trivial;
    Alcotest.test_case "hypercube admissible" `Quick test_hypercube_admissible;
    Alcotest.test_case "debruijn structure" `Quick test_debruijn_structure;
    Alcotest.test_case "debruijn diameter" `Quick test_debruijn_diameter;
    Alcotest.test_case "debruijn admissible" `Quick test_debruijn_admissible;
    Alcotest.test_case "butterfly structure" `Quick test_butterfly_structure;
    Alcotest.test_case "torus structure" `Quick test_torus_structure;
    Alcotest.test_case "torus too small" `Quick test_torus_too_small;
    Alcotest.test_case "expander degree/connectivity" `Quick test_expander_degree_and_connectivity;
    Alcotest.test_case "expander diameter whp" `Quick test_expander_logarithmic_diameter_whp;
    Alcotest.test_case "expander odd degree" `Quick test_expander_odd_degree_rejected;
    Alcotest.test_case "bfs tree" `Quick test_bfs_tree;
    Alcotest.test_case "random spanning tree" `Quick test_random_spanning_tree;
    prop_wilson_on_random_connected;
  ]
