open Helpers
module Uf = Graph_core.Union_find

let test_singletons () =
  let t = Uf.create 5 in
  check_int "count" 5 (Uf.count t);
  for i = 0 to 4 do
    check_int "own root" i (Uf.find t i)
  done

let test_union_merges () =
  let t = Uf.create 4 in
  check_bool "first union" true (Uf.union t 0 1);
  check_bool "same" true (Uf.same t 0 1);
  check_bool "repeat union" false (Uf.union t 1 0);
  check_int "count" 3 (Uf.count t)

let test_transitivity () =
  let t = Uf.create 6 in
  ignore (Uf.union t 0 1);
  ignore (Uf.union t 1 2);
  ignore (Uf.union t 3 4);
  check_bool "0~2" true (Uf.same t 0 2);
  check_bool "3~4" true (Uf.same t 3 4);
  check_bool "0!~3" false (Uf.same t 0 3);
  check_int "count" 3 (Uf.count t)

let test_full_merge () =
  let t = Uf.create 100 in
  for i = 0 to 98 do
    ignore (Uf.union t i (i + 1))
  done;
  check_int "one set" 1 (Uf.count t);
  check_bool "ends connected" true (Uf.same t 0 99)

let suite =
  [
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "union merges" `Quick test_union_merges;
    Alcotest.test_case "transitivity" `Quick test_transitivity;
    Alcotest.test_case "full merge" `Quick test_full_merge;
  ]
