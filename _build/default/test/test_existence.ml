open Helpers
module Existence = Lhg_core.Existence
module Build = Lhg_core.Build

let test_decompose_ktree_reconstructs () =
  for k = 2 to 7 do
    for n = 2 * k to (2 * k) + 60 do
      match Existence.decompose_ktree ~n ~k with
      | None -> Alcotest.fail "decomposition must exist for n >= 2k"
      | Some (alpha, j) ->
          check_int
            (Printf.sprintf "n=%d k=%d" n k)
            n
            ((2 * k) + (2 * alpha * (k - 1)) + j);
          check_bool "j in range" true (j >= 0 && j <= (2 * k) - 3)
    done
  done

let test_decompose_kdiamond_reconstructs () =
  for k = 2 to 7 do
    for n = 2 * k to (2 * k) + 60 do
      match Existence.decompose_kdiamond ~n ~k with
      | None -> Alcotest.fail "decomposition must exist for n >= 2k"
      | Some (alpha, j) ->
          check_int (Printf.sprintf "n=%d k=%d" n k) n ((2 * k) + (alpha * (k - 1)) + j);
          check_bool "j in range" true (j >= 0 && j <= k - 2)
    done
  done

let test_decompose_below_minimum () =
  check_bool "n<2k" true (Existence.decompose_ktree ~n:5 ~k:3 = None);
  check_bool "k<2" true (Existence.decompose_ktree ~n:10 ~k:1 = None);
  check_bool "diamond n<2k" true (Existence.decompose_kdiamond ~n:7 ~k:4 = None)

let test_ex_threshold () =
  for k = 2 to 8 do
    check_bool "below" false (Existence.ex_ktree ~n:((2 * k) - 1) ~k);
    check_bool "at" true (Existence.ex_ktree ~n:(2 * k) ~k);
    check_bool "above" true (Existence.ex_ktree ~n:((2 * k) + 17) ~k)
  done

let test_corollary1_equivalence () =
  (* EX_KTREE <=> EX_KDIAMOND on a wide grid *)
  for k = 2 to 8 do
    for n = 1 to (2 * k) + 50 do
      check_bool
        (Printf.sprintf "n=%d k=%d" n k)
        (Existence.ex_ktree ~n ~k)
        (Existence.ex_kdiamond ~n ~k)
    done
  done

let test_jd_base_gaps () =
  (* alpha=0: JD has no room for added leaves, so only n=2k works until
     the next multiple *)
  check_bool "n=6 ok" true (Existence.ex_jd ~n:6 ~k:3 ());
  check_bool "n=7 gap" false (Existence.ex_jd ~n:7 ~k:3 ());
  check_bool "n=8 gap" false (Existence.ex_jd ~n:8 ~k:3 ());
  check_bool "n=9 gap" false (Existence.ex_jd ~n:9 ~k:3 ());
  check_bool "n=10 ok" true (Existence.ex_jd ~n:10 ~k:3 ())

let test_jd_odd_j_gap_infinite_family () =
  (* the follow-on paper's example: n = 2k + 2a(k-1) + 3 is never JD-buildable *)
  for k = 3 to 6 do
    for alpha = 0 to 10 do
      let n = (2 * k) + (2 * alpha * (k - 1)) + 3 in
      check_bool (Printf.sprintf "JD gap n=%d k=%d" n k) false (Existence.ex_jd ~n ~k ());
      check_bool (Printf.sprintf "K-TREE fills n=%d k=%d" n k) true (Existence.ex_ktree ~n ~k)
    done
  done

let test_jd_lax_fills_odd_j () =
  (* lax reading allows odd j once capacity exists *)
  check_bool "strict rejects" false (Existence.ex_jd ~strict:true ~n:13 ~k:3 ());
  (* n=13,k=3 -> alpha=1, j=3 > capacity 2: even lax rejects *)
  check_bool "lax still rejects over capacity" false (Existence.ex_jd ~strict:false ~n:13 ~k:3 ());
  (* n=11,k=3 -> alpha=1, j=1 <= capacity 2: lax accepts, strict rejects *)
  check_bool "lax accepts j=1" true (Existence.ex_jd ~strict:false ~n:11 ~k:3 ());
  check_bool "strict rejects j=1" false (Existence.ex_jd ~strict:true ~n:11 ~k:3 ())

let test_jd_capacity_function () =
  check_int "alpha=0" 0 (Existence.jd_added_capacity ~k:3 ~alpha:0);
  check_int "alpha=1" 2 (Existence.jd_added_capacity ~k:3 ~alpha:1);
  check_int "alpha=2" 4 (Existence.jd_added_capacity ~k:3 ~alpha:2);
  check_int "capped at 2k" 6 (Existence.jd_added_capacity ~k:3 ~alpha:9)

let test_builders_agree_with_ex () =
  (* the central soundness/completeness check: builder succeeds iff EX *)
  for k = 2 to 6 do
    for n = max 2 (2 * k - 3) to (2 * k) + 40 do
      let built_kt = match Build.ktree ~n ~k with Ok _ -> true | Error _ -> false in
      check_bool (Printf.sprintf "ktree n=%d k=%d" n k) (Existence.ex_ktree ~n ~k) built_kt;
      let built_kd = match Build.kdiamond ~n ~k with Ok _ -> true | Error _ -> false in
      check_bool (Printf.sprintf "kdiamond n=%d k=%d" n k) (Existence.ex_kdiamond ~n ~k) built_kd;
      let built_jd = match Build.jd ~n ~k () with Ok _ -> true | Error _ -> false in
      check_bool (Printf.sprintf "jd n=%d k=%d" n k) (Existence.ex_jd ~n ~k ()) built_jd
    done
  done

let prop_jd_subset_of_ktree =
  qcheck ~count:200 "EX_JD implies EX_KTREE"
    QCheck2.Gen.(pair (int_range 2 9) (int_range 0 200))
    (fun (k, extra) ->
      let n = k + 1 + extra in
      (not (Existence.ex_jd ~n ~k ())) || Existence.ex_ktree ~n ~k)

let suite =
  [
    Alcotest.test_case "decompose ktree" `Quick test_decompose_ktree_reconstructs;
    Alcotest.test_case "decompose kdiamond" `Quick test_decompose_kdiamond_reconstructs;
    Alcotest.test_case "decompose below minimum" `Quick test_decompose_below_minimum;
    Alcotest.test_case "EX threshold at 2k" `Quick test_ex_threshold;
    Alcotest.test_case "corollary 1 equivalence" `Quick test_corollary1_equivalence;
    Alcotest.test_case "JD base gaps" `Quick test_jd_base_gaps;
    Alcotest.test_case "JD infinite gap family" `Quick test_jd_odd_j_gap_infinite_family;
    Alcotest.test_case "JD lax vs strict" `Quick test_jd_lax_fills_odd_j;
    Alcotest.test_case "JD capacity function" `Quick test_jd_capacity_function;
    Alcotest.test_case "builders agree with EX" `Quick test_builders_agree_with_ex;
    prop_jd_subset_of_ktree;
  ]
