open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Verify = Lhg_core.Verify

let test_cycle_fails_k3 () =
  let r = Verify.verify (Generators.cycle 8) ~k:3 in
  check_bool "P1 fails" false r.Verify.node_connected;
  check_bool "P2 fails" false r.Verify.link_connected

let test_cycle_passes_k2_small () =
  (* small cycles have small diameter, so even P4 passes at tiny n *)
  let r = Verify.verify (Generators.cycle 6) ~k:2 in
  check_bool "P1" true r.Verify.node_connected;
  check_bool "P2" true r.Verify.link_connected;
  check_bool "P3" true (r.Verify.link_minimal = Some true)

let test_complete_graph () =
  let g = Generators.complete 6 in
  let r = Verify.verify g ~k:5 in
  check_bool "P1" true r.Verify.node_connected;
  check_bool "P3" true (r.Verify.link_minimal = Some true);
  check_int_opt "diameter 1" (Some 1) r.Verify.diameter;
  check_bool "5-regular" true r.Verify.k_regular

let test_harary_passes_small_fails_p4_large () =
  (* the motivating observation: large Harary graphs break only P4 *)
  let small = Harary.make ~k:4 ~n:20 in
  check_bool "H(4,20) is an LHG" true (Verify.is_lhg small ~k:4);
  let large = Harary.make ~k:4 ~n:600 in
  let r = Verify.verify ~check_minimality:false large ~k:4 in
  check_bool "P1 still holds" true r.Verify.node_connected;
  check_bool "P4 fails at n=600" false r.Verify.diameter_ok

let test_extra_edge_breaks_minimality () =
  let b = Lhg_core.Build.ktree_exn ~n:10 ~k:3 in
  let g = Graph.copy b.Lhg_core.Build.graph in
  (* add a chord between two far vertices *)
  let added = ref false in
  for u = 0 to Graph.n g - 1 do
    for v = u + 1 to Graph.n g - 1 do
      if (not !added) && not (Graph.has_edge g u v) then begin
        Graph.add_edge g u v;
        added := true
      end
    done
  done;
  let r = Verify.verify g ~k:3 in
  check_bool "still k-connected" true r.Verify.node_connected;
  check_bool "not minimal" true (r.Verify.link_minimal = Some false);
  check_bool "not an LHG" false (Verify.is_lhg g ~k:3)

let test_diameter_bound_shape () =
  check_int "n=1" 0 (Verify.diameter_bound ~n:1 ~k:3);
  check_int "k=2 degenerates" 100 (Verify.diameter_bound ~n:100 ~k:2);
  let b1000 = Verify.diameter_bound ~n:1000 ~k:4 in
  let b1e6 = Verify.diameter_bound ~n:1_000_000 ~k:4 in
  check_bool "logarithmic growth" true (b1e6 <= 2 * b1000);
  check_bool "monotone in n" true (b1e6 > b1000);
  check_bool "decreasing in k" true
    (Verify.diameter_bound ~n:10_000 ~k:8 < Verify.diameter_bound ~n:10_000 ~k:3)

let test_skip_minimality () =
  let r = Verify.verify ~check_minimality:false (Generators.cycle 5) ~k:2 in
  check_bool "skipped" true (r.Verify.link_minimal = None);
  (* is_lhg treats skipped as pass *)
  check_bool "is_lhg without P3" true (Verify.is_lhg ~check_minimality:false (Generators.cycle 5) ~k:2)

let test_disconnected_graph () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (2, 3) ] in
  let r = Verify.verify g ~k:1 in
  check_bool "P1 fails" false r.Verify.node_connected;
  check_int_opt "no diameter" None r.Verify.diameter;
  check_bool "P4 fails" false r.Verify.diameter_ok

let test_report_printing () =
  let r = Verify.verify (Generators.cycle 5) ~k:2 in
  let s = Format.asprintf "%a" Verify.pp_report r in
  check_bool "mentions P1" true (String.length s > 20)

let suite =
  [
    Alcotest.test_case "cycle fails k=3" `Quick test_cycle_fails_k3;
    Alcotest.test_case "cycle passes k=2" `Quick test_cycle_passes_k2_small;
    Alcotest.test_case "complete graph" `Quick test_complete_graph;
    Alcotest.test_case "harary P4 breaks at scale" `Quick test_harary_passes_small_fails_p4_large;
    Alcotest.test_case "extra edge breaks minimality" `Quick test_extra_edge_breaks_minimality;
    Alcotest.test_case "diameter bound shape" `Quick test_diameter_bound_shape;
    Alcotest.test_case "skip minimality" `Quick test_skip_minimality;
    Alcotest.test_case "disconnected" `Quick test_disconnected_graph;
    Alcotest.test_case "report printing" `Quick test_report_printing;
  ]
