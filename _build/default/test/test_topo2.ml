(* Tests for the second wave of baseline topologies: Kautz, CCC, Chord. *)
open Helpers
module Graph = Graph_core.Graph
module Components = Graph_core.Components
module Connectivity = Graph_core.Connectivity
module Degree = Graph_core.Degree
module Paths = Graph_core.Paths

let test_kautz_size () =
  check_int "K(2,1)" 6 (Topo.Kautz.size ~b:2 ~d:1);
  check_int "K(2,3)" 24 (Topo.Kautz.size ~b:2 ~d:3);
  check_int "K(3,2)" 36 (Topo.Kautz.size ~b:3 ~d:2)

let test_kautz_structure () =
  let g = Topo.Kautz.make ~b:2 ~d:3 in
  check_int "n" 24 (Graph.n g);
  check_bool "connected" true (Components.is_connected g);
  let s = Degree.stats g in
  check_bool "degree <= 2b" true (s.Degree.max_degree <= 4);
  (* Kautz diameter is the word length d+1 *)
  check_int_opt "diameter = d+1" (Some 4) (Paths.diameter g)

let test_kautz_k21_is_small_world () =
  (* K(2,1): 6 vertices of word length 2, diameter 2 *)
  let g = Topo.Kautz.make ~b:2 ~d:1 in
  check_int_opt "diameter 2" (Some 2) (Paths.diameter g)

let test_kautz_admissible () =
  Alcotest.(check (list int)) "b=2 sizes" [ 6; 12; 24; 48 ]
    (Topo.Kautz.admissible_sizes ~b:2 ~max_n:50)

let test_ccc_structure () =
  let g = Topo.Ccc.make ~dim:3 in
  check_int "n = 3*8" 24 (Graph.n g);
  check_bool "3-regular" true (Degree.is_k_regular g ~k:3);
  check_bool "connected" true (Components.is_connected g);
  check_int "kappa 3" 3 (Connectivity.vertex_connectivity g)

let test_ccc_admissible () =
  Alcotest.(check (list int)) "sizes" [ 24; 64; 160; 384; 896; 2048 ]
    (Topo.Ccc.admissible_sizes ~max_n:4000)

let test_ccc_bad_dim () =
  Alcotest.check_raises "dim 2" (Invalid_argument "Ccc.make: dim outside [3, 22]") (fun () ->
      ignore (Topo.Ccc.make ~dim:2))

let test_chord_structure () =
  let g = Topo.Chord.make ~n:64 in
  check_bool "connected" true (Components.is_connected g);
  (* ring + fingers 2,4,8,16,32: 6 jump classes -> 12-regular at powers of 2 *)
  let s = Degree.stats g in
  check_int "expected degree classes" 6 (Topo.Chord.expected_degree ~n:64);
  check_bool "degree about 2*classes" true (s.Degree.max_degree <= 12);
  match Paths.diameter g with
  | Some d -> check_bool "log diameter" true (d <= 7)
  | None -> Alcotest.fail "connected"

let test_chord_any_n () =
  (* unlike hypercubes, chord exists for every n *)
  for n = 3 to 40 do
    let g = Topo.Chord.make ~n in
    check_bool (Printf.sprintf "connected n=%d" n) true (Components.is_connected g)
  done

let test_chord_edge_cost_vs_lhg () =
  (* same latency class, much higher edge bill: the T1-style contrast *)
  let n = 512 in
  let chord = Topo.Chord.make ~n in
  let lhg = (Lhg_core.Build.kdiamond_exn ~n:514 ~k:4).Lhg_core.Build.graph in
  check_bool "chord pays >2x the edges" true (Graph.m chord > 2 * Graph.m lhg)

let suite =
  [
    Alcotest.test_case "kautz size" `Quick test_kautz_size;
    Alcotest.test_case "kautz structure" `Quick test_kautz_structure;
    Alcotest.test_case "kautz d=1" `Quick test_kautz_k21_is_small_world;
    Alcotest.test_case "kautz admissible" `Quick test_kautz_admissible;
    Alcotest.test_case "ccc structure" `Quick test_ccc_structure;
    Alcotest.test_case "ccc admissible" `Quick test_ccc_admissible;
    Alcotest.test_case "ccc bad dim" `Quick test_ccc_bad_dim;
    Alcotest.test_case "chord structure" `Quick test_chord_structure;
    Alcotest.test_case "chord any n" `Quick test_chord_any_n;
    Alcotest.test_case "chord vs lhg edges" `Quick test_chord_edge_cost_vs_lhg;
  ]
