(* Shared fixtures and Alcotest testables for the whole suite. *)

module Graph = Graph_core.Graph

let graph_testable = Alcotest.testable Graph.pp Graph.equal

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_int_opt = Alcotest.(check (option int))

(* A deterministic RNG per test site; vary [salt] to decorrelate. *)
let rng ?(salt = 0) () = Graph_core.Prng.create ~seed:(0xBEEF + salt)

(* Sorted edge list for structural comparisons. *)
let sorted_edges g = List.sort compare (Graph.edges g)

(* The 4-cycle with a chord: a tiny non-regular 2-connected fixture. *)
let house () = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ]

(* Two triangles joined by a single bridge edge 2-3. *)
let barbell () =
  Graph.of_edges ~n:6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (2, 3) ]

(* Petersen graph: 3-regular, 3-connected, girth 5 — a classic stress
   fixture for connectivity code. *)
let petersen () =
  Graph.of_edges ~n:10
    [
      (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
      (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
      (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
    ]

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
