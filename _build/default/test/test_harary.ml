open Helpers
module Graph = Graph_core.Graph
module Connectivity = Graph_core.Connectivity
module Minimality = Graph_core.Minimality
module Paths = Graph_core.Paths
module Degree = Graph_core.Degree

let test_edge_count_formula () =
  List.iter
    (fun (k, n) ->
      let g = Harary.make ~k ~n in
      check_int
        (Printf.sprintf "H(%d,%d) edges" k n)
        (Harary.edge_count ~k ~n) (Graph.m g))
    [ (2, 5); (2, 10); (3, 8); (3, 9); (4, 10); (4, 11); (5, 12); (5, 13); (6, 20); (7, 15) ]

let test_k_connectivity () =
  List.iter
    (fun (k, n) ->
      let g = Harary.make ~k ~n in
      check_bool
        (Printf.sprintf "H(%d,%d) k-vertex-connected" k n)
        true
        (Connectivity.is_k_vertex_connected g ~k);
      check_bool
        (Printf.sprintf "H(%d,%d) k-edge-connected" k n)
        true
        (Connectivity.is_k_edge_connected g ~k))
    [ (2, 5); (3, 8); (3, 9); (4, 10); (4, 11); (5, 12); (5, 13); (6, 14) ]

let test_exact_connectivity () =
  (* edge-minimality implies kappa is exactly k, not more *)
  List.iter
    (fun (k, n) ->
      let g = Harary.make ~k ~n in
      check_int (Printf.sprintf "kappa H(%d,%d)" k n) k (Connectivity.vertex_connectivity g);
      check_int (Printf.sprintf "lambda H(%d,%d)" k n) k (Connectivity.edge_connectivity g))
    [ (2, 7); (3, 8); (3, 9); (4, 10); (5, 12) ]

let test_degrees () =
  (* even k, or odd k with even n: k-regular; odd k odd n: one vertex of k+1 *)
  let g = Harary.make ~k:4 ~n:9 in
  check_bool "H(4,9) regular" true (Degree.is_k_regular g ~k:4);
  let g = Harary.make ~k:3 ~n:8 in
  check_bool "H(3,8) regular" true (Degree.is_k_regular g ~k:3);
  let g = Harary.make ~k:3 ~n:9 in
  let s = Degree.stats g in
  check_int "H(3,9) min degree" 3 s.Degree.min_degree;
  check_int "H(3,9) max degree" 4 s.Degree.max_degree;
  Alcotest.(check (list (pair int int))) "H(3,9) histogram" [ (3, 8); (4, 1) ] s.Degree.histogram

let test_link_minimality () =
  List.iter
    (fun (k, n) ->
      check_bool
        (Printf.sprintf "H(%d,%d) link-minimal" k n)
        true
        (Minimality.is_link_minimal (Harary.make ~k ~n) ~k))
    [ (2, 6); (3, 8); (4, 10); (3, 9) ]

let test_linear_diameter_growth () =
  (* The paper's motivation: diameter of H(k,n) grows linearly in n. *)
  let diam n =
    match Paths.diameter (Harary.make ~k:4 ~n) with
    | Some d -> d
    | None -> Alcotest.fail "H(4,n) connected"
  in
  let d64 = diam 64 and d128 = diam 128 and d256 = diam 256 in
  check_bool "monotone growth" true (d64 < d128 && d128 < d256);
  check_bool "roughly doubles" true (d256 >= (2 * d64) - 4);
  check_int "H(4,64) = n/4" 16 d64

let test_diameter_formula_tracks_truth () =
  List.iter
    (fun (k, n) ->
      match Paths.diameter (Harary.make ~k ~n) with
      | None -> Alcotest.fail "connected"
      | Some d ->
          let est = Harary.diameter_formula ~k ~n in
          check_bool
            (Printf.sprintf "estimate within 2 for H(%d,%d): est=%d real=%d" k n est d)
            true
            (abs (est - d) <= 2))
    [ (2, 10); (2, 31); (4, 20); (4, 64); (6, 36); (3, 30); (5, 40) ]

let test_invalid_args () =
  Alcotest.check_raises "k=1" (Invalid_argument "Harary.make: k must be >= 2") (fun () ->
      ignore (Harary.make ~k:1 ~n:5));
  Alcotest.check_raises "k>=n" (Invalid_argument "Harary.make: k must be < n") (fun () ->
      ignore (Harary.make ~k:5 ~n:5))

let test_smallest_cases () =
  let g = Harary.make ~k:2 ~n:3 in
  check_int "H(2,3) = triangle" 3 (Graph.m g);
  let g = Harary.make ~k:3 ~n:4 in
  check_int "H(3,4) = K4" 6 (Graph.m g)

let prop_harary_k_connected =
  qcheck ~count:40 "random H(k,n) is exactly k-connected with ceil(kn/2) edges"
    QCheck2.Gen.(pair (int_range 2 6) (int_range 0 25))
    (fun (k, extra) ->
      let n = k + 1 + extra in
      let g = Harary.make ~k ~n in
      Graph.m g = ((k * n) + 1) / 2
      && Connectivity.is_k_vertex_connected g ~k
      && Connectivity.is_k_edge_connected g ~k)

let suite =
  [
    Alcotest.test_case "edge count formula" `Quick test_edge_count_formula;
    Alcotest.test_case "k-connectivity" `Quick test_k_connectivity;
    Alcotest.test_case "exact connectivity" `Quick test_exact_connectivity;
    Alcotest.test_case "degrees" `Quick test_degrees;
    Alcotest.test_case "link minimality" `Slow test_link_minimality;
    Alcotest.test_case "linear diameter growth" `Quick test_linear_diameter_growth;
    Alcotest.test_case "diameter formula" `Quick test_diameter_formula_tracks_truth;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "smallest cases" `Quick test_smallest_cases;
    prop_harary_k_connected;
  ]
