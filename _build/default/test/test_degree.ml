open Helpers
module Graph = Graph_core.Graph
module Degree = Graph_core.Degree
module Generators = Graph_core.Generators

let test_stats_cycle () =
  let s = Degree.stats (Generators.cycle 7) in
  check_int "min" 2 s.Degree.min_degree;
  check_int "max" 2 s.Degree.max_degree;
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Degree.mean_degree;
  Alcotest.(check (list (pair int int))) "histogram" [ (2, 7) ] s.Degree.histogram

let test_stats_star () =
  let s = Degree.stats (Generators.star 6) in
  check_int "min" 1 s.Degree.min_degree;
  check_int "max" 5 s.Degree.max_degree;
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 5); (5, 1) ] s.Degree.histogram

let test_stats_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Degree.stats: empty graph") (fun () ->
      ignore (Degree.stats (Graph.create ~n:0)))

let test_is_regular () =
  check_bool "cycle regular" true (Degree.is_regular (Generators.cycle 5));
  check_bool "petersen regular" true (Degree.is_regular (petersen ()));
  check_bool "star irregular" false (Degree.is_regular (Generators.star 5));
  check_bool "single vertex" true (Degree.is_regular (Graph.create ~n:1));
  check_bool "empty" true (Degree.is_regular (Graph.create ~n:0))

let test_is_k_regular () =
  check_bool "petersen 3-regular" true (Degree.is_k_regular (petersen ()) ~k:3);
  check_bool "petersen not 2-regular" false (Degree.is_k_regular (petersen ()) ~k:2);
  check_bool "edgeless 0-regular" true (Degree.is_k_regular (Graph.create ~n:4) ~k:0)

let test_degree_sequence () =
  Alcotest.(check (list int)) "star sequence" [ 5; 1; 1; 1; 1; 1 ]
    (Degree.degree_sequence (Generators.star 6))

let suite =
  [
    Alcotest.test_case "stats cycle" `Quick test_stats_cycle;
    Alcotest.test_case "stats star" `Quick test_stats_star;
    Alcotest.test_case "stats empty rejected" `Quick test_stats_empty_rejected;
    Alcotest.test_case "is_regular" `Quick test_is_regular;
    Alcotest.test_case "is_k_regular" `Quick test_is_k_regular;
    Alcotest.test_case "degree sequence" `Quick test_degree_sequence;
  ]
