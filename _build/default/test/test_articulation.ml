open Helpers
module Graph = Graph_core.Graph
module Articulation = Graph_core.Articulation
module Generators = Graph_core.Generators
module Components = Graph_core.Components
module Prng = Graph_core.Prng

let test_path_graph () =
  let g = Generators.path_graph 5 in
  Alcotest.(check (list int)) "interior vertices cut" [ 1; 2; 3 ] (Articulation.cut_vertices g);
  Alcotest.(check (list (pair int int))) "every edge a bridge" [ (0, 1); (1, 2); (2, 3); (3, 4) ]
    (Articulation.bridges g)

let test_cycle_has_none () =
  let g = Generators.cycle 7 in
  Alcotest.(check (list int)) "no cut vertices" [] (Articulation.cut_vertices g);
  Alcotest.(check (list (pair int int))) "no bridges" [] (Articulation.bridges g);
  check_bool "biconnected" true (Articulation.is_biconnected g);
  check_bool "2-edge-connected" true (Articulation.is_two_edge_connected g)

let test_barbell () =
  let g = barbell () in
  Alcotest.(check (list int)) "bridge endpoints cut" [ 2; 3 ] (Articulation.cut_vertices g);
  Alcotest.(check (list (pair int int))) "one bridge" [ (2, 3) ] (Articulation.bridges g);
  check_bool "not biconnected" false (Articulation.is_biconnected g)

let test_star () =
  let g = Generators.star 6 in
  Alcotest.(check (list int)) "centre is cut" [ 0 ] (Articulation.cut_vertices g);
  check_int "all bridges" 5 (List.length (Articulation.bridges g))

let test_petersen () =
  check_bool "biconnected" true (Articulation.is_biconnected (petersen ()));
  Alcotest.(check (list (pair int int))) "no bridges" [] (Articulation.bridges (petersen ()))

let test_disconnected_components_independent () =
  (* two paths: cut vertices found in both components *)
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  Alcotest.(check (list int)) "middles of both" [ 1; 4 ] (Articulation.cut_vertices g);
  check_bool "not biconnected (disconnected)" false (Articulation.is_biconnected g)

let test_deep_path_no_stack_overflow () =
  let g = Generators.path_graph 200_000 in
  check_int "cut count" 199_998 (List.length (Articulation.cut_vertices g))

let test_lhg_has_no_cuts () =
  let b = Lhg_core.Build.kdiamond_exn ~n:40 ~k:3 in
  check_bool "biconnected" true (Articulation.is_biconnected b.Lhg_core.Build.graph);
  Alcotest.(check (list (pair int int))) "no bridges" []
    (Articulation.bridges b.Lhg_core.Build.graph)

(* Brute-force cross-checks. *)
let brute_cut_vertices g =
  let n = Graph.n g in
  let base = Components.count g in
  List.filter
    (fun v ->
      let alive = Array.make n true in
      alive.(v) <- false;
      (* a vertex of degree 0 removed doesn't raise the count *)
      Components.count ~alive g > base - (if Graph.degree g v = 0 then 1 else 0))
    (List.init n Fun.id)

let brute_bridges g =
  List.filter
    (fun (u, v) ->
      let g' = Graph.without_edge g u v in
      Components.count g' > Components.count g)
    (Graph.edges g)

let prop_cut_vertices_match_brute =
  qcheck ~count:80 "cut vertices = brute force" QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 4 + Prng.int rngv 12 in
      let g = Generators.gnp rngv ~n ~p:0.25 in
      Articulation.cut_vertices g = brute_cut_vertices g)

let prop_bridges_match_brute =
  qcheck ~count:80 "bridges = brute force" QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 4 + Prng.int rngv 12 in
      let g = Generators.gnp rngv ~n ~p:0.25 in
      List.sort compare (Articulation.bridges g) = List.sort compare (brute_bridges g))

let suite =
  [
    Alcotest.test_case "path graph" `Quick test_path_graph;
    Alcotest.test_case "cycle has none" `Quick test_cycle_has_none;
    Alcotest.test_case "barbell" `Quick test_barbell;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "petersen" `Quick test_petersen;
    Alcotest.test_case "disconnected" `Quick test_disconnected_components_independent;
    Alcotest.test_case "deep path (iterative dfs)" `Quick test_deep_path_no_stack_overflow;
    Alcotest.test_case "lhg has no cuts" `Quick test_lhg_has_no_cuts;
    prop_cut_vertices_match_brute;
    prop_bridges_match_brute;
  ]
