open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Components = Graph_core.Components
module Degree = Graph_core.Degree
module Prng = Graph_core.Prng

let test_path () =
  let g = Generators.path_graph 5 in
  check_int "edges" 4 (Graph.m g);
  check_bool "connected" true (Components.is_connected g)

let test_path_trivial () =
  check_int "P1 no edges" 0 (Graph.m (Generators.path_graph 1));
  check_int "P0" 0 (Graph.n (Generators.path_graph 0))

let test_cycle () =
  let g = Generators.cycle 5 in
  check_int "edges" 5 (Graph.m g);
  check_bool "2-regular" true (Degree.is_k_regular g ~k:2)

let test_cycle_too_small () =
  Alcotest.check_raises "n<3" (Invalid_argument "Generators.cycle: n < 3") (fun () ->
      ignore (Generators.cycle 2))

let test_complete () =
  let g = Generators.complete 6 in
  check_int "edges" 15 (Graph.m g);
  check_bool "5-regular" true (Degree.is_k_regular g ~k:5)

let test_complete_bipartite () =
  let g = Generators.complete_bipartite 3 4 in
  check_int "edges" 12 (Graph.m g);
  check_bool "no left-left edge" false (Graph.has_edge g 0 1);
  check_bool "cross edge" true (Graph.has_edge g 0 3)

let test_star () =
  let g = Generators.star 7 in
  check_int "edges" 6 (Graph.m g);
  check_int "centre degree" 6 (Graph.degree g 0)

let test_circulant () =
  let g = Generators.circulant ~n:10 ~jumps:[ 1; 2 ] in
  check_bool "4-regular" true (Degree.is_k_regular g ~k:4);
  check_bool "jump-2 edge" true (Graph.has_edge g 0 2);
  check_bool "wraparound" true (Graph.has_edge g 9 1)

let test_circulant_zero_jump_rejected () =
  Alcotest.check_raises "zero jump"
    (Invalid_argument "Generators.circulant: jump is a multiple of n") (fun () ->
      ignore (Generators.circulant ~n:5 ~jumps:[ 5 ]))

let test_circulant_half_jump () =
  (* jump n/2 gives a perfect matching contribution: degree 1 per vertex *)
  let g = Generators.circulant ~n:6 ~jumps:[ 3 ] in
  check_bool "1-regular" true (Degree.is_k_regular g ~k:1);
  check_int "three matching edges" 3 (Graph.m g)

let test_grid () =
  let g = Generators.grid ~rows:3 ~cols:4 in
  check_int "vertices" 12 (Graph.n g);
  check_int "edges" ((2 * 4) + (3 * 3)) (Graph.m g);
  check_bool "connected" true (Components.is_connected g)

let test_balanced_tree () =
  let g = Generators.balanced_tree ~branching:3 ~height:2 in
  check_int "1+3+9 vertices" 13 (Graph.n g);
  check_int "tree edges" 12 (Graph.m g);
  check_bool "connected" true (Components.is_connected g);
  check_int "root degree" 3 (Graph.degree g 0)

let test_balanced_tree_height0 () =
  check_int "single node" 1 (Graph.n (Generators.balanced_tree ~branching:2 ~height:0))

let test_gnp_extremes () =
  let rngv = rng () in
  let empty = Generators.gnp rngv ~n:10 ~p:0.0 in
  check_int "p=0 no edges" 0 (Graph.m empty);
  let full = Generators.gnp rngv ~n:10 ~p:1.0 in
  check_int "p=1 complete" 45 (Graph.m full)

let test_gnp_determinism () =
  let a = Generators.gnp (Prng.create ~seed:7) ~n:20 ~p:0.3 in
  let b = Generators.gnp (Prng.create ~seed:7) ~n:20 ~p:0.3 in
  check_bool "same seed same graph" true (Graph.equal a b)

let test_random_tree_is_tree () =
  let rngv = rng ~salt:1 () in
  for n = 1 to 30 do
    let t = Generators.random_tree rngv ~n in
    check_int "n-1 edges" (n - 1) (Graph.m t);
    check_bool "connected" true (Components.is_connected t)
  done

let prop_random_tree_prufer_uniformity_smoke =
  qcheck ~count:50 "random trees are trees" QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 2 + Prng.int rngv 40 in
      let t = Generators.random_tree rngv ~n in
      Graph.m t = n - 1 && Components.is_connected t)

let suite =
  [
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "path trivial" `Quick test_path_trivial;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "cycle too small" `Quick test_cycle_too_small;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "circulant" `Quick test_circulant;
    Alcotest.test_case "circulant zero jump" `Quick test_circulant_zero_jump_rejected;
    Alcotest.test_case "circulant half jump" `Quick test_circulant_half_jump;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "balanced tree" `Quick test_balanced_tree;
    Alcotest.test_case "balanced tree h=0" `Quick test_balanced_tree_height0;
    Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
    Alcotest.test_case "gnp determinism" `Quick test_gnp_determinism;
    Alcotest.test_case "random tree is tree" `Quick test_random_tree_is_tree;
    prop_random_tree_prufer_uniformity_smoke;
  ]
