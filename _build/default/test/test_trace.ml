open Helpers
module Generators = Graph_core.Generators
module Sim = Netsim.Sim
module Network = Netsim.Network
module Trace = Netsim.Trace

let traced_run ?loss_rate ?crashed_mid () =
  let sim = Sim.create ~seed:3 () in
  let g = Generators.cycle 6 in
  let trace = Trace.create () in
  let net = Network.create ~sim ~graph:g ?loss_rate ~trace () in
  Network.set_receiver net (fun ~dst ~src:_ () ->
      (* relay once around the ring *)
      if dst <> 0 then Network.send net ~src:dst ~dst:((dst + 1) mod 6) ());
  (match crashed_mid with Some v -> Network.crash net v | None -> ());
  Network.send net ~src:0 ~dst:1 ();
  Sim.run sim;
  (trace, Network.stats net)

let test_send_and_delivery_recorded () =
  let trace, stats = traced_run () in
  let evs = Trace.events trace in
  let sends = List.filter (fun e -> e.Trace.kind = Trace.Sent) evs in
  let delivered = List.filter (fun e -> e.Trace.kind = Trace.Delivered) evs in
  check_int "sends traced" stats.Network.sent (List.length sends);
  check_int "deliveries traced" stats.Network.delivered (List.length delivered)

let test_every_delivery_has_prior_send () =
  let trace, _ = traced_run () in
  let evs = Trace.events trace in
  List.iter
    (fun e ->
      if e.Trace.kind = Trace.Delivered then begin
        let matching =
          List.find_opt
            (fun s ->
              s.Trace.kind = Trace.Sent && s.Trace.seq = e.Trace.seq
              && s.Trace.src = e.Trace.src && s.Trace.dst = e.Trace.dst)
            evs
        in
        match matching with
        | None -> Alcotest.fail "delivery without send"
        | Some s -> check_bool "causality" true (s.Trace.time <= e.Trace.time)
      end)
    evs

let test_chronological_order () =
  let trace, _ = traced_run () in
  let times = List.map (fun e -> e.Trace.time) (Trace.events trace) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check_bool "non-decreasing times" true (mono times)

let test_crash_drop_recorded () =
  let trace, stats = traced_run ~crashed_mid:3 () in
  let drops =
    List.filter (fun e -> e.Trace.kind = Trace.Dropped_crash) (Trace.events trace)
  in
  check_int "crash drops traced" stats.Network.dropped_crash (List.length drops);
  check_bool "at least one" true (List.length drops > 0)

let test_unique_sequence_numbers () =
  let trace, _ = traced_run () in
  let seqs =
    List.filter_map
      (fun e -> if e.Trace.kind = Trace.Sent then Some e.Trace.seq else None)
      (Trace.events trace)
  in
  check_int "distinct" (List.length seqs) (List.length (List.sort_uniq compare seqs))

let test_ring_buffer_eviction () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.record t { Trace.time = float_of_int i; kind = Trace.Sent; src = 0; dst = 1; seq = i }
  done;
  check_int "retained" 4 (Trace.count t);
  check_int "evicted" 6 (Trace.dropped_events t);
  let seqs = List.map (fun e -> e.Trace.seq) (Trace.events t) in
  Alcotest.(check (list int)) "newest kept in order" [ 6; 7; 8; 9 ] seqs

let test_pp_event () =
  let s =
    Format.asprintf "%a" Trace.pp_event
      { Trace.time = 1.5; kind = Trace.Delivered; src = 2; dst = 7; seq = 42 }
  in
  Alcotest.(check string) "render" "[1.500] #42 delivered 2->7" s

let test_invalid_capacity () =
  Alcotest.check_raises "zero" (Invalid_argument "Trace.create: capacity must be positive")
    (fun () -> ignore (Trace.create ~capacity:0 ()))

let suite =
  [
    Alcotest.test_case "send and delivery recorded" `Quick test_send_and_delivery_recorded;
    Alcotest.test_case "delivery has prior send" `Quick test_every_delivery_has_prior_send;
    Alcotest.test_case "chronological order" `Quick test_chronological_order;
    Alcotest.test_case "crash drop recorded" `Quick test_crash_drop_recorded;
    Alcotest.test_case "unique sequence numbers" `Quick test_unique_sequence_numbers;
    Alcotest.test_case "ring buffer eviction" `Quick test_ring_buffer_eviction;
    Alcotest.test_case "pp event" `Quick test_pp_event;
    Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
  ]
