open Helpers
module Shape = Lhg_core.Shape
module Skeleton = Lhg_core.Skeleton

let test_alpha_zero_is_base () =
  let s = Skeleton.make ~k:3 ~alpha:0 in
  check_int "size" 4 (Shape.size s);
  check_int "vertices" 6 (Shape.vertex_count s)

let test_alpha_grows_by_2k_minus_2 () =
  for k = 2 to 6 do
    for alpha = 0 to 8 do
      let s = Skeleton.make ~k ~alpha in
      check_int
        (Printf.sprintf "vertices k=%d alpha=%d" k alpha)
        ((2 * k) + (2 * alpha * (k - 1)))
        (Shape.vertex_count s)
    done
  done

let test_bfs_order_fills_levels () =
  (* k=3: level 1 has 3 positions; alpha=3 converts them all, so every
     remaining leaf is at depth 2 *)
  let s = Skeleton.make ~k:3 ~alpha:3 in
  List.iter (fun l -> check_int "leaf depth" 2 (Shape.depth s l)) (Shape.leaves s);
  (* alpha=4 starts level 2: leaves at depths 2 and 3 *)
  let s = Skeleton.make ~k:3 ~alpha:4 in
  let depths = List.sort_uniq compare (List.map (Shape.depth s) (Shape.leaves s)) in
  Alcotest.(check (list int)) "two frontier depths" [ 2; 3 ] depths

let test_always_balanced () =
  for alpha = 0 to 40 do
    check_bool
      (Printf.sprintf "alpha=%d balanced" alpha)
      true
      (Shape.height_balanced (Skeleton.make ~k:4 ~alpha))
  done

let test_conversion_order_bfs () =
  let s = Skeleton.make ~k:3 ~alpha:2 in
  let order = Skeleton.conversion_order s in
  (* next conversion target is the remaining depth-1 leaf (id 3) *)
  check_int "next is shallowest" 3 (List.hd order);
  let depths = List.map (Shape.depth s) order in
  check_bool "depths non-decreasing" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < List.length depths - 1) depths)
       (List.tl depths))

let test_jd_capacity_base_zero () =
  (* only the root is above the leaves, and JD excludes the root *)
  check_int "alpha=0" 0 (Skeleton.jd_special_capacity (Skeleton.make ~k:3 ~alpha:0));
  check_int "alpha=0 k=5" 0 (Skeleton.jd_special_capacity (Skeleton.make ~k:5 ~alpha:0))

let test_jd_capacity_growth () =
  check_int "alpha=1" 1 (Skeleton.jd_special_capacity (Skeleton.make ~k:3 ~alpha:1));
  check_int "alpha=2" 2 (Skeleton.jd_special_capacity (Skeleton.make ~k:3 ~alpha:2));
  check_int "alpha=3" 3 (Skeleton.jd_special_capacity (Skeleton.make ~k:3 ~alpha:3));
  (* capped at k *)
  check_int "alpha=5 capped" 3 (Skeleton.jd_special_capacity (Skeleton.make ~k:3 ~alpha:5))

let test_last_above_leaf () =
  let s = Skeleton.make ~k:3 ~alpha:0 in
  check_int "base root" 0 (Skeleton.last_above_leaf s);
  let s = Skeleton.make ~k:3 ~alpha:2 in
  check_int "deepest converted" 2 (Skeleton.last_above_leaf s)

let test_negative_alpha () =
  Alcotest.check_raises "negative" (Invalid_argument "Skeleton.make: negative alpha") (fun () ->
      ignore (Skeleton.make ~k:3 ~alpha:(-1)))


let test_depth_first_unbalanced () =
  let s = Skeleton.make_depth_first ~k:3 ~alpha:6 in
  check_bool "unbalanced" false (Shape.height_balanced s);
  check_int "same vertex count as bfs" (Shape.vertex_count (Skeleton.make ~k:3 ~alpha:6))
    (Shape.vertex_count s)

let test_depth_first_small_alpha_still_balanced () =
  (* one conversion cannot unbalance anything *)
  check_bool "alpha=1 fine" true (Shape.height_balanced (Skeleton.make_depth_first ~k:4 ~alpha:1))

let test_depth_first_linear_diameter () =
  let balanced, _ = Lhg_core.Realize.realize (Skeleton.make ~k:3 ~alpha:40) in
  let skewed, _ = Lhg_core.Realize.realize (Skeleton.make_depth_first ~k:3 ~alpha:40) in
  let diam g = match Graph_core.Paths.diameter g with Some d -> d | None -> -1 in
  check_bool "dfs much deeper" true (diam skewed > 2 * diam balanced);
  (* connectivity survives the skew - only P4 is lost *)
  check_bool "still 3-connected" true
    (Graph_core.Connectivity.is_k_vertex_connected skewed ~k:3)

let prop_skeleton_vertex_arithmetic =
  qcheck ~count:60 "vertex count arithmetic for random (k, alpha)"
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 60))
    (fun (k, alpha) ->
      let s = Skeleton.make ~k ~alpha in
      Shape.vertex_count s = (2 * k) + (2 * alpha * (k - 1)) && Shape.height_balanced s)

let suite =
  [
    Alcotest.test_case "alpha zero is base" `Quick test_alpha_zero_is_base;
    Alcotest.test_case "alpha growth arithmetic" `Quick test_alpha_grows_by_2k_minus_2;
    Alcotest.test_case "bfs fills levels" `Quick test_bfs_order_fills_levels;
    Alcotest.test_case "always balanced" `Quick test_always_balanced;
    Alcotest.test_case "conversion order bfs" `Quick test_conversion_order_bfs;
    Alcotest.test_case "jd capacity base" `Quick test_jd_capacity_base_zero;
    Alcotest.test_case "jd capacity growth" `Quick test_jd_capacity_growth;
    Alcotest.test_case "last above leaf" `Quick test_last_above_leaf;
    Alcotest.test_case "negative alpha" `Quick test_negative_alpha;
    Alcotest.test_case "depth-first unbalanced" `Quick test_depth_first_unbalanced;
    Alcotest.test_case "depth-first small alpha" `Quick test_depth_first_small_alpha_still_balanced;
    Alcotest.test_case "depth-first linear diameter" `Quick test_depth_first_linear_diameter;
    prop_skeleton_vertex_arithmetic;
  ]
