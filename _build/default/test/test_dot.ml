open Helpers
module Dot = Graph_core.Dot
module Generators = Graph_core.Generators

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_structure () =
  let doc = Dot.to_dot ~name:"test" (Generators.path_graph 3) in
  check_bool "header" true (contains ~needle:"graph test {" doc);
  check_bool "edge 0-1" true (contains ~needle:"0 -- 1;" doc);
  check_bool "edge 1-2" true (contains ~needle:"1 -- 2;" doc);
  check_bool "closing" true (contains ~needle:"}" doc)

let test_labels_and_colors () =
  let doc =
    Dot.to_dot
      ~label:(fun v -> Printf.sprintf "v%d" v)
      ~color:(fun v -> if v = 0 then Some "red" else None)
      (Generators.path_graph 2)
  in
  check_bool "label" true (contains ~needle:"label=\"v1\"" doc);
  check_bool "color" true (contains ~needle:"fillcolor=\"red\"" doc)

let test_write_file () =
  let path = Filename.temp_file "lhg_dot" ".dot" in
  Dot.write_file ~path "graph g {}\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "graph g {}" line

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "labels and colors" `Quick test_labels_and_colors;
    Alcotest.test_case "write file" `Quick test_write_file;
  ]
