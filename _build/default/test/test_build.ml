open Helpers
module Graph = Graph_core.Graph
module Build = Lhg_core.Build
module Verify = Lhg_core.Verify

let build_ok = function
  | Ok b -> b
  | Error e -> Alcotest.fail (Build.error_to_string e)

let test_vertex_count_is_n () =
  for k = 2 to 6 do
    for n = 2 * k to (2 * k) + 30 do
      let b = build_ok (Build.ktree ~n ~k) in
      check_int (Printf.sprintf "ktree n=%d k=%d" n k) n (Graph.n b.Build.graph);
      let b = build_ok (Build.kdiamond ~n ~k) in
      check_int (Printf.sprintf "kdiamond n=%d k=%d" n k) n (Graph.n b.Build.graph)
    done
  done

let test_paper_figures () =
  (* Figure 2 of the constraint paper: (6,3), (9,3), (10,3) via K-TREE *)
  let b = build_ok (Build.ktree ~n:6 ~k:3) in
  check_int "fig 2a edges" 9 (Graph.m b.Build.graph);
  let b = build_ok (Build.ktree ~n:9 ~k:3) in
  check_int "fig 2b edges" 18 (Graph.m b.Build.graph);
  let b = build_ok (Build.ktree ~n:10 ~k:3) in
  check_int "fig 2c edges" 15 (Graph.m b.Build.graph);
  (* Figure 3: (7,3), (8,3), (13,3), (14,3) via K-DIAMOND *)
  List.iter
    (fun n -> ignore (build_ok (Build.kdiamond ~n ~k:3)))
    [ 7; 8; 13; 14 ]

let test_errors () =
  (match Build.ktree ~n:5 ~k:3 with
  | Error (Build.N_too_small { n = 5; minimum = 6 }) -> ()
  | _ -> Alcotest.fail "expected N_too_small");
  (match Build.ktree ~n:10 ~k:1 with
  | Error (Build.K_too_small 1) -> ()
  | _ -> Alcotest.fail "expected K_too_small");
  match Build.jd ~n:7 ~k:3 () with
  | Error (Build.Jd_gap { j = 1; capacity = 0; _ }) -> ()
  | _ -> Alcotest.fail "expected Jd_gap"

let test_exn_wrappers () =
  let b = Build.ktree_exn ~n:12 ~k:3 in
  check_int "exn build works" 12 (Graph.n b.Build.graph);
  Alcotest.check_raises "ktree_exn"
    (Invalid_argument
       "Build.ktree_exn: n = 5 is too small: the smallest graph for this k has 6 nodes")
    (fun () -> ignore (Build.ktree_exn ~n:5 ~k:3))

let test_witness_consistency () =
  for n = 8 to 30 do
    let b = build_ok (Build.kdiamond ~n ~k:4) in
    check_bool (Printf.sprintf "realization n=%d" n) true (Verify.check_realization b)
  done

let test_lhg_properties_ktree () =
  List.iter
    (fun (n, k) ->
      let b = build_ok (Build.ktree ~n ~k) in
      let r = Verify.verify b.Build.graph ~k in
      check_bool (Printf.sprintf "P1 (%d,%d)" n k) true r.Verify.node_connected;
      check_bool (Printf.sprintf "P2 (%d,%d)" n k) true r.Verify.link_connected;
      check_bool (Printf.sprintf "P3 (%d,%d)" n k) true (r.Verify.link_minimal = Some true);
      check_bool (Printf.sprintf "P4 (%d,%d)" n k) true r.Verify.diameter_ok)
    [ (6, 3); (9, 3); (10, 3); (23, 3); (40, 3); (8, 4); (30, 4); (64, 4); (12, 5); (50, 5) ]

let test_lhg_properties_kdiamond () =
  List.iter
    (fun (n, k) ->
      let b = build_ok (Build.kdiamond ~n ~k) in
      check_bool (Printf.sprintf "is_lhg (%d,%d)" n k) true (Verify.is_lhg b.Build.graph ~k))
    [ (7, 3); (8, 3); (13, 3); (14, 3); (31, 3); (11, 4); (44, 4); (13, 5); (61, 5) ]

let test_lhg_properties_jd () =
  List.iter
    (fun (n, k) ->
      let b = build_ok (Build.jd ~n ~k ()) in
      check_bool (Printf.sprintf "is_lhg (%d,%d)" n k) true (Verify.is_lhg b.Build.graph ~k))
    [ (6, 3); (10, 3); (12, 3); (26, 3); (8, 4); (20, 4); (32, 4) ]


let test_kdiamond_unshared_rich_matches_paper_figure () =
  (* (13,3): one root shape position set, all 3 mandatory leaves unshared
     cliques, one added shared leaf - the constraint paper's own figure *)
  let b = build_ok (Build.kdiamond_unshared_rich ~n:13 ~k:3) in
  let shape = b.Build.shape in
  let non_leaf, shared, added, unshared = Lhg_core.Shape.counts shape in
  check_int "one non-leaf (the root)" 1 non_leaf;
  check_int "no plain shared leaves" 0 shared;
  check_int "one added leaf" 1 added;
  check_int "three unshared groups" 3 unshared;
  check_int "13 vertices" 13 (Graph.n b.Build.graph);
  check_bool "still an LHG" true (Verify.is_lhg b.Build.graph ~k:3)

let test_kdiamond_unshared_rich_properties () =
  for k = 3 to 5 do
    for n = 2 * k to (2 * k) + 25 do
      let b = build_ok (Build.kdiamond_unshared_rich ~n ~k) in
      check_int (Printf.sprintf "n matches (%d,%d)" n k) n (Graph.n b.Build.graph);
      check_bool
        (Printf.sprintf "satisfies K-DIAMOND (%d,%d)" n k)
        true
        (Lhg_core.Constraint_check.satisfies_kdiamond b.Build.shape);
      check_bool
        (Printf.sprintf "regular iff formula (%d,%d)" n k)
        (Lhg_core.Regularity.reg_kdiamond ~n ~k)
        (Graph_core.Degree.is_k_regular b.Build.graph ~k)
    done
  done

let test_kdiamond_variants_same_characteristics () =
  (* both parameterisations: same n, same edge count when regular *)
  List.iter
    (fun (n, k) ->
      let a = build_ok (Build.kdiamond ~n ~k) in
      let b = build_ok (Build.kdiamond_unshared_rich ~n ~k) in
      check_int "same n" (Graph.n a.Build.graph) (Graph.n b.Build.graph);
      if Lhg_core.Regularity.reg_kdiamond ~n ~k then
        check_int "same m when regular" (Graph.m a.Build.graph) (Graph.m b.Build.graph))
    [ (8, 3); (14, 3); (20, 4); (26, 5) ]

let test_k2_builds_cycle_like () =
  (* k=2 realisations are 2-regular and 2-connected (cycles) when j=0 *)
  let b = build_ok (Build.ktree ~n:8 ~k:2) in
  let r = Verify.verify b.Build.graph ~k:2 in
  check_bool "P1" true r.Verify.node_connected;
  check_bool "P2" true r.Verify.link_connected;
  check_bool "2-regular" true r.Verify.k_regular

let test_deep_trees () =
  (* large alpha: forces several complete levels *)
  let b = build_ok (Build.ktree ~n:(6 + (2 * 40 * 2)) ~k:3) in
  let r = Verify.verify ~check_minimality:false b.Build.graph ~k:3 in
  check_bool "deep P1" true r.Verify.node_connected;
  check_bool "deep P4" true r.Verify.diameter_ok

let prop_built_graphs_are_k_connected =
  qcheck ~count:40 "random builds are k-connected with logarithmic diameter"
    QCheck2.Gen.(pair (int_range 3 6) (int_range 0 60))
    (fun (k, extra) ->
      let n = (2 * k) + extra in
      match Build.kdiamond ~n ~k with
      | Error _ -> false
      | Ok b ->
          let r = Verify.verify ~check_minimality:false b.Build.graph ~k in
          r.Verify.node_connected && r.Verify.link_connected && r.Verify.diameter_ok)

let suite =
  [
    Alcotest.test_case "vertex count" `Quick test_vertex_count_is_n;
    Alcotest.test_case "paper figures" `Quick test_paper_figures;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "exn wrappers" `Quick test_exn_wrappers;
    Alcotest.test_case "witness consistency" `Quick test_witness_consistency;
    Alcotest.test_case "LHG properties (ktree)" `Slow test_lhg_properties_ktree;
    Alcotest.test_case "LHG properties (kdiamond)" `Slow test_lhg_properties_kdiamond;
    Alcotest.test_case "LHG properties (jd)" `Slow test_lhg_properties_jd;
    Alcotest.test_case "unshared-rich paper figure" `Quick
      test_kdiamond_unshared_rich_matches_paper_figure;
    Alcotest.test_case "unshared-rich properties" `Slow test_kdiamond_unshared_rich_properties;
    Alcotest.test_case "kdiamond variants agree" `Quick
      test_kdiamond_variants_same_characteristics;
    Alcotest.test_case "k=2 cycle-like" `Quick test_k2_builds_cycle_like;
    Alcotest.test_case "deep trees" `Quick test_deep_trees;
    prop_built_graphs_are_k_connected;
  ]
