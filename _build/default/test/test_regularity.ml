open Helpers
module Regularity = Lhg_core.Regularity
module Build = Lhg_core.Build
module Degree = Graph_core.Degree

let test_reg_ktree_formula () =
  (* k=3: regular sizes are 6, 10, 14, 18, ... *)
  List.iter
    (fun (n, expected) -> check_bool (Printf.sprintf "n=%d" n) expected (Regularity.reg_ktree ~n ~k:3))
    [ (5, false); (6, true); (7, false); (8, false); (9, false); (10, true); (11, false);
      (14, true); (16, false); (18, true) ]

let test_reg_kdiamond_formula () =
  (* k=3: regular sizes are 6, 8, 10, 12, ... every even n >= 6 *)
  List.iter
    (fun (n, expected) ->
      check_bool (Printf.sprintf "n=%d" n) expected (Regularity.reg_kdiamond ~n ~k:3))
    [ (5, false); (6, true); (7, false); (8, true); (9, false); (10, true); (12, true); (13, false) ]

let test_corollary2_implication () =
  for k = 2 to 8 do
    for n = 1 to (2 * k) + 60 do
      if Regularity.reg_ktree ~n ~k then
        check_bool (Printf.sprintf "n=%d k=%d" n k) true (Regularity.reg_kdiamond ~n ~k)
    done
  done

let test_theorem7_infinite_gap () =
  (* odd alpha values are K-DIAMOND-only *)
  for k = 3 to 7 do
    for alpha = 1 to 15 do
      if alpha mod 2 = 1 then begin
        let n = (2 * k) + (alpha * (k - 1)) in
        check_bool (Printf.sprintf "kdiamond-only n=%d k=%d" n k) true
          (Regularity.kdiamond_only ~n ~k)
      end
    done
  done

let test_built_graphs_regular_iff_formula () =
  for k = 3 to 5 do
    for n = 2 * k to (2 * k) + 40 do
      (match Build.ktree ~n ~k with
      | Ok b ->
          check_bool
            (Printf.sprintf "ktree n=%d k=%d regular iff formula" n k)
            (Regularity.reg_ktree ~n ~k)
            (Degree.is_k_regular b.Build.graph ~k)
      | Error _ -> Alcotest.fail "ktree must build");
      match Build.kdiamond ~n ~k with
      | Ok b ->
          check_bool
            (Printf.sprintf "kdiamond n=%d k=%d regular iff formula" n k)
            (Regularity.reg_kdiamond ~n ~k)
            (Degree.is_k_regular b.Build.graph ~k)
      | Error _ -> Alcotest.fail "kdiamond must build"
    done
  done

let test_regular_sizes_listing () =
  Alcotest.(check (list int)) "ktree k=3 up to 20" [ 6; 10; 14; 18 ]
    (Regularity.regular_sizes_ktree ~k:3 ~max_n:20);
  Alcotest.(check (list int)) "kdiamond k=3 up to 16" [ 6; 8; 10; 12; 14; 16 ]
    (Regularity.regular_sizes_kdiamond ~k:3 ~max_n:16);
  Alcotest.(check (list int)) "ktree k=4 up to 30" [ 8; 14; 20; 26 ]
    (Regularity.regular_sizes_ktree ~k:4 ~max_n:30);
  Alcotest.(check (list int)) "empty below 2k" [] (Regularity.regular_sizes_ktree ~k:5 ~max_n:9)

let test_regular_graph_is_minimum_edges () =
  (* a k-regular k-connected graph has exactly ceil(kn/2) edges - the
     absolute minimum; check the k-regular builds hit it *)
  List.iter
    (fun (n, k) ->
      match Build.kdiamond ~n ~k with
      | Ok b ->
          check_int
            (Printf.sprintf "minimum edges n=%d k=%d" n k)
            (((k * n) + 1) / 2)
            (Graph_core.Graph.m b.Build.graph)
      | Error _ -> Alcotest.fail "must build")
    [ (8, 3); (10, 3); (14, 4); (20, 4); (14, 5) ]

let prop_reg_kdiamond_exactly_doubles_ktree_density =
  qcheck ~count:200 "REG sets: ktree step 2(k-1), kdiamond step (k-1)"
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 300))
    (fun (k, extra) ->
      let n = (2 * k) + extra in
      let kt = Regularity.reg_ktree ~n ~k in
      let kd = Regularity.reg_kdiamond ~n ~k in
      let expected_kt = extra mod (2 * (k - 1)) = 0 in
      let expected_kd = extra mod (k - 1) = 0 in
      kt = expected_kt && kd = expected_kd)

let suite =
  [
    Alcotest.test_case "REG_KTREE formula" `Quick test_reg_ktree_formula;
    Alcotest.test_case "REG_KDIAMOND formula" `Quick test_reg_kdiamond_formula;
    Alcotest.test_case "corollary 2" `Quick test_corollary2_implication;
    Alcotest.test_case "theorem 7 gap" `Quick test_theorem7_infinite_gap;
    Alcotest.test_case "built graphs regular iff formula" `Quick
      test_built_graphs_regular_iff_formula;
    Alcotest.test_case "regular sizes listing" `Quick test_regular_sizes_listing;
    Alcotest.test_case "regular builds hit minimum edges" `Quick
      test_regular_graph_is_minimum_edges;
    prop_reg_kdiamond_exactly_doubles_ktree_density;
  ]
