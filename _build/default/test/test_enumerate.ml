open Helpers
module Enumerate = Lhg_core.Enumerate
module Verify = Lhg_core.Verify
module Constraint_check = Lhg_core.Constraint_check
module Build = Lhg_core.Build

let test_count_degenerate () =
  check_int "no witness below 2k" 0 (Enumerate.count_ktree ~n:5 ~k:3);
  check_int "unique when j=0" 1 (Enumerate.count_ktree ~n:6 ~k:3);
  check_int "unique when j=0, deep" 1 (Enumerate.count_ktree ~n:14 ~k:3)

let test_count_small_by_hand () =
  (* (7,3): alpha=0, j=1, one host (the root): a single distribution *)
  check_int "(7,3)" 1 (Enumerate.count_ktree ~n:7 ~k:3);
  (* (11,3): alpha=1, j=1, hosts = {root, converted}: two distributions *)
  check_int "(11,3)" 2 (Enumerate.count_ktree ~n:11 ~k:3);
  (* (12,3): alpha=1, j=2, cap=3, hosts=2: 2+0,1+1,0+2 -> 3 *)
  check_int "(12,3)" 3 (Enumerate.count_ktree ~n:12 ~k:3);
  (* (13,3): j=3: 3|0, 2|1, 1|2, 0|3 -> 4 *)
  check_int "(13,3)" 4 (Enumerate.count_ktree ~n:13 ~k:3)

let test_cap_limits_distributions () =
  (* (9,3): alpha=0, j=3 = cap on a single host: exactly one way *)
  check_int "(9,3)" 1 (Enumerate.count_ktree ~n:9 ~k:3);
  (* j above single-host capacity is impossible for alpha=0... but the
     decomposition never produces j > 2k-3, so count stays positive *)
  check_bool "all n >= 2k countable" true
    (List.for_all (fun n -> Enumerate.count_ktree ~n ~k:3 > 0) (List.init 30 (fun i -> 6 + i)))

let test_iter_matches_count () =
  List.iter
    (fun (n, k) ->
      let expected = Enumerate.count_ktree ~n ~k in
      let seen = Enumerate.iter_ktree ~limit:10_000 ~n ~k (fun _ -> ()) in
      check_int (Printf.sprintf "(%d,%d)" n k) expected seen)
    [ (6, 3); (7, 3); (11, 3); (12, 3); (13, 3); (17, 3); (10, 4); (19, 4) ]

let test_every_witness_is_valid () =
  let checked = ref 0 in
  let _ =
    Enumerate.iter_ktree ~limit:50 ~n:17 ~k:3 (fun b ->
        incr checked;
        check_int "size" 17 (Graph_core.Graph.n b.Build.graph);
        check_bool "satisfies K-TREE" true (Constraint_check.satisfies_ktree b.Build.shape);
        check_bool "is an LHG" true (Verify.is_lhg b.Build.graph ~k:3))
  in
  check_bool "several enumerated" true (!checked > 1)

let test_limit_respected () =
  let produced = Enumerate.iter_ktree ~limit:2 ~n:13 ~k:3 (fun _ -> ()) in
  check_int "limited" 2 produced

let test_distinct_graphs_several () =
  (* different added-leaf hosts yield different labelled graphs *)
  let d = Enumerate.distinct_graphs ~limit:100 ~n:13 ~k:3 () in
  check_bool "more than one graph" true (d > 1);
  check_bool "at most the count" true (d <= Enumerate.count_ktree ~n:13 ~k:3)

let prop_count_positive_iff_exists =
  qcheck ~count:100 "count > 0 iff EX_KTREE"
    QCheck2.Gen.(pair (int_range 2 6) (int_range 0 40))
    (fun (k, extra) ->
      let n = k + extra in
      Enumerate.count_ktree ~n ~k > 0 = Lhg_core.Existence.ex_ktree ~n ~k)

let suite =
  [
    Alcotest.test_case "count degenerate" `Quick test_count_degenerate;
    Alcotest.test_case "count small by hand" `Quick test_count_small_by_hand;
    Alcotest.test_case "cap limits" `Quick test_cap_limits_distributions;
    Alcotest.test_case "iter matches count" `Quick test_iter_matches_count;
    Alcotest.test_case "every witness valid" `Quick test_every_witness_is_valid;
    Alcotest.test_case "limit respected" `Quick test_limit_respected;
    Alcotest.test_case "distinct graphs" `Quick test_distinct_graphs_several;
    prop_count_positive_iff_exists;
  ]
