open Helpers
module Maxflow = Graph_core.Maxflow

(* The classic 6-node example: max flow 23. *)
let classic () =
  let net = Maxflow.Net.create ~n:6 in
  Maxflow.Net.add_arc net ~src:0 ~dst:1 ~cap:16;
  Maxflow.Net.add_arc net ~src:0 ~dst:2 ~cap:13;
  Maxflow.Net.add_arc net ~src:1 ~dst:2 ~cap:10;
  Maxflow.Net.add_arc net ~src:2 ~dst:1 ~cap:4;
  Maxflow.Net.add_arc net ~src:1 ~dst:3 ~cap:12;
  Maxflow.Net.add_arc net ~src:3 ~dst:2 ~cap:9;
  Maxflow.Net.add_arc net ~src:2 ~dst:4 ~cap:14;
  Maxflow.Net.add_arc net ~src:4 ~dst:3 ~cap:7;
  Maxflow.Net.add_arc net ~src:3 ~dst:5 ~cap:20;
  Maxflow.Net.add_arc net ~src:4 ~dst:5 ~cap:4;
  net

let test_classic () = check_int "CLRS flow" 23 (Maxflow.max_flow (classic ()) ~s:0 ~t:5)

let test_single_arc () =
  let net = Maxflow.Net.create ~n:2 in
  Maxflow.Net.add_arc net ~src:0 ~dst:1 ~cap:7;
  check_int "single arc" 7 (Maxflow.max_flow net ~s:0 ~t:1)

let test_no_path () =
  let net = Maxflow.Net.create ~n:3 in
  Maxflow.Net.add_arc net ~src:0 ~dst:1 ~cap:5;
  check_int "no path" 0 (Maxflow.max_flow net ~s:0 ~t:2)

let test_bottleneck () =
  let net = Maxflow.Net.create ~n:4 in
  Maxflow.Net.add_arc net ~src:0 ~dst:1 ~cap:100;
  Maxflow.Net.add_arc net ~src:1 ~dst:2 ~cap:1;
  Maxflow.Net.add_arc net ~src:2 ~dst:3 ~cap:100;
  check_int "bottleneck" 1 (Maxflow.max_flow net ~s:0 ~t:3)

let test_parallel_paths () =
  let net = Maxflow.Net.create ~n:6 in
  for mid = 1 to 4 do
    Maxflow.Net.add_arc net ~src:0 ~dst:mid ~cap:1;
    Maxflow.Net.add_arc net ~src:mid ~dst:5 ~cap:1
  done;
  check_int "four disjoint paths" 4 (Maxflow.max_flow net ~s:0 ~t:5)

let test_limit_cuts_off () =
  let net = classic () in
  let f = Maxflow.max_flow ~limit:5 net ~s:0 ~t:5 in
  check_bool "limited" true (f >= 5 && f <= 23);
  check_bool "stops early" true (f < 23)

let test_reset_flow () =
  let net = classic () in
  check_int "first run" 23 (Maxflow.max_flow net ~s:0 ~t:5);
  check_int "saturated rerun" 0 (Maxflow.max_flow net ~s:0 ~t:5);
  Maxflow.Net.reset_flow net;
  check_int "after reset" 23 (Maxflow.max_flow net ~s:0 ~t:5)

let test_bidir_edge () =
  let net = Maxflow.Net.create ~n:2 in
  Maxflow.Net.add_edge_bidir net 0 1 ~cap:3;
  check_int "forward" 3 (Maxflow.max_flow net ~s:0 ~t:1);
  Maxflow.Net.reset_flow net;
  check_int "backward" 3 (Maxflow.max_flow net ~s:1 ~t:0)

let test_invalid_args () =
  let net = Maxflow.Net.create ~n:3 in
  Alcotest.check_raises "s=t" (Invalid_argument "Maxflow.max_flow: s = t") (fun () ->
      ignore (Maxflow.max_flow net ~s:1 ~t:1));
  Alcotest.check_raises "negative cap" (Invalid_argument "Maxflow.Net.add_arc: negative capacity")
    (fun () -> Maxflow.Net.add_arc net ~src:0 ~dst:1 ~cap:(-1))

let test_min_cut_side () =
  let net = Maxflow.Net.create ~n:4 in
  Maxflow.Net.add_arc net ~src:0 ~dst:1 ~cap:10;
  Maxflow.Net.add_arc net ~src:1 ~dst:2 ~cap:1;
  Maxflow.Net.add_arc net ~src:2 ~dst:3 ~cap:10;
  ignore (Maxflow.max_flow net ~s:0 ~t:3);
  let side = Maxflow.min_cut_side net ~s:0 in
  Alcotest.(check (array bool)) "cut after bottleneck" [| true; true; false; false |] side

let test_flow_conservation () =
  let net = classic () in
  let flow_value = Maxflow.max_flow net ~s:0 ~t:5 in
  let balance = Array.make 6 0 in
  Maxflow.iter_flow_arcs net (fun ~src ~dst ~flow ->
      balance.(src) <- balance.(src) - flow;
      balance.(dst) <- balance.(dst) + flow);
  check_int "source emits flow" (-flow_value) balance.(0);
  check_int "sink absorbs flow" flow_value balance.(5);
  for v = 1 to 4 do
    check_int "interior balanced" 0 balance.(v)
  done

let prop_flow_bounded_by_cut =
  qcheck "flow <= any star cut" QCheck2.Gen.(int_bound 10_000) (fun seed ->
      let rngv = Graph_core.Prng.create ~seed in
      let n = 6 in
      let net = Maxflow.Net.create ~n in
      let out_cap = Array.make n 0 and in_cap = Array.make n 0 in
      for _ = 1 to 12 do
        let s = Graph_core.Prng.int rngv n and t = Graph_core.Prng.int rngv n in
        if s <> t then begin
          let cap = Graph_core.Prng.int rngv 10 in
          Maxflow.Net.add_arc net ~src:s ~dst:t ~cap;
          out_cap.(s) <- out_cap.(s) + cap;
          in_cap.(t) <- in_cap.(t) + cap
        end
      done;
      let f = Maxflow.max_flow net ~s:0 ~t:(n - 1) in
      f <= out_cap.(0) && f <= in_cap.(n - 1))

let suite =
  [
    Alcotest.test_case "classic network" `Quick test_classic;
    Alcotest.test_case "single arc" `Quick test_single_arc;
    Alcotest.test_case "no path" `Quick test_no_path;
    Alcotest.test_case "bottleneck" `Quick test_bottleneck;
    Alcotest.test_case "parallel paths" `Quick test_parallel_paths;
    Alcotest.test_case "limit cuts off" `Quick test_limit_cuts_off;
    Alcotest.test_case "reset flow" `Quick test_reset_flow;
    Alcotest.test_case "bidirectional edge" `Quick test_bidir_edge;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "min cut side" `Quick test_min_cut_side;
    Alcotest.test_case "flow conservation" `Quick test_flow_conservation;
    prop_flow_bounded_by_cut;
  ]
