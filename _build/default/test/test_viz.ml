open Helpers
module Viz = Lhg_core.Viz
module Build = Lhg_core.Build

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_roles_rendered () =
  let b = Build.kdiamond_exn ~n:8 ~k:3 in
  let doc = Viz.to_dot b in
  check_bool "root label" true (contains ~needle:"R0" doc);
  check_bool "root colour" true (contains ~needle:"gold" doc);
  check_bool "unshared members" true (contains ~needle:"U" doc);
  check_bool "shared leaves" true (contains ~needle:"L" doc)

let test_added_leaves_rendered () =
  let b = Build.ktree_exn ~n:9 ~k:3 in
  let doc = Viz.to_dot b in
  check_bool "added label" true (contains ~needle:"A" doc)

let test_every_vertex_has_a_node_line () =
  let b = Build.ktree_exn ~n:22 ~k:4 in
  let doc = Viz.to_dot b in
  for v = 0 to 21 do
    check_bool
      (Printf.sprintf "vertex %d present" v)
      true
      (contains ~needle:(Printf.sprintf "\n  %d [" v) doc)
  done

let test_edge_count_matches () =
  let b = Build.kdiamond_exn ~n:14 ~k:3 in
  let doc = Viz.to_dot b in
  let count = ref 0 in
  String.iteri
    (fun i c ->
      if c = '-' && i + 1 < String.length doc && doc.[i + 1] = '-' then incr count)
    doc;
  check_int "one -- per edge" (Graph_core.Graph.m b.Build.graph) !count

let test_write_file () =
  let path = Filename.temp_file "lhg_viz" ".dot" in
  Viz.write_file ~path (Build.kdiamond_exn ~n:10 ~k:3);
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  check_bool "non-trivial file" true (size > 200)

let suite =
  [
    Alcotest.test_case "roles rendered" `Quick test_roles_rendered;
    Alcotest.test_case "added leaves rendered" `Quick test_added_leaves_rendered;
    Alcotest.test_case "all vertices present" `Quick test_every_vertex_has_a_node_line;
    Alcotest.test_case "edge count" `Quick test_edge_count_matches;
    Alcotest.test_case "write file" `Quick test_write_file;
  ]
