open Helpers
module Graph = Graph_core.Graph
module Serial = Graph_core.Serial
module Generators = Graph_core.Generators

let roundtrip g =
  match Serial.of_string (Serial.to_string g) with
  | Ok g' -> g'
  | Error e -> Alcotest.fail e

let test_roundtrip_fixtures () =
  List.iter
    (fun g -> check_bool "roundtrip equality" true (Graph.equal g (roundtrip g)))
    [ petersen (); house (); Generators.complete 7; Graph.create ~n:5; Graph.create ~n:0 ]

let test_format_shape () =
  let s = Serial.to_string (Generators.path_graph 3) in
  Alcotest.(check string) "exact format" "n 3\n0 1\n1 2\n" s

let test_comments_and_blanks () =
  match Serial.of_string "# a comment\n\nn 4\n0 1 # trailing\n\n2 3\n" with
  | Ok g ->
      check_int "n" 4 (Graph.n g);
      check_int "m" 2 (Graph.m g)
  | Error e -> Alcotest.fail e

let test_missing_header () =
  match Serial.of_string "0 1\n" with
  | Error msg -> check_bool "mentions header" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "should reject"

let test_duplicate_header () =
  match Serial.of_string "n 3\nn 4\n" with
  | Error msg -> check_bool "line 2 flagged" true (String.length msg > 6 && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "should reject"

let test_bad_edge () =
  (match Serial.of_string "n 3\n0 foo\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric vertex");
  (match Serial.of_string "n 3\n0 5\n" with
  | Error msg -> check_bool "range error surfaces" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "out-of-range vertex");
  match Serial.of_string "n 3\n1 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self loop"

let test_empty_input () =
  match Serial.of_string "" with Error _ -> () | Ok _ -> Alcotest.fail "empty should fail"

let test_file_roundtrip () =
  let path = Filename.temp_file "lhg_serial" ".edges" in
  let g = petersen () in
  Serial.write_file ~path g;
  (match Serial.read_file ~path with
  | Ok g' -> check_bool "file roundtrip" true (Graph.equal g g')
  | Error e -> Alcotest.fail e);
  Sys.remove path

let prop_random_roundtrip =
  qcheck ~count:60 "serialisation roundtrips" QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let rngv = Graph_core.Prng.create ~seed in
      let n = Graph_core.Prng.int rngv 30 in
      let g = Generators.gnp rngv ~n ~p:0.3 in
      match Serial.of_string (Serial.to_string g) with
      | Ok g' -> Graph.equal g g'
      | Error _ -> false)

let prop_parser_never_crashes =
  qcheck ~count:300 "of_string is total on junk input"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\x7f') (int_bound 200))
    (fun junk ->
      match Serial.of_string junk with Ok _ -> true | Error _ -> true)

let suite =
  [
    Alcotest.test_case "roundtrip fixtures" `Quick test_roundtrip_fixtures;
    Alcotest.test_case "format shape" `Quick test_format_shape;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "missing header" `Quick test_missing_header;
    Alcotest.test_case "duplicate header" `Quick test_duplicate_header;
    Alcotest.test_case "bad edge" `Quick test_bad_edge;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    prop_random_roundtrip;
    prop_parser_never_crashes;
  ]
