open Helpers
module Graph = Graph_core.Graph
module Gomory_hu = Graph_core.Gomory_hu
module Connectivity = Graph_core.Connectivity
module Generators = Graph_core.Generators
module Prng = Graph_core.Prng

let all_pairs_agree g =
  let t = Gomory_hu.build g in
  let ok = ref true in
  for u = 0 to Graph.n g - 1 do
    for v = u + 1 to Graph.n g - 1 do
      let tree_val = Gomory_hu.min_cut_value t u v in
      let flow_val = Connectivity.local_edge_connectivity g ~s:u ~t:v in
      if tree_val <> flow_val then ok := false
    done
  done;
  !ok

let test_cycle () =
  let t = Gomory_hu.build (Generators.cycle 7) in
  for u = 0 to 6 do
    for v = u + 1 to 6 do
      check_int "all pairs 2" 2 (Gomory_hu.min_cut_value t u v)
    done
  done

let test_barbell () =
  let t = Gomory_hu.build (barbell ()) in
  check_int "across the bridge" 1 (Gomory_hu.min_cut_value t 0 5);
  check_int "inside a triangle" 2 (Gomory_hu.min_cut_value t 0 1);
  match Gomory_hu.bottleneck t with
  | Some (_, _, w) -> check_int "bottleneck weight" 1 w
  | None -> Alcotest.fail "bottleneck exists"

let test_complete () =
  let t = Gomory_hu.build (Generators.complete 6) in
  check_int "K6 pair" 5 (Gomory_hu.min_cut_value t 1 4)

let test_star () =
  let t = Gomory_hu.build (Generators.star 6) in
  check_int "leaf pair" 1 (Gomory_hu.min_cut_value t 1 2)

let test_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let t = Gomory_hu.build g in
  check_int "cross-component" 0 (Gomory_hu.min_cut_value t 0 2);
  check_int "same component" 1 (Gomory_hu.min_cut_value t 0 1)

let test_fixtures_all_pairs () =
  List.iter
    (fun g -> check_bool "agrees with direct flows" true (all_pairs_agree g))
    [ petersen (); house (); barbell (); Generators.grid ~rows:3 ~cols:3 ]

let test_tree_edges_count () =
  let t = Gomory_hu.build (petersen ()) in
  check_int "n-1 edges" 9 (List.length (Gomory_hu.tree_edges t));
  check_bool "petersen bottleneck 3" true
    (match Gomory_hu.bottleneck t with Some (_, _, 3) -> true | _ -> false)

let test_single_vertex () =
  let t = Gomory_hu.build (Graph.create ~n:1) in
  check_bool "no bottleneck" true (Gomory_hu.bottleneck t = None)

let test_same_vertex_rejected () =
  let t = Gomory_hu.build (Generators.cycle 4) in
  Alcotest.check_raises "u=v" (Invalid_argument "Gomory_hu.min_cut_value: u = v") (fun () ->
      ignore (Gomory_hu.min_cut_value t 2 2))

let test_lhg_tree_uniform () =
  (* on a k-regular LHG every pairwise min cut is exactly k *)
  let b = Lhg_core.Build.kdiamond_exn ~n:20 ~k:4 in
  let t = Gomory_hu.build b.Lhg_core.Build.graph in
  List.iter (fun (_, _, w) -> check_int "uniform k" 4 w) (Gomory_hu.tree_edges t)

let prop_tree_matches_flows =
  qcheck ~count:40 "gomory-hu = pairwise flows on random graphs" QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 4 + Prng.int rngv 8 in
      let g = Generators.gnp rngv ~n ~p:0.4 in
      all_pairs_agree g)

let suite =
  [
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "barbell" `Quick test_barbell;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "fixtures all pairs" `Quick test_fixtures_all_pairs;
    Alcotest.test_case "tree edges" `Quick test_tree_edges_count;
    Alcotest.test_case "single vertex" `Quick test_single_vertex;
    Alcotest.test_case "same vertex rejected" `Quick test_same_vertex_rejected;
    Alcotest.test_case "lhg tree uniform" `Quick test_lhg_tree_uniform;
    prop_tree_matches_flows;
  ]
