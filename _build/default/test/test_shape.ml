open Helpers
module Shape = Lhg_core.Shape

let test_base () =
  let s = Shape.base ~k:3 in
  check_int "size" 4 (Shape.size s);
  check_bool "root kind" true (Shape.kind s 0 = Shape.Root);
  Alcotest.(check (list int)) "root children" [ 1; 2; 3 ] (Shape.children s 0);
  check_int "root depth" 0 (Shape.depth s 0);
  check_int "leaf depth" 1 (Shape.depth s 1);
  check_int "root parent" (-1) (Shape.parent s 0);
  check_int "vertex count" 6 (Shape.vertex_count s)

let test_base_k_too_small () =
  Alcotest.check_raises "k=1" (Invalid_argument "Shape.base: k must be >= 2") (fun () ->
      ignore (Shape.base ~k:1))

let test_convert_leaf () =
  let s = Shape.base ~k:3 in
  Shape.convert_leaf s 1;
  check_bool "now internal" true (Shape.kind s 1 = Shape.Internal);
  check_int "two new leaves" 6 (Shape.size s);
  Alcotest.(check (list int)) "children of converted" [ 4; 5 ] (Shape.children s 1);
  check_int "new leaf depth" 2 (Shape.depth s 4);
  check_int "vertex count 6+4" 10 (Shape.vertex_count s)

let test_convert_non_leaf_rejected () =
  let s = Shape.base ~k:3 in
  Alcotest.check_raises "root" (Invalid_argument "Shape.convert_leaf: not a convertible leaf")
    (fun () -> Shape.convert_leaf s 0)

let test_convert_added_leaf_rejected () =
  let s = Shape.base ~k:3 in
  Shape.add_added_leaf s ~parent:0;
  let added = Shape.size s - 1 in
  Alcotest.check_raises "added leaf"
    (Invalid_argument "Shape.convert_leaf: not a convertible leaf") (fun () ->
      Shape.convert_leaf s added)

let test_add_added_leaf () =
  let s = Shape.base ~k:3 in
  Shape.add_added_leaf s ~parent:0;
  check_int "size" 5 (Shape.size s);
  check_bool "kind" true (Shape.kind s 4 = Shape.Added_leaf);
  Alcotest.(check (list int)) "regular children unchanged" [ 1; 2; 3 ]
    (Shape.regular_children s 0);
  Alcotest.(check (list int)) "added children" [ 4 ] (Shape.added_children s 0);
  check_int "vertex count 6+1" 7 (Shape.vertex_count s)

let test_add_added_leaf_deep_rejected () =
  let s = Shape.base ~k:3 in
  Shape.convert_leaf s 1;
  Shape.convert_leaf s 2;
  Shape.convert_leaf s 3;
  (* root's children are all internal now: not just above the leaves *)
  Alcotest.check_raises "not above leaves"
    (Invalid_argument "Shape.add_added_leaf: parent is not just above the leaves") (fun () ->
      Shape.add_added_leaf s ~parent:0)

let test_add_added_leaf_on_leaf_rejected () =
  let s = Shape.base ~k:3 in
  Alcotest.check_raises "leaf parent" (Invalid_argument "Shape.add_added_leaf: parent is a leaf")
    (fun () -> Shape.add_added_leaf s ~parent:1)

let test_mark_unshared () =
  let s = Shape.base ~k:3 in
  Shape.mark_unshared s 2;
  check_bool "kind" true (Shape.kind s 2 = Shape.Unshared_leaf);
  check_int "vertex count 6+2" 8 (Shape.vertex_count s);
  Alcotest.check_raises "double mark" (Invalid_argument "Shape.mark_unshared: not a shared leaf")
    (fun () -> Shape.mark_unshared s 2)

let test_leaves () =
  let s = Shape.base ~k:4 in
  Alcotest.(check (list int)) "base leaves" [ 1; 2; 3; 4 ] (Shape.leaves s);
  Shape.convert_leaf s 1;
  Alcotest.(check (list int)) "after conversion" [ 2; 3; 4; 5; 6; 7 ] (Shape.leaves s)

let test_above_leaf_nodes () =
  let s = Shape.base ~k:3 in
  Alcotest.(check (list int)) "base: root" [ 0 ] (Shape.above_leaf_nodes s);
  Shape.convert_leaf s 1;
  Alcotest.(check (list int)) "root and converted" [ 0; 1 ] (Shape.above_leaf_nodes s);
  Shape.convert_leaf s 2;
  Shape.convert_leaf s 3;
  Alcotest.(check (list int)) "only converted nodes" [ 1; 2; 3 ] (Shape.above_leaf_nodes s)

let test_height_balanced () =
  let s = Shape.base ~k:3 in
  check_bool "base balanced" true (Shape.height_balanced s);
  Shape.convert_leaf s 1;
  check_bool "one conversion ok" true (Shape.height_balanced s);
  (* converting a depth-2 leaf before finishing depth-1 breaks balance *)
  let s' = Shape.base ~k:3 in
  Shape.convert_leaf s' 1;
  Shape.convert_leaf s' 4;
  check_bool "depth skip unbalanced" false (Shape.height_balanced s')

let test_counts () =
  let s = Shape.base ~k:3 in
  Shape.convert_leaf s 1;
  Shape.add_added_leaf s ~parent:0;
  Shape.mark_unshared s 2;
  let non_leaf, shared, added, unshared = Shape.counts s in
  check_int "non-leaf" 2 non_leaf;
  check_int "shared" 3 shared;
  check_int "added" 1 added;
  check_int "unshared" 1 unshared;
  check_int "vertex count" ((3 * 2) + 3 + 1 + 3) (Shape.vertex_count s)

let test_out_of_range () =
  let s = Shape.base ~k:2 in
  Alcotest.check_raises "bad node" (Invalid_argument "Shape.kind: node 9 out of range") (fun () ->
      ignore (Shape.kind s 9))

let test_growth_stress () =
  (* force many internal array growths *)
  let s = Shape.base ~k:3 in
  let q = Queue.create () in
  for leaf = 1 to 3 do
    Queue.add leaf q
  done;
  for _ = 1 to 500 do
    let leaf = Queue.pop q in
    let before = Shape.size s in
    Shape.convert_leaf s leaf;
    for child = before to Shape.size s - 1 do
      Queue.add child q
    done
  done;
  check_int "size" (4 + (500 * 2)) (Shape.size s);
  check_bool "still balanced" true (Shape.height_balanced s)

let suite =
  [
    Alcotest.test_case "base" `Quick test_base;
    Alcotest.test_case "base k too small" `Quick test_base_k_too_small;
    Alcotest.test_case "convert leaf" `Quick test_convert_leaf;
    Alcotest.test_case "convert non-leaf rejected" `Quick test_convert_non_leaf_rejected;
    Alcotest.test_case "convert added leaf rejected" `Quick test_convert_added_leaf_rejected;
    Alcotest.test_case "add added leaf" `Quick test_add_added_leaf;
    Alcotest.test_case "added leaf deep rejected" `Quick test_add_added_leaf_deep_rejected;
    Alcotest.test_case "added leaf on leaf rejected" `Quick test_add_added_leaf_on_leaf_rejected;
    Alcotest.test_case "mark unshared" `Quick test_mark_unshared;
    Alcotest.test_case "leaves" `Quick test_leaves;
    Alcotest.test_case "above leaf nodes" `Quick test_above_leaf_nodes;
    Alcotest.test_case "height balanced" `Quick test_height_balanced;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "growth stress" `Quick test_growth_stress;
  ]
