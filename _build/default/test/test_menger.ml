open Helpers
module Graph = Graph_core.Graph
module Menger = Graph_core.Menger
module Connectivity = Graph_core.Connectivity
module Generators = Graph_core.Generators
module Prng = Graph_core.Prng

let check_paths_valid g paths ~s ~t =
  List.iter
    (fun p ->
      let rec ok = function
        | u :: (v :: _ as rest) ->
            check_bool "edge exists" true (Graph.has_edge g u v);
            ok rest
        | [ _ ] | [] -> ()
      in
      (match p with
      | first :: _ -> check_int "starts at s" s first
      | [] -> Alcotest.fail "empty path");
      check_int "ends at t" t (List.nth p (List.length p - 1));
      ok p)
    paths

let test_edge_disjoint_cycle () =
  let g = Generators.cycle 8 in
  let paths = Menger.edge_disjoint_paths g ~s:0 ~t:4 in
  check_int "two paths" 2 (List.length paths);
  check_paths_valid g paths ~s:0 ~t:4;
  check_bool "edge disjoint" true (Menger.check_edge_disjoint paths)

let test_edge_disjoint_count_matches_flow () =
  let g = petersen () in
  let paths = Menger.edge_disjoint_paths g ~s:0 ~t:7 in
  check_int "lambda(0,7)" (Connectivity.local_edge_connectivity g ~s:0 ~t:7) (List.length paths);
  check_bool "disjoint" true (Menger.check_edge_disjoint paths)

let test_vertex_disjoint_petersen () =
  let g = petersen () in
  let paths = Menger.vertex_disjoint_paths g ~s:0 ~t:7 in
  check_int "three paths" 3 (List.length paths);
  check_paths_valid g paths ~s:0 ~t:7;
  check_bool "internally disjoint" true (Menger.check_internally_disjoint ~s:0 ~t:7 paths)

let test_vertex_disjoint_adjacent () =
  let g = Generators.complete 5 in
  let paths = Menger.vertex_disjoint_paths g ~s:0 ~t:1 in
  check_int "K5 adjacent pair" 4 (List.length paths);
  check_bool "direct edge included" true (List.mem [ 0; 1 ] paths);
  check_bool "internally disjoint" true (Menger.check_internally_disjoint ~s:0 ~t:1 paths)

let test_limit () =
  let g = Generators.complete 6 in
  let paths = Menger.vertex_disjoint_paths ~limit:2 g ~s:0 ~t:3 in
  check_int "capped at 2" 2 (List.length paths)

let test_bridge () =
  let g = barbell () in
  let paths = Menger.edge_disjoint_paths g ~s:0 ~t:5 in
  check_int "single path over bridge" 1 (List.length paths);
  check_paths_valid g paths ~s:0 ~t:5

let test_no_path () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_int "none" 0 (List.length (Menger.edge_disjoint_paths g ~s:0 ~t:2));
  check_int "none vertex" 0 (List.length (Menger.vertex_disjoint_paths g ~s:0 ~t:2))

let test_same_vertex_rejected () =
  let g = Generators.cycle 4 in
  Alcotest.check_raises "s=t" (Invalid_argument "Menger.edge_disjoint_paths: s = t") (fun () ->
      ignore (Menger.edge_disjoint_paths g ~s:1 ~t:1))

let random_connected seed =
  let rngv = Prng.create ~seed in
  let n = 6 + Prng.int rngv 6 in
  let g = Generators.gnp rngv ~n ~p:0.5 in
  (* splice in a Hamiltonian cycle to guarantee connectivity *)
  for v = 0 to n - 1 do
    Graph.add_edge g v ((v + 1) mod n)
  done;
  g

let prop_edge_paths_match_flow_and_are_disjoint =
  qcheck ~count:80 "edge-disjoint family has flow-many valid disjoint paths"
    QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let g = random_connected seed in
      let n = Graph.n g in
      let s = 0 and t = n - 1 in
      let flow = Connectivity.local_edge_connectivity g ~s ~t in
      let paths = Menger.edge_disjoint_paths g ~s ~t in
      List.length paths = flow
      && Menger.check_edge_disjoint paths
      && List.for_all
           (fun p ->
             List.hd p = s
             && List.nth p (List.length p - 1) = t
             &&
             let rec ok = function
               | u :: (v :: _ as rest) -> Graph.has_edge g u v && ok rest
               | [ _ ] | [] -> true
             in
             ok p)
           paths)

let prop_vertex_paths_match_kappa =
  qcheck ~count:80 "vertex-disjoint family matches local kappa" QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let g = random_connected seed in
      let n = Graph.n g in
      let s = 0 and t = n / 2 in
      if s = t then true
      else begin
        let kappa = Connectivity.local_vertex_connectivity g ~s ~t in
        let paths = Menger.vertex_disjoint_paths g ~s ~t in
        List.length paths = kappa && Menger.check_internally_disjoint ~s ~t paths
      end)

let suite =
  [
    Alcotest.test_case "edge disjoint on cycle" `Quick test_edge_disjoint_cycle;
    Alcotest.test_case "edge count matches flow" `Quick test_edge_disjoint_count_matches_flow;
    Alcotest.test_case "vertex disjoint petersen" `Quick test_vertex_disjoint_petersen;
    Alcotest.test_case "vertex disjoint adjacent" `Quick test_vertex_disjoint_adjacent;
    Alcotest.test_case "limit" `Quick test_limit;
    Alcotest.test_case "bridge" `Quick test_bridge;
    Alcotest.test_case "no path" `Quick test_no_path;
    Alcotest.test_case "same vertex rejected" `Quick test_same_vertex_rejected;
    prop_edge_paths_match_flow_and_are_disjoint;
    prop_vertex_paths_match_kappa;
  ]
