open Helpers
module Shape = Lhg_core.Shape
module Skeleton = Lhg_core.Skeleton
module Build = Lhg_core.Build
module Constraint_check = Lhg_core.Constraint_check

let build_ok = function
  | Ok b -> b
  | Error e -> Alcotest.fail (Build.error_to_string e)

let test_ktree_builds_satisfy_ktree () =
  for n = 6 to 40 do
    let b = build_ok (Build.ktree ~n ~k:3) in
    check_bool
      (Printf.sprintf "(%d,3) satisfies K-TREE" n)
      true
      (Constraint_check.satisfies_ktree b.Build.shape)
  done

let test_kdiamond_builds_satisfy_kdiamond () =
  for n = 8 to 44 do
    let b = build_ok (Build.kdiamond ~n ~k:4) in
    check_bool
      (Printf.sprintf "(%d,4) satisfies K-DIAMOND" n)
      true
      (Constraint_check.satisfies_kdiamond b.Build.shape)
  done

let test_jd_builds_satisfy_jd () =
  for n = 6 to 40 do
    match Build.jd ~strict:true ~n ~k:3 () with
    | Error _ -> ()
    | Ok b ->
        check_bool
          (Printf.sprintf "(%d,3) satisfies JD" n)
          true
          (Constraint_check.satisfies_jd ~strict:true b.Build.shape)
  done

let test_jd_shapes_also_satisfy_ktree () =
  (* every JD graph satisfies K-TREE (the containment claim of §4.4) *)
  for n = 6 to 60 do
    match Build.jd ~strict:true ~n ~k:4 () with
    | Error _ -> ()
    | Ok b ->
        check_bool
          (Printf.sprintf "JD(%d,4) also K-TREE" n)
          true
          (Constraint_check.satisfies_ktree b.Build.shape)
  done

let test_unshared_violates_ktree () =
  let s = Shape.base ~k:3 in
  Shape.mark_unshared s 1;
  check_bool "K-DIAMOND ok" true (Constraint_check.satisfies_kdiamond s);
  check_bool "K-TREE violated" false (Constraint_check.satisfies_ktree s);
  let viols = Constraint_check.check_ktree s in
  check_bool "violation names rule 2" true
    (List.exists (fun v -> v.Constraint_check.rule = "2") viols)

let test_too_many_added_violates () =
  let s = Shape.base ~k:3 in
  (* 2k-3 = 3 allowed; add 4 *)
  for _ = 1 to 4 do
    Shape.add_added_leaf s ~parent:0
  done;
  check_bool "K-TREE cap exceeded" false (Constraint_check.satisfies_ktree s);
  (* K-DIAMOND cap is k-2 = 1, so also violated *)
  check_bool "K-DIAMOND cap exceeded" false (Constraint_check.satisfies_kdiamond s)

let test_kdiamond_added_cap_tighter () =
  let s = Shape.base ~k:4 in
  (* 2 added leaves: fine for K-TREE (cap 5), violates K-DIAMOND (cap 2)? k-2=2 -> ok.
     push to 3 to exceed K-DIAMOND while staying within K-TREE *)
  for _ = 1 to 3 do
    Shape.add_added_leaf s ~parent:0
  done;
  check_bool "K-TREE fine" true (Constraint_check.satisfies_ktree s);
  check_bool "K-DIAMOND violated" false (Constraint_check.satisfies_kdiamond s)

let test_jd_rejects_added_on_root () =
  let s = Shape.base ~k:3 in
  Shape.add_added_leaf s ~parent:0;
  check_bool "K-TREE accepts root added leaf" true (Constraint_check.satisfies_ktree s);
  check_bool "JD rejects root added leaf" false (Constraint_check.satisfies_jd ~strict:false s)

let test_jd_strict_rejects_single_added () =
  let s = Skeleton.make ~k:3 ~alpha:1 in
  let host = Skeleton.last_above_leaf s in
  Shape.add_added_leaf s ~parent:host;
  check_bool "lax JD accepts one added" true (Constraint_check.satisfies_jd ~strict:false s);
  check_bool "strict JD rejects one added" false (Constraint_check.satisfies_jd ~strict:true s);
  Shape.add_added_leaf s ~parent:host;
  check_bool "strict JD accepts two added" true (Constraint_check.satisfies_jd ~strict:true s)

let test_unbalanced_violates () =
  let s = Shape.base ~k:3 in
  Shape.convert_leaf s 1;
  Shape.convert_leaf s 4;
  (* depth-2 conversion before finishing depth 1 *)
  check_bool "unbalanced rejected" false (Constraint_check.satisfies_ktree s);
  let viols = Constraint_check.check_ktree s in
  check_bool "balance rule fires" true
    (List.exists (fun v -> v.Constraint_check.rule = "3a/5a") viols)

let test_violation_printing () =
  let s = Shape.base ~k:3 in
  Shape.mark_unshared s 1;
  match Constraint_check.check_ktree s with
  | [] -> Alcotest.fail "expected violation"
  | v :: _ ->
      let str = Format.asprintf "%a" Constraint_check.pp_violation v in
      check_bool "mentions node" true (String.length str > 5)

let prop_builders_always_satisfy_their_constraint =
  qcheck ~count:80 "builders satisfy their own constraints"
    QCheck2.Gen.(pair (int_range 2 7) (int_range 0 80))
    (fun (k, extra) ->
      let n = (2 * k) + extra in
      let kt =
        match Build.ktree ~n ~k with
        | Ok b -> Constraint_check.satisfies_ktree b.Build.shape
        | Error _ -> false
      in
      let kd =
        match Build.kdiamond ~n ~k with
        | Ok b -> Constraint_check.satisfies_kdiamond b.Build.shape
        | Error _ -> false
      in
      kt && kd)

let suite =
  [
    Alcotest.test_case "ktree builds satisfy K-TREE" `Quick test_ktree_builds_satisfy_ktree;
    Alcotest.test_case "kdiamond builds satisfy K-DIAMOND" `Quick
      test_kdiamond_builds_satisfy_kdiamond;
    Alcotest.test_case "jd builds satisfy JD" `Quick test_jd_builds_satisfy_jd;
    Alcotest.test_case "jd builds satisfy K-TREE" `Quick test_jd_shapes_also_satisfy_ktree;
    Alcotest.test_case "unshared violates K-TREE" `Quick test_unshared_violates_ktree;
    Alcotest.test_case "too many added leaves" `Quick test_too_many_added_violates;
    Alcotest.test_case "K-DIAMOND tighter cap" `Quick test_kdiamond_added_cap_tighter;
    Alcotest.test_case "JD rejects root added leaf" `Quick test_jd_rejects_added_on_root;
    Alcotest.test_case "JD strict parity" `Quick test_jd_strict_rejects_single_added;
    Alcotest.test_case "unbalanced violates" `Quick test_unbalanced_violates;
    Alcotest.test_case "violation printing" `Quick test_violation_printing;
    prop_builders_always_satisfy_their_constraint;
  ]
