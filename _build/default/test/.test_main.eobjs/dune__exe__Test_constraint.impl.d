test/test_constraint.ml: Alcotest Format Helpers Lhg_core List Printf QCheck2 String
