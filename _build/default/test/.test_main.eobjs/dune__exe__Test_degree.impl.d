test/test_degree.ml: Alcotest Graph_core Helpers
