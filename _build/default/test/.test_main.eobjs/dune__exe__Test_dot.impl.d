test/test_dot.ml: Alcotest Filename Graph_core Helpers Printf String Sys
