test/test_multi.ml: Alcotest Flood Graph_core Helpers Lhg_core List
