test/test_generators.ml: Alcotest Graph_core Helpers QCheck2
