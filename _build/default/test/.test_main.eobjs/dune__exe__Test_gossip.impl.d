test/test_gossip.ml: Alcotest Array Flood Graph_core Helpers Topo
