test/test_route.ml: Alcotest Array Graph_core Helpers Lhg_core List Printf QCheck2
