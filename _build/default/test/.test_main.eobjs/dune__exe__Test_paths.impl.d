test/test_paths.ml: Alcotest Graph_core Helpers QCheck2
