test/helpers.ml: Alcotest Graph_core List QCheck2 QCheck_alcotest
