test/test_topo.ml: Alcotest Graph_core Helpers List QCheck2 Topo
