test/test_api_coverage.ml: Alcotest Flood Format Graph_core Harary Helpers Lhg_core List Netsim Overlay Printf String
