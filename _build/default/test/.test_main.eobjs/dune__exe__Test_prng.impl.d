test/test_prng.ml: Alcotest Array Fun Graph_core Helpers List
