test/test_harary.ml: Alcotest Graph_core Harary Helpers List Printf QCheck2
