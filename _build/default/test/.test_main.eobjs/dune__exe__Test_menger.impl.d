test/test_menger.ml: Alcotest Graph_core Helpers List QCheck2
