test/test_pqueue.ml: Alcotest Graph_core Helpers List QCheck2
