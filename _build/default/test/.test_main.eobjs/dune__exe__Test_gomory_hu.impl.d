test/test_gomory_hu.ml: Alcotest Graph_core Helpers Lhg_core List QCheck2
