test/test_build.ml: Alcotest Graph_core Helpers Lhg_core List Printf QCheck2
