test/test_union_find.ml: Alcotest Graph_core Helpers
