test/test_maxflow.ml: Alcotest Array Graph_core Helpers QCheck2
