test/test_incremental.ml: Alcotest Graph_core Helpers Lhg_core List Overlay Printf
