test/test_overlay.ml: Alcotest Graph_core Helpers List Overlay QCheck2
