test/test_network.ml: Alcotest Graph_core Helpers List Netsim
