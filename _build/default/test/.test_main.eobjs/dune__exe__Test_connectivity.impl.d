test/test_connectivity.ml: Alcotest Array Fun Graph_core Helpers List QCheck2
