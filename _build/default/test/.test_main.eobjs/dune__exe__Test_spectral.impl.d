test/test_spectral.ml: Alcotest Float Graph_core Helpers Lhg_core Printf Topo
