test/test_integration.ml: Alcotest Array Flood Fun Graph_core Helpers Lhg_core List Netsim Overlay Printf
