test/test_serial.ml: Alcotest Filename Graph_core Helpers List QCheck2 String Sys
