test/test_reliable.ml: Alcotest Flood Graph_core Helpers Lhg_core List Netsim
