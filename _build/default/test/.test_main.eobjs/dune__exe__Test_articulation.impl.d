test/test_articulation.ml: Alcotest Array Fun Graph_core Helpers Lhg_core List QCheck2
