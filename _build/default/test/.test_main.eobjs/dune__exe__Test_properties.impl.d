test/test_properties.ml: Array Flood Graph_core Helpers Lhg_core List Netsim Overlay QCheck2
