test/test_existence.ml: Alcotest Helpers Lhg_core Printf QCheck2
