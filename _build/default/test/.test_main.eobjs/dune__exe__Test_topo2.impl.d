test/test_topo2.ml: Alcotest Graph_core Helpers Lhg_core Printf Topo
