test/test_viz.ml: Alcotest Filename Graph_core Helpers Lhg_core Printf String Sys Unix
