test/test_components.ml: Alcotest Array Fun Graph_core Helpers List QCheck2
