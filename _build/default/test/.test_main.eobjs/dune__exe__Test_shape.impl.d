test/test_shape.ml: Alcotest Helpers Lhg_core Queue
