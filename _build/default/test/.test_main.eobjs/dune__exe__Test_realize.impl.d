test/test_realize.ml: Alcotest Graph_core Helpers Lhg_core List Printf
