test/test_verify.ml: Alcotest Format Graph_core Harary Helpers Lhg_core String
