test/test_sim.ml: Alcotest Graph_core Helpers List Netsim
