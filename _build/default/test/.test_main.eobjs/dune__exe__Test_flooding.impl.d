test/test_flooding.ml: Alcotest Array Flood Graph_core Helpers Lhg_core List Netsim QCheck2
