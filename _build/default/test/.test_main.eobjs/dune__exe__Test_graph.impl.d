test/test_graph.ml: Alcotest Graph_core Helpers List QCheck2
