test/test_sync.ml: Alcotest Flood Graph_core Harary Helpers Lhg_core List
