test/test_bfs.ml: Alcotest Array Graph_core Helpers List QCheck2
