test/test_skeleton.ml: Alcotest Graph_core Helpers Lhg_core List Printf QCheck2
