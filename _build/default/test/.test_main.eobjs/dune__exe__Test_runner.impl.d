test/test_runner.ml: Alcotest Flood Graph_core Helpers Lhg_core List
