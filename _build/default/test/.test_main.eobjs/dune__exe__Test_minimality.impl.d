test/test_minimality.ml: Alcotest Graph_core Helpers List
