test/test_reliability.ml: Alcotest Flood Graph_core Helpers Lhg_core Printf Topo
