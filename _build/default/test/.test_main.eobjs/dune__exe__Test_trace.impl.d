test/test_trace.ml: Alcotest Format Graph_core Helpers List Netsim
