test/test_pif.ml: Alcotest Array Flood Fun Graph_core Harary Helpers Lhg_core List QCheck2
