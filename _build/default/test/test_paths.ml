open Helpers
module Graph = Graph_core.Graph
module Paths = Graph_core.Paths
module Generators = Graph_core.Generators

let test_diameter_path () =
  check_int_opt "P5" (Some 4) (Paths.diameter (Generators.path_graph 5))

let test_diameter_cycle () =
  check_int_opt "C6" (Some 3) (Paths.diameter (Generators.cycle 6));
  check_int_opt "C7" (Some 3) (Paths.diameter (Generators.cycle 7))

let test_diameter_complete () =
  check_int_opt "K5" (Some 1) (Paths.diameter (Generators.complete 5))

let test_diameter_petersen () = check_int_opt "petersen" (Some 2) (Paths.diameter (petersen ()))

let test_diameter_disconnected () =
  check_int_opt "disconnected" None (Paths.diameter (Graph.of_edges ~n:3 [ (0, 1) ]))

let test_diameter_single_vertex () =
  check_int_opt "K1" (Some 0) (Paths.diameter (Graph.create ~n:1))

let test_radius_path () =
  check_int_opt "P5 radius" (Some 2) (Paths.radius (Generators.path_graph 5))

let test_radius_star () =
  check_int_opt "star radius" (Some 1) (Paths.radius (Generators.star 7));
  check_int_opt "star diameter" (Some 2) (Paths.diameter (Generators.star 7))

let test_grid_diameter () =
  check_int_opt "4x6 grid" (Some 8) (Paths.diameter (Generators.grid ~rows:4 ~cols:6))

let test_apl_complete () =
  match Paths.average_path_length (Generators.complete 6) with
  | Some apl -> Alcotest.(check (float 1e-9)) "K6 apl" 1.0 apl
  | None -> Alcotest.fail "connected"

let test_apl_path () =
  (* P3: ordered pairs distances: (0,1)=1 (0,2)=2 (1,2)=1 + symmetric -> mean 4/3 *)
  match Paths.average_path_length (Generators.path_graph 3) with
  | Some apl -> Alcotest.(check (float 1e-9)) "P3 apl" (4.0 /. 3.0) apl
  | None -> Alcotest.fail "connected"

let test_alive_mask () =
  let g = Generators.cycle 6 in
  let alive = [| true; true; true; true; true; false |] in
  (* killing one cycle vertex leaves P5 *)
  check_int_opt "masked diameter" (Some 4) (Paths.diameter ~alive g)

let test_eccentricities () =
  let e = Paths.eccentricities (Generators.path_graph 4) in
  Alcotest.(check (array (option int))) "P4" [| Some 3; Some 2; Some 2; Some 3 |] e

let test_diameter_lower_bound () =
  let g = Generators.cycle 10 in
  let lb = Paths.diameter_lower_bound g ~seeds:[ 0; 3 ] in
  check_bool "sound" true (lb <= 5);
  check_int "cycle ecc" 5 lb

let test_diameter_lower_bound_disconnected () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Paths.diameter_lower_bound: graph is disconnected") (fun () ->
      ignore (Paths.diameter_lower_bound (Graph.of_edges ~n:3 [ (0, 1) ]) ~seeds:[ 0 ]))

let prop_radius_diameter_inequality =
  qcheck "radius <= diameter <= 2*radius" QCheck2.Gen.(int_bound 1000) (fun seed ->
      let rng = Graph_core.Prng.create ~seed in
      let g = Generators.gnp rng ~n:20 ~p:0.3 in
      match (Paths.radius g, Paths.diameter g) with
      | Some r, Some d -> r <= d && d <= 2 * r
      | None, None -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "diameter path" `Quick test_diameter_path;
    Alcotest.test_case "diameter cycle" `Quick test_diameter_cycle;
    Alcotest.test_case "diameter complete" `Quick test_diameter_complete;
    Alcotest.test_case "diameter petersen" `Quick test_diameter_petersen;
    Alcotest.test_case "diameter disconnected" `Quick test_diameter_disconnected;
    Alcotest.test_case "diameter single vertex" `Quick test_diameter_single_vertex;
    Alcotest.test_case "radius path" `Quick test_radius_path;
    Alcotest.test_case "radius star" `Quick test_radius_star;
    Alcotest.test_case "grid diameter" `Quick test_grid_diameter;
    Alcotest.test_case "apl complete" `Quick test_apl_complete;
    Alcotest.test_case "apl path" `Quick test_apl_path;
    Alcotest.test_case "alive mask" `Quick test_alive_mask;
    Alcotest.test_case "eccentricities" `Quick test_eccentricities;
    Alcotest.test_case "diameter lower bound" `Quick test_diameter_lower_bound;
    Alcotest.test_case "lower bound disconnected" `Quick test_diameter_lower_bound_disconnected;
    prop_radius_diameter_inequality;
  ]
