open Helpers
module Generators = Graph_core.Generators
module Spectral = Graph_core.Spectral

let close ?(tol = 2e-3) name expected actual =
  check_bool
    (Printf.sprintf "%s: expected %.4f got %.4f" name expected actual)
    true
    (abs_float (expected -. actual) < tol)

let test_complete_graph () =
  (* normalised spectrum of K_n: 1 and -1/(n-1) *)
  close "K6" (-1.0 /. 5.0) (Spectral.second_eigenvalue (Generators.complete 6))

let test_cycle () =
  (* C_n: eigenvalues cos(2 pi j / n); second largest at j=1 *)
  let n = 12 in
  close "C12" (cos (2.0 *. Float.pi /. float_of_int n))
    (Spectral.second_eigenvalue (Generators.cycle n))

let test_petersen () =
  (* adjacency spectrum 3, 1 (x5), -2 (x4); normalised second = 1/3 *)
  close "petersen" (1.0 /. 3.0) (Spectral.second_eigenvalue (petersen ()))

let test_hypercube () =
  (* Q_4: adjacency eigenvalues 4, 2, ...; normalised second = 1/2 *)
  close "Q4" 0.5 (Spectral.second_eigenvalue (Topo.Hypercube.make ~dim:4))

let test_complete_bipartite () =
  (* K_{a,b} normalised spectrum: 1, 0 (multiple), -1 *)
  close "K(3,4)" 0.0 (Spectral.second_eigenvalue (Generators.complete_bipartite 3 4))

let test_gap_ordering () =
  (* ring gap ~ (2 pi^2)/n^2 -> tiny; expander gap healthy; LHG in between *)
  let n = 128 in
  let ring = Spectral.spectral_gap (Generators.cycle n) in
  let expander =
    Spectral.spectral_gap (Topo.Expander.random_regular (rng ()) ~n ~degree:4)
  in
  let lhg = Spectral.spectral_gap (Lhg_core.Build.kdiamond_exn ~n:(n + 2) ~k:4).Lhg_core.Build.graph
  in
  check_bool "ring nearly gapless" true (ring < 0.02);
  check_bool "expander gap healthy" true (expander > 0.1);
  check_bool "lhg beats ring clearly" true (lhg > 5.0 *. ring)

let test_invalid_inputs () =
  Alcotest.check_raises "isolated vertex"
    (Invalid_argument "Spectral.second_eigenvalue: isolated vertex") (fun () ->
      ignore (Spectral.second_eigenvalue (Graph_core.Graph.create ~n:3)));
  Alcotest.check_raises "too small"
    (Invalid_argument "Spectral.second_eigenvalue: need at least 2 vertices") (fun () ->
      ignore (Spectral.second_eigenvalue (Graph_core.Graph.create ~n:1)))

let test_gap_clamped () =
  let gap = Spectral.spectral_gap (Generators.complete 5) in
  check_bool "in [0,1]" true (gap >= 0.0 && gap <= 1.0)

let suite =
  [
    Alcotest.test_case "complete graph" `Quick test_complete_graph;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "petersen" `Quick test_petersen;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
    Alcotest.test_case "gap ordering" `Quick test_gap_ordering;
    Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
    Alcotest.test_case "gap clamped" `Quick test_gap_clamped;
  ]
