open Helpers
module Graph = Graph_core.Graph
module Connectivity = Graph_core.Connectivity
module Components = Graph_core.Components
module Generators = Graph_core.Generators
module Prng = Graph_core.Prng

(* Exhaustive reference implementations, usable for small n / m. *)

let subsets_of_size xs size =
  let rec go xs size =
    if size = 0 then [ [] ]
    else
      match xs with
      | [] -> []
      | x :: rest -> List.map (fun s -> x :: s) (go rest (size - 1)) @ go rest size
  in
  go xs size

let brute_vertex_connectivity g =
  let n = Graph.n g in
  if n <= 1 then 0
  else begin
    let vertices = List.init n Fun.id in
    let rec try_size size =
      if size >= n - 1 then n - 1
      else begin
        let disconnects cut =
          let alive = Array.make n true in
          List.iter (fun v -> alive.(v) <- false) cut;
          not (Components.is_connected ~alive g)
        in
        if List.exists disconnects (subsets_of_size vertices size) then size else try_size (size + 1)
      end
    in
    try_size 0
  end

let brute_edge_connectivity g =
  let n = Graph.n g in
  if n <= 1 then 0
  else begin
    let edges = Graph.edges g in
    let rec try_size size =
      if size > List.length edges then List.length edges
      else begin
        let disconnects cut =
          let g' = Graph.copy g in
          List.iter (fun (u, v) -> Graph.remove_edge g' u v) cut;
          not (Components.is_connected g')
        in
        if List.exists disconnects (subsets_of_size edges size) then size else try_size (size + 1)
      end
    in
    try_size 0
  end

let test_known_vertex_connectivity () =
  List.iter
    (fun (name, g, expected) ->
      check_int name expected (Connectivity.vertex_connectivity g))
    [
      ("path", Generators.path_graph 6, 1);
      ("cycle", Generators.cycle 7, 2);
      ("complete K5", Generators.complete 5, 4);
      ("K1", Graph.create ~n:1, 0);
      ("K2", Generators.complete 2, 1);
      ("star", Generators.star 6, 1);
      ("K(3,4)", Generators.complete_bipartite 3 4, 3);
      ("petersen", petersen (), 3);
      ("disconnected", Graph.of_edges ~n:4 [ (0, 1); (2, 3) ], 0);
      ("barbell (cut vertex)", barbell (), 1);
    ]

let test_known_edge_connectivity () =
  List.iter
    (fun (name, g, expected) -> check_int name expected (Connectivity.edge_connectivity g))
    [
      ("path", Generators.path_graph 6, 1);
      ("cycle", Generators.cycle 7, 2);
      ("complete K5", Generators.complete 5, 4);
      ("K(3,4)", Generators.complete_bipartite 3 4, 3);
      ("petersen", petersen (), 3);
      ("disconnected", Graph.of_edges ~n:4 [ (0, 1); (2, 3) ], 0);
      ("barbell (bridge)", barbell (), 1);
    ]

let test_local_vertex_connectivity () =
  let g = petersen () in
  (* 3-regular and vertex-transitive: every pair has exactly 3 disjoint paths *)
  check_int "non-adjacent pair" 3 (Connectivity.local_vertex_connectivity g ~s:0 ~t:7);
  check_int "adjacent pair" 3 (Connectivity.local_vertex_connectivity g ~s:0 ~t:1)

let test_local_edge_connectivity () =
  let g = barbell () in
  check_int "across bridge" 1 (Connectivity.local_edge_connectivity g ~s:0 ~t:5);
  check_int "inside triangle" 2 (Connectivity.local_edge_connectivity g ~s:0 ~t:1)

let test_local_limit () =
  let g = Generators.complete 8 in
  let f = Connectivity.local_edge_connectivity ~limit:3 g ~s:0 ~t:7 in
  check_int "capped" 3 f

let test_decision_forms () =
  let g = petersen () in
  check_bool "3-vertex-connected" true (Connectivity.is_k_vertex_connected g ~k:3);
  check_bool "not 4-vertex-connected" false (Connectivity.is_k_vertex_connected g ~k:4);
  check_bool "3-edge-connected" true (Connectivity.is_k_edge_connected g ~k:3);
  check_bool "not 4-edge-connected" false (Connectivity.is_k_edge_connected g ~k:4)

let test_decision_degenerate () =
  let g = Generators.complete 4 in
  check_bool "k=0 true" true (Connectivity.is_k_vertex_connected g ~k:0);
  check_bool "k=n-1 complete" true (Connectivity.is_k_vertex_connected g ~k:3);
  check_bool "k=n impossible" false (Connectivity.is_k_vertex_connected g ~k:4);
  check_bool "edge k=0" true (Connectivity.is_k_edge_connected g ~k:0)

let test_whitney_inequality () =
  (* kappa <= lambda <= delta on assorted fixtures *)
  List.iter
    (fun g ->
      let kappa = Connectivity.vertex_connectivity g in
      let lambda = Connectivity.edge_connectivity g in
      let delta =
        List.fold_left min max_int (List.init (Graph.n g) (fun v -> Graph.degree g v))
      in
      check_bool "kappa<=lambda" true (kappa <= lambda);
      check_bool "lambda<=delta" true (lambda <= delta))
    [ petersen (); barbell (); house (); Generators.cycle 9; Generators.complete_bipartite 2 5 ]

let random_graph seed =
  let rngv = Prng.create ~seed in
  let n = 5 + Prng.int rngv 4 in
  let p = 0.25 +. Prng.float rngv 0.5 in
  Generators.gnp rngv ~n ~p

let prop_vertex_connectivity_matches_brute =
  qcheck ~count:60 "vertex connectivity = brute force" QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let g = random_graph seed in
      Connectivity.vertex_connectivity g = brute_vertex_connectivity g)

let prop_edge_connectivity_matches_brute =
  qcheck ~count:40 "edge connectivity = brute force" QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 5 + Prng.int rngv 3 in
      let g = Generators.gnp rngv ~n ~p:0.4 in
      Connectivity.edge_connectivity g = brute_edge_connectivity g)

let prop_decision_agrees_with_exact =
  qcheck ~count:60 "is_k_*_connected agrees with exact values" QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let g = random_graph seed in
      let kappa = Connectivity.vertex_connectivity g in
      let lambda = Connectivity.edge_connectivity g in
      let ok = ref true in
      for k = 0 to Graph.n g do
        if Connectivity.is_k_vertex_connected g ~k <> (kappa >= k && (k = 0 || Graph.n g >= k + 1))
        then ok := false;
        if k > 0 && Connectivity.is_k_edge_connected g ~k <> (lambda >= k) then ok := false
      done;
      !ok)


let test_min_edge_cut_witness () =
  let g = barbell () in
  Alcotest.(check (list (pair int int))) "the bridge" [ (2, 3) ] (Connectivity.min_edge_cut g);
  let g = Generators.cycle 6 in
  let cut = Connectivity.min_edge_cut g in
  check_int "two edges" 2 (List.length cut);
  let g' = Graph.copy g in
  List.iter (fun (u, v) -> Graph.remove_edge g' u v) cut;
  check_bool "removal disconnects" false (Components.is_connected g')

let test_min_edge_cut_degenerate () =
  Alcotest.(check (list (pair int int))) "disconnected" []
    (Connectivity.min_edge_cut (Graph.of_edges ~n:4 [ (0, 1) ]));
  Alcotest.(check (list (pair int int))) "single vertex" []
    (Connectivity.min_edge_cut (Graph.create ~n:1))

let test_min_vertex_cut_witness () =
  let g = barbell () in
  let cut = Connectivity.min_vertex_cut g in
  check_int "one vertex" 1 (List.length cut);
  check_bool "a bridge endpoint" true (List.for_all (fun v -> v = 2 || v = 3) cut);
  let g = petersen () in
  let cut = Connectivity.min_vertex_cut g in
  check_int "kappa vertices" 3 (List.length cut);
  let alive = Array.make 10 true in
  List.iter (fun v -> alive.(v) <- false) cut;
  check_bool "removal disconnects" false (Components.is_connected ~alive g)

let test_min_vertex_cut_complete () =
  Alcotest.(check (list int)) "complete graph has none" []
    (Connectivity.min_vertex_cut (Generators.complete 5))

let prop_min_cuts_are_real_cuts =
  qcheck ~count:50 "extracted cuts disconnect and have minimum size"
    QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let g = random_graph seed in
      let kappa = Connectivity.vertex_connectivity g in
      let lambda = Connectivity.edge_connectivity g in
      let vc_ok =
        let cut = Connectivity.min_vertex_cut g in
        if kappa = 0 || kappa = Graph.n g - 1 then cut = []
        else begin
          let alive = Array.make (Graph.n g) true in
          List.iter (fun v -> alive.(v) <- false) cut;
          List.length cut = kappa && not (Components.is_connected ~alive g)
        end
      in
      let ec_ok =
        let cut = Connectivity.min_edge_cut g in
        if lambda = 0 then cut = []
        else begin
          let g2 = Graph.copy g in
          List.iter (fun (u, v) -> Graph.remove_edge g2 u v) cut;
          List.length cut = lambda && not (Components.is_connected g2)
        end
      in
      vc_ok && ec_ok)

let suite =
  [
    Alcotest.test_case "known vertex connectivity" `Quick test_known_vertex_connectivity;
    Alcotest.test_case "known edge connectivity" `Quick test_known_edge_connectivity;
    Alcotest.test_case "local vertex connectivity" `Quick test_local_vertex_connectivity;
    Alcotest.test_case "local edge connectivity" `Quick test_local_edge_connectivity;
    Alcotest.test_case "local limit" `Quick test_local_limit;
    Alcotest.test_case "decision forms" `Quick test_decision_forms;
    Alcotest.test_case "decision degenerate" `Quick test_decision_degenerate;
    Alcotest.test_case "whitney inequality" `Quick test_whitney_inequality;
    Alcotest.test_case "min edge cut witness" `Quick test_min_edge_cut_witness;
    Alcotest.test_case "min edge cut degenerate" `Quick test_min_edge_cut_degenerate;
    Alcotest.test_case "min vertex cut witness" `Quick test_min_vertex_cut_witness;
    Alcotest.test_case "min vertex cut complete" `Quick test_min_vertex_cut_complete;
    prop_min_cuts_are_real_cuts;
    prop_vertex_connectivity_matches_brute;
    prop_edge_connectivity_matches_brute;
    prop_decision_agrees_with_exact;
  ]
