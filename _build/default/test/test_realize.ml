open Helpers
module Graph = Graph_core.Graph
module Shape = Lhg_core.Shape
module Skeleton = Lhg_core.Skeleton
module Realize = Lhg_core.Realize

let test_base_realization_is_k33_like () =
  (* k=3 base: 3 root copies, 3 shared leaves, every root adjacent to
     every leaf: the complete bipartite K(3,3). *)
  let g, layout = Realize.realize (Shape.base ~k:3) in
  check_int "n" 6 (Graph.n g);
  check_int "m" 9 (Graph.m g);
  check_int "copies" 3 layout.Realize.copies;
  for copy = 0 to 2 do
    for leaf = 1 to 3 do
      let r = Realize.vertex_of layout ~node:0 ~copy in
      let l = Realize.vertex_of layout ~node:leaf ~copy:0 in
      check_bool "root-leaf edge" true (Graph.has_edge g r l)
    done
  done

let test_vertex_count_matches_shape () =
  let s = Skeleton.make ~k:4 ~alpha:3 in
  Shape.add_added_leaf s ~parent:(Lhg_core.Skeleton.last_above_leaf s);
  let g, _ = Realize.realize s in
  check_int "counts agree" (Shape.vertex_count s) (Graph.n g)

let test_shared_leaf_degree () =
  let g, layout = Realize.realize (Shape.base ~k:5) in
  let leaf_vertex = Realize.vertex_of layout ~node:1 ~copy:0 in
  check_int "shared leaf sees k parents" 5 (Graph.degree g leaf_vertex)

let test_unshared_leaf_clique () =
  let s = Shape.base ~k:3 in
  Shape.mark_unshared s 1;
  let g, layout = Realize.realize s in
  check_int "n = 3 roots + 3 clique + 2 shared" 8 (Graph.n g);
  let m0 = Realize.vertex_of layout ~node:1 ~copy:0 in
  let m1 = Realize.vertex_of layout ~node:1 ~copy:1 in
  let m2 = Realize.vertex_of layout ~node:1 ~copy:2 in
  check_bool "clique 01" true (Graph.has_edge g m0 m1);
  check_bool "clique 02" true (Graph.has_edge g m0 m2);
  check_bool "clique 12" true (Graph.has_edge g m1 m2);
  (* each member connects to exactly one tree copy *)
  check_int "member degree k" 3 (Graph.degree g m0);
  let r0 = Realize.vertex_of layout ~node:0 ~copy:0 in
  let r1 = Realize.vertex_of layout ~node:0 ~copy:1 in
  check_bool "member 0 to root copy 0" true (Graph.has_edge g m0 r0);
  check_bool "member 0 not to root copy 1" false (Graph.has_edge g m0 r1)

let test_copies_are_disjoint_trees () =
  let s = Skeleton.make ~k:3 ~alpha:1 in
  let g, layout = Realize.realize s in
  (* internal node copies in different tree copies are never adjacent *)
  let i0 = Realize.vertex_of layout ~node:1 ~copy:0 in
  let i1 = Realize.vertex_of layout ~node:1 ~copy:1 in
  check_bool "no cross-copy edge" false (Graph.has_edge g i0 i1);
  let r0 = Realize.vertex_of layout ~node:0 ~copy:0 in
  check_bool "copy-0 root to copy-0 internal" true (Graph.has_edge g r0 i0);
  check_bool "copy-0 root not to copy-1 internal" false (Graph.has_edge g r0 i1)

let test_inverse_lookup () =
  let s = Skeleton.make ~k:4 ~alpha:2 in
  Shape.mark_unshared s (List.hd (List.rev (Shape.leaves s)));
  let g, layout = Realize.realize s in
  for v = 0 to Graph.n g - 1 do
    let node, copy = Realize.shape_node_of_vertex layout ~n_vertices:(Graph.n g) v in
    check_int "roundtrip" v (Realize.vertex_of layout ~node ~copy)
  done

let test_degrees_all_k_when_no_added () =
  (* pure skeleton realisations are k-regular *)
  List.iter
    (fun (k, alpha) ->
      let g, _ = Realize.realize (Skeleton.make ~k ~alpha) in
      check_bool
        (Printf.sprintf "k=%d alpha=%d regular" k alpha)
        true
        (Graph_core.Degree.is_k_regular g ~k))
    [ (2, 0); (3, 0); (3, 3); (4, 5); (5, 2); (6, 7) ]

let suite =
  [
    Alcotest.test_case "base is K(3,3)" `Quick test_base_realization_is_k33_like;
    Alcotest.test_case "vertex count matches" `Quick test_vertex_count_matches_shape;
    Alcotest.test_case "shared leaf degree" `Quick test_shared_leaf_degree;
    Alcotest.test_case "unshared leaf clique" `Quick test_unshared_leaf_clique;
    Alcotest.test_case "copies disjoint" `Quick test_copies_are_disjoint_trees;
    Alcotest.test_case "inverse lookup" `Quick test_inverse_lookup;
    Alcotest.test_case "skeletons are regular" `Quick test_degrees_all_k_when_no_added;
  ]
