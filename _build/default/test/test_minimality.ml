open Helpers
module Graph = Graph_core.Graph
module Minimality = Graph_core.Minimality
module Generators = Graph_core.Generators

let test_cycle_minimal_k2 () =
  check_bool "C8 minimal at k=2" true (Minimality.is_link_minimal (Generators.cycle 8) ~k:2)

let test_cycle_plus_chord_not_minimal () =
  let g = Generators.cycle 8 in
  Graph.add_edge g 0 4;
  check_bool "chord breaks minimality" false (Minimality.is_link_minimal g ~k:2);
  let bad = Minimality.non_critical_edges g ~k:2 in
  check_bool "chord among non-critical" true (List.mem (0, 4) bad)

let test_complete_minimal () =
  (* K5 is 4-connected and removing any edge drops kappa(u,v) to 3 *)
  check_bool "K5 minimal at k=4" true (Minimality.is_link_minimal (Generators.complete 5) ~k:4)

let test_tree_minimal_k1 () =
  check_bool "P6 minimal at k=1" true
    (Minimality.is_link_minimal (Generators.path_graph 6) ~k:1)

let test_petersen_minimal () =
  check_bool "petersen minimal at k=3" true (Minimality.is_link_minimal (petersen ()) ~k:3)

let test_edge_is_critical_specific () =
  let g = Generators.cycle 8 in
  Graph.add_edge g 0 4;
  check_bool "cycle edge critical" true (Minimality.edge_is_critical g ~k:2 0 1);
  check_bool "chord not critical" false (Minimality.edge_is_critical g ~k:2 0 4)

let test_edge_absent_rejected () =
  let g = Generators.cycle 5 in
  Alcotest.check_raises "absent edge" (Invalid_argument "Minimality.edge_is_critical: edge absent")
    (fun () -> ignore (Minimality.edge_is_critical g ~k:2 0 2))

let test_non_critical_empty_on_minimal () =
  Alcotest.(check (list (pair int int))) "no slack edges" []
    (Minimality.non_critical_edges (Generators.cycle 6) ~k:2)

let suite =
  [
    Alcotest.test_case "cycle minimal k=2" `Quick test_cycle_minimal_k2;
    Alcotest.test_case "chord not minimal" `Quick test_cycle_plus_chord_not_minimal;
    Alcotest.test_case "complete minimal" `Quick test_complete_minimal;
    Alcotest.test_case "tree minimal k=1" `Quick test_tree_minimal_k1;
    Alcotest.test_case "petersen minimal" `Quick test_petersen_minimal;
    Alcotest.test_case "edge_is_critical" `Quick test_edge_is_critical_specific;
    Alcotest.test_case "absent edge rejected" `Quick test_edge_absent_rejected;
    Alcotest.test_case "non_critical empty" `Quick test_non_critical_empty_on_minimal;
  ]
