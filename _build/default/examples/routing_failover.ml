(* Table-free point-to-point routing on an LHG with failover.

   LHGs are k pasted tree copies, so each vertex owns k structured routes
   to any destination (one per copy) computable from the witness alone —
   no routing tables, no flooding. When vertices fail, senders fail over
   to the next copy; only after all k structured routes are blocked does
   a (rare) BFS fallback run.

   Run with: dune exec examples/routing_failover.exe *)

module Graph = Graph_core.Graph
module Build = Lhg_core.Build
module Route = Lhg_core.Route
module Prng = Graph_core.Prng

let n = 122
let k = 4

let () =
  let b = Build.kdiamond_exn ~n ~k in
  let g = b.Build.graph in
  Printf.printf "LHG(%d,%d): height %d, structured route bound %d vertices (diameter %s)\n\n" n k
    (Route.height b) (Route.max_route_length b)
    (match Graph_core.Paths.diameter g with Some d -> string_of_int d | None -> "inf");

  (* 1. The k alternative routes between two far-apart vertices. *)
  let src = 0 and dst = n - 1 in
  Printf.printf "routes %d -> %d:\n" src dst;
  List.iteri
    (fun i p ->
      Printf.printf "  copy %d (%2d hops): %s\n" i
        (List.length p - 1)
        (String.concat " " (List.map string_of_int p)))
    (Route.all_routes b ~src ~dst);

  (* 2. Failover sweep: crash growing random vertex sets and route
     through the wreckage. With <= k-1 = 3 failures delivery is
     guaranteed; we also count how often the structured routes sufficed
     without the BFS fallback. *)
  let rng = Prng.create ~seed:99 in
  Printf.printf "\n%9s %10s %12s %14s\n" "failures" "routed" "structured" "mean hops";
  List.iter
    (fun failures ->
      let trials = 300 in
      let routed = ref 0 and structured = ref 0 and hops = ref 0 in
      for _ = 1 to trials do
        let avoid = Array.make n false in
        let src = Prng.int rng n in
        let dst = ref (Prng.int rng n) in
        while !dst = src do
          dst := Prng.int rng n
        done;
        let placed = ref 0 in
        while !placed < failures do
          let v = Prng.int rng n in
          if v <> src && v <> !dst && not avoid.(v) then begin
            avoid.(v) <- true;
            incr placed
          end
        done;
        let structured_ok =
          List.exists
            (fun p -> List.for_all (fun v -> not avoid.(v)) p)
            (Route.all_routes b ~src ~dst:!dst)
        in
        if structured_ok then incr structured;
        match Route.route ~avoid b ~src ~dst:!dst with
        | Some p ->
            incr routed;
            hops := !hops + List.length p - 1
        | None -> ()
      done;
      Printf.printf "%9d %9.1f%% %11.1f%% %14.2f%s\n" failures
        (100.0 *. float_of_int !routed /. 300.0)
        (100.0 *. float_of_int !structured /. 300.0)
        (float_of_int !hops /. float_of_int (max 1 !routed))
        (if failures = k - 1 then "   <- guaranteed up to here" else ""))
    [ 0; 1; 2; 3; 6; 12; 24 ];

  print_endline "\nrouted: any path found (structured or BFS fallback);";
  print_endline "structured: one of the k witness routes already avoided every failure."
