examples/live_overlay.ml: Flood Graph_core Lhg_core Overlay Printf
