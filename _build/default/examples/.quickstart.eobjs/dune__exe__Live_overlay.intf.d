examples/live_overlay.mli:
