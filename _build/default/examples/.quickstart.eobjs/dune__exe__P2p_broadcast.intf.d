examples/p2p_broadcast.mli:
