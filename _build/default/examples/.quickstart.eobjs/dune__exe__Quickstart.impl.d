examples/quickstart.ml: Flood Format Graph_core Harary Lhg_core Printf
