examples/p2p_broadcast.ml: Flood Graph_core Harary Lhg_core List Netsim Printf Topo
