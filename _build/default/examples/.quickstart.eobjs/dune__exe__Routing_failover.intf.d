examples/routing_failover.mli:
