examples/failure_resilience.ml: Flood Graph_core Lhg_core Printf Topo
