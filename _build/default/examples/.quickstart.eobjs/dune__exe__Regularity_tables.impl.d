examples/regularity_tables.ml: Graph_core Lhg_core List Printf String
