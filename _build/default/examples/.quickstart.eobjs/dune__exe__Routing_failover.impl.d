examples/routing_failover.ml: Array Graph_core Lhg_core List Printf String
