examples/quickstart.mli:
