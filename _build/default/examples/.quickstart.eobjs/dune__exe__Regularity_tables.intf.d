examples/regularity_tables.mli:
