(* Explore the existence and regularity landscape of LHG constructions —
   the theory side of the library. Prints, for k = 3..6, which network
   sizes admit an LHG under each rule-set and which of those are
   k-regular (minimum-edge).

   Run with: dune exec examples/regularity_tables.exe *)

module E = Lhg_core.Existence
module R = Lhg_core.Regularity
module B = Lhg_core.Build

let () =
  let span = 24 in
  List.iter
    (fun k ->
      Printf.printf "k = %d (n shown from %d to %d)\n" k (2 * k) ((2 * k) + span);
      Printf.printf "  %-14s" "n:";
      for n = 2 * k to (2 * k) + span do
        Printf.printf "%3d" n
      done;
      print_newline ();
      let row name f =
        Printf.printf "  %-14s" name;
        for n = 2 * k to (2 * k) + span do
          Printf.printf "%3s" (if f n then "+" else ".")
        done;
        print_newline ()
      in
      row "EX jd" (fun n -> E.ex_jd ~n ~k ());
      row "EX ktree" (fun n -> E.ex_ktree ~n ~k);
      row "EX kdiamond" (fun n -> E.ex_kdiamond ~n ~k);
      row "REG ktree" (fun n -> R.reg_ktree ~n ~k);
      row "REG kdiamond" (fun n -> R.reg_kdiamond ~n ~k);
      (* cross-check the REG rows constructively *)
      for n = 2 * k to (2 * k) + span do
        (match B.ktree ~n ~k with
        | Ok b ->
            assert (Graph_core.Degree.is_k_regular b.B.graph ~k = R.reg_ktree ~n ~k)
        | Error _ -> assert false);
        match B.kdiamond ~n ~k with
        | Ok b -> assert (Graph_core.Degree.is_k_regular b.B.graph ~k = R.reg_kdiamond ~n ~k)
        | Error _ -> assert false
      done;
      print_newline ())
    [ 3; 4; 5; 6 ];
  print_endline "legend: + = constructible / k-regular, . = not";
  print_endline "";
  print_endline "Note how REG kdiamond is twice as dense as REG ktree (Theorem 7),";
  print_endline "and how EX jd leaves gaps that K-TREE fills (Theorem 2).";
  (* Theorem 7 witnesses: k-regular K-DIAMOND graphs whose size K-TREE
     cannot make regular *)
  let k = 4 in
  let witnesses =
    List.filter (fun n -> R.kdiamond_only ~n ~k) (R.regular_sizes_kdiamond ~k ~max_n:60)
  in
  Printf.printf "\nk=4 sizes where only K-DIAMOND yields a 4-regular LHG: %s\n"
    (String.concat ", " (List.map string_of_int witnesses))
