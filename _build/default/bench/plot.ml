(* Minimal ASCII chart renderer so the diameter/latency experiments read
   as figures, not just tables. One row per series; log-x sweep assumed;
   y rendered on a linear scale with per-chart normalisation. *)

let render ~title ~x_label ~xs ~series =
  let width = 44 and height = 12 in
  let all_ys = List.concat_map snd series in
  let y_max = List.fold_left max 1.0 all_ys in
  let grid = Array.make_matrix height width ' ' in
  let x_count = List.length xs in
  let col i = if x_count <= 1 then 0 else i * (width - 1) / (x_count - 1) in
  let row y =
    let r = int_of_float (y /. y_max *. float_of_int (height - 1)) in
    height - 1 - min (height - 1) (max 0 r)
  in
  List.iteri
    (fun si (_, ys) ->
      let mark = Char.chr (Char.code 'a' + si) in
      List.iteri (fun i y -> grid.(row y).(col i) <- mark) ys)
    series;
  Printf.printf "%s  (y up to %.0f)\n" title y_max;
  Array.iter
    (fun line ->
      print_string "  |";
      Array.iter print_char line;
      print_newline ())
    grid;
  Printf.printf "  +%s\n" (String.make width '-');
  Printf.printf "   %s: %s .. %s\n" x_label
    (string_of_int (List.hd xs))
    (string_of_int (List.nth xs (x_count - 1)));
  List.iteri
    (fun si (name, _) -> Printf.printf "   %c = %s\n" (Char.chr (Char.code 'a' + si)) name)
    series
