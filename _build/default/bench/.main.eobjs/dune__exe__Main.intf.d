bench/main.mli:
