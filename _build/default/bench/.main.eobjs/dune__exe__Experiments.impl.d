bench/experiments.ml: Array Float Flood Fun Graph_core Harary Lhg_core List Overlay Plot Printf String Sys Topo
