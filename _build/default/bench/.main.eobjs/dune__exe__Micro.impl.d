bench/micro.ml: Analyze Bechamel Benchmark Flood Graph_core Harary Hashtbl Instance Lazy Lhg_core List Measure Printf Staged Test Time Toolkit
