bench/plot.ml: Array Char List Printf String
