(* Benchmark/experiment entry point.

   With no arguments: run every experiment (F1-F5, T1-T5) and the
   bechamel micro-suite. With arguments: run only the named ones,
   e.g. `dune exec bench/main.exe -- f1 t3 bechamel`. *)

let usage () =
  Printf.printf "usage: main.exe [%s|bechamel]...\n"
    (String.concat "|" (List.map fst Experiments.all))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) Experiments.all;
      Micro.run ()
  | [ "--help" ] | [ "-h" ] -> usage ()
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt id Experiments.all with
          | Some f -> f ()
          | None ->
              if id = "bechamel" then Micro.run ()
              else begin
                Printf.printf "unknown experiment %S\n" id;
                usage ();
                exit 1
              end)
        ids
