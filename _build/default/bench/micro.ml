(* B1: bechamel micro-benchmarks — construction and verification cost.
   One Test.make per operation; results printed as ns/run estimates. *)

open Bechamel
open Toolkit

let graph_1k = lazy ((Lhg_core.Build.kdiamond_exn ~n:1026 ~k:4).Lhg_core.Build.graph)

let graph_256 = lazy ((Lhg_core.Build.kdiamond_exn ~n:258 ~k:4).Lhg_core.Build.graph)

let tests =
  Test.make_grouped ~name:"lhg" ~fmt:"%s %s"
    [
      Test.make ~name:"build ktree n=1024 k=4" (Staged.stage (fun () ->
          ignore (Lhg_core.Build.ktree_exn ~n:1024 ~k:4)));
      Test.make ~name:"build kdiamond n=1026 k=4" (Staged.stage (fun () ->
          ignore (Lhg_core.Build.kdiamond_exn ~n:1026 ~k:4)));
      Test.make ~name:"build harary n=1024 k=4" (Staged.stage (fun () ->
          ignore (Harary.make ~k:4 ~n:1024)));
      Test.make ~name:"bfs n=1026" (Staged.stage (fun () ->
          ignore (Graph_core.Bfs.distances (Lazy.force graph_1k) ~src:0)));
      Test.make ~name:"sync flood n=1026" (Staged.stage (fun () ->
          ignore (Flood.Sync.flood (Lazy.force graph_1k) ~source:0)));
      Test.make ~name:"is_4_connected n=258" (Staged.stage (fun () ->
          ignore (Graph_core.Connectivity.is_k_vertex_connected (Lazy.force graph_256) ~k:4)));
      Test.make ~name:"event flood n=258" (Staged.stage (fun () ->
          ignore (Flood.Flooding.run ~graph:(Lazy.force graph_256) ~source:0 ())));
    ]

let run () =
  print_endline "\n=== B1  micro-benchmarks (bechamel, monotonic clock) ===";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
          let value, unit_ =
            if est > 1e9 then (est /. 1e9, "s")
            else if est > 1e6 then (est /. 1e6, "ms")
            else if est > 1e3 then (est /. 1e3, "us")
            else (est, "ns")
          in
          Printf.printf "%-38s %10.2f %s/run\n" name value unit_
      | Some [] | None -> Printf.printf "%-38s (no estimate)\n" name)
    (List.sort compare rows)
