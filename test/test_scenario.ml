(* Scenario: churn under load behind one record.

   The load-bearing claims, per ISSUE 10: validation is the single
   gate with the CLI's wording, [lower] turns committed controller
   epochs into a Reconfig timeline the driver accepts (prefix
   join/leave ranges, interval-spaced commits, union snapshot), a run
   applies every epoch while the stream sustains delivery, and the
   lhg-scenario/1 document is byte-identical across event engines and
   pool sizes. *)

open Helpers
module Spec = Scenario.Spec
module Controller = Overlay.Controller
module Workload = Traffic.Workload
module Reconfig = Traffic.Reconfig
module Driver = Traffic.Driver

let check_string = Alcotest.(check string)

(* a small but real churn-under-load scenario: trees dissemination,
   bounded links, two priority bands, a dozen controller steps *)
let small ?(engine = Netsim.Sim.Calendar) ?(jobs = 1) () =
  let workload =
    Workload.default
    |> Workload.with_source_count 2
    |> Workload.with_chunks_per_source 30
    |> Workload.with_rate 0.5
    |> Workload.with_dissemination Workload.Trees
  in
  {
    Scenario.spec =
      { Spec.default with Spec.topology = "kdiamond"; n = 24; k = 4; seed = 11; engine; jobs };
    traffic =
      {
        Scenario.default_traffic with
        Scenario.workload;
        capacity = Some 2.0;
        bands = 2;
        min_delivery = 0.9;
      };
    controller = { Scenario.default_controller with Scenario.steps = 12; batch = 3 };
    epoch_interval = 30.0;
  }

let test_validate_wording () =
  let t = small () in
  let expect msg t' =
    match Scenario.validate t' with
    | Ok () -> Alcotest.failf "expected %S" msg
    | Error e -> check_string msg msg e
  in
  (match Scenario.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "small scenario should validate: %s" e);
  expect "scenario supports kinds ktree, kdiamond, jd, harary"
    { t with Scenario.spec = { t.Scenario.spec with Spec.topology = "cycle"; k = 2 } };
  expect "--bands must be between 1 and 4"
    { t with Scenario.traffic = { t.Scenario.traffic with Scenario.bands = 5 } };
  expect "--epoch-interval must be a positive finite time" { t with Scenario.epoch_interval = 0.0 };
  expect "--batch must be >= 1"
    { t with Scenario.controller = { t.Scenario.controller with Scenario.batch = 0 } };
  expect "--steps must be >= 0"
    { t with Scenario.controller = { t.Scenario.controller with Scenario.steps = -1 } }

(* [lower] invariants against a real pre-played controller trace *)
let test_lower () =
  let family = Option.get (Scenario.family_of_topology "kdiamond") in
  let ctrl =
    match Controller.create ~verify:Controller.Cached ~family ~k:4 ~n:24 () with
    | Ok c -> c
    | Error e -> Alcotest.failf "controller: %s" (Overlay.Error.to_string e)
  in
  let trace = Controller.random_trace ~seed:11 ~family ~k:4 ~n0:24 ~steps:12 () in
  let epochs =
    match Controller.run ~batch:3 ctrl trace with
    | Ok e -> e
    | Error e -> Alcotest.failf "run: %s" (Overlay.Error.to_string e)
  in
  let base = Controller.base_graph ctrl in
  let union_g, rc = Scenario.lower ~epoch_interval:30.0 ~tree_count:(Some 2) ~base epochs in
  check_int "union graph size" rc.Reconfig.union_n (Graph_core.Graph.n union_g);
  check_int "member0 length" rc.Reconfig.union_n (Array.length rc.Reconfig.member0);
  check_bool "member0 is the base prefix" true
    (Array.for_all Fun.id (Array.sub rc.Reconfig.member0 0 (Graph_core.Graph.n base)));
  (* the union contains the base and every epoch's added edges *)
  Graph_core.Graph.iter_edges base (fun u v ->
      check_bool "base edge in union" true (Graph_core.Graph.has_edge union_g u v));
  List.iter2
    (fun (e : Controller.epoch) (re : Reconfig.epoch) ->
      check_int "index preserved" e.Controller.index re.Reconfig.index;
      Alcotest.(check (float 1e-9))
        "commit at interval * (index+1)"
        (30.0 *. float_of_int (e.Controller.index + 1))
        re.Reconfig.at;
      check_bool "repack iff rebuild" true
        (re.Reconfig.repack = (e.Controller.strategy = Controller.Rebuild));
      check_int "joins cover the growth"
        (max 0 (e.Controller.n_after - e.Controller.n_before))
        (List.length re.Reconfig.joins);
      check_int "leaves cover the shrink"
        (max 0 (e.Controller.n_before - e.Controller.n_after))
        (List.length re.Reconfig.leaves);
      List.iter
        (fun (u, v) ->
          check_bool "link_up edge in union" true (Graph_core.Graph.has_edge union_g u v))
        re.Reconfig.link_up)
    epochs rc.Reconfig.epochs;
  (* the lowered timeline is driver-acceptable for sources inside n0 *)
  match Reconfig.validate rc ~sources:[ 0; 1 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "lowered reconfig invalid: %s" e

let run_ok t =
  match Scenario.run t with
  | Ok o -> o
  | Error e -> Alcotest.failf "scenario run: %s" e

let test_run_applies_epochs () =
  let t = small () in
  let o = run_ok t in
  let r = o.Scenario.result in
  check_bool "has epochs" true (o.Scenario.epochs <> []);
  check_int "every epoch applied mid-stream" (List.length o.Scenario.epochs)
    r.Driver.epochs_applied;
  check_bool "every epoch verified" true o.Scenario.all_verified;
  check_bool "delivery holds under churn" true (r.Driver.delivery_fraction >= 0.9);
  check_bool "SLO gate reflects the floor" true o.Scenario.slo_ok;
  (* this trace is repair-only: every re-stripe must patch, never re-pack *)
  let rebuilds =
    List.filter (fun (e : Controller.epoch) -> e.Controller.strategy = Controller.Rebuild)
      o.Scenario.epochs
  in
  if rebuilds = [] then check_int "no full re-pack on repair epochs" 0 r.Driver.restripe_repacked;
  check_bool "re-stripes happened" true (r.Driver.restripe_patched > 0);
  check_bool "commits announced on band 0" true (r.Driver.control_messages > 0)

let test_report_engine_and_pool_identity () =
  let a = Scenario.report (small ()) (run_ok (small ())) in
  let b =
    Scenario.report
      (small ~engine:Netsim.Sim.Heap ())
      (run_ok (small ~engine:Netsim.Sim.Heap ()))
  in
  let c = Scenario.report (small ~jobs:2 ()) (run_ok (small ~jobs:2 ())) in
  check_string "calendar = heap" a b;
  check_string "jobs 1 = jobs 2" a c;
  check_bool "schema stamped" true
    (String.length a > 0
    &&
    let sub = {|"schema": "lhg-scenario/1"|} in
    let rec find i =
      i + String.length sub <= String.length a && (String.sub a i (String.length sub) = sub || find (i + 1))
    in
    find 0)

let test_slo_gate_fails () =
  let t = small () in
  let t =
    { t with Scenario.traffic = { t.Scenario.traffic with Scenario.max_p95 = 0.001 } }
  in
  let o = run_ok t in
  check_bool "impossible p95 ceiling trips the gate" false o.Scenario.slo_ok

let suite =
  [
    Alcotest.test_case "validate wording" `Quick test_validate_wording;
    Alcotest.test_case "lower: epochs onto the timeline" `Quick test_lower;
    Alcotest.test_case "run applies every epoch" `Quick test_run_applies_epochs;
    Alcotest.test_case "report: engine + pool identity" `Quick test_report_engine_and_pool_identity;
    Alcotest.test_case "SLO gate" `Quick test_slo_gate_fails;
  ]
