(* Overlay.Controller: epoch-based reconfiguration with certificate-
   cached verification. The load-bearing property: the lhg-reconfig/1
   epoch diffs are a faithful wire protocol — replaying them from the
   base overlay reproduces the authoritative graph exactly, and the
   cached verdict agrees with the full verifier at every step. *)

open Helpers
module Graph = Graph_core.Graph
module Controller = Overlay.Controller
module Cert = Overlay.Cert

let norm (u, v) = if u <= v then (u, v) else (v, u)

(* Apply one epoch diff: (edges \ removed) ∪ added on n_after vertices. *)
let replay g ~n_after (d : Overlay.Diff.t) =
  let removed = List.rev_map norm d.Overlay.Diff.removed in
  let kept =
    List.filter (fun e -> not (List.mem (norm e) removed)) (Graph.edges g)
  in
  Graph.of_edges ~n:n_after (kept @ d.Overlay.Diff.added)

(* Replay every epoch from the frozen base; check the cached verdict
   against Verify.quick on each intermediate graph; end on the
   authoritative graph. *)
let check_replay t epochs =
  let g = ref (Controller.base_graph t) in
  List.for_all
    (fun (e : Controller.epoch) ->
      g := replay !g ~n_after:e.Controller.n_after e.Controller.diff;
      Controller.epoch_verified e
      = Lhg_core.Verify.quick !g ~k:(Controller.k t))
    epochs
  && Graph.equal !g (Controller.graph t)

let run_trace ?verify ?chaos ~family ~k ~n0 ~seed ~steps ~batch () =
  let trace = Controller.random_trace ~seed ~family ~k ~n0 ~steps () in
  match Controller.create ?verify ?chaos ~family ~k ~n:n0 () with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok t -> (
      match Controller.run ~batch t trace with
      | Error e -> Alcotest.fail (Overlay.Error.to_string e)
      | Ok epochs -> (t, epochs))

let prop_replay_kdiamond =
  qcheck ~count:25 "kdiamond epochs replay from base"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 30))
    (fun (seed, steps) ->
      let t, epochs =
        run_trace ~family:Overlay.Membership.Kdiamond ~k:4 ~n0:20 ~seed ~steps
          ~batch:4 ()
      in
      check_replay t epochs)

(* ktree has no repair engine, so this pins the rebuild-only path
   (wholesale graph replacement, shrinking resizes included). *)
let prop_replay_ktree =
  qcheck ~count:10 "ktree rebuild-only epochs replay from base"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 16))
    (fun (seed, steps) ->
      let t, epochs =
        run_trace ~family:Overlay.Membership.Ktree ~k:3 ~n0:12 ~seed ~steps
          ~batch:3 ()
      in
      check_replay t epochs)

let test_full_mode () =
  let _, epochs =
    run_trace ~verify:Controller.Full ~family:Overlay.Membership.Kdiamond ~k:4
      ~n0:16 ~seed:7 ~steps:12 ~batch:4 ()
  in
  check_bool "some epochs" true (epochs <> []);
  List.iter
    (fun (e : Controller.epoch) ->
      check_bool "full mode" true (e.Controller.verification.Controller.mode = `Full);
      check_bool "verified" true (Controller.epoch_verified e))
    epochs

let test_cached_mode_agrees () =
  let _, epochs =
    run_trace ~family:Overlay.Membership.Kdiamond ~k:4 ~n0:24 ~seed:3 ~steps:24
      ~batch:6 ()
  in
  List.iter
    (fun (e : Controller.epoch) ->
      check_bool "not the full path" true
        (e.Controller.verification.Controller.mode <> `Full);
      check_bool "verified" true (Controller.epoch_verified e))
    epochs

let test_chaos_audits_run () =
  let adv = Result.get_ok (Chaos.Gen.of_string "min-cut") in
  let _, epochs =
    run_trace
      ~chaos:(Controller.chaos ~plans_per_level:2 ~seed:11 adv)
      ~family:Overlay.Membership.Kdiamond ~k:3 ~n0:12 ~seed:5 ~steps:8 ~batch:4
      ()
  in
  List.iter
    (fun (e : Controller.epoch) ->
      check_bool "audit present" true (e.Controller.audit <> None);
      check_bool "boundary holds" true (Controller.epoch_ok e))
    epochs

let test_floor_rejection () =
  (* kdiamond floor is 2k; a leave at the floor is refused, recorded,
     and the overlay is untouched *)
  match Controller.create ~family:Overlay.Membership.Kdiamond ~k:4 ~n:8 () with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok t -> (
      Controller.feed t Controller.Leave;
      match Controller.commit_epoch t with
      | Error e -> Alcotest.fail (Overlay.Error.to_string e)
      | Ok e ->
          check_int "nothing applied" 0 e.Controller.applied;
          check_int "one rejection" 1 (List.length e.Controller.rejections);
          (match e.Controller.rejections with
          | [ { Controller.error = Overlay.Error.Below_floor f; _ } ] ->
              check_int "floor is 2k" 8 f.floor
          | _ -> Alcotest.fail "expected Below_floor");
          check_int "size unchanged" 8 (Controller.n t))

let test_parse_trace () =
  match Controller.parse_trace "# warmup\njoin\n\nleave\nresize 12\n" with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok reqs ->
      Alcotest.(check (list string))
        "parsed" [ "join"; "leave"; "resize 12" ]
        (List.map Controller.request_to_string reqs)

let test_parse_trace_error () =
  match Controller.parse_trace "join\nfrobnicate\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error (Overlay.Error.Invalid_trace { line; _ }) -> check_int "line" 2 line
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)

let test_json_schema () =
  let t, epochs =
    run_trace ~family:Overlay.Membership.Kdiamond ~k:4 ~n0:16 ~seed:2 ~steps:10
      ~batch:5 ()
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let doc = Controller.run_to_json t epochs in
  List.iter
    (fun needle -> check_bool needle true (contains doc needle))
    [
      {|"schema": "lhg-reconfig/1"|};
      {|"strategy"|};
      {|"diff"|};
      {|"verification"|};
      {|"summary"|};
      {|"all_verified": true|};
    ]

(* The cache itself: witnesses survive an honest rebuild, and breaking
   minimal k-connectivity (any single edge removal does) is caught. *)
let test_cert_detects_damage () =
  let g = (Lhg_core.Build.kdiamond_exn ~n:24 ~k:4).Lhg_core.Build.graph in
  let c = Cert.create ~k:4 in
  check_bool "arms on a valid graph" true (Cert.rebuild c ~graph:g);
  check_bool "armed" true (Cert.armed c);
  let u, v = List.hd (Graph.edges g) in
  let g' = Graph.without_edge g u v in
  let r = Cert.check c ~graph:g' ~removed:[ (u, v) ] in
  check_bool "damage detected" false (Cert.ok r);
  check_bool "disarmed" false (Cert.armed c);
  check_bool "re-arms on the valid graph" true (Cert.rebuild c ~graph:g)

(* Satellite bugfix: churn rejects invalid parameters with typed
   errors instead of looping or misbehaving. *)
let test_churn_validation () =
  let family = Overlay.Membership.Kdiamond and k = 3 and n0 = 12 in
  let run ~steps ~join_probability =
    Overlay.Churn.run (rng ()) ~family ~k ~n0 ~steps ~join_probability ()
  in
  (match run ~steps:10 ~join_probability:2.0 with
  | Error (Overlay.Error.Invalid_probability p) ->
      check_bool "p reported" true (p = 2.0)
  | _ -> Alcotest.fail "expected Invalid_probability");
  (match run ~steps:10 ~join_probability:Float.nan with
  | Error (Overlay.Error.Invalid_probability p) ->
      check_bool "NaN rejected" true (Float.is_nan p)
  | _ -> Alcotest.fail "expected Invalid_probability for NaN");
  match run ~steps:(-1) ~join_probability:0.5 with
  | Error (Overlay.Error.Invalid_steps s) -> check_int "steps reported" (-1) s
  | _ -> Alcotest.fail "expected Invalid_steps"

let suite =
  [
    prop_replay_kdiamond;
    prop_replay_ktree;
    Alcotest.test_case "full mode" `Quick test_full_mode;
    Alcotest.test_case "cached mode agrees" `Quick test_cached_mode_agrees;
    Alcotest.test_case "chaos audits" `Quick test_chaos_audits_run;
    Alcotest.test_case "floor rejection" `Quick test_floor_rejection;
    Alcotest.test_case "parse trace" `Quick test_parse_trace;
    Alcotest.test_case "parse trace error" `Quick test_parse_trace_error;
    Alcotest.test_case "lhg-reconfig/1 json" `Quick test_json_schema;
    Alcotest.test_case "cert detects damage" `Quick test_cert_detects_damage;
    Alcotest.test_case "churn validation" `Quick test_churn_validation;
  ]
