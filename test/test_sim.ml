open Helpers
module Sim = Netsim.Sim

let test_initial_state () =
  let s = Sim.create () in
  Alcotest.(check (float 0.0)) "time 0" 0.0 (Sim.now s);
  check_int "no events" 0 (Sim.pending s);
  check_bool "step on empty" false (Sim.step s)

let test_time_ordering () =
  let s = Sim.create () in
  let log = ref [] in
  Sim.schedule s ~delay:3.0 (fun () -> log := 3 :: !log);
  Sim.schedule s ~delay:1.0 (fun () -> log := 1 :: !log);
  Sim.schedule s ~delay:2.0 (fun () -> log := 2 :: !log);
  Sim.run s;
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.0)) "final time" 3.0 (Sim.now s)

let test_fifo_tie_break () =
  let s = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule s ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Sim.run s;
  Alcotest.(check (list int)) "insertion order at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_scheduling () =
  let s = Sim.create () in
  let log = ref [] in
  Sim.schedule s ~delay:1.0 (fun () ->
      log := "a" :: !log;
      Sim.schedule s ~delay:0.5 (fun () -> log := "b" :: !log));
  Sim.schedule s ~delay:2.0 (fun () -> log := "c" :: !log);
  Sim.run s;
  Alcotest.(check (list string)) "interleaved" [ "a"; "b"; "c" ] (List.rev !log)

let test_zero_delay () =
  let s = Sim.create () in
  let fired = ref false in
  Sim.schedule s ~delay:0.0 (fun () -> fired := true);
  Sim.run s;
  check_bool "fires" true !fired

let test_negative_delay_rejected () =
  let s = Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      Sim.schedule s ~delay:(-1.0) (fun () -> ()))

let test_schedule_at_past_rejected () =
  let s = Sim.create () in
  Sim.schedule s ~delay:5.0 (fun () -> ());
  Sim.run s;
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time is in the past") (fun () ->
      Sim.schedule_at s ~time:1.0 (fun () -> ()))

let test_run_until () =
  let s = Sim.create () in
  let log = ref [] in
  List.iter (fun d -> Sim.schedule s ~delay:d (fun () -> log := d :: !log)) [ 1.0; 2.0; 3.0; 4.0 ];
  Sim.run ~until:2.5 s;
  Alcotest.(check (list (float 0.0))) "only up to 2.5" [ 1.0; 2.0 ] (List.rev !log);
  check_int "rest pending" 2 (Sim.pending s);
  Sim.run s;
  check_int "drained" 0 (Sim.pending s)

let test_events_processed () =
  let s = Sim.create () in
  for _ = 1 to 7 do
    Sim.schedule s ~delay:1.0 (fun () -> ())
  done;
  Sim.run s;
  check_int "count" 7 (Sim.events_processed s)

let test_rng_determinism () =
  let draw seed =
    let s = Sim.create ~seed () in
    Graph_core.Prng.bits64 (Sim.rng s)
  in
  Alcotest.(check int64) "same seed" (draw 9) (draw 9);
  check_bool "different seed" true (draw 9 <> draw 10)

let test_fork_rng_independent () =
  let s = Sim.create () in
  let a = Sim.fork_rng s and b = Sim.fork_rng s in
  check_bool "forks differ" true (Graph_core.Prng.bits64 a <> Graph_core.Prng.bits64 b)

let test_message_handler () =
  let s = Sim.create () in
  let log = ref [] in
  Sim.set_message_handler s (fun ~src ~dst ~tag ~payload -> log := (src, dst, tag, payload) :: !log);
  Sim.schedule_message s ~time:2.0 ~src:7 ~dst:9 ~tag:3 ~payload:41;
  Sim.schedule_message s ~time:1.0 ~src:1 ~dst:2 ~tag:0 ~payload:0;
  Sim.run s;
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "messages in time order"
    [ ((1, 2), (0, 0)); ((7, 9), (3, 41)) ]
    (List.rev_map (fun (a, b, c, d) -> ((a, b), (c, d))) !log);
  let again () = Sim.set_message_handler s (fun ~src:_ ~dst:_ ~tag:_ ~payload:_ -> ()) in
  Alcotest.check_raises "second handler rejected"
    (Invalid_argument "Sim.set_message_handler: handler already installed") again

let test_message_field_validation () =
  let s = Sim.create () in
  Sim.set_message_handler s (fun ~src:_ ~dst:_ ~tag:_ ~payload:_ -> ());
  let reject msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  reject "Sim.schedule_message: src/dst outside [0, 2^31)" (fun () ->
      Sim.schedule_message s ~time:0.0 ~src:(-1) ~dst:0 ~tag:0 ~payload:0);
  reject "Sim.schedule_message: src/dst outside [0, 2^31)" (fun () ->
      Sim.schedule_message s ~time:0.0 ~src:0 ~dst:(1 lsl 31) ~tag:0 ~payload:0);
  reject "Sim.schedule_message: tag outside [0, 4)" (fun () ->
      Sim.schedule_message s ~time:0.0 ~src:0 ~dst:0 ~tag:4 ~payload:0);
  reject "Sim.schedule_message: negative payload" (fun () ->
      Sim.schedule_message s ~time:0.0 ~src:0 ~dst:0 ~tag:0 ~payload:(-1));
  reject "Sim.schedule_message: time is in the past" (fun () ->
      Sim.schedule_message s ~time:(-1.0) ~src:0 ~dst:0 ~tag:0 ~payload:0)

(* Differential harness: replay one random nested timeline on a given
   engine and log every execution. Callbacks reschedule more work, so
   any ordering divergence between engines derails the shared RNG and
   shows up as a different log. Bucket geometry is randomised to hit the
   calendar's rewind and empty-window scan paths, not just the
   monotone-append fast path. *)
let run_workload ~engine ~seed ~bucket_width ~buckets =
  let s = Sim.create ~engine ~bucket_width ~buckets () in
  let rng = Graph_core.Prng.create ~seed in
  let log = Buffer.create 1024 in
  Sim.set_message_handler s (fun ~src ~dst ~tag ~payload ->
      Buffer.add_string log
        (Printf.sprintf "m %.17g %d %d %d %d;" (Sim.now s) src dst tag payload));
  let next = ref 0 in
  let rec spawn depth =
    let id = !next in
    incr next;
    let delay = float_of_int (Graph_core.Prng.int rng 400) /. 16.0 in
    match Graph_core.Prng.int rng 3 with
    | 0 ->
        Sim.schedule s ~delay (fun () ->
            Buffer.add_string log (Printf.sprintf "c %.17g %d;" (Sim.now s) id);
            if depth > 0 then
              for _ = 1 to Graph_core.Prng.int rng 3 do
                spawn (depth - 1)
              done)
    | 1 ->
        Sim.schedule_at s
          ~time:(Sim.now s +. delay)
          (fun () ->
            Buffer.add_string log (Printf.sprintf "a %.17g %d;" (Sim.now s) id);
            if depth > 0 then spawn (depth - 1))
    | _ ->
        Sim.schedule_message s
          ~time:(Sim.now s +. delay)
          ~src:(Graph_core.Prng.int rng 1000) ~dst:(Graph_core.Prng.int rng 1000)
          ~tag:(Graph_core.Prng.int rng 4) ~payload:id
  in
  for _ = 1 to 25 do
    spawn 2
  done;
  Sim.run s;
  (Buffer.contents log, Sim.events_processed s, Sim.now s)

let prop_calendar_matches_heap =
  qcheck ~count:60 "calendar engine replays the heap engine's order exactly"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 1 64) (int_range 2 64))
    (fun (seed, w16, buckets) ->
      let bucket_width = float_of_int w16 /. 16.0 in
      run_workload ~engine:Sim.Heap ~seed ~bucket_width ~buckets
      = run_workload ~engine:Sim.Calendar ~seed ~bucket_width ~buckets)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "time ordering" `Quick test_time_ordering;
    Alcotest.test_case "fifo tie break" `Quick test_fifo_tie_break;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "zero delay" `Quick test_zero_delay;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
    Alcotest.test_case "schedule_at past rejected" `Quick test_schedule_at_past_rejected;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "events processed" `Quick test_events_processed;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "fork rng" `Quick test_fork_rng_independent;
    Alcotest.test_case "message handler" `Quick test_message_handler;
    Alcotest.test_case "message field validation" `Quick test_message_field_validation;
    prop_calendar_matches_heap;
  ]
