(* End-to-end scenarios across library boundaries: build → serialise →
   re-verify → flood → repair → route — the workflows a downstream user
   actually runs. *)
open Helpers
module Graph = Graph_core.Graph
module Serial = Graph_core.Serial
module Build = Lhg_core.Build
module Verify = Lhg_core.Verify

let test_build_serialize_verify_roundtrip () =
  let b = Build.kdiamond_exn ~n:38 ~k:4 in
  let text = Serial.to_string b.Build.graph in
  match Serial.of_string text with
  | Error e -> Alcotest.fail e
  | Ok g ->
      check_bool "roundtrip equal" true (Graph.equal b.Build.graph g);
      check_bool "re-verified from text" true (Verify.is_lhg g ~k:4)

let test_grown_overlay_full_stack () =
  (* grow incrementally, then run every protocol on the result *)
  let overlay = Overlay.Incremental.start ~k:3 () in
  let _ = Overlay.Incremental.joins overlay ~count:44 in
  let g = Overlay.Incremental.graph overlay in
  check_int "n" 50 (Graph.n g);
  (* flooding with k-1 crashes *)
  let f = Flood.Flooding.run_env ~env:(Flood.Env.make ~crashed:[ 9; 21 ] ()) ~graph:g ~source:0 () in
  check_bool "flood covers" true f.Flood.Flooding.covers_all_alive;
  (* PIF completes and detects *)
  let p = Flood.Pif.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  check_bool "pif completes" true p.Flood.Pif.completed;
  (* reliable broadcast under heavy loss *)
  let r =
    Flood.Reliable.run_env ~env:(Flood.Env.make ~loss_rate:0.3 ~seed:4 ()) ~graph:g ~publications:[ { Flood.Multi.origin = 0; inject_time = 0.0; payload_id = 1 } ] ~anti_entropy_period:2.0 ~duration:3000.0 ()
  in
  check_bool "reliable completes" true r.Flood.Reliable.complete

let test_membership_and_flooding_agree () =
  (* canonical rebuild overlay: after arbitrary resizes the graph still
     floods everyone under k-1 link failures *)
  match Overlay.Membership.create ~family:Overlay.Membership.Ktree ~k:4 ~n:20 with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok o ->
      List.iter
        (fun target ->
          (match Overlay.Membership.resize o ~target with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Overlay.Error.to_string e));
          let g = Overlay.Membership.graph o in
          let rng = rng ~salt:target () in
          let failed_links = Flood.Runner.random_link_failures rng g ~count:3 in
          let f = Flood.Flooding.run_env ~env:(Flood.Env.make ~failed_links ()) ~graph:g ~source:0 () in
          check_bool (Printf.sprintf "covers at n=%d" target) true
            f.Flood.Flooding.covers_all_alive)
        [ 33; 97; 64; 21 ]

let test_cut_witness_is_the_adversary_plan () =
  (* the min vertex cut of an LHG, crashed, actually partitions it -
     and flooding then reports incomplete coverage *)
  let b = Build.ktree_exn ~n:26 ~k:3 in
  let g = b.Build.graph in
  let cut = Graph_core.Connectivity.min_vertex_cut g in
  check_int "cut size = k" 3 (List.length cut);
  if List.mem 0 cut then ()
  else begin
    let f = Flood.Flooding.run_env ~env:(Flood.Env.make ~crashed:cut ()) ~graph:g ~source:0 () in
    check_bool "partition realised" false f.Flood.Flooding.covers_all_alive
  end

let test_gomory_hu_certifies_builds () =
  (* the GH tree certifies global k-connectivity of every regular build
     in n-1 flows instead of the verifier's pairwise sweep *)
  List.iter
    (fun (n, k) ->
      let b = Build.kdiamond_exn ~n ~k in
      let t = Graph_core.Gomory_hu.build b.Build.graph in
      match Graph_core.Gomory_hu.bottleneck t with
      | Some (_, _, w) -> check_int (Printf.sprintf "lambda(%d,%d)" n k) k w
      | None -> Alcotest.fail "tree exists")
    [ (14, 3); (20, 4); (22, 5) ]

let test_traced_flood_accounts_for_every_message () =
  let b = Build.kdiamond_exn ~n:20 ~k:3 in
  let g = b.Build.graph in
  let sim = Netsim.Sim.create () in
  let trace = Netsim.Trace.create () in
  let net = Netsim.Network.create ~sim ~graph:g ~trace () in
  let informed = Array.make (Graph.n g) false in
  Netsim.Network.set_receiver net (fun ~dst ~src msg ->
      if not informed.(dst) then begin
        informed.(dst) <- true;
        Graph.iter_neighbors g dst (fun w -> if w <> src then Netsim.Network.send net ~src:dst ~dst:w msg)
      end);
  informed.(0) <- true;
  Graph.iter_neighbors g 0 (fun w -> Netsim.Network.send net ~src:0 ~dst:w ());
  Netsim.Sim.run sim;
  let evs = Netsim.Trace.events trace in
  let count k = List.length (List.filter (fun e -> e.Netsim.Trace.kind = k) evs) in
  check_int "sent = delivered (no failures)" (count Netsim.Trace.Sent)
    (count Netsim.Trace.Delivered);
  check_int "matches closed form" (Flood.Sync.message_bound g) (count Netsim.Trace.Sent);
  check_bool "everyone informed" true (Array.for_all Fun.id informed)

let suite =
  [
    Alcotest.test_case "build-serialize-verify" `Quick test_build_serialize_verify_roundtrip;
    Alcotest.test_case "grown overlay full stack" `Quick test_grown_overlay_full_stack;
    Alcotest.test_case "membership + flooding" `Quick test_membership_and_flooding_agree;
    Alcotest.test_case "cut witness partitions" `Quick test_cut_witness_is_the_adversary_plan;
    Alcotest.test_case "gomory-hu certifies builds" `Quick test_gomory_hu_certifies_builds;
    Alcotest.test_case "traced flood accounting" `Quick test_traced_flood_accounts_for_every_message;
  ]
