open Helpers
module Graph = Graph_core.Graph
module Incremental = Overlay.Incremental
module Verify = Lhg_core.Verify
module Regularity = Lhg_core.Regularity
module Degree = Graph_core.Degree

let test_start_is_base_lhg () =
  let t = Incremental.start ~k:3 () in
  let g = Incremental.graph t in
  check_int "n = 2k" 6 (Graph.n g);
  check_int "m = k*k" 9 (Graph.m g);
  check_bool "is an LHG" true (Verify.is_lhg g ~k:3)

let test_k2_rejected () =
  Alcotest.check_raises "k=2" (Invalid_argument "Incremental.start: k must be >= 3") (fun () ->
      ignore (Incremental.start ~k:2 ()))

let test_every_step_is_lhg_k3 () =
  let t = Incremental.start ~k:3 () in
  for _ = 1 to 40 do
    let _ = Incremental.join t in
    let g = Incremental.graph t in
    check_bool
      (Printf.sprintf "n=%d is an LHG" (Graph.n g))
      true
      (Verify.is_lhg g ~k:3)
  done

let test_every_step_connected_k5 () =
  let t = Incremental.start ~k:5 () in
  for _ = 1 to 60 do
    let _ = Incremental.join t in
    let g = Incremental.graph t in
    check_bool
      (Printf.sprintf "n=%d 5-connected" (Graph.n g))
      true
      (Graph_core.Connectivity.is_k_vertex_connected g ~k:5);
    check_bool "diameter ok" true
      (match Graph_core.Paths.diameter g with
      | Some d -> d <= Verify.diameter_bound ~n:(Graph.n g) ~k:5
      | None -> false)
  done

let test_regular_exactly_at_reg_sizes () =
  List.iter
    (fun k ->
      let t = Incremental.start ~k () in
      for _ = 1 to 50 do
        let _ = Incremental.join t in
        let g = Incremental.graph t in
        check_bool
          (Printf.sprintf "k=%d n=%d regular iff REG" k (Graph.n g))
          (Regularity.reg_kdiamond ~n:(Graph.n g) ~k)
          (Degree.is_k_regular g ~k)
      done)
    [ 3; 4; 5 ]

let test_join_costs_bounded () =
  let t = Incremental.start ~k:4 () in
  List.iter
    (fun r ->
      let cost = r.Incremental.edges_added + r.Incremental.edges_removed in
      check_bool "cost O(k^2)" true (cost <= 3 * 4 * 4);
      match r.Incremental.op with
      | Incremental.Added_leaf ->
          check_int "added leaf +k" 4 r.Incremental.edges_added;
          check_int "added leaf removes none" 0 r.Incremental.edges_removed
      | Incremental.Group_formed ->
          (* clique k(k-1)/2 + 1 new parent edge added; (k-1)^2 removed *)
          check_int "group adds" 7 r.Incremental.edges_added;
          check_int "group removes" 9 r.Incremental.edges_removed
      | Incremental.Group_converted ->
          (* k(k-1)/2 clique + (k-2)k rewired removed; (k-1)k added *)
          check_int "convert adds" 12 r.Incremental.edges_added;
          check_int "convert removes" 14 r.Incremental.edges_removed)
    (Incremental.joins t ~count:80)

let test_vertex_ids_stable () =
  let t = Incremental.start ~k:3 () in
  (* new vertices get consecutive fresh ids; old ids never vanish *)
  List.iteri
    (fun i r -> check_int "fresh sequential id" (6 + i) r.Incremental.new_vertex)
    (Incremental.joins t ~count:20);
  check_int "n" 26 (Incremental.n t)

let test_total_rewired_accumulates () =
  let t = Incremental.start ~k:3 () in
  let reports = Incremental.joins t ~count:15 in
  let expected =
    List.fold_left
      (fun acc r -> acc + r.Incremental.edges_added + r.Incremental.edges_removed)
      0 reports
  in
  check_int "sum matches" expected (Incremental.total_rewired t)

let test_cheaper_than_rebuild_on_average () =
  (* the point of the module: incremental joins move O(k^2) edges while
     canonical rebuilds reshuffle large parts of the graph *)
  let k = 4 in
  let t = Incremental.start ~k () in
  let _warm = Incremental.joins t ~count:60 in
  let inc_costs =
    List.map
      (fun r -> r.Incremental.edges_added + r.Incremental.edges_removed)
      (Incremental.joins t ~count:30)
  in
  let inc_mean =
    float_of_int (List.fold_left ( + ) 0 inc_costs) /. float_of_int (List.length inc_costs)
  in
  match Overlay.Membership.create ~family:Overlay.Membership.Kdiamond ~k ~n:(Incremental.n t) with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok o ->
      let rebuild_costs =
        List.init 30 (fun _ ->
            match Overlay.Membership.join o with
            | Ok d -> Overlay.Diff.cost d
            | Error e -> Alcotest.fail (Overlay.Error.to_string e))
      in
      let rebuild_mean =
        float_of_int (List.fold_left ( + ) 0 rebuild_costs) /. 30.0
      in
      check_bool
        (Printf.sprintf "incremental %.1f < rebuild %.1f" inc_mean rebuild_mean)
        true (inc_mean < rebuild_mean)

let test_deep_growth_stays_balanced () =
  (* run far enough to convert several levels; diameter must stay logarithmic *)
  let t = Incremental.start ~k:3 () in
  let _ = Incremental.joins t ~count:400 in
  let g = Incremental.graph t in
  check_int "n" 406 (Graph.n g);
  match Graph_core.Paths.diameter g with
  | Some d ->
      check_bool (Printf.sprintf "diameter %d logarithmic" d) true
        (d <= Verify.diameter_bound ~n:406 ~k:3)
  | None -> Alcotest.fail "connected"


let test_leave_inverts_join () =
  let t = Incremental.start ~k:3 () in
  let snapshots = ref [] in
  for _ = 1 to 25 do
    snapshots := Graph.copy (Incremental.graph t) :: !snapshots;
    ignore (Incremental.join t)
  done;
  (* unwind completely; every intermediate graph must match the forward
     pass exactly (same vertex ids, same edges) *)
  List.iter
    (fun expected ->
      match Incremental.leave t with
      | Error e -> Alcotest.fail (Overlay.Error.to_string e)
      | Ok _ ->
          check_bool "graph restored exactly" true (Graph.equal expected (Incremental.graph t)))
    !snapshots;
  check_int "back at base" 6 (Incremental.n t);
  match Incremental.leave t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "base size must refuse leave"

let test_leave_after_deep_growth () =
  let t = Incremental.start ~k:4 () in
  let _ = Incremental.joins t ~count:200 in
  let mark = Graph.copy (Incremental.graph t) in
  let _ = Incremental.joins t ~count:57 in
  for _ = 1 to 57 do
    match Incremental.leave t with Ok _ -> () | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  done;
  check_bool "deep unwind exact" true (Graph.equal mark (Incremental.graph t));
  (* and the overlay is still fully functional going forward *)
  let _ = Incremental.joins t ~count:10 in
  check_bool "still an LHG" true
    (Verify.is_lhg ~check_minimality:false (Incremental.graph t) ~k:4)

let test_mixed_churn_stays_lhg () =
  let t = Incremental.start ~k:3 () in
  let rngv = rng () in
  for _ = 1 to 120 do
    let joining = Incremental.n t <= 7 || Graph_core.Prng.bool rngv in
    if joining then ignore (Incremental.join t)
    else match Incremental.leave t with Ok _ -> () | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  done;
  check_bool "churned overlay is an LHG" true
    (Verify.is_lhg (Incremental.graph t) ~k:3)

let suite =
  [
    Alcotest.test_case "start is base LHG" `Quick test_start_is_base_lhg;
    Alcotest.test_case "k=2 rejected" `Quick test_k2_rejected;
    Alcotest.test_case "every step is LHG (k=3)" `Slow test_every_step_is_lhg_k3;
    Alcotest.test_case "every step connected (k=5)" `Slow test_every_step_connected_k5;
    Alcotest.test_case "regular exactly at REG sizes" `Quick test_regular_exactly_at_reg_sizes;
    Alcotest.test_case "join costs bounded" `Quick test_join_costs_bounded;
    Alcotest.test_case "vertex ids stable" `Quick test_vertex_ids_stable;
    Alcotest.test_case "total rewired" `Quick test_total_rewired_accumulates;
    Alcotest.test_case "cheaper than rebuild" `Quick test_cheaper_than_rebuild_on_average;
    Alcotest.test_case "deep growth balanced" `Quick test_deep_growth_stays_balanced;
    Alcotest.test_case "leave inverts join" `Quick test_leave_inverts_join;
    Alcotest.test_case "leave after deep growth" `Quick test_leave_after_deep_growth;
    Alcotest.test_case "mixed churn stays LHG" `Quick test_mixed_churn_stays_lhg;
  ]
