(* Parallel-vs-sequential equivalence: the [?pool] entry points must
   return exactly the sequential answer at 1, 2 and 4 domains — the
   whole point of the deterministic chunking / seed-splitting design.
   One pool per domain count is shared across all properties (pools are
   cheap to keep, expensive to churn per qcheck case). *)

open Helpers
module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Paths = Graph_core.Paths
module Connectivity = Graph_core.Connectivity
module Minimality = Graph_core.Minimality
module Generators = Graph_core.Generators
module Reliability = Flood.Reliability
module Pool = Par.Pool

(* Lazy shared pools: spawned once for the whole suite, joined at exit
   via Pool.default's at_exit only for the default pool — these two are
   deliberately leaked to process exit (worker domains idle in
   Condition.wait and the runtime joins nothing until exit; the
   alternative, per-test spawn, dominates suite wall time). *)
let pool2 = lazy (Pool.create ~domains:2)

let pool4 = lazy (Pool.create ~domains:4)

let pools () = [ (1, None); (2, Some (Lazy.force pool2)); (4, Some (Lazy.force pool4)) ]

let random_graph ?(n = 24) seed = Generators.gnp (Graph_core.Prng.create ~seed) ~n ~p:0.18

let prop_diameter_equiv =
  qcheck ~count:40 "diameter_csr equal at 1/2/4 domains"
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let g = random_graph seed in
      let csr = Csr.of_graph g in
      let expected = Paths.diameter_csr csr in
      List.for_all
        (fun (_, pool) ->
          Paths.diameter_csr ?pool csr = expected
          && Paths.eccentricities_csr ?pool csr = Paths.eccentricities_csr csr)
        (pools ()))

let prop_diameter_equiv_masked =
  qcheck ~count:25 "diameter_csr with alive mask equal at 1/2/4 domains"
    QCheck2.Gen.(pair (int_bound 10_000) (int_bound 1_000))
    (fun (seed, mask_seed) ->
      let g = random_graph seed in
      let n = Graph.n g in
      let rng = Graph_core.Prng.create ~seed:mask_seed in
      let alive = Array.init n (fun _ -> Graph_core.Prng.float rng 1.0 > 0.2) in
      (* keep at least one vertex alive so the sweep has sources *)
      if n > 0 then alive.(0) <- true;
      let csr = Csr.of_graph g in
      let expected = Paths.diameter_csr ~alive csr in
      List.for_all (fun (_, pool) -> Paths.diameter_csr ?pool ~alive csr = expected) (pools ()))

let prop_link_minimal_equiv =
  qcheck ~count:20 "is_link_minimal / non_critical_edges equal at 1/2/4 domains"
    QCheck2.Gen.(pair (int_range 3 4) (int_bound 10_000))
    (fun (k, seed) ->
      let n = 18 + (seed mod 7) in
      let g =
        match Lhg_core.Build.ktree ~n ~k with
        | Ok b -> b.Lhg_core.Build.graph
        | Error _ -> random_graph seed
      in
      let expected_min = Minimality.is_link_minimal g ~k in
      let expected_bad = Minimality.non_critical_edges g ~k in
      List.for_all
        (fun (_, pool) ->
          Minimality.is_link_minimal ?pool g ~k = expected_min
          && Minimality.non_critical_edges ?pool g ~k = expected_bad)
        (pools ()))

let prop_k_connectivity_equiv =
  qcheck ~count:25 "is_k_{vertex,edge}_connected_csr equal at 1/2/4 domains"
    QCheck2.Gen.(pair (int_range 1 5) (int_bound 10_000))
    (fun (k, seed) ->
      let g = random_graph seed in
      let csr = Csr.of_graph g in
      let ev = Connectivity.is_k_vertex_connected_csr csr ~k in
      let ee = Connectivity.is_k_edge_connected_csr csr ~k in
      List.for_all
        (fun (_, pool) ->
          Connectivity.is_k_vertex_connected_csr ?pool csr ~k = ev
          && Connectivity.is_k_edge_connected_csr ?pool csr ~k = ee)
        (pools ()))

let prop_k_connectivity_equiv_structured =
  (* dense/complete-ish fixtures hit the is_complete and min-degree
     short-circuits of the parallel path *)
  qcheck ~count:15 "decision equivalence on structured graphs"
    QCheck2.Gen.(int_range 2 6)
    (fun k ->
      List.for_all
        (fun g ->
          let csr = Csr.of_graph g in
          let ev = Connectivity.is_k_vertex_connected_csr csr ~k in
          let ee = Connectivity.is_k_edge_connected_csr csr ~k in
          List.for_all
            (fun (_, pool) ->
              Connectivity.is_k_vertex_connected_csr ?pool csr ~k = ev
              && Connectivity.is_k_edge_connected_csr ?pool csr ~k = ee)
            (pools ()))
        [ Generators.complete 8; Generators.cycle 9; petersen (); Generators.star 7 ])

let prop_flood_delivery_equiv =
  qcheck ~count:8 "flood_delivery bit-identical at 1/2/4 domains"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 600 1400))
    (fun (seed, trials) ->
      (* > shard_size trials so several shards exist and get scheduled
         differently at different domain counts *)
      let b = Lhg_core.Build.kdiamond_exn ~n:30 ~k:3 in
      let g = b.Lhg_core.Build.graph in
      let est pool =
        Reliability.flood_delivery ?pool ~graph:g ~source:0 ~node_failure_prob:0.08 ~trials
          ~seed ()
      in
      let expected = est None in
      List.for_all
        (fun (_, pool) ->
          let e = est pool in
          e.Reliability.probability = expected.Reliability.probability
          && e.Reliability.lo = expected.Reliability.lo
          && e.Reliability.hi = expected.Reliability.hi
          && e.Reliability.trials = expected.Reliability.trials)
        (pools ()))

let prop_chaos_audit_equiv =
  qcheck ~count:6 "Chaos.Audit bit-identical at 1/2/4 domains"
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let b = Lhg_core.Build.kdiamond_exn ~n:22 ~k:3 in
      let g = b.Lhg_core.Build.graph in
      (* source outside the min vertex cut so adversarial plans can
         actually separate it from somebody *)
      let cut = Connectivity.min_vertex_cut g in
      let source =
        let rec pick v = if List.mem v cut then pick (v + 1) else v in
        pick 0
      in
      let plans =
        Chaos.Gen.sweep ~plans_per_level:2
          ~rng:(Graph_core.Prng.create ~seed)
          ~graph:g ~source ~max_faults:3 Chaos.Gen.Min_vertex_cut
      in
      let fingerprint (a : Chaos.Audit.t) =
        ( a.Chaos.Audit.boundary_ok,
          a.Chaos.Audit.matrix,
          List.map
            (fun (r : Chaos.Audit.plan_report) ->
              (r.index, r.weight, r.complete, r.delivered, r.completion_time, r.messages, r.witness))
            a.Chaos.Audit.reports )
      in
      let audit pool =
        let env = Flood.Env.(default |> with_seed seed |> with_pool pool) in
        Chaos.Audit.run ~env ~graph:g ~k:3 ~source ~plans
      in
      let expected = fingerprint (audit None) in
      List.for_all (fun (_, pool) -> fingerprint (audit pool) = expected) (pools ()))

let test_verify_equiv () =
  let b = Lhg_core.Build.kdiamond_exn ~n:34 ~k:4 in
  let g = b.Lhg_core.Build.graph in
  let expected = Lhg_core.Verify.verify g ~k:4 in
  List.iter
    (fun (d, pool) ->
      let r = Lhg_core.Verify.verify ?pool g ~k:4 in
      check_bool (Printf.sprintf "report equal at %d domains" d) true (r = expected))
    (pools ())

let test_default_pool_usable_in_verify () =
  (* under LHG_DOMAINS=n this runs the whole verifier on the shared
     n-domain pool — the CI multicore job's main assertion *)
  let b = Lhg_core.Build.ktree_exn ~n:26 ~k:3 in
  let g = b.Lhg_core.Build.graph in
  let pool = Pool.default () in
  check_bool "is_lhg on default pool" true (Lhg_core.Verify.is_lhg ~pool g ~k:3);
  check_bool "matches sequential" true (Lhg_core.Verify.is_lhg g ~k:3)

let suite =
  [
    prop_diameter_equiv;
    prop_diameter_equiv_masked;
    prop_link_minimal_equiv;
    prop_k_connectivity_equiv;
    prop_k_connectivity_equiv_structured;
    prop_flood_delivery_equiv;
    prop_chaos_audit_equiv;
    Alcotest.test_case "verify report equal" `Quick test_verify_equiv;
    Alcotest.test_case "verify on default pool" `Quick test_default_pool_usable_in_verify;
  ]
