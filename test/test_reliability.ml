open Helpers
module Generators = Graph_core.Generators
module Reliability = Flood.Reliability

let test_wilson_interval_basic () =
  let lo, hi = Reliability.wilson_interval ~successes:50 ~trials:100 in
  check_bool "brackets the estimate" true (lo < 0.5 && 0.5 < hi);
  check_bool "reasonable width" true (hi -. lo < 0.25);
  let lo, hi = Reliability.wilson_interval ~successes:100 ~trials:100 in
  check_bool "upper pinned" true (hi > 0.9999);
  check_bool "lower below one" true (lo < 1.0);
  let lo, _ = Reliability.wilson_interval ~successes:0 ~trials:100 in
  Alcotest.(check (float 1e-9)) "lower pinned" 0.0 lo

let test_wilson_narrows_with_trials () =
  let lo1, hi1 = Reliability.wilson_interval ~successes:9 ~trials:10 in
  let lo2, hi2 = Reliability.wilson_interval ~successes:900 ~trials:1000 in
  check_bool "narrower" true (hi2 -. lo2 < hi1 -. lo1)

let test_flood_p0_is_certain () =
  let b = Lhg_core.Build.kdiamond_exn ~n:20 ~k:3 in
  let e =
    Reliability.flood_delivery ~graph:b.Lhg_core.Build.graph ~source:0 ~node_failure_prob:0.0
      ~trials:50 ~seed:1 ()
  in
  Alcotest.(check (float 1e-9)) "certain" 1.0 e.Reliability.probability

let test_flood_p1_only_source_survives () =
  let b = Lhg_core.Build.kdiamond_exn ~n:20 ~k:3 in
  let e =
    Reliability.flood_delivery ~graph:b.Lhg_core.Build.graph ~source:0 ~node_failure_prob:1.0
      ~trials:20 ~seed:2 ()
  in
  (* everyone but the source fails: the source trivially covers itself *)
  Alcotest.(check (float 1e-9)) "vacuously reliable" 1.0 e.Reliability.probability

let test_lhg_beats_tree () =
  let b = Lhg_core.Build.kdiamond_exn ~n:62 ~k:4 in
  let lhg = b.Lhg_core.Build.graph in
  let tree = Topo.Spanning_tree.bfs_tree lhg ~root:0 in
  let p = 0.05 and trials = 300 in
  let e_lhg = Reliability.flood_delivery ~graph:lhg ~source:0 ~node_failure_prob:p ~trials ~seed:3 () in
  let e_tree =
    Reliability.flood_delivery ~graph:tree ~source:0 ~node_failure_prob:p ~trials ~seed:3 ()
  in
  check_bool
    (Printf.sprintf "lhg %.2f > tree %.2f" e_lhg.Reliability.probability
       e_tree.Reliability.probability)
    true
    (e_lhg.Reliability.probability > e_tree.Reliability.probability +. 0.1)

let test_reliability_monotone_in_p () =
  let g = Generators.cycle 30 in
  let est p = (Reliability.flood_delivery ~graph:g ~source:0 ~node_failure_prob:p ~trials:300 ~seed:4 ()).Reliability.probability in
  let p05 = est 0.05 and p25 = est 0.25 in
  check_bool "higher p, lower reliability" true (p05 > p25)

let test_gossip_below_flood () =
  let b = Lhg_core.Build.kdiamond_exn ~n:44 ~k:4 in
  let g = b.Lhg_core.Build.graph in
  let f = Reliability.flood_delivery ~graph:g ~source:0 ~node_failure_prob:0.02 ~trials:150 ~seed:5 () in
  let go =
    Reliability.gossip_delivery ~graph:g ~source:0 ~fanout:2 ~node_failure_prob:0.02 ~trials:150
      ~seed:5 ()
  in
  check_bool "flood at least as reliable as weak gossip" true
    (f.Reliability.probability >= go.Reliability.probability)

let test_estimate_bounds_order () =
  let b = Lhg_core.Build.ktree_exn ~n:30 ~k:3 in
  let e =
    Reliability.flood_delivery ~graph:b.Lhg_core.Build.graph ~source:0 ~node_failure_prob:0.1
      ~trials:200 ~seed:6 ()
  in
  check_bool "lo <= p <= hi" true
    (e.Reliability.lo <= e.Reliability.probability && e.Reliability.probability <= e.Reliability.hi)

let test_estimate_of_valid () =
  let e = Reliability.estimate_of ~successes:30 ~trials:100 in
  Alcotest.(check (float 1e-9)) "ratio" 0.3 e.Reliability.probability;
  check_int "trials carried" 100 e.Reliability.trials;
  check_bool "interval brackets" true (e.Reliability.lo <= 0.3 && 0.3 <= e.Reliability.hi)

let test_estimate_of_rejects_bad_args () =
  Alcotest.check_raises "zero trials"
    (Invalid_argument "Reliability.estimate_of: trials must be positive") (fun () ->
      ignore (Reliability.estimate_of ~successes:0 ~trials:0));
  Alcotest.check_raises "negative trials"
    (Invalid_argument "Reliability.estimate_of: trials must be positive") (fun () ->
      ignore (Reliability.estimate_of ~successes:0 ~trials:(-5)));
  Alcotest.check_raises "successes above trials"
    (Invalid_argument "Reliability.estimate_of: successes outside [0, trials]") (fun () ->
      ignore (Reliability.estimate_of ~successes:11 ~trials:10));
  Alcotest.check_raises "negative successes"
    (Invalid_argument "Reliability.estimate_of: successes outside [0, trials]") (fun () ->
      ignore (Reliability.estimate_of ~successes:(-1) ~trials:10))

let suite =
  [
    Alcotest.test_case "wilson basic" `Quick test_wilson_interval_basic;
    Alcotest.test_case "estimate_of valid" `Quick test_estimate_of_valid;
    Alcotest.test_case "estimate_of rejects bad args" `Quick test_estimate_of_rejects_bad_args;
    Alcotest.test_case "wilson narrows" `Quick test_wilson_narrows_with_trials;
    Alcotest.test_case "flood p=0 certain" `Quick test_flood_p0_is_certain;
    Alcotest.test_case "flood p=1 vacuous" `Quick test_flood_p1_only_source_survives;
    Alcotest.test_case "lhg beats tree" `Slow test_lhg_beats_tree;
    Alcotest.test_case "monotone in p" `Slow test_reliability_monotone_in_p;
    Alcotest.test_case "gossip below flood" `Slow test_gossip_below_flood;
    Alcotest.test_case "estimate bounds" `Quick test_estimate_bounds_order;
  ]
