(* Self-assembly: the distributed construction protocol of ISSUE 9.

   The load-bearing properties: crash-free assembly converges to a
   graph the independent verifier accepts and that matches the target
   construction edge-for-edge; up to k - 1 mid-assembly crashes are
   detected by timeout and survivors re-converge without a restart;
   and the whole thing — including the parallel audit — is
   byte-deterministic across engines and pool sizes. *)

open Helpers
module Run = Assemble.Run
module Audit = Assemble.Audit
module Env = Flood.Env
module Build = Lhg_core.Build
module Graph = Graph_core.Graph

let assemble ?plan ?(seed = 1) ?(engine = Netsim.Sim.Calendar) ~n ~k () =
  let env = Env.default |> Env.with_seed seed |> Env.with_engine engine in
  Run.run ~env ?plan ~construction:Build.Kdiamond ~n ~k ()

(* staggered crash plan: victim j dies one gossip round after victim
   j - 1, all of them mid-assembly *)
let crash_plan victims =
  let period = Run.default_params.Run.period in
  Chaos.Plan.make
    (List.mapi
       (fun j v -> { Chaos.Plan.at = period *. float_of_int (j + 1); event = Chaos.Plan.Crash v })
       victims)

let test_crash_free_converges () =
  let r = assemble ~n:46 ~k:4 () in
  check_bool "converged" true r.Run.converged;
  check_bool "verified" true r.Run.verified;
  check_bool "matches target" true r.Run.matches_target;
  check_bool "not capped" true (not r.Run.capped);
  check_int "nobody died" 0 r.Run.deaths_declared;
  check_int "nobody retired" 0 (Array.length r.Run.retired);
  check_int "all 46 are members" 46 (Array.length r.Run.final_members);
  match r.Run.realized with
  | None -> Alcotest.fail "converged run must expose the realized graph"
  | Some g ->
      check_int "realized on all nodes" 46 (Graph.n g);
      check_bool "independent Verify.quick accepts" true (Lhg_core.Verify.quick g ~k:4)

(* the qcheck property of the issue: any admissible size, any seed —
   crash-free assembly ends in a Verify.quick-accepted graph *)
let prop_crash_free_assembly =
  qcheck ~count:15 "crash-free assembly converges to a verified LHG"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 8 80))
    (fun (seed, n) ->
      match Build.build Build.Kdiamond ~n ~k:3 with
      | Error _ -> true (* inadmissible size: nothing to assemble *)
      | Ok _ -> (
          let r = assemble ~seed ~n ~k:3 () in
          r.Run.converged && r.Run.verified && r.Run.matches_target
          &&
          match r.Run.realized with
          | Some g -> Lhg_core.Verify.quick g ~k:3
          | None -> false))

(* k - 1 = 3 staggered mid-assembly crashes: timeouts declare the
   silent nodes dead, the death set gossips, survivors re-elect slots
   over the reduced electorate and still land on a valid LHG *)
let test_reconverges_after_crashes () =
  List.iter
    (fun victims ->
      let r = assemble ~plan:(crash_plan victims) ~n:46 ~k:4 () in
      let tag = String.concat "," (List.map string_of_int victims) in
      check_bool (tag ^ ": converged") true r.Run.converged;
      check_bool (tag ^ ": verified") true r.Run.verified;
      check_bool (tag ^ ": matches target") true r.Run.matches_target;
      Alcotest.(check (list int))
        (tag ^ ": retired = victims")
        (List.sort compare victims)
        (Array.to_list r.Run.retired |> List.sort compare);
      check_int
        (tag ^ ": survivors are the members")
        (46 - List.length victims)
        (Array.length r.Run.final_members);
      check_bool (tag ^ ": deaths were declared") true (r.Run.deaths_declared > 0);
      check_bool (tag ^ ": someone unfroze to repair") true (r.Run.unfreezes > 0))
    [ [ 7 ]; [ 3; 30 ]; [ 3; 17; 30 ] ]

(* determinism: the lhg-assemble/1 document is byte-identical across
   engines, with and without chaos *)
let test_engine_byte_identity () =
  List.iter
    (fun plan ->
      let doc engine = Run.to_json (assemble ?plan ~engine ~n:46 ~k:4 ()) in
      Alcotest.(check string)
        "calendar = heap"
        (doc Netsim.Sim.Calendar) (doc Netsim.Sim.Heap))
    [ None; Some (crash_plan [ 3; 17; 30 ]) ]

(* the audit fans configs out over the pool; output must not depend on
   how many domains ran it *)
let test_audit_pool_identity () =
  let audit_doc pool =
    let env = Env.default |> Env.with_seed 5 |> Env.with_pool pool in
    Audit.to_json
      (Audit.run ~env ~construction:Build.Kdiamond ~k:4 ~sizes:[ 10; 46 ] ~recovery_n:46
         ~max_faults:3 ())
  in
  let sequential = audit_doc None in
  List.iter
    (fun domains ->
      let pool = Par.Pool.create ~domains in
      let doc =
        Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> audit_doc (Some pool))
      in
      Alcotest.(check string)
        (Printf.sprintf "1 domain = %d domains" domains)
        sequential doc)
    [ 2; 4 ]

let test_audit_verdict () =
  let env = Env.default |> Env.with_seed 5 in
  let a =
    Audit.run ~env ~construction:Build.Kdiamond ~k:4 ~sizes:[ 10; 46 ] ~recovery_n:46
      ~max_faults:3 ()
  in
  check_bool "all configs ok" true a.Audit.all_ok;
  check_int "one sweep row per size" 2 (List.length a.Audit.sweep);
  check_int "recovery rows 0..max_faults" 4 (List.length a.Audit.recovery);
  List.iter
    (fun (r : Audit.report) ->
      check_int ("recovery victims at f = " ^ string_of_int r.Audit.faults) r.Audit.faults
        (List.length r.Audit.victims))
    a.Audit.recovery

let test_rejects_bad_arguments () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Assemble.run: n must be >= 2") (fun () ->
      ignore (assemble ~n:1 ~k:4 ()));
  Alcotest.check_raises "audit beyond the guarantee"
    (Invalid_argument "Assemble.Audit.run: max_faults must stay inside the k-1 boundary")
    (fun () ->
      ignore
        (Audit.run ~env:Env.default ~construction:Build.Kdiamond ~k:4 ~sizes:[ 10 ]
           ~recovery_n:46 ~max_faults:4 ()))

let suite =
  [
    Alcotest.test_case "crash-free: converged, verified, target" `Quick test_crash_free_converges;
    prop_crash_free_assembly;
    Alcotest.test_case "re-converges after <= k-1 crashes" `Quick test_reconverges_after_crashes;
    Alcotest.test_case "engine byte-identity" `Quick test_engine_byte_identity;
    Alcotest.test_case "audit: 1/2/4-domain byte-identity" `Quick test_audit_pool_identity;
    Alcotest.test_case "audit verdict and shape" `Quick test_audit_verdict;
    Alcotest.test_case "argument validation" `Quick test_rejects_bad_arguments;
  ]
