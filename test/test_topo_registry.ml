(* Topo.Registry: the catalogue agrees with the builders it fronts. *)

module R = Topo.Registry

let test_names_unique_and_complete () =
  let names = R.names in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " registered") true (List.mem expected names))
    [ "ktree"; "kdiamond"; "kdiamond_rich"; "jd"; "harary"; "hypercube"; "expander"; "cycle"; "complete" ]

let test_unknown_kind () =
  (match R.build_graph ~kind:"nosuch" ~n:10 ~k:3 ~seed:1 with
  | Ok _ -> Alcotest.fail "unknown kind built"
  | Error msg ->
      Alcotest.(check bool) "message names the kind" true
        (String.length msg > 0
        &&
        let needle = "nosuch" in
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        go 0));
  Alcotest.(check bool) "find is None" true (R.find "nosuch" = None)

let test_admissible_matches_build () =
  (* for every entry, admissible <-> build succeeds, over a parameter sweep *)
  List.iter
    (fun e ->
      for n = 6 to 40 do
        for k = 2 to 5 do
          let adm = e.R.admissible ~n ~k in
          let built =
            match e.R.build ~n ~k ~seed:7 with Ok _ -> true | Error _ -> false
          in
          if adm <> built then
            Alcotest.failf "%s: admissible=%b but build=%b at (n=%d, k=%d)" e.R.name adm built n
              k
        done
      done)
    R.all

let test_build_respects_n () =
  List.iter
    (fun (kind, n, k) ->
      match R.build_graph ~kind ~n ~k ~seed:1 with
      | Error e -> Alcotest.failf "%s: %s" kind e
      | Ok g -> Alcotest.(check int) (kind ^ " vertex count") n (Graph_core.Graph.n g))
    [
      ("ktree", 24, 3);
      ("kdiamond", 24, 3);
      ("kdiamond_rich", 24, 3);
      ("jd", 24, 3);
      ("harary", 24, 3);
      ("hypercube", 16, 4);
      ("expander", 24, 4);
      ("cycle", 24, 3);
      ("complete", 24, 3);
    ]

let test_lhg_entries_verify () =
  (* every construction-backed entry builds a graph the independent
     verifier accepts *)
  List.iter
    (fun e ->
      match e.R.construction with
      | None -> ()
      | Some _ -> (
          match e.R.build ~n:22 ~k:3 ~seed:1 with
          | Error _ -> () (* jd has gaps; admissibility is tested above *)
          | Ok g ->
              Alcotest.(check bool)
                (e.R.name ^ " verifies as LHG")
                true
                (Lhg_core.Verify.is_lhg ~check_minimality:false g ~k:3)))
    R.all

let test_witness_matches_graph () =
  (match R.witness ~kind:"kdiamond_rich" ~n:13 ~k:3 with
  | None -> Alcotest.fail "kdiamond_rich witness missing"
  | Some b ->
      Alcotest.(check int) "witness graph size" 13 (Graph_core.Graph.n b.Lhg_core.Build.graph);
      Alcotest.(check int) "witness k" 3 b.Lhg_core.Build.k);
  Alcotest.(check bool) "no witness for plain families" true
    (R.witness ~kind:"cycle" ~n:10 ~k:2 = None);
  Alcotest.(check bool) "no witness for unknown" true (R.witness ~kind:"zzz" ~n:10 ~k:2 = None)

let test_build_construction_dispatch () =
  (* Build.build and the named wrappers produce identical graphs *)
  let pairs =
    [
      (Lhg_core.Build.Ktree, Lhg_core.Build.ktree ~n:20 ~k:3);
      (Lhg_core.Build.Kdiamond, Lhg_core.Build.kdiamond ~n:20 ~k:3);
      (Lhg_core.Build.Kdiamond_rich, Lhg_core.Build.kdiamond_unshared_rich ~n:20 ~k:3);
      (Lhg_core.Build.Jd { strict = true }, Lhg_core.Build.jd ~n:20 ~k:3 ());
    ]
  in
  List.iter
    (fun (c, named) ->
      match (Lhg_core.Build.build c ~n:20 ~k:3, named) with
      | Ok a, Ok b ->
          Alcotest.(check (list (pair int int)))
            (Lhg_core.Build.construction_name c ^ " same edges")
            (Graph_core.Graph.edges a.Lhg_core.Build.graph)
            (Graph_core.Graph.edges b.Lhg_core.Build.graph)
      | Error _, Error _ -> ()
      | _ -> Alcotest.failf "%s: wrapper disagrees" (Lhg_core.Build.construction_name c))
    pairs;
  (* the new _exn variant *)
  let b = Lhg_core.Build.kdiamond_unshared_rich_exn ~n:13 ~k:3 in
  Alcotest.(check int) "rich exn builds" 13 (Graph_core.Graph.n b.Lhg_core.Build.graph);
  Alcotest.check_raises "build_exn propagates errors"
    (Invalid_argument "Build.ktree: n = 3 is too small: the smallest graph for this k has 6 nodes")
    (fun () -> ignore (Lhg_core.Build.build_exn Lhg_core.Build.Ktree ~n:3 ~k:3))

(* the uniform [csr] field: every entry's direct CSR equals the
   adjacency-set graph it fronts, whether or not the entry takes the
   [direct_csr] shortcut past the intermediate Graph.t *)
let test_csr_equals_build () =
  List.iter
    (fun e ->
      let n, k =
        match e.R.name with "hypercube" -> (16, 4) | "harary" -> (14, 4) | _ -> (14, 3)
      in
      if e.R.admissible ~n ~k then
        match (e.R.build ~n ~k ~seed:7, e.R.csr ~big:false ~n ~k ~seed:7) with
        | Ok g, Ok c ->
            let csr_edges = ref [] in
            Graph_core.Csr.iter_edges c (fun u v -> csr_edges := (u, v) :: !csr_edges);
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "%s: csr = build (direct_csr = %b)" e.R.name e.R.direct_csr)
              (List.sort compare (Graph_core.Graph.edges g))
              (List.sort compare !csr_edges)
        | Error a, Error b ->
            Alcotest.(check string) (e.R.name ^ ": same error both routes") a b
        | Ok _, Error b -> Alcotest.failf "%s: graph built but csr failed: %s" e.R.name b
        | Error a, Ok _ -> Alcotest.failf "%s: csr built but graph failed: %s" e.R.name a)
    R.all

let test_direct_csr_flags () =
  (* the entries that bypass the Graph.t intermediate say so *)
  List.iter
    (fun (name, expected) ->
      match R.find name with
      | None -> Alcotest.failf "%s not registered" name
      | Some e -> Alcotest.(check bool) (name ^ " direct_csr") expected e.R.direct_csr)
    [ ("cycle", true); ("complete", true); ("hypercube", true); ("kdiamond", true); ("expander", false) ]

let suite =
  [
    Alcotest.test_case "names unique and complete" `Quick test_names_unique_and_complete;
    Alcotest.test_case "unknown kind" `Quick test_unknown_kind;
    Alcotest.test_case "admissible matches build" `Quick test_admissible_matches_build;
    Alcotest.test_case "build respects n" `Quick test_build_respects_n;
    Alcotest.test_case "lhg entries verify" `Quick test_lhg_entries_verify;
    Alcotest.test_case "witness matches graph" `Quick test_witness_matches_graph;
    Alcotest.test_case "construction dispatch" `Quick test_build_construction_dispatch;
  ]
