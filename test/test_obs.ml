(* Obs.Registry and Obs.Export: metric semantics, the disabled path,
   percentiles, the event ring, and exporter well-formedness. *)

module R = Obs.Registry

let test_counter_basics () =
  let r = R.create () in
  let c = R.counter r "a" in
  R.incr c;
  R.incr c;
  R.add c 5;
  Alcotest.(check int) "value" 7 (R.counter_value c);
  (* same name -> same counter *)
  let c' = R.counter r "a" in
  R.incr c';
  Alcotest.(check int) "shared" 8 (R.counter_value c);
  Alcotest.(check int) "one registration" 1 (List.length (R.counters r))

let test_gauge_semantics () =
  let r = R.create () in
  let g = R.gauge r "g" in
  R.set g 3.0;
  R.set g 1.5;
  Alcotest.(check (float 0.0)) "last write wins" 1.5 (R.gauge_value g);
  R.set_max g 4.0;
  R.set_max g 2.0;
  Alcotest.(check (float 0.0)) "running max" 4.0 (R.gauge_value g)

let test_type_clash_rejected () =
  let r = R.create () in
  ignore (R.counter r "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Registry: x is registered with another metric type") (fun () ->
      ignore (R.gauge r "x"))

let test_histogram_percentiles () =
  let r = R.create () in
  let h = R.histogram r "h" ~bounds:R.hop_bounds in
  (* 100 observations at hop values 1..100 clamp into 0..63 + overflow *)
  for i = 1 to 100 do
    R.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (R.histogram_count h);
  Alcotest.(check (float 0.0)) "p50" 50.0 (R.percentile h 0.50);
  Alcotest.(check (float 0.0)) "p0 = min bucket" 1.0 (R.percentile h 0.0);
  (* overflow observations report the last finite bound *)
  Alcotest.(check (float 0.0)) "p100 hits overflow" 63.0 (R.percentile h 1.0);
  let empty = R.histogram r "h2" ~bounds:R.hop_bounds in
  Alcotest.(check (float 0.0)) "empty histogram" 0.0 (R.percentile empty 0.5)

let test_histogram_bad_bounds () =
  let r = R.create () in
  Alcotest.check_raises "empty bounds"
    (Invalid_argument "Registry.histogram: empty bounds") (fun () ->
      ignore (R.histogram r "e" ~bounds:[||]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Registry.histogram: bounds must be strictly increasing") (fun () ->
      ignore (R.histogram r "ni" ~bounds:[| 1.0; 1.0 |]))

let test_disabled_registry_is_inert () =
  let r = R.nil in
  let c = R.counter r "dead" in
  R.incr c;
  R.add c 10;
  let g = R.gauge r "deadg" in
  R.set g 5.0;
  let h = R.histogram r "deadh" ~bounds:R.hop_bounds in
  R.observe h 3.0;
  R.event r R.Crash ~node:1 ~info:0;
  (* nothing registers, nothing retains *)
  Alcotest.(check int) "no counters" 0 (List.length (R.counters r));
  Alcotest.(check int) "no gauges" 0 (List.length (R.gauges r));
  Alcotest.(check int) "no histograms" 0 (List.length (R.histograms r));
  Alcotest.(check int) "no events" 0 (R.events_recorded r);
  Alcotest.(check bool) "disabled" false (R.enabled r)

let test_event_ring_eviction () =
  let r = R.create ~event_capacity:4 () in
  for i = 1 to 10 do
    R.event_at r ~at:(float_of_int i) R.Round_start ~node:i ~info:i
  done;
  Alcotest.(check int) "recorded" 10 (R.events_recorded r);
  Alcotest.(check int) "dropped" 6 (R.events_dropped r);
  let evs = R.events r in
  Alcotest.(check int) "retained" 4 (List.length evs);
  Alcotest.(check int) "oldest retained" 7 (List.hd evs).R.node;
  (* per-kind totals survive eviction *)
  Alcotest.(check int) "kind count" 10 (R.event_kind_count r R.Round_start)

let test_clock_shared_with_sim () =
  let r = R.create () in
  let sim = Netsim.Sim.create ~obs:r () in
  Netsim.Sim.schedule_at sim ~time:7.5 (fun () -> R.event r R.Crash ~node:0 ~info:0);
  Netsim.Sim.run sim;
  match R.events r with
  | [ ev ] -> Alcotest.(check (float 1e-9)) "stamped with sim clock" 7.5 ev.R.at
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_clear_keeps_registrations () =
  let r = R.create () in
  let c = R.counter r "c" in
  R.incr c;
  let h = R.histogram r "h" ~bounds:R.hop_bounds in
  R.observe h 1.0;
  R.event r R.Crash ~node:0 ~info:0;
  R.clear r;
  Alcotest.(check int) "counter reset" 0 (R.counter_value c);
  Alcotest.(check int) "histogram reset" 0 (R.histogram_count h);
  Alcotest.(check int) "events reset" 0 (R.events_recorded r);
  Alcotest.(check int) "registrations kept" 1 (List.length (R.counters r));
  R.incr c;
  Alcotest.(check int) "still live" 1 (R.counter_value c)

(* A tiny structural JSON validator: balanced braces/brackets outside
   strings — catches the usual hand-rolled-emitter mistakes (trailing
   commas are caught by the CI python parse; here we check nesting). *)
let check_balanced s =
  let depth = ref 0 and in_string = ref false and escaped = ref false in
  String.iter
    (fun ch ->
      if !escaped then escaped := false
      else if !in_string then begin
        if ch = '\\' then escaped := true else if ch = '"' then in_string := false
      end
      else
        match ch with
        | '"' -> in_string := true
        | '{' | '[' -> incr depth
        | '}' | ']' -> decr depth
        | _ -> ())
    s;
  Alcotest.(check int) "balanced json nesting" 0 !depth;
  Alcotest.(check bool) "string closed" false !in_string

let test_export_json_structure () =
  let r = R.create () in
  let g = (Lhg_core.Build.kdiamond_exn ~n:22 ~k:3).Lhg_core.Build.graph in
  ignore (Flood.Flooding.run_env ~env:(Flood.Env.make ~obs:r ()) ~graph:g ~source:0 ());
  let doc = Obs.Export.to_json ~recent_events:4 r in
  check_balanced doc;
  let has needle =
    Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
      (let nl = String.length needle and dl = String.length doc in
       let rec go i = i + nl <= dl && (String.sub doc i nl = needle || go (i + 1)) in
       go 0)
  in
  has "\"schema\": \"lhg-obs/1\"";
  has "\"net.sent\"";
  has "\"flood.rounds\"";
  has "\"flood.completion\"";
  has "\"p95\"";
  has "\"round-start\"";
  (* the text exporter covers the same registry without raising *)
  let txt = Obs.Export.to_text ~recent_events:4 r in
  Alcotest.(check bool) "text non-empty" true (String.length txt > 0)

let test_runner_percentiles () =
  let g = (Lhg_core.Build.kdiamond_exn ~n:30 ~k:3).Lhg_core.Build.graph in
  (* the env path collects hop_counts only into an enabled registry *)
  let a =
    Flood.Runner.flood_trials_env
      ~env:(Flood.Env.make ~seed:3 ~obs:(Obs.Registry.create ()) ())
      ~graph:g ~source:0 ~crash_count:0 ~trials:9 ()
  in
  (* failure-free deterministic flooding: every trial identical *)
  Alcotest.(check (float 1e-9)) "p50 = mean" a.Flood.Runner.mean_completion
    a.Flood.Runner.p50_completion;
  Alcotest.(check (float 1e-9)) "p99 = p50" a.Flood.Runner.p50_completion
    a.Flood.Runner.p99_completion;
  Alcotest.(check bool) "hop histogram populated" true
    (Array.length a.Flood.Runner.hop_counts > 0);
  Alcotest.(check int) "hop counts sum to deliveries" (9 * 30)
    (Array.fold_left ( + ) 0 a.Flood.Runner.hop_counts);
  (* a disabled caller-supplied registry suppresses hop collection *)
  let a' =
    Flood.Runner.flood_trials_env ~env:(Flood.Env.make ~obs:Obs.Registry.nil ~seed:3 ()) ~graph:g ~source:0 ~crash_count:0 ~trials:3 ()
  in
  Alcotest.(check int) "disabled -> no hop histogram" 0 (Array.length a'.Flood.Runner.hop_counts)

(* merge: the per-domain-registries -> one-export path *)

let test_merge_counters_gauges_histograms () =
  let a = R.create () and b = R.create () in
  R.add (R.counter a "hits") 3;
  R.add (R.counter b "hits") 4;
  R.add (R.counter b "only_b") 9;
  R.set (R.gauge a "peak") 2.5;
  R.set (R.gauge b "peak") 1.5;
  let bounds = R.linear_bounds ~lo:0.0 ~step:1.0 ~count:4 in
  let ha = R.histogram a "lat" ~bounds and hb = R.histogram b "lat" ~bounds in
  R.observe ha 0.5;
  R.observe hb 1.5;
  R.observe hb 100.0;
  R.merge a b;
  Alcotest.(check int) "counters add" 7 (R.counter_value (R.counter a "hits"));
  Alcotest.(check int) "missing counters appear" 9 (R.counter_value (R.counter a "only_b"));
  Alcotest.(check (float 1e-9)) "gauges keep max" 2.5 (R.gauge_value (R.gauge a "peak"));
  Alcotest.(check int) "histogram totals add" 3 (R.histogram_count ha);
  Alcotest.(check (float 1e-9)) "histogram sums add" 102.0 (R.histogram_sum ha);
  let counts = R.histogram_counts ha in
  Alcotest.(check int) "bucket 0.5" 1 counts.(1);
  Alcotest.(check int) "overflow bucket" 1 counts.(Array.length counts - 1);
  (* src unchanged *)
  Alcotest.(check int) "src counter untouched" 4 (R.counter_value (R.counter b "hits"));
  Alcotest.(check int) "src histogram untouched" 2 (R.histogram_count hb)

let test_merge_events_and_kind_counts () =
  let a = R.create () and b = R.create () in
  R.event_at a ~at:1.0 R.Crash ~node:1 ~info:0;
  R.event_at b ~at:2.0 R.Crash ~node:2 ~info:0;
  R.event_at b ~at:3.0 R.Retransmit ~node:3 ~info:7;
  R.merge a b;
  Alcotest.(check int) "crash total" 2 (R.event_kind_count a R.Crash);
  Alcotest.(check int) "retransmit total" 1 (R.event_kind_count a R.Retransmit);
  let times = List.map (fun e -> e.R.at) (R.events a) in
  Alcotest.(check (list (float 1e-9))) "timestamps preserved" [ 1.0; 2.0; 3.0 ] times

let test_merge_mismatched_histogram_rejected () =
  let a = R.create () and b = R.create () in
  ignore (R.histogram a "lat" ~bounds:(R.linear_bounds ~lo:0.0 ~step:1.0 ~count:4));
  ignore (R.histogram b "lat" ~bounds:(R.linear_bounds ~lo:0.0 ~step:2.0 ~count:4));
  R.observe (R.histogram b "lat" ~bounds:(R.linear_bounds ~lo:0.0 ~step:2.0 ~count:4)) 1.0;
  Alcotest.check_raises "different bound values"
    (Invalid_argument "Registry.merge: lat exists with different bounds") (fun () ->
      R.merge a b)

let test_merge_disabled_is_noop () =
  let a = R.create () and b = R.create () in
  R.add (R.counter b "x") 5;
  R.merge R.nil b;
  R.merge a R.nil;
  R.merge a a;
  Alcotest.(check (list int)) "dst stayed empty" []
    (List.map R.counter_value (R.counters a))

let test_merge_folds_per_domain_registries () =
  (* the intended parallel-run shape: one registry per domain, one
     merged export *)
  let shards = Array.init 4 (fun i ->
      let r = R.create () in
      R.add (R.counter r "reliability.successes") (10 + i);
      R.observe (R.histogram r "rounds" ~bounds:R.hop_bounds) (float_of_int i);
      r)
  in
  let total = R.create () in
  Array.iter (fun r -> R.merge total r) shards;
  Alcotest.(check int) "counter folded" (10 + 11 + 12 + 13)
    (R.counter_value (R.counter total "reliability.successes"));
  Alcotest.(check int) "histogram folded" 4
    (R.histogram_count (R.histogram total "rounds" ~bounds:R.hop_bounds))

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "merge values" `Quick test_merge_counters_gauges_histograms;
    Alcotest.test_case "merge events" `Quick test_merge_events_and_kind_counts;
    Alcotest.test_case "merge rejects mismatched bounds" `Quick
      test_merge_mismatched_histogram_rejected;
    Alcotest.test_case "merge disabled no-op" `Quick test_merge_disabled_is_noop;
    Alcotest.test_case "merge per-domain registries" `Quick test_merge_folds_per_domain_registries;
    Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
    Alcotest.test_case "type clash rejected" `Quick test_type_clash_rejected;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram bad bounds" `Quick test_histogram_bad_bounds;
    Alcotest.test_case "disabled registry is inert" `Quick test_disabled_registry_is_inert;
    Alcotest.test_case "event ring eviction" `Quick test_event_ring_eviction;
    Alcotest.test_case "clock shared with sim" `Quick test_clock_shared_with_sim;
    Alcotest.test_case "clear keeps registrations" `Quick test_clear_keeps_registrations;
    Alcotest.test_case "export json structure" `Quick test_export_json_structure;
    Alcotest.test_case "runner percentiles" `Quick test_runner_percentiles;
  ]
