open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Sync = Flood.Sync

let test_cycle () =
  let g = Generators.cycle 8 in
  let r = Sync.flood_env ~env:Flood.Env.default g ~source:0 in
  check_int "reached" 8 r.Sync.reached;
  check_int "rounds = eccentricity" 4 r.Sync.rounds;
  check_int "messages" ((2 * 8) - 7) r.Sync.messages;
  check_bool "covers" true r.Sync.covers_all_alive

let test_complete () =
  let g = Generators.complete 6 in
  let r = Sync.flood_env ~env:Flood.Env.default g ~source:3 in
  check_int "one round" 1 r.Sync.rounds;
  (* every node sends deg - 1 except source sends deg: 6*5 - 5 *)
  check_int "messages" 25 r.Sync.messages

let test_star_from_center_and_leaf () =
  let g = Generators.star 6 in
  let from_center = Sync.flood_env ~env:Flood.Env.default g ~source:0 in
  check_int "center rounds" 1 from_center.Sync.rounds;
  check_int "center messages" 5 from_center.Sync.messages;
  let from_leaf = Sync.flood_env ~env:Flood.Env.default g ~source:1 in
  check_int "leaf rounds" 2 from_leaf.Sync.rounds;
  (* leaf sends 1, center sends 4 (all but parent) *)
  check_int "leaf messages" 5 from_leaf.Sync.messages

let test_disconnected () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  let r = Sync.flood_env ~env:Flood.Env.default g ~source:0 in
  check_int "partial reach" 2 r.Sync.reached;
  check_bool "does not cover" false r.Sync.covers_all_alive

let test_alive_mask () =
  let g = Generators.path_graph 5 in
  (* the alive mask is crashed-list sugar on the env path *)
  let r = Sync.flood_env ~env:(Flood.Env.make ~crashed:[ 2 ] ()) g ~source:0 in
  check_int "blocked at crash" 2 r.Sync.reached;
  check_bool "incomplete" false r.Sync.covers_all_alive

let test_message_bound_matches () =
  List.iter
    (fun g -> check_int "bound" (Sync.message_bound g) (Sync.flood_env ~env:Flood.Env.default g ~source:0).Sync.messages)
    [ Generators.cycle 10; Generators.complete 7; petersen (); Generators.grid ~rows:3 ~cols:4 ]

let test_lhg_flood_is_logarithmic () =
  (* rounds on an LHG stay around 2 log_{k-1} n while Harary needs ~n/k *)
  let b = Lhg_core.Build.kdiamond_exn ~n:302 ~k:4 in
  let lhg_rounds = (Sync.flood_env ~env:Flood.Env.default b.Lhg_core.Build.graph ~source:0).Sync.rounds in
  let h = Harary.make ~k:4 ~n:302 in
  let harary_rounds = (Sync.flood_env ~env:Flood.Env.default h ~source:0).Sync.rounds in
  check_bool "lhg small" true (lhg_rounds <= 12);
  check_bool "harary large" true (harary_rounds >= 60);
  check_bool "dominance" true (harary_rounds > 4 * lhg_rounds)

let suite =
  [
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "star" `Quick test_star_from_center_and_leaf;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "alive mask" `Quick test_alive_mask;
    Alcotest.test_case "message bound" `Quick test_message_bound_matches;
    Alcotest.test_case "lhg vs harary rounds" `Quick test_lhg_flood_is_logarithmic;
  ]
