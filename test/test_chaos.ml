(* Fault-plan chaos engine: plan algebra and text format, executor
   semantics through Flood.Env's prepare hook, and the audit's empirical
   k−1 boundary on a real LHG. *)

open Helpers
module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Connectivity = Graph_core.Connectivity
module Plan = Chaos.Plan
module Gen = Chaos.Gen
module Exec = Chaos.Exec
module Audit = Chaos.Audit
module Env = Flood.Env

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what e

let err_of what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error e -> e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------- Plan: construction, format, weight ---------- *)

let test_plan_make_sorts () =
  let p =
    Plan.make
      [
        { Plan.at = 2.0; event = Plan.Recover 3 };
        { Plan.at = 0.0; event = Plan.Crash 3 };
        { Plan.at = 1.0; event = Plan.Link_down (0, 4) };
      ]
  in
  let times = List.map (fun t -> t.Plan.at) (Plan.events p) in
  check_bool "ascending" true (times = [ 0.0; 1.0; 2.0 ]);
  check_bool "empty is_empty" true (Plan.is_empty Plan.empty);
  check_bool "non-empty" false (Plan.is_empty p);
  check_int "crash_victims" 1 (List.length (Plan.crash_victims p))

let test_plan_round_trip () =
  let p =
    Plan.make
      [
        { Plan.at = 0.0; event = Plan.Crash 3 };
        { Plan.at = 1.5; event = Plan.Link_down (0, 4) };
        { Plan.at = 2.0; event = Plan.Recover 3 };
        { Plan.at = 2.5; event = Plan.Partition [ 1; 2; 3 ] };
        { Plan.at = 4.0; event = Plan.Link_up (0, 4) };
        { Plan.at = 5.0; event = Plan.Heal };
        { Plan.at = 6.0; event = Plan.Loss_rate 0.05 };
      ]
  in
  let p' = ok_or_fail "round trip" (Plan.of_string (Plan.to_string p)) in
  check_bool "events survive to_string/of_string" true (Plan.events p' = Plan.events p)

let test_plan_parse () =
  let p =
    ok_or_fail "parse"
      (Plan.of_string "# comment\n\n0.0 crash 3\n1.5\tlink_down 0 4\n2 heal\n")
  in
  check_int "three events" 3 (List.length (Plan.events p));
  let e = err_of "bad keyword" (Plan.of_string "0.0 crash 1\n1.0 explode 2\n") in
  check_bool "error names line 2" true (contains e "line 2")

let test_plan_parse_errors () =
  let cases =
    [
      ("no time", "crash 3");
      ("bad time", "x crash 3");
      ("missing arg", "0.0 crash");
      ("bad loss", "0.0 loss_rate oops");
    ]
  in
  List.iter (fun (name, s) -> ignore (err_of name (Plan.of_string s))) cases

let test_plan_validate () =
  let g = petersen () in
  let csr = Csr.of_graph g in
  let check_ok name p = ok_or_fail name (Plan.validate csr (Plan.make p)) in
  let check_err name p = ignore (err_of name (Plan.validate csr (Plan.make p))) in
  check_ok "good plan"
    [
      { Plan.at = 0.0; event = Plan.Crash 3 };
      { Plan.at = 1.0; event = Plan.Link_down (0, 1) };
      { Plan.at = 2.0; event = Plan.Partition [ 0; 1 ] };
      { Plan.at = 3.0; event = Plan.Loss_rate 0.5 };
    ];
  check_err "vertex out of range" [ { Plan.at = 0.0; event = Plan.Crash 99 } ];
  check_err "non-edge link" [ { Plan.at = 0.0; event = Plan.Link_down (0, 2) } ];
  check_err "loss_rate = 1" [ { Plan.at = 0.0; event = Plan.Loss_rate 1.0 } ];
  check_err "empty partition" [ { Plan.at = 0.0; event = Plan.Partition [] } ];
  check_err "improper partition"
    [ { Plan.at = 0.0; event = Plan.Partition (List.init 10 Fun.id) } ];
  check_err "negative time" [ { Plan.at = -1.0; event = Plan.Heal } ]

let test_plan_weight () =
  let g = petersen () in
  let csr = Csr.of_graph g in
  let w p = Plan.weight csr (Plan.make p) in
  (* duplicates collapse; recovery does not refund the fault *)
  check_int "distinct crashes + links" 3
    (w
       [
         { Plan.at = 0.0; event = Plan.Crash 3 };
         { Plan.at = 1.0; event = Plan.Crash 3 };
         { Plan.at = 2.0; event = Plan.Recover 3 };
         { Plan.at = 3.0; event = Plan.Link_down (0, 1) };
         { Plan.at = 4.0; event = Plan.Link_down (1, 0) };
         { Plan.at = 5.0; event = Plan.Link_up (0, 1) };
         { Plan.at = 6.0; event = Plan.Crash 7 };
       ]);
  (* a partition's weight is the edges it cuts: petersen is 3-regular,
     so isolating one vertex downs exactly its 3 incident edges *)
  check_int "partition expands to cut edges" 3
    (w [ { Plan.at = 0.0; event = Plan.Partition [ 0 ] } ]);
  check_int "loss_rate carries no weight" 0
    (w [ { Plan.at = 0.0; event = Plan.Loss_rate 0.3 } ]);
  check_bool "loss_rate makes it stochastic" true
    (Plan.stochastic (Plan.make [ { Plan.at = 0.0; event = Plan.Loss_rate 0.3 } ]));
  check_bool "loss_rate 0 does not" false
    (Plan.stochastic (Plan.make [ { Plan.at = 0.0; event = Plan.Loss_rate 0.0 } ]))

(* ---------- Exec: plans drive a live flood via Env.prepare ---------- *)

let flood_under plan =
  let g = petersen () in
  let env = Env.(default |> with_seed 7 |> with_prepare (Exec.prepare_hook plan)) in
  Flood.Flooding.run_env ~env ~graph:g ~source:0 ()

let test_exec_crash_blocks_delivery () =
  let plan = Plan.make [ { Plan.at = 0.0; event = Plan.Crash 6 } ] in
  let r = flood_under plan in
  check_bool "victim unreached" false r.Flood.Flooding.delivered.(6);
  check_bool "everyone else reached" true
    (List.for_all (fun v -> v = 6 || r.Flood.Flooding.delivered.(v)) (List.init 10 Fun.id))

let test_exec_recovery_catches_in_flight () =
  (* crash fires at t=0, recovery at t=0.5 < the unit-latency delivery
     at t=1: the in-flight copies land on a live node again *)
  let plan =
    Plan.make
      [ { Plan.at = 0.0; event = Plan.Crash 6 }; { Plan.at = 0.5; event = Plan.Recover 6 } ]
  in
  let r = flood_under plan in
  check_bool "recovered node reached" true r.Flood.Flooding.delivered.(6);
  check_bool "covers all" true r.Flood.Flooding.covers_all_alive

let test_exec_partition_and_heal () =
  (* cut vertex 0 (the source) away at t=0: its first sends are already
     in flight (link state is checked at send time), so the flood still
     escapes — but nothing can flow back across the downed cut, and
     healing after the flood has died changes nothing *)
  let plan =
    Plan.make
      [
        { Plan.at = 2.5; event = Plan.Partition [ 0; 1 ] };
        { Plan.at = 50.0; event = Plan.Heal };
      ]
  in
  let r = flood_under plan in
  check_bool "late partition after radius-2 flood is harmless" true
    r.Flood.Flooding.covers_all_alive;
  let early = Plan.make [ { Plan.at = 0.0; event = Plan.Partition [ 7 ] } ] in
  let r = flood_under early in
  (* vertex 7 is two hops from source 0: every copy towards it is sent
     at t >= 1, after its incident links went down *)
  check_bool "early partition isolates a distant vertex" false
    r.Flood.Flooding.delivered.(7)

(* ---------- Audit: the empirical boundary on an LHG ---------- *)

let audit_fixture () =
  let b = Lhg_core.Build.kdiamond_exn ~n:22 ~k:3 in
  let g = b.Lhg_core.Build.graph in
  let cut = Connectivity.min_vertex_cut g in
  let source =
    let rec pick v = if List.mem v cut then pick (v + 1) else v in
    pick 0
  in
  (g, cut, source)

let test_audit_boundary () =
  let g, cut, source = audit_fixture () in
  check_int "kdiamond(22,3) has a 3-cut" 3 (List.length cut);
  let plans =
    Gen.sweep ~rng:(Graph_core.Prng.create ~seed:11) ~graph:g ~source ~max_faults:3
      Gen.Min_vertex_cut
  in
  let env = Env.(default |> with_seed 11) in
  let a = Audit.run ~env ~graph:g ~k:3 ~source ~plans in
  check_bool "boundary holds at <= k-1" true a.Audit.boundary_ok;
  check_bool "no violations" true (a.Audit.violations = []);
  (* the deterministic prefix plan at level 3 deploys the full min cut
     and must break the flood, witnessing tightness *)
  (match Audit.first_witness a with
  | None -> Alcotest.fail "expected a k-fault witness"
  | Some r ->
      check_int "witness at weight k" 3 r.Audit.weight;
      check_bool "incomplete" false r.Audit.complete;
      let w = Option.get r.Audit.witness in
      check_bool "witness crashes the min cut" true
        (w.Audit.crashed_nodes = List.sort compare cut);
      check_bool "someone obligated went unreached" true (w.Audit.unreached <> []));
  (* the matrix covers weights 0..3 in order and every <= 2 row is clean *)
  let weights = List.map (fun row -> row.Audit.faults) a.Audit.matrix in
  check_bool "matrix ascending from 0" true (weights = List.sort_uniq compare weights);
  List.iter
    (fun row ->
      if row.Audit.faults <= 2 then
        check_int
          (Printf.sprintf "row %d complete" row.Audit.faults)
          row.Audit.plans row.Audit.complete_plans)
    a.Audit.matrix

let test_audit_dynamic_plans () =
  let g, _, source = audit_fixture () in
  let plans =
    Gen.sweep ~plans_per_level:4
      ~rng:(Graph_core.Prng.create ~seed:3)
      ~graph:g ~source ~max_faults:2 Gen.Random_dynamic
  in
  let env = Env.(default |> with_seed 3) in
  let a = Audit.run ~env ~graph:g ~k:3 ~source ~plans in
  (* flapping faults of weight <= k-1 still cannot break the flood *)
  check_bool "dynamic boundary holds" true a.Audit.boundary_ok

let test_audit_reproducible () =
  let g, _, source = audit_fixture () in
  let plans =
    Gen.sweep ~rng:(Graph_core.Prng.create ~seed:5) ~graph:g ~source ~max_faults:3
      Gen.High_degree
  in
  let run () =
    let env = Env.(default |> with_seed 5) in
    (Audit.run ~env ~graph:g ~k:3 ~source ~plans).Audit.reports
  in
  check_bool "same seed, same reports" true (run () = run ())

let test_audit_rejects_invalid () =
  let g, _, source = audit_fixture () in
  let env = Env.default in
  let bad = Plan.make [ { Plan.at = 0.0; event = Plan.Crash 99 } ] in
  Alcotest.check_raises "invalid plan named by index"
    (Invalid_argument "Audit.run: plan 1: crash: vertex 99 out of range [0,22)")
    (fun () -> ignore (Audit.run ~env ~graph:g ~k:3 ~source ~plans:[ Plan.empty; bad ]));
  Alcotest.check_raises "crashed source rejected"
    (Invalid_argument "Audit.run: source is statically crashed") (fun () ->
      ignore
        (Audit.run
           ~env:(Env.with_crashed [ 1 ] env)
           ~graph:g ~k:3 ~source:1 ~plans:[ Plan.empty ]))

let test_gen_adversaries () =
  let g, _, source = audit_fixture () in
  List.iter
    (fun adv ->
      let plans =
        Gen.sweep ~plans_per_level:2
          ~rng:(Graph_core.Prng.create ~seed:1)
          ~graph:g ~source ~max_faults:2 adv
      in
      let csr = Csr.of_graph g in
      check_bool (Gen.to_string adv ^ " sweep non-empty") true (plans <> []);
      List.iter
        (fun p ->
          ignore (ok_or_fail (Gen.to_string adv ^ " plan valid") (Plan.validate csr p));
          check_bool (Gen.to_string adv ^ " never crashes the source") false
            (List.mem source (Plan.crash_victims p));
          check_bool (Gen.to_string adv ^ " within budget") true (Plan.weight csr p <= 2))
        plans;
      match Gen.of_string (Gen.to_string adv) with
      | Ok adv' -> check_bool "of_string/to_string round trip" true (adv' = adv)
      | Error e -> Alcotest.failf "of_string %s: %s" (Gen.to_string adv) e)
    Gen.all;
  ignore (err_of "unknown adversary" (Gen.of_string "gremlins"))

let suite =
  [
    Alcotest.test_case "plan make sorts" `Quick test_plan_make_sorts;
    Alcotest.test_case "plan text round trip" `Quick test_plan_round_trip;
    Alcotest.test_case "plan parse" `Quick test_plan_parse;
    Alcotest.test_case "plan parse errors" `Quick test_plan_parse_errors;
    Alcotest.test_case "plan validate" `Quick test_plan_validate;
    Alcotest.test_case "plan weight" `Quick test_plan_weight;
    Alcotest.test_case "exec crash blocks delivery" `Quick test_exec_crash_blocks_delivery;
    Alcotest.test_case "exec recovery catches in-flight" `Quick
      test_exec_recovery_catches_in_flight;
    Alcotest.test_case "exec partition and heal" `Quick test_exec_partition_and_heal;
    Alcotest.test_case "audit boundary on kdiamond" `Quick test_audit_boundary;
    Alcotest.test_case "audit dynamic plans" `Quick test_audit_dynamic_plans;
    Alcotest.test_case "audit reproducible" `Quick test_audit_reproducible;
    Alcotest.test_case "audit rejects invalid input" `Quick test_audit_rejects_invalid;
    Alcotest.test_case "generators" `Quick test_gen_adversaries;
  ]
