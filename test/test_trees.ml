(* Flood.Trees: single-chunk spanning-tree broadcast with flood
   fallback.

   The load-bearing properties, per ISSUE 8: a clean run costs exactly
   n−1 messages and covers everything; with up to ⌊k/2⌋−1 failed links
   the broadcast still reaches every alive node (escalating to flood
   bursts where a tree edge died); and the payload encoding
   round-trips. *)

open Helpers
module Csr = Graph_core.Csr
module Tree_pack = Graph_core.Tree_pack
module Trees = Flood.Trees
module Env = Flood.Env
module R = Topo.Registry

let csr_of ~kind ~n ~k ~seed =
  match R.build_csr_graph ~kind ~n ~k ~seed () with
  | Ok c -> c
  | Error e -> Alcotest.failf "%s(n=%d,k=%d): %s" kind n k e

let test_encoding () =
  List.iter
    (fun chunk ->
      List.iter
        (fun flood ->
          let p = Trees.encode ~chunk ~flood in
          check_int "chunk round-trips" chunk (Trees.chunk_of p);
          check_bool "flag round-trips" flood (Trees.is_flood p))
        [ false; true ])
    [ 0; 1; 7; 1 lsl 20 ]

let test_clean_run_costs_n_minus_1 () =
  List.iter
    (fun (kind, n, k) ->
      let csr = csr_of ~kind ~n ~k ~seed:7 in
      let pack = Tree_pack.pack csr ~source:0 in
      for tree = 0 to Tree_pack.count pack - 1 do
        let r = Trees.run_env ~env:(Env.make ~seed:3 ()) ~csr ~source:0 ~tree ~pack () in
        let ctx = Printf.sprintf "%s tree %d" kind tree in
        check_int (ctx ^ ": exactly n-1 messages") (n - 1) r.Trees.messages_sent;
        check_int (ctx ^ ": no fallbacks") 0 r.Trees.fallbacks;
        check_bool (ctx ^ ": full coverage") true (r.Trees.coverage_of_alive = 1.0);
        check_bool (ctx ^ ": everyone delivered") true
          (Array.for_all Fun.id r.Trees.delivered);
        check_bool (ctx ^ ": completion bounded by depth") true
          (r.Trees.completion_time > 0.0)
      done)
    [ ("kdiamond", 66, 4); ("hypercube", 32, 5); ("harary", 40, 4) ]

(* Any single failed link (⌊k/2⌋−1 = 1 for k in 4..5) leaves the
   broadcast complete: either the link was off-tree (pure tree run) or
   the upstream node escalates to a flood burst that routes around it.
   Failing a real tree edge forces the fallback path. *)
let prop_survives_link_failures =
  qcheck ~count:30 "≤ ⌊k/2⌋−1 dead links: still delivers to all alive"
    QCheck2.Gen.(triple (int_range 20 70) (int_range 4 5) (int_bound 10_000))
    (fun (n, k, seed) ->
      match R.find "kdiamond" with
      | Some e when not (e.R.admissible ~n ~k) -> true
      | _ ->
      let csr = csr_of ~kind:"kdiamond" ~n ~k ~seed in
      let source = seed mod Csr.n csr in
      let pack = Tree_pack.pack csr ~source in
      let tree = seed mod Tree_pack.count pack in
      (* fail one edge of the tree actually in use *)
      let edges = Tree_pack.edges pack ~tree in
      let u, v = List.nth edges (seed mod List.length edges) in
      let env = Env.make ~seed () |> Env.with_failed_links [ (u, v) ] in
      let r = Trees.run_env ~env ~csr ~source ~tree ~pack () in
      Array.for_all Fun.id r.Trees.delivered
      && r.Trees.fallbacks > 0
      && r.Trees.coverage_of_alive = 1.0
      && r.Trees.messages_sent > Csr.n csr - 1)

(* An off-tree failure must not disturb the tree at all. *)
let prop_off_tree_failure_is_free =
  qcheck ~count:30 "off-tree dead link: clean n-1 run"
    QCheck2.Gen.(pair (int_range 20 70) (int_bound 10_000))
    (fun (n, seed) ->
      match R.find "kdiamond" with
      | Some e when not (e.R.admissible ~n ~k:4) -> true
      | _ ->
      let csr = csr_of ~kind:"kdiamond" ~n ~k:4 ~seed in
      let n = Csr.n csr in
      let source = seed mod n in
      let pack = Tree_pack.pack csr ~source in
      if Tree_pack.count pack < 2 then true
      else begin
        (* an edge of tree 1 is never an edge of tree 0 *)
        let u, v = List.hd (Tree_pack.edges pack ~tree:1) in
        let env = Env.make ~seed () |> Env.with_failed_links [ (u, v) ] in
        let r = Trees.run_env ~env ~csr ~source ~tree:0 ~pack () in
        r.Trees.messages_sent = n - 1 && r.Trees.fallbacks = 0
        && Array.for_all Fun.id r.Trees.delivered
      end)

let test_crashed_nodes_excluded () =
  let csr = csr_of ~kind:"kdiamond" ~n:66 ~k:4 ~seed:7 in
  let pack = Tree_pack.pack csr ~source:0 in
  (* crash a leaf-ish node far from the source; coverage counts alive only *)
  let victim = 65 in
  let env = Env.make ~seed:3 () |> Env.with_crashed [ victim ] in
  let r = Trees.run_env ~env ~csr ~source:0 ~pack () in
  check_bool "victim not delivered" false r.Trees.delivered.(victim);
  check_bool "alive coverage full" true (r.Trees.coverage_of_alive = 1.0)

let test_invalid_inputs () =
  let csr = csr_of ~kind:"kdiamond" ~n:22 ~k:3 ~seed:1 in
  let env () = Env.make ~seed:1 () in
  Alcotest.check_raises "source out of range"
    (Invalid_argument "Trees.run: source out of range") (fun () ->
      ignore (Trees.run_env ~env:(env ()) ~csr ~source:22 ()));
  Alcotest.check_raises "crashed source"
    (Invalid_argument "Trees.run: source is crashed") (fun () ->
      ignore
        (Trees.run_env ~env:(env () |> Env.with_crashed [ 0 ]) ~csr ~source:0 ()));
  Alcotest.check_raises "tree out of range"
    (Invalid_argument "Trees.run: tree out of range") (fun () ->
      ignore (Trees.run_env ~env:(env ()) ~csr ~source:0 ~tree:9 ()));
  let other = Tree_pack.pack csr ~source:3 in
  Alcotest.check_raises "pack for another source"
    (Invalid_argument "Trees.run: pack is for another source") (fun () ->
      ignore (Trees.run_env ~env:(env ()) ~csr ~source:0 ~pack:other ()))

let suite =
  [
    Alcotest.test_case "payload encoding round-trips" `Quick test_encoding;
    Alcotest.test_case "clean run: n-1 messages, full coverage" `Quick
      test_clean_run_costs_n_minus_1;
    prop_survives_link_failures;
    prop_off_tree_failure_is_free;
    Alcotest.test_case "crashed nodes excluded from coverage" `Quick
      test_crashed_nodes_excluded;
    Alcotest.test_case "invalid inputs raise" `Quick test_invalid_inputs;
  ]
