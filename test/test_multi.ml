open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Multi = Flood.Multi
module Flooding = Flood.Flooding

let pub ?(t = 0.0) origin id = { Multi.origin; inject_time = t; payload_id = id }

let test_single_matches_flooding () =
  let g = petersen () in
  let m = Multi.run_env ~env:Flood.Env.default ~graph:g ~publications:[ pub 0 1 ] () in
  let f = Flooding.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  check_int "same total messages" f.Flooding.messages_sent m.Multi.total_messages;
  match m.Multi.per_message with
  | [ s ] ->
      check_int "all delivered" 10 s.Multi.delivered_count;
      Alcotest.(check (float 1e-9)) "same completion" f.Flooding.completion_time
        s.Multi.completion;
      check_bool "covers" true s.Multi.covers_all_alive
  | _ -> Alcotest.fail "one stat expected"

let test_concurrent_publications () =
  let g = Generators.cycle 12 in
  let pubs = [ pub 0 10; pub 6 20; pub 3 30 ] in
  let m = Multi.run_env ~env:Flood.Env.default ~graph:g ~publications:pubs () in
  check_bool "all covered" true m.Multi.all_covered;
  check_int "three stats" 3 (List.length m.Multi.per_message);
  (* each payload floods independently: 3x single cost *)
  let single = (Flood.Sync.flood_env ~env:Flood.Env.default g ~source:0).Flood.Sync.messages in
  check_int "3x messages" (3 * single) m.Multi.total_messages

let test_staggered_injection () =
  let g = Generators.cycle 8 in
  let m = Multi.run_env ~env:Flood.Env.default ~graph:g ~publications:[ pub ~t:0.0 0 1; pub ~t:10.0 4 2 ] () in
  (match m.Multi.per_message with
  | [ a; b ] ->
      check_int "ids ordered" 1 a.Multi.payload_id;
      check_int "ids ordered" 2 b.Multi.payload_id;
      (* completion is injection-relative: both take the cycle's 4 rounds *)
      Alcotest.(check (float 1e-9)) "first" 4.0 a.Multi.completion;
      Alcotest.(check (float 1e-9)) "second relative" 4.0 b.Multi.completion
  | _ -> Alcotest.fail "two stats");
  check_bool "covered" true m.Multi.all_covered

let test_crashes_affect_all_payloads () =
  let g = Generators.path_graph 5 in
  let m = Multi.run_env ~env:(Flood.Env.make ~crashed:[ 2 ] ()) ~graph:g ~publications:[ pub 0 1; pub 4 2 ] () in
  check_bool "neither covers" false m.Multi.all_covered;
  List.iter
    (fun s -> check_int "only own side" 2 s.Multi.delivered_count)
    m.Multi.per_message

let test_duplicate_ids_rejected () =
  let g = Generators.cycle 4 in
  Alcotest.check_raises "dup ids" (Invalid_argument "Multi.run: duplicate payload ids")
    (fun () -> ignore (Multi.run_env ~env:Flood.Env.default ~graph:g ~publications:[ pub 0 7; pub 1 7 ] ()))

let test_crashed_origin_rejected () =
  let g = Generators.cycle 4 in
  Alcotest.check_raises "crashed origin" (Invalid_argument "Multi.run: origin is crashed")
    (fun () -> ignore (Multi.run_env ~env:(Flood.Env.make ~crashed:[ 1 ] ()) ~graph:g ~publications:[ pub 1 7 ] ()))

let test_many_publications_on_lhg () =
  let b = Lhg_core.Build.kdiamond_exn ~n:26 ~k:4 in
  let g = b.Lhg_core.Build.graph in
  let pubs = List.init 10 (fun i -> pub ~t:(float_of_int i) (i * 2) i) in
  let m = Multi.run_env ~env:(Flood.Env.make ~crashed:[ 25 ] ()) ~graph:g ~publications:pubs () in
  check_bool "all covered despite crash" true m.Multi.all_covered

let suite =
  [
    Alcotest.test_case "single matches flooding" `Quick test_single_matches_flooding;
    Alcotest.test_case "concurrent publications" `Quick test_concurrent_publications;
    Alcotest.test_case "staggered injection" `Quick test_staggered_injection;
    Alcotest.test_case "crashes affect all" `Quick test_crashes_affect_all_payloads;
    Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_ids_rejected;
    Alcotest.test_case "crashed origin rejected" `Quick test_crashed_origin_rejected;
    Alcotest.test_case "many publications on LHG" `Quick test_many_publications_on_lhg;
  ]
