(* CSR snapshots must be observationally equal to the Set-backed graph
   they were frozen from: same degrees, same (sorted) neighbour rows,
   same edge membership, and BFS over either representation must agree
   — including under an [?alive] mask and across workspace reuse. *)

open Helpers
module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Bfs = Graph_core.Bfs
module Generators = Graph_core.Generators

let random_graph seed = Generators.gnp (Graph_core.Prng.create ~seed) ~n:30 ~p:0.15

(* -- unit tests on fixtures ------------------------------------------- *)

let test_empty () =
  let c = Csr.of_graph (Graph.create ~n:0) in
  check_int "n" 0 (Csr.n c);
  check_int "m" 0 (Csr.m c)

let test_petersen_basic () =
  let g = petersen () in
  let c = Csr.of_graph g in
  check_int "n" 10 (Csr.n c);
  check_int "m" 15 (Csr.m c);
  check_int "degree_sum" 30 (Csr.degree_sum c);
  for v = 0 to 9 do
    check_int "degree" (Graph.degree g v) (Csr.degree c v)
  done

let test_edges_round_trip () =
  let g = barbell () in
  let c = Csr.of_graph g in
  let acc = ref [] in
  Csr.iter_edges c (fun u v -> acc := (u, v) :: !acc);
  Alcotest.(check (list (pair int int))) "edge list" (sorted_edges g) (List.sort compare !acc)

let test_mem_edge_fixture () =
  let g = house () in
  let c = Csr.of_graph g in
  check_bool "chord present" true (Csr.mem_edge c 0 2);
  check_bool "symmetric" true (Csr.mem_edge c 2 0);
  check_bool "non-edge" false (Csr.mem_edge c 1 3)

(* -- properties: CSR vs Set agreement --------------------------------- *)

let prop_rows_sorted_and_match =
  qcheck "rows are sorted and equal the Set adjacency" QCheck2.Gen.(int_bound 1000) (fun seed ->
      let g = random_graph seed in
      let c = Csr.of_graph g in
      let ok = ref (Csr.n c = Graph.n g && Csr.m c = Graph.m g) in
      for v = 0 to Graph.n g - 1 do
        let row = Csr.fold_neighbors c v ~init:[] ~f:(fun acc w -> w :: acc) in
        let row = List.rev row in
        if row <> List.sort compare row then ok := false;
        if row <> Graph.neighbors g v then ok := false
      done;
      !ok)

let prop_mem_edge_agrees =
  qcheck "mem_edge agrees with has_edge on every pair" QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let g = random_graph seed in
      let c = Csr.of_graph g in
      let ok = ref true in
      for u = 0 to Graph.n g - 1 do
        for v = 0 to Graph.n g - 1 do
          if u <> v && Csr.mem_edge c u v <> Graph.has_edge g u v then ok := false
        done
      done;
      !ok)

let prop_bfs_distances_agree =
  qcheck "csr_distances = distances" QCheck2.Gen.(int_bound 1000) (fun seed ->
      let g = random_graph seed in
      let c = Csr.of_graph g in
      Bfs.csr_distances c ~src:0 = Bfs.distances g ~src:0)

let prop_bfs_distances_agree_masked =
  qcheck "csr_distances = distances under alive mask" QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let g = random_graph seed in
      let c = Csr.of_graph g in
      (* kill a deterministic pseudo-random subset, keeping the source *)
      let rng = Graph_core.Prng.create ~seed:(seed lxor 0x5EED) in
      let alive = Array.init (Graph.n g) (fun v -> v = 0 || Graph_core.Prng.int rng 4 > 0) in
      Bfs.csr_distances ~alive c ~src:0 = Bfs.distances ~alive g ~src:0)

let prop_bfs_parents_agree =
  qcheck "csr_distances_and_parents = distances_and_parents" QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let g = random_graph seed in
      let c = Csr.of_graph g in
      Bfs.csr_distances_and_parents c ~src:0 = Bfs.distances_and_parents g ~src:0)

let prop_workspace_reuse =
  qcheck "one workspace reused across graphs of different sizes"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let ws = Bfs.Workspace.create () in
      let sizes = [ 40; 7; 25 ] in
      List.for_all
        (fun nv ->
          let g = Generators.gnp (Graph_core.Prng.create ~seed:(seed + nv)) ~n:nv ~p:0.2 in
          let c = Csr.of_graph g in
          let expect = Bfs.distances g ~src:0 in
          let d = Bfs.csr_distances_into ws c ~src:0 in
          (* only the first [nv] entries of a workspace array are live *)
          Array.for_all (fun v -> d.(v) = expect.(v)) (Array.init nv Fun.id))
        sizes)

(* The Bigarray backend past 2^17 nodes, built straight from the LHG
   shape with no Set-backed intermediate — the million-node path, sized
   down to stay test-suite friendly. Both backends must agree row for
   row. *)
let test_big_backend_large () =
  let n = 131_074 and k = 4 in
  let big = Lhg_core.Build.build_csr_exn ~big:true Lhg_core.Build.Kdiamond ~n ~k in
  let small = Lhg_core.Build.build_csr_exn Lhg_core.Build.Kdiamond ~n ~k in
  check_bool "big backend" true (Csr.is_bigarray big);
  check_bool "ints backend" false (Csr.is_bigarray small);
  check_int "same n" (Csr.n small) (Csr.n big);
  check_int "same m" (Csr.m small) (Csr.m big);
  check_int "degree sum" (2 * Csr.m big) (Csr.degree_sum big);
  let rows_equal = ref true in
  for v = 0 to Csr.n big - 1 do
    if Csr.neighbors big v <> Csr.neighbors small v then rows_equal := false
  done;
  check_bool "identical rows" true !rows_equal;
  let d = Bfs.csr_distances big ~src:0 in
  check_bool "connected" true (Array.for_all (fun x -> x >= 0) d);
  Alcotest.(check (array int)) "BFS agrees across backends" (Bfs.csr_distances small ~src:0) d

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty;
    Alcotest.test_case "petersen basics" `Quick test_petersen_basic;
    Alcotest.test_case "edges round trip" `Quick test_edges_round_trip;
    Alcotest.test_case "mem_edge on fixture" `Quick test_mem_edge_fixture;
    prop_rows_sorted_and_match;
    prop_mem_edge_agrees;
    prop_bfs_distances_agree;
    prop_bfs_distances_agree_masked;
    prop_bfs_parents_agree;
    prop_workspace_reuse;
    Alcotest.test_case "big backend at 131k nodes" `Slow test_big_backend_large;
  ]
