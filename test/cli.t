The CLI front end, end to end: every path below dispatches through
Topo.Registry, and the flood path exercises the metrics exporter.

Generate an edge list:

  $ lhg_tool generate -t kdiamond --n 10 --k 3 | head -4
  # kdiamond n=10 m=15
  0 3
  0 6
  0 7

The kdiamond_rich kind is registered (the paper's (13,3) figure):

  $ lhg_tool generate -t kdiamond_rich --n 13 --k 3 | head -1
  # kdiamond_rich n=13 m=21

Verify accepts its own output:

  $ lhg_tool verify -t kdiamond --n 22 --k 3 | tail -1
  verdict: this graph is a Logarithmic Harary Graph

Parallel verification gives the same verdict (--jobs N runs the
checks on an N-domain pool; --jobs 0 auto-sizes from LHG_DOMAINS):

  $ lhg_tool verify --jobs 4 -t kdiamond --n 22 --k 3 | tail -1
  verdict: this graph is a Logarithmic Harary Graph
  $ LHG_DOMAINS=2 lhg_tool verify --jobs 0 -t kdiamond --n 22 --k 3 | tail -1
  verdict: this graph is a Logarithmic Harary Graph
  $ lhg_tool verify --jobs=-1 -t kdiamond --n 22 --k 3
  error: --jobs must be >= 0
  [1]

An unknown kind reports the catalogue and fails:

  $ lhg_tool generate -t moebius --n 10 --k 3
  error: unknown kind "moebius" (expected one of: ktree, kdiamond, kdiamond_rich, jd, harary, hypercube, expander, cycle, complete)
  [1]

Inadmissible parameters report the registry's requirement:

  $ lhg_tool generate -t hypercube --n 10 --k 3
  error: hypercube needs n = 2^k
  [1]

Flood with JSON metrics: the whole stdout is one JSON document carrying
rounds, message counters, drop counters and completion percentiles.

  $ lhg_tool flood --metrics json -t kdiamond --n 46 --k 4 > metrics.json
  $ grep -o '"schema": "lhg-obs/1"' metrics.json
  "schema": "lhg-obs/1"
  $ grep -o '"flood.rounds": [0-9.]*' metrics.json
  "flood.rounds": 4
  $ grep -o '"net.sent": [0-9]*' metrics.json
  "net.sent": 147
  $ grep -o '"net.dropped_link": [0-9]*' metrics.json
  "net.dropped_link": 0
  $ grep -A 6 '"flood.completion"' metrics.json | grep -o '"p95": [0-9.]*'
  "p95": 4
  $ grep -c '"round-start"' metrics.json
  5

The metrics subcommand replays a run in text form:

  $ lhg_tool metrics --protocol flood -t kdiamond --n 22 --k 3 --format text | head -5
  metrics @ virtual time 5
  counters:
    sim.events                       45
    net.dropped_random               0
    net.dropped_crash                0
