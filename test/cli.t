The CLI front end, end to end: every path below dispatches through
Topo.Registry, and the flood path exercises the metrics exporter.

Generate an edge list:

  $ lhg_tool generate -t kdiamond --n 10 --k 3 | head -4
  # kdiamond n=10 m=15
  0 3
  0 6
  0 7

The kdiamond_rich kind is registered (the paper's (13,3) figure):

  $ lhg_tool generate -t kdiamond_rich --n 13 --k 3 | head -1
  # kdiamond_rich n=13 m=21

Verify accepts its own output:

  $ lhg_tool verify -t kdiamond --n 22 --k 3 | tail -1
  verdict: this graph is a Logarithmic Harary Graph

Parallel verification gives the same verdict (--jobs N runs the
checks on an N-domain pool; --jobs 0 auto-sizes from LHG_DOMAINS):

  $ lhg_tool verify --jobs 4 -t kdiamond --n 22 --k 3 | tail -1
  verdict: this graph is a Logarithmic Harary Graph
  $ LHG_DOMAINS=2 lhg_tool verify --jobs 0 -t kdiamond --n 22 --k 3 | tail -1
  verdict: this graph is a Logarithmic Harary Graph
  $ lhg_tool verify --jobs=-1 -t kdiamond --n 22 --k 3
  error: --jobs must be >= 0
  [1]

An unknown kind reports the catalogue and fails:

  $ lhg_tool generate -t moebius --n 10 --k 3
  error: unknown kind "moebius" (expected one of: ktree, kdiamond, kdiamond_rich, jd, harary, hypercube, expander, random_regular, cycle, complete)
  [1]

Inadmissible parameters report the registry's requirement:

  $ lhg_tool generate -t hypercube --n 10 --k 3
  error: hypercube needs n = 2^k
  [1]

Flood with JSON metrics: the whole stdout is one JSON document carrying
rounds, message counters, drop counters and completion percentiles.

  $ lhg_tool flood --metrics json -t kdiamond --n 46 --k 4 > metrics.json
  $ grep -o '"schema": "lhg-obs/1"' metrics.json
  "schema": "lhg-obs/1"
  $ grep -o '"flood.rounds": [0-9.]*' metrics.json
  "flood.rounds": 4
  $ grep -o '"net.sent": [0-9]*' metrics.json
  "net.sent": 147
  $ grep -o '"net.dropped_link": [0-9]*' metrics.json
  "net.dropped_link": 0
  $ grep -A 6 '"flood.completion"' metrics.json | grep -o '"p95": [0-9.]*'
  "p95": 4
  $ grep -c '"round-start"' metrics.json
  5

The metrics subcommand replays a run in text form:

  $ lhg_tool metrics --protocol flood -t kdiamond --n 22 --k 3 --format text | head -5
  metrics @ virtual time 5
  counters:
    sim.events                       45
    net.dropped_queue                0
    net.dropped_random               0

Chaos audit: sweep adversarial fault plans against the flood and check
the k-1 boundary empirically. Every plan of weight <= k-1 must deliver;
the k-fault min-cut plan breaks the flood and is reported as a witness.

  $ lhg_tool chaos -t kdiamond --n 22 --k 3 -a min-cut
  chaos audit: kdiamond(n=22, k=3) from source 0
    adversary: min-cut, 10 plans, seed 1
    faults  plans  complete  stochastic
         0      1         1           0
         1      3         3           0
         2      3         3           0
         3      3         1           0
  boundary: OK - every deterministic plan with <= 2 faults delivered
  witness (plan 7, 3 faults): crashed 3 6 9; links down (none); unreached 1 2 4 5 7 8 10 11 12 13 14 15 16 17 18 19 20 21

The sweep is deterministic: the same seed on a 4-domain pool reproduces
the sequential report byte for byte.

  $ lhg_tool chaos -t kdiamond --n 22 --k 3 -a min-cut --metrics json > chaos.json
  $ lhg_tool chaos --jobs 4 -t kdiamond --n 22 --k 3 -a min-cut --metrics json > chaos4.json
  $ cmp chaos.json chaos4.json && grep -o '"schema": "lhg-chaos/1"' chaos.json
  "schema": "lhg-chaos/1"
  $ grep -o '"boundary_ok": [a-z]*' chaos.json
  "boundary_ok": true

A plan file replaces the generated sweep:

  $ printf '0 crash 3\n0 crash 6\n' > two.plan
  $ lhg_tool chaos -t kdiamond --n 22 --k 3 --plan two.plan | tail -2
         2      1         1           0
  boundary: OK - every deterministic plan with <= 2 faults delivered

Bad inputs fail with a diagnosis:

  $ lhg_tool chaos -t kdiamond --n 22 --k 3 -a gremlins
  error: unknown adversary "gremlins" (expected min-cut, min-edge-cut, high-degree, random, dynamic)
  [1]
  $ printf '0 crash 99\n' > bad.plan
  $ lhg_tool chaos -t kdiamond --n 22 --k 3 --plan bad.plan
  error: Audit.run: plan 0: crash: vertex 99 out of range [0,22)
  [1]

The reconfiguration controller: batch a churn trace into epochs, pick
repair or rebuild per epoch by diff cost, and re-verify each commit via
the certificate cache.

  $ lhg_tool controller -t kdiamond --n 24 --k 4 --steps 12 --batch 6
  epoch 0: n 24 -> 22 via repair (cost 30; repair 30 vs rebuild 74), 6 applied, 0 rejected, verified (cached)
  epoch 1: n 22 -> 22 via repair (cost 0; repair 0 vs rebuild 84), 6 applied, 0 rejected, verified (cached)
  controller: 2 epochs, 12 events applied, final n=22, all epochs verified

A trace file drives explicit requests, and --chaos audits every epoch's
overlay against an adversarial fault sweep:

  $ printf 'join\njoin\nleave\nresize 20\n' > reconfig.trace
  $ lhg_tool controller -t kdiamond --n 16 --k 3 --trace reconfig.trace --batch 2 --chaos min-cut
  epoch 0: n 16 -> 18 via repair (cost 9; repair 9 vs rebuild 37), 2 applied, 0 rejected, verified (cached), chaos boundary ok
  epoch 1: n 18 -> 20 via repair (cost 7; repair 7 vs rebuild 47), 2 applied, 0 rejected, verified (cached), chaos boundary ok
  controller: 2 epochs, 4 events applied, final n=20, all epochs verified

JSON output is one lhg-reconfig/1 document, byte-identical at any
--jobs count:

  $ lhg_tool controller --metrics json -t kdiamond --n 24 --k 4 --steps 20 > reconfig.json
  $ lhg_tool controller --metrics json --jobs 4 -t kdiamond --n 24 --k 4 --steps 20 > reconfig4.json
  $ cmp reconfig.json reconfig4.json && grep -c '"schema": "lhg-reconfig/1"' reconfig.json
  4
  $ grep -o '"strategy": "[a-z]*"' reconfig.json | sort -u
  "strategy": "repair"
  $ grep -o '"all_verified": [a-z]*' reconfig.json
  "all_verified": true

Bad controller inputs fail with a diagnosis:

  $ lhg_tool controller -t hypercube --n 16 --k 4
  error: controller supports kinds ktree, kdiamond, jd, harary
  [1]
  $ printf 'join\nfrobnicate\n' > bad.trace
  $ lhg_tool controller -t kdiamond --n 16 --k 3 --trace bad.trace
  error: trace line 2: unknown request "frobnicate"
  [1]
  $ lhg_tool controller -t kdiamond --n 16 --k 3 --chaos gremlins
  error: unknown adversary "gremlins" (expected min-cut, min-edge-cut, high-degree, random, dynamic)
  [1]

Sustained traffic: multi-source chunk streams over (optionally)
capacity-limited links. The exit code is the SLO verdict — with the
default --min-delivery 1.0 a clean stream exits 0:

  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --seed 2 --sources 2 --chunks 3 --rate 0.1
  traffic kdiamond(n=22, k=3): 2 sources x 3 chunks, periodic rate 0.1, flood
    wire messages:      270
    deliveries:         126
    dropped q/l/c/r:    0/0/0/0
    duration:           36.00
    throughput:         3.500 msgs/unit
    delivery fraction:  1.0000
    delay p50/p95/p99:  3.00/4.00/5.00
    max queue backlog:  0
    SLO:                ok

A tight drop-tail queue under the same load sheds messages, misses the
delivery SLO and exits 1:

  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --seed 2 --sources 2 --chunks 3 --rate 0.1 --capacity 0.05 --queue-cap 1 --min-delivery 0.999
  traffic kdiamond(n=22, k=3): 2 sources x 3 chunks, periodic rate 0.1, flood
    wire messages:      184
    deliveries:         83
    dropped q/l/c/r:    20/0/0/0
    duration:           156.00
    throughput:         0.532 msgs/unit
    delivery fraction:  0.6742
    delay p50/p95/p99:  63.00/84.00/105.00
    max queue backlog:  0
    hottest links:      0->3(1) 0->6(1) 0->9(1) 1->7(1) 4->13(1)
    SLO:                VIOLATED
  [1]

Block policy trades the loss for queueing delay — nothing is dropped,
everything still covers:

  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --seed 2 --sources 2 --chunks 3 --rate 0.1 --capacity 0.05 --queue-cap 1 --queue-policy block
  traffic kdiamond(n=22, k=3): 2 sources x 3 chunks, periodic rate 0.1, flood
    wire messages:      270
    deliveries:         126
    dropped q/l/c/r:    0/0/0/0
    duration:           215.00
    throughput:         0.586 msgs/unit
    delivery fraction:  1.0000
    delay p50/p95/p99:  73.00/124.00/144.00
    max queue backlog:  2
    hottest links:      5->14(2) 8->17(2) 9->19(2) 14->21(2) 15->4(2)
    SLO:                ok

The random-regular competitor (configuration model) rides the same
registry, so the LHG-vs-random comparison is one flag away:

  $ lhg_tool traffic -t random_regular --n 22 --k 3 --seed 2 --sources 2 --chunks 3 --rate 0.1 --capacity 0.05 --queue-cap 1 --queue-policy block
  traffic random_regular(n=22, k=3): 2 sources x 3 chunks, periodic rate 0.1, flood
    wire messages:      270
    deliveries:         126
    dropped q/l/c/r:    0/0/0/0
    duration:           215.00
    throughput:         0.586 msgs/unit
    delivery fraction:  1.0000
    delay p50/p95/p99:  83.00/124.00/143.00
    max queue backlog:  3
    hottest links:      7->2(3) 10->13(3) 0->1(2) 0->8(2) 9->6(2)
    SLO:                ok

Tree-striped dissemination rides the packed edge-disjoint spanning
trees instead of re-flooding: n-1 messages per chunk (126 = 6 x 21
against 270 flooded) at the same full coverage:

  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --seed 2 --sources 2 --chunks 3 --rate 0.1 --dissemination trees
  traffic kdiamond(n=22, k=3): 2 sources x 3 chunks, periodic rate 0.1, trees
    wire messages:      126
    deliveries:         126
    dropped q/l/c/r:    0/0/0/0
    duration:           35.00
    throughput:         3.600 msgs/unit
    delivery fraction:  1.0000
    delay p50/p95/p99:  3.00/4.00/5.00
    max queue backlog:  0
    tree fallbacks:     0
    SLO:                ok

Gossip is the randomized baseline in between — fanout-limited push
with a TTL:

  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --seed 2 --sources 2 --chunks 3 --rate 0.1 --dissemination gossip --min-delivery 0.9
  traffic kdiamond(n=22, k=3): 2 sources x 3 chunks, periodic rate 0.1, gossip
    wire messages:      396
    deliveries:         126
    dropped q/l/c/r:    0/0/0/0
    duration:           36.00
    throughput:         3.500 msgs/unit
    delivery fraction:  1.0000
    delay p50/p95/p99:  3.00/4.00/5.00
    max queue backlog:  0
    SLO:                ok

A chaos plan scheduled mid-stream degrades the stream and reports the
time to run clean again after the last fault:

  $ printf '12 crash 5\n30 recover 5\n' > mid.plan
  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --seed 2 --sources 2 --chunks 3 --rate 0.1 --plan mid.plan --min-delivery 0.9
  traffic kdiamond(n=22, k=3): 2 sources x 3 chunks, periodic rate 0.1, flood
    wire messages:      262
    deliveries:         122
    dropped q/l/c/r:    0/0/12/0
    duration:           36.00
    throughput:         3.389 msgs/unit
    delivery fraction:  0.9697
    delay p50/p95/p99:  3.00/5.00/7.00
    max queue backlog:  0
    recovery time:      22.00
    SLO:                ok

JSON output is one lhg-traffic/1 document, byte-identical at any
--jobs count and on either event engine:

  $ lhg_tool traffic --metrics json -t kdiamond --n 22 --k 3 --seed 2 --capacity 0.5 --queue-cap 2 > traffic.json
  $ lhg_tool traffic --metrics json --jobs 4 -t kdiamond --n 22 --k 3 --seed 2 --capacity 0.5 --queue-cap 2 > traffic4.json
  $ lhg_tool traffic --metrics json --engine heap -t kdiamond --n 22 --k 3 --seed 2 --capacity 0.5 --queue-cap 2 > traffich.json
  $ cmp traffic.json traffic4.json && cmp traffic.json traffich.json && grep -o '"schema": "lhg-traffic/1"' traffic.json
  "schema": "lhg-traffic/1"

Bad traffic inputs fail with a diagnosis:

  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --sources 30
  error: source_count 30 exceeds n = 22
  [1]
  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --plan nosuch.plan
  error: nosuch.plan: No such file or directory
  [1]
  $ lhg_tool traffic -t kdiamond --n 22 --k 3 --rate 0
  error: rate must be a positive finite number of chunks per time unit
  [1]

Churn under load: the scenario subcommand pre-plays a controller
trace into epochs, freezes the union topology, and streams the
workload through the reconfigurations — leavers crash, joiners
recover, trees re-stripe incrementally (a repair-only trace never
falls back to a full re-pack), and with --bands > 1 each commit
floods a band-0 control notice past the data backlog. Exit 0 iff the
SLOs hold and every epoch verified:

  $ lhg_tool scenario -t kdiamond --n 24 --k 4 --sources 2 --chunks 40 --rate 0.5 --dissemination trees --capacity 2 --bands 2 --steps 12 --batch 3 --epoch-interval 30 --min-delivery 0.9
  scenario kdiamond(n=24, k=4): 2 sources x 40 chunks, trees, 4 epochs every 30
    epochs applied:     4 (4 repair / 0 rebuild), union n 24
    all verified:       true
    restripe:           8 patched, 0 repacked
    control messages:   392
    deliveries:         1690
    delivery fraction:  0.9971
    delay p50/p95/p99:  4.50/12.50/16.50
    duration:           124.50
    recovery time:      -1.00
    SLO:                ok

The lhg-scenario/1 document is byte-identical at any --jobs count and
on either event engine (the controller pre-play is pure graph work,
the driver is deterministic):

  $ lhg_tool scenario --metrics json -t kdiamond --n 24 --k 4 --sources 2 --chunks 20 --rate 0.5 --dissemination trees --capacity 2 --bands 2 --steps 12 --batch 3 --epoch-interval 30 --min-delivery 0.9 > scen.json
  $ lhg_tool scenario --metrics json --jobs 4 -t kdiamond --n 24 --k 4 --sources 2 --chunks 20 --rate 0.5 --dissemination trees --capacity 2 --bands 2 --steps 12 --batch 3 --epoch-interval 30 --min-delivery 0.9 > scen4.json
  $ lhg_tool scenario --metrics json --engine heap -t kdiamond --n 24 --k 4 --sources 2 --chunks 20 --rate 0.5 --dissemination trees --capacity 2 --bands 2 --steps 12 --batch 3 --epoch-interval 30 --min-delivery 0.9 > scenh.json
  $ cmp scen.json scen4.json && cmp scen.json scenh.json && grep -o '"schema": "lhg-scenario/1"' scen.json
  "schema": "lhg-scenario/1"

Bad scenario inputs fail with the shared validation wording:

  $ lhg_tool scenario -t cycle --n 10 --k 2
  error: scenario supports kinds ktree, kdiamond, jd, harary
  [1]
  $ lhg_tool scenario -t kdiamond --n 24 --k 4 --epoch-interval 0
  error: --epoch-interval must be a positive finite time
  [1]

Self-assembly: n nodes gossip membership over a complete substrate,
elect slots from the shape arithmetic and link up into the target LHG
— no coordinator. Exit 0 iff the run converged and the realized
overlay verifies:

  $ lhg_tool assemble --n 10 --k 3 -t ktree
  assembled ktree(n=10, k=3) seed 1
    converged:          true
    verified:           true
    matches target:     true
    rounds:             8 (gossip 6)
    duration:           27.00
    messages:           180 (push 53, reply 53, req 37, ack 30, nack 7)
    freezes/unfreezes:  10/0
    deaths declared:    0
    views interned:     47
    final members:      10 (0 declared dead, 0 crashed)

Mid-assembly crashes are detected by link timeout, gossiped as deaths
and repaired by re-election — the survivors still converge:

  $ lhg_tool assemble --n 46 --k 4 --crashes 2 --certify
  assembled kdiamond(n=46, k=4) seed 1
    converged:          true
    verified:           true
    matches target:     true
    certified:          true
    rounds:             23 (gossip 21)
    duration:           72.00
    messages:           2053 (push 540, reply 526, req 498, ack 352, nack 137)
    freezes/unfreezes:  91/47
    deaths declared:    8
    views interned:     269
    final members:      44 (2 declared dead, 2 crashed)

The lhg-assemble/1 document is byte-identical at any --jobs count and
on either event engine:

  $ lhg_tool assemble --metrics json --n 46 --k 4 --crashes 2 > asm.json
  $ lhg_tool assemble --metrics json --jobs 4 --n 46 --k 4 --crashes 2 > asm4.json
  $ lhg_tool assemble --metrics json --engine heap --n 46 --k 4 --crashes 2 > asmh.json
  $ cmp asm.json asm4.json && cmp asm.json asmh.json && grep -o '"schema": "lhg-assemble/1"' asm.json
  "schema": "lhg-assemble/1"

Assembly needs the construction itself, not just a realized graph, so
plain families are rejected; bad fault counts too:

  $ lhg_tool assemble --n 46 --k 4 -t cycle
  error: cycle is not an LHG construction (expected one of: ktree, kdiamond, kdiamond_rich, jd)
  [1]
  $ lhg_tool assemble --n 46 --k 4 --crashes 46
  error: --crashes must be >= 0 and < n
  [1]
