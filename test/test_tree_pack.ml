(* Tree_pack: edge-disjoint spanning trees out of a frozen CSR.

   The load-bearing properties, per ISSUE 8: every packed tree spans
   all n vertices along real CSR edges, the trees are pairwise
   edge-disjoint (so no vertex spends more than its degree), packing is
   deterministic, and the structured k-connected families yield the
   full ⌊k/2⌋ trees without backoff. *)

open Helpers
module Csr = Graph_core.Csr
module Graph = Graph_core.Graph
module Tree_pack = Graph_core.Tree_pack
module R = Topo.Registry

let csr_of ~kind ~n ~k ~seed =
  match R.build_csr_graph ~kind ~n ~k ~seed () with
  | Ok c -> c
  | Error e -> Alcotest.failf "%s(n=%d,k=%d): %s" kind n k e

(* Walk one tree of a packing and fail on any structural lie: a parent
   edge missing from the CSR, a depth that is not parent-depth + 1, a
   child listing that disagrees with the parent array, or a vertex the
   tree never reaches. Returns the tree's undirected edge set. *)
let check_tree ~ctx csr pack ~tree =
  let n = Tree_pack.n pack in
  let source = Tree_pack.source pack in
  let edges = Hashtbl.create n in
  let reached = ref 1 in
  if Tree_pack.parent pack ~tree source <> -1 then
    Alcotest.failf "%s: tree %d source has a parent" ctx tree;
  for v = 0 to n - 1 do
    let p = Tree_pack.parent pack ~tree v in
    if v <> source then begin
      if p < 0 then Alcotest.failf "%s: tree %d misses vertex %d" ctx tree v;
      if not (Csr.mem_edge csr p v) then
        Alcotest.failf "%s: tree %d edge (%d,%d) not in the graph" ctx tree p v;
      if Tree_pack.depth pack ~tree v <> Tree_pack.depth pack ~tree p + 1 then
        Alcotest.failf "%s: tree %d depth broken at %d" ctx tree v;
      Hashtbl.replace edges (min p v, max p v) ();
      incr reached
    end
  done;
  if !reached <> n then Alcotest.failf "%s: tree %d spans %d/%d" ctx tree !reached n;
  (* the children view must be the exact inverse of the parent view *)
  let listed = ref 0 in
  for v = 0 to n - 1 do
    Tree_pack.iter_children pack ~tree ~node:v (fun ~child ~eidx ->
        incr listed;
        if Tree_pack.parent pack ~tree child <> v then
          Alcotest.failf "%s: tree %d lists %d under %d wrongly" ctx tree child v;
        if eidx <> Csr.edge_index csr v child then
          Alcotest.failf "%s: tree %d eidx wrong for (%d,%d)" ctx tree v child)
  done;
  if !listed <> n - 1 then
    Alcotest.failf "%s: tree %d children list %d <> %d" ctx tree !listed (n - 1);
  edges

let check_pack ~ctx csr pack =
  let count = Tree_pack.count pack in
  let all = Hashtbl.create (Csr.m csr) in
  for t = 0 to count - 1 do
    let edges = check_tree ~ctx csr pack ~tree:t in
    Hashtbl.iter
      (fun e () ->
        if Hashtbl.mem all e then
          Alcotest.failf "%s: edge (%d,%d) in two trees" ctx (fst e) (snd e);
        Hashtbl.replace all e ())
      edges
  done

(* Every registry family: each admissible member yields a packing of
   spanning, pairwise edge-disjoint trees from an arbitrary source. *)
let prop_pack_all_families =
  qcheck ~count:20 "every family: spanning + edge-disjoint + in-graph"
    QCheck2.Gen.(triple (int_range 8 30) (int_range 2 5) (int_bound 10_000))
    (fun (n, k, seed) ->
      List.iter
        (fun e ->
          if e.R.admissible ~n ~k then begin
            let csr = csr_of ~kind:e.R.name ~n ~k ~seed in
            let source = seed mod Csr.n csr in
            let ctx = Printf.sprintf "%s(n=%d,k=%d) src=%d" e.R.name n k source in
            check_pack ~ctx csr (Tree_pack.pack csr ~source)
          end)
        R.all;
      true)

(* Determinism: packing is a pure function of (csr, source, count). *)
let prop_deterministic =
  qcheck ~count:20 "pack is deterministic"
    QCheck2.Gen.(pair (int_range 10 40) (int_bound 1_000))
    (fun (n, seed) ->
      let csr = csr_of ~kind:"kdiamond" ~n ~k:4 ~seed in
      let source = seed mod n in
      let a = Tree_pack.pack csr ~source and b = Tree_pack.pack csr ~source in
      Tree_pack.count a = Tree_pack.count b
      && List.for_all
           (fun t -> Tree_pack.edges a ~tree:t = Tree_pack.edges b ~tree:t)
           (List.init (Tree_pack.count a) Fun.id))

let test_full_count_on_structured () =
  (* the k-connected families admit the full ⌊k/2⌋ trees: no backoff *)
  List.iter
    (fun (kind, n, k) ->
      let csr = csr_of ~kind ~n ~k ~seed:7 in
      let pack = Tree_pack.pack csr ~source:0 in
      check_int (Printf.sprintf "%s(n=%d,k=%d) tree count" kind n k) (k / 2)
        (Tree_pack.count pack);
      check_pack ~ctx:kind csr pack)
    [ ("kdiamond", 66, 4); ("kdiamond", 130, 5); ("hypercube", 64, 6); ("harary", 40, 4) ]

let test_depth_accessors () =
  let csr = csr_of ~kind:"kdiamond" ~n:66 ~k:4 ~seed:7 in
  let pack = Tree_pack.pack csr ~source:0 in
  for t = 0 to Tree_pack.count pack - 1 do
    let maxd = ref 0 in
    for v = 0 to Tree_pack.n pack - 1 do
      maxd := max !maxd (Tree_pack.depth pack ~tree:t v)
    done;
    check_int "max_depth matches depths" !maxd (Tree_pack.max_depth pack ~tree:t)
  done

let test_count_override_and_backoff () =
  let csr = csr_of ~kind:"kdiamond" ~n:66 ~k:4 ~seed:7 in
  check_int "count:1 honoured" 1 (Tree_pack.count (Tree_pack.pack ~count:1 csr ~source:3));
  (* a cycle holds exactly one spanning tree; asking for 3 backs off *)
  let ring = csr_of ~kind:"cycle" ~n:12 ~k:2 ~seed:0 in
  check_int "cycle backs off to 1" 1 (Tree_pack.count (Tree_pack.pack ~count:3 ring ~source:0));
  check_pack ~ctx:"cycle" ring (Tree_pack.pack ~count:3 ring ~source:0)

let test_invalid_inputs () =
  let csr = csr_of ~kind:"kdiamond" ~n:22 ~k:3 ~seed:1 in
  Alcotest.check_raises "source out of range"
    (Invalid_argument "Tree_pack.pack: source out of range") (fun () ->
      ignore (Tree_pack.pack csr ~source:22));
  Alcotest.check_raises "bad count" (Invalid_argument "Tree_pack.pack: count must be >= 1")
    (fun () -> ignore (Tree_pack.pack ~count:0 csr ~source:0));
  let disconnected = Csr.of_graph (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]) in
  Alcotest.check_raises "disconnected graph"
    (Invalid_argument "Tree_pack.pack: graph is not connected") (fun () ->
      ignore (Tree_pack.pack disconnected ~source:0))

let test_pack_all_matches_pack () =
  let csr = csr_of ~kind:"kdiamond" ~n:66 ~k:4 ~seed:7 in
  let sources = [ 0; 13; 33; 61 ] in
  let seq = Tree_pack.pack_all csr ~sources in
  let pool = Par.Pool.create ~domains:3 in
  let par =
    Fun.protect
      ~finally:(fun () -> Par.Pool.shutdown pool)
      (fun () -> Tree_pack.pack_all ~pool csr ~sources)
  in
  List.iteri
    (fun i s ->
      check_int "source" s (Tree_pack.source seq.(i));
      for t = 0 to Tree_pack.count seq.(i) - 1 do
        check_bool "pool-invariant edges" true
          (Tree_pack.edges seq.(i) ~tree:t = Tree_pack.edges par.(i) ~tree:t)
      done)
    sources

(* Masked-pack validator for the re-stripe properties: every tree
   spans exactly the member set from the source over usable in-graph
   edges, depths are consistent, non-members stay outside, and no
   undirected edge serves two trees. *)
let masked_pack_ok csr p ~member ~usable =
  let n = Tree_pack.n p in
  let source = Tree_pack.source p in
  let ok = ref true in
  let all = Hashtbl.create 64 in
  for t = 0 to Tree_pack.count p - 1 do
    let reached = ref 1 in
    for v = 0 to n - 1 do
      let pa = Tree_pack.parent p ~tree:t v in
      if v = source || not member.(v) then begin
        if pa <> -1 then ok := false
      end
      else if
        pa < 0
        || (not member.(pa))
        || (not (Csr.mem_edge csr pa v))
        || (not (usable (Csr.edge_index csr pa v)))
        || (not (usable (Csr.edge_index csr v pa)))
        || Tree_pack.depth p ~tree:t v <> Tree_pack.depth p ~tree:t pa + 1
      then ok := false
      else begin
        incr reached;
        let e = (min pa v, max pa v) in
        if Hashtbl.mem all e then ok := false else Hashtbl.replace all e ()
      end
    done;
    if !reached <> Tree_pack.members p then ok := false
  done;
  !ok

(* Incremental re-stripe under random epoch-shaped diffs (a few
   leavers, a few dead links): a successful patch is structurally a
   masked pack at the original count — spanning the survivors,
   edge-disjoint, deterministic — and agrees with a fresh masked pack
   on feasibility and tree count; a [None] means the count genuinely
   became infeasible (the fresh pack backs off or the subgraph is
   disconnected). *)
let prop_patch_valid_and_tracks_fresh =
  qcheck ~count:30 "patch: spanning + edge-disjoint + tracks fresh masked pack"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rngv = Graph_core.Prng.create ~seed in
      let module Prng = Graph_core.Prng in
      let k = 4 in
      let n = (2 * k) + 6 + Prng.int rngv 40 in
      let csr = csr_of ~kind:"kdiamond" ~n ~k ~seed:(seed land 0xFFF) in
      let source = Prng.int rngv n in
      let base = Tree_pack.pack csr ~source in
      let member = Array.make n true in
      let leavers = Prng.int rngv 3 in
      let placed = ref 0 and tries = ref 0 in
      while !placed < leavers && !tries < 100 do
        incr tries;
        let v = Prng.int rngv n in
        if v <> source && member.(v) then begin
          member.(v) <- false;
          incr placed
        end
      done;
      let edges = ref [] in
      Csr.iter_edges csr (fun u v -> edges := (u, v) :: !edges);
      let edges = Array.of_list !edges in
      let dead = Hashtbl.create 8 in
      for _ = 1 to Prng.int rngv 3 do
        let u, v = edges.(Prng.int rngv (Array.length edges)) in
        Hashtbl.replace dead (Csr.edge_index csr u v) ();
        Hashtbl.replace dead (Csr.edge_index csr v u) ()
      done;
      let usable e = not (Hashtbl.mem dead e) in
      let members = Array.fold_left (fun a b -> if b then a + 1 else a) 0 member in
      match Tree_pack.patch base csr ~member ~usable () with
      | None -> (
          match Tree_pack.pack ~member ~usable csr ~source with
          | fresh -> Tree_pack.count fresh < Tree_pack.count base
          | exception Invalid_argument _ -> true)
      | Some p ->
          let again =
            match Tree_pack.patch base csr ~member ~usable () with
            | Some q -> q
            | None -> Alcotest.fail "patch not deterministic: second run refused"
          in
          let fresh = Tree_pack.pack ~count:(Tree_pack.count base) ~member ~usable csr ~source in
          Tree_pack.count p = Tree_pack.count base
          && Tree_pack.count fresh = Tree_pack.count p
          && Tree_pack.members p = members
          && masked_pack_ok csr p ~member ~usable
          && List.for_all
               (fun t -> Tree_pack.edges p ~tree:t = Tree_pack.edges again ~tree:t)
               (List.init (Tree_pack.count p) Fun.id))

let test_patch_noop_and_errors () =
  let csr = csr_of ~kind:"kdiamond" ~n:40 ~k:4 ~seed:3 in
  let p = Tree_pack.pack csr ~source:2 in
  (* a diff that invalidates nothing returns the pack physically unchanged *)
  (match Tree_pack.patch p csr ~member:(Array.make 40 true) () with
  | Some q -> check_bool "no-op patch is physically the same pack" true (q == p)
  | None -> Alcotest.fail "no-op patch refused");
  let other = csr_of ~kind:"kdiamond" ~n:42 ~k:4 ~seed:3 in
  Alcotest.check_raises "wrong snapshot size"
    (Invalid_argument "Tree_pack.patch: CSR size does not match the pack") (fun () ->
      ignore (Tree_pack.patch p other ()));
  let masked_out = Array.make 40 true in
  masked_out.(2) <- false;
  Alcotest.check_raises "source masked out"
    (Invalid_argument "Tree_pack.patch: source is not a member") (fun () ->
      ignore (Tree_pack.patch p csr ~member:masked_out ()))

let test_cache_reuse () =
  let csr = csr_of ~kind:"kdiamond" ~n:66 ~k:4 ~seed:7 in
  let cache = Tree_pack.Cache.create () in
  let a = Tree_pack.Cache.get cache csr ~source:5 in
  let b = Tree_pack.Cache.get cache csr ~source:5 in
  check_bool "same csr hits the cache" true (a == b);
  let all = Tree_pack.Cache.get_all cache csr ~sources:[ 9; 5; 9 ] in
  check_bool "get_all reuses cached packs" true (all.(1) == a);
  check_bool "duplicate sources share one pack" true (all.(0) == all.(2));
  (* a different snapshot resets the cache even at equal dimensions *)
  let csr' = csr_of ~kind:"kdiamond" ~n:66 ~k:4 ~seed:7 in
  let c = Tree_pack.Cache.get cache csr' ~source:5 in
  check_bool "new snapshot -> fresh pack" true (c != a)

let suite =
  [
    prop_pack_all_families;
    prop_deterministic;
    Alcotest.test_case "structured families give ⌊k/2⌋ trees" `Quick test_full_count_on_structured;
    Alcotest.test_case "depth accessors agree" `Quick test_depth_accessors;
    Alcotest.test_case "count override + backoff" `Quick test_count_override_and_backoff;
    Alcotest.test_case "invalid inputs raise" `Quick test_invalid_inputs;
    Alcotest.test_case "pack_all: pool-invariant" `Quick test_pack_all_matches_pack;
    prop_patch_valid_and_tracks_fresh;
    Alcotest.test_case "patch: no-op + errors" `Quick test_patch_noop_and_errors;
    Alcotest.test_case "cache reuse + reset" `Quick test_cache_reuse;
  ]
