open Helpers
module Graph = Graph_core.Graph
module Diff = Overlay.Diff
module Membership = Overlay.Membership
module Churn = Overlay.Churn

let test_diff_identical () =
  let g = petersen () in
  let d = Diff.edges ~old_graph:g ~new_graph:(Graph.copy g) in
  check_int "no cost" 0 (Diff.cost d);
  check_int "all kept" (Graph.m g) d.Diff.kept

let test_diff_disjoint () =
  let a = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let b = Graph.of_edges ~n:4 [ (0, 2); (1, 3) ] in
  let d = Diff.edges ~old_graph:a ~new_graph:b in
  Alcotest.(check (list (pair int int))) "added" [ (0, 2); (1, 3) ] d.Diff.added;
  Alcotest.(check (list (pair int int))) "removed" [ (0, 1); (2, 3) ] d.Diff.removed;
  check_int "kept" 0 d.Diff.kept;
  check_int "cost" 4 (Diff.cost d)

let test_diff_partial_overlap () =
  let a = Graph.of_edges ~n:4 [ (0, 1); (1, 2) ] in
  let b = Graph.of_edges ~n:5 [ (1, 2); (3, 4) ] in
  let d = Diff.edges ~old_graph:a ~new_graph:b in
  Alcotest.(check (list (pair int int))) "added" [ (3, 4) ] d.Diff.added;
  Alcotest.(check (list (pair int int))) "removed" [ (0, 1) ] d.Diff.removed;
  check_int "kept" 1 d.Diff.kept

let test_membership_create () =
  (match Membership.create ~family:Membership.Kdiamond ~k:3 ~n:10 with
  | Ok o ->
      check_int "n" 10 (Membership.n o);
      check_int "k" 3 (Membership.k o);
      check_bool "witness present" true (Membership.witness o <> None)
  | Error e -> Alcotest.fail (Overlay.Error.to_string e));
  match Membership.create ~family:Membership.Harary_classic ~k:3 ~n:10 with
  | Ok o -> check_bool "no witness for harary" true (Membership.witness o = None)
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)

let test_membership_create_too_small () =
  match Membership.create ~family:Membership.Ktree ~k:4 ~n:7 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "n < 2k must fail"

let test_join_grows_and_stays_lhg () =
  match Membership.create ~family:Membership.Kdiamond ~k:3 ~n:8 with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok o ->
      for expected = 9 to 20 do
        (match Membership.join o with
        | Ok d -> check_bool "positive cost" true (Diff.cost d > 0)
        | Error e -> Alcotest.fail (Overlay.Error.to_string e));
        check_int "size" expected (Membership.n o);
        check_bool "still k-connected" true
          (Graph_core.Connectivity.is_k_vertex_connected (Membership.graph o) ~k:3)
      done

let test_leave_shrinks () =
  match Membership.create ~family:Membership.Ktree ~k:3 ~n:12 with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok o ->
      (match Membership.leave o with
      | Ok _ -> check_int "n" 11 (Membership.n o)
      | Error e -> Alcotest.fail (Overlay.Error.to_string e));
      (* shrink to the floor *)
      for _ = 1 to 5 do
        match Membership.leave o with Ok _ -> () | Error e -> Alcotest.fail (Overlay.Error.to_string e)
      done;
      check_int "at floor" 6 (Membership.n o);
      match Membership.leave o with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "below 2k must fail"

let test_jd_join_hits_gap () =
  match Membership.create ~family:Membership.Jd ~k:3 ~n:6 with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok o -> (
      (* n=7 is a JD gap: join must fail and leave the overlay intact *)
      match Membership.join o with
      | Ok _ -> Alcotest.fail "JD has no (7,3) graph"
      | Error _ ->
          check_int "unchanged" 6 (Membership.n o);
          check_int "graph intact" 9 (Graph.m (Membership.graph o)))

let test_added_leaf_join_is_cheap () =
  (* (8,3) -> (9,3) under K-TREE is one added leaf: exactly k new edges,
     nothing removed *)
  match Membership.create ~family:Membership.Ktree ~k:3 ~n:8 with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok o -> (
      match Membership.join o with
      | Error e -> Alcotest.fail (Overlay.Error.to_string e)
      | Ok d ->
          check_int "k edges added" 3 (List.length d.Diff.added);
          check_int "none removed" 0 (List.length d.Diff.removed))

let test_resize_jump () =
  match Membership.create ~family:Membership.Kdiamond ~k:4 ~n:8 with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok o -> (
      match Membership.resize o ~target:40 with
      | Error e -> Alcotest.fail (Overlay.Error.to_string e)
      | Ok d ->
          check_int "n" 40 (Membership.n o);
          check_bool "big diff" true (Diff.cost d > 30))

let test_churn_runs () =
  let rngv = rng () in
  match Churn.run rngv ~family:Membership.Kdiamond ~k:3 ~n0:12 ~steps:60 () with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok s ->
      check_int "all ops served" 60 (s.Churn.ops + s.Churn.skipped);
      check_int "no skips for kdiamond" 0 s.Churn.skipped;
      check_bool "mean cost positive" true (s.Churn.mean_cost > 0.0);
      check_bool "final size sane" true (s.Churn.final_n >= 6)

let test_churn_jd_skips () =
  let rngv = rng ~salt:1 () in
  match Churn.run rngv ~family:Membership.Jd ~k:3 ~n0:10 ~steps:60 () with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok s -> check_bool "JD skips churn events" true (s.Churn.skipped > 0)

let test_churn_harary () =
  let rngv = rng ~salt:2 () in
  match Churn.run rngv ~family:Membership.Harary_classic ~k:4 ~n0:20 ~steps:40 () with
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)
  | Ok s ->
      check_int "harary serves everything" 0 s.Churn.skipped;
      check_bool "cost positive" true (s.Churn.mean_cost > 0.0)

let test_family_names () =
  Alcotest.(check string) "kdiamond" "kdiamond" (Membership.family_name Membership.Kdiamond);
  Alcotest.(check string) "harary" "harary" (Membership.family_name Membership.Harary_classic)

let prop_join_preserves_lhg_properties =
  qcheck ~count:25 "joins preserve k-connectivity across families"
    QCheck2.Gen.(pair (int_range 3 5) (int_bound 10))
    (fun (k, extra) ->
      match Membership.create ~family:Membership.Ktree ~k ~n:((2 * k) + extra) with
      | Error _ -> false
      | Ok o -> (
          match Membership.join o with
          | Error _ -> false
          | Ok _ ->
              Graph_core.Connectivity.is_k_vertex_connected (Membership.graph o) ~k
              && Graph_core.Connectivity.is_k_edge_connected (Membership.graph o) ~k))

let suite =
  [
    Alcotest.test_case "diff identical" `Quick test_diff_identical;
    Alcotest.test_case "diff disjoint" `Quick test_diff_disjoint;
    Alcotest.test_case "diff partial overlap" `Quick test_diff_partial_overlap;
    Alcotest.test_case "membership create" `Quick test_membership_create;
    Alcotest.test_case "create too small" `Quick test_membership_create_too_small;
    Alcotest.test_case "join grows, stays LHG" `Quick test_join_grows_and_stays_lhg;
    Alcotest.test_case "leave shrinks" `Quick test_leave_shrinks;
    Alcotest.test_case "jd join hits gap" `Quick test_jd_join_hits_gap;
    Alcotest.test_case "added-leaf join is cheap" `Quick test_added_leaf_join_is_cheap;
    Alcotest.test_case "resize jump" `Quick test_resize_jump;
    Alcotest.test_case "churn runs" `Quick test_churn_runs;
    Alcotest.test_case "churn jd skips" `Quick test_churn_jd_skips;
    Alcotest.test_case "churn harary" `Quick test_churn_harary;
    Alcotest.test_case "family names" `Quick test_family_names;
    prop_join_preserves_lhg_properties;
  ]
