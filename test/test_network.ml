open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Sim = Netsim.Sim
module Network = Netsim.Network

let make_net ?latency ?loss_rate () =
  let sim = Sim.create () in
  let g = Generators.cycle 5 in
  let net = Network.create ~sim ~graph:g ?latency ?loss_rate () in
  (sim, net)

let test_basic_delivery () =
  let sim, net = make_net () in
  let received = ref [] in
  Network.set_receiver net (fun ~dst ~src msg -> received := (dst, src, msg) :: !received);
  Network.send net ~src:0 ~dst:1 "hello";
  Sim.run sim;
  Alcotest.(check (list (triple int int string))) "one delivery" [ (1, 0, "hello") ] !received

let test_latency_applied () =
  let sim, net = make_net ~latency:(Network.constant_latency 2.5) () in
  let at = ref 0.0 in
  Network.set_receiver net (fun ~dst:_ ~src:_ () -> at := Sim.now sim);
  Network.send net ~src:0 ~dst:1 ();
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "arrival time" 2.5 !at

let test_send_requires_edge () =
  let _, net = make_net () in
  Alcotest.check_raises "non-edge" (Invalid_argument "Network.send: no such edge") (fun () ->
      Network.send net ~src:0 ~dst:2 ())

let test_crashed_source_rejected () =
  let _, net = make_net () in
  Network.crash net 0;
  Alcotest.check_raises "crashed source" (Invalid_argument "Network.send: source is crashed")
    (fun () -> Network.send net ~src:0 ~dst:1 ())

let test_crashed_destination_drops () =
  let sim, net = make_net () in
  let received = ref 0 in
  Network.set_receiver net (fun ~dst:_ ~src:_ () -> incr received);
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 ();
  Sim.run sim;
  check_int "nothing delivered" 0 !received;
  let s = Network.stats net in
  check_int "dropped_crash" 1 s.Network.dropped_crash;
  check_int "sent" 1 s.Network.sent

let test_crash_during_flight_drops () =
  let sim, net = make_net ~latency:(Network.constant_latency 5.0) () in
  let received = ref 0 in
  Network.set_receiver net (fun ~dst:_ ~src:_ () -> incr received);
  Network.send net ~src:0 ~dst:1 ();
  (* crash the destination while the message is in flight *)
  Sim.schedule sim ~delay:1.0 (fun () -> Network.crash net 1);
  Sim.run sim;
  check_int "dropped mid-flight" 0 !received

let test_failed_link_drops () =
  let sim, net = make_net () in
  let received = ref 0 in
  Network.set_receiver net (fun ~dst:_ ~src:_ () -> incr received);
  Network.fail_link net 0 1;
  check_bool "failed" true (Network.link_failed net 1 0);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:1 ~dst:0 ();
  Sim.run sim;
  check_int "both directions dead" 0 !received;
  check_int "counted" 2 (Network.stats net).Network.dropped_link

let test_fail_link_requires_edge () =
  let _, net = make_net () in
  Alcotest.check_raises "non-edge" (Invalid_argument "Network.fail_link: no such edge") (fun () ->
      Network.fail_link net 0 2)

let test_loss_rate_statistical () =
  let sim = Sim.create ~seed:7 () in
  let g = Generators.complete 2 in
  let net = Network.create ~sim ~graph:g ~loss_rate:0.3 () in
  let received = ref 0 in
  Network.set_receiver net (fun ~dst:_ ~src:_ () -> incr received);
  for _ = 1 to 2000 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Sim.run sim;
  let frac = float_of_int !received /. 2000.0 in
  check_bool "~70% delivered" true (frac > 0.62 && frac < 0.78);
  let s = Network.stats net in
  check_int "accounting adds up" 2000 (s.Network.delivered + s.Network.dropped_random)

let test_alive_mask () =
  let _, net = make_net () in
  Network.crash net 3;
  Alcotest.(check (array bool)) "mask" [| true; true; true; false; true |] (Network.alive_mask net)

let test_invalid_loss_rate () =
  let sim = Sim.create () in
  let g = Generators.cycle 4 in
  Alcotest.check_raises "bad rate" (Invalid_argument "Network.create: loss_rate outside [0,1)")
    (fun () -> ignore (Network.create ~sim ~graph:g ~loss_rate:1.5 () : unit Network.t))

let test_uniform_latency_bounds () =
  let rngv = rng () in
  let lat = Network.uniform_latency ~lo:1.0 ~hi:3.0 in
  for _ = 1 to 200 do
    let l = lat rngv ~src:0 ~dst:1 in
    check_bool "in bounds" true (l >= 1.0 && l < 3.0)
  done

let test_exponential_latency_floor () =
  let rngv = rng ~salt:1 () in
  let lat = Network.exponential_latency ~mean:3.0 in
  for _ = 1 to 200 do
    check_bool "above floor" true (lat rngv ~src:0 ~dst:1 >= 1.0)
  done


let test_processing_delay_serializes () =
  (* two messages arrive at node 1 at t=1; with delay 2 they are handled
     at t=3 and t=5 *)
  let sim = Sim.create () in
  let g = Graph_core.Generators.complete 3 in
  let net = Network.create ~sim ~graph:g ~processing_delay:2.0 () in
  let times = ref [] in
  Network.set_receiver net (fun ~dst ~src:_ () -> if dst = 1 then times := Sim.now sim :: !times);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:2 ~dst:1 ();
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "serialized handling" [ 3.0; 5.0 ] (List.rev !times)

let test_processing_delay_zero_is_default () =
  let sim = Sim.create () in
  let g = Graph_core.Generators.complete 3 in
  let net = Network.create ~sim ~graph:g () in
  let times = ref [] in
  Network.set_receiver net (fun ~dst ~src:_ () -> if dst = 1 then times := Sim.now sim :: !times);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:2 ~dst:1 ();
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "simultaneous" [ 1.0; 1.0 ] (List.rev !times)

let test_processing_delay_negative_rejected () =
  let sim = Sim.create () in
  let g = Graph_core.Generators.cycle 4 in
  Alcotest.check_raises "negative" (Invalid_argument "Network.create: negative processing_delay")
    (fun () -> ignore (Network.create ~sim ~graph:g ~processing_delay:(-1.0) () : unit Network.t))

let test_processing_delay_idle_resets () =
  (* after the queue drains, a later message is handled promptly *)
  let sim = Sim.create () in
  let g = Graph_core.Generators.complete 2 in
  let net = Network.create ~sim ~graph:g ~processing_delay:1.0 () in
  let times = ref [] in
  Network.set_receiver net (fun ~dst:_ ~src:_ () -> times := Sim.now sim :: !times);
  Network.send net ~src:0 ~dst:1 ();
  Sim.schedule sim ~delay:10.0 (fun () -> Network.send net ~src:0 ~dst:1 ());
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "no stale backlog" [ 2.0; 12.0 ] (List.rev !times)

(* the recovery-semantics pin: crash state is evaluated at delivery
   time, so an in-flight message to a node that recovers before the
   delivery event fires is delivered, not counted dropped_crash *)
let test_recover_delivers_in_flight () =
  let sim, net = make_net ~latency:(Network.constant_latency 5.0) () in
  let received = ref [] in
  Network.set_receiver net (fun ~dst ~src:_ () -> received := (Sim.now sim, dst) :: !received);
  Network.crash net 1;
  Sim.schedule sim ~delay:1.0 (fun () -> Network.send net ~src:0 ~dst:1 ());
  (* recovery at t=3 < delivery at t=6: the crash window never sees
     the message land *)
  Sim.schedule sim ~delay:3.0 (fun () -> Network.recover net 1);
  Sim.run sim;
  Alcotest.(check (list (pair (float 1e-9) int))) "delivered after recovery" [ (6.0, 1) ]
    !received;
  let s = Network.stats net in
  check_int "delivered" 1 s.Network.delivered;
  check_int "dropped_crash" 0 s.Network.dropped_crash

let test_recover_misses_crash_window () =
  (* same shape, but the message lands inside the crash window *)
  let sim, net = make_net ~latency:(Network.constant_latency 1.0) () in
  let received = ref [] in
  Network.set_receiver net (fun ~dst ~src:_ () -> received := dst :: !received);
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 ();
  Sim.schedule sim ~delay:3.0 (fun () -> Network.recover net 1);
  Sim.run sim;
  Alcotest.(check (list int)) "nothing delivered" [] !received;
  let s = Network.stats net in
  check_int "dropped_crash" 1 s.Network.dropped_crash;
  check_bool "recovered and receiving again" false (Network.is_crashed net 1)

let test_recover_validates_and_is_idempotent () =
  let _, net = make_net () in
  Alcotest.check_raises "out of range" (Invalid_argument "Network.recover: vertex out of range")
    (fun () -> Network.recover net 99);
  Network.recover net 2 (* never crashed: a no-op *);
  Network.crash net 2;
  Network.recover net 2;
  Network.recover net 2;
  check_bool "up" false (Network.is_crashed net 2)

let test_restore_link () =
  let sim, net = make_net () in
  let received = ref 0 in
  Network.set_receiver net (fun ~dst:_ ~src:_ () -> incr received);
  Network.fail_link net 0 1;
  Network.send net ~src:0 ~dst:1 ();
  Network.restore_link net 0 1;
  check_bool "link back up" false (Network.link_failed net 0 1);
  Network.send net ~src:0 ~dst:1 ();
  Sim.run sim;
  (* the drop before the restore stays lost *)
  check_int "one delivery" 1 !received;
  check_int "one link drop" 1 (Network.stats net).Network.dropped_link;
  Alcotest.check_raises "restore needs an edge"
    (Invalid_argument "Network.restore_link: no such edge") (fun () ->
      Network.restore_link net 0 2)

let test_heal_restores_everything () =
  let _, net = make_net () in
  Network.fail_link net 0 1;
  Network.fail_link net 2 3;
  Network.heal net;
  check_bool "0-1 up" false (Network.link_failed net 0 1);
  check_bool "2-3 up" false (Network.link_failed net 2 3)

let test_set_loss_rate_mid_run () =
  let sim, net = make_net () in
  let received = ref 0 in
  Network.set_receiver net (fun ~dst:_ ~src:_ () -> incr received);
  check_bool "initial rate" true (Network.loss_rate net = 0.0);
  Network.set_loss_rate net 0.999999;
  for _ = 1 to 50 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Network.set_loss_rate net 0.0;
  for _ = 1 to 10 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Sim.run sim;
  (* at 0.999999 essentially everything drops; at 0 nothing does *)
  check_bool "lossy phase dropped" true ((Network.stats net).Network.dropped_random >= 45);
  check_bool "clean phase delivered" true (!received >= 10);
  Alcotest.check_raises "rate must be < 1"
    (Invalid_argument "Network.set_loss_rate: loss_rate outside [0,1)") (fun () ->
      Network.set_loss_rate net 1.0)

(* Priority bands, randomised over one congested link: deliveries
   within any band keep their send order (each band is FIFO and drops
   happen at admission, so what survives is an increasing subsequence),
   and the per-band counters conserve — sent = delivered + every drop
   reason — while summing to the global stats. *)
let prop_band_fifo_and_conservation =
  qcheck ~count:40 "bands: FIFO within band + per-band conservation"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let module Prng = Graph_core.Prng in
      let rngv = Prng.create ~seed in
      let bands = 2 + Prng.int rngv 3 in
      let qcap = 1 + Prng.int rngv 4 in
      let loss = if Prng.bool rngv then 0.2 else 0.0 in
      let sim = Sim.create () in
      let g = Graph.of_edges ~n:2 [ (0, 1) ] in
      let net =
        Network.create ~sim ~graph:g
          ~latency:(Network.constant_latency 0.7)
          ~loss_rate:loss ~link_capacity:1.0 ~queue_cap:qcap ~bands ()
      in
      let delivered = Array.make bands [] in
      Network.set_receiver net (fun ~dst:_ ~src:_ (b, i) ->
          delivered.(b) <- (i : int) :: delivered.(b));
      let nmsg = 30 + Prng.int rngv 40 in
      for i = 0 to nmsg - 1 do
        let b = Prng.int rngv bands in
        Sim.schedule sim ~delay:(float_of_int i *. 0.3) (fun () ->
            Network.set_send_band net b;
            Network.send net ~src:0 ~dst:1 (b, i))
      done;
      Sim.run sim;
      let rec increasing = function
        | a :: (b :: _ as tl) -> a < b && increasing tl
        | _ -> true
      in
      let fifo_ok = Array.for_all (fun l -> increasing (List.rev l)) delivered in
      let sum_sent = ref 0 and conserved = ref true in
      for b = 0 to bands - 1 do
        let s = Network.band_stats net ~band:b in
        sum_sent := !sum_sent + s.Network.sent;
        if
          s.Network.sent
          <> s.Network.delivered + s.Network.dropped_queue + s.Network.dropped_random
             + s.Network.dropped_link + s.Network.dropped_crash
        then conserved := false;
        if List.length delivered.(b) <> s.Network.delivered then conserved := false
      done;
      fifo_ok && !conserved && !sum_sent = (Network.stats net).Network.sent)

(* Strict priority: however deep the bulk backlog on the lowest band,
   a band-0 message waits behind at most the one message already in
   service — its delay never exceeds latency + 2 service times. *)
let prop_band_high_priority_bound =
  qcheck ~count:40 "bands: band 0 never waits behind the bulk backlog"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let module Prng = Graph_core.Prng in
      let rngv = Prng.create ~seed in
      let bands = 2 + Prng.int rngv 3 in
      let cap = 0.5 +. (float_of_int (Prng.int rngv 20) /. 10.0) in
      let latency = 0.5 in
      let sim = Sim.create () in
      let g = Graph.of_edges ~n:2 [ (0, 1) ] in
      let net =
        Network.create ~sim ~graph:g
          ~latency:(Network.constant_latency latency)
          ~link_capacity:cap ~bands ()
      in
      (* bulk burst rides the default (lowest) band at t = 0 *)
      let bulk = 5 + Prng.int rngv 50 in
      for i = 1 to bulk do
        Network.send net ~src:0 ~dst:1 (-i)
      done;
      let t1 = 0.1 +. (float_of_int (Prng.int rngv 30) /. 10.0) in
      let arrival = ref nan in
      Network.set_receiver net (fun ~dst:_ ~src:_ m -> if m = 99 then arrival := Sim.now sim);
      Sim.schedule sim ~delay:t1 (fun () ->
          let save = Network.send_band net in
          Network.set_send_band net 0;
          Network.send net ~src:0 ~dst:1 99;
          Network.set_send_band net save);
      Sim.run sim;
      !arrival -. t1 <= latency +. (2.0 /. cap) +. 1e-9)

let suite =
  [
    Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
    Alcotest.test_case "recover delivers in-flight" `Quick test_recover_delivers_in_flight;
    Alcotest.test_case "recover misses crash window" `Quick test_recover_misses_crash_window;
    Alcotest.test_case "recover validates, idempotent" `Quick test_recover_validates_and_is_idempotent;
    Alcotest.test_case "restore_link" `Quick test_restore_link;
    Alcotest.test_case "heal restores everything" `Quick test_heal_restores_everything;
    Alcotest.test_case "set_loss_rate mid-run" `Quick test_set_loss_rate_mid_run;
    Alcotest.test_case "latency applied" `Quick test_latency_applied;
    Alcotest.test_case "send requires edge" `Quick test_send_requires_edge;
    Alcotest.test_case "crashed source rejected" `Quick test_crashed_source_rejected;
    Alcotest.test_case "crashed destination drops" `Quick test_crashed_destination_drops;
    Alcotest.test_case "crash during flight" `Quick test_crash_during_flight_drops;
    Alcotest.test_case "failed link drops" `Quick test_failed_link_drops;
    Alcotest.test_case "fail_link requires edge" `Quick test_fail_link_requires_edge;
    Alcotest.test_case "loss rate statistical" `Quick test_loss_rate_statistical;
    Alcotest.test_case "alive mask" `Quick test_alive_mask;
    Alcotest.test_case "invalid loss rate" `Quick test_invalid_loss_rate;
    Alcotest.test_case "processing delay serializes" `Quick test_processing_delay_serializes;
    Alcotest.test_case "processing delay default" `Quick test_processing_delay_zero_is_default;
    Alcotest.test_case "processing delay negative" `Quick test_processing_delay_negative_rejected;
    Alcotest.test_case "processing delay idle resets" `Quick test_processing_delay_idle_resets;
    Alcotest.test_case "uniform latency bounds" `Quick test_uniform_latency_bounds;
    Alcotest.test_case "exponential latency floor" `Quick test_exponential_latency_floor;
    prop_band_fifo_and_conservation;
    prop_band_high_priority_bound;
  ]
