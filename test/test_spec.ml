(* Scenario.Spec: the one record every front end fills in. The contract
   under test: validation errors keep the CLI's established wording,
   the derived graph/CSR/construction agree with the registry they
   front, and [with_pool] honours the jobs convention (0 = shared
   default, 1 = sequential, N = fresh pool, negative = error). *)

open Helpers
module Spec = Scenario.Spec
module Env = Flood.Env
module Graph = Graph_core.Graph
module Csr = Graph_core.Csr

let contains msg needle =
  let nl = String.length needle and ml = String.length msg in
  let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
  go 0

let test_validate () =
  (match Spec.validate Spec.default with
  | Ok s -> check_bool "default validates to itself" true (s = Spec.default)
  | Error e -> Alcotest.failf "default rejected: %s" e);
  (match Spec.validate { Spec.default with Spec.topology = "moebius" } with
  | Ok _ -> Alcotest.fail "unknown topology accepted"
  | Error e ->
      check_bool "names the kind" true (contains e "moebius");
      check_bool "lists the catalogue" true (contains e "kdiamond"));
  (match Spec.validate { Spec.default with Spec.jobs = -1 } with
  | Ok _ -> Alcotest.fail "negative jobs accepted"
  | Error e -> Alcotest.(check string) "jobs wording" "--jobs must be >= 0" e);
  match Spec.validate { Spec.default with Spec.n = 3 } with
  | Ok _ -> Alcotest.fail "inadmissible (n, k) accepted"
  | Error e -> check_bool "requirement line is non-empty" true (String.length e > 0)

(* graph and csr are two routes to the same topology *)
let test_graph_csr_agree () =
  List.iter
    (fun topology ->
      let spec = { Spec.default with Spec.topology; n = 16; k = 4 } in
      match (Spec.graph spec, Spec.csr spec) with
      | Ok g, Ok c ->
          let csr_edges = ref [] in
          Csr.iter_edges c (fun u v -> csr_edges := (u, v) :: !csr_edges);
          Alcotest.(check (list (pair int int)))
            (topology ^ ": graph edges = csr edges")
            (sorted_edges g)
            (List.sort compare !csr_edges)
      | Error e, _ | _, Error e -> Alcotest.failf "%s: %s" topology e)
    [ "kdiamond"; "hypercube"; "cycle"; "complete" ]

let test_construction () =
  (match Spec.construction Spec.default with
  | Ok c -> check_bool "kdiamond is a construction" true (c = Lhg_core.Build.Kdiamond)
  | Error e -> Alcotest.fail e);
  match Spec.construction { Spec.default with Spec.topology = "cycle" } with
  | Ok _ -> Alcotest.fail "cycle has no construction"
  | Error e ->
      check_bool "says so" true (contains e "not an LHG construction");
      check_bool "lists witnessed entries" true (contains e "ktree")

let test_with_pool () =
  (match Spec.with_pool { Spec.default with Spec.jobs = 1 } (fun p -> p = None) with
  | Ok b -> check_bool "jobs = 1 runs sequentially" true b
  | Error e -> Alcotest.fail e);
  (match Spec.with_pool { Spec.default with Spec.jobs = 2 } (fun p -> p <> None) with
  | Ok b -> check_bool "jobs = 2 gets a pool" true b
  | Error e -> Alcotest.fail e);
  match Spec.with_pool { Spec.default with Spec.jobs = -3 } (fun _ -> ()) with
  | Ok () -> Alcotest.fail "negative jobs ran"
  | Error e -> Alcotest.(check string) "jobs wording" "--jobs must be >= 0" e

let test_to_env () =
  let spec = { Spec.default with Spec.seed = 99; engine = Netsim.Sim.Heap } in
  let env = Spec.to_env spec in
  check_int "seed lands in the env" 99 (Env.seed_value env);
  check_bool "engine lands in the env" true (env.Env.engine = Some Netsim.Sim.Heap);
  check_bool "no metrics, nil obs" true (not (Obs.Registry.enabled (Spec.obs spec)));
  check_bool "metrics, live obs" true
    (Obs.Registry.enabled (Spec.obs { spec with Spec.metrics = Some `Json }))

let suite =
  [
    Alcotest.test_case "validate: wording and catalogue" `Quick test_validate;
    Alcotest.test_case "graph and csr agree" `Quick test_graph_csr_agree;
    Alcotest.test_case "construction lookup" `Quick test_construction;
    Alcotest.test_case "with_pool jobs convention" `Quick test_with_pool;
    Alcotest.test_case "to_env carries seed/engine/obs" `Quick test_to_env;
  ]
