open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Runner = Flood.Runner

let test_random_crashes_avoid_source () =
  let rngv = rng () in
  for _ = 1 to 50 do
    let cs = Runner.random_crashes rngv ~n:20 ~count:5 ~avoid:7 in
    check_int "count" 5 (List.length cs);
    check_int "distinct" 5 (List.length (List.sort_uniq compare cs));
    check_bool "avoids source" false (List.mem 7 cs);
    List.iter (fun v -> check_bool "range" true (v >= 0 && v < 20)) cs
  done

let test_random_crashes_bad_count () =
  let rngv = rng ~salt:1 () in
  Alcotest.check_raises "too many" (Invalid_argument "Runner.random_crashes: bad count")
    (fun () -> ignore (Runner.random_crashes rngv ~n:5 ~count:5 ~avoid:0))

let test_random_link_failures_are_edges () =
  let rngv = rng ~salt:2 () in
  let g = petersen () in
  let fs = Runner.random_link_failures rngv g ~count:4 in
  check_int "count" 4 (List.length fs);
  List.iter (fun (u, v) -> check_bool "is edge" true (Graph.has_edge g u v)) fs

let test_flood_trials_no_failures_full_coverage () =
  let g = Generators.complete 10 in
  let a = Runner.flood_trials_env ~env:(Flood.Env.make ~seed:1 ()) ~graph:g ~source:0 ~crash_count:0 ~trials:5 () in
  Alcotest.(check (float 1e-9)) "mean coverage" 1.0 a.Runner.mean_coverage;
  Alcotest.(check (float 1e-9)) "all covered" 1.0 a.Runner.all_covered_fraction;
  check_int "trials" 5 a.Runner.trials

let test_flood_trials_k_minus_1_on_lhg () =
  let b = Lhg_core.Build.ktree_exn ~n:26 ~k:4 in
  let a =
    Runner.flood_trials_env ~env:(Flood.Env.make ~seed:2 ()) ~graph:b.Lhg_core.Build.graph ~source:0 ~crash_count:3 ~trials:20 ()
  in
  Alcotest.(check (float 1e-9)) "guaranteed delivery" 1.0 a.Runner.all_covered_fraction

let test_flood_trials_beyond_k_can_fail () =
  (* a ring (k=2) with many crashes will partition in some trial *)
  let g = Generators.cycle 30 in
  let a = Runner.flood_trials_env ~env:(Flood.Env.make ~seed:3 ()) ~graph:g ~source:0 ~crash_count:6 ~trials:30 () in
  check_bool "some trial partitions" true (a.Runner.all_covered_fraction < 1.0);
  check_bool "coverage sane" true (a.Runner.mean_coverage > 0.2 && a.Runner.mean_coverage <= 1.0)

let test_flood_trials_with_link_failures () =
  let b = Lhg_core.Build.kdiamond_exn ~n:20 ~k:4 in
  let a =
    Runner.flood_trials_env ~env:(Flood.Env.make ~seed:4 ()) ~link_failures:3 ~graph:b.Lhg_core.Build.graph ~source:0 ~crash_count:0 ~trials:15 ()
  in
  Alcotest.(check (float 1e-9)) "k-1 link failures harmless" 1.0 a.Runner.all_covered_fraction

let test_gossip_trials_aggregate () =
  let g = Generators.complete 12 in
  let a = Runner.gossip_trials_env ~env:(Flood.Env.make ~seed:5 ()) ~graph:g ~source:0 ~fanout:11 ~crash_count:0 ~trials:5 () in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 a.Runner.mean_coverage;
  check_bool "messages counted" true (a.Runner.mean_messages > 0.0)

let test_min_coverage_le_mean () =
  let g = Generators.cycle 25 in
  let a = Runner.flood_trials_env ~env:(Flood.Env.make ~seed:6 ()) ~graph:g ~source:0 ~crash_count:4 ~trials:25 () in
  check_bool "min <= mean" true (a.Runner.min_coverage <= a.Runner.mean_coverage +. 1e-9)

let suite =
  [
    Alcotest.test_case "random crashes" `Quick test_random_crashes_avoid_source;
    Alcotest.test_case "random crashes bad count" `Quick test_random_crashes_bad_count;
    Alcotest.test_case "random link failures" `Quick test_random_link_failures_are_edges;
    Alcotest.test_case "flood trials full coverage" `Quick
      test_flood_trials_no_failures_full_coverage;
    Alcotest.test_case "flood trials k-1 guarantee" `Slow test_flood_trials_k_minus_1_on_lhg;
    Alcotest.test_case "flood trials beyond k" `Quick test_flood_trials_beyond_k_can_fail;
    Alcotest.test_case "flood trials link failures" `Quick test_flood_trials_with_link_failures;
    Alcotest.test_case "gossip trials" `Quick test_gossip_trials_aggregate;
    Alcotest.test_case "min <= mean" `Quick test_min_coverage_le_mean;
  ]
