(* Cross-cutting randomised properties tying the subsystems together. *)
open Helpers
module Graph = Graph_core.Graph
module Prng = Graph_core.Prng
module Build = Lhg_core.Build

let prop_incremental_tracks_canonical_count =
  qcheck ~count:30 "incremental overlay sizes track join/leave arithmetic"
    QCheck2.Gen.(pair (int_range 3 5) (int_bound 10_000))
    (fun (k, seed) ->
      let t = Overlay.Incremental.start ~k () in
      let rngv = Prng.create ~seed in
      let expected = ref (2 * k) in
      let ok = ref true in
      for _ = 1 to 60 do
        if !expected <= (2 * k) + 1 || Prng.bool rngv then begin
          ignore (Overlay.Incremental.join t);
          incr expected
        end
        else begin
          (match Overlay.Incremental.leave t with Ok _ -> () | Error _ -> ok := false);
          decr expected
        end;
        if Overlay.Incremental.n t <> !expected then ok := false
      done;
      !ok)

let prop_pif_detection_after_last_delivery_random_latency =
  qcheck ~count:40 "PIF detects only after the last delivery, any latency"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rngv = Prng.create ~seed in
      let n = (2 * 4) + Prng.int rngv 40 in
      match Build.kdiamond ~n ~k:4 with
      | Error _ -> false
      | Ok b ->
          let r =
            Flood.Pif.run_env ~env:(Flood.Env.make ~latency:(Netsim.Network.uniform_latency ~lo:0.5 ~hi:2.5) ~seed ()) ~graph:b.Build.graph ~source:0 ()
          in
          r.Flood.Pif.completed
          && r.Flood.Pif.completion_detected_at >= r.Flood.Pif.last_delivery_at)

let prop_route_fallback_only_beyond_k_failures =
  qcheck ~count:40 "route succeeds under any k-1 random failures"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rngv = Prng.create ~seed in
      let k = 3 + Prng.int rngv 3 in
      let n = (2 * k) + 10 + Prng.int rngv 40 in
      match Build.kdiamond ~n ~k with
      | Error _ -> false
      | Ok b ->
          let avoid = Array.make n false in
          let src = Prng.int rngv n in
          let dst = (src + 1 + Prng.int rngv (n - 1)) mod n in
          let placed = ref 0 in
          while !placed < k - 1 do
            let v = Prng.int rngv n in
            if v <> src && v <> dst && not avoid.(v) then begin
              avoid.(v) <- true;
              incr placed
            end
          done;
          (match Lhg_core.Route.route ~avoid b ~src ~dst with
          | Some p -> List.for_all (fun v -> not avoid.(v)) p
          | None -> false))

let prop_verify_agrees_on_all_three_builders =
  qcheck ~count:25 "all three builders produce verifier-approved graphs"
    QCheck2.Gen.(pair (int_range 3 5) (int_bound 20))
    (fun (k, extra) ->
      let n = (2 * k) + (2 * extra * (k - 1)) in
      (* choose n on the JD-representable lattice so all three succeed *)
      let check build =
        match build with
        | Ok (b : Build.t) ->
            Lhg_core.Verify.is_lhg ~check_minimality:false b.Build.graph ~k
        | Error _ -> false
      in
      check (Build.jd ~n ~k ()) && check (Build.ktree ~n ~k) && check (Build.kdiamond ~n ~k))

let prop_serialized_lhg_reverifies =
  qcheck ~count:30 "serialise/parse preserves LHG-ness"
    QCheck2.Gen.(pair (int_range 3 5) (int_bound 30))
    (fun (k, extra) ->
      let n = (2 * k) + extra in
      match Build.kdiamond ~n ~k with
      | Error _ -> false
      | Ok b -> (
          match Graph_core.Serial.of_string (Graph_core.Serial.to_string b.Build.graph) with
          | Error _ -> false
          | Ok g ->
              Graph.equal g b.Build.graph
              && Graph_core.Connectivity.is_k_vertex_connected g ~k))

let prop_flood_messages_invariant_under_latency =
  qcheck ~count:30 "flooding message count is latency-independent"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 8 + Prng.int rngv 60 in
      match Build.ktree ~n ~k:4 with
      | Error _ -> true
      | Ok b ->
          let unit_lat = Flood.Flooding.run_env ~env:Flood.Env.default ~graph:b.Build.graph ~source:0 () in
          let rand_lat =
            Flood.Flooding.run_env ~env:(Flood.Env.make ~latency:(Netsim.Network.uniform_latency ~lo:0.1 ~hi:5.0) ~seed ()) ~graph:b.Build.graph ~source:0 ()
          in
          unit_lat.Flood.Flooding.messages_sent = rand_lat.Flood.Flooding.messages_sent)

let suite =
  [
    prop_incremental_tracks_canonical_count;
    prop_pif_detection_after_last_delivery_random_latency;
    prop_route_fallback_only_beyond_k_failures;
    prop_verify_agrees_on_all_three_builders;
    prop_serialized_lhg_reverifies;
    prop_flood_messages_invariant_under_latency;
  ]
