open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Prng = Graph_core.Prng
module Flooding = Flood.Flooding
module Sync = Flood.Sync

let test_full_coverage_no_failures () =
  let g = petersen () in
  let r = Flooding.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  check_bool "covers all" true r.Flooding.covers_all_alive;
  Array.iter (fun d -> check_bool "everyone" true d) r.Flooding.delivered

let test_hops_equal_bfs_distances () =
  let g = petersen () in
  let r = Flooding.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  let dist = Graph_core.Bfs.distances g ~src:0 in
  Alcotest.(check (array int)) "unit latency = BFS" dist r.Flooding.hops

let test_message_count_failure_free () =
  let g = Generators.cycle 8 in
  let r = Flooding.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  check_int "2m - (n-1)" (Sync.message_bound g) r.Flooding.messages_sent

let test_sync_agreement () =
  (* event-driven run with unit latency matches the closed-form analysis *)
  List.iter
    (fun g ->
      let sim = Flooding.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
      let ana = Sync.flood_env ~env:Flood.Env.default g ~source:0 in
      check_int "messages agree" ana.Sync.messages sim.Flooding.messages_sent;
      check_int "rounds agree" ana.Sync.rounds sim.Flooding.max_hops;
      Alcotest.(check (float 1e-9)) "completion = rounds" (float_of_int ana.Sync.rounds)
        sim.Flooding.completion_time)
    [ petersen (); Generators.cycle 9; Generators.complete 6; Generators.grid ~rows:3 ~cols:5 ]

let test_crash_blocks_forwarding () =
  (* path 0-1-2: crashing 1 partitions; 2 never hears *)
  let g = Generators.path_graph 3 in
  let r = Flooding.run_env ~env:(Flood.Env.make ~crashed:[ 1 ] ()) ~graph:g ~source:0 () in
  check_bool "2 unreachable" false r.Flooding.delivered.(2);
  check_bool "not all covered" false r.Flooding.covers_all_alive

let test_crashed_source_rejected () =
  let g = Generators.cycle 4 in
  Alcotest.check_raises "source crashed" (Invalid_argument "Flood.run: source is crashed")
    (fun () -> ignore (Flooding.run_env ~env:(Flood.Env.make ~crashed:[ 0 ] ()) ~graph:g ~source:0 ()))

let test_link_failures_tolerated () =
  let g = Generators.cycle 6 in
  (* one link failure on a 2-connected ring still floods everyone *)
  let r = Flooding.run_env ~env:(Flood.Env.make ~failed_links:[ (0, 1) ] ()) ~graph:g ~source:0 () in
  check_bool "covered" true r.Flooding.covers_all_alive

let test_k_minus_1_crashes_never_partition_lhg () =
  let b = Lhg_core.Build.kdiamond_exn ~n:38 ~k:4 in
  let g = b.Lhg_core.Build.graph in
  let rngv = rng () in
  for trial = 1 to 25 do
    let crashed = Flood.Runner.random_crashes rngv ~n:(Graph.n g) ~count:3 ~avoid:0 in
    let r = Flooding.run_env ~env:(Flood.Env.make ~crashed ~seed:trial ()) ~graph:g ~source:0 () in
    check_bool "k-1 crashes still covered" true r.Flooding.covers_all_alive
  done

let test_k_minus_1_link_failures_never_partition_lhg () =
  let b = Lhg_core.Build.ktree_exn ~n:30 ~k:4 in
  let g = b.Lhg_core.Build.graph in
  let rngv = rng ~salt:5 () in
  for trial = 1 to 25 do
    let failed_links = Flood.Runner.random_link_failures rngv g ~count:3 in
    let r = Flooding.run_env ~env:(Flood.Env.make ~failed_links ~seed:trial ()) ~graph:g ~source:0 () in
    check_bool "k-1 link failures still covered" true r.Flooding.covers_all_alive
  done

let test_latency_variation_still_covers () =
  let g = petersen () in
  let r =
    Flooding.run_env ~env:(Flood.Env.make ~latency:(Netsim.Network.uniform_latency ~lo:0.5 ~hi:2.0) ~seed:3 ()) ~graph:g ~source:4 ()
  in
  check_bool "covered" true r.Flooding.covers_all_alive;
  (* hops can exceed BFS distance under non-uniform latency, but delivery
     times are positive and bounded by hop count * max latency *)
  Array.iteri
    (fun v t -> if v <> 4 then check_bool "positive time" true (t > 0.0))
    r.Flooding.delivery_time

let test_determinism_same_seed () =
  let g = Generators.grid ~rows:4 ~cols:4 in
  let r1 =
    Flooding.run_env ~env:(Flood.Env.make ~latency:(Netsim.Network.uniform_latency ~lo:0.1 ~hi:1.0) ~seed:11 ()) ~graph:g ~source:0 ()
  in
  let r2 =
    Flooding.run_env ~env:(Flood.Env.make ~latency:(Netsim.Network.uniform_latency ~lo:0.1 ~hi:1.0) ~seed:11 ()) ~graph:g ~source:0 ()
  in
  Alcotest.(check (array (float 0.0))) "same timings" r1.Flooding.delivery_time
    r2.Flooding.delivery_time;
  check_int "same messages" r1.Flooding.messages_sent r2.Flooding.messages_sent

let prop_flooding_covers_any_connected_graph =
  qcheck ~count:50 "flooding reaches every vertex of a connected graph"
    QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 5 + Prng.int rngv 30 in
      let g = Generators.gnp rngv ~n ~p:0.2 in
      for v = 0 to n - 1 do
        Graph.add_edge g v ((v + 1) mod n)
      done;
      let r = Flooding.run_env ~env:Flood.Env.default ~graph:g ~source:(Prng.int rngv n) () in
      r.Flooding.covers_all_alive)

let prop_engines_identical_wire_traces =
  qcheck ~count:25 "calendar and heap engines leave byte-identical wire traces"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rngv = Prng.create ~seed in
      let n = 8 + Prng.int rngv 40 in
      match Lhg_core.Build.kdiamond ~n ~k:4 with
      | Error _ -> false
      | Ok b ->
          let flood engine =
            let trace = Netsim.Trace.create () in
            let env =
              Flood.Env.make
                ~latency:(Netsim.Network.uniform_latency ~lo:0.25 ~hi:3.0)
                ~loss_rate:0.05 ~processing_delay:0.125 ~seed ~engine ~trace ()
            in
            let r = Flooding.run_env ~env ~graph:b.Lhg_core.Build.graph ~source:0 () in
            (Netsim.Trace.events trace, r.Flooding.messages_sent, r.Flooding.delivery_time)
          in
          flood Netsim.Sim.Calendar = flood Netsim.Sim.Heap)

let suite =
  [
    Alcotest.test_case "full coverage" `Quick test_full_coverage_no_failures;
    Alcotest.test_case "hops = BFS" `Quick test_hops_equal_bfs_distances;
    Alcotest.test_case "message count" `Quick test_message_count_failure_free;
    Alcotest.test_case "sync agreement" `Quick test_sync_agreement;
    Alcotest.test_case "crash blocks forwarding" `Quick test_crash_blocks_forwarding;
    Alcotest.test_case "crashed source rejected" `Quick test_crashed_source_rejected;
    Alcotest.test_case "link failure tolerated" `Quick test_link_failures_tolerated;
    Alcotest.test_case "k-1 crashes on LHG" `Slow test_k_minus_1_crashes_never_partition_lhg;
    Alcotest.test_case "k-1 link failures on LHG" `Slow
      test_k_minus_1_link_failures_never_partition_lhg;
    Alcotest.test_case "latency variation" `Quick test_latency_variation_still_covers;
    Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
    prop_flooding_covers_any_connected_graph;
    prop_engines_identical_wire_traces;
  ]
