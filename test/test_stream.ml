(* Obs.Stream: the shared versioned JSON-document writer behind
   lhg-chaos/1, lhg-reconfig/1 and lhg-traffic/1. *)

open Helpers
module S = Obs.Stream

let test_scalars_and_nesting () =
  let s = S.create ~schema:"lhg-test/1" () in
  S.str s "name" "a \"quoted\" value";
  S.int s "count" 3;
  S.float s "ratio" 0.5;
  S.float s "bad" Float.nan;
  S.bool s "ok" true;
  S.null s "missing";
  S.obj s "nested" (fun s -> S.int s "x" 1);
  S.arr s "items" (fun s ->
      S.element s (fun s -> S.int s "i" 0);
      S.element_raw s "7");
  S.summary s (fun s -> S.bool s "done" true);
  let doc = S.contents s in
  let contains needle =
    let nl = String.length needle and hl = String.length doc in
    let rec go i = i + nl <= hl && (String.sub doc i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "schema first" true
    (String.length doc > 30 && String.sub doc 0 2 = "{\n"
    && contains {|"schema": "lhg-test/1"|});
  check_bool "escaped string" true (contains {|a \"quoted\" value|});
  check_bool "non-finite clamped" true (contains {|"bad": 0|});
  check_bool "null" true (contains {|"missing": null|});
  check_bool "nested object indented" true (contains "  \"nested\": {\n    \"x\": 1\n  }");
  check_bool "array elements" true (contains "{\n      \"i\": 0\n    },\n    7");
  check_bool "summary block" true (contains {|"summary"|});
  check_bool "trailing newline" true (doc.[String.length doc - 1] = '\n')

let test_errors () =
  let s = S.create ~schema:"x/1" () in
  let _ = S.contents s in
  Alcotest.check_raises "write after close"
    (Invalid_argument "Obs.Stream: document already closed") (fun () -> S.int s "k" 1)

let test_embed () =
  let child = S.create ~schema:"child/1" () in
  S.int child "v" 9;
  let parent = S.create ~schema:"parent/1" () in
  S.obj parent "wrap" (fun s -> S.embed s "inner" (S.contents child));
  let doc = S.contents parent in
  let contains needle =
    let nl = String.length needle and hl = String.length doc in
    let rec go i = i + nl <= hl && (String.sub doc i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "child re-indented" true (contains "\"inner\": {\n      \"schema\": \"child/1\"")

let suite =
  [
    Alcotest.test_case "scalars and nesting" `Quick test_scalars_and_nesting;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "embed" `Quick test_embed;
  ]
