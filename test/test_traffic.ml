(* Sustained traffic: bounded link FIFOs and the workload driver.

   The load-bearing properties, per ISSUE 7: FIFO order holds per
   directed link (no reorder under a deterministic latency model),
   messages are conserved (sent = delivered + every drop reason),
   Calendar and Heap engines produce byte-identical lhg-traffic/1
   documents, and Block policy never sheds. *)

open Helpers
module Graph = Graph_core.Graph
module Sim = Netsim.Sim
module Network = Netsim.Network
module Trace = Netsim.Trace
module Env = Flood.Env
module Workload = Traffic.Workload
module Driver = Traffic.Driver

let graph () = (Lhg_core.Build.kdiamond_exn ~n:12 ~k:3).Lhg_core.Build.graph

(* a workload that actually pressures the queues: 3 sources drumming
   fast through slow links *)
let pressure_workload =
  Workload.default |> Workload.with_source_count 3 |> Workload.with_chunks_per_source 4
  |> Workload.with_rate 0.5

let env_with ~seed ~capacity ?queue_cap ?policy ?trace () =
  Env.default |> Env.with_seed seed
  |> Env.with_link_capacity capacity
  |> (match queue_cap with Some q -> Env.with_queue_cap q | None -> Fun.id)
  |> (match policy with Some p -> Env.with_queue_policy p | None -> Fun.id)
  |> match trace with Some t -> Env.with_trace t | None -> Fun.id

(* FIFO per directed link: under the constant default latency, the
   deliveries on any (src, dst) must appear in send (seq) order with
   non-decreasing times — a queued message never overtakes its
   predecessor on the same link. *)
let prop_fifo_no_reorder =
  qcheck ~count:25 "per-link FIFO: no reorder under queueing"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 3))
    (fun (seed, queue_cap) ->
      let trace = Trace.create () in
      let env =
        env_with ~seed ~capacity:0.25 ~queue_cap ~policy:Network.Drop_tail ~trace ()
      in
      let _r = Driver.run_env ~env ~graph:(graph ()) ~workload:pressure_workload () in
      let last : (int * int, int * float) Hashtbl.t = Hashtbl.create 64 in
      List.for_all
        (fun (e : Trace.event) ->
          match e.Trace.kind with
          | Trace.Delivered ->
              let key = (e.Trace.src, e.Trace.dst) in
              let ok =
                match Hashtbl.find_opt last key with
                | Some (seq, time) -> e.Trace.seq > seq && e.Trace.time >= time
                | None -> true
              in
              Hashtbl.replace last key (e.Trace.seq, e.Trace.time);
              ok
          | _ -> true)
        (Trace.events trace))

(* Conservation: every send reaches exactly one terminal outcome. *)
let prop_conservation =
  qcheck ~count:25 "conservation: sent = delivered + all drops"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 2))
    (fun (seed, queue_cap) ->
      let trace = Trace.create () in
      let env =
        env_with ~seed ~capacity:0.25 ~queue_cap ~policy:Network.Drop_tail ~trace ()
        |> Env.with_loss_rate 0.05
      in
      let r = Driver.run_env ~env ~graph:(graph ()) ~workload:pressure_workload () in
      let count k =
        List.length (List.filter (fun e -> e.Trace.kind = k) (Trace.events trace))
      in
      let sent = count Trace.Sent in
      sent = r.Driver.wire_messages
      && sent
         = count Trace.Delivered + count Trace.Dropped_link + count Trace.Dropped_crash
           + count Trace.Dropped_random + count Trace.Dropped_queue
      && count Trace.Dropped_queue = r.Driver.dropped_queue)

(* Engine byte-identity: the whole lhg-traffic/1 document, queued
   streams included, must not depend on the event engine. *)
let prop_engine_identity =
  qcheck ~count:20 "Calendar vs Heap: byte-identical lhg-traffic/1"
    QCheck2.Gen.(pair (int_bound 10_000) (oneofl [ Workload.Periodic; Workload.Poisson ]))
    (fun (seed, arrival) ->
      let workload = pressure_workload |> Workload.with_arrival arrival in
      let doc engine =
        let env =
          env_with ~seed ~capacity:0.25 ~queue_cap:2 ~policy:Network.Drop_tail ()
          |> Env.with_engine engine
        in
        let r = Driver.run_env ~env ~graph:(graph ()) ~workload () in
        Scenario.report_traffic ~topology:"kdiamond" ~n:12 ~k:3 ~seed r
      in
      String.equal (doc Sim.Calendar) (doc Sim.Heap))

let test_block_never_sheds () =
  let g = graph () in
  let workload = pressure_workload in
  let tight =
    Driver.run_env
      ~env:(env_with ~seed:3 ~capacity:0.05 ~queue_cap:1 ~policy:Network.Drop_tail ())
      ~graph:g ~workload ()
  in
  let block =
    Driver.run_env
      ~env:(env_with ~seed:3 ~capacity:0.05 ~queue_cap:1 ~policy:Network.Block ())
      ~graph:g ~workload ()
  in
  check_bool "drop-tail sheds on a tight queue" true (tight.Driver.dropped_queue > 0);
  check_int "block never drops" 0 block.Driver.dropped_queue;
  check_bool "block covers everything" true block.Driver.all_covered;
  check_bool "block pays in delay instead" true
    (block.Driver.p99_delay >= tight.Driver.p99_delay);
  check_bool "backlog visible under block" true (block.Driver.max_queue_backlog >= 1)

let test_free_run_matches_flood_costs () =
  (* without capacity the driver is plain repeated flooding: chunks
     all cover, zero drops, delays bounded by the diameter *)
  let r =
    Driver.run_env
      ~env:(Env.make ~seed:7 ())
      ~graph:(graph ()) ~workload:Workload.default ()
  in
  check_bool "all covered" true r.Driver.all_covered;
  check_bool "delivery fraction 1" true (r.Driver.delivery_fraction = 1.0);
  check_int "no queue drops" 0 r.Driver.dropped_queue;
  check_int "no backlog" 0 r.Driver.max_queue_backlog;
  check_int "deliveries = chunks * (n-1)" (4 * 8 * 11) r.Driver.deliveries;
  check_bool "throughput positive" true (r.Driver.throughput > 0.0)

let test_workload_validation () =
  let n = 12 in
  let bad w = match Workload.validate w ~n with Error _ -> true | Ok () -> false in
  check_bool "negative rate" true (bad (Workload.default |> Workload.with_rate (-1.0)));
  check_bool "nan rate" true (bad (Workload.default |> Workload.with_rate Float.nan));
  check_bool "zero chunks" true (bad (Workload.default |> Workload.with_chunks_per_source 0));
  check_bool "too many sources" true (bad (Workload.default |> Workload.with_source_count 13));
  check_bool "out of range source" true (bad (Workload.default |> Workload.with_sources [ 12 ]));
  check_bool "duplicate sources" true (bad (Workload.default |> Workload.with_sources [ 1; 1 ]));
  check_bool "default is valid" false (bad Workload.default);
  check_bool "spread sources are distinct" true
    (let s = Workload.resolve_sources (Workload.default |> Workload.with_source_count 5) ~n in
     List.length (List.sort_uniq compare s) = 5);
  check_bool "explicit sources win" true
    (Workload.resolve_sources (Workload.default |> Workload.with_sources [ 3; 7 ]) ~n = [ 3; 7 ]);
  Alcotest.check_raises "driver rejects crashed source"
    (Invalid_argument "Traffic.run: source 0 is crashed at t = 0")
    (fun () ->
      ignore
        (Driver.run_env
           ~env:(Env.make ~crashed:[ 0 ] ())
           ~graph:(graph ()) ~workload:Workload.default ()))

let test_chaos_midstream () =
  (* crash a source mid-stream: its later chunks are skipped, and with
     a recovery the post-plan chunks measure a recovery time *)
  let g = graph () in
  let mk l = Chaos.Plan.make (List.map (fun (at, event) -> { Chaos.Plan.at; event }) l) in
  let workload =
    Workload.default |> Workload.with_source_count 2 |> Workload.with_chunks_per_source 4
    |> Workload.with_rate 0.1
  in
  let crash_source = mk [ (15.0, Chaos.Plan.Crash 0) ] in
  let r =
    Driver.run_env ~env:(Env.make ~seed:5 ()) ~plan:crash_source ~graph:g ~workload ()
  in
  check_bool "later chunks of the crashed source are skipped" true (r.Driver.chunks_skipped > 0);
  check_bool "time to run clean measured against survivors" true (r.Driver.recovery_time >= 0.0);
  (* a plan with no degrading event has nothing to recover from *)
  let benign = mk [ (5.0, Chaos.Plan.Loss_rate 0.0) ] in
  let rb = Driver.run_env ~env:(Env.make ~seed:5 ()) ~plan:benign ~graph:g ~workload () in
  check_bool "no degrading event -> recovery_time = -1" true (rb.Driver.recovery_time = -1.0);
  let crash_recover = mk [ (15.0, Chaos.Plan.Crash 0); (25.0, Chaos.Plan.Recover 0) ] in
  let r2 =
    Driver.run_env ~env:(Env.make ~seed:5 ()) ~plan:crash_recover ~graph:g ~workload ()
  in
  check_bool "recovery time measured" true (r2.Driver.recovery_time >= 0.0);
  check_bool "stream recovers" true r2.Driver.all_covered

let test_json_shape () =
  let r =
    Driver.run_env ~env:(Env.make ~seed:1 ()) ~graph:(graph ()) ~workload:Workload.default ()
  in
  let doc = Scenario.report_traffic ~topology:"kdiamond" ~n:12 ~k:3 ~seed:1 r in
  let contains needle =
    let nl = String.length needle and hl = String.length doc in
    let rec go i = i + nl <= hl && (String.sub doc i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check_bool needle true (contains needle))
    [
      {|"schema": "lhg-traffic/1"|};
      {|"workload"|};
      {|"arrival": "periodic"|};
      {|"wire"|};
      {|"delay"|};
      {|"summary"|};
      {|"all_covered": true|};
    ];
  (* determinism: the document is a pure function of (env, workload) *)
  let r' =
    Driver.run_env ~env:(Env.make ~seed:1 ()) ~graph:(graph ()) ~workload:Workload.default ()
  in
  check_bool "byte-identical rerun" true
    (String.equal doc (Scenario.report_traffic ~topology:"kdiamond" ~n:12 ~k:3 ~seed:1 r'))

(* Trees dissemination: a clean striped stream costs exactly
   injected × (n−1) wire messages — the whole point of the strategy —
   and still covers everyone. *)
let test_trees_dissemination_costs () =
  let g = Lhg_core.Build.kdiamond_exn ~n:66 ~k:4 in
  let workload =
    Workload.default |> Workload.with_dissemination Workload.Trees
    |> Workload.with_source_count 3 |> Workload.with_chunks_per_source 5
  in
  let r = Driver.run_env ~env:(Env.make ~seed:11 ()) ~graph:g.Lhg_core.Build.graph ~workload () in
  check_bool "all covered" true r.Driver.all_covered;
  check_int "no fallbacks on a clean run" 0 r.Driver.tree_fallbacks;
  check_int "wire = injected * (n-1)" (r.Driver.chunks_injected * 65) r.Driver.wire_messages;
  check_int "deliveries = injected * (n-1)" (r.Driver.chunks_injected * 65) r.Driver.deliveries

(* Mid-stream link chaos under Trees: the dead tree edges force flood
   fallbacks, yet every chunk still reaches every survivor. *)
let test_trees_chaos_fallback () =
  let g = Lhg_core.Build.kdiamond_exn ~n:66 ~k:4 in
  let csr = Graph_core.Csr.of_graph g.Lhg_core.Build.graph in
  let pack = Graph_core.Tree_pack.pack csr ~source:0 in
  (* down a tree-0 edge of source 0 while its stream is in flight *)
  let u, v = List.hd (List.rev (Graph_core.Tree_pack.edges pack ~tree:0)) in
  let plan =
    Chaos.Plan.make [ { Chaos.Plan.at = 25.0; event = Chaos.Plan.Link_down (u, v) } ]
  in
  let workload =
    Workload.default |> Workload.with_dissemination Workload.Trees
    |> Workload.with_sources [ 0 ] |> Workload.with_chunks_per_source 10
    |> Workload.with_rate 0.1
  in
  let r = Driver.run_env ~env:(Env.make ~seed:11 ()) ~plan ~graph:g.Lhg_core.Build.graph ~workload () in
  check_bool "fallbacks exercised" true (r.Driver.tree_fallbacks > 0);
  check_bool "still all covered" true r.Driver.all_covered;
  check_bool "costs more than pure trees" true
    (r.Driver.wire_messages > r.Driver.chunks_injected * 65)

(* All three strategies are engine- and rerun-stable; the reused dedup
   scratch buffer must never leak state between runs. *)
let prop_dissemination_identity =
  qcheck ~count:12 "every strategy: engine + rerun byte-identity"
    QCheck2.Gen.(
      pair (int_bound 10_000) (oneofl [ Workload.Flood; Workload.Trees; Workload.Gossip ]))
    (fun (seed, dissemination) ->
      let workload = pressure_workload |> Workload.with_dissemination dissemination in
      let doc engine =
        let env =
          env_with ~seed ~capacity:0.5 ~queue_cap:4 ~policy:Network.Block ()
          |> Env.with_engine engine
        in
        let r = Driver.run_env ~env ~graph:(graph ()) ~workload () in
        Scenario.report_traffic ~topology:"kdiamond" ~n:12 ~k:3 ~seed r
      in
      let a = doc Sim.Calendar in
      String.equal a (doc Sim.Heap) && String.equal a (doc Sim.Calendar))

let test_hot_links_reported () =
  let r =
    Driver.run_env
      ~env:(env_with ~seed:3 ~capacity:0.25 ~queue_cap:2 ~policy:Network.Block ())
      ~graph:(graph ()) ~workload:pressure_workload ()
  in
  check_bool "some hot links under capacity" true (List.length r.Driver.hot_links > 0);
  check_bool "at most five" true (List.length r.Driver.hot_links <= 5);
  let peaks = List.map (fun (_, _, p) -> p) r.Driver.hot_links in
  check_bool "sorted by peak, descending" true (List.sort (fun a b -> compare b a) peaks = peaks);
  check_bool "hottest peak = max backlog" true
    (match peaks with p :: _ -> p >= r.Driver.max_queue_backlog | [] -> false);
  let free =
    Driver.run_env ~env:(Env.make ~seed:3 ()) ~graph:(graph ()) ~workload:pressure_workload ()
  in
  check_bool "no capacity -> no hot links" true (free.Driver.hot_links = [])

(* Escalation accounting after the dedup fix: [tree_fallbacks] counts
   distinct (source, tree, node) escalation points while
   [tree_fallback_bursts] keeps the old per-forward tally — the value
   the field used to report, which inflates with every chunk striped
   over the same broken tree. Both are pinned on a fixed two-crash
   scenario so a regression in either direction is loud: 356 raw
   bursts collapse to 14 distinct fault sites. *)
let test_fallback_dedup_pin () =
  let graph = (Lhg_core.Build.kdiamond_exn ~n:46 ~k:4).Lhg_core.Build.graph in
  let workload =
    Workload.default |> Workload.with_dissemination Workload.Trees
    |> Workload.with_source_count 4 |> Workload.with_chunks_per_source 64
  in
  let plan =
    Chaos.Plan.make
      [
        { Chaos.Plan.at = 100.0; event = Chaos.Plan.Crash 7 };
        { Chaos.Plan.at = 140.0; event = Chaos.Plan.Crash 12 };
      ]
  in
  let r = Driver.run_env ~env:(Env.make ~seed:1 ()) ~plan ~graph ~workload () in
  check_int "distinct escalation points (deduped)" 14 r.Driver.tree_fallbacks;
  check_int "raw escalation bursts (the old, inflated count)" 356 r.Driver.tree_fallback_bursts;
  check_bool "dedup only shrinks" true
    (r.Driver.tree_fallback_bursts >= r.Driver.tree_fallbacks)

let suite =
  [
    prop_fifo_no_reorder;
    prop_conservation;
    prop_engine_identity;
    prop_dissemination_identity;
    Alcotest.test_case "trees dissemination: n-1 per chunk" `Quick
      test_trees_dissemination_costs;
    Alcotest.test_case "trees + link chaos: fallback, still covered" `Quick
      test_trees_chaos_fallback;
    Alcotest.test_case "fallback accounting: bursts vs deduped" `Quick test_fallback_dedup_pin;
    Alcotest.test_case "hot links reported" `Quick test_hot_links_reported;
    Alcotest.test_case "block never sheds" `Quick test_block_never_sheds;
    Alcotest.test_case "free run = repeated flooding" `Quick test_free_run_matches_flood_costs;
    Alcotest.test_case "workload validation" `Quick test_workload_validation;
    Alcotest.test_case "chaos mid-stream" `Quick test_chaos_midstream;
    Alcotest.test_case "lhg-traffic/1 shape + determinism" `Quick test_json_shape;
  ]
