(* Aggregated test entry point: one Alcotest run, one suite per module. *)

let () =
  Alcotest.run "lhg"
    [
      ("prng", Test_prng.suite);
      ("pqueue", Test_pqueue.suite);
      ("union_find", Test_union_find.suite);
      ("graph", Test_graph.suite);
      ("bfs", Test_bfs.suite);
      ("csr", Test_csr.suite);
      ("components", Test_components.suite);
      ("paths", Test_paths.suite);
      ("maxflow", Test_maxflow.suite);
      ("gomory_hu", Test_gomory_hu.suite);
      ("spectral", Test_spectral.suite);
      ("connectivity", Test_connectivity.suite);
      ("menger", Test_menger.suite);
      ("minimality", Test_minimality.suite);
      ("degree", Test_degree.suite);
      ("generators", Test_generators.suite);
      ("dot", Test_dot.suite);
      ("articulation", Test_articulation.suite);
      ("serial", Test_serial.suite);
      ("harary", Test_harary.suite);
      ("shape", Test_shape.suite);
      ("skeleton", Test_skeleton.suite);
      ("realize", Test_realize.suite);
      ("constraint", Test_constraint.suite);
      ("existence", Test_existence.suite);
      ("regularity", Test_regularity.suite);
      ("build", Test_build.suite);
      ("enumerate", Test_enumerate.suite);
      ("verify", Test_verify.suite);
      ("route", Test_route.suite);
      ("viz", Test_viz.suite);
      ("overlay", Test_overlay.suite);
      ("incremental", Test_incremental.suite);
      ("topo", Test_topo.suite);
      ("topo2", Test_topo2.suite);
      ("sim", Test_sim.suite);
      ("network", Test_network.suite);
      ("trace", Test_trace.suite);
      ("flooding", Test_flooding.suite);
      ("gossip", Test_gossip.suite);
      ("sync", Test_sync.suite);
      ("runner", Test_runner.suite);
      ("multi", Test_multi.suite);
      ("reliability", Test_reliability.suite);
      ("integration", Test_integration.suite);
      ("api_coverage", Test_api_coverage.suite);
      ("properties", Test_properties.suite);
      ("reliable", Test_reliable.suite);
      ("pif", Test_pif.suite);
      ("obs", Test_obs.suite);
      ("topo_registry", Test_topo_registry.suite);
    ]
