open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Pif = Flood.Pif

let test_completes_and_informs_all () =
  let g = petersen () in
  let r = Pif.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  check_bool "completed" true r.Pif.completed;
  Array.iter (fun i -> check_bool "informed" true i) r.Pif.informed

let test_message_count_two_per_edge () =
  (* every propagate is answered by exactly one echo: 2 messages per
     directed use... total = 2 * (number of propagates) = 2 * (2m - (n-1))?
     PIF sends propagates on every edge except back to parents:
     propagates = 2m - (n-1); echoes = propagates. *)
  List.iter
    (fun g ->
      let r = Pif.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
      let propagates = (2 * Graph.m g) - (Graph.n g - 1) in
      check_int "messages = 2 * propagates" (2 * propagates) r.Pif.messages)
    [ petersen (); Generators.cycle 9; Generators.complete 6; Generators.grid ~rows:3 ~cols:4 ]

let test_detection_after_actual_completion () =
  let g = Generators.grid ~rows:5 ~cols:5 in
  let r = Pif.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  check_bool "completed" true r.Pif.completed;
  check_bool "detected after last delivery" true
    (r.Pif.completion_detected_at >= r.Pif.last_delivery_at)

let test_detection_time_about_twice_ecc () =
  let g = Generators.path_graph 10 in
  let r = Pif.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  (* unit latency: wave down 9 hops, echoes back 9 hops *)
  Alcotest.(check (float 1e-9)) "2 * ecc" 18.0 r.Pif.completion_detected_at

let test_single_vertex () =
  let g = Graph.create ~n:1 in
  let r = Pif.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  check_bool "trivially complete" true r.Pif.completed;
  check_int "no messages" 0 r.Pif.messages

let test_crash_blocks_completion () =
  (* a crashed node swallows the echo: the source must not claim success *)
  let b = Lhg_core.Build.kdiamond_exn ~n:20 ~k:3 in
  let g = b.Lhg_core.Build.graph in
  let r = Pif.run_env ~env:(Flood.Env.make ~crashed:[ 7 ] ()) ~graph:g ~source:0 () in
  check_bool "not completed under crash" false r.Pif.completed;
  (* but the flooding wave itself still reaches all other survivors *)
  Array.iteri
    (fun v i -> if v <> 7 then check_bool "survivor informed" true i)
    r.Pif.informed

let test_disconnected_source_component_only () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  let r = Pif.run_env ~env:Flood.Env.default ~graph:g ~source:0 () in
  check_bool "completed for its component" true r.Pif.completed;
  check_bool "other component untouched" false r.Pif.informed.(3)

let test_lhg_detection_logarithmic () =
  let b = Lhg_core.Build.kdiamond_exn ~n:302 ~k:4 in
  let r = Pif.run_env ~env:Flood.Env.default ~graph:b.Lhg_core.Build.graph ~source:0 () in
  check_bool "completed" true r.Pif.completed;
  check_bool "detection fast" true (r.Pif.completion_detected_at <= 24.0);
  let h = Harary.make ~k:4 ~n:302 in
  let rh = Pif.run_env ~env:Flood.Env.default ~graph:h ~source:0 () in
  check_bool "harary detection slow" true
    (rh.Pif.completion_detected_at > 4.0 *. r.Pif.completion_detected_at)

let test_crashed_source_rejected () =
  let g = Generators.cycle 4 in
  Alcotest.check_raises "crashed source" (Invalid_argument "Pif.run: source is crashed")
    (fun () -> ignore (Pif.run_env ~env:(Flood.Env.make ~crashed:[ 0 ] ()) ~graph:g ~source:0 ()))

let prop_pif_completes_on_connected =
  qcheck ~count:50 "PIF completes on random connected graphs" QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rngv = Graph_core.Prng.create ~seed in
      let n = 4 + Graph_core.Prng.int rngv 25 in
      let g = Generators.gnp rngv ~n ~p:0.2 in
      for v = 0 to n - 1 do
        Graph.add_edge g v ((v + 1) mod n)
      done;
      let r = Pif.run_env ~env:Flood.Env.default ~graph:g ~source:(Graph_core.Prng.int rngv n) () in
      r.Pif.completed && Array.for_all Fun.id r.Pif.informed)

let suite =
  [
    Alcotest.test_case "completes and informs" `Quick test_completes_and_informs_all;
    Alcotest.test_case "two messages per propagate" `Quick test_message_count_two_per_edge;
    Alcotest.test_case "detection after completion" `Quick test_detection_after_actual_completion;
    Alcotest.test_case "detection time 2*ecc" `Quick test_detection_time_about_twice_ecc;
    Alcotest.test_case "single vertex" `Quick test_single_vertex;
    Alcotest.test_case "crash blocks completion" `Quick test_crash_blocks_completion;
    Alcotest.test_case "disconnected component" `Quick test_disconnected_source_component_only;
    Alcotest.test_case "lhg detection logarithmic" `Quick test_lhg_detection_logarithmic;
    Alcotest.test_case "crashed source rejected" `Quick test_crashed_source_rejected;
    prop_pif_completes_on_connected;
  ]
