open Helpers
module Prng = Graph_core.Prng

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_int_range () =
  let g = rng () in
  for bound = 1 to 50 do
    for _ = 1 to 20 do
      let v = Prng.int g bound in
      check_bool "in range" true (v >= 0 && v < bound)
    done
  done

let test_int_bad_bound () =
  let g = rng () in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_covers_values () =
  let g = rng ~salt:1 () in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int g 4) <- true
  done;
  check_bool "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let g = rng ~salt:2 () in
  for _ = 1 to 200 do
    let v = Prng.float g 3.0 in
    check_bool "in [0,3)" true (v >= 0.0 && v < 3.0)
  done

let test_copy_independent () =
  let a = rng ~salt:3 () in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copies agree" (Prng.bits64 a) (Prng.bits64 b);
  ignore (Prng.bits64 a);
  (* advancing [a] must not advance [b]: replay b and compare histories *)
  let a' = rng ~salt:3 () in
  ignore (Prng.bits64 a');
  let b' = Prng.copy a' in
  ignore (Prng.bits64 b');
  Alcotest.(check int64) "b unaffected by a" (Prng.bits64 b) (Prng.bits64 b')

let test_split_streams_differ () =
  let a = rng ~salt:4 () in
  let b = Prng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  check_bool "split streams differ" true !differs

(* The multicore Monte-Carlo sharding leans on split streams being (a)
   a pure function of the parent state and (b) collision-free in
   practice: shard results must be reproducible and statistically
   independent. 10^6 draws across the split streams makes any
   state-reuse bug (two streams sharing a splitmix trajectory) a
   guaranteed collision storm, while honest 62-bit outputs collide with
   probability ~1e-7. *)
let prop_split_reproducible =
  Helpers.qcheck ~count:20 "split streams reproducible"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let streams_of () =
        let root = Prng.create ~seed in
        Array.init 4 (fun _ -> Prng.split root)
      in
      let a = streams_of () and b = streams_of () in
      let ok = ref true in
      Array.iteri
        (fun i ga ->
          for _ = 1 to 50 do
            if Prng.bits64 ga <> Prng.bits64 b.(i) then ok := false
          done)
        a;
      !ok)

let prop_split_streams_non_overlapping =
  (* 8 split streams x 125k draws = 10^6 draws total per case; any
     duplicate draw across (or within) streams fails *)
  Helpers.qcheck ~count:3 "split streams pairwise non-overlapping on 1e6 draws"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let root = Prng.create ~seed in
      let streams = Array.init 8 (fun _ -> Prng.split root) in
      let draws_per_stream = 125_000 in
      let seen = Hashtbl.create (8 * draws_per_stream) in
      let clash = ref false in
      Array.iter
        (fun g ->
          for _ = 1 to draws_per_stream do
            let v = Prng.bits64 g in
            if Hashtbl.mem seen v then clash := true else Hashtbl.add seen v ()
          done)
        streams;
      not !clash)

let test_split_independent_of_parent_advance () =
  (* the child stream is seeded from the parent's output at split time
     and shares no state afterwards *)
  let p1 = Prng.create ~seed:99 and p2 = Prng.create ~seed:99 in
  let c1 = Prng.split p1 and c2 = Prng.split p2 in
  for _ = 1 to 10 do
    ignore (Prng.bits64 p1)
  done;
  for _ = 1 to 100 do
    Alcotest.(check int64) "child unaffected by parent" (Prng.bits64 c1) (Prng.bits64 c2)
  done

let test_exponential_positive () =
  let g = rng ~salt:5 () in
  for _ = 1 to 100 do
    check_bool "positive" true (Prng.exponential g ~mean:2.0 > 0.0)
  done

let test_exponential_mean () =
  let g = rng ~salt:6 () in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Prng.exponential g ~mean:2.0
  done;
  let mean = !total /. float_of_int n in
  check_bool "empirical mean near 2" true (abs_float (mean -. 2.0) < 0.1)

let test_shuffle_is_permutation () =
  let g = rng ~salt:7 () in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_permutation_valid () =
  let g = rng ~salt:8 () in
  let p = Prng.permutation g 30 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation of 0..29" (Array.init 30 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let g = rng ~salt:9 () in
  List.iter
    (fun (k, n) ->
      let s = Prng.sample_without_replacement g ~k ~n in
      check_int "size" k (List.length s);
      check_int "distinct" k (List.length (List.sort_uniq compare s));
      List.iter (fun v -> check_bool "in range" true (v >= 0 && v < n)) s)
    [ (0, 10); (1, 1); (5, 10); (10, 10); (3, 1000); (999, 1000) ]

let test_sample_bad_args () =
  let g = rng ~salt:10 () in
  Alcotest.check_raises "k > n" (Invalid_argument "Prng.sample_without_replacement") (fun () ->
      ignore (Prng.sample_without_replacement g ~k:5 ~n:4))

let test_pick () =
  let g = rng ~salt:11 () in
  for _ = 1 to 50 do
    let v = Prng.pick g [| 7; 8; 9 |] in
    check_bool "element of array" true (List.mem v [ 7; 8; 9 ])
  done

let test_bool_balanced () =
  let g = rng ~salt:12 () in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool g then incr trues
  done;
  check_bool "roughly fair" true (!trues > 4_500 && !trues < 5_500)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "int covers values" `Quick test_int_covers_values;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split streams differ" `Quick test_split_streams_differ;
    prop_split_reproducible;
    prop_split_streams_non_overlapping;
    Alcotest.test_case "split independent of parent" `Quick test_split_independent_of_parent_advance;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "permutation valid" `Quick test_permutation_valid;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample bad args" `Quick test_sample_bad_args;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "bool balanced" `Slow test_bool_balanced;
  ]
