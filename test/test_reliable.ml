open Helpers
module Generators = Graph_core.Generators
module Reliable = Flood.Reliable
module Multi = Flood.Multi

let pub ?(t = 0.0) origin id = { Multi.origin; inject_time = t; payload_id = id }

let test_lossless_completes_like_flood () =
  let g = petersen () in
  let r =
    Reliable.run_env ~env:Flood.Env.default ~graph:g ~publications:[ pub 0 1 ] ~anti_entropy_period:5.0 ~duration:100.0 ()
  in
  check_bool "complete" true r.Reliable.complete;
  Alcotest.(check (float 1e-9)) "full fraction" 1.0 r.Reliable.delivered_fraction;
  (match r.Reliable.completion_time with
  | Some t -> check_bool "finished during flood phase" true (t <= 3.0)
  | None -> Alcotest.fail "completion time");
  (* flooding alone used 2m-(n-1) sends *)
  check_int "flood sends" (Flood.Sync.message_bound g) r.Reliable.flood_messages

let test_lossy_flood_alone_incomplete () =
  (* sanity for the premise: at 40% loss, plain flooding misses nodes *)
  let g = Generators.cycle 40 in
  let f = Flood.Flooding.run_env ~env:(Flood.Env.make ~loss_rate:0.4 ~seed:5 ()) ~graph:g ~source:0 () in
  check_bool "plain flood misses someone" false f.Flood.Flooding.covers_all_alive

let test_lossy_repair_completes () =
  let g = Generators.cycle 40 in
  let r =
    Reliable.run_env ~env:(Flood.Env.make ~loss_rate:0.4 ~seed:5 ()) ~graph:g ~publications:[ pub 0 1 ] ~anti_entropy_period:2.0 ~duration:4000.0 ()
  in
  check_bool "repaired to completeness" true r.Reliable.complete;
  check_bool "repair did real work" true (r.Reliable.repair_messages > 0)

let test_multi_payload_with_loss () =
  let b = Lhg_core.Build.kdiamond_exn ~n:32 ~k:4 in
  let g = b.Lhg_core.Build.graph in
  let pubs = List.init 5 (fun i -> pub ~t:(float_of_int i) (i * 6) i) in
  let r =
    Reliable.run_env ~env:(Flood.Env.make ~loss_rate:0.2 ~seed:9 ()) ~graph:g ~publications:pubs ~anti_entropy_period:3.0 ~duration:2000.0 ()
  in
  check_bool "all payloads everywhere" true r.Reliable.complete

let test_crashed_nodes_excluded () =
  let g = Generators.complete 8 in
  let r =
    Reliable.run_env ~env:(Flood.Env.make ~crashed:[ 3; 4 ] ()) ~graph:g ~publications:[ pub 0 1 ] ~anti_entropy_period:2.0 ~duration:100.0 ()
  in
  check_bool "complete over survivors" true r.Reliable.complete

let test_horizon_truncates () =
  (* a duration too short for even one hop: incomplete *)
  let g = Generators.cycle 30 in
  let r =
    Reliable.run_env ~env:(Flood.Env.make ~latency:(Netsim.Network.constant_latency 10.0) ()) ~graph:g ~publications:[ pub 0 1 ] ~anti_entropy_period:5.0 ~duration:15.0 ()
  in
  check_bool "horizon too early" false r.Reliable.complete;
  check_bool "partial progress" true (r.Reliable.delivered_fraction > 0.0)

let test_repair_overhead_bounded () =
  let g = Generators.cycle 20 in
  let period = 5.0 and duration = 50.0 in
  let r =
    Reliable.run_env ~env:Flood.Env.default ~graph:g ~publications:[ pub 0 1 ] ~anti_entropy_period:period ~duration ()
  in
  (* each node sends at most ceil(duration/period)+1 digests (phase
     shift); replies only when the peer is missing data (none, since
     lossless) *)
  check_bool "digest budget" true
    (r.Reliable.repair_messages <= 20 * (int_of_float (duration /. period) + 1))

let test_validation () =
  let g = Generators.cycle 5 in
  Alcotest.check_raises "bad period" (Invalid_argument "Reliable.run: non-positive period")
    (fun () ->
      ignore (Reliable.run_env ~env:Flood.Env.default ~graph:g ~publications:[] ~anti_entropy_period:0.0 ~duration:1.0 ()));
  Alcotest.check_raises "dup ids" (Invalid_argument "Reliable.run: duplicate payload ids")
    (fun () ->
      ignore
        (Reliable.run_env ~env:Flood.Env.default ~graph:g ~publications:[ pub 0 1; pub 1 1 ] ~anti_entropy_period:1.0 ~duration:1.0 ()))

let suite =
  [
    Alcotest.test_case "lossless completes" `Quick test_lossless_completes_like_flood;
    Alcotest.test_case "lossy flood incomplete" `Quick test_lossy_flood_alone_incomplete;
    Alcotest.test_case "lossy repair completes" `Quick test_lossy_repair_completes;
    Alcotest.test_case "multi payload with loss" `Quick test_multi_payload_with_loss;
    Alcotest.test_case "crashed excluded" `Quick test_crashed_nodes_excluded;
    Alcotest.test_case "horizon truncates" `Quick test_horizon_truncates;
    Alcotest.test_case "repair overhead bounded" `Quick test_repair_overhead_bounded;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
