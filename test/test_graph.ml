open Helpers
module Graph = Graph_core.Graph
module Prng = Graph_core.Prng

let test_create_empty () =
  let g = Graph.create ~n:5 in
  check_int "n" 5 (Graph.n g);
  check_int "m" 0 (Graph.m g);
  for v = 0 to 4 do
    check_int "degree" 0 (Graph.degree g v)
  done

let test_create_negative () =
  Alcotest.check_raises "negative n" (Invalid_argument "Graph.create: negative n") (fun () ->
      ignore (Graph.create ~n:(-1)))

let test_add_edge () =
  let g = Graph.create ~n:3 in
  Graph.add_edge g 0 1;
  check_bool "has 0-1" true (Graph.has_edge g 0 1);
  check_bool "has 1-0" true (Graph.has_edge g 1 0);
  check_bool "no 0-2" false (Graph.has_edge g 0 2);
  check_int "m" 1 (Graph.m g)

let test_add_edge_idempotent () =
  let g = Graph.create ~n:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Graph.add_edge g 0 1;
  check_int "m stays 1" 1 (Graph.m g)

let test_self_loop_rejected () =
  let g = Graph.create ~n:3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      Graph.add_edge g 1 1)

let test_out_of_range () =
  let g = Graph.create ~n:3 in
  Alcotest.check_raises "range" (Invalid_argument "Graph.add_edge: vertex 3 out of range [0,3)")
    (fun () -> Graph.add_edge g 0 3)

let test_remove_edge () =
  let g = house () in
  let m0 = Graph.m g in
  Graph.remove_edge g 0 2;
  check_bool "gone" false (Graph.has_edge g 0 2);
  check_int "m" (m0 - 1) (Graph.m g);
  Graph.remove_edge g 0 2;
  check_int "noop" (m0 - 1) (Graph.m g)

let test_neighbors_sorted () =
  let g = Graph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3) ] in
  Alcotest.(check (list int)) "ascending" [ 0; 3; 4 ] (Graph.neighbors g 2)

let test_iter_edges_once_each () =
  let g = house () in
  let count = ref 0 in
  Graph.iter_edges g (fun u v ->
      incr count;
      check_bool "u < v" true (u < v));
  check_int "each edge once" (Graph.m g) !count

let test_edges_list () =
  let g = Graph.of_edges ~n:4 [ (3, 1); (0, 2) ] in
  Alcotest.(check (list (pair int int))) "sorted pairs" [ (0, 2); (1, 3) ] (Graph.edges g)

let test_copy_isolated () =
  let g = house () in
  let g' = Graph.copy g in
  Graph.add_edge g' 1 3;
  check_bool "original unchanged" false (Graph.has_edge g 1 3);
  check_bool "copy changed" true (Graph.has_edge g' 1 3)

let test_without_edge () =
  let g = house () in
  let g' = Graph.without_edge g 0 2 in
  check_bool "original keeps edge" true (Graph.has_edge g 0 2);
  check_bool "copy lacks edge" false (Graph.has_edge g' 0 2)

let test_without_vertices () =
  let g = barbell () in
  let g' = Graph.without_vertices g [ 2 ] in
  check_int "same vertex count" (Graph.n g) (Graph.n g');
  check_int "vertex 2 isolated" 0 (Graph.degree g' 2);
  check_bool "rest intact" true (Graph.has_edge g' 0 1);
  check_bool "bridge gone" false (Graph.has_edge g' 2 3)

let test_equal () =
  let a = house () and b = house () in
  check_bool "equal fixtures" true (Graph.equal a b);
  Graph.remove_edge b 0 2;
  check_bool "different after removal" false (Graph.equal a b)

let test_fold_neighbors () =
  let g = house () in
  let sum = Graph.fold_neighbors g 0 ~init:0 ~f:( + ) in
  check_int "neighbour sum of 0" (1 + 2 + 3) sum

let test_is_symmetric () =
  check_bool "fixture symmetric" true (Graph.is_symmetric (petersen ()))

let test_degree_sum () =
  let g = petersen () in
  check_int "handshake lemma" (2 * Graph.m g) (Graph.degree_sum g)

let prop_of_edges_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_bound 60) (pair (int_bound 19) (int_bound 19))
      |> map (List.filter (fun (u, v) -> u <> v)))
  in
  qcheck "of_edges keeps exactly the distinct edges" gen (fun es ->
      let g = Graph.of_edges ~n:20 es in
      let expected = List.sort_uniq compare (List.map (fun (u, v) -> (min u v, max u v)) es) in
      sorted_edges g = expected && Graph.m g = List.length expected)

let prop_remove_all_edges_empties =
  let gen = QCheck2.Gen.(list_size (int_bound 40) (pair (int_bound 9) (int_bound 9))) in
  qcheck "removing every edge empties the graph" gen (fun es ->
      let es = List.filter (fun (u, v) -> u <> v) es in
      let g = Graph.of_edges ~n:10 es in
      Graph.iter_edges (Graph.copy g) (fun _ _ -> ());
      List.iter (fun (u, v) -> Graph.remove_edge g u v) (Graph.edges g);
      Graph.m g = 0 && Graph.degree_sum g = 0)

let suite =
  [
    Alcotest.test_case "create empty" `Quick test_create_empty;
    Alcotest.test_case "create negative" `Quick test_create_negative;
    Alcotest.test_case "add edge" `Quick test_add_edge;
    Alcotest.test_case "add edge idempotent" `Quick test_add_edge_idempotent;
    Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "remove edge" `Quick test_remove_edge;
    Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "iter_edges visits once" `Quick test_iter_edges_once_each;
    Alcotest.test_case "edges list" `Quick test_edges_list;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
    Alcotest.test_case "without_edge" `Quick test_without_edge;
    Alcotest.test_case "without_vertices" `Quick test_without_vertices;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "fold_neighbors" `Quick test_fold_neighbors;
    Alcotest.test_case "is_symmetric" `Quick test_is_symmetric;
    Alcotest.test_case "degree sum" `Quick test_degree_sum;
    prop_of_edges_roundtrip;
    prop_remove_all_edges_empties;
  ]
