(* Flood.Env: the unified run environment — now the *sole* run
   configuration (the legacy optional-argument wrappers are gone). The
   builders must be plain field updates, run_env must be deterministic
   in the environment alone, and the capacity/queueing knobs must reach
   the network through Env.network_of_graph like every other field. *)

open Helpers
module Graph = Graph_core.Graph
module Env = Flood.Env
module Network = Netsim.Network

let graph () = (Lhg_core.Build.kdiamond_exn ~n:18 ~k:3).Lhg_core.Build.graph

let test_builders () =
  let reg = Obs.Registry.create () in
  let env =
    Env.default |> Env.with_loss_rate 0.1 |> Env.with_processing_delay 0.25
    |> Env.with_crashed [ 2; 5 ]
    |> Env.with_failed_links [ (0, 3) ]
    |> Env.with_seed 99 |> Env.with_obs reg
  in
  check_bool "loss_rate" true (env.Env.loss_rate = 0.1);
  check_bool "processing_delay" true (env.Env.processing_delay = 0.25);
  check_bool "crashed" true (env.Env.crashed = [ 2; 5 ]);
  check_bool "failed_links" true (env.Env.failed_links = [ (0, 3) ]);
  check_bool "seed set" true (env.Env.seed = Some 99);
  check_bool "obs replaced" true (env.Env.obs == reg);
  check_int "seed_value reads the seed" 99 (Env.seed_value env);
  check_int "seed_value default is the sim default" 0x51 (Env.seed_value Env.default);
  check_bool "default has no hook" true (Env.default.Env.prepare = None);
  check_bool "default obs disabled" false (Obs.Registry.enabled Env.default.Env.obs)

let test_workload_builders () =
  let env =
    Env.default |> Env.with_link_capacity 2.0 |> Env.with_queue_cap 8
    |> Env.with_queue_policy Network.Block
  in
  check_bool "link_capacity" true (env.Env.link_capacity = Some 2.0);
  check_bool "queue_cap" true (env.Env.queue_cap = Some 8);
  check_bool "queue_policy" true (env.Env.queue_policy = Some Network.Block);
  check_bool "default has infinite links" true (Env.default.Env.link_capacity = None);
  let cleared = Env.without_link_capacity env in
  check_bool "without_link_capacity clears all three" true
    (cleared.Env.link_capacity = None && cleared.Env.queue_cap = None
   && cleared.Env.queue_policy = None)

let test_env_only_determinism () =
  (* the environment is the whole configuration: same env, same answer,
     on either engine *)
  let g = graph () in
  let env = Env.make ~loss_rate:0.2 ~crashed:[ 4 ] ~failed_links:[ (0, 3) ] ~seed:7 () in
  let a = Flood.Flooding.run_env ~env ~graph:g ~source:0 () in
  let b = Flood.Flooding.run_env ~env ~graph:g ~source:0 () in
  check_bool "run_env is a function of env" true (a = b);
  let heap =
    Flood.Flooding.run_env ~env:(env |> Env.with_engine Netsim.Sim.Heap) ~graph:g ~source:0 ()
  in
  check_bool "identical across engines" true (a = heap)

let test_capacity_reaches_network () =
  (* with a finite capacity, flooding's fan-out serialises per link:
     completion stretches and (with unit rate) roughly doubles depth;
     without it, behaviour is exactly the infinite-bandwidth run *)
  let g = graph () in
  let free = Flood.Flooding.run_env ~env:(Env.make ~seed:3 ()) ~graph:g ~source:0 () in
  let capped =
    Flood.Flooding.run_env
      ~env:(Env.default |> Env.with_seed 3 |> Env.with_link_capacity 1.0)
      ~graph:g ~source:0 ()
  in
  check_bool "capped still covers" true capped.Flood.Flooding.covers_all_alive;
  check_bool "queueing delays completion" true
    (capped.Flood.Flooding.completion_time > free.Flood.Flooding.completion_time);
  check_int "same messages on the wire" free.Flood.Flooding.messages_sent
    capped.Flood.Flooding.messages_sent;
  (* one flood puts at most one message on each directed link, so
     drop-tail needs concurrent payloads to bite: three simultaneous
     publications through a slow tight queue must shed load *)
  let pubs =
    [
      { Flood.Multi.origin = 0; inject_time = 0.0; payload_id = 0 };
      { Flood.Multi.origin = 1; inject_time = 0.0; payload_id = 1 };
      { Flood.Multi.origin = 2; inject_time = 0.0; payload_id = 2 };
    ]
  in
  let reach r =
    List.fold_left (fun acc m -> acc + m.Flood.Multi.delivered_count) 0 r.Flood.Multi.per_message
  in
  let wide = Flood.Multi.run_env ~env:(Env.make ~seed:3 ()) ~graph:g ~publications:pubs () in
  let tight =
    Flood.Multi.run_env
      ~env:
        (Env.default |> Env.with_seed 3
        |> Env.with_link_capacity 0.05
        |> Env.with_queue_cap 1)
      ~graph:g ~publications:pubs ()
  in
  check_bool "infinite links cover everything" true wide.Flood.Multi.all_covered;
  check_bool "drop-tail sheds under pressure" true (reach tight < reach wide)

let test_gossip_pif_validation () =
  let g = graph () in
  Alcotest.check_raises "pif rejects lossy channels"
    (Invalid_argument "Pif.run: loss_rate unsupported (echo accounting assumes reliable channels)")
    (fun () ->
      ignore (Flood.Pif.run_env ~env:(Env.make ~loss_rate:0.1 ()) ~graph:g ~source:0 ()));
  (* gossip consumes the env seed: different seeds, different spread *)
  let r5 = Flood.Gossip.run_env ~env:(Env.make ~seed:5 ()) ~graph:g ~source:0 ~fanout:1 ~ttl:3 () in
  let r5' = Flood.Gossip.run_env ~env:(Env.make ~seed:5 ()) ~graph:g ~source:0 ~fanout:1 ~ttl:3 () in
  check_bool "gossip deterministic in env" true
    (r5.Flood.Gossip.delivered = r5'.Flood.Gossip.delivered)

let test_runner_env () =
  let g = graph () in
  let reg = Obs.Registry.create () in
  let env = Env.make ~loss_rate:0.05 ~seed:9 ~obs:reg () in
  let r =
    Flood.Runner.flood_trials_env ~link_failures:1 ~env ~graph:g ~source:0 ~crash_count:2
      ~trials:12 ()
  in
  check_bool "hop_counts populated via enabled registry" true (r.Flood.Runner.hop_counts <> [||]);
  (* with the disabled default registry the env path records no hops *)
  let bare =
    Flood.Runner.flood_trials_env ~link_failures:1 ~env:(Env.make ~loss_rate:0.05 ~seed:9 ())
      ~graph:g ~source:0 ~crash_count:2 ~trials:12 ()
  in
  check_bool "disabled registry -> no hop_counts" true (bare.Flood.Runner.hop_counts = [||]);
  check_bool "same trials otherwise" true
    (bare.Flood.Runner.mean_coverage = r.Flood.Runner.mean_coverage)

let test_prepare_hook_runs () =
  (* a hook that crashes a node before the first send is equivalent to
     a static crash of the same node *)
  let g = graph () in
  let hook = { Env.prepare = (fun net -> Network.crash net 4) } in
  let hooked =
    Flood.Flooding.run_env ~env:Env.(default |> with_seed 2 |> with_prepare hook) ~graph:g
      ~source:0 ()
  in
  let static =
    Flood.Flooding.run_env ~env:(Env.make ~seed:2 ~crashed:[ 4 ] ()) ~graph:g ~source:0 ()
  in
  check_bool "hook crash = static crash" true
    (hooked.Flood.Flooding.delivered = static.Flood.Flooding.delivered)

let suite =
  [
    Alcotest.test_case "builders are field updates" `Quick test_builders;
    Alcotest.test_case "workload builders" `Quick test_workload_builders;
    Alcotest.test_case "env-only determinism" `Quick test_env_only_determinism;
    Alcotest.test_case "capacity reaches every run surface" `Quick test_capacity_reaches_network;
    Alcotest.test_case "gossip + pif validation" `Quick test_gossip_pif_validation;
    Alcotest.test_case "runner env path" `Quick test_runner_env;
    Alcotest.test_case "prepare hook" `Quick test_prepare_hook_runs;
  ]
