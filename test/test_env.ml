(* Flood.Env: the unified run environment. The builders must be plain
   field updates, and every legacy optional-argument [run] must be an
   exact wrapper over its [run_env] — same arguments, same answer.
   This is the one file allowed to call the [@@alert legacy] wrappers:
   pinning the equivalence is its whole point. *)
[@@@alert "-legacy"]

open Helpers
module Graph = Graph_core.Graph
module Env = Flood.Env
module Network = Netsim.Network

let graph () = (Lhg_core.Build.kdiamond_exn ~n:18 ~k:3).Lhg_core.Build.graph

let test_builders () =
  let reg = Obs.Registry.create () in
  let env =
    Env.default |> Env.with_loss_rate 0.1 |> Env.with_processing_delay 0.25
    |> Env.with_crashed [ 2; 5 ]
    |> Env.with_failed_links [ (0, 3) ]
    |> Env.with_seed 99 |> Env.with_obs reg
  in
  check_bool "loss_rate" true (env.Env.loss_rate = 0.1);
  check_bool "processing_delay" true (env.Env.processing_delay = 0.25);
  check_bool "crashed" true (env.Env.crashed = [ 2; 5 ]);
  check_bool "failed_links" true (env.Env.failed_links = [ (0, 3) ]);
  check_bool "seed set" true (env.Env.seed = Some 99);
  check_bool "obs replaced" true (env.Env.obs == reg);
  check_int "seed_value reads the seed" 99 (Env.seed_value env);
  check_int "seed_value default is the sim default" 0x51 (Env.seed_value Env.default);
  check_bool "default has no hook" true (Env.default.Env.prepare = None);
  check_bool "default obs disabled" false (Obs.Registry.enabled Env.default.Env.obs)

let test_flooding_wrapper () =
  let g = graph () in
  let legacy =
    Flood.Flooding.run ~loss_rate:0.2 ~crashed:[ 4 ]
      ~failed_links:[ (0, 3) ]
      ~seed:7 ~graph:g ~source:0 ()
  in
  let env =
    Env.make ~loss_rate:0.2 ~crashed:[ 4 ] ~failed_links:[ (0, 3) ] ~seed:7 ()
  in
  let r = Flood.Flooding.run_env ~env ~graph:g ~source:0 () in
  check_bool "flooding run = run_env" true (legacy = r)

let test_sync_wrapper () =
  let g = graph () in
  let alive = Array.init (Graph.n g) (fun v -> v <> 4) in
  let legacy = Flood.Sync.flood ~alive g ~source:0 in
  let r = Flood.Sync.flood_env ~env:(Env.make ~crashed:[ 4 ] ()) g ~source:0 in
  check_bool "sync flood = flood_env" true (legacy = r)

let test_multi_reliable_wrapper () =
  let g = graph () in
  let pubs =
    [
      { Flood.Multi.origin = 0; inject_time = 0.0; payload_id = 0 };
      { Flood.Multi.origin = 5; inject_time = 1.5; payload_id = 1 };
    ]
  in
  let legacy = Flood.Multi.run ~loss_rate:0.1 ~seed:3 ~graph:g ~publications:pubs () in
  let env = Env.make ~loss_rate:0.1 ~seed:3 () in
  check_bool "multi run = run_env" true
    (legacy = Flood.Multi.run_env ~env ~graph:g ~publications:pubs ());
  let legacy =
    Flood.Reliable.run ~loss_rate:0.3 ~seed:3 ~graph:g ~publications:pubs
      ~anti_entropy_period:2.0 ~duration:40.0 ()
  in
  let env = Env.make ~loss_rate:0.3 ~seed:3 () in
  check_bool "reliable run = run_env" true
    (legacy
    = Flood.Reliable.run_env ~env ~graph:g ~publications:pubs ~anti_entropy_period:2.0
        ~duration:40.0 ())

let test_gossip_pif_wrapper () =
  let g = graph () in
  let legacy = Flood.Gossip.run ~seed:5 ~crashed:[ 2 ] ~graph:g ~source:0 ~fanout:3 ~ttl:8 () in
  let env = Env.make ~seed:5 ~crashed:[ 2 ] () in
  check_bool "gossip run = run_env" true
    (legacy = Flood.Gossip.run_env ~env ~graph:g ~source:0 ~fanout:3 ~ttl:8 ());
  let legacy = Flood.Pif.run ~seed:5 ~graph:g ~source:1 () in
  check_bool "pif run = run_env" true
    (legacy = Flood.Pif.run_env ~env:(Env.make ~seed:5 ()) ~graph:g ~source:1 ());
  Alcotest.check_raises "pif rejects lossy channels"
    (Invalid_argument "Pif.run: loss_rate unsupported (echo accounting assumes reliable channels)")
    (fun () ->
      ignore (Flood.Pif.run_env ~env:(Env.make ~loss_rate:0.1 ()) ~graph:g ~source:0 ()))

let test_runner_wrapper () =
  let g = graph () in
  let legacy =
    Flood.Runner.flood_trials ~loss_rate:0.05 ~link_failures:1 ~graph:g ~source:0
      ~crash_count:2 ~trials:12 ~seed:9 ()
  in
  (* the legacy wrapper defaults to a private enabled registry; match it *)
  let env = Env.make ~loss_rate:0.05 ~seed:9 ~obs:(Obs.Registry.create ()) () in
  let r =
    Flood.Runner.flood_trials_env ~link_failures:1 ~env ~graph:g ~source:0 ~crash_count:2
      ~trials:12 ()
  in
  check_bool "runner flood_trials = flood_trials_env" true (legacy = r);
  check_bool "hop_counts populated via enabled registry" true
    (legacy.Flood.Runner.hop_counts <> [||]);
  (* with the disabled default registry the env path records no hops *)
  let bare =
    Flood.Runner.flood_trials_env ~link_failures:1 ~env:(Env.make ~loss_rate:0.05 ~seed:9 ())
      ~graph:g ~source:0 ~crash_count:2 ~trials:12 ()
  in
  check_bool "disabled registry -> no hop_counts" true (bare.Flood.Runner.hop_counts = [||]);
  check_bool "same trials otherwise" true
    (bare.Flood.Runner.mean_coverage = legacy.Flood.Runner.mean_coverage);
  let legacy_g =
    Flood.Runner.gossip_trials ~graph:g ~source:0 ~fanout:3 ~crash_count:1 ~trials:8 ~seed:4 ()
  in
  let env = Env.make ~seed:4 ~obs:(Obs.Registry.create ()) () in
  check_bool "runner gossip_trials = gossip_trials_env" true
    (legacy_g
    = Flood.Runner.gossip_trials_env ~env ~graph:g ~source:0 ~fanout:3 ~crash_count:1
        ~trials:8 ())

let test_prepare_hook_runs () =
  (* a hook that crashes a node before the first send is equivalent to
     a static crash of the same node *)
  let g = graph () in
  let hook = { Env.prepare = (fun net -> Network.crash net 4) } in
  let hooked =
    Flood.Flooding.run_env ~env:Env.(default |> with_seed 2 |> with_prepare hook) ~graph:g
      ~source:0 ()
  in
  let static =
    Flood.Flooding.run_env ~env:(Env.make ~seed:2 ~crashed:[ 4 ] ()) ~graph:g ~source:0 ()
  in
  check_bool "hook crash = static crash" true
    (hooked.Flood.Flooding.delivered = static.Flood.Flooding.delivered)

let suite =
  [
    Alcotest.test_case "builders are field updates" `Quick test_builders;
    Alcotest.test_case "flooding wrapper" `Quick test_flooding_wrapper;
    Alcotest.test_case "sync wrapper" `Quick test_sync_wrapper;
    Alcotest.test_case "multi + reliable wrappers" `Quick test_multi_reliable_wrapper;
    Alcotest.test_case "gossip + pif wrappers" `Quick test_gossip_pif_wrapper;
    Alcotest.test_case "runner wrappers" `Quick test_runner_wrapper;
    Alcotest.test_case "prepare hook" `Quick test_prepare_hook_runs;
  ]
