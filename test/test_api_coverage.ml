(* Coverage for exposed API corners not exercised elsewhere. *)
open Helpers
module Graph = Graph_core.Graph
module Generators = Graph_core.Generators
module Connectivity = Graph_core.Connectivity
module Maxflow = Graph_core.Maxflow
module Paths = Graph_core.Paths
module Sim = Netsim.Sim
module Network = Netsim.Network

let test_exposed_flow_networks () =
  let g = petersen () in
  (* many (s,t) queries over one reusable edge network *)
  let net = Connectivity.edge_flow_network g in
  List.iter
    (fun (s, t) ->
      Maxflow.Net.reset_flow net;
      check_int (Printf.sprintf "lambda(%d,%d)" s t) 3 (Maxflow.max_flow net ~s ~t))
    [ (0, 7); (1, 8); (2, 6) ];
  let vnet, v_in, v_out = Connectivity.vertex_split_network g in
  Maxflow.Net.reset_flow vnet;
  check_int "kappa(0,7) via split" 3 (Maxflow.max_flow vnet ~s:(v_out 0) ~t:(v_in 7));
  check_int "node count doubled" 20 (Maxflow.Net.node_count vnet)

let test_apl_with_mask () =
  let g = Generators.cycle 6 in
  let alive = [| true; true; true; true; true; false |] in
  (* masked C6 is P5: mean over ordered pairs = 2 * (4*1+3*2+2*3+1*4) / 20 = 2 *)
  match Paths.average_path_length ~alive g with
  | Some apl -> Alcotest.(check (float 1e-9)) "masked apl" 2.0 apl
  | None -> Alcotest.fail "masked cycle is connected"

let test_apl_disconnected_none () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  check_bool "no apl" true (Paths.average_path_length g = None)

let test_network_accessors () =
  let sim = Sim.create () in
  let g = Generators.cycle 4 in
  let net : unit Network.t = Network.create ~sim ~graph:g () in
  check_int "graph accessor" 4 (Graph.n (Network.graph net));
  check_bool "sim accessor" true (Sim.now (Network.sim net) = 0.0)

let test_sim_until_boundary_inclusive () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~delay:2.0 (fun () -> fired := true);
  Sim.run ~until:2.0 sim;
  check_bool "event at the boundary runs" true !fired

let test_degree_single_vertex () =
  let s = Graph_core.Degree.stats (Graph.create ~n:1) in
  check_int "min" 0 s.Graph_core.Degree.min_degree;
  Alcotest.(check (list (pair int int))) "histogram" [ (0, 1) ] s.Graph_core.Degree.histogram

let test_overlay_printers () =
  let d =
    Overlay.Diff.edges ~old_graph:(Generators.cycle 4)
      ~new_graph:(Generators.path_graph 4)
  in
  let str = Format.asprintf "%a" Overlay.Diff.pp d in
  check_bool "diff renders" true (String.length str > 5);
  let rngv = rng () in
  match Overlay.Churn.run rngv ~family:Overlay.Membership.Kdiamond ~k:3 ~n0:8 ~steps:5 () with
  | Ok s ->
      let str = Format.asprintf "%a" Overlay.Churn.pp_stats s in
      check_bool "churn renders" true (String.length str > 10)
  | Error e -> Alcotest.fail (Overlay.Error.to_string e)

let test_build_pp_error_variants () =
  List.iter
    (fun e -> check_bool "renders" true (String.length (Lhg_core.Build.error_to_string e) > 5))
    [
      Lhg_core.Build.K_too_small 1;
      Lhg_core.Build.N_too_small { n = 3; minimum = 6 };
      Lhg_core.Build.Jd_gap { n = 7; k = 3; j = 1; capacity = 0 };
    ]

let test_shape_pp () =
  let s = Format.asprintf "%a" Lhg_core.Shape.pp (Lhg_core.Shape.base ~k:3) in
  check_bool "mentions vertices" true (String.length s > 10)

let test_harary_even_diameter_exact () =
  (* even k: formula should be exact, not just close *)
  List.iter
    (fun (k, n) ->
      match Paths.diameter (Harary.make ~k ~n) with
      | Some d -> check_int (Printf.sprintf "H(%d,%d)" k n) d (Harary.diameter_formula ~k ~n)
      | None -> Alcotest.fail "connected")
    [ (2, 12); (4, 20); (4, 64); (6, 36) ]

let test_gossip_latency_model_used () =
  let g = Generators.complete 8 in
  let r =
    Flood.Gossip.run_env ~env:(Flood.Env.make ~latency:(Netsim.Network.constant_latency 3.0) ~seed:1 ()) ~graph:g ~source:0 ~fanout:7 ~ttl:4 ()
  in
  Alcotest.(check (float 1e-9)) "one 3.0 hop suffices" 3.0 r.Flood.Gossip.completion_time

let suite =
  [
    Alcotest.test_case "exposed flow networks" `Quick test_exposed_flow_networks;
    Alcotest.test_case "apl with mask" `Quick test_apl_with_mask;
    Alcotest.test_case "apl disconnected" `Quick test_apl_disconnected_none;
    Alcotest.test_case "network accessors" `Quick test_network_accessors;
    Alcotest.test_case "sim until boundary" `Quick test_sim_until_boundary_inclusive;
    Alcotest.test_case "degree single vertex" `Quick test_degree_single_vertex;
    Alcotest.test_case "overlay printers" `Quick test_overlay_printers;
    Alcotest.test_case "build error printers" `Quick test_build_pp_error_variants;
    Alcotest.test_case "shape pp" `Quick test_shape_pp;
    Alcotest.test_case "harary even diameter exact" `Quick test_harary_even_diameter_exact;
    Alcotest.test_case "gossip latency model" `Quick test_gossip_latency_model_used;
  ]
