open Helpers
module Generators = Graph_core.Generators
module Gossip = Flood.Gossip

let test_full_fanout_on_complete_graph () =
  (* fanout >= degree on a complete graph = flooding: always covers *)
  let g = Generators.complete 10 in
  let r = Gossip.run_env ~env:(Flood.Env.make ~seed:1 ()) ~graph:g ~source:0 ~fanout:9 ~ttl:10 () in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 r.Gossip.coverage_of_alive

let test_ttl_1_stops_after_first_hop () =
  let g = Generators.path_graph 5 in
  let r = Gossip.run_env ~env:(Flood.Env.make ~seed:2 ()) ~graph:g ~source:0 ~fanout:3 ~ttl:1 () in
  check_bool "vertex 1 reached" true r.Gossip.delivered.(1);
  check_bool "vertex 2 not reached" false r.Gossip.delivered.(2)

let test_messages_bounded_by_n_times_fanout () =
  let g = Generators.complete 20 in
  let r = Gossip.run_env ~env:(Flood.Env.make ~seed:3 ()) ~graph:g ~source:0 ~fanout:4 ~ttl:20 () in
  check_bool "message bound" true (r.Gossip.messages_sent <= 20 * 4)

let test_high_fanout_covers_expander () =
  let rngv = rng () in
  let g = Topo.Expander.random_regular rngv ~n:128 ~degree:8 in
  let r = Gossip.run_env ~env:(Flood.Env.make ~seed:4 ()) ~graph:g ~source:0 ~fanout:8 ~ttl:(Gossip.default_ttl ~n:128) () in
  Alcotest.(check (float 1e-9)) "covers" 1.0 r.Gossip.coverage_of_alive

let test_low_fanout_can_miss () =
  (* fanout 1 on a sparse ring will almost surely miss some nodes *)
  let g = Generators.cycle 50 in
  let r = Gossip.run_env ~env:(Flood.Env.make ~seed:5 ()) ~graph:g ~source:0 ~fanout:1 ~ttl:10 () in
  check_bool "misses someone" true (r.Gossip.coverage_of_alive < 1.0)

let test_crashes_reduce_coverage_gracefully () =
  let g = Generators.complete 12 in
  let r = Gossip.run_env ~env:(Flood.Env.make ~seed:6 ~crashed:[ 1; 2; 3 ] ()) ~graph:g ~source:0 ~fanout:11 ~ttl:6 () in
  Alcotest.(check (float 1e-9)) "alive all covered" 1.0 r.Gossip.coverage_of_alive;
  check_bool "crashed not delivered" true (not r.Gossip.delivered.(1))

let test_invalid_args () =
  let g = Generators.cycle 4 in
  Alcotest.check_raises "fanout" (Invalid_argument "Gossip.run: fanout < 1") (fun () ->
      ignore (Gossip.run_env ~env:Flood.Env.default ~graph:g ~source:0 ~fanout:0 ~ttl:3 ()));
  Alcotest.check_raises "ttl" (Invalid_argument "Gossip.run: ttl < 1") (fun () ->
      ignore (Gossip.run_env ~env:Flood.Env.default ~graph:g ~source:0 ~fanout:2 ~ttl:0 ()))

let test_default_ttl_logarithmic () =
  check_int "n=1" 1 (Gossip.default_ttl ~n:1);
  check_int "n=1024" 14 (Gossip.default_ttl ~n:1024);
  check_bool "grows slowly" true (Gossip.default_ttl ~n:1_000_000 <= 25)

let test_determinism () =
  let g = Generators.complete 15 in
  let r1 = Gossip.run_env ~env:(Flood.Env.make ~seed:42 ()) ~graph:g ~source:0 ~fanout:3 ~ttl:6 () in
  let r2 = Gossip.run_env ~env:(Flood.Env.make ~seed:42 ()) ~graph:g ~source:0 ~fanout:3 ~ttl:6 () in
  Alcotest.(check (array bool)) "same deliveries" r1.Gossip.delivered r2.Gossip.delivered;
  check_int "same messages" r1.Gossip.messages_sent r2.Gossip.messages_sent

let suite =
  [
    Alcotest.test_case "full fanout complete graph" `Quick test_full_fanout_on_complete_graph;
    Alcotest.test_case "ttl 1" `Quick test_ttl_1_stops_after_first_hop;
    Alcotest.test_case "message bound" `Quick test_messages_bounded_by_n_times_fanout;
    Alcotest.test_case "high fanout covers expander" `Quick test_high_fanout_covers_expander;
    Alcotest.test_case "low fanout misses" `Quick test_low_fanout_can_miss;
    Alcotest.test_case "crashes graceful" `Quick test_crashes_reduce_coverage_gracefully;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "default ttl" `Quick test_default_ttl_logarithmic;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
