(* The domain pool itself: every index visited exactly once, worker ids
   in range, deterministic ordered folds, exception propagation, job
   reuse after failures, the LHG_DOMAINS-driven default sizing. Pools
   of several domains run fine on any machine — domains are OS threads
   when cores are scarce. *)

open Helpers
module Pool = Par.Pool

let with_pool domains f =
  let p = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_create_bounds () =
  Alcotest.check_raises "zero domains" (Invalid_argument "Par.Pool.create: domains must be in [1, 1024]")
    (fun () -> ignore (Pool.create ~domains:0));
  Alcotest.check_raises "negative" (Invalid_argument "Par.Pool.create: domains must be in [1, 1024]")
    (fun () -> ignore (Pool.create ~domains:(-3)))

let test_size () =
  with_pool 1 (fun p -> check_int "one" 1 (Pool.size p));
  with_pool 3 (fun p -> check_int "three" 3 (Pool.size p))

let test_run_executes_all_workers () =
  with_pool 4 (fun p ->
      let hits = Array.make 4 0 in
      Pool.run p (fun ~worker -> hits.(worker) <- hits.(worker) + 1);
      Alcotest.(check (array int)) "each participant ran once" [| 1; 1; 1; 1 |] hits)

let test_parallel_for_covers_each_index_once () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let n = 1000 in
          let counts = Array.make n 0 in
          (* counts.(i) is written only by the participant that claimed
             i's chunk, so unsynchronised increments are race-free *)
          Pool.parallel_for p ~lo:0 ~hi:n (fun ~worker:_ i -> counts.(i) <- counts.(i) + 1);
          Alcotest.(check (array int)) "once each" (Array.make n 1) counts))
    [ 1; 2; 4 ]

let test_parallel_for_empty_and_offset_ranges () =
  with_pool 2 (fun p ->
      Pool.parallel_for p ~lo:5 ~hi:5 (fun ~worker:_ _ -> Alcotest.fail "empty range ran");
      let seen = Array.make 10 false in
      Pool.parallel_for p ~lo:3 ~hi:10 (fun ~worker:_ i -> seen.(i) <- true);
      Alcotest.(check (array bool))
        "exactly [3,10)"
        [| false; false; false; true; true; true; true; true; true; true |]
        seen;
      Alcotest.check_raises "hi < lo" (Invalid_argument "Par.Pool.parallel_for: hi < lo")
        (fun () -> Pool.parallel_for p ~lo:1 ~hi:0 (fun ~worker:_ _ -> ())))

let test_worker_ids_in_range () =
  with_pool 3 (fun p ->
      let ok = Atomic.make true in
      Pool.parallel_for p ~lo:0 ~hi:500 (fun ~worker _ ->
          if worker < 0 || worker >= 3 then Atomic.set ok false);
      check_bool "ids within [0, size)" true (Atomic.get ok))

let test_fold_sums () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let total =
            Pool.parallel_fold p ~lo:1 ~hi:101 ~init:0
              ~body:(fun ~worker:_ i acc -> acc + i)
              ~combine:( + )
          in
          check_int (Printf.sprintf "1+..+100 at %d domains" domains) 5050 total))
    [ 1; 2; 4 ]

let test_fold_ordered_deterministic () =
  (* list concatenation is associative but NOT commutative: the ordered
     reduction must return chunks in index order at any domain count *)
  let expected = List.init 200 (fun i -> i) in
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let got =
            Pool.parallel_fold ~chunk:7 p ~lo:0 ~hi:200 ~init:[]
              ~body:(fun ~worker:_ i acc -> acc @ [ i ])
              ~combine:( @ )
          in
          Alcotest.(check (list int))
            (Printf.sprintf "in order at %d domains" domains)
            expected got))
    [ 1; 2; 4 ]

let test_exception_propagates_and_pool_survives () =
  with_pool 4 (fun p ->
      (try
         Pool.parallel_for p ~lo:0 ~hi:100 (fun ~worker:_ i ->
             if i = 57 then failwith "boom");
         Alcotest.fail "expected exception"
       with Failure msg -> Alcotest.(check string) "payload" "boom" msg);
      (* the pool must still work after a failed job *)
      let total =
        Pool.parallel_fold p ~lo:0 ~hi:10 ~init:0
          ~body:(fun ~worker:_ i acc -> acc + i)
          ~combine:( + )
      in
      check_int "pool survives" 45 total)

let test_shutdown_idempotent_and_rejects_jobs () =
  let p = Pool.create ~domains:2 in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "run after shutdown" (Invalid_argument "Par.Pool.run: pool is shut down")
    (fun () -> Pool.run p (fun ~worker:_ -> ()))

let test_default_domains_env () =
  (* LHG_DOMAINS is read per call, so this does not disturb the shared
     default pool (sized once, lazily) *)
  let old = Sys.getenv_opt "LHG_DOMAINS" in
  let restore () =
    match old with Some v -> Unix.putenv "LHG_DOMAINS" v | None -> Unix.putenv "LHG_DOMAINS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "LHG_DOMAINS" "3";
      check_int "env honoured" 3 (Pool.default_domains ());
      Unix.putenv "LHG_DOMAINS" "not-a-number";
      check_bool "garbage falls back to >= 1" true (Pool.default_domains () >= 1);
      Unix.putenv "LHG_DOMAINS" "0";
      check_bool "non-positive falls back to >= 1" true (Pool.default_domains () >= 1))

let test_default_pool_shared () =
  let a = Pool.default () and b = Pool.default () in
  check_bool "same pool" true (a == b);
  check_bool "live" true (Pool.size a >= 1)

let prop_parallel_for_matches_sequential_map =
  qcheck ~count:30 "parallel map equals sequential map"
    QCheck2.Gen.(pair (int_range 0 300) (int_range 1 4))
    (fun (n, domains) ->
      let f i = (31 * i) + (i * i mod 97) in
      let expected = Array.init n f in
      with_pool domains (fun p ->
          let got = Array.make n 0 in
          Pool.parallel_for p ~lo:0 ~hi:n (fun ~worker:_ i -> got.(i) <- f i);
          got = expected))

let suite =
  [
    Alcotest.test_case "create bounds" `Quick test_create_bounds;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "run executes all workers" `Quick test_run_executes_all_workers;
    Alcotest.test_case "for covers indices once" `Quick test_parallel_for_covers_each_index_once;
    Alcotest.test_case "for empty/offset ranges" `Quick test_parallel_for_empty_and_offset_ranges;
    Alcotest.test_case "worker ids in range" `Quick test_worker_ids_in_range;
    Alcotest.test_case "fold sums" `Quick test_fold_sums;
    Alcotest.test_case "fold ordered deterministic" `Quick test_fold_ordered_deterministic;
    Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates_and_pool_survives;
    Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent_and_rejects_jobs;
    Alcotest.test_case "default domains env" `Quick test_default_domains_env;
    Alcotest.test_case "default pool shared" `Quick test_default_pool_shared;
    prop_parallel_for_matches_sequential_map;
  ]
