(* lhg_tool: command-line front end for the LHG library.

   Subcommands:
     generate  build a topology and print it (edge list or DOT)
     verify    check the four LHG properties of a generated topology
     tables    print EX/REG characteristic tables
     flood     run a flooding simulation with failures
     metrics   replay a protocol run and print its metrics registry
     diameter  diameter comparison across topologies for one n, k

   All topology dispatch goes through Topo.Registry — adding a family
   there makes it available to every subcommand at once. *)

open Cmdliner

let kinds = Topo.Registry.names

let build_graph ~kind ~n ~k ~seed = Topo.Registry.build_graph ~kind ~n ~k ~seed

(* common args *)

let kind_arg =
  let doc = Printf.sprintf "Topology kind: %s." (String.concat ", " kinds) in
  Arg.(value & opt string "kdiamond" & info [ "t"; "topology" ] ~docv:"KIND" ~doc)

(* the long aliases let cmdliner's prefix matching accept --n and --k *)
let n_arg = Arg.(value & opt int 46 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let k_arg =
  Arg.(value & opt int 4 & info [ "k"; "k-degree" ] ~docv:"K" ~doc:"Connectivity degree.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Domains to verify with: 1 = sequential (default), 0 = auto \
           ($(b,LHG_DOMAINS) or the machine's recommended domain count), N = a pool of N \
           domains. Results are identical at any setting.")

(* [f] gets [None] for a sequential run; a fresh pool is shut down on
   the way out, the shared default pool is joined at exit. *)
let with_jobs jobs f =
  if jobs < 0 then begin
    prerr_endline "error: --jobs must be >= 0";
    1
  end
  else if jobs = 0 then f (Some (Par.Pool.default ()))
  else if jobs = 1 then f None
  else begin
    let pool = Par.Pool.create ~domains:jobs in
    Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f (Some pool))
  end

let with_graph kind n k seed f =
  match build_graph ~kind ~n ~k ~seed with
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      1
  | Ok g -> f g

(* generate *)

let witness_of kind n k = Topo.Registry.witness ~kind ~n ~k

let generate kind n k seed dot out =
  with_graph kind n k seed (fun g ->
      let doc =
        if dot then
          match witness_of kind n k with
          | Some b -> Lhg_core.Viz.to_dot ~name:kind b
          | None -> Graph_core.Dot.to_dot ~name:kind g
        else begin
          let buf = Buffer.create 1024 in
          Buffer.add_string buf
            (Printf.sprintf "# %s n=%d m=%d\n" kind (Graph_core.Graph.n g) (Graph_core.Graph.m g));
          Graph_core.Graph.iter_edges g (fun u v ->
              Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
          Buffer.contents buf
        end
      in
      (match out with
      | Some path ->
          Graph_core.Dot.write_file ~path doc;
          Printf.printf "wrote %s\n" path
      | None -> print_string doc);
      0)

let generate_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of an edge list.") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Build a topology and print it")
    Term.(const generate $ kind_arg $ n_arg $ k_arg $ seed_arg $ dot $ out)

(* verify *)

let verify kind n k seed skip_minimality input jobs =
  let checked g =
    with_jobs jobs (fun pool ->
        let check_minimality = not skip_minimality in
        let report = Lhg_core.Verify.verify ~check_minimality ?pool g ~k in
        Format.printf "%a@." Lhg_core.Verify.pp_report report;
        if Lhg_core.Verify.is_lhg ~check_minimality ?pool g ~k then begin
          print_endline "verdict: this graph is a Logarithmic Harary Graph";
          0
        end
        else begin
          print_endline "verdict: NOT an LHG";
          1
        end)
  in
  match input with
  | Some path -> (
      match Graph_core.Serial.read_file ~path with
      | Ok g -> checked g
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          1)
  | None -> with_graph kind n k seed checked

let verify_cmd =
  let skip =
    Arg.(value & flag & info [ "skip-minimality" ] ~doc:"Skip the O(m) link-minimality check.")
  in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Read the graph from an edge-list file instead of generating it.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check the four LHG properties")
    Term.(const verify $ kind_arg $ n_arg $ k_arg $ seed_arg $ skip $ input $ jobs_arg)

(* tables *)

let tables k span =
  Printf.printf "k = %d, n from %d to %d\n" k (2 * k) ((2 * k) + span);
  Printf.printf "%6s %6s %8s %10s %10s %12s\n" "n" "EX_jd" "EX_ktree" "EX_kdiam" "REG_ktree"
    "REG_kdiam";
  for n = 2 * k to (2 * k) + span do
    let b fmt = if fmt then "yes" else "-" in
    Printf.printf "%6d %6s %8s %10s %10s %12s\n" n
      (b (Lhg_core.Existence.ex_jd ~n ~k ()))
      (b (Lhg_core.Existence.ex_ktree ~n ~k))
      (b (Lhg_core.Existence.ex_kdiamond ~n ~k))
      (b (Lhg_core.Regularity.reg_ktree ~n ~k))
      (b (Lhg_core.Regularity.reg_kdiamond ~n ~k))
  done;
  0

let tables_cmd =
  let span = Arg.(value & opt int 30 & info [ "span" ] ~docv:"SPAN" ~doc:"Rows past n = 2k.") in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print existence/regularity characteristic tables")
    Term.(const tables $ k_arg $ span)

(* flood *)

let metrics_format =
  Arg.enum [ ("json", `Json); ("text", `Text) ]

let print_metrics ~format obs =
  match format with
  | `Json -> print_string (Obs.Export.to_json ~recent_events:32 obs)
  | `Text -> print_string (Obs.Export.to_text ~recent_events:32 obs)

let flood kind n k seed crashes links source metrics =
  with_graph kind n k seed (fun g ->
      let rng = Graph_core.Prng.create ~seed in
      let crashed =
        Flood.Runner.random_crashes rng ~n:(Graph_core.Graph.n g) ~count:crashes ~avoid:source
      in
      let failed_links = Flood.Runner.random_link_failures rng g ~count:links in
      let obs =
        match metrics with None -> Obs.Registry.nil | Some _ -> Obs.Registry.create ()
      in
      let r = Flood.Flooding.run ~crashed ~failed_links ~seed ~obs ~graph:g ~source () in
      (match metrics with
      | Some `Json ->
          (* machine-readable mode: the JSON document is the whole output *)
          print_metrics ~format:`Json obs
      | Some `Text | None ->
          Printf.printf "flooded %s(n=%d, k=%d) from node %d with %d crashes, %d link failures\n"
            kind n k source crashes links;
          Printf.printf "  messages sent:      %d\n" r.Flood.Flooding.messages_sent;
          Printf.printf "  rounds (max hops):  %d\n" r.Flood.Flooding.max_hops;
          Printf.printf "  completion time:    %.2f\n" r.Flood.Flooding.completion_time;
          Printf.printf "  covered survivors:  %b\n" r.Flood.Flooding.covers_all_alive;
          if metrics = Some `Text then print_metrics ~format:`Text obs);
      if r.Flood.Flooding.covers_all_alive then 0 else 1)

let metrics_arg =
  Arg.(
    value
    & opt (some metrics_format) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:"Collect run metrics and print them as $(b,json) or $(b,text).")

let flood_cmd =
  let crashes =
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"F" ~doc:"Crashed nodes (random).")
  in
  let links =
    Arg.(value & opt int 0 & info [ "link-failures" ] ~docv:"F" ~doc:"Failed links (random).")
  in
  let source = Arg.(value & opt int 0 & info [ "source" ] ~docv:"V" ~doc:"Flooding source.") in
  Cmd.v
    (Cmd.info "flood" ~doc:"Run one flooding simulation")
    Term.(const flood $ kind_arg $ n_arg $ k_arg $ seed_arg $ crashes $ links $ source $ metrics_arg)

(* metrics *)

let metrics_run protocol kind n k seed format =
  with_graph kind n k seed (fun g ->
      let obs = Obs.Registry.create () in
      let ok =
        match protocol with
        | `Flood ->
            ignore (Flood.Flooding.run ~seed ~obs ~graph:g ~source:0 ());
            true
        | `Gossip ->
            ignore (Flood.Gossip.run ~seed ~obs ~graph:g ~source:0 ~fanout:(max 1 (k - 1))
                      ~ttl:(Flood.Gossip.default_ttl ~n:(Graph_core.Graph.n g)) ());
            true
        | `Pif ->
            ignore (Flood.Pif.run ~seed ~obs ~graph:g ~source:0 ());
            true
        | `Churn -> (
            let family =
              match kind with
              | "ktree" -> Some Overlay.Membership.Ktree
              | "kdiamond" | "kdiamond_rich" -> Some Overlay.Membership.Kdiamond
              | "jd" -> Some Overlay.Membership.Jd
              | "harary" -> Some Overlay.Membership.Harary_classic
              | _ -> None
            in
            match family with
            | None ->
                prerr_endline "error: churn metrics support kinds ktree, kdiamond, jd, harary";
                false
            | Some family -> (
                let rng = Graph_core.Prng.create ~seed in
                match Overlay.Churn.run rng ~family ~k ~n0:n ~steps:50 ~obs () with
                | Ok _ -> true
                | Error e ->
                    prerr_endline ("error: " ^ e);
                    false))
      in
      if not ok then 1
      else begin
        print_metrics ~format obs;
        0
      end)

let metrics_cmd =
  let protocol =
    let doc = "Protocol to replay: flood, gossip, pif or churn." in
    Arg.(
      value
      & opt (enum [ ("flood", `Flood); ("gossip", `Gossip); ("pif", `Pif); ("churn", `Churn) ])
          `Flood
      & info [ "protocol" ] ~docv:"PROTO" ~doc)
  in
  let format =
    Arg.(value & opt metrics_format `Text & info [ "format" ] ~docv:"FORMAT" ~doc:"json or text.")
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Replay a protocol run and print its metrics registry")
    Term.(const metrics_run $ protocol $ kind_arg $ n_arg $ k_arg $ seed_arg $ format)

(* diameter *)

let diameter n k seed =
  Printf.printf "%12s %8s %8s %10s\n" "topology" "edges" "diam" "flood-rounds";
  List.iter
    (fun kind ->
      match build_graph ~kind ~n ~k ~seed with
      | Error msg -> Printf.printf "%12s %s\n" kind ("(" ^ msg ^ ")")
      | Ok g ->
          let d =
            match Graph_core.Paths.diameter g with Some d -> string_of_int d | None -> "inf"
          in
          let rounds = (Flood.Sync.flood g ~source:0).Flood.Sync.rounds in
          Printf.printf "%12s %8d %8s %10d\n" kind (Graph_core.Graph.m g) d rounds)
    [ "harary"; "ktree"; "kdiamond"; "jd"; "expander"; "hypercube" ];
  0

let diameter_cmd =
  Cmd.v
    (Cmd.info "diameter" ~doc:"Compare diameters across topologies")
    Term.(const diameter $ n_arg $ k_arg $ seed_arg)

(* cut *)

let cut kind n k seed =
  with_graph kind n k seed (fun g ->
      let vc = Graph_core.Connectivity.min_vertex_cut g in
      let ec = Graph_core.Connectivity.min_edge_cut g in
      let ints l = String.concat ", " (List.map string_of_int l) in
      let edges l = String.concat ", " (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) l) in
      Printf.printf "minimum vertex cut (%d vertices): %s\n" (List.length vc)
        (if vc = [] then "(none - complete or disconnected)" else ints vc);
      Printf.printf "minimum edge cut   (%d edges):    %s\n" (List.length ec)
        (if ec = [] then "(none)" else edges ec);
      0)

let cut_cmd =
  Cmd.v
    (Cmd.info "cut" ~doc:"Show a minimum vertex/edge cut (the adversary's target set)")
    Term.(const cut $ kind_arg $ n_arg $ k_arg $ seed_arg)

(* route *)

let witnessed_kinds () =
  List.filter_map
    (fun e ->
      match e.Topo.Registry.construction with Some _ -> Some e.Topo.Registry.name | None -> None)
    Topo.Registry.all

let route_cmd_impl kind n k seed src dst =
  ignore seed;
  match Topo.Registry.find kind with
  | None | Some { Topo.Registry.construction = None; _ } ->
      Printf.eprintf "error: route needs a witnessed LHG kind (%s)\n"
        (String.concat ", " (witnessed_kinds ()));
      1
  | Some { Topo.Registry.construction = Some c; _ } -> (
      match Lhg_core.Build.build c ~n ~k with
      | Error e ->
          prerr_endline ("error: " ^ Lhg_core.Build.error_to_string e);
          1
      | Ok b ->
          Printf.printf "structured routes %d -> %d on %s(%d,%d):\n" src dst kind n k;
          List.iteri
            (fun i p ->
              Printf.printf "  route %d (%d hops): %s\n" i
                (List.length p - 1)
                (String.concat " -> " (List.map string_of_int p)))
            (Lhg_core.Route.all_routes b ~src ~dst);
          0)

let route_cmd =
  let src = Arg.(value & opt int 0 & info [ "src" ] ~docv:"V" ~doc:"Source vertex.") in
  let dst = Arg.(value & opt int 1 & info [ "dst" ] ~docv:"V" ~doc:"Destination vertex.") in
  Cmd.v
    (Cmd.info "route" ~doc:"Print the k structured tree-copy routes between two vertices")
    Term.(const route_cmd_impl $ kind_arg $ n_arg $ k_arg $ seed_arg $ src $ dst)

(* churn *)

let churn kind n k seed steps =
  let family =
    match kind with
    | "ktree" -> Some Overlay.Membership.Ktree
    | "kdiamond" -> Some Overlay.Membership.Kdiamond
    | "jd" -> Some Overlay.Membership.Jd
    | "harary" -> Some Overlay.Membership.Harary_classic
    | _ -> None
  in
  match family with
  | None ->
      prerr_endline "error: churn supports kinds ktree, kdiamond, jd, harary";
      1
  | Some family -> (
      let rng = Graph_core.Prng.create ~seed in
      match Overlay.Churn.run rng ~family ~k ~n0:n ~steps () with
      | Error e ->
          prerr_endline ("error: " ^ e);
          1
      | Ok stats ->
          Format.printf "%a@." Overlay.Churn.pp_stats stats;
          0)

let churn_cmd =
  let steps =
    Arg.(value & opt int 50 & info [ "steps" ] ~docv:"N" ~doc:"Membership events to simulate.")
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"Simulate join/leave churn and report rewiring cost")
    Term.(const churn $ kind_arg $ n_arg $ k_arg $ seed_arg $ steps)

(* inspect *)

let inspect kind n k =
  let build =
    match Topo.Registry.find kind with
    | None | Some { Topo.Registry.construction = None; _ } -> None
    | Some { Topo.Registry.construction = Some c; _ } -> Some (Lhg_core.Build.build c ~n ~k)
  in
  match build with
  | None ->
      Printf.eprintf "error: inspect needs a witnessed LHG kind (%s)\n"
        (String.concat ", " (witnessed_kinds ()));
      1
  | Some (Error e) ->
      prerr_endline ("error: " ^ Lhg_core.Build.error_to_string e);
      1
  | Some (Ok b) ->
      let shape = b.Lhg_core.Build.shape in
      let non_leaf, shared, added, unshared = Lhg_core.Shape.counts shape in
      Printf.printf "%s witness for (n=%d, k=%d)\n" kind n k;
      Printf.printf "  tree nodes:       %d (%d internal/root, %d shared leaves, %d added, %d unshared groups)\n"
        (Lhg_core.Shape.size shape) non_leaf shared added unshared;
      Printf.printf "  tree height:      %d\n" (Lhg_core.Route.height b);
      Printf.printf "  graph:            %d vertices, %d edges\n"
        (Graph_core.Graph.n b.Lhg_core.Build.graph)
        (Graph_core.Graph.m b.Lhg_core.Build.graph);
      (match Lhg_core.Existence.decompose_ktree ~n ~k with
      | Some (alpha, j) -> Printf.printf "  K-TREE split:     alpha=%d, j=%d\n" alpha j
      | None -> ());
      (match Lhg_core.Existence.decompose_kdiamond ~n ~k with
      | Some (alpha, j) -> Printf.printf "  K-DIAMOND split:  alpha=%d, j=%d\n" alpha j
      | None -> ());
      Printf.printf "  route bound:      %d vertices\n" (Lhg_core.Route.max_route_length b);
      Printf.printf "  K-TREE witnesses: %d added-leaf distributions for this (n,k)\n"
        (Lhg_core.Enumerate.count_ktree ~n ~k);
      Printf.printf "  k-regular:        %b (REG_KDIAMOND predicts %b)\n"
        (Graph_core.Degree.is_k_regular b.Lhg_core.Build.graph ~k)
        (Lhg_core.Regularity.reg_kdiamond ~n ~k);
      Printf.printf "  constraint check: ktree=%b kdiamond=%b\n"
        (Lhg_core.Constraint_check.satisfies_ktree shape)
        (Lhg_core.Constraint_check.satisfies_kdiamond shape);
      0

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print the structural witness of an LHG construction")
    Term.(const inspect $ kind_arg $ n_arg $ k_arg)

(* grow *)

let grow n k verbose =
  if k < 3 then begin
    prerr_endline "error: grow needs k >= 3";
    1
  end
  else if n < 2 * k then begin
    Printf.eprintf "error: target n must be >= 2k = %d\n" (2 * k);
    1
  end
  else begin
    let overlay = Overlay.Incremental.start ~k () in
    while Overlay.Incremental.n overlay < n do
      let r = Overlay.Incremental.join overlay in
      if verbose then
        Printf.printf "n=%d %s (+%d/-%d)\n"
          (Overlay.Incremental.n overlay)
          (Overlay.Incremental.op_name r.Overlay.Incremental.op)
          r.Overlay.Incremental.edges_added r.Overlay.Incremental.edges_removed
    done;
    let g = Overlay.Incremental.graph overlay in
    let joins = n - (2 * k) in
    Printf.printf "grew to n=%d (k=%d): %d edges, %d joins, %d edges rewired (%.1f per join)\n" n
      k (Graph_core.Graph.m g) joins
      (Overlay.Incremental.total_rewired overlay)
      (if joins = 0 then 0.0
       else float_of_int (Overlay.Incremental.total_rewired overlay) /. float_of_int joins);
    Printf.printf "verifier: %s\n"
      (if Lhg_core.Verify.is_lhg ~check_minimality:false g ~k then "LHG confirmed"
       else "NOT an LHG (bug)");
    0
  end

let grow_cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every join operation.") in
  Cmd.v
    (Cmd.info "grow" ~doc:"Grow an overlay one peer at a time with incremental proof-step joins")
    Term.(const grow $ n_arg $ k_arg $ verbose)

let main_cmd =
  let doc = "Logarithmic Harary Graphs: construction, verification and flooding" in
  Cmd.group (Cmd.info "lhg_tool" ~version:"1.0.0" ~doc)
    [ generate_cmd; verify_cmd; tables_cmd; flood_cmd; metrics_cmd; diameter_cmd; cut_cmd; route_cmd; churn_cmd; grow_cmd; inspect_cmd ]

let () = exit (Cmd.eval' main_cmd)
