(* lhg_tool: command-line front end for the LHG library.

   Subcommands:
     generate  build a topology and print it (edge list or DOT)
     verify    check the four LHG properties of a generated topology
     tables    print EX/REG characteristic tables
     flood     run a flooding simulation with failures
     chaos     audit flooding against adversarial fault plans
     metrics   replay a protocol run and print its metrics registry
     diameter  diameter comparison across topologies for one n, k
     traffic   sustained multi-source streams over capacity-limited links
     assemble  distributed self-assembly of the overlay, no coordinator
     scenario  stream while the controller reconfigures, on one clock

   All topology dispatch goes through Topo.Registry — adding a family
   there makes it available to every subcommand at once.

   The common flags live in one Scenario.Spec.t record — topology,
   nodes, degree, seed, jobs, engine, metrics — built once by
   common_term with cmdliner's uniform prefix matching and consumed by
   the Spec helpers (graph/csr/construction/to_env/with_pool). The
   chaos, controller and traffic flag groups are likewise decoded once
   each, into the Scenario sub-records, so the standalone subcommands
   and the composite scenario subcommand share one source of truth per
   group instead of three copies of the decode. *)

open Cmdliner
module Spec = Scenario.Spec

let kinds = Topo.Registry.names

let build_graph ~kind ~n ~k ~seed = Topo.Registry.build_graph ~kind ~n ~k ~seed

(* common args — one Spec.t threaded through every subcommand *)

type common = Spec.t

let metrics_format = Arg.enum [ ("json", `Json); ("text", `Text) ]

let kind_arg =
  let doc = Printf.sprintf "Topology kind: %s." (String.concat ", " kinds) in
  Arg.(value & opt string "kdiamond" & info [ "t"; "topology" ] ~docv:"KIND" ~doc)

(* the long aliases let cmdliner's prefix matching accept --n and --k *)
let n_arg = Arg.(value & opt int 46 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let k_arg =
  Arg.(value & opt int 4 & info [ "k"; "k-degree" ] ~docv:"K" ~doc:"Connectivity degree.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Domains for the parallel subcommands (verify, chaos): 1 = sequential (default), 0 = \
           auto ($(b,LHG_DOMAINS) or the machine's recommended domain count), N = a pool of N \
           domains. Results are identical at any setting.")

let metrics_arg =
  Arg.(
    value
    & opt (some metrics_format) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:"Report format where a subcommand produces one: $(b,json) or $(b,text).")

let engine_arg =
  let engine_conv = Arg.enum [ ("calendar", Netsim.Sim.Calendar); ("heap", Netsim.Sim.Heap) ] in
  Arg.(
    value
    & opt engine_conv Netsim.Sim.Calendar
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Event engine for the simulated subcommands: $(b,calendar) (default) or $(b,heap). \
           Results are identical.")

let common_term =
  let make topology n k seed jobs engine metrics =
    { Spec.topology; n; k; seed; jobs; engine; metrics }
  in
  Term.(const make $ kind_arg $ n_arg $ k_arg $ seed_arg $ jobs_arg $ engine_arg $ metrics_arg)

(* [f] gets [None] for a sequential run; a fresh pool is shut down on
   the way out, the shared default pool is joined at exit. *)
let with_jobs (c : common) f =
  match Spec.with_pool c f with
  | Ok status -> status
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      1

(* An adjacency-set graph costs hundreds of bytes per node; above this
   many nodes the build would thrash or OOM long before finishing, so
   refuse up front with a typed error instead. *)
let default_node_cap = 16_777_216

let node_cap () =
  match Sys.getenv_opt "LHG_MAX_NODES" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some cap when cap >= 1 -> cap
      | Some _ | None -> default_node_cap)
  | None -> default_node_cap

let check_node_cap n =
  let cap = node_cap () in
  if n > cap then Error (Overlay.Error.to_string (Overlay.Error.Node_cap { requested = n; cap }))
  else Ok ()

let with_graph (c : common) f =
  match Result.bind (check_node_cap c.n) (fun () -> Spec.graph c) with
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      1
  | Ok g -> f g

(* generate *)

let witness_of kind n k = Topo.Registry.witness ~kind ~n ~k

let generate c dot out =
  with_graph c (fun g ->
      let doc =
        if dot then
          match witness_of c.topology c.n c.k with
          | Some b -> Lhg_core.Viz.to_dot ~name:c.topology b
          | None -> Graph_core.Dot.to_dot ~name:c.topology g
        else begin
          let buf = Buffer.create 1024 in
          Buffer.add_string buf
            (Printf.sprintf "# %s n=%d m=%d\n" c.topology (Graph_core.Graph.n g)
               (Graph_core.Graph.m g));
          Graph_core.Graph.iter_edges g (fun u v ->
              Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
          Buffer.contents buf
        end
      in
      (match out with
      | Some path ->
          Graph_core.Dot.write_file ~path doc;
          Printf.printf "wrote %s\n" path
      | None -> print_string doc);
      0)

let generate_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of an edge list.") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Build a topology and print it")
    Term.(const generate $ common_term $ dot $ out)

(* verify *)

let verify c skip_minimality input =
  let checked g =
    with_jobs c (fun pool ->
        let check_minimality = not skip_minimality in
        let report = Lhg_core.Verify.verify ~check_minimality ?pool g ~k:c.k in
        Format.printf "%a@." Lhg_core.Verify.pp_report report;
        if Lhg_core.Verify.is_lhg ~check_minimality ?pool g ~k:c.k then begin
          print_endline "verdict: this graph is a Logarithmic Harary Graph";
          0
        end
        else begin
          print_endline "verdict: NOT an LHG";
          1
        end)
  in
  match input with
  | Some path -> (
      match Graph_core.Serial.read_file ~path with
      | Ok g -> checked g
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          1)
  | None -> with_graph c checked

let verify_cmd =
  let skip =
    Arg.(value & flag & info [ "skip-minimality" ] ~doc:"Skip the O(m) link-minimality check.")
  in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Read the graph from an edge-list file instead of generating it.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check the four LHG properties")
    Term.(const verify $ common_term $ skip $ input)

(* tables *)

let tables (c : common) span =
  let k = c.k in
  Printf.printf "k = %d, n from %d to %d\n" k (2 * k) ((2 * k) + span);
  Printf.printf "%6s %6s %8s %10s %10s %12s\n" "n" "EX_jd" "EX_ktree" "EX_kdiam" "REG_ktree"
    "REG_kdiam";
  for n = 2 * k to (2 * k) + span do
    let b fmt = if fmt then "yes" else "-" in
    Printf.printf "%6d %6s %8s %10s %10s %12s\n" n
      (b (Lhg_core.Existence.ex_jd ~n ~k ()))
      (b (Lhg_core.Existence.ex_ktree ~n ~k))
      (b (Lhg_core.Existence.ex_kdiamond ~n ~k))
      (b (Lhg_core.Regularity.reg_ktree ~n ~k))
      (b (Lhg_core.Regularity.reg_kdiamond ~n ~k))
  done;
  0

let tables_cmd =
  let span = Arg.(value & opt int 30 & info [ "span" ] ~docv:"SPAN" ~doc:"Rows past n = 2k.") in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print existence/regularity characteristic tables")
    Term.(const tables $ common_term $ span)

(* flood *)

let print_metrics ~format obs =
  match format with
  | `Json -> print_string (Obs.Export.to_json ~recent_events:32 obs)
  | `Text -> print_string (Obs.Export.to_text ~recent_events:32 obs)

let flood (c : common) crashes links source =
  with_graph c (fun g ->
      let rng = Graph_core.Prng.create ~seed:c.seed in
      let crashed =
        Flood.Runner.random_crashes rng ~n:(Graph_core.Graph.n g) ~count:crashes ~avoid:source
      in
      let failed_links = Flood.Runner.random_link_failures rng g ~count:links in
      let obs = Spec.obs c in
      let env =
        Spec.to_env ~obs c
        |> Flood.Env.with_crashed crashed
        |> Flood.Env.with_failed_links failed_links
      in
      let r = Flood.Flooding.run_env ~env ~graph:g ~source () in
      (match c.metrics with
      | Some `Json ->
          (* machine-readable mode: the JSON document is the whole output *)
          print_metrics ~format:`Json obs
      | Some `Text | None ->
          Printf.printf "flooded %s(n=%d, k=%d) from node %d with %d crashes, %d link failures\n"
            c.topology c.n c.k source crashes links;
          Printf.printf "  messages sent:      %d\n" r.Flood.Flooding.messages_sent;
          Printf.printf "  rounds (max hops):  %d\n" r.Flood.Flooding.max_hops;
          Printf.printf "  completion time:    %.2f\n" r.Flood.Flooding.completion_time;
          Printf.printf "  covered survivors:  %b\n" r.Flood.Flooding.covers_all_alive;
          if c.metrics = Some `Text then print_metrics ~format:`Text obs);
      if r.Flood.Flooding.covers_all_alive then 0 else 1)

let flood_cmd =
  let crashes =
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"F" ~doc:"Crashed nodes (random).")
  in
  let links =
    Arg.(value & opt int 0 & info [ "link-failures" ] ~docv:"F" ~doc:"Failed links (random).")
  in
  let source = Arg.(value & opt int 0 & info [ "source" ] ~docv:"V" ~doc:"Flooding source.") in
  Cmd.v
    (Cmd.info "flood" ~doc:"Run one flooding simulation")
    Term.(const flood $ common_term $ crashes $ links $ source)

(* chaos *)

let ints_or l ~empty = if l = [] then empty else String.concat " " (List.map string_of_int l)

let links_or l ~empty =
  if l = [] then empty
  else String.concat " " (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) l)

let chaos_text (c : common) ~adversary_name ~nplans report =
  let open Chaos.Audit in
  Printf.printf "chaos audit: %s(n=%d, k=%d) from source %d\n" c.topology c.n c.k report.source;
  Printf.printf "  adversary: %s, %d plans, seed %d\n" adversary_name nplans c.seed;
  Printf.printf "  %6s %6s %9s %11s\n" "faults" "plans" "complete" "stochastic";
  List.iter
    (fun row ->
      Printf.printf "  %6d %6d %9d %11d\n" row.faults row.plans row.complete_plans
        row.stochastic_plans)
    report.matrix;
  if report.boundary_ok then
    Printf.printf "boundary: OK - every deterministic plan with <= %d faults delivered\n"
      (report.k - 1)
  else begin
    Printf.printf "boundary: VIOLATED - %d plan(s) with <= %d faults failed to deliver\n"
      (List.length report.violations) (report.k - 1);
    List.iter
      (fun r ->
        match r.witness with
        | None -> ()
        | Some w ->
            Printf.printf "  violation (plan %d, %d faults): crashed %s; links down %s; unreached %s\n"
              r.index r.weight
              (ints_or w.crashed_nodes ~empty:"(none)")
              (links_or w.downed_links ~empty:"(none)")
              (ints_or w.unreached ~empty:"(none)"))
      report.violations
  end;
  match first_witness report with
  | Some r when report.boundary_ok -> (
      match r.witness with
      | None -> ()
      | Some w ->
          Printf.printf "witness (plan %d, %d faults): crashed %s; links down %s; unreached %s\n"
            r.index r.weight
            (ints_or w.crashed_nodes ~empty:"(none)")
            (links_or w.downed_links ~empty:"(none)")
            (ints_or w.unreached ~empty:"(none)"))
  | _ -> ()

let chaos_json (c : common) ~adversary_name ~nplans report =
  let open Chaos.Audit in
  let module S = Obs.Stream in
  let json_ints l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]" in
  let json_links l =
    "[" ^ String.concat ", " (List.map (fun (u, v) -> Printf.sprintf "[%d, %d]" u v) l) ^ "]"
  in
  let s = S.create ~schema:"lhg-chaos/1" () in
  S.str s "topology" c.topology;
  S.int s "n" c.n;
  S.int s "k" report.k;
  S.int s "source" report.source;
  S.int s "seed" c.seed;
  S.str s "adversary" adversary_name;
  S.int s "plans" nplans;
  S.bool s "boundary_ok" report.boundary_ok;
  S.arr s "matrix" (fun s ->
      List.iter
        (fun row ->
          S.element s (fun s ->
              S.int s "faults" row.faults;
              S.int s "plans" row.plans;
              S.int s "complete" row.complete_plans;
              S.int s "stochastic" row.stochastic_plans))
        report.matrix);
  S.arr s "reports" (fun s ->
      List.iter
        (fun r ->
          S.element s (fun s ->
              S.int s "index" r.index;
              S.int s "weight" r.weight;
              S.bool s "stochastic" r.stochastic;
              S.bool s "complete" r.complete;
              S.int s "delivered" r.delivered;
              S.int s "obligated" r.obligated;
              S.float s "completion_time" r.completion_time;
              S.int s "messages" r.messages))
        report.reports);
  (match first_witness report with
  | Some ({ witness = Some w; _ } as r) ->
      S.obj s "witness" (fun s ->
          S.int s "plan" r.index;
          S.int s "weight" r.weight;
          S.raw s "crashed" (json_ints w.crashed_nodes);
          S.raw s "links_down" (json_links w.downed_links);
          S.raw s "unreached" (json_ints w.unreached))
  | _ -> S.null s "witness");
  print_string (S.contents s)

(* default source: the first vertex outside the adversary's prime
   targets, so crash plans never have to spare their strongest victim *)
let resolve_source ~requested ~avoid ~n =
  if requested >= 0 then requested
  else
    let in_avoid = Array.make n false in
    List.iter (fun v -> if v >= 0 && v < n then in_avoid.(v) <- true) avoid;
    let rec first v = if v >= n then 0 else if in_avoid.(v) then first (v + 1) else v in
    first 0

let chaos (c : common) (a : Scenario.chaos_audit) =
  with_graph c (fun g ->
      let n = Graph_core.Graph.n g in
      let plan_file = a.Scenario.audit_plan_file in
      let max_faults = match a.Scenario.max_faults with Some f -> f | None -> c.k in
      match
        match plan_file with
        | Some path -> Result.map (fun p -> `File p) (Chaos.Plan.of_file path)
        | None -> Result.map (fun adv -> `Sweep adv) (Chaos.Gen.of_string a.Scenario.adversary)
      with
      | Error e ->
          prerr_endline ("error: " ^ e);
          1
      | Ok plan_src -> (
          let avoid =
            match plan_src with
            | `File p -> Chaos.Plan.crash_victims p
            | `Sweep Chaos.Gen.Min_vertex_cut -> Graph_core.Connectivity.min_vertex_cut g
            | `Sweep Chaos.Gen.Min_edge_cut ->
                (* a source incident to the cut leaks in-flight messages
                   across it before a t=0 link_down fires *)
                List.concat_map (fun (u, v) -> [ u; v ]) (Graph_core.Connectivity.min_edge_cut g)
            | `Sweep _ -> []
          in
          let source = resolve_source ~requested:a.Scenario.source ~avoid ~n in
          let adversary_name, plans =
            match plan_src with
            | `File p -> (Printf.sprintf "plan file %s" (Option.get plan_file), [ p ])
            | `Sweep adv ->
                let rng = Graph_core.Prng.create ~seed:c.seed in
                ( Chaos.Gen.to_string adv,
                  Chaos.Gen.sweep ~plans_per_level:a.Scenario.plans_per_level ~rng ~graph:g
                    ~source ~max_faults adv )
          in
          with_jobs c (fun pool ->
              let env = Spec.to_env ?pool c in
              match Chaos.Audit.run ~env ~graph:g ~k:c.k ~source ~plans with
              | exception Invalid_argument msg ->
                  prerr_endline ("error: " ^ msg);
                  1
              | report ->
                  let nplans = List.length plans in
                  (match c.metrics with
                  | Some `Json -> chaos_json c ~adversary_name ~nplans report
                  | Some `Text | None -> chaos_text c ~adversary_name ~nplans report);
                  if report.Chaos.Audit.boundary_ok then 0 else 1)))

(* the chaos flag group, decoded once into Scenario.chaos_audit *)
let chaos_term =
  let adversary =
    let doc =
      "Plan generator: $(b,min-cut) (crash minimum vertex cuts), $(b,min-edge-cut), \
       $(b,high-degree), $(b,random) (static crash sets), $(b,dynamic) (timed faults with \
       recovery)."
    in
    Arg.(value & opt string "min-cut" & info [ "a"; "adversary" ] ~docv:"ADV" ~doc)
  in
  let plan_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:"Audit a single fault plan from a file (see lib/chaos for the format) instead of \
                generating a sweep.")
  in
  let source =
    Arg.(
      value
      & opt int (-1)
      & info [ "source" ] ~docv:"V"
          ~doc:"Flooding source; -1 (default) picks the first vertex outside the adversary's \
                target set.")
  in
  let max_faults =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-faults" ] ~docv:"F"
          ~doc:"Largest fault budget to sweep (default: the connectivity degree $(b,k), one past \
                the guarantee).")
  in
  let plans_per_level =
    Arg.(
      value
      & opt int 3
      & info [ "plans-per-level" ] ~docv:"P" ~doc:"Plans generated per fault budget (default 3).")
  in
  let make adversary audit_plan_file source max_faults plans_per_level =
    { Scenario.adversary; audit_plan_file; source; max_faults; plans_per_level }
  in
  Term.(const make $ adversary $ plan_file $ source $ max_faults $ plans_per_level)

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Audit flooding against adversarial fault plans and report the k-1 guarantee boundary")
    Term.(const chaos $ common_term $ chaos_term)

(* metrics *)

let metrics_run (c : common) protocol format =
  with_graph c (fun g ->
      let obs = Obs.Registry.create () in
      let seed = c.seed in
      let ok =
        match protocol with
        | `Flood ->
            ignore (Flood.Flooding.run_env ~env:(Spec.to_env ~obs c) ~graph:g ~source:0 ());
            true
        | `Gossip ->
            ignore (Flood.Gossip.run_env ~env:(Spec.to_env ~obs c) ~graph:g ~source:0 ~fanout:(max 1 (c.k - 1)) ~ttl:(Flood.Gossip.default_ttl ~n:(Graph_core.Graph.n g)) ());
            true
        | `Pif ->
            ignore (Flood.Pif.run_env ~env:(Spec.to_env ~obs c) ~graph:g ~source:0 ());
            true
        | `Churn -> (
            let family =
              match c.topology with
              | "ktree" -> Some Overlay.Membership.Ktree
              | "kdiamond" | "kdiamond_rich" -> Some Overlay.Membership.Kdiamond
              | "jd" -> Some Overlay.Membership.Jd
              | "harary" -> Some Overlay.Membership.Harary_classic
              | _ -> None
            in
            match family with
            | None ->
                prerr_endline "error: churn metrics support kinds ktree, kdiamond, jd, harary";
                false
            | Some family -> (
                let rng = Graph_core.Prng.create ~seed in
                match Overlay.Churn.run rng ~family ~k:c.k ~n0:c.n ~steps:50 ~obs () with
                | Ok _ -> true
                | Error e ->
                    prerr_endline ("error: " ^ Overlay.Error.to_string e);
                    false))
      in
      if not ok then 1
      else begin
        let format =
          match format with
          | Some f -> f
          | None -> ( match c.metrics with Some f -> f | None -> `Text)
        in
        print_metrics ~format obs;
        0
      end)

let metrics_cmd =
  let protocol =
    let doc = "Protocol to replay: flood, gossip, pif or churn." in
    Arg.(
      value
      & opt (enum [ ("flood", `Flood); ("gossip", `Gossip); ("pif", `Pif); ("churn", `Churn) ])
          `Flood
      & info [ "protocol" ] ~docv:"PROTO" ~doc)
  in
  let format =
    Arg.(
      value
      & opt (some metrics_format) None
      & info [ "format" ] ~docv:"FORMAT" ~doc:"json or text (alias of --metrics; default text).")
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Replay a protocol run and print its metrics registry")
    Term.(const metrics_run $ common_term $ protocol $ format)

(* diameter *)

let diameter (c : common) =
  Printf.printf "%12s %8s %8s %10s\n" "topology" "edges" "diam" "flood-rounds";
  List.iter
    (fun kind ->
      match
        Result.bind (check_node_cap c.n) (fun () -> build_graph ~kind ~n:c.n ~k:c.k ~seed:c.seed)
      with
      | Error msg -> Printf.printf "%12s %s\n" kind ("(" ^ msg ^ ")")
      | Ok g ->
          let d =
            match Graph_core.Paths.diameter g with Some d -> string_of_int d | None -> "inf"
          in
          let rounds = (Flood.Sync.flood_env ~env:Flood.Env.default g ~source:0).Flood.Sync.rounds in
          Printf.printf "%12s %8d %8s %10d\n" kind (Graph_core.Graph.m g) d rounds)
    [ "harary"; "ktree"; "kdiamond"; "jd"; "expander"; "hypercube" ];
  0

let diameter_cmd =
  Cmd.v
    (Cmd.info "diameter" ~doc:"Compare diameters across topologies")
    Term.(const diameter $ common_term)

(* cut *)

let cut c =
  with_graph c (fun g ->
      let vc = Graph_core.Connectivity.min_vertex_cut g in
      let ec = Graph_core.Connectivity.min_edge_cut g in
      let ints l = String.concat ", " (List.map string_of_int l) in
      let edges l = String.concat ", " (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) l) in
      Printf.printf "minimum vertex cut (%d vertices): %s\n" (List.length vc)
        (if vc = [] then "(none - complete or disconnected)" else ints vc);
      Printf.printf "minimum edge cut   (%d edges):    %s\n" (List.length ec)
        (if ec = [] then "(none)" else edges ec);
      0)

let cut_cmd =
  Cmd.v
    (Cmd.info "cut" ~doc:"Show a minimum vertex/edge cut (the adversary's target set)")
    Term.(const cut $ common_term)

(* route *)

let witnessed_kinds () =
  List.filter_map
    (fun e ->
      match e.Topo.Registry.construction with Some _ -> Some e.Topo.Registry.name | None -> None)
    Topo.Registry.all

let route_cmd_impl (c : common) src dst =
  match Topo.Registry.find c.topology with
  | None | Some { Topo.Registry.construction = None; _ } ->
      Printf.eprintf "error: route needs a witnessed LHG kind (%s)\n"
        (String.concat ", " (witnessed_kinds ()));
      1
  | Some { Topo.Registry.construction = Some cns; _ } -> (
      match Lhg_core.Build.build cns ~n:c.n ~k:c.k with
      | Error e ->
          prerr_endline ("error: " ^ Lhg_core.Build.error_to_string e);
          1
      | Ok b ->
          Printf.printf "structured routes %d -> %d on %s(%d,%d):\n" src dst c.topology c.n c.k;
          List.iteri
            (fun i p ->
              Printf.printf "  route %d (%d hops): %s\n" i
                (List.length p - 1)
                (String.concat " -> " (List.map string_of_int p)))
            (Lhg_core.Route.all_routes b ~src ~dst);
          0)

let route_cmd =
  let src = Arg.(value & opt int 0 & info [ "src" ] ~docv:"V" ~doc:"Source vertex.") in
  let dst = Arg.(value & opt int 1 & info [ "dst" ] ~docv:"V" ~doc:"Destination vertex.") in
  Cmd.v
    (Cmd.info "route" ~doc:"Print the k structured tree-copy routes between two vertices")
    Term.(const route_cmd_impl $ common_term $ src $ dst)

(* churn *)

let churn (c : common) steps =
  let family =
    match c.topology with
    | "ktree" -> Some Overlay.Membership.Ktree
    | "kdiamond" -> Some Overlay.Membership.Kdiamond
    | "jd" -> Some Overlay.Membership.Jd
    | "harary" -> Some Overlay.Membership.Harary_classic
    | _ -> None
  in
  match family with
  | None ->
      prerr_endline "error: churn supports kinds ktree, kdiamond, jd, harary";
      1
  | Some family -> (
      let rng = Graph_core.Prng.create ~seed:c.seed in
      match Overlay.Churn.run rng ~family ~k:c.k ~n0:c.n ~steps () with
      | Error e ->
          prerr_endline ("error: " ^ Overlay.Error.to_string e);
          1
      | Ok stats ->
          Format.printf "%a@." Overlay.Churn.pp_stats stats;
          0)

let churn_cmd =
  let steps =
    Arg.(value & opt int 50 & info [ "steps" ] ~docv:"N" ~doc:"Membership events to simulate.")
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"Simulate join/leave churn and report rewiring cost")
    Term.(const churn $ common_term $ steps)

(* inspect *)

let inspect (c : common) =
  let build =
    match Topo.Registry.find c.topology with
    | None | Some { Topo.Registry.construction = None; _ } -> None
    | Some { Topo.Registry.construction = Some cns; _ } -> Some (Lhg_core.Build.build cns ~n:c.n ~k:c.k)
  in
  match build with
  | None ->
      Printf.eprintf "error: inspect needs a witnessed LHG kind (%s)\n"
        (String.concat ", " (witnessed_kinds ()));
      1
  | Some (Error e) ->
      prerr_endline ("error: " ^ Lhg_core.Build.error_to_string e);
      1
  | Some (Ok b) ->
      let n = c.n and k = c.k in
      let shape = b.Lhg_core.Build.shape in
      let non_leaf, shared, added, unshared = Lhg_core.Shape.counts shape in
      Printf.printf "%s witness for (n=%d, k=%d)\n" c.topology n k;
      Printf.printf "  tree nodes:       %d (%d internal/root, %d shared leaves, %d added, %d unshared groups)\n"
        (Lhg_core.Shape.size shape) non_leaf shared added unshared;
      Printf.printf "  tree height:      %d\n" (Lhg_core.Route.height b);
      Printf.printf "  graph:            %d vertices, %d edges\n"
        (Graph_core.Graph.n b.Lhg_core.Build.graph)
        (Graph_core.Graph.m b.Lhg_core.Build.graph);
      (match Lhg_core.Existence.decompose_ktree ~n ~k with
      | Some (alpha, j) -> Printf.printf "  K-TREE split:     alpha=%d, j=%d\n" alpha j
      | None -> ());
      (match Lhg_core.Existence.decompose_kdiamond ~n ~k with
      | Some (alpha, j) -> Printf.printf "  K-DIAMOND split:  alpha=%d, j=%d\n" alpha j
      | None -> ());
      Printf.printf "  route bound:      %d vertices\n" (Lhg_core.Route.max_route_length b);
      Printf.printf "  K-TREE witnesses: %d added-leaf distributions for this (n,k)\n"
        (Lhg_core.Enumerate.count_ktree ~n ~k);
      Printf.printf "  k-regular:        %b (REG_KDIAMOND predicts %b)\n"
        (Graph_core.Degree.is_k_regular b.Lhg_core.Build.graph ~k)
        (Lhg_core.Regularity.reg_kdiamond ~n ~k);
      Printf.printf "  constraint check: ktree=%b kdiamond=%b\n"
        (Lhg_core.Constraint_check.satisfies_ktree shape)
        (Lhg_core.Constraint_check.satisfies_kdiamond shape);
      0

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print the structural witness of an LHG construction")
    Term.(const inspect $ common_term)

(* grow *)

let grow (c : common) verbose =
  let n = c.n and k = c.k in
  if k < 3 then begin
    prerr_endline "error: grow needs k >= 3";
    1
  end
  else if n < 2 * k then begin
    Printf.eprintf "error: target n must be >= 2k = %d\n" (2 * k);
    1
  end
  else begin
    let overlay = Overlay.Incremental.start ~k () in
    while Overlay.Incremental.n overlay < n do
      let r = Overlay.Incremental.join overlay in
      if verbose then
        Printf.printf "n=%d %s (+%d/-%d)\n"
          (Overlay.Incremental.n overlay)
          (Overlay.Incremental.op_name r.Overlay.Incremental.op)
          r.Overlay.Incremental.edges_added r.Overlay.Incremental.edges_removed
    done;
    let g = Overlay.Incremental.graph overlay in
    let joins = n - (2 * k) in
    Printf.printf "grew to n=%d (k=%d): %d edges, %d joins, %d edges rewired (%.1f per join)\n" n
      k (Graph_core.Graph.m g) joins
      (Overlay.Incremental.total_rewired overlay)
      (if joins = 0 then 0.0
       else float_of_int (Overlay.Incremental.total_rewired overlay) /. float_of_int joins);
    Printf.printf "verifier: %s\n"
      (if Lhg_core.Verify.is_lhg ~check_minimality:false g ~k then "LHG confirmed"
       else "NOT an LHG (bug)");
    0
  end

let grow_cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every join operation.") in
  Cmd.v
    (Cmd.info "grow" ~doc:"Grow an overlay one peer at a time with incremental proof-step joins")
    Term.(const grow $ common_term $ verbose)

(* controller *)

let controller (c : common) (cc : Scenario.controller) =
  match Scenario.family_of_topology c.topology with
  | None ->
      prerr_endline "error: controller supports kinds ktree, kdiamond, jd, harary";
      1
  | Some family -> (
      let chaos =
        match cc.Scenario.chaos_adversary with
        | None -> Ok None
        | Some name -> (
            match Chaos.Gen.of_string name with
            | Ok adv ->
                Ok
                  (Some
                     (Overlay.Controller.chaos ~plans_per_level:cc.Scenario.chaos_plans_per_level
                        ?max_faults:cc.Scenario.chaos_max_faults ~seed:c.seed adv))
            | Error e -> Error e)
      in
      match chaos with
      | Error e ->
          prerr_endline ("error: " ^ e);
          1
      | Ok chaos -> (
          let trace =
            match cc.Scenario.trace_file with
            | Some path -> (
                match In_channel.with_open_text path In_channel.input_all with
                | text -> (
                    match Overlay.Controller.parse_trace text with
                    | Ok reqs -> Ok reqs
                    | Error e -> Error (Overlay.Error.to_string e))
                | exception Sys_error msg -> Error msg)
            | None ->
                Ok
                  (Overlay.Controller.random_trace ~seed:c.seed
                     ?join_probability:cc.Scenario.join_probability ~family ~k:c.k ~n0:c.n
                     ~steps:cc.Scenario.steps ())
          in
          match trace with
          | Error e ->
              prerr_endline ("error: " ^ e);
              1
          | Ok trace ->
              with_jobs c (fun pool ->
                  let verify =
                    if cc.Scenario.full_verify then Overlay.Controller.Full
                    else Overlay.Controller.Cached
                  in
                  match
                    Overlay.Controller.create ?pool ~verify ?chaos ~family ~k:c.k ~n:c.n ()
                  with
                  | Error e ->
                      prerr_endline ("error: " ^ Overlay.Error.to_string e);
                      1
                  | Ok t -> (
                      match Overlay.Controller.run ~batch:cc.Scenario.batch t trace with
                      | Error e ->
                          prerr_endline ("error: " ^ Overlay.Error.to_string e);
                          1
                      | Ok epochs ->
                          let ok = List.for_all Overlay.Controller.epoch_ok epochs in
                          (match c.metrics with
                          | Some `Json ->
                              print_string (Overlay.Controller.run_to_json t epochs)
                          | Some `Text | None ->
                              List.iter
                                (fun e ->
                                  Format.printf "%a@." Overlay.Controller.pp_epoch e)
                                epochs;
                              let applied =
                                List.fold_left
                                  (fun a (e : Overlay.Controller.epoch) ->
                                    a + e.Overlay.Controller.applied)
                                  0 epochs
                              in
                              Printf.printf
                                "controller: %d epochs, %d events applied, final n=%d, %s\n"
                                (List.length epochs) applied (Overlay.Controller.n t)
                                (if ok then "all epochs verified"
                                 else "VERIFICATION OR BOUNDARY FAILURE"));
                          if ok then 0 else 1))))

(* the controller flag group, decoded once into Scenario.controller *)
let controller_term =
  let steps =
    Arg.(
      value
      & opt int 40
      & info [ "steps" ] ~docv:"N" ~doc:"Length of the generated random request trace.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Request trace file (one request per line: $(b,join), $(b,leave) or $(b,resize \
             N); # comments) instead of a generated trace.")
  in
  let batch =
    Arg.(
      value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc:"Requests batched into one epoch.")
  in
  let join_probability =
    Arg.(
      value
      & opt (some float) None
      & info [ "join-probability" ] ~docv:"P"
          ~doc:"Join probability of the generated trace (default 0.55).")
  in
  let chaos_adversary =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"ADVERSARY"
          ~doc:
            "Run a chaos audit against the overlay after every epoch (min-cut, min-edge-cut, \
             high-degree, random, dynamic).")
  in
  let plans_per_level =
    Arg.(
      value
      & opt int 2
      & info [ "plans-per-level" ] ~docv:"P" ~doc:"Chaos plans per fault level and epoch.")
  in
  let max_faults =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-faults" ] ~docv:"F" ~doc:"Chaos fault budget per epoch (default k).")
  in
  let full_verify =
    Arg.(
      value
      & flag
      & info [ "full-verify" ]
          ~doc:
            "Run the full verifier every epoch instead of the certificate cache (the \
             baseline the cache is benchmarked against).")
  in
  let make steps trace_file batch join_probability chaos_adversary chaos_plans_per_level
      chaos_max_faults full_verify =
    {
      Scenario.steps;
      trace_file;
      batch;
      join_probability;
      chaos_adversary;
      chaos_plans_per_level;
      chaos_max_faults;
      full_verify;
    }
  in
  Term.(
    const make $ steps $ trace_file $ batch $ join_probability $ chaos_adversary
    $ plans_per_level $ max_faults $ full_verify)

let controller_cmd =
  Cmd.v
    (Cmd.info "controller"
       ~doc:
         "Run the epoch-based reconfiguration controller over a request trace, emitting \
          lhg-reconfig/1 epoch diffs")
    Term.(const controller $ common_term $ controller_term)

(* traffic *)

let traffic (c : common) (tc : Scenario.traffic) =
  let workload = tc.Scenario.workload in
  match
    match tc.Scenario.plan_file with
    | None -> Ok None
    | Some path -> Result.map Option.some (Chaos.Plan.of_file path)
  with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok plan ->
      with_graph c (fun g ->
          match Traffic.Workload.validate workload ~n:(Graph_core.Graph.n g) with
          | Error e ->
              prerr_endline ("error: " ^ e);
              1
          | Ok () -> (
              let env =
                Spec.to_env c
                |> (match tc.Scenario.capacity with
                   | Some r -> Flood.Env.with_link_capacity r
                   | None -> Fun.id)
                |> (match tc.Scenario.queue_cap with
                   | Some q -> Flood.Env.with_queue_cap q
                   | None -> Fun.id)
                |> (match tc.Scenario.queue_policy with
                   | Some p -> Flood.Env.with_queue_policy p
                   | None -> Fun.id)
                |>
                if tc.Scenario.bands > 1 then Flood.Env.with_bands tc.Scenario.bands
                else Fun.id
              in
              (* the driver is single-simulator; --jobs is accepted for
                 CLI uniformity and must not change a byte *)
              with_jobs c (fun _pool ->
                  match Traffic.Driver.run_env ~env ?plan ~graph:g ~workload () with
                  | exception Invalid_argument msg ->
                      prerr_endline ("error: " ^ msg);
                      1
                  | r ->
                      let slo_ok =
                        r.Traffic.Driver.delivery_fraction +. 1e-9 >= tc.Scenario.min_delivery
                        && r.Traffic.Driver.p95_delay <= tc.Scenario.max_p95
                      in
                      (match c.metrics with
                      | Some `Json ->
                          print_string
                            (Scenario.report_traffic ~topology:c.topology ~n:c.n ~k:c.k
                               ~seed:c.seed r)
                      | Some `Text | None ->
                          let open Traffic.Driver in
                          Printf.printf
                            "traffic %s(n=%d, k=%d): %d sources x %d chunks, %s rate %g, %s\n"
                            c.topology c.n c.k
                            (List.length r.sources)
                            workload.Traffic.Workload.chunks_per_source
                            (Traffic.Workload.arrival_name workload.Traffic.Workload.arrival)
                            workload.Traffic.Workload.rate
                            (Traffic.Workload.dissemination_name
                               workload.Traffic.Workload.dissemination);
                          Printf.printf "  wire messages:      %d\n" r.wire_messages;
                          Printf.printf "  deliveries:         %d\n" r.deliveries;
                          Printf.printf "  dropped q/l/c/r:    %d/%d/%d/%d\n" r.dropped_queue
                            r.dropped_link r.dropped_crash r.dropped_random;
                          Printf.printf "  duration:           %.2f\n" r.duration;
                          Printf.printf "  throughput:         %.3f msgs/unit\n" r.throughput;
                          Printf.printf "  delivery fraction:  %.4f\n" r.delivery_fraction;
                          Printf.printf "  delay p50/p95/p99:  %.2f/%.2f/%.2f\n" r.p50_delay
                            r.p95_delay r.p99_delay;
                          Printf.printf "  max queue backlog:  %d\n" r.max_queue_backlog;
                          if r.hot_links <> [] then begin
                            Printf.printf "  hottest links:     ";
                            List.iter
                              (fun (src, dst, peak) ->
                                Printf.printf " %d->%d(%d)" src dst peak)
                              r.hot_links;
                            print_newline ()
                          end;
                          if workload.Traffic.Workload.dissemination = Traffic.Workload.Trees
                          then
                            Printf.printf "  tree fallbacks:     %d\n" r.tree_fallbacks;
                          if plan <> None then
                            Printf.printf "  recovery time:      %.2f\n" r.recovery_time;
                          Printf.printf "  SLO:                %s\n"
                            (if slo_ok then "ok" else "VIOLATED"));
                      if slo_ok then 0 else 1)))

(* the traffic flag group, decoded once into Scenario.traffic *)
let traffic_term =
  let sources =
    Arg.(value & opt int 4 & info [ "sources" ] ~docv:"S" ~doc:"Source nodes (spread evenly).")
  in
  let chunks =
    Arg.(value & opt int 8 & info [ "chunks" ] ~docv:"C" ~doc:"Chunks injected per source.")
  in
  let rate =
    Arg.(
      value
      & opt float 0.05
      & info [ "rate" ] ~docv:"R" ~doc:"Chunks per time unit, per source.")
  in
  let arrival =
    let arrival_conv =
      Arg.enum [ ("periodic", Traffic.Workload.Periodic); ("poisson", Traffic.Workload.Poisson) ]
    in
    Arg.(
      value
      & opt arrival_conv Traffic.Workload.Periodic
      & info [ "arrival" ] ~docv:"PROCESS" ~doc:"Arrival process: $(b,periodic) or $(b,poisson).")
  in
  let dissemination =
    let dissemination_conv =
      Arg.enum
        [
          ("flood", Traffic.Workload.Flood);
          ("trees", Traffic.Workload.Trees);
          ("gossip", Traffic.Workload.Gossip);
        ]
    in
    Arg.(
      value
      & opt dissemination_conv Traffic.Workload.Flood
      & info [ "dissemination" ] ~docv:"STRATEGY"
          ~doc:
            "How chunks spread: $(b,flood) (default, every edge), $(b,trees) (striped over \
             edge-disjoint spanning trees, n-1 messages per chunk, flood fallback on dead \
             edges), or $(b,gossip) (random push with TTL).")
  in
  let capacity =
    Arg.(
      value
      & opt (some float) None
      & info [ "capacity" ] ~docv:"R"
          ~doc:"Per-link service rate (messages per time unit); default infinite bandwidth.")
  in
  let queue_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-cap" ] ~docv:"Q" ~doc:"Bound on each link FIFO's backlog (default unbounded).")
  in
  let queue_policy =
    let policy_conv =
      Arg.enum
        [ ("drop-tail", Netsim.Network.Drop_tail); ("block", Netsim.Network.Block) ]
    in
    Arg.(
      value
      & opt (some policy_conv) None
      & info [ "queue-policy" ] ~docv:"POLICY"
          ~doc:"What a full link queue does: $(b,drop-tail) (default) or $(b,block).")
  in
  let plan_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE" ~doc:"Chaos plan to schedule mid-stream.")
  in
  let min_delivery =
    Arg.(
      value
      & opt float 1.0
      & info [ "min-delivery" ] ~docv:"F"
          ~doc:"SLO: minimum delivery fraction (default 1.0 — full coverage).")
  in
  let max_p95 =
    Arg.(
      value
      & opt float infinity
      & info [ "max-p95" ] ~docv:"T" ~doc:"SLO: maximum p95 delivery delay (default unbounded).")
  in
  let bands =
    Arg.(
      value
      & opt int 1
      & info [ "bands" ] ~docv:"B"
          ~doc:
            "Priority bands per capacity-limited link (1-4, default 1). With more than one \
             band, control messages (epoch commits under $(b,scenario)) ride band 0 and \
             overtake the queued data backlog.")
  in
  let make sources chunks rate arrival dissemination capacity queue_cap queue_policy bands
      plan_file min_delivery max_p95 =
    let workload =
      Traffic.Workload.default
      |> Traffic.Workload.with_source_count sources
      |> Traffic.Workload.with_chunks_per_source chunks
      |> Traffic.Workload.with_rate rate
      |> Traffic.Workload.with_arrival arrival
      |> Traffic.Workload.with_dissemination dissemination
    in
    {
      Scenario.workload;
      capacity;
      queue_cap;
      queue_policy;
      bands;
      plan_file;
      min_delivery;
      max_p95;
    }
  in
  Term.(
    const make $ sources $ chunks $ rate $ arrival $ dissemination $ capacity $ queue_cap
    $ queue_policy $ bands $ plan_file $ min_delivery $ max_p95)

let traffic_cmd =
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Drive a sustained multi-source traffic stream through the topology, with optional \
          per-link capacity and bounded FIFO queues, and check delivery SLOs")
    Term.(const traffic $ common_term $ traffic_term)

(* assemble *)

let assemble (c : common) crashes plan_file max_rounds certify =
  match Result.bind (check_node_cap c.n) (fun () -> Spec.construction c) with
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      1
  | Ok construction -> (
      match
        match plan_file with
        | Some path -> Result.map Option.some (Chaos.Plan.of_file path)
        | None -> Ok None
      with
      | Error e ->
          prerr_endline ("error: " ^ e);
          1
      | Ok plan ->
          (* --crashes F draws F victims from the seed and staggers the
             crashes one gossip round apart, mid-assembly — the same
             shape Assemble.Audit sweeps; an explicit --plan wins *)
          let plan =
            match (plan, crashes) with
            | (Some _ as p), _ | p, 0 -> p
            | None, f when f >= c.n || f < 0 ->
                prerr_endline "error: --crashes must be >= 0 and < n";
                exit 1
            | None, f ->
                let victims =
                  Graph_core.Prng.sample_without_replacement
                    (Graph_core.Prng.create ~seed:c.seed)
                    ~k:f ~n:c.n
                  |> List.sort compare
                in
                let period = Assemble.Run.default_params.Assemble.Run.period in
                Some
                  (Chaos.Plan.make
                     (List.mapi
                        (fun j v ->
                          {
                            Chaos.Plan.at = period *. float_of_int (j + 1);
                            event = Chaos.Plan.Crash v;
                          })
                        victims))
          in
          let obs = Spec.obs c in
          with_jobs c (fun pool ->
              let env = Spec.to_env ~obs ?pool c in
              let params = { Assemble.Run.default_params with Assemble.Run.max_rounds } in
              match
                Assemble.Run.run ~env ?plan ~params ~certify ~construction ~n:c.n ~k:c.k ()
              with
              | exception Invalid_argument msg ->
                  prerr_endline ("error: " ^ msg);
                  1
              | r ->
                  (match c.metrics with
                  | Some `Json -> print_string (Assemble.Run.to_json r)
                  | Some `Text | None ->
                      let open Assemble.Run in
                      Printf.printf "assembled %s(n=%d, k=%d) seed %d\n"
                        (construction_name r.construction) r.n r.k r.seed;
                      Printf.printf "  converged:          %b\n" r.converged;
                      Printf.printf "  verified:           %b\n" r.verified;
                      Printf.printf "  matches target:     %b\n" r.matches_target;
                      (match r.certified with
                      | Some armed -> Printf.printf "  certified:          %b\n" armed
                      | None -> ());
                      Printf.printf "  rounds:             %d (gossip %d%s)\n" r.rounds
                        r.gossip_rounds
                        (if r.capped then ", CAPPED" else "");
                      Printf.printf "  duration:           %.2f\n" r.duration;
                      Printf.printf "  messages:           %d (push %d, reply %d, req %d, ack %d, nack %d)\n"
                        r.messages r.pushes r.replies r.link_reqs r.link_acks r.link_nacks;
                      Printf.printf "  freezes/unfreezes:  %d/%d\n" r.freezes r.unfreezes;
                      Printf.printf "  deaths declared:    %d\n" r.deaths_declared;
                      Printf.printf "  views interned:     %d\n" r.views_interned;
                      Printf.printf "  final members:      %d (%d declared dead, %d crashed)\n"
                        (Array.length r.final_members)
                        (Array.length r.declared_dead)
                        (Array.length r.retired));
                  if r.Assemble.Run.converged && r.Assemble.Run.verified then 0 else 1))

let assemble_cmd =
  let crashes =
    Arg.(
      value
      & opt int 0
      & info [ "crashes" ] ~docv:"F"
          ~doc:"Crash $(docv) seed-chosen nodes mid-assembly, one gossip round apart.")
  in
  let plan_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:"Chaos plan to schedule on the substrate mid-assembly (overrides --crashes).")
  in
  let max_rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rounds" ] ~docv:"R"
          ~doc:"Abort backstop in gossip rounds (default: scaled with log n).")
  in
  let certify =
    Arg.(
      value
      & flag
      & info [ "certify" ]
          ~doc:"Additionally rebuild an Overlay.Cert connectivity certificate over the realized \
                overlay.")
  in
  Cmd.v
    (Cmd.info "assemble"
       ~doc:
         "Self-assemble the overlay by gossip — no coordinator — and verify the realized \
          topology; exit 0 iff converged and verified")
    Term.(const assemble $ common_term $ crashes $ plan_file $ max_rounds $ certify)

(* scenario: the composite — stream while the controller reconfigures *)

let scenario_run (c : common) (tc : Scenario.traffic) (cc : Scenario.controller) epoch_interval
    =
  let sc = { Scenario.spec = c; traffic = tc; controller = cc; epoch_interval } in
  with_jobs c (fun pool ->
      match Scenario.run ?pool sc with
      | Error e ->
          prerr_endline ("error: " ^ e);
          1
      | Ok o ->
          (match c.metrics with
          | Some `Json -> print_string (Scenario.report sc o)
          | Some `Text | None ->
              let open Traffic.Driver in
              let r = o.Scenario.result in
              let repairs =
                List.length
                  (List.filter
                     (fun (e : Overlay.Controller.epoch) ->
                       e.Overlay.Controller.strategy = Overlay.Controller.Repair)
                     o.Scenario.epochs)
              in
              let rebuilds = List.length o.Scenario.epochs - repairs in
              Printf.printf "scenario %s(n=%d, k=%d): %d sources x %d chunks, %s, %d epochs every %g\n"
                c.topology c.n c.k (List.length r.sources)
                tc.Scenario.workload.Traffic.Workload.chunks_per_source
                (Traffic.Workload.dissemination_name
                   tc.Scenario.workload.Traffic.Workload.dissemination)
                (List.length o.Scenario.epochs) epoch_interval;
              Printf.printf "  epochs applied:     %d (%d repair / %d rebuild), union n %d\n"
                r.epochs_applied repairs rebuilds o.Scenario.union_n;
              Printf.printf "  all verified:       %b\n" o.Scenario.all_verified;
              Printf.printf "  restripe:           %d patched, %d repacked\n" r.restripe_patched
                r.restripe_repacked;
              Printf.printf "  control messages:   %d\n" r.control_messages;
              Printf.printf "  deliveries:         %d\n" r.deliveries;
              Printf.printf "  delivery fraction:  %.4f\n" r.delivery_fraction;
              Printf.printf "  delay p50/p95/p99:  %.2f/%.2f/%.2f\n" r.p50_delay r.p95_delay
                r.p99_delay;
              Printf.printf "  duration:           %.2f\n" r.duration;
              Printf.printf "  recovery time:      %.2f\n" r.recovery_time;
              Printf.printf "  SLO:                %s\n"
                (if o.Scenario.slo_ok then "ok" else "VIOLATED"));
          if o.Scenario.slo_ok && o.Scenario.all_verified then 0 else 1)

let scenario_cmd =
  let epoch_interval =
    Arg.(
      value
      & opt float 50.0
      & info [ "epoch-interval" ] ~docv:"T"
          ~doc:"Simulated time between controller epoch commits (default 50).")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Stream sustained traffic while the reconfiguration controller commits epochs on the \
          same simulated clock: leavers crash, joiners recover, rewired links flip, spanning \
          trees re-stripe incrementally, and (with --bands > 1) commits announce themselves \
          on the priority band; exit 0 iff the SLOs hold and every epoch verified")
    Term.(const scenario_run $ common_term $ traffic_term $ controller_term $ epoch_interval)

let main_cmd =
  let doc = "Logarithmic Harary Graphs: construction, verification and flooding" in
  Cmd.group (Cmd.info "lhg_tool" ~version:"1.0.0" ~doc)
    [ generate_cmd; verify_cmd; tables_cmd; flood_cmd; chaos_cmd; metrics_cmd; diameter_cmd; cut_cmd; route_cmd; churn_cmd; controller_cmd; grow_cmd; inspect_cmd; traffic_cmd; assemble_cmd; scenario_cmd ]

let () = exit (Cmd.eval' main_cmd)
