(* B10 → PR 10: machine-readable benchmark, now with the
   churn-under-load scenario riding along.

   Writes BENCH_PR10.json — op name → ns/run for the established op set
   (names kept identical so the committed BENCH_PR8.json baseline stays
   comparable), plus 1/2/4/8-domain scaling curves for the four
   parallelised read paths, a chaos section, a controller section, the
   131k flooding ops, the million-node flood experiment (n=2^20+2
   kdiamond, 5-second budget, cross-engine identity), the traffic
   section: multi-source streams through capacity-limited links at
   n=1026 — LHG kdiamond against the random k-regular pairing model at
   matched degree (the Kim–Srikant comparison) plus the new
   dissemination-gap table (flood vs tree-striped vs gossip on a
   congestion-dominated workload, with a mid-stream ≤ k−1 link-chaos
   run and engine/jobs byte-identity over the trees path), the
   churn-under-load scenario (a 200-step controller trace committed
   mid-stream under a million-message trees stream: delivery >= 0.99,
   patch-only re-striping on repair epochs, finite recovery, the 0.85x
   congested p95 bound held while both strategies reconfigure, and
   lhg-scenario/1 byte-identity across engines and pool sizes) — a
   million-message sustained stream on the n=2^17+2 kdiamond CSR,
   wall-clocked against a 10-second budget, and the assemble section:
   the distributed-construction convergence audit (rounds vs n with
   the O(log n) gate, fault recovery at n=46, engine identity). Pure-stdlib timing
   (monotonic-enough wall clock, budgeted repetition loop) rather than
   bechamel, so the output is stable, dependency-light and trivially
   parseable.

   The scaling numbers are honest: [domains_available] records what the
   machine actually offers (a 1-core container timeshares its domains
   and shows flat-to-negative curves; the structure of the output is
   the same either way, so a many-core run drops in without edits).

   Usage: dune exec bench/bench_json.exe [-- output.json]
   LHG_BENCH_MS sets the per-op measuring budget (default 200 ms). *)

module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Bfs = Graph_core.Bfs
module Pool = Par.Pool

let budget_s =
  (match Sys.getenv_opt "LHG_BENCH_MS" with
  | Some ms -> (try float_of_string ms with Failure _ -> 200.0)
  | None -> 200.0)
  /. 1000.0

(* ns/run: repeat [f] until the time budget is spent (at least
   [min_reps] runs) and report the mean. Heavy multi-hundred-ms ops
   pass a lower floor so one op cannot eat the whole budget ×3. *)
let time_ns ?(min_reps = 3) f =
  ignore (Sys.opaque_identity (f ())) (* warmup *);
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < budget_s || !reps < min_reps do
    ignore (Sys.opaque_identity (f ()));
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed *. 1e9 /. float_of_int !reps

let results : (string * float) list ref = ref []

let bench ?min_reps name f =
  let ns = time_ns ?min_reps f in
  results := (name, ns) :: !results;
  Printf.printf "%-40s %12.0f ns/run\n%!" name ns;
  ns

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c -> match c with '"' | '\\' -> Buffer.add_char b '\\'; Buffer.add_char b c | _ -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Baseline ops from a previous BENCH_PR*.json, parsed with the same
   hand-rolled discipline the writer uses: entries inside
   "ops_ns_per_run" are one per line, ["name": ns,]. *)
let read_baseline_ops path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let ops = ref [] and inside = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if String.length line >= 18 && String.sub line 0 18 = "\"ops_ns_per_run\": " then
           inside := true
         else if !inside then
           if line = "}," || line = "}" then raise Exit
           else
             try Scanf.sscanf line "%S: %f" (fun name ns -> ops := (name, ns) :: !ops)
             with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
       done
     with Exit | End_of_file -> ());
    close_in ic;
    List.rev !ops
  end

(* One scaling family: the same operation at 1, 2, 4 and 8 domains.
   Returns (family_name, [(domains, ns); ...]) and registers each
   configuration as "<family>_d<domains>" in the flat op table. *)
let domain_counts = [ 1; 2; 4; 8 ]

let scale_family ?min_reps name (f : pool:Pool.t option -> unit) =
  let curve =
    List.map
      (fun d ->
        let pool = if d = 1 then None else Some (Pool.create ~domains:d) in
        let ns =
          Fun.protect
            ~finally:(fun () -> Option.iter Pool.shutdown pool)
            (fun () -> bench ?min_reps (Printf.sprintf "%s_d%d" name d) (fun () -> f ~pool))
        in
        (d, ns))
      domain_counts
  in
  (name, curve)

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_PR10.json" in
  print_endline
    "=== B8  JSON benchmark: tree-striped dissemination + sustained traffic + million-node smoke ===";
  Printf.printf "domains available: %d\n%!" (Domain.recommended_domain_count ());

  (* the 16k graph is built after the n=1026 op group below: the hot
     n=1026 loops should not pay GC tax for a multi-megabyte heap they
     never touch *)
  let g1k = (Lhg_core.Build.kdiamond_exn ~n:1026 ~k:4).Lhg_core.Build.graph in
  let c1k = Csr.of_graph g1k in
  let ws = Bfs.Workspace.create () in

  ignore (bench "build_kdiamond_n1026" (fun () -> Lhg_core.Build.kdiamond_exn ~n:1026 ~k:4));
  ignore (bench "csr_of_graph_n1026" (fun () -> Csr.of_graph g1k));
  let bfs_set_1k = bench "bfs_set_n1026" (fun () -> Bfs.distances g1k ~src:0) in
  let bfs_csr_1k = bench "bfs_csr_n1026" (fun () -> Bfs.csr_distances_into ws c1k ~src:0) in
  let flood_set_1k = bench "sync_flood_graph_n1026" (fun () -> Flood.Sync.flood_env ~env:Flood.Env.default g1k ~source:0) in
  let flood_csr_1k =
    bench "sync_flood_csr_n1026" (fun () -> Flood.Sync.flood_csr ~workspace:ws c1k ~source:0)
  in

  (* observability cost: identical runs against the shared disabled
     registry (the library default — sync_flood_csr_n1026 above is the
     same path) and against a live one *)
  let obs_live = Obs.Registry.create () in
  let sync_obs_on =
    bench "sync_flood_csr_n1026_obs_on" (fun () ->
        Flood.Sync.flood_csr ~workspace:ws ~obs:obs_live c1k ~source:0)
  in
  (* The async-flood hot path, PR-6 shape: flood the frozen CSR
     snapshot. Since B6 the builders emit CSR directly, so the hot loop
     never holds a Set-backed graph — the per-call conversion the PR-5
     op paid is now its own line item (csr_of_graph_n1026 above), and
     flood_async_graph_n1026_obs_off below keeps the legacy
     conversion-included shape measurable. *)
  let flood_async_off =
    bench "flood_async_n1026_obs_off" (fun () ->
        Flood.Flooding.run_csr_env ~env:Flood.Env.default ~csr:c1k ~source:0 ())
  in
  let flood_async_on =
    bench "flood_async_n1026_obs_on" (fun () ->
        Flood.Flooding.run_csr_env ~env:(Flood.Env.make ~obs:obs_live ()) ~csr:c1k ~source:0 ())
  in
  ignore
    (bench "flood_async_graph_n1026_obs_off" (fun () ->
         Flood.Flooding.run_env ~env:Flood.Env.default ~graph:g1k ~source:0 ()));
  let g16k = (Lhg_core.Build.kdiamond_exn ~n:16386 ~k:4).Lhg_core.Build.graph in
  let c16k = Csr.of_graph g16k in
  ignore (bench "bfs_set_n16386" (fun () -> Bfs.distances g16k ~src:0));
  ignore (bench "bfs_csr_n16386" (fun () -> Bfs.csr_distances_into ws c16k ~src:0));
  ignore
    (bench "mem_edge_sweep_set_n1026" (fun () ->
         let acc = ref 0 in
         for v = 0 to Graph.n g1k - 1 do
           if Graph.has_edge g1k 0 v then incr acc
         done;
         !acc));
  ignore
    (bench "mem_edge_sweep_csr_n1026" (fun () ->
         let acc = ref 0 in
         for v = 0 to Csr.n c1k - 1 do
           if Csr.mem_edge c1k 0 v then incr acc
         done;
         !acc));
  ignore
    (bench "edge_flow_network_csr_n1026" (fun () ->
         Graph_core.Connectivity.edge_flow_network_csr c1k));
  let g258 = (Lhg_core.Build.kdiamond_exn ~n:258 ~k:4).Lhg_core.Build.graph in
  let c258 = Csr.of_graph g258 in
  ignore
    (bench ~min_reps:2 "is_4_connected_n258" (fun () ->
         Graph_core.Connectivity.is_k_vertex_connected g258 ~k:4));

  (* ------------------------------------------------------------------
     Domain-scaling curves for the four parallel read paths. The d1
     configuration is the sequential fallback (pool = None), so
     speedup_dN_vs_d1 measures exactly what ?pool buys. *)
  print_endline "--- domain scaling ---";
  let fam_ecc =
    scale_family "eccentricities_csr_n1026" (fun ~pool ->
        ignore (Sys.opaque_identity (Graph_core.Paths.eccentricities_csr ?pool c1k)))
  in
  let fam_min =
    scale_family ~min_reps:2 "is_link_minimal_n258_k4" (fun ~pool ->
        ignore (Sys.opaque_identity (Graph_core.Minimality.is_link_minimal ?pool g258 ~k:4)))
  in
  let fam_conn =
    scale_family ~min_reps:2 "is_4_vertex_connected_csr_n258" (fun ~pool ->
        ignore
          (Sys.opaque_identity (Graph_core.Connectivity.is_k_vertex_connected_csr ?pool c258 ~k:4)))
  in
  let fam_rel =
    scale_family ~min_reps:2 "flood_reliability_n16386_t1024" (fun ~pool ->
        ignore
          (Sys.opaque_identity
             (Flood.Reliability.flood_delivery ?pool ~graph:g16k ~source:0
                ~node_failure_prob:0.02 ~trials:1024 ~seed:7 ())))
  in
  let families = [ fam_ecc; fam_min; fam_conn; fam_rel ] in

  (* a 1-domain pool must cost within a few percent of the plain
     sequential path (pool = None) — CI asserts par_d1_overhead <= 1.05
     on the committed file. Measures the coarsened chunk handout. *)
  let ecc_d1pool_ns =
    let p = Pool.create ~domains:1 in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () ->
        bench "eccentricities_csr_n1026_d1_pool" (fun () ->
            ignore (Sys.opaque_identity (Graph_core.Paths.eccentricities_csr ~pool:p c1k))))
  in
  let par_d1_overhead = ecc_d1pool_ns /. List.assoc 1 (snd fam_ecc) in
  Printf.printf "1-domain pool overhead vs sequential: %.3fx\n%!" par_d1_overhead;

  (* determinism spot check: the Monte-Carlo estimate must be
     bit-identical whatever the domain count (seed-split sharding) *)
  let rel_at pool =
    (Flood.Reliability.flood_delivery ?pool ~graph:g1k ~source:0 ~node_failure_prob:0.05
       ~trials:2048 ~seed:11 ())
      .Flood.Reliability.probability
  in
  let rel_seq = rel_at None in
  let rel_par =
    let p = Pool.create ~domains:4 in
    Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> rel_at (Some p))
  in
  Printf.printf "reliability determinism: seq=%.6f par4=%.6f identical=%b\n%!" rel_seq rel_par
    (rel_seq = rel_par);
  if rel_seq <> rel_par then failwith "reliability estimate differs across domain counts";

  (* ------------------------------------------------------------------
     Chaos audit throughput: one min-cut sweep (every fault budget up
     to k) audited sequentially and on a 4-domain pool; same plans,
     same seeds, so the reports must be bit-identical. *)
  print_endline "--- chaos audit ---";
  let gch = (Lhg_core.Build.kdiamond_exn ~n:258 ~k:4).Lhg_core.Build.graph in
  let chaos_k = 4 in
  let chaos_source =
    let cut = Graph_core.Connectivity.min_vertex_cut gch in
    let rec first v = if List.mem v cut then first (v + 1) else v in
    first 0
  in
  let chaos_plans =
    let rng = Graph_core.Prng.create ~seed:5 in
    Chaos.Gen.sweep ~plans_per_level:4 ~rng ~graph:gch ~source:chaos_source ~max_faults:chaos_k
      Chaos.Gen.Min_vertex_cut
  in
  let nplans = List.length chaos_plans in
  let audit_at pool =
    let env = Flood.Env.default |> Flood.Env.with_seed 5 |> Flood.Env.with_pool pool in
    Chaos.Audit.run ~env ~graph:gch ~k:chaos_k ~source:chaos_source ~plans:chaos_plans
  in
  let chaos_report = audit_at None in
  let fingerprint r =
    List.map
      (fun p ->
        Chaos.Audit.(p.index, p.weight, p.complete, p.delivered, p.completion_time, p.messages))
      r.Chaos.Audit.reports
  in
  let chaos_seq_ns = bench ~min_reps:2 "chaos_audit_min_cut_n258_seq" (fun () -> audit_at None) in
  let chaos_pool = Pool.create ~domains:4 in
  let chaos_par_ns, chaos_deterministic =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown chaos_pool)
      (fun () ->
        let det = fingerprint (audit_at (Some chaos_pool)) = fingerprint chaos_report in
        (bench ~min_reps:2 "chaos_audit_min_cut_n258_d4" (fun () -> audit_at (Some chaos_pool)),
         det))
  in
  Printf.printf "chaos audit: %d plans, boundary_ok=%b, deterministic across domains=%b\n%!"
    nplans chaos_report.Chaos.Audit.boundary_ok chaos_deterministic;
  if not chaos_deterministic then failwith "chaos audit differs across domain counts";

  (* ------------------------------------------------------------------
     Reconfiguration controller: the same 200-event churn trace at
     batch 1 (one epoch per event — the worst case for verification),
     once with the certificate cache and once re-running the full
     verifier every epoch. amortized_speedup = full / cached is the
     PR-5 headline. *)
  print_endline "--- controller ---";
  let ctrl_family = Overlay.Membership.Kdiamond and ctrl_k = 4 and ctrl_n0 = 24 in
  let ctrl_events = 200 in
  let ctrl_trace =
    Overlay.Controller.random_trace ~seed:5 ~family:ctrl_family ~k:ctrl_k ~n0:ctrl_n0
      ~steps:ctrl_events ()
  in
  let ctrl_run ?pool ~verify () =
    match
      Overlay.Controller.create ?pool ~verify ~family:ctrl_family ~k:ctrl_k ~n:ctrl_n0 ()
    with
    | Error e -> failwith (Overlay.Error.to_string e)
    | Ok t -> (
        match Overlay.Controller.run ~batch:1 t ctrl_trace with
        | Error e -> failwith (Overlay.Error.to_string e)
        | Ok epochs -> (t, epochs))
  in
  let _, ctrl_epochs = ctrl_run ~verify:Overlay.Controller.Cached () in
  let ctrl_sum f = List.fold_left (fun a e -> a + f e) 0 ctrl_epochs in
  let ctrl_cached_epochs =
    ctrl_sum (fun e ->
        if e.Overlay.Controller.verification.Overlay.Controller.mode = `Cached then 1 else 0)
  in
  let ctrl_all_verified = List.for_all Overlay.Controller.epoch_verified ctrl_epochs in
  let ctrl_cached_ns =
    bench ~min_reps:2 "controller_200ev_cached_verify" (fun () ->
        ctrl_run ~verify:Overlay.Controller.Cached ())
  in
  let ctrl_full_ns =
    bench ~min_reps:2 "controller_200ev_full_verify" (fun () ->
        ctrl_run ~verify:Overlay.Controller.Full ())
  in
  let ctrl_speedup = ctrl_full_ns /. ctrl_cached_ns in
  (* the lhg-reconfig/1 stream must be byte-identical at any pool size *)
  let ctrl_doc pool =
    let t, epochs = ctrl_run ?pool ~verify:Overlay.Controller.Cached () in
    Overlay.Controller.run_to_json t epochs
  in
  let ctrl_doc_seq = ctrl_doc None in
  let ctrl_doc_at domains =
    let p = Pool.create ~domains in
    Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> ctrl_doc (Some p))
  in
  let ctrl_deterministic = ctrl_doc_seq = ctrl_doc_at 2 && ctrl_doc_seq = ctrl_doc_at 4 in
  (* chaos audits during epochs: a shorter trace with a min-cut sweep
     replayed against every committed overlay *)
  let ctrl_boundary_ok =
    match
      Overlay.Controller.create
        ~chaos:(Overlay.Controller.chaos ~plans_per_level:2 ~seed:9 Chaos.Gen.Min_vertex_cut)
        ~family:ctrl_family ~k:ctrl_k ~n:ctrl_n0 ()
    with
    | Error e -> failwith (Overlay.Error.to_string e)
    | Ok t -> (
        match
          Overlay.Controller.run ~batch:4 t
            (Overlay.Controller.random_trace ~seed:6 ~family:ctrl_family ~k:ctrl_k
               ~n0:ctrl_n0 ~steps:40 ())
        with
        | Error e -> failwith (Overlay.Error.to_string e)
        | Ok epochs -> epochs <> [] && List.for_all Overlay.Controller.epoch_ok epochs)
  in
  Printf.printf
    "controller: %d epochs (%d cached), amortized speedup %.2fx, deterministic=%b, chaos boundary_ok=%b\n%!"
    (List.length ctrl_epochs) ctrl_cached_epochs ctrl_speedup ctrl_deterministic
    ctrl_boundary_ok;
  if not ctrl_deterministic then failwith "controller output differs across pool sizes";

  (* the first six-figure-n flooding run: build, freeze, flood *)
  let nbig = 131_074 and k = 4 in
  Printf.printf "building kdiamond n=%d k=%d ...\n%!" nbig k;
  let t0 = Unix.gettimeofday () in
  let gbig = (Lhg_core.Build.kdiamond_exn ~n:nbig ~k).Lhg_core.Build.graph in
  let build_s = Unix.gettimeofday () -. t0 in
  let cbig = Csr.of_graph gbig in
  let bfs_csr_131k = bench "bfs_csr_n131074" (fun () -> Bfs.csr_distances_into ws cbig ~src:0) in
  let bfs_set_131k = bench "bfs_set_n131074" (fun () -> Bfs.distances gbig ~src:0) in
  let r = Flood.Sync.flood_csr ~workspace:ws cbig ~source:0 in
  let ceil_log2 =
    let rec go p e = if p >= nbig then e else go (2 * p) (e + 1) in
    go 1 0
  in
  Printf.printf
    "flood n=%d: rounds=%d (limit 2*ceil(log2 n) = %d), messages=%d, covers_all=%b\n%!" nbig
    r.Flood.Sync.rounds (2 * ceil_log2) r.Flood.Sync.messages r.Flood.Sync.covers_all_alive;

  (* the PR-6 additions at 131k: direct shape-to-CSR construction (no
     Set-backed intermediate) into the Bigarray backend, and the async
     event-driven flood over it *)
  let registry_csr ~n =
    (* through the registry's uniform csr field — the same dispatch the
       CLI and smoke binaries use *)
    match Topo.Registry.build_csr_graph ~big:true ~kind:"kdiamond" ~n ~k ~seed:1 () with
    | Ok c -> c
    | Error e -> failwith e
  in
  let cbig_direct = registry_csr ~n:nbig in
  ignore
    (bench ~min_reps:2 "build_csr_kdiamond_n131074" (fun () -> registry_csr ~n:nbig));
  ignore
    (bench ~min_reps:2 "flood_async_n131074" (fun () ->
         Flood.Flooding.run_csr_env ~env:Flood.Env.default ~csr:cbig_direct ~source:0 ()));

  (* ------------------------------------------------------------------
     The million-node experiment: build the n=2^20+2 kdiamond straight
     into an off-heap CSR, async-flood it, and stay under the 5 s
     budget. One timed shot each (this is a wall-clock smoke, not a
     mean), then the same flood on the binary-heap engine: the outcome
     — every delivery time, the message count, the round count — must
     be identical, which is the at-scale version of the qcheck
     differential. *)
  print_endline "--- million-node flood ---";
  let nmil = 1_048_578 in
  let mil_budget_s = 5.0 in
  let t0 = Unix.gettimeofday () in
  let cmil = registry_csr ~n:nmil in
  let mil_build_s = Unix.gettimeofday () -. t0 in
  let mil_flood engine =
    Flood.Flooding.run_csr_env
      ~env:(Flood.Env.make ~engine ())
      ~csr:cmil ~source:0 ()
  in
  let t0 = Unix.gettimeofday () in
  let rmil = mil_flood Netsim.Sim.Calendar in
  let mil_flood_s = Unix.gettimeofday () -. t0 in
  let mil_total_s = mil_build_s +. mil_flood_s in
  let t0 = Unix.gettimeofday () in
  let rmil_heap = mil_flood Netsim.Sim.Heap in
  let mil_heap_s = Unix.gettimeofday () -. t0 in
  let mil_engines_identical =
    rmil.Flood.Flooding.delivery_time = rmil_heap.Flood.Flooding.delivery_time
    && rmil.Flood.Flooding.messages_sent = rmil_heap.Flood.Flooding.messages_sent
    && rmil.Flood.Flooding.max_hops = rmil_heap.Flood.Flooding.max_hops
  in
  Printf.printf
    "million: n=%d build %.3fs + flood %.3fs = %.3fs (budget %.1fs), %d msgs, %d rounds, \
     covered=%b, heap engine %.3fs, engines identical=%b\n\
     %!"
    nmil mil_build_s mil_flood_s mil_total_s mil_budget_s rmil.Flood.Flooding.messages_sent
    rmil.Flood.Flooding.max_hops rmil.Flood.Flooding.covers_all_alive mil_heap_s
    mil_engines_identical;
  if not mil_engines_identical then failwith "million-node flood differs across engines";

  (* wire-trace identity at n=1026 under latency jitter and loss: the
     traced (slot-plane) path through both engines, compared event for
     event *)
  let wire engine =
    let trace = Netsim.Trace.create () in
    let env =
      Flood.Env.make
        ~latency:(Netsim.Network.uniform_latency ~lo:0.25 ~hi:3.0)
        ~loss_rate:0.02 ~seed:13 ~engine ~trace ()
    in
    let rt = Flood.Flooding.run_env ~env ~graph:g1k ~source:0 () in
    (Netsim.Trace.events trace, rt.Flood.Flooding.messages_sent)
  in
  let trace_identical = wire Netsim.Sim.Calendar = wire Netsim.Sim.Heap in
  Printf.printf "wire traces identical across engines (n=1026): %b\n%!" trace_identical;
  if not trace_identical then failwith "wire traces differ across engines";

  (* ------------------------------------------------------------------
     Sustained traffic (PR 7). Two halves:

     1. The Kim–Srikant comparison at n=1026, matched degree k=4:
        the same multi-source workload drummed through capacity-
        limited links on the LHG kdiamond and on the random k-regular
        pairing model, reporting delay percentiles, queue maxima and
        wall-clock message throughput, plus a Calendar-vs-Heap
        byte-identity check on the whole lhg-traffic/1 document.

     2. The million-message stream: the n=2^17+2 kdiamond CSR already
        frozen above, 4 sources x 2 chunks (> 4M wire messages), one
        wall-clocked shot against a 10 s budget. *)
  print_endline "--- sustained traffic ---";
  let traffic_seed = 7 in
  let traffic_workload =
    Traffic.Workload.default
    |> Traffic.Workload.with_source_count 4
    |> Traffic.Workload.with_chunks_per_source 8
    |> Traffic.Workload.with_rate 0.05
  in
  let traffic_capacity = 1.0 and traffic_queue_cap = 8 in
  let traffic_env engine =
    Flood.Env.default |> Flood.Env.with_seed traffic_seed
    |> Flood.Env.with_link_capacity traffic_capacity
    |> Flood.Env.with_queue_cap traffic_queue_cap
    |> Flood.Env.with_engine engine
  in
  let traffic_run ?(engine = Netsim.Sim.Calendar) csr =
    Traffic.Driver.run_csr_env ~env:(traffic_env engine) ~csr ~workload:traffic_workload ()
  in
  let c_rr =
    match
      Topo.Random_regular.make (Graph_core.Prng.create ~seed:traffic_seed) ~n:1026 ~k:4
    with
    | Ok g -> Csr.of_graph g
    | Error e -> failwith e
  in
  let traffic_contenders = [ ("kdiamond", c1k); ("random_regular", c_rr) ] in
  let traffic_rows =
    List.map
      (fun (topology, csr) ->
        let r = traffic_run csr in
        let ns =
          bench ~min_reps:2 (Printf.sprintf "traffic_%s_n1026" topology) (fun () ->
              traffic_run csr)
        in
        let wall_msgs_per_sec = float_of_int r.Traffic.Driver.wire_messages *. 1e9 /. ns in
        (topology, r, ns, wall_msgs_per_sec))
      traffic_contenders
  in
  List.iter
    (fun (topology, r, _, mps) ->
      Printf.printf
        "traffic %-15s delivery=%.4f p50=%.2f p95=%.2f p99=%.2f backlog=%d %.0f msgs/s\n%!"
        topology r.Traffic.Driver.delivery_fraction r.Traffic.Driver.p50_delay
        r.Traffic.Driver.p95_delay r.Traffic.Driver.p99_delay
        r.Traffic.Driver.max_queue_backlog mps)
    traffic_rows;
  (* the whole queued-stream document must not depend on the engine *)
  let traffic_doc engine =
    Scenario.report_traffic ~topology:"kdiamond" ~n:1026 ~k:4 ~seed:traffic_seed
      (traffic_run ~engine c1k)
  in
  let traffic_engines_identical =
    String.equal (traffic_doc Netsim.Sim.Calendar) (traffic_doc Netsim.Sim.Heap)
  in
  Printf.printf "traffic lhg-traffic/1 identical across engines: %b\n%!"
    traffic_engines_identical;
  if not traffic_engines_identical then
    failwith "lhg-traffic/1 differs across event engines";

  (* ------------------------------------------------------------------
     The dissemination gap (PR 8). The same congestion-dominated
     workload — 4 sources drumming 96 chunks each at rate 0.7 through
     capacity-1 links with blocking queues, so flood's per-link arrival
     rate (~4 × 0.7) runs far past service while tree striping's
     (~1/⌊k/2⌋ of that) stays under it — pushed through every
     dissemination strategy on the LHG kdiamond and through flood on
     the random-regular competitor. The headline: tree-striped
     dissemination on the LHG closes the LHG-vs-random p95 delay gap
     (CI asserts trees p95 <= 0.85 × flood p95 and gap_closed >= 0.5),
     at n−1 messages per chunk instead of 2m. *)
  print_endline "--- dissemination gap ---";
  let gap_workload =
    Traffic.Workload.default
    |> Traffic.Workload.with_source_count 4
    |> Traffic.Workload.with_chunks_per_source 96
    |> Traffic.Workload.with_rate 0.7
  in
  let gap_env ?pool ?(engine = Netsim.Sim.Calendar) () =
    Flood.Env.default |> Flood.Env.with_seed traffic_seed
    |> Flood.Env.with_link_capacity traffic_capacity
    |> Flood.Env.with_queue_cap traffic_queue_cap
    |> Flood.Env.with_queue_policy Netsim.Network.Block
    |> Flood.Env.with_engine engine
    |> match pool with Some _ -> Flood.Env.with_pool pool | None -> Fun.id
  in
  let gap_run ?pool ?engine ?plan csr dissemination =
    Traffic.Driver.run_csr_env ~env:(gap_env ?pool ?engine ()) ?plan ~csr
      ~workload:(gap_workload |> Traffic.Workload.with_dissemination dissemination)
      ()
  in
  let gap_rows =
    List.map
      (fun (label, csr, dissemination) ->
        let t0 = Unix.gettimeofday () in
        let r = gap_run csr dissemination in
        let wall_s = Unix.gettimeofday () -. t0 in
        let mpc =
          float_of_int r.Traffic.Driver.wire_messages
          /. float_of_int (max 1 r.Traffic.Driver.chunks_injected)
        in
        Printf.printf
          "gap %-22s p50=%.2f p95=%.2f p99=%.2f backlog=%d msgs/chunk=%.1f fallbacks=%d \
           delivery=%.4f (%.2fs)\n\
           %!"
          label r.Traffic.Driver.p50_delay r.Traffic.Driver.p95_delay
          r.Traffic.Driver.p99_delay r.Traffic.Driver.max_queue_backlog mpc
          r.Traffic.Driver.tree_fallbacks r.Traffic.Driver.delivery_fraction wall_s;
        (label, r, mpc, wall_s))
      [
        ("lhg_flood", c1k, Traffic.Workload.Flood);
        ("lhg_trees", c1k, Traffic.Workload.Trees);
        ("lhg_gossip", c1k, Traffic.Workload.Gossip);
        ("random_regular_flood", c_rr, Traffic.Workload.Flood);
      ]
  in
  let gap_row label =
    let _, r, _, _ = List.find (fun (l, _, _, _) -> l = label) gap_rows in
    r
  in
  let p95 label = (gap_row label).Traffic.Driver.p95_delay in
  let trees_vs_flood_p95 = p95 "lhg_trees" /. p95 "lhg_flood" in
  let gap_closed =
    let denom = p95 "lhg_flood" -. p95 "random_regular_flood" in
    if Float.abs denom < 1e-9 then Float.infinity
    else (p95 "lhg_flood" -. p95 "lhg_trees") /. denom
  in
  let trees_clean = (gap_row "lhg_trees").Traffic.Driver.tree_fallbacks = 0 in
  Printf.printf
    "gap: trees p95 / flood p95 = %.3f, gap closed vs random-regular = %.2f, clean=%b\n%!"
    trees_vs_flood_p95 gap_closed trees_clean;
  (* mid-stream chaos inside the k−1 boundary: down 3 = k−1 links —
     deliberately including live tree edges of the streaming sources —
     while the congested trees stream is in flight. The 4-edge-connected
     graph stays connected, the dead tree edges force flood fallbacks,
     and every chunk must still reach every node. *)
  let gap_sources = Traffic.Workload.resolve_sources gap_workload ~n:1026 in
  let gap_chaos_plan =
    let pack = Graph_core.Tree_pack.pack c1k ~source:(List.hd gap_sources) in
    let e0 = List.hd (Graph_core.Tree_pack.edges pack ~tree:0) in
    let e1 = List.hd (Graph_core.Tree_pack.edges pack ~tree:1) in
    let e2 = List.hd (List.rev (Graph_core.Tree_pack.edges pack ~tree:0)) in
    Chaos.Plan.make
      (List.map
         (fun (u, v) -> { Chaos.Plan.at = 40.0; event = Chaos.Plan.Link_down (u, v) })
         [ e0; e1; e2 ])
  in
  let gap_chaos = gap_run ~plan:gap_chaos_plan c1k Traffic.Workload.Trees in
  Printf.printf
    "gap chaos: 3 links down mid-stream -> delivery=%.4f all_covered=%b fallbacks=%d p95=%.2f\n%!"
    gap_chaos.Traffic.Driver.delivery_fraction gap_chaos.Traffic.Driver.all_covered
    gap_chaos.Traffic.Driver.tree_fallbacks gap_chaos.Traffic.Driver.p95_delay;
  if not gap_chaos.Traffic.Driver.all_covered then
    failwith "trees stream under link chaos missed a survivor";
  (* the trees document must be byte-identical across engines and pool
     sizes (the pool only parallelises tree packing) *)
  let gap_doc ?pool engine =
    Scenario.report_traffic ~topology:"kdiamond" ~n:1026 ~k:4 ~seed:traffic_seed
      (gap_run ?pool ~engine c1k Traffic.Workload.Trees)
  in
  let gap_doc_cal = gap_doc Netsim.Sim.Calendar in
  let gap_doc_d4 =
    let p = Pool.create ~domains:4 in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> gap_doc ~pool:p Netsim.Sim.Calendar)
  in
  let gap_deterministic =
    String.equal gap_doc_cal (gap_doc Netsim.Sim.Heap) && String.equal gap_doc_cal gap_doc_d4
  in
  Printf.printf "gap trees lhg-traffic/1 identical across engines and jobs: %b\n%!"
    gap_deterministic;
  if not gap_deterministic then
    failwith "trees lhg-traffic/1 differs across engines or pool sizes";

  (* ------------------------------------------------------------------
     Churn under load (PR 10). The scenario pipeline end to end: a
     200-step controller trace (batched into epochs) pre-played and
     lowered onto the same congestion-dominated stream the gap table
     uses — leavers crash, joiners recover, rewired links flip, tree
     packs re-stripe in place, and band-0 control notices announce
     each commit past the data backlog. The headline: a million-message
     trees stream holds >= 0.99 delivery across the whole trace with
     every repair-strategy epoch re-striped by patch alone (full
     re-packs only on rebuild epochs), recovery after the last epoch is
     finite, and congested trees-vs-flood p95 keeps the 0.85x gap
     bound while both reconfigure. *)
  print_endline "--- churn under load ---";
  let churn_steps = 200 and churn_batch = 8 in
  let churn_scenario ?(engine = Netsim.Sim.Calendar) ~chunks ~interval dissemination =
    let workload =
      Traffic.Workload.default
      |> Traffic.Workload.with_source_count 4
      |> Traffic.Workload.with_chunks_per_source chunks
      |> Traffic.Workload.with_rate 0.7
      |> Traffic.Workload.with_dissemination dissemination
    in
    {
      Scenario.spec =
        {
          Scenario.Spec.default with
          Scenario.Spec.topology = "kdiamond";
          n = 1026;
          k = 4;
          seed = traffic_seed;
          engine;
        };
      traffic =
        {
          Scenario.default_traffic with
          Scenario.workload;
          capacity = Some traffic_capacity;
          queue_policy = Some Netsim.Network.Block;
          bands = 2;
          min_delivery = 0.99;
        };
      controller =
        { Scenario.default_controller with Scenario.steps = churn_steps; batch = churn_batch };
      epoch_interval = interval;
    }
  in
  let churn_run ?pool t =
    match Scenario.run ?pool t with Ok o -> o | Error e -> failwith ("churn scenario: " ^ e)
  in
  let t0 = Unix.gettimeofday () in
  let churn_mil = churn_run (churn_scenario ~chunks:250 ~interval:12.0 Traffic.Workload.Trees) in
  let churn_mil_s = Unix.gettimeofday () -. t0 in
  let churn_r = churn_mil.Scenario.result in
  let churn_epochs = List.length churn_mil.Scenario.epochs in
  let churn_rebuilds =
    List.length
      (List.filter
         (fun (e : Overlay.Controller.epoch) ->
           e.Overlay.Controller.strategy = Overlay.Controller.Rebuild)
         churn_mil.Scenario.epochs)
  in
  let churn_patch_only =
    (* 4 sources => 4 packs re-packed per rebuild epoch, none on repair epochs *)
    churn_r.Traffic.Driver.restripe_repacked = 4 * churn_rebuilds
  in
  Printf.printf
    "churn million: %d wire msgs, %d/%d epochs applied (%d rebuilds), delivery=%.4f p95=%.2f \
     recovery=%.2f patched=%d repacked=%d ctrl_msgs=%d (%.2fs)\n\
     %!"
    churn_r.Traffic.Driver.wire_messages churn_r.Traffic.Driver.epochs_applied churn_epochs
    churn_rebuilds churn_r.Traffic.Driver.delivery_fraction churn_r.Traffic.Driver.p95_delay
    churn_r.Traffic.Driver.recovery_time churn_r.Traffic.Driver.restripe_patched
    churn_r.Traffic.Driver.restripe_repacked churn_r.Traffic.Driver.control_messages churn_mil_s;
  if churn_r.Traffic.Driver.wire_messages < 1_000_000 then
    failwith "churn stream fell short of a million messages";
  if churn_r.Traffic.Driver.epochs_applied <> churn_epochs then
    failwith "churn stream drained before every epoch applied";
  if not churn_mil.Scenario.all_verified then failwith "a churn epoch failed verification";
  if churn_r.Traffic.Driver.delivery_fraction < 0.99 then
    failwith "delivery under churn fell below 0.99";
  if not churn_patch_only then failwith "a repair-strategy epoch fell back to a full re-pack";
  if churn_r.Traffic.Driver.recovery_time < 0.0 then
    failwith "churn stream never ran clean after the last degrading epoch";
  if churn_r.Traffic.Driver.control_messages = 0 then
    failwith "no band-0 control notices under churn";
  (* the congested comparison, both strategies reconfiguring: the gap
     workload with epochs every 5 time units through the whole stream *)
  let churn_trees = churn_run (churn_scenario ~chunks:96 ~interval:5.0 Traffic.Workload.Trees) in
  let churn_flood = churn_run (churn_scenario ~chunks:96 ~interval:5.0 Traffic.Workload.Flood) in
  let churn_trees_p95 = churn_trees.Scenario.result.Traffic.Driver.p95_delay in
  let churn_flood_p95 = churn_flood.Scenario.result.Traffic.Driver.p95_delay in
  let churn_p95_ratio = churn_trees_p95 /. churn_flood_p95 in
  (* vs the frozen-membership PR-8 baseline rows measured above *)
  let churn_vs_frozen_trees = churn_trees_p95 /. p95 "lhg_trees" in
  Printf.printf
    "churn gap: trees p95=%.2f flood p95=%.2f ratio=%.3f (vs frozen trees %.3fx), \
     delivery trees=%.4f flood=%.4f\n\
     %!"
    churn_trees_p95 churn_flood_p95 churn_p95_ratio churn_vs_frozen_trees
    churn_trees.Scenario.result.Traffic.Driver.delivery_fraction
    churn_flood.Scenario.result.Traffic.Driver.delivery_fraction;
  if churn_p95_ratio > 0.85 then
    failwith "tree striping lost the 0.85x congested p95 bound under churn";
  (* the lhg-scenario/1 document must not depend on the engine or pool *)
  let churn_doc_of t o = Scenario.report t o in
  let churn_doc_cal =
    churn_doc_of (churn_scenario ~chunks:96 ~interval:5.0 Traffic.Workload.Trees) churn_trees
  in
  let churn_doc_heap =
    let t = churn_scenario ~engine:Netsim.Sim.Heap ~chunks:96 ~interval:5.0 Traffic.Workload.Trees in
    churn_doc_of t (churn_run t)
  in
  let churn_doc_d4 =
    let p = Pool.create ~domains:4 in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () ->
        let t = churn_scenario ~chunks:96 ~interval:5.0 Traffic.Workload.Trees in
        churn_doc_of t (churn_run ~pool:p t))
  in
  let churn_deterministic =
    String.equal churn_doc_cal churn_doc_heap && String.equal churn_doc_cal churn_doc_d4
  in
  Printf.printf "churn lhg-scenario/1 identical across engines and jobs: %b\n%!"
    churn_deterministic;
  if not churn_deterministic then
    failwith "lhg-scenario/1 differs across engines or pool sizes";

  (* million-message stream: free-running (no capacity) so the number
     measures raw sustained flooding throughput, one timed shot *)
  let mil_traffic_workload =
    Traffic.Workload.default
    |> Traffic.Workload.with_source_count 4
    |> Traffic.Workload.with_chunks_per_source 2
    |> Traffic.Workload.with_rate 0.05
  in
  let mil_traffic_budget_s = 10.0 in
  let t0 = Unix.gettimeofday () in
  let mil_traffic =
    Traffic.Driver.run_csr_env
      ~env:(Flood.Env.default |> Flood.Env.with_seed traffic_seed)
      ~csr:cbig_direct ~workload:mil_traffic_workload ()
  in
  let mil_traffic_s = Unix.gettimeofday () -. t0 in
  let mil_traffic_mps = float_of_int mil_traffic.Traffic.Driver.wire_messages /. mil_traffic_s in
  Printf.printf
    "traffic million: n=%d, %d wire msgs in %.3fs (budget %.1fs) = %.0f msgs/s, covered=%b\n%!"
    nbig mil_traffic.Traffic.Driver.wire_messages mil_traffic_s mil_traffic_budget_s
    mil_traffic_mps mil_traffic.Traffic.Driver.all_covered;
  if not mil_traffic.Traffic.Driver.all_covered then
    failwith "million-message stream missed a node";

  let speedup_bfs = bfs_set_1k /. bfs_csr_1k in
  let speedup_flood = flood_set_1k /. flood_csr_1k in
  Printf.printf "bfs n=1026 csr speedup: %.2fx; sync flood: %.2fx; bfs n=131074: %.2fx\n%!"
    speedup_bfs speedup_flood (bfs_set_131k /. bfs_csr_131k);

  (* one instrumented flood on the n=1026 graph, dumped in full — the
     before/after document every perf PR diffs *)
  let metrics_dump =
    let obs = Obs.Registry.create () in
    ignore (Flood.Flooding.run_env ~env:(Flood.Env.make ~obs ()) ~graph:g1k ~source:0 ());
    let doc = String.trim (Obs.Export.to_json ~recent_events:8 obs) in
    (* re-indent the embedded document one level *)
    String.concat "\n  " (String.split_on_char '\n' doc)
  in
  (* the self-assembly section: the convergence audit — scaling sweep
     (the O(log n) claim CI gates on: rounds <= 3 * ceil(log2 n)) plus
     the fault-recovery table at n=46, and engine byte-identity over
     the whole audit document *)
  let assemble_sizes = [ 10; 46; 100; 258; 1026 ] in
  let assemble_recovery_n = 46 and assemble_max_faults = 3 in
  let assemble_audit engine =
    let env = Flood.Env.default |> Flood.Env.with_seed 1 |> Flood.Env.with_engine engine in
    Assemble.Audit.run ~env ~construction:Lhg_core.Build.Kdiamond ~k:4 ~sizes:assemble_sizes
      ~recovery_n:assemble_recovery_n ~max_faults:assemble_max_faults ()
  in
  let t0 = Unix.gettimeofday () in
  let asm = assemble_audit Netsim.Sim.Calendar in
  let asm_s = Unix.gettimeofday () -. t0 in
  let asm_engines_identical =
    Assemble.Audit.to_json asm = Assemble.Audit.to_json (assemble_audit Netsim.Sim.Heap)
  in
  let ceil_log2_of n =
    let b = ref 0 in
    while 1 lsl !b < n do
      incr b
    done;
    !b
  in
  let asm_rounds_c = 3 in
  let asm_within_bound =
    List.for_all
      (fun (r : Assemble.Audit.report) ->
        r.Assemble.Audit.rounds <= asm_rounds_c * ceil_log2_of r.Assemble.Audit.n)
      asm.Assemble.Audit.sweep
  in
  Printf.printf
    "assemble: %d sizes + %d recovery configs in %.3fs, all_ok=%b, rounds<=%d*log2(n)=%b, engines identical=%b\n%!"
    (List.length asm.Assemble.Audit.sweep)
    (List.length asm.Assemble.Audit.recovery)
    asm_s asm.Assemble.Audit.all_ok asm_rounds_c asm_within_bound asm_engines_identical;

  let baseline = read_baseline_ops "BENCH_PR8.json" in

  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n  \"schema\": \"lhg-bench-json/1\",\n";
  Buffer.add_string buf "  \"pr\": 9,\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"budget_ms_per_op\": %.0f,\n" (budget_s *. 1000.0));
  Buffer.add_string buf
    (Printf.sprintf "  \"domains_available\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"ops_ns_per_run\": {\n";
  let ops = List.rev !results in
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %.1f%s\n" (json_escape name) ns
           (if i = List.length ops - 1 then "" else ",")))
    ops;
  Buffer.add_string buf "  },\n";
  (* per-family curves plus derived speedups vs the d1 (sequential)
     configuration of the same binary *)
  Buffer.add_string buf "  \"scaling\": {\n";
  List.iteri
    (fun i (name, curve) ->
      let d1 = List.assoc 1 curve in
      Buffer.add_string buf (Printf.sprintf "    \"%s\": {\n" (json_escape name));
      List.iter
        (fun (d, ns) -> Buffer.add_string buf (Printf.sprintf "      \"d%d_ns\": %.1f,\n" d ns))
        curve;
      let speedups = List.filter (fun (d, _) -> d <> 1) curve in
      List.iteri
        (fun j (d, ns) ->
          Buffer.add_string buf
            (Printf.sprintf "      \"speedup_d%d_vs_d1\": %.3f%s\n" d (d1 /. ns)
               (if j = List.length speedups - 1 then "" else ",")))
        speedups;
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length families - 1 then "" else ",")))
    families;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"derived\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_bfs_n1026_csr_vs_set\": %.2f,\n" speedup_bfs);
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_bfs_n131074_csr_vs_set\": %.2f,\n"
       (bfs_set_131k /. bfs_csr_131k));
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_sync_flood_n1026_amortised_vs_snapshot_per_call\": %.2f,\n" speedup_flood);
  Buffer.add_string buf
    (Printf.sprintf "    \"obs_overhead_sync_flood_on_vs_off\": %.3f,\n"
       (sync_obs_on /. flood_csr_1k));
  Buffer.add_string buf
    (Printf.sprintf "    \"obs_overhead_flood_async_on_vs_off\": %.3f,\n"
       (flood_async_on /. flood_async_off));
  Buffer.add_string buf
    (Printf.sprintf "    \"reliability_deterministic_across_domains\": %b,\n"
       (rel_seq = rel_par));
  Buffer.add_string buf
    (Printf.sprintf "    \"par_d1_overhead\": %.3f,\n" par_d1_overhead);
  Buffer.add_string buf
    (Printf.sprintf "    \"wire_trace_identical_across_engines_n1026\": %b\n" trace_identical);
  Buffer.add_string buf "  },\n";
  (* the chaos audit section: throughput both ways, plans/sec, and the
     delivery matrix CI asserts on (all rows at <= k-1 faults complete) *)
  Buffer.add_string buf "  \"chaos\": {\n";
  Buffer.add_string buf "    \"graph\": \"kdiamond\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"n\": %d,\n" (Graph.n gch));
  Buffer.add_string buf (Printf.sprintf "    \"k\": %d,\n" chaos_k);
  Buffer.add_string buf (Printf.sprintf "    \"source\": %d,\n" chaos_source);
  Buffer.add_string buf "    \"adversary\": \"min-cut\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"plans\": %d,\n" nplans);
  Buffer.add_string buf (Printf.sprintf "    \"audit_seq_ns\": %.1f,\n" chaos_seq_ns);
  Buffer.add_string buf (Printf.sprintf "    \"audit_d4_ns\": %.1f,\n" chaos_par_ns);
  Buffer.add_string buf
    (Printf.sprintf "    \"plans_per_sec_seq\": %.1f,\n"
       (float_of_int nplans *. 1e9 /. chaos_seq_ns));
  Buffer.add_string buf
    (Printf.sprintf "    \"plans_per_sec_d4\": %.1f,\n"
       (float_of_int nplans *. 1e9 /. chaos_par_ns));
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_d4_vs_seq\": %.3f,\n" (chaos_seq_ns /. chaos_par_ns));
  Buffer.add_string buf
    (Printf.sprintf "    \"boundary_ok\": %b,\n" chaos_report.Chaos.Audit.boundary_ok);
  Buffer.add_string buf
    (Printf.sprintf "    \"deterministic_across_domains\": %b,\n" chaos_deterministic);
  Buffer.add_string buf "    \"delivery_matrix\": [\n";
  let matrix = chaos_report.Chaos.Audit.matrix in
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"faults\": %d, \"plans\": %d, \"complete\": %d, \"stochastic\": %d}%s\n"
           row.Chaos.Audit.faults row.Chaos.Audit.plans row.Chaos.Audit.complete_plans
           row.Chaos.Audit.stochastic_plans
           (if i = List.length matrix - 1 then "" else ",")))
    matrix;
  Buffer.add_string buf "    ]\n";
  Buffer.add_string buf "  },\n";
  (* the controller section: amortized certificate-cached verification
     vs the full-verify-per-epoch baseline on the same trace — the
     committed file must show amortized_speedup >= 3 (CI asserts) *)
  Buffer.add_string buf "  \"controller\": {\n";
  Buffer.add_string buf "    \"family\": \"kdiamond\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"k\": %d,\n" ctrl_k);
  Buffer.add_string buf (Printf.sprintf "    \"n0\": %d,\n" ctrl_n0);
  Buffer.add_string buf (Printf.sprintf "    \"events\": %d,\n" ctrl_events);
  Buffer.add_string buf "    \"batch\": 1,\n";
  Buffer.add_string buf (Printf.sprintf "    \"epochs\": %d,\n" (List.length ctrl_epochs));
  Buffer.add_string buf (Printf.sprintf "    \"cached_epochs\": %d,\n" ctrl_cached_epochs);
  Buffer.add_string buf
    (Printf.sprintf "    \"fallback_epochs\": %d,\n"
       (List.length ctrl_epochs - ctrl_cached_epochs));
  Buffer.add_string buf
    (Printf.sprintf "    \"certs_reused\": %d,\n"
       (ctrl_sum (fun e -> e.Overlay.Controller.verification.Overlay.Controller.reused)));
  Buffer.add_string buf
    (Printf.sprintf "    \"certs_revalidated\": %d,\n"
       (ctrl_sum (fun e -> e.Overlay.Controller.verification.Overlay.Controller.revalidated)));
  Buffer.add_string buf
    (Printf.sprintf "    \"certs_recomputed\": %d,\n"
       (ctrl_sum (fun e -> e.Overlay.Controller.verification.Overlay.Controller.recomputed)));
  Buffer.add_string buf (Printf.sprintf "    \"cached_run_ns\": %.1f,\n" ctrl_cached_ns);
  Buffer.add_string buf (Printf.sprintf "    \"full_verify_run_ns\": %.1f,\n" ctrl_full_ns);
  Buffer.add_string buf
    (Printf.sprintf "    \"events_per_sec_cached\": %.1f,\n"
       (float_of_int ctrl_events *. 1e9 /. ctrl_cached_ns));
  Buffer.add_string buf
    (Printf.sprintf "    \"events_per_sec_full\": %.1f,\n"
       (float_of_int ctrl_events *. 1e9 /. ctrl_full_ns));
  Buffer.add_string buf (Printf.sprintf "    \"amortized_speedup\": %.3f,\n" ctrl_speedup);
  Buffer.add_string buf (Printf.sprintf "    \"all_verified\": %b,\n" ctrl_all_verified);
  Buffer.add_string buf
    (Printf.sprintf "    \"deterministic_across_jobs\": %b,\n" ctrl_deterministic);
  Buffer.add_string buf (Printf.sprintf "    \"boundary_ok\": %b\n" ctrl_boundary_ok);
  Buffer.add_string buf "  },\n";
  (* the sustained-traffic section: the Kim–Srikant comparison table
     (LHG kdiamond vs random k-regular at matched degree through the
     same capacity-limited links) and the million-message stream — the
     PR-7 headline CI asserts on *)
  Buffer.add_string buf "  \"traffic\": {\n";
  Buffer.add_string buf "    \"n\": 1026,\n";
  Buffer.add_string buf "    \"k\": 4,\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"link_capacity\": %g,\n" traffic_capacity);
  Buffer.add_string buf (Printf.sprintf "    \"queue_cap\": %d,\n" traffic_queue_cap);
  Buffer.add_string buf "    \"workload\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "      \"arrival\": \"%s\",\n"
       (Traffic.Workload.arrival_name traffic_workload.Traffic.Workload.arrival));
  Buffer.add_string buf
    (Printf.sprintf "      \"sources\": %d,\n" traffic_workload.Traffic.Workload.source_count);
  Buffer.add_string buf
    (Printf.sprintf "      \"chunks_per_source\": %d,\n"
       traffic_workload.Traffic.Workload.chunks_per_source);
  Buffer.add_string buf
    (Printf.sprintf "      \"rate\": %g\n" traffic_workload.Traffic.Workload.rate);
  Buffer.add_string buf "    },\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"deterministic_across_engines\": %b,\n" traffic_engines_identical);
  Buffer.add_string buf "    \"comparison\": [\n";
  List.iteri
    (fun i (topology, (r : Traffic.Driver.result), ns, mps) ->
      Buffer.add_string buf "      {\n";
      Buffer.add_string buf (Printf.sprintf "        \"topology\": \"%s\",\n" topology);
      Buffer.add_string buf
        (Printf.sprintf "        \"wire_messages\": %d,\n" r.Traffic.Driver.wire_messages);
      Buffer.add_string buf
        (Printf.sprintf "        \"deliveries\": %d,\n" r.Traffic.Driver.deliveries);
      Buffer.add_string buf
        (Printf.sprintf "        \"dropped_queue\": %d,\n" r.Traffic.Driver.dropped_queue);
      Buffer.add_string buf
        (Printf.sprintf "        \"delivery_fraction\": %.6f,\n"
           r.Traffic.Driver.delivery_fraction);
      Buffer.add_string buf
        (Printf.sprintf "        \"p50_delay\": %.3f,\n" r.Traffic.Driver.p50_delay);
      Buffer.add_string buf
        (Printf.sprintf "        \"p95_delay\": %.3f,\n" r.Traffic.Driver.p95_delay);
      Buffer.add_string buf
        (Printf.sprintf "        \"p99_delay\": %.3f,\n" r.Traffic.Driver.p99_delay);
      Buffer.add_string buf
        (Printf.sprintf "        \"max_delay\": %.3f,\n" r.Traffic.Driver.max_delay);
      Buffer.add_string buf
        (Printf.sprintf "        \"max_queue_backlog\": %d,\n"
           r.Traffic.Driver.max_queue_backlog);
      Buffer.add_string buf
        (Printf.sprintf "        \"duration_virtual\": %.3f,\n" r.Traffic.Driver.duration);
      Buffer.add_string buf
        (Printf.sprintf "        \"throughput_virtual\": %.3f,\n" r.Traffic.Driver.throughput);
      Buffer.add_string buf (Printf.sprintf "        \"run_ns\": %.1f,\n" ns);
      Buffer.add_string buf (Printf.sprintf "        \"wall_msgs_per_sec\": %.1f\n" mps);
      Buffer.add_string buf
        (Printf.sprintf "      }%s\n" (if i = List.length traffic_rows - 1 then "" else ",")))
    traffic_rows;
  Buffer.add_string buf "    ],\n";
  (* the dissemination-gap table: every strategy on the congested
     workload, the derived headline ratios CI gates on, and the
     mid-stream link-chaos run *)
  Buffer.add_string buf "    \"dissemination_gap\": {\n";
  Buffer.add_string buf "      \"workload\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "        \"sources\": %d,\n" gap_workload.Traffic.Workload.source_count);
  Buffer.add_string buf
    (Printf.sprintf "        \"chunks_per_source\": %d,\n"
       gap_workload.Traffic.Workload.chunks_per_source);
  Buffer.add_string buf
    (Printf.sprintf "        \"rate\": %g,\n" gap_workload.Traffic.Workload.rate);
  Buffer.add_string buf "        \"queue_policy\": \"block\"\n";
  Buffer.add_string buf "      },\n";
  Buffer.add_string buf "      \"rows\": [\n";
  List.iteri
    (fun i (label, (r : Traffic.Driver.result), mpc, wall_s) ->
      Buffer.add_string buf "        {\n";
      Buffer.add_string buf (Printf.sprintf "          \"strategy\": \"%s\",\n" label);
      Buffer.add_string buf
        (Printf.sprintf "          \"wire_messages\": %d,\n" r.Traffic.Driver.wire_messages);
      Buffer.add_string buf
        (Printf.sprintf "          \"messages_per_chunk\": %.2f,\n" mpc);
      Buffer.add_string buf
        (Printf.sprintf "          \"delivery_fraction\": %.6f,\n"
           r.Traffic.Driver.delivery_fraction);
      Buffer.add_string buf
        (Printf.sprintf "          \"p50_delay\": %.3f,\n" r.Traffic.Driver.p50_delay);
      Buffer.add_string buf
        (Printf.sprintf "          \"p95_delay\": %.3f,\n" r.Traffic.Driver.p95_delay);
      Buffer.add_string buf
        (Printf.sprintf "          \"p99_delay\": %.3f,\n" r.Traffic.Driver.p99_delay);
      Buffer.add_string buf
        (Printf.sprintf "          \"max_queue_backlog\": %d,\n"
           r.Traffic.Driver.max_queue_backlog);
      Buffer.add_string buf
        (Printf.sprintf "          \"tree_fallbacks\": %d,\n" r.Traffic.Driver.tree_fallbacks);
      Buffer.add_string buf (Printf.sprintf "          \"wall_seconds\": %.3f\n" wall_s);
      Buffer.add_string buf
        (Printf.sprintf "        }%s\n" (if i = List.length gap_rows - 1 then "" else ",")))
    gap_rows;
  Buffer.add_string buf "      ],\n";
  Buffer.add_string buf
    (Printf.sprintf "      \"trees_clean_messages_per_chunk\": %d,\n" 1025);
  Buffer.add_string buf
    (Printf.sprintf "      \"trees_p95_over_flood_p95\": %.4f,\n" trees_vs_flood_p95);
  Buffer.add_string buf (Printf.sprintf "      \"gap_closed_vs_random_regular\": %.4f,\n" gap_closed);
  Buffer.add_string buf (Printf.sprintf "      \"trees_run_clean\": %b,\n" trees_clean);
  Buffer.add_string buf
    (Printf.sprintf "      \"deterministic_across_engines_and_jobs\": %b,\n" gap_deterministic);
  Buffer.add_string buf "      \"link_chaos\": {\n";
  Buffer.add_string buf "        \"links_down\": 3,\n";
  Buffer.add_string buf "        \"at\": 40.0,\n";
  Buffer.add_string buf
    (Printf.sprintf "        \"delivery_fraction\": %.6f,\n"
       gap_chaos.Traffic.Driver.delivery_fraction);
  Buffer.add_string buf
    (Printf.sprintf "        \"all_covered\": %b,\n" gap_chaos.Traffic.Driver.all_covered);
  Buffer.add_string buf
    (Printf.sprintf "        \"tree_fallbacks\": %d,\n" gap_chaos.Traffic.Driver.tree_fallbacks);
  Buffer.add_string buf
    (Printf.sprintf "        \"p95_delay\": %.3f,\n" gap_chaos.Traffic.Driver.p95_delay);
  Buffer.add_string buf
    (Printf.sprintf "        \"recovery_time\": %.3f\n" gap_chaos.Traffic.Driver.recovery_time);
  Buffer.add_string buf "      }\n";
  Buffer.add_string buf "    },\n";
  Buffer.add_string buf "    \"churn_under_load\": {\n";
  Buffer.add_string buf "      \"topology\": \"kdiamond\",\n";
  Buffer.add_string buf "      \"n\": 1026,\n";
  Buffer.add_string buf "      \"k\": 4,\n";
  Buffer.add_string buf (Printf.sprintf "      \"controller_steps\": %d,\n" churn_steps);
  Buffer.add_string buf (Printf.sprintf "      \"batch\": %d,\n" churn_batch);
  Buffer.add_string buf (Printf.sprintf "      \"epochs\": %d,\n" churn_epochs);
  Buffer.add_string buf (Printf.sprintf "      \"rebuild_epochs\": %d,\n" churn_rebuilds);
  Buffer.add_string buf "      \"bands\": 2,\n";
  Buffer.add_string buf "      \"million_stream\": {\n";
  Buffer.add_string buf "        \"sources\": 4,\n";
  Buffer.add_string buf "        \"chunks_per_source\": 250,\n";
  Buffer.add_string buf "        \"epoch_interval\": 12.0,\n";
  Buffer.add_string buf
    (Printf.sprintf "        \"wire_messages\": %d,\n" churn_r.Traffic.Driver.wire_messages);
  Buffer.add_string buf
    (Printf.sprintf "        \"epochs_applied\": %d,\n" churn_r.Traffic.Driver.epochs_applied);
  Buffer.add_string buf
    (Printf.sprintf "        \"all_verified\": %b,\n" churn_mil.Scenario.all_verified);
  Buffer.add_string buf
    (Printf.sprintf "        \"delivery_fraction\": %.6f,\n"
       churn_r.Traffic.Driver.delivery_fraction);
  Buffer.add_string buf
    (Printf.sprintf "        \"p95_delay\": %.3f,\n" churn_r.Traffic.Driver.p95_delay);
  Buffer.add_string buf
    (Printf.sprintf "        \"recovery_time\": %.3f,\n" churn_r.Traffic.Driver.recovery_time);
  Buffer.add_string buf
    (Printf.sprintf "        \"restripe_patched\": %d,\n" churn_r.Traffic.Driver.restripe_patched);
  Buffer.add_string buf
    (Printf.sprintf "        \"restripe_repacked\": %d,\n"
       churn_r.Traffic.Driver.restripe_repacked);
  Buffer.add_string buf
    (Printf.sprintf "        \"control_messages\": %d,\n"
       churn_r.Traffic.Driver.control_messages);
  Buffer.add_string buf (Printf.sprintf "        \"wall_seconds\": %.3f\n" churn_mil_s);
  Buffer.add_string buf "      },\n";
  Buffer.add_string buf
    (Printf.sprintf "      \"repair_epochs_patch_only\": %b,\n" churn_patch_only);
  Buffer.add_string buf "      \"congested\": {\n";
  Buffer.add_string buf "        \"chunks_per_source\": 96,\n";
  Buffer.add_string buf "        \"epoch_interval\": 5.0,\n";
  Buffer.add_string buf (Printf.sprintf "        \"trees_p95\": %.3f,\n" churn_trees_p95);
  Buffer.add_string buf (Printf.sprintf "        \"flood_p95\": %.3f,\n" churn_flood_p95);
  Buffer.add_string buf
    (Printf.sprintf "        \"trees_p95_over_flood_p95\": %.4f,\n" churn_p95_ratio);
  Buffer.add_string buf
    (Printf.sprintf "        \"trees_p95_over_frozen_trees_p95\": %.4f,\n" churn_vs_frozen_trees);
  Buffer.add_string buf
    (Printf.sprintf "        \"trees_delivery_fraction\": %.6f,\n"
       churn_trees.Scenario.result.Traffic.Driver.delivery_fraction);
  Buffer.add_string buf
    (Printf.sprintf "        \"flood_delivery_fraction\": %.6f\n"
       churn_flood.Scenario.result.Traffic.Driver.delivery_fraction);
  Buffer.add_string buf "      },\n";
  Buffer.add_string buf
    (Printf.sprintf "      \"deterministic_across_engines_and_jobs\": %b\n" churn_deterministic);
  Buffer.add_string buf "    },\n";
  Buffer.add_string buf "    \"million_message_stream\": {\n";
  Buffer.add_string buf (Printf.sprintf "      \"n\": %d,\n" nbig);
  Buffer.add_string buf "      \"k\": 4,\n";
  Buffer.add_string buf
    (Printf.sprintf "      \"sources\": %d,\n"
       mil_traffic_workload.Traffic.Workload.source_count);
  Buffer.add_string buf
    (Printf.sprintf "      \"chunks_per_source\": %d,\n"
       mil_traffic_workload.Traffic.Workload.chunks_per_source);
  Buffer.add_string buf
    (Printf.sprintf "      \"wire_messages\": %d,\n" mil_traffic.Traffic.Driver.wire_messages);
  Buffer.add_string buf
    (Printf.sprintf "      \"deliveries\": %d,\n" mil_traffic.Traffic.Driver.deliveries);
  Buffer.add_string buf
    (Printf.sprintf "      \"all_covered\": %b,\n" mil_traffic.Traffic.Driver.all_covered);
  Buffer.add_string buf
    (Printf.sprintf "      \"p99_delay\": %.3f,\n" mil_traffic.Traffic.Driver.p99_delay);
  Buffer.add_string buf (Printf.sprintf "      \"wall_seconds\": %.3f,\n" mil_traffic_s);
  Buffer.add_string buf
    (Printf.sprintf "      \"wall_msgs_per_sec\": %.1f,\n" mil_traffic_mps);
  Buffer.add_string buf
    (Printf.sprintf "      \"budget_seconds\": %.1f,\n" mil_traffic_budget_s);
  Buffer.add_string buf
    (Printf.sprintf "      \"within_budget\": %b\n" (mil_traffic_s <= mil_traffic_budget_s));
  Buffer.add_string buf "    }\n";
  Buffer.add_string buf "  },\n";
  (* the self-assembly section CI gates on: the scaling sweep with the
     O(log n) verdict, the recovery table, and the audit-wide
     engine-identity bit *)
  Buffer.add_string buf "  \"assemble\": {\n";
  Buffer.add_string buf "    \"construction\": \"kdiamond\",\n";
  Buffer.add_string buf "    \"k\": 4,\n";
  Buffer.add_string buf (Printf.sprintf "    \"seed\": %d,\n" 1);
  Buffer.add_string buf (Printf.sprintf "    \"wall_seconds\": %.3f,\n" asm_s);
  Buffer.add_string buf "    \"sweep\": [\n";
  List.iteri
    (fun i (r : Assemble.Audit.report) ->
      Buffer.add_string buf "      {\n";
      Buffer.add_string buf (Printf.sprintf "        \"n\": %d,\n" r.Assemble.Audit.n);
      Buffer.add_string buf
        (Printf.sprintf "        \"convergence_rounds\": %d,\n" r.Assemble.Audit.rounds);
      Buffer.add_string buf
        (Printf.sprintf "        \"gossip_rounds\": %d,\n" r.Assemble.Audit.gossip_rounds);
      Buffer.add_string buf
        (Printf.sprintf "        \"ceil_log2_n\": %d,\n" (ceil_log2_of r.Assemble.Audit.n));
      Buffer.add_string buf
        (Printf.sprintf "        \"messages\": %d,\n" r.Assemble.Audit.messages);
      Buffer.add_string buf
        (Printf.sprintf "        \"converged\": %b,\n" r.Assemble.Audit.converged);
      Buffer.add_string buf
        (Printf.sprintf "        \"verified\": %b,\n" r.Assemble.Audit.verified);
      Buffer.add_string buf
        (Printf.sprintf "        \"matches_target\": %b\n" r.Assemble.Audit.matches_target);
      Buffer.add_string buf
        (Printf.sprintf "      }%s\n"
           (if i = List.length asm.Assemble.Audit.sweep - 1 then "" else ",")))
    asm.Assemble.Audit.sweep;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf (Printf.sprintf "    \"rounds_bound_c\": %d,\n" asm_rounds_c);
  Buffer.add_string buf
    (Printf.sprintf "    \"rounds_within_c_log2_n\": %b,\n" asm_within_bound);
  Buffer.add_string buf "    \"recovery\": [\n";
  List.iteri
    (fun i (r : Assemble.Audit.report) ->
      Buffer.add_string buf "      {\n";
      Buffer.add_string buf (Printf.sprintf "        \"n\": %d,\n" r.Assemble.Audit.n);
      Buffer.add_string buf (Printf.sprintf "        \"faults\": %d,\n" r.Assemble.Audit.faults);
      Buffer.add_string buf
        (Printf.sprintf "        \"victims\": [%s],\n"
           (String.concat ", " (List.map string_of_int r.Assemble.Audit.victims)));
      Buffer.add_string buf
        (Printf.sprintf "        \"convergence_rounds\": %d,\n" r.Assemble.Audit.rounds);
      Buffer.add_string buf
        (Printf.sprintf "        \"deaths_declared\": %d,\n" r.Assemble.Audit.deaths_declared);
      Buffer.add_string buf
        (Printf.sprintf "        \"unfreezes\": %d,\n" r.Assemble.Audit.unfreezes);
      Buffer.add_string buf
        (Printf.sprintf "        \"converged\": %b,\n" r.Assemble.Audit.converged);
      Buffer.add_string buf
        (Printf.sprintf "        \"verified\": %b\n" r.Assemble.Audit.verified);
      Buffer.add_string buf
        (Printf.sprintf "      }%s\n"
           (if i = List.length asm.Assemble.Audit.recovery - 1 then "" else ",")))
    asm.Assemble.Audit.recovery;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf (Printf.sprintf "    \"all_ok\": %b,\n" asm.Assemble.Audit.all_ok);
  Buffer.add_string buf
    (Printf.sprintf "    \"deterministic_across_engines\": %b\n" asm_engines_identical);
  Buffer.add_string buf "  },\n";
  (* two views of the same comparison against the committed PR-8
     baseline, where op names match: vs_baseline_* is new/old (< 1.05
     means no regression), speedup_vs_pr8 is old/new (CI asserts the
     async flood has not regressed) *)
  let comparable =
    List.filter_map
      (fun (name, old_ns) ->
        match List.assoc_opt name (List.rev !results) with
        | Some new_ns when old_ns > 0.0 && new_ns > 0.0 -> Some (name, old_ns, new_ns)
        | _ -> None)
      baseline
  in
  if comparable <> [] then begin
    Buffer.add_string buf "  \"speedup_vs_pr8\": {\n";
    List.iteri
      (fun i (name, old_ns, new_ns) ->
        Buffer.add_string buf
          (Printf.sprintf "    \"%s\": %.3f%s\n" (json_escape name) (old_ns /. new_ns)
             (if i = List.length comparable - 1 then "" else ",")))
      comparable;
    Buffer.add_string buf "  },\n";
    Buffer.add_string buf "  \"vs_baseline_BENCH_PR8\": {\n";
    List.iteri
      (fun i (name, old_ns, new_ns) ->
        Buffer.add_string buf
          (Printf.sprintf "    \"%s\": %.3f%s\n" (json_escape name) (new_ns /. old_ns)
             (if i = List.length comparable - 1 then "" else ",")))
      comparable;
    Buffer.add_string buf "  },\n"
  end;
  Buffer.add_string buf "  \"metrics\": ";
  Buffer.add_string buf metrics_dump;
  Buffer.add_string buf ",\n";
  Buffer.add_string buf "  \"experiments\": {\n    \"flood_sync_big\": {\n";
  Buffer.add_string buf (Printf.sprintf "      \"n\": %d,\n" nbig);
  Buffer.add_string buf (Printf.sprintf "      \"m\": %d,\n" (Graph.m gbig));
  Buffer.add_string buf (Printf.sprintf "      \"k\": %d,\n" k);
  Buffer.add_string buf (Printf.sprintf "      \"build_seconds\": %.3f,\n" build_s);
  Buffer.add_string buf (Printf.sprintf "      \"rounds\": %d,\n" r.Flood.Sync.rounds);
  Buffer.add_string buf (Printf.sprintf "      \"ceil_log2_n\": %d,\n" ceil_log2);
  Buffer.add_string buf
    (Printf.sprintf "      \"rounds_limit_2x_ceil_log2_n\": %d,\n" (2 * ceil_log2));
  Buffer.add_string buf
    (Printf.sprintf "      \"rounds_within_limit\": %b,\n" (r.Flood.Sync.rounds <= 2 * ceil_log2));
  Buffer.add_string buf (Printf.sprintf "      \"messages\": %d,\n" r.Flood.Sync.messages);
  Buffer.add_string buf
    (Printf.sprintf "      \"covers_all_alive\": %b\n" r.Flood.Sync.covers_all_alive);
  Buffer.add_string buf "    },\n    \"flood_async_million\": {\n";
  Buffer.add_string buf (Printf.sprintf "      \"n\": %d,\n" nmil);
  Buffer.add_string buf (Printf.sprintf "      \"m\": %d,\n" (Csr.m cmil));
  Buffer.add_string buf (Printf.sprintf "      \"k\": %d,\n" k);
  Buffer.add_string buf
    (Printf.sprintf "      \"big_backend\": %b,\n" (Csr.is_bigarray cmil));
  Buffer.add_string buf (Printf.sprintf "      \"build_csr_seconds\": %.3f,\n" mil_build_s);
  Buffer.add_string buf (Printf.sprintf "      \"flood_seconds\": %.3f,\n" mil_flood_s);
  Buffer.add_string buf (Printf.sprintf "      \"total_seconds\": %.3f,\n" mil_total_s);
  Buffer.add_string buf (Printf.sprintf "      \"budget_seconds\": %.1f,\n" mil_budget_s);
  Buffer.add_string buf
    (Printf.sprintf "      \"within_budget\": %b,\n" (mil_total_s <= mil_budget_s));
  Buffer.add_string buf
    (Printf.sprintf "      \"messages\": %d,\n" rmil.Flood.Flooding.messages_sent);
  Buffer.add_string buf (Printf.sprintf "      \"rounds\": %d,\n" rmil.Flood.Flooding.max_hops);
  Buffer.add_string buf
    (Printf.sprintf "      \"covers_all_alive\": %b,\n" rmil.Flood.Flooding.covers_all_alive);
  Buffer.add_string buf (Printf.sprintf "      \"heap_flood_seconds\": %.3f,\n" mil_heap_s);
  Buffer.add_string buf
    (Printf.sprintf "      \"identical_across_engines\": %b\n" mil_engines_identical);
  Buffer.add_string buf "    }\n  }\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" out
