(* Million-node smoke: build a >=2^20-node kdiamond straight into
   off-heap CSR and async-flood it, asserting a wall-clock budget.

     dune exec bench/million_smoke.exe            # default n=1048578, budget 5 s
     LHG_SMOKE_NODES=262146 LHG_SMOKE_BUDGET_S=3 dune exec bench/million_smoke.exe
     LHG_SMOKE_KIND=ktree dune exec bench/million_smoke.exe

   Topology dispatch goes through Topo.Registry's uniform csr field,
   so any registered family with a direct CSR path can be smoked.

   Exits non-zero if the flood misses a node or the budget is blown —
   the CI guard for the calendar-queue + CSR-builder hot core. *)

let getenv_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let getenv_float name default =
  match Sys.getenv_opt name with Some s -> float_of_string s | None -> default

let () =
  let n = getenv_int "LHG_SMOKE_NODES" 1_048_578 in
  let k = getenv_int "LHG_SMOKE_K" 4 in
  let kind = Option.value (Sys.getenv_opt "LHG_SMOKE_KIND") ~default:"kdiamond" in
  let budget_s = getenv_float "LHG_SMOKE_BUDGET_S" 5.0 in
  let t0 = Unix.gettimeofday () in
  let csr =
    match Topo.Registry.build_csr_graph ~big:true ~kind ~n ~k ~seed:1 () with
    | Ok c -> c
    | Error e ->
        prerr_endline ("million_smoke: " ^ e);
        exit 1
  in
  let t1 = Unix.gettimeofday () in
  let result = Flood.Flooding.run_csr_env ~env:Flood.Env.default ~csr ~source:0 () in
  let t2 = Unix.gettimeofday () in
  let build_s = t1 -. t0 and flood_s = t2 -. t1 in
  Printf.printf "million_smoke: %s n=%d k=%d m=%d big=%b\n" kind (Graph_core.Csr.n csr) k
    (Graph_core.Csr.m csr)
    (Graph_core.Csr.is_bigarray csr);
  Printf.printf "  build_csr      %.3f s\n" build_s;
  Printf.printf "  async flood    %.3f s  (%d msgs, %d rounds, covered=%b)\n" flood_s
    result.Flood.Flooding.messages_sent result.Flood.Flooding.max_hops
    result.Flood.Flooding.covers_all_alive;
  Printf.printf "  total          %.3f s  (budget %.1f s)\n" (build_s +. flood_s) budget_s;
  if not result.Flood.Flooding.covers_all_alive then begin
    prerr_endline "million_smoke: FAIL flood did not reach every node";
    exit 1
  end;
  if build_s +. flood_s > budget_s then begin
    Printf.eprintf "million_smoke: FAIL %.3f s over the %.1f s budget\n" (build_s +. flood_s)
      budget_s;
    exit 1
  end
