(* B1: bechamel micro-benchmarks — construction and verification cost.
   One Test.make per operation; results printed as ns/run estimates.

   The bfs/flood entries come in Set-vs-CSR pairs at n ∈ {1k, 16k, 131k}
   so the flat-array fast path (Graph_core.Csr + Bfs.Workspace) is
   measured against the Set.Make(Int) adjacency walk it replaced.
   LHG_BENCH_QUOTA_MS shrinks the per-test quota (CI smoke runs). *)

open Bechamel
open Toolkit
module Csr = Graph_core.Csr
module Bfs = Graph_core.Bfs

let graph_1k = lazy ((Lhg_core.Build.kdiamond_exn ~n:1026 ~k:4).Lhg_core.Build.graph)

let graph_16k = lazy ((Lhg_core.Build.kdiamond_exn ~n:16386 ~k:4).Lhg_core.Build.graph)

let graph_131k = lazy ((Lhg_core.Build.kdiamond_exn ~n:131074 ~k:4).Lhg_core.Build.graph)

let graph_256 = lazy ((Lhg_core.Build.kdiamond_exn ~n:258 ~k:4).Lhg_core.Build.graph)

let csr_1k = lazy (Csr.of_graph (Lazy.force graph_1k))

let csr_16k = lazy (Csr.of_graph (Lazy.force graph_16k))

let csr_131k = lazy (Csr.of_graph (Lazy.force graph_131k))

let workspace = Bfs.Workspace.create ()

let bfs_pair name graph csr =
  [
    Test.make ~name:("bfs set " ^ name) (Staged.stage (fun () ->
        ignore (Bfs.distances (Lazy.force graph) ~src:0)));
    Test.make ~name:("bfs csr " ^ name) (Staged.stage (fun () ->
        ignore (Bfs.csr_distances_into workspace (Lazy.force csr) ~src:0)));
  ]

let tests =
  Test.make_grouped ~name:"lhg" ~fmt:"%s %s"
    ([
       Test.make ~name:"build ktree n=1024 k=4" (Staged.stage (fun () ->
           ignore (Lhg_core.Build.ktree_exn ~n:1024 ~k:4)));
       Test.make ~name:"build kdiamond n=1026 k=4" (Staged.stage (fun () ->
           ignore (Lhg_core.Build.kdiamond_exn ~n:1026 ~k:4)));
       Test.make ~name:"build harary n=1024 k=4" (Staged.stage (fun () ->
           ignore (Harary.make ~k:4 ~n:1024)));
       Test.make ~name:"csr of_graph n=1026" (Staged.stage (fun () ->
           ignore (Csr.of_graph (Lazy.force graph_1k))));
     ]
    @ bfs_pair "n=1026" graph_1k csr_1k
    @ bfs_pair "n=16386" graph_16k csr_16k
    @ bfs_pair "n=131074" graph_131k csr_131k
    @ [
        Test.make ~name:"sync flood graph n=1026" (Staged.stage (fun () ->
            ignore (Flood.Sync.flood_env ~env:Flood.Env.default (Lazy.force graph_1k) ~source:0)));
        Test.make ~name:"sync flood csr n=1026" (Staged.stage (fun () ->
            ignore (Flood.Sync.flood_csr ~workspace (Lazy.force csr_1k) ~source:0)));
        Test.make ~name:"is_4_connected n=258" (Staged.stage (fun () ->
            ignore (Graph_core.Connectivity.is_k_vertex_connected (Lazy.force graph_256) ~k:4)));
        Test.make ~name:"event flood n=258" (Staged.stage (fun () ->
            ignore (Flood.Flooding.run_env ~env:Flood.Env.default ~graph:(Lazy.force graph_256) ~source:0 ())));
      ])

let quota_seconds =
  match Sys.getenv_opt "LHG_BENCH_QUOTA_MS" with
  | Some ms -> (try float_of_string ms /. 1000.0 with Failure _ -> 0.5)
  | None -> 0.5

let run () =
  print_endline "\n=== B1  micro-benchmarks (bechamel, monotonic clock) ===";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_seconds) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
          let value, unit_ =
            if est > 1e9 then (est /. 1e9, "s")
            else if est > 1e6 then (est /. 1e6, "ms")
            else if est > 1e3 then (est /. 1e3, "us")
            else (est, "ns")
          in
          Printf.printf "%-38s %10.2f %s/run\n" name value unit_
      | Some [] | None -> Printf.printf "%-38s (no estimate)\n" name)
    (List.sort compare rows)
