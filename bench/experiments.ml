(* The experiment harness: one function per table/figure of the
   reproduction (see EXPERIMENTS.md). Each prints the rows/series the
   paper-style plot would be drawn from. *)

module Graph = Graph_core.Graph
module Paths = Graph_core.Paths
module Degree = Graph_core.Degree
module Prng = Graph_core.Prng
module Build = Lhg_core.Build
module Existence = Lhg_core.Existence
module Regularity = Lhg_core.Regularity
module Sync = Flood.Sync
module Runner = Flood.Runner

let header title =
  Printf.printf "\n=== %s ===\n" title

let diameter_of g = match Paths.diameter g with Some d -> d | None -> -1

let lhg_graph ~n ~k = (Build.kdiamond_exn ~n ~k).Build.graph

let ktree_graph ~n ~k = (Build.ktree_exn ~n ~k).Build.graph

(* F1: diameter growth — Harary linear vs LHG logarithmic. *)
let f1 () =
  header "F1  diameter vs n (Harary linear, LHG logarithmic)";
  List.iter
    (fun k ->
      Printf.printf "k = %d\n%8s %10s %10s %10s %14s\n" k "n" "harary" "ktree" "kdiamond"
        "2*log_{k-1} n";
      List.iter
        (fun n ->
          let h = Harary.make ~k ~n in
          let kt = ktree_graph ~n ~k in
          let kd = lhg_graph ~n ~k in
          let logref =
            2.0 *. log (float_of_int n) /. log (float_of_int (k - 1))
          in
          Printf.printf "%8d %10d %10d %10d %14.1f\n" n (diameter_of h) (diameter_of kt)
            (diameter_of kd) logref)
        [ 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ])
    [ 4; 6 ];
  (* figure form, k = 4 *)
  let xs = [ 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ] in
  let harary_ys = List.map (fun n -> float_of_int (diameter_of (Harary.make ~k:4 ~n))) xs in
  let lhg_ys = List.map (fun n -> float_of_int (diameter_of (lhg_graph ~n ~k:4))) xs in
  Plot.render ~title:"F1 figure: diameter, k=4 (log-x sweep)" ~x_label:"n" ~xs
    ~series:[ ("harary", harary_ys); ("lhg kdiamond", lhg_ys) ]

(* F2: flooding latency (synchronous rounds) vs n. *)
let f2 () =
  header "F2  flooding rounds vs n (k = 4, failure-free, unit latency)";
  Printf.printf "%8s %10s %10s %10s %10s\n" "n" "harary" "kdiamond" "expander" "hypercube";
  List.iter
    (fun n ->
      let rounds g = (Sync.flood_env ~env:Flood.Env.default g ~source:0).Sync.rounds in
      let h = rounds (Harary.make ~k:4 ~n) in
      let kd = rounds (lhg_graph ~n ~k:4) in
      let ex = rounds (Topo.Expander.random_regular (Prng.create ~seed:n) ~n ~degree:4) in
      let hc =
        if Topo.Hypercube.admissible ~n ~k:4 then
          string_of_int (rounds (Topo.Hypercube.make ~dim:4))
        else "-"
      in
      Printf.printf "%8d %10d %10d %10d %10s\n" n h kd ex hc)
    [ 16; 64; 256; 1024; 4096 ]

(* T1: edge economy — both families sit at the ceil(kn/2) floor when
   regular. *)
let t1 () =
  header "T1  edge counts (minimum k-connected floor is ceil(kn/2))";
  Printf.printf "%4s %6s %10s %10s %10s %12s %14s\n" "k" "n" "floor" "harary" "ktree" "kdiamond"
    "kdiam regular?";
  List.iter
    (fun (k, n) ->
      let floor = ((k * n) + 1) / 2 in
      let h = Graph.m (Harary.make ~k ~n) in
      let kt = Graph.m (ktree_graph ~n ~k) in
      let kd_b = Build.kdiamond_exn ~n ~k in
      let kd = Graph.m kd_b.Build.graph in
      Printf.printf "%4d %6d %10d %10d %10d %12d %14b\n" k n floor h kt kd
        (Degree.is_k_regular kd_b.Build.graph ~k))
    [ (3, 6); (3, 8); (3, 20); (3, 21); (4, 14); (4, 50); (4, 51); (5, 14); (5, 62); (6, 100) ]

(* F3: delivery coverage vs number of crashed nodes. Random crashes show
   the statistical profile; the adversarial column crashes the entire
   neighbourhood of a victim, showing the k threshold exactly. *)
let f3 () =
  header "F3  coverage vs crash count (n=512, k=4, 30 trials)";
  let n = 514 and k = 4 and trials = 30 in
  let lhg = lhg_graph ~n ~k in
  let harary = Harary.make ~k ~n in
  Printf.printf "%8s | %21s | %21s | %21s | %10s\n" "crashes" "LHG cover% / all-ok%"
    "Harary cover% / ok%" "gossip cover% / ok%" "LHG advrs";
  for f = 0 to 12 do
    let a = Runner.flood_trials_env ~env:(Flood.Env.make ~seed:21 ()) ~graph:lhg ~source:0 ~crash_count:f ~trials () in
    let h = Runner.flood_trials_env ~env:(Flood.Env.make ~seed:21 ()) ~graph:harary ~source:0 ~crash_count:f ~trials () in
    let g =
      Runner.gossip_trials_env ~env:(Flood.Env.make ~seed:21 ()) ~graph:lhg ~source:0 ~fanout:k ~crash_count:f ~trials ()
    in
    (* adversarial: crash f members of the neighbourhood of victim 1 *)
    let adversarial =
      let victim = Graph.n lhg - 1 in
      let crashed =
        List.filteri (fun i _ -> i < f) (Graph.neighbors lhg victim)
      in
      let r = Flood.Flooding.run_env ~env:(Flood.Env.make ~crashed ()) ~graph:lhg ~source:0 () in
      if r.Flood.Flooding.covers_all_alive then "ok" else "PARTITION"
    in
    Printf.printf "%8d | %9.2f%% / %6.0f%% | %9.2f%% / %6.0f%% | %9.2f%% / %6.0f%% | %10s%s\n" f
      (100.0 *. a.Runner.mean_coverage)
      (100.0 *. a.Runner.all_covered_fraction)
      (100.0 *. h.Runner.mean_coverage)
      (100.0 *. h.Runner.all_covered_fraction)
      (100.0 *. g.Runner.mean_coverage)
      (100.0 *. g.Runner.all_covered_fraction)
      adversarial
      (if f = k - 1 then "   <- k-1" else "")
  done;
  print_endline "(adversarial column: crash f neighbours of one victim; partitions exactly at f = k)"

(* F4: message cost vs n — flooding's 2m-(n-1) against gossip. *)
let f4 () =
  header "F4  message cost vs n (k=4; gossip fanout 4, ttl ceil(log2 n)+4)";
  Printf.printf "%8s %12s %12s %12s %14s\n" "n" "flood" "2m-(n-1)" "gossip" "gossip/flood";
  List.iter
    (fun n ->
      let g = lhg_graph ~n ~k:4 in
      let flood_msgs = (Sync.flood_env ~env:Flood.Env.default g ~source:0).Sync.messages in
      let agg = Runner.gossip_trials_env ~env:(Flood.Env.make ~seed:33 ()) ~graph:g ~source:0 ~fanout:4 ~crash_count:0 ~trials:10 () in
      Printf.printf "%8d %12d %12d %12.0f %14.2f\n" n flood_msgs (Sync.message_bound g)
        agg.Runner.mean_messages
        (agg.Runner.mean_messages /. float_of_int flood_msgs))
    [ 32; 128; 512; 2048 ]

(* F5: latency inflation under tolerated failures. *)
let f5 () =
  header "F5  flooding latency under f < k failures (n=512, k=4, 30 trials)";
  let n = 514 and k = 4 and trials = 30 in
  let lhg = lhg_graph ~n ~k in
  let base = (Sync.flood_env ~env:Flood.Env.default lhg ~source:0).Sync.rounds in
  Printf.printf "failure-free rounds: %d\n" base;
  Printf.printf "%8s %12s %14s %12s\n" "crashes" "mean hops" "mean time" "coverage";
  for f = 0 to k - 1 do
    let a = Runner.flood_trials_env ~env:(Flood.Env.make ~seed:55 ()) ~graph:lhg ~source:0 ~crash_count:f ~trials () in
    Printf.printf "%8d %12.2f %14.2f %11.1f%%\n" f a.Runner.mean_max_hops a.Runner.mean_completion
      (100.0 *. a.Runner.mean_coverage)
  done

(* T2: existence table, plus constructive agreement. *)
let t2 () =
  header "T2  EX characteristic functions (constructively cross-checked)";
  List.iter
    (fun k ->
      let lo = 2 * k and hi = (2 * k) + 40 in
      let count f = List.length (List.filter f (List.init (hi - lo + 1) (fun i -> lo + i))) in
      let jd_count = count (fun n -> Existence.ex_jd ~n ~k ()) in
      let kt_count = count (fun n -> Existence.ex_ktree ~n ~k) in
      (* verify builders agree on the whole range *)
      let agree = ref true in
      for n = lo to hi do
        let b = match Build.ktree ~n ~k with Ok _ -> true | Error _ -> false in
        if b <> Existence.ex_ktree ~n ~k then agree := false;
        let b = match Build.jd ~n ~k () with Ok _ -> true | Error _ -> false in
        if b <> Existence.ex_jd ~n ~k () then agree := false
      done;
      Printf.printf
        "k=%d, n in [%d,%d]: JD builds %d/41, K-TREE and K-DIAMOND build 41/41 (%d); builders agree with EX: %b\n"
        k lo hi jd_count kt_count !agree)
    [ 3; 4; 5; 6 ]

(* T3: regularity table and the Theorem 7 witnesses. *)
let t3 () =
  header "T3  REG characteristic functions and Theorem 7 witnesses";
  List.iter
    (fun k ->
      let max_n = (2 * k) + 60 in
      let kt = Regularity.regular_sizes_ktree ~k ~max_n in
      let kd = Regularity.regular_sizes_kdiamond ~k ~max_n in
      let only = List.filter (fun n -> Regularity.kdiamond_only ~n ~k) kd in
      let show l = String.concat "," (List.map string_of_int l) in
      Printf.printf "k=%d\n  REG_KTREE    : %s\n  REG_KDIAMOND : %s\n  kdiamond-only: %s\n" k
        (show kt) (show kd) (show only);
      (* constructive check: every claimed-regular size builds k-regular *)
      List.iter
        (fun n ->
          let b = Build.kdiamond_exn ~n ~k in
          assert (Degree.is_k_regular b.Build.graph ~k))
        kd)
    [ 3; 4; 5 ]

(* T4: the JD gap family. *)
let t4 () =
  header "T4  Jenkins-Demers gaps filled by K-TREE (first 8 of each infinite family)";
  List.iter
    (fun k ->
      let gaps =
        List.filteri (fun i _ -> i < 8)
          (List.filter
             (fun n -> Existence.ex_ktree ~n ~k && not (Existence.ex_jd ~n ~k ()))
             (List.init 200 (fun i -> (2 * k) + i)))
      in
      Printf.printf "k=%d: %s ...\n" k (String.concat ", " (List.map string_of_int gaps)))
    [ 3; 4; 5; 6 ]

(* T5: applicability of the classic logarithmic families. *)
let t5 () =
  header "T5  admissible network sizes up to 4096 (the motivation for LHGs)";
  Printf.printf "hypercube (k=d)      : %s\n"
    (String.concat ", "
       (List.concat_map
          (fun k -> List.map string_of_int (Topo.Hypercube.admissible_sizes ~k ~max_n:4096))
          [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]));
  Printf.printf "de Bruijn base 2     : %s\n"
    (String.concat ", " (List.map string_of_int (Topo.Debruijn.admissible_sizes ~base:2 ~max_n:4096)));
  Printf.printf "butterfly            : %s\n"
    (String.concat ", " (List.map string_of_int (Topo.Butterfly.admissible_sizes ~max_n:4096)));
  Printf.printf "kautz base 2         : %s\n"
    (String.concat ", " (List.map string_of_int (Topo.Kautz.admissible_sizes ~b:2 ~max_n:4096)));
  Printf.printf "cube-connected cycles: %s\n"
    (String.concat ", " (List.map string_of_int (Topo.Ccc.admissible_sizes ~max_n:4096)));
  Printf.printf "chord (every n, but) : degree 2*floor(log2 n) ~ %d at n=1024 vs k\n"
    (2 * Topo.Chord.expected_degree ~n:1024);
  Printf.printf "LHG (K-TREE/DIAMOND) : every n >= 2k  (Theorems 2 and 5)\n"

(* F6: delivery reliability under i.i.d. failures, with Wilson 95% CIs. *)
let f6 () =
  header "F6  delivery reliability vs node-failure probability (n~200, k=4, 400 trials)";
  let n = 200 and k = 4 and trials = 400 in
  let lhg = lhg_graph ~n:(n + 2) ~k in
  let tree = Topo.Spanning_tree.bfs_tree lhg ~root:0 in
  Printf.printf "%8s | %22s | %22s | %22s\n" "p" "LHG flood [95% CI]" "tree flood [95% CI]"
    "LHG gossip f=4 [CI]";
  List.iter
    (fun p ->
      let f e =
        Printf.sprintf "%5.3f [%5.3f,%5.3f]" e.Flood.Reliability.probability
          e.Flood.Reliability.lo e.Flood.Reliability.hi
      in
      let a =
        Flood.Reliability.flood_delivery ~graph:lhg ~source:0 ~node_failure_prob:p ~trials ~seed:71 ()
      in
      let t =
        Flood.Reliability.flood_delivery ~graph:tree ~source:0 ~node_failure_prob:p ~trials
          ~seed:71 ()
      in
      let g =
        Flood.Reliability.gossip_delivery ~graph:lhg ~source:0 ~fanout:4 ~node_failure_prob:p
          ~trials:(trials / 4) ~seed:71 ()
      in
      Printf.printf "%8.3f | %22s | %22s | %22s\n" p (f a) (f t) (f g))
    [ 0.0; 0.005; 0.01; 0.02; 0.05; 0.1 ]

(* F7: spectral gaps — the mixing-time explanation of F1/F2. *)
let f7 () =
  header "F7  spectral gap 1 - lambda_2 (bigger = faster spreading)";
  Printf.printf "%8s %10s %10s %10s %12s\n" "n" "harary" "kdiamond" "expander" "chord";
  List.iter
    (fun n ->
      let gap g = Graph_core.Spectral.spectral_gap g in
      let h = gap (Harary.make ~k:4 ~n) in
      let kd = gap (lhg_graph ~n ~k:4) in
      let ex = gap (Topo.Expander.random_regular (Prng.create ~seed:n) ~n ~degree:4) in
      let ch = gap (Topo.Chord.make ~n) in
      Printf.printf "%8d %10.4f %10.4f %10.4f %12.4f\n" n h kd ex ch)
    [ 32; 128; 512 ];
  print_endline "(Harary's gap decays like 1/n^2 - the spectral reading of its linear diameter)"

(* F8: reliable broadcast under message loss — certainty restored by
   anti-entropy, and its price. *)
let f8 () =
  header "F8  reliable broadcast vs loss rate (n=200, k=4, 5 payloads, period 3)";
  let n = 200 and k = 4 in
  let g = lhg_graph ~n:(n + 2) ~k in
  let pubs =
    List.init 5 (fun i -> { Flood.Multi.origin = i * 11; inject_time = 0.0; payload_id = i })
  in
  Printf.printf "%8s | %12s | %10s %12s %12s %18s\n" "loss" "flood-only" "complete" "t-complete"
    "flood msgs" "repair@complete";
  List.iter
    (fun loss ->
      (* flood-only baseline: fraction of (node, payload) delivered *)
      let base =
        let r = Flood.Multi.run_env ~env:(Flood.Env.make ~loss_rate:loss ~seed:3 ()) ~graph:g ~publications:pubs () in
        let total =
          List.fold_left (fun acc s -> acc + s.Flood.Multi.delivered_count) 0 r.Flood.Multi.per_message
        in
        float_of_int total /. float_of_int (Graph.n g * 5)
      in
      let r =
        Flood.Reliable.run_env ~env:(Flood.Env.make ~loss_rate:loss ~seed:3 ()) ~graph:g ~publications:pubs ~anti_entropy_period:3.0 ~duration:2000.0 ()
      in
      Printf.printf "%8.2f | %11.2f%% | %10b %12s %12d %18s\n" loss (100.0 *. base)
        r.Flood.Reliable.complete
        (match r.Flood.Reliable.completion_time with
        | Some t -> Printf.sprintf "%.1f" t
        | None -> "-")
        r.Flood.Reliable.flood_messages
        (match r.Flood.Reliable.repair_messages_at_completion with
        | Some m -> string_of_int m
        | None -> "-"))
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ]


(* F9: termination detection (PIF) — the source learns completion. *)
let f9 () =
  header "F9  PIF termination detection: time until the source KNOWS (k=4)";
  Printf.printf "%8s | %10s %12s | %10s %12s | %12s\n" "n" "lhg done" "lhg detect" "har done"
    "har detect" "msgs (lhg)";
  List.iter
    (fun n ->
      let lhg = lhg_graph ~n ~k:4 in
      let h = Harary.make ~k:4 ~n in
      let rl = Flood.Pif.run_env ~env:Flood.Env.default ~graph:lhg ~source:0 () in
      let rh = Flood.Pif.run_env ~env:Flood.Env.default ~graph:h ~source:0 () in
      Printf.printf "%8d | %10.0f %12.0f | %10.0f %12.0f | %12d\n" n
        rl.Flood.Pif.last_delivery_at rl.Flood.Pif.completion_detected_at
        rh.Flood.Pif.last_delivery_at rh.Flood.Pif.completion_detected_at rl.Flood.Pif.messages)
    [ 32; 128; 512; 2048 ];
  print_endline "(detection = 2x the propagation wave; 2 messages per propagate on both)"


(* T6: structured-routing stretch vs true shortest paths. *)
let t6 () =
  header "T6  routing stretch: witness routes vs BFS shortest paths (kdiamond)";
  Printf.printf "%4s %8s | %10s %10s %10s %12s\n" "k" "n" "mean" "p95-ish" "max" "bound/diam";
  List.iter
    (fun (k, n) ->
      let b = Build.kdiamond_exn ~n ~k in
      let g = b.Build.graph in
      let rng = Prng.create ~seed:(n + k) in
      let samples = 400 in
      let stretches =
        List.init samples (fun _ ->
            let src = Prng.int rng n in
            let dst = (src + 1 + Prng.int rng (n - 1)) mod n in
            let best =
              List.fold_left
                (fun acc p -> min acc (List.length p - 1))
                max_int
                (Lhg_core.Route.all_routes b ~src ~dst)
            in
            let shortest =
              match Graph_core.Bfs.path g ~src ~dst with
              | Some p -> List.length p - 1
              | None -> max_int
            in
            float_of_int best /. float_of_int (max 1 shortest))
        |> List.sort compare
      in
      let mean = List.fold_left ( +. ) 0.0 stretches /. float_of_int samples in
      let nth i = List.nth stretches i in
      let diam = diameter_of g in
      Printf.printf "%4d %8d | %10.2f %10.2f %10.2f %12s\n" k n mean
        (nth (samples * 95 / 100))
        (nth (samples - 1))
        (Printf.sprintf "%d/%d" (Lhg_core.Route.max_route_length b) diam))
    [ (3, 50); (3, 200); (4, 200); (4, 1000); (5, 500) ];
  print_endline "(best of the k witness routes vs the true shortest path; no routing tables used)"


(* F10: delivery-time CDF — the per-round view behind F2's single number. *)
let f10 () =
  header "F10  delivery CDF: % of nodes reached by round r (n=1026, k=4)";
  let n = 1026 in
  let lhg = lhg_graph ~n ~k:4 in
  let h = Harary.make ~k:4 ~n in
  let cdf g =
    let dist = Graph_core.Bfs.distances g ~src:0 in
    fun r ->
      let reached = Array.fold_left (fun acc d -> if d >= 0 && d <= r then acc + 1 else acc) 0 dist in
      100.0 *. float_of_int reached /. float_of_int n
  in
  let lhg_cdf = cdf lhg and h_cdf = cdf h in
  Printf.printf "%8s %10s %10s\n" "round" "lhg %" "harary %";
  List.iter
    (fun r -> Printf.printf "%8d %9.1f%% %9.1f%%\n" r (lhg_cdf r) (h_cdf r))
    [ 1; 2; 4; 6; 8; 10; 12; 16; 32; 64; 128; 256 ];
  print_endline "(LHG saturates by round ~11; Harary still below 100% at round 256 = n/4)"

(* F11: receiver contention — 24 concurrent broadcasts with serialised
   message handling. Total per-node work is proportional to degree, so
   log-degree overlays saturate their hubs. *)
let f11 () =
  header "F11  24 concurrent broadcasts under receiver contention (processing delay 0.5)";
  let n = 512 in
  let pubs =
    List.init 24 (fun i -> { Flood.Multi.origin = i * 21; inject_time = 0.0; payload_id = i })
  in
  Printf.printf "%14s %8s %10s | %12s %14s %14s\n" "topology" "edges" "max-deg" "plain mean"
    "contended mean" "contended max";
  List.iter
    (fun (name, g) ->
      let mean_completion r =
        let cs = List.map (fun s -> s.Flood.Multi.completion) r.Flood.Multi.per_message in
        List.fold_left ( +. ) 0.0 cs /. float_of_int (List.length cs)
      in
      let max_completion r =
        List.fold_left (fun acc s -> Float.max acc s.Flood.Multi.completion) 0.0
          r.Flood.Multi.per_message
      in
      let plain = Flood.Multi.run_env ~env:Flood.Env.default ~graph:g ~publications:pubs () in
      let contended = Flood.Multi.run_env ~env:(Flood.Env.make ~processing_delay:0.5 ()) ~graph:g ~publications:pubs () in
      let s = Degree.stats g in
      Printf.printf "%14s %8d %10d | %12.1f %14.1f %14.1f\n" name (Graph.m g) s.Degree.max_degree
        (mean_completion plain) (mean_completion contended) (max_completion contended))
    [
      ("lhg kdiamond", lhg_graph ~n:(n + 2) ~k:4);
      ("chord", Topo.Chord.make ~n);
      ("expander d=4", Topo.Expander.random_regular (Prng.create ~seed:2) ~n ~degree:4);
    ];
  print_endline "(serialised receivers do degree x payloads work: chord's hop advantage drowns";
  print_endline " in hub queueing while the constant-degree overlays inflate only mildly)"


(* T7: how much freedom the K-TREE constraint leaves per (n,k). *)
let t7 () =
  header "T7  K-TREE witness freedom: added-leaf distributions per (n,k)";
  Printf.printf "%4s | " "k";
  for j = 0 to 8 do
    Printf.printf "%8s" (Printf.sprintf "2k+a+%d" j)
  done;
  print_newline ();
  List.iter
    (fun k ->
      (* one full level converted, then j added leaves *)
      let base = (2 * k) + (2 * k * (k - 1)) in
      Printf.printf "%4d | " k;
      for j = 0 to 8 do
        let n = base + j in
        if j <= (2 * k) - 3 then Printf.printf "%8d" (Lhg_core.Enumerate.count_ktree ~n ~k)
        else Printf.printf "%8s" "-"
      done;
      print_newline ())
    [ 3; 4; 5; 6 ];
  (* sanity: every enumerated witness verifies *)
  let bad = ref 0 in
  let _ =
    Lhg_core.Enumerate.iter_ktree ~limit:40 ~n:31 ~k:3 (fun b ->
        if not (Lhg_core.Verify.is_lhg ~check_minimality:false b.Build.graph ~k:3) then incr bad)
  in
  Printf.printf "(40 enumerated (31,3) witnesses re-verified, %d failures; columns are j offsets\n" !bad;
  print_endline " after one fully converted level - the constraint is permissive, the canonical"
  ; print_endline " builder picks just one point of a combinatorially large witness space)"

(* A1: why the breadth-first (height-balance) rule matters. *)
let a1 () =
  header "A1  ablation: breadth-first vs depth-first leaf conversion (k=4)";
  Printf.printf "%8s %14s %14s %16s\n" "n" "BFS diameter" "DFS diameter" "DFS k-connected?";
  List.iter
    (fun alpha ->
      let balanced = Lhg_core.Skeleton.make ~k:4 ~alpha in
      let skewed = Lhg_core.Skeleton.make_depth_first ~k:4 ~alpha in
      let gb, _ = Lhg_core.Realize.realize balanced in
      let gs, _ = Lhg_core.Realize.realize skewed in
      let still_connected = Graph_core.Connectivity.is_k_vertex_connected gs ~k:4 in
      Printf.printf "%8d %14d %14d %16b\n" (Graph.n gb) (diameter_of gb) (diameter_of gs)
        still_connected)
    [ 4; 16; 64; 128; 256 ];
  print_endline "(depth-first growth keeps P1-P3 but loses P4: the balance rule buys the logarithm)"

(* A2: added-leaf placement policy. *)
let a2 () =
  header "A2  ablation: added-leaf placement (k=4, alpha=5, j=5 added leaves)";
  let k = 4 and alpha = 5 and j = 5 in
  let concentrated = Lhg_core.Skeleton.make ~k ~alpha in
  let host = Lhg_core.Skeleton.last_above_leaf concentrated in
  for _ = 1 to j do
    Lhg_core.Shape.add_added_leaf concentrated ~parent:host
  done;
  let spread = Lhg_core.Skeleton.make ~k ~alpha in
  let hosts = List.rev (Lhg_core.Shape.above_leaf_nodes spread) in
  List.iteri
    (fun i _ -> Lhg_core.Shape.add_added_leaf spread ~parent:(List.nth hosts (i mod List.length hosts)))
    (List.init j Fun.id);
  List.iter
    (fun (name, shape) ->
      let g, _ = Lhg_core.Realize.realize shape in
      let s = Degree.stats g in
      Printf.printf "%-14s n=%d max_degree=%d mean=%.2f diameter=%d lhg=%b\n" name (Graph.n g)
        s.Degree.max_degree s.Degree.mean_degree (diameter_of g)
        (Lhg_core.Verify.is_lhg g ~k))
    [ ("concentrated", concentrated); ("spread", spread) ];
  print_endline "(same size, same diameter; spreading bounds the hottest node at k+1 - K-DIAMOND's point)"

(* A3: overlay reconfiguration cost under churn. *)
let a3 () =
  header "A3  overlay churn: mean rewired edges per membership change (60 events)";
  Printf.printf "%4s %6s | %10s %10s %10s %10s | %8s\n" "k" "n0" "ktree" "kdiamond" "jd" "harary"
    "jd skips";
  List.iter
    (fun (k, n0) ->
      let run family =
        let rng = Prng.create ~seed:(97 + k + n0) in
        match Overlay.Churn.run rng ~family ~k ~n0 ~steps:60 () with
        | Ok s -> (s.Overlay.Churn.mean_cost, s.Overlay.Churn.skipped)
        | Error _ -> (nan, -1)
      in
      let kt, _ = run Overlay.Membership.Ktree in
      let kd, _ = run Overlay.Membership.Kdiamond in
      let jd, jd_skip = run Overlay.Membership.Jd in
      let ha, _ = run Overlay.Membership.Harary_classic in
      Printf.printf "%4d %6d | %10.1f %10.1f %10.1f %10.1f | %8d\n" k n0 kt kd jd ha jd_skip)
    [ (3, 30); (4, 40); (4, 200); (5, 60) ];
  print_endline "(jd skips = membership events the Jenkins-Demers rule simply cannot serve:";
  print_endline " +-1 around most sizes is a gap, so JD overlays are frozen at their birth size.";
  print_endline " costs are canonical-rebuild diffs: even-k Harary only rewires near the ring seam,";
  print_endline " LHG rewiring spikes when growth crosses a leaf-conversion boundary)"


(* B2: scale smoke — construction and flooding at n = 100k. *)
let b2 () =
  header "B2  scale: LHG at n = 100,002 (k = 4)";
  let t0 = Sys.time () in
  let b = Build.kdiamond_exn ~n:100_002 ~k:4 in
  let t1 = Sys.time () in
  let g = b.Build.graph in
  Printf.printf "built: n=%d m=%d in %.3f s\n" (Graph.n g) (Graph.m g) (t1 -. t0);
  let s = Sync.flood_env ~env:Flood.Env.default g ~source:0 in
  let t2 = Sys.time () in
  Printf.printf "sync flood: %d rounds, %d messages, covers=%b (%.3f s)\n" s.Sync.rounds
    s.Sync.messages s.Sync.covers_all_alive (t2 -. t1);
  let lb = Paths.diameter_lower_bound g ~seeds:[ 0; Graph.n g / 2; Graph.n g - 1 ] in
  let t3 = Sys.time () in
  Printf.printf "diameter >= %d (3-seed bound, %.3f s); 2*log3(n) = %.1f\n" lb (t3 -. t2)
    (2.0 *. log 100_002.0 /. log 3.0);
  let route_len =
    List.length (Lhg_core.Route.via_copy b ~src:0 ~dst:(Graph.n g - 1) ~copy:1) - 1
  in
  Printf.printf "structured route 0 -> %d: %d hops (bound %d)\n" (Graph.n g - 1) route_len
    (Lhg_core.Route.max_route_length b)


(* F12: the first six-figure-n flooding experiment — only feasible on
   the CSR fast path (Set-based traversal pays O(log d) pointer chasing
   per neighbour visit at every one of the ~2m visits). *)
let f12 () =
  header "F12  flooding at n = 131,074 (k = 4): rounds vs ceil(log2 n)";
  let n = 131_074 and k = 4 in
  let t0 = Sys.time () in
  let g = lhg_graph ~n ~k in
  let t1 = Sys.time () in
  let csr = Graph_core.Csr.of_graph g in
  let t2 = Sys.time () in
  let r = Sync.flood_csr csr ~source:0 in
  let t3 = Sys.time () in
  let ceil_log2 =
    let rec go p e = if p >= n then e else go (2 * p) (e + 1) in
    go 1 0
  in
  Printf.printf "built:  n=%d m=%d in %.3f s; CSR snapshot in %.3f s\n" (Graph.n g) (Graph.m g)
    (t1 -. t0) (t2 -. t1);
  Printf.printf "flood:  %d rounds, %d messages, covers=%b (%.3f s)\n" r.Sync.rounds
    r.Sync.messages r.Sync.covers_all_alive (t3 -. t2);
  Printf.printf "bound:  ceil(log2 n) = %d, 2*ceil(log2 n) = %d -> rounds within bound: %b\n"
    ceil_log2 (2 * ceil_log2)
    (r.Sync.rounds <= 2 * ceil_log2)

(* A4: incremental joins vs canonical rebuilds. *)
let a4 () =
  header "A4  join cost: in-place incremental ops vs canonical rebuild (k=4)";
  Printf.printf "%10s | %14s %14s | %16s\n" "n range" "incremental" "rebuild diff" "ops in window";
  let k = 4 in
  let inc = Overlay.Incremental.start ~k () in
  let windows = [ (8, 50); (50, 200); (200, 800) ] in
  List.iter
    (fun (lo, hi) ->
      (* advance the incremental overlay to lo *)
      while Overlay.Incremental.n inc < lo do
        ignore (Overlay.Incremental.join inc)
      done;
      let inc_total = ref 0 and ops = ref 0 in
      while Overlay.Incremental.n inc < hi do
        let r = Overlay.Incremental.join inc in
        inc_total := !inc_total + r.Overlay.Incremental.edges_added + r.Overlay.Incremental.edges_removed;
        incr ops
      done;
      let rebuild_total = ref 0 in
      (match Overlay.Membership.create ~family:Overlay.Membership.Kdiamond ~k ~n:lo with
      | Error _ -> ()
      | Ok o ->
          while Overlay.Membership.n o < hi do
            match Overlay.Membership.join o with
            | Ok d -> rebuild_total := !rebuild_total + Overlay.Diff.cost d
            | Error _ -> ()
          done);
      Printf.printf "%4d-%-5d | %14.1f %14.1f | %16d\n" lo hi
        (float_of_int !inc_total /. float_of_int !ops)
        (float_of_int !rebuild_total /. float_of_int !ops)
        !ops)
    windows;
  print_endline "(mean edges touched per join: the proof-step operations keep churn at O(k^2)";
  print_endline " regardless of n, while canonical relabelling rebuilds grow with the graph)"

let all = [ ("f1", f1); ("f2", f2); ("t1", t1); ("f3", f3); ("f4", f4); ("f5", f5); ("f6", f6);
            ("f7", f7); ("f8", f8); ("f9", f9); ("f10", f10); ("f11", f11); ("f12", f12);
            ("t2", t2); ("t3", t3); ("t4", t4); ("t5", t5); ("t6", t6); ("t7", t7);
            ("a1", a1); ("a2", a2); ("a3", a3); ("a4", a4); ("b2", b2) ]
