module ISet = Set.Make (Int)

(* [adj] may have slack capacity beyond [n] to make vertex appends
   amortised O(1); only indices < n are live. *)
type t = { mutable adj : ISet.t array; mutable n : int; mutable m : int }

let create ~n =
  if n < 0 then invalid_arg "Graph.create: negative n";
  { adj = Array.make (max n 1) ISet.empty; n; m = 0 }

let n g = g.n

let append_vertex g =
  if g.n = Array.length g.adj then begin
    let bigger = Array.make (2 * g.n) ISet.empty in
    Array.blit g.adj 0 bigger 0 g.n;
    g.adj <- bigger
  end;
  let v = g.n in
  g.adj.(v) <- ISet.empty;
  g.n <- v + 1;
  v

let pop_vertex g =
  if g.n = 0 then invalid_arg "Graph.pop_vertex: empty graph";
  let v = g.n - 1 in
  if not (ISet.is_empty g.adj.(v)) then invalid_arg "Graph.pop_vertex: last vertex not isolated";
  g.n <- v

let m g = g.m

let check_vertex g v name =
  if v < 0 || v >= n g then
    invalid_arg (Printf.sprintf "Graph.%s: vertex %d out of range [0,%d)" name v (n g))

let add_edge g u v =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not (ISet.mem v g.adj.(u)) then begin
    g.adj.(u) <- ISet.add v g.adj.(u);
    g.adj.(v) <- ISet.add u g.adj.(v);
    g.m <- g.m + 1
  end

let remove_edge g u v =
  check_vertex g u "remove_edge";
  check_vertex g v "remove_edge";
  if ISet.mem v g.adj.(u) then begin
    g.adj.(u) <- ISet.remove v g.adj.(u);
    g.adj.(v) <- ISet.remove u g.adj.(v);
    g.m <- g.m - 1
  end

let has_edge g u v =
  check_vertex g u "has_edge";
  check_vertex g v "has_edge";
  ISet.mem v g.adj.(u)

let degree g v =
  check_vertex g v "degree";
  ISet.cardinal g.adj.(v)

let neighbors g v =
  check_vertex g v "neighbors";
  ISet.elements g.adj.(v)

let iter_neighbors g v f =
  check_vertex g v "iter_neighbors";
  ISet.iter f g.adj.(v)

let fold_neighbors g v ~init ~f =
  check_vertex g v "fold_neighbors";
  ISet.fold (fun w acc -> f acc w) g.adj.(v) init

let iter_edges g f =
  for u = 0 to g.n - 1 do
    ISet.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let of_edges ~n:nv es =
  let g = create ~n:nv in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = { adj = Array.copy g.adj; n = g.n; m = g.m }

let without_edge g u v =
  let g' = copy g in
  remove_edge g' u v;
  g'

let without_vertices g vs =
  let g' = copy g in
  List.iter
    (fun v ->
      check_vertex g' v "without_vertices";
      ISet.iter (fun w -> remove_edge g' v w) g'.adj.(v))
    vs;
  g'

let degree_sum g =
  let acc = ref 0 in
  for v = 0 to g.n - 1 do
    acc := !acc + ISet.cardinal g.adj.(v)
  done;
  !acc

exception Asymmetric

let is_symmetric g =
  try
    for u = 0 to g.n - 1 do
      ISet.iter (fun v -> if not (ISet.mem u g.adj.(v)) then raise Asymmetric) g.adj.(u)
    done;
    degree_sum g = 2 * g.m
  with Asymmetric -> false

exception Unequal

let equal g1 g2 =
  n g1 = n g2 && m g1 = m g2
  &&
  try
    for v = 0 to g1.n - 1 do
      if not (ISet.equal g1.adj.(v) g2.adj.(v)) then raise Unequal
    done;
    true
  with Unequal -> false

let pp fmt g = Format.fprintf fmt "graph(n=%d, m=%d)" (n g) (m g)
