type t = { n : int; m : int; offsets : int array; neighbors : int array }

let of_graph g =
  let n = Graph.n g in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + Graph.degree g v
  done;
  let neighbors = Array.make offsets.(n) 0 in
  let pos = ref 0 in
  for v = 0 to n - 1 do
    (* ISet iteration is ascending, so each row comes out sorted. *)
    Graph.iter_neighbors g v (fun w ->
        neighbors.(!pos) <- w;
        incr pos)
  done;
  { n; m = Graph.m g; offsets; neighbors }

let n t = t.n

let m t = t.m

let check_vertex t v name =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Csr.%s: vertex %d out of range [0,%d)" name v t.n)

let degree t v =
  check_vertex t v "degree";
  t.offsets.(v + 1) - t.offsets.(v)

let neighbors t v =
  check_vertex t v "neighbors";
  let acc = ref [] in
  for i = t.offsets.(v + 1) - 1 downto t.offsets.(v) do
    acc := t.neighbors.(i) :: !acc
  done;
  !acc

let iter_neighbors t v f =
  check_vertex t v "iter_neighbors";
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.neighbors.(i)
  done

let fold_neighbors t v ~init ~f =
  check_vertex t v "fold_neighbors";
  let acc = ref init in
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    acc := f !acc t.neighbors.(i)
  done;
  !acc

let mem_edge t u v =
  check_vertex t u "mem_edge";
  check_vertex t v "mem_edge";
  let lo = ref t.offsets.(u) and hi = ref t.offsets.(u + 1) in
  (* invariant: the row slot holding v, if any, is in [lo, hi) *)
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    let w = t.neighbors.(mid) in
    if w = v then begin
      lo := mid;
      hi := mid
    end
    else if w < v then lo := mid + 1
    else hi := mid
  done;
  !lo < t.offsets.(u + 1) && t.neighbors.(!lo) = v

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
      let v = t.neighbors.(i) in
      if u < v then f u v
    done
  done

let offsets t = t.offsets

let neighbor_array t = t.neighbors

let degree_sum t = t.offsets.(t.n)
