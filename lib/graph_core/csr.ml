type bigints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type storage =
  | Ints of { offsets : int array; neighbors : int array }
  | Big of { offsets : bigints; neighbors : bigints }

type t = { n : int; m : int; storage : storage }

let big_of_array (a : int array) : bigints =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i x -> Bigarray.Array1.unsafe_set b i x) a;
  b

let of_graph ?(big = false) g =
  let n = Graph.n g in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + Graph.degree g v
  done;
  let storage =
    if big then begin
      let neighbors = Bigarray.Array1.create Bigarray.int Bigarray.c_layout offsets.(n) in
      let pos = ref 0 in
      for v = 0 to n - 1 do
        (* ISet iteration is ascending, so each row comes out sorted. *)
        Graph.iter_neighbors g v (fun w ->
            Bigarray.Array1.unsafe_set neighbors !pos w;
            incr pos)
      done;
      Big { offsets = big_of_array offsets; neighbors }
    end
    else begin
      let neighbors = Array.make offsets.(n) 0 in
      let pos = ref 0 in
      for v = 0 to n - 1 do
        Graph.iter_neighbors g v (fun w ->
            neighbors.(!pos) <- w;
            incr pos)
      done;
      Ints { offsets; neighbors }
    end
  in
  { n; m = Graph.m g; storage }

let n t = t.n

let m t = t.m

let storage t = t.storage

let is_bigarray t = match t.storage with Big _ -> true | Ints _ -> false

let check_vertex t v name =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Csr.%s: vertex %d out of range [0,%d)" name v t.n)

let degree t v =
  check_vertex t v "degree";
  match t.storage with
  | Ints { offsets; _ } -> offsets.(v + 1) - offsets.(v)
  | Big { offsets; _ } ->
      Bigarray.Array1.unsafe_get offsets (v + 1) - Bigarray.Array1.unsafe_get offsets v

let neighbors t v =
  check_vertex t v "neighbors";
  match t.storage with
  | Ints { offsets; neighbors } ->
      let acc = ref [] in
      for i = offsets.(v + 1) - 1 downto offsets.(v) do
        acc := neighbors.(i) :: !acc
      done;
      !acc
  | Big { offsets; neighbors } ->
      let acc = ref [] in
      for i = Bigarray.Array1.unsafe_get offsets (v + 1) - 1
            downto Bigarray.Array1.unsafe_get offsets v do
        acc := Bigarray.Array1.unsafe_get neighbors i :: !acc
      done;
      !acc

let iter_neighbors t v f =
  check_vertex t v "iter_neighbors";
  match t.storage with
  | Ints { offsets; neighbors } ->
      for i = offsets.(v) to offsets.(v + 1) - 1 do
        f neighbors.(i)
      done
  | Big { offsets; neighbors } ->
      for i = Bigarray.Array1.unsafe_get offsets v
            to Bigarray.Array1.unsafe_get offsets (v + 1) - 1 do
        f (Bigarray.Array1.unsafe_get neighbors i)
      done

let fold_neighbors t v ~init ~f =
  check_vertex t v "fold_neighbors";
  let acc = ref init in
  iter_neighbors t v (fun w -> acc := f !acc w);
  !acc

(* binary search for [v] inside row [u]; the row is sorted ascending *)
let mem_edge t u v =
  check_vertex t u "mem_edge";
  check_vertex t v "mem_edge";
  match t.storage with
  | Ints { offsets; neighbors } ->
      let lo = ref offsets.(u) and hi = ref offsets.(u + 1) in
      (* invariant: the row slot holding v, if any, is in [lo, hi) *)
      while !hi - !lo > 0 do
        let mid = (!lo + !hi) / 2 in
        let w = neighbors.(mid) in
        if w = v then begin
          lo := mid;
          hi := mid
        end
        else if w < v then lo := mid + 1
        else hi := mid
      done;
      !lo < offsets.(u + 1) && neighbors.(!lo) = v
  | Big { offsets; neighbors } ->
      let row_end = Bigarray.Array1.unsafe_get offsets (u + 1) in
      let lo = ref (Bigarray.Array1.unsafe_get offsets u) and hi = ref row_end in
      while !hi - !lo > 0 do
        let mid = (!lo + !hi) / 2 in
        let w = Bigarray.Array1.unsafe_get neighbors mid in
        if w = v then begin
          lo := mid;
          hi := mid
        end
        else if w < v then lo := mid + 1
        else hi := mid
      done;
      !lo < row_end && Bigarray.Array1.unsafe_get neighbors !lo = v

(* same binary search as [mem_edge], but returning the slot index of
   the directed edge (u,v) inside the neighbor array — the natural
   dense key for per-directed-link state (capacities, queues) *)
let edge_index t u v =
  check_vertex t u "edge_index";
  check_vertex t v "edge_index";
  match t.storage with
  | Ints { offsets; neighbors } ->
      let row_end = offsets.(u + 1) in
      let lo = ref offsets.(u) and hi = ref row_end in
      while !hi - !lo > 0 do
        let mid = (!lo + !hi) / 2 in
        let w = neighbors.(mid) in
        if w = v then begin
          lo := mid;
          hi := mid
        end
        else if w < v then lo := mid + 1
        else hi := mid
      done;
      if !lo < row_end && neighbors.(!lo) = v then !lo else -1
  | Big { offsets; neighbors } ->
      let row_end = Bigarray.Array1.unsafe_get offsets (u + 1) in
      let lo = ref (Bigarray.Array1.unsafe_get offsets u) and hi = ref row_end in
      while !hi - !lo > 0 do
        let mid = (!lo + !hi) / 2 in
        let w = Bigarray.Array1.unsafe_get neighbors mid in
        if w = v then begin
          lo := mid;
          hi := mid
        end
        else if w < v then lo := mid + 1
        else hi := mid
      done;
      if !lo < row_end && Bigarray.Array1.unsafe_get neighbors !lo = v then !lo else -1

let iter_edges t f =
  match t.storage with
  | Ints { offsets; neighbors } ->
      for u = 0 to t.n - 1 do
        for i = offsets.(u) to offsets.(u + 1) - 1 do
          let v = neighbors.(i) in
          if u < v then f u v
        done
      done
  | Big { offsets; neighbors } ->
      for u = 0 to t.n - 1 do
        for i = Bigarray.Array1.unsafe_get offsets u
              to Bigarray.Array1.unsafe_get offsets (u + 1) - 1 do
          let v = Bigarray.Array1.unsafe_get neighbors i in
          if u < v then f u v
        done
      done

let offsets t =
  match t.storage with
  | Ints { offsets; _ } -> offsets
  | Big _ -> invalid_arg "Csr.offsets: Bigarray-backed snapshot (match on storage instead)"

let neighbor_array t =
  match t.storage with
  | Ints { neighbors; _ } -> neighbors
  | Big _ ->
      invalid_arg "Csr.neighbor_array: Bigarray-backed snapshot (match on storage instead)"

let degree_sum t =
  match t.storage with
  | Ints { offsets; _ } -> offsets.(t.n)
  | Big { offsets; _ } -> Bigarray.Array1.unsafe_get offsets t.n

(* -- direct construction ------------------------------------------------ *)

module Builder = struct
  type csr = t

  type store = SI of int array | SB of bigints

  type t = {
    bn : int;
    big : bool;
    deg : int array;  (** degree counts, re-used as fill cursors after [ready] *)
    offs : int array;  (** row offsets, length n+1, valid after [ready] *)
    mutable store : store option;
    mutable counting : bool;
  }

  let create ?(big = false) ~n () =
    if n < 0 then invalid_arg "Csr.Builder.create: negative n";
    { bn = n; big; deg = Array.make n 0; offs = Array.make (n + 1) 0;
      store = None; counting = true }

  let check b u v name =
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg (Printf.sprintf "Csr.Builder.%s: endpoint out of range [0,%d)" name b.bn);
    if u = v then invalid_arg (Printf.sprintf "Csr.Builder.%s: self-loop" name)

  let count_edge b u v =
    if not b.counting then invalid_arg "Csr.Builder.count_edge: already in the fill phase";
    check b u v "count_edge";
    b.deg.(u) <- b.deg.(u) + 1;
    b.deg.(v) <- b.deg.(v) + 1

  let ready b =
    if not b.counting then invalid_arg "Csr.Builder.ready: already called";
    b.counting <- false;
    for v = 0 to b.bn - 1 do
      b.offs.(v + 1) <- b.offs.(v) + b.deg.(v)
    done;
    let total = b.offs.(b.bn) in
    b.store <-
      Some
        (if b.big then SB (Bigarray.Array1.create Bigarray.int Bigarray.c_layout total)
         else SI (Array.make total 0));
    (* degrees become the per-row fill cursors *)
    Array.blit b.offs 0 b.deg 0 b.bn

  let place b u v =
    let p = b.deg.(u) in
    b.deg.(u) <- p + 1;
    match b.store with
    | Some (SI a) -> a.(p) <- v
    | Some (SB a) -> Bigarray.Array1.set a p v
    | None -> assert false

  let add_edge b u v =
    if b.counting then invalid_arg "Csr.Builder.add_edge: call ready first";
    check b u v "add_edge";
    place b u v;
    place b v u

  (* rows are short for the graphs built this way (degree ~ 2k), so a
     per-row insertion sort beats setting up anything fancier *)
  let sort_row_ints (a : int array) lo hi =
    for i = lo + 1 to hi - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done

  let sort_row_big (a : bigints) lo hi =
    for i = lo + 1 to hi - 1 do
      let x = Bigarray.Array1.unsafe_get a i in
      let j = ref (i - 1) in
      while !j >= lo && Bigarray.Array1.unsafe_get a !j > x do
        Bigarray.Array1.unsafe_set a (!j + 1) (Bigarray.Array1.unsafe_get a !j);
        decr j
      done;
      Bigarray.Array1.unsafe_set a (!j + 1) x
    done

  let finish b =
    if b.counting then invalid_arg "Csr.Builder.finish: call ready first";
    for v = 0 to b.bn - 1 do
      if b.deg.(v) <> b.offs.(v + 1) then
        invalid_arg "Csr.Builder.finish: add_edge calls do not match count_edge"
    done;
    let total = b.offs.(b.bn) in
    let dup = ref false in
    let storage =
      match b.store with
      | Some (SI a) ->
          for v = 0 to b.bn - 1 do
            sort_row_ints a b.offs.(v) b.offs.(v + 1);
            for i = b.offs.(v) + 1 to b.offs.(v + 1) - 1 do
              if a.(i) = a.(i - 1) then dup := true
            done
          done;
          Ints { offsets = b.offs; neighbors = a }
      | Some (SB a) ->
          for v = 0 to b.bn - 1 do
            sort_row_big a b.offs.(v) b.offs.(v + 1);
            for i = b.offs.(v) + 1 to b.offs.(v + 1) - 1 do
              if Bigarray.Array1.unsafe_get a i = Bigarray.Array1.unsafe_get a (i - 1) then
                dup := true
            done
          done;
          Big { offsets = big_of_array b.offs; neighbors = a }
      | None -> assert false
    in
    if !dup then invalid_arg "Csr.Builder.finish: duplicate edge";
    { n = b.bn; m = total / 2; storage }
end
