(* Edge-disjoint spanning-tree packing over a frozen CSR snapshot.

   Phase 1 is greedy: the trees BFS outward from the source in
   lockstep — source edges dealt round-robin, one frontier layer per
   tree per round, claims gated by a degree reservation that keeps one
   entry edge free per tree still to come at every vertex. On the
   structured LHG families this seeds every tree with a short, wide
   core but stalls partway (the reservation is a heuristic, not a
   matroid rank bound). Phase 2 finishes exactly: a matroid-union
   augmenting search over the exchange graph of edges (insert an
   unowned edge into some forest, cascading swaps along a shortest
   alternating path), which reaches the Nash-Williams/Tutte optimum —
   so whenever ⌊k/2⌋ disjoint spanning trees exist, they are found. *)

type t = {
  source : int;
  count : int;
  n : int;
  parent : int array;  (** [count * n]; [parent.(t*n + v)], -1 at the source *)
  depth : int array;  (** [count * n]; hops from the source in tree [t] *)
  child_off : int array;  (** [count * (n+1)]; children of [v] in tree [t] *)
  child : int array;  (** [count * (n-1)] child vertices, ascending per node *)
  child_eidx : int array;  (** CSR slot of (node → child), parallel to [child] *)
  max_depths : int array;  (** per tree *)
}

let source t = t.source

let count t = t.count

let n t = t.n

let parent t ~tree v = t.parent.((tree * t.n) + v)

let depth t ~tree v = t.depth.((tree * t.n) + v)

let max_depth t ~tree = t.max_depths.(tree)

let iter_children t ~tree ~node f =
  let base = tree * (t.n + 1) in
  for i = t.child_off.(base + node) to t.child_off.(base + node + 1) - 1 do
    f ~child:t.child.(i) ~eidx:t.child_eidx.(i)
  done

let edges t ~tree =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    let p = t.parent.((tree * t.n) + v) in
    if p >= 0 then acc := (p, v) :: !acc
  done;
  !acc

let min_degree csr =
  let n = Csr.n csr in
  if n = 0 then 0
  else begin
    let md = ref max_int in
    for v = 0 to n - 1 do
      let d = Csr.degree csr v in
      if d < !md then md := d
    done;
    !md
  end

let default_count csr = max 1 (min_degree csr / 2)

(* storage-agnostic row access; packing is a setup cost, not a per-send
   hot path, so the closure indirection is fine *)
let row_accessors csr =
  match Csr.storage csr with
  | Csr.Ints { offsets; neighbors } ->
      ((fun v -> offsets.(v)), fun i -> neighbors.(i))
  | Csr.Big { offsets; neighbors } ->
      ( (fun v -> Bigarray.Array1.get offsets v),
        fun i -> Bigarray.Array1.get neighbors i )

(* One packing attempt at a fixed tree count; [None] when the union of
   forests cannot reach count spanning trees (then the caller retries
   with one tree fewer). [eu]/[ev] are the undirected edge endpoints,
   [und_of_slot] maps each directed CSR slot to its undirected edge id. *)
let attempt csr ~source ~count ~eu ~ev ~und_of_slot =
  let n = Csr.n csr in
  let m = Array.length eu in
  let lo, nbr = row_accessors csr in
  let owner = Array.make m (-1) in
  let owned = ref 0 in
  let target = count * (n - 1) in
  (* Phase 1: BFS-layered greedy packing. The trees grow in lockstep —
     each round every tree expands its whole frontier by one layer over
     still-unowned edges — so no tree hogs the short edges: depths stay
     near count × eccentricity instead of one shallow tree starving the
     rest into long detours. A tree whose frontier empties before
     spanning just stalls; phase 2 repairs it exactly. *)
  let stamp = Array.make n (-1) in
  let queue = Array.make n 0 in
  let visited = Array.make (count * n) false in
  let frontier = Array.init count (fun _ -> Array.make n 0) in
  let fsize = Array.make count 0 in
  let next = Array.make n 0 in
  (* Degree reservation: [entered.(v)] trees have reached v so far and
     [free_deg.(v)] of its edges are unowned. A claim must leave every
     endpoint at least [count - entered] free edges — one entry path
     per tree still to come — or a wave would capture a whole low-degree
     star (the hub pattern in kdiamond) and cut the other trees off. *)
  let free_deg = Array.init n (fun v -> lo (v + 1) - lo v) in
  let entered = Array.make n 0 in
  entered.(source) <- count;
  for t = 0 to count - 1 do
    visited.((t * n) + source) <- true
  done;
  let claim_ok u v =
    free_deg.(u) - 1 >= count - entered.(u) && free_deg.(v) - 1 >= count - (entered.(v) + 1)
  in
  let do_claim t e u v =
    owner.(e) <- t;
    incr owned;
    free_deg.(u) <- free_deg.(u) - 1;
    free_deg.(v) <- free_deg.(v) - 1;
    entered.(v) <- entered.(v) + 1;
    visited.((t * n) + v) <- true;
    frontier.(t).(fsize.(t)) <- v;
    fsize.(t) <- fsize.(t) + 1
  in
  (* the source's edges are the bottleneck every tree must pass
     through: deal them out round-robin before the waves start, or the
     first tree's layer-1 sweep would claim them all and starve the
     rest at birth *)
  let deal = ref 0 in
  for i = lo source to lo (source + 1) - 1 do
    let v = nbr i in
    let e = und_of_slot.(i) in
    if owner.(e) < 0 && claim_ok source v then begin
      let t = !deal mod count in
      incr deal;
      do_claim t e source v
    end
  done;
  let progress = ref true in
  while !progress do
    progress := false;
    for t = 0 to count - 1 do
      let base = t * n in
      let flen = fsize.(t) in
      if flen > 0 then begin
        Array.blit frontier.(t) 0 next 0 flen;
        fsize.(t) <- 0;
        for fi = 0 to flen - 1 do
          let u = next.(fi) in
          for i = lo u to lo (u + 1) - 1 do
            let v = nbr i in
            let e = und_of_slot.(i) in
            if owner.(e) < 0 && (not visited.(base + v)) && claim_ok u v then do_claim t e u v
          done
        done;
        if fsize.(t) > 0 then progress := true
      end
    done
  done;
  (* phase 2: matroid-union augmentation until every forest spans.
     Scratch for the per-augmentation forest structures: *)
  let comp = Array.make (count * n) (-1) in
  let fparent = Array.make (count * n) (-1) in
  let fpedge = Array.make (count * n) (-1) in
  let fdepth = Array.make (count * n) 0 in
  let adj_off = Array.make ((count * n) + 1) 0 in
  let adj_v = Array.make (2 * max 1 target) 0 in
  let adj_e = Array.make (2 * max 1 target) 0 in
  let cursor = Array.make (count * n) 0 in
  let rebuild_forests () =
    Array.fill adj_off 0 (Array.length adj_off) 0;
    for e = 0 to m - 1 do
      let o = owner.(e) in
      if o >= 0 then begin
        let bu = (o * n) + eu.(e) and bv = (o * n) + ev.(e) in
        adj_off.(bu + 1) <- adj_off.(bu + 1) + 1;
        adj_off.(bv + 1) <- adj_off.(bv + 1) + 1
      end
    done;
    for i = 1 to count * n do
      adj_off.(i) <- adj_off.(i) + adj_off.(i - 1)
    done;
    Array.blit adj_off 0 cursor 0 (count * n);
    for e = 0 to m - 1 do
      let o = owner.(e) in
      if o >= 0 then begin
        let bu = (o * n) + eu.(e) and bv = (o * n) + ev.(e) in
        adj_v.(cursor.(bu)) <- ev.(e);
        adj_e.(cursor.(bu)) <- e;
        cursor.(bu) <- cursor.(bu) + 1;
        adj_v.(cursor.(bv)) <- eu.(e);
        adj_e.(cursor.(bv)) <- e;
        cursor.(bv) <- cursor.(bv) + 1
      end
    done;
    Array.fill comp 0 (count * n) (-1);
    for t = 0 to count - 1 do
      let base = t * n in
      for root = 0 to n - 1 do
        if comp.(base + root) < 0 then begin
          comp.(base + root) <- root;
          fparent.(base + root) <- -1;
          fpedge.(base + root) <- -1;
          fdepth.(base + root) <- 0;
          let head = ref 0 and tail = ref 0 in
          queue.(!tail) <- root;
          incr tail;
          while !head < !tail do
            let u = queue.(!head) in
            incr head;
            for i = adj_off.(base + u) to adj_off.(base + u + 1) - 1 do
              let v = adj_v.(i) in
              if comp.(base + v) < 0 then begin
                comp.(base + v) <- root;
                fparent.(base + v) <- u;
                fpedge.(base + v) <- adj_e.(i);
                fdepth.(base + v) <- fdepth.(base + u) + 1;
                queue.(!tail) <- v;
                incr tail
              end
            done
          done
        end
      done
    done
  in
  (* visit every forest-[t] edge on the path between u and v (both in
     the same component, so the tree path exists) *)
  let path_edges t u v f =
    let base = t * n in
    let a = ref u and b = ref v in
    while !a <> !b do
      if fdepth.(base + !a) >= fdepth.(base + !b) then begin
        f fpedge.(base + !a);
        a := fparent.(base + !a)
      end
      else begin
        f fpedge.(base + !b);
        b := fparent.(base + !b)
      end
    done
  in
  let pred = Array.make m (-1) in
  let seen = Array.make m false in
  let equeue = Array.make m 0 in
  let augment () =
    rebuild_forests ();
    Array.fill seen 0 m false;
    let head = ref 0 and tail = ref 0 in
    for e = 0 to m - 1 do
      if owner.(e) < 0 then begin
        seen.(e) <- true;
        pred.(e) <- -1;
        equeue.(!tail) <- e;
        incr tail
      end
    done;
    let goal = ref (-1) and goal_tree = ref (-1) in
    while !head < !tail && !goal < 0 do
      let e = equeue.(!head) in
      incr head;
      let u = eu.(e) and v = ev.(e) in
      let t = ref 0 in
      while !t < count && !goal < 0 do
        let i = !t in
        if i <> owner.(e) then begin
          if comp.((i * n) + u) <> comp.((i * n) + v) then begin
            goal := e;
            goal_tree := i
          end
          else
            path_edges i u v (fun f ->
                if not seen.(f) then begin
                  seen.(f) <- true;
                  pred.(f) <- e;
                  equeue.(!tail) <- f;
                  incr tail
                end)
        end;
        incr t
      done
    done;
    if !goal < 0 then false
    else begin
      (* cascade the swaps back along the shortest alternating path *)
      let cur = ref !goal and give = ref !goal_tree in
      let continue = ref true in
      while !continue do
        let old = owner.(!cur) in
        owner.(!cur) <- !give;
        if old < 0 then continue := false
        else begin
          give := old;
          cur := pred.(!cur)
        end
      done;
      incr owned;
      true
    end
  in
  let feasible = ref true in
  while !feasible && !owned < target do
    if not (augment ()) then feasible := false
  done;
  if not !feasible then None
  else begin
    (* orient each spanning forest from the source; a forest with n-1
       edges that reaches every vertex from the source is the spanning
       tree we promised — anything else means the packing failed *)
    rebuild_forests ();
    let parent = Array.make (count * n) (-1) in
    let depth = Array.make (count * n) 0 in
    let child_off = Array.make (count * (n + 1)) 0 in
    let child = Array.make (max 1 target) 0 in
    let child_eidx = Array.make (max 1 target) 0 in
    let max_depths = Array.make count 0 in
    let ok = ref true in
    for t = 0 to count - 1 do
      if !ok then begin
        let base = t * n in
        let reached = ref 1 in
        Array.fill stamp 0 n (-1);
        stamp.(source) <- t + count;
        let head = ref 0 and tail = ref 0 in
        queue.(!tail) <- source;
        incr tail;
        parent.(base + source) <- -1;
        depth.(base + source) <- 0;
        let maxd = ref 0 in
        while !head < !tail do
          let u = queue.(!head) in
          incr head;
          for i = adj_off.(base + u) to adj_off.(base + u + 1) - 1 do
            let v = adj_v.(i) in
            if stamp.(v) <> t + count then begin
              stamp.(v) <- t + count;
              parent.(base + v) <- u;
              depth.(base + v) <- depth.(base + u) + 1;
              if depth.(base + v) > !maxd then maxd := depth.(base + v);
              incr reached;
              queue.(!tail) <- v;
              incr tail
            end
          done
        done;
        max_depths.(t) <- !maxd;
        if !reached <> n then ok := false
      end
    done;
    if not !ok then None
    else begin
      (* children grouped per node, filled in ascending child order *)
      for t = 0 to count - 1 do
        let obase = t * (n + 1) in
        for v = 0 to n - 1 do
          let p = parent.((t * n) + v) in
          if p >= 0 then child_off.(obase + p + 1) <- child_off.(obase + p + 1) + 1
        done;
        child_off.(obase) <- t * (n - 1);
        for v = 1 to n do
          child_off.(obase + v) <- child_off.(obase + v) + child_off.(obase + v - 1)
        done
      done;
      let fill = Array.copy child_off in
      for t = 0 to count - 1 do
        let obase = t * (n + 1) in
        for v = 0 to n - 1 do
          let p = parent.((t * n) + v) in
          if p >= 0 then begin
            let pos = fill.(obase + p) in
            child.(pos) <- v;
            child_eidx.(pos) <- Csr.edge_index csr p v;
            fill.(obase + p) <- pos + 1
          end
        done
      done;
      Some { source; count; n; parent; depth; child_off; child; child_eidx; max_depths }
    end
  end

let pack ?count csr ~source =
  let n = Csr.n csr in
  if n = 0 then invalid_arg "Tree_pack.pack: empty graph";
  if source < 0 || source >= n then invalid_arg "Tree_pack.pack: source out of range";
  let requested = match count with Some c -> c | None -> default_count csr in
  if requested < 1 then invalid_arg "Tree_pack.pack: count must be >= 1";
  let m = Csr.m csr in
  let eu = Array.make (max 1 m) 0 and ev = Array.make (max 1 m) 0 in
  let i = ref 0 in
  Csr.iter_edges csr (fun u v ->
      eu.(!i) <- u;
      ev.(!i) <- v;
      incr i);
  let eu = Array.sub eu 0 m and ev = Array.sub ev 0 m in
  let und_of_slot = Array.make (Csr.degree_sum csr) 0 in
  for e = 0 to m - 1 do
    und_of_slot.(Csr.edge_index csr eu.(e) ev.(e)) <- e;
    und_of_slot.(Csr.edge_index csr ev.(e) eu.(e)) <- e
  done;
  let rec go c =
    match attempt csr ~source ~count:c ~eu ~ev ~und_of_slot with
    | Some t -> t
    | None ->
        if c <= 1 then invalid_arg "Tree_pack.pack: graph is not connected"
        else go (c - 1)
  in
  go requested

let pack_all ?pool ?count csr ~sources =
  let srcs = Array.of_list sources in
  let len = Array.length srcs in
  let out = Array.make len None in
  let work i = out.(i) <- Some (pack ?count csr ~source:srcs.(i)) in
  (match pool with
  | Some p when len > 1 -> Par.Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:len (fun ~worker:_ i -> work i)
  | _ ->
      for i = 0 to len - 1 do
        work i
      done);
  Array.map
    (function Some t -> t | None -> assert false (* parallel_for covered every index *))
    out

module Cache = struct
  type pack = t

  type nonrec t = { mutable csr : Csr.t option; tbl : (int * int, pack) Hashtbl.t }

  let create () = { csr = None; tbl = Hashtbl.create 16 }

  let reset_for c csr =
    match c.csr with
    | Some prev when prev == csr -> ()
    | _ ->
        Hashtbl.reset c.tbl;
        c.csr <- Some csr

  let get c ?count csr ~source =
    reset_for c csr;
    let cnt = match count with Some k -> k | None -> default_count csr in
    match Hashtbl.find_opt c.tbl (source, cnt) with
    | Some p -> p
    | None ->
        let p = pack ~count:cnt csr ~source in
        Hashtbl.add c.tbl (source, cnt) p;
        p

  let get_all ?pool c ?count csr ~sources =
    reset_for c csr;
    let cnt = match count with Some k -> k | None -> default_count csr in
    let missing =
      List.filter (fun s -> not (Hashtbl.mem c.tbl (s, cnt))) (List.sort_uniq compare sources)
    in
    if missing <> [] then begin
      let packed = pack_all ?pool ~count:cnt csr ~sources:missing in
      List.iteri (fun i s -> Hashtbl.add c.tbl (s, cnt) packed.(i)) missing
    end;
    Array.of_list (List.map (fun s -> Hashtbl.find c.tbl (s, cnt)) sources)
end
