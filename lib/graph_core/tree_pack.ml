(* Edge-disjoint spanning-tree packing over a frozen CSR snapshot.

   Phase 1 is greedy: the trees BFS outward from the source in
   lockstep — source edges dealt round-robin, one frontier layer per
   tree per round, claims gated by a degree reservation that keeps one
   entry edge free per tree still to come at every vertex. On the
   structured LHG families this seeds every tree with a short, wide
   core but stalls partway (the reservation is a heuristic, not a
   matroid rank bound). Phase 2 finishes exactly: a matroid-union
   augmenting search over the exchange graph of edges (insert an
   unowned edge into some forest, cascading swaps along a shortest
   alternating path), which reaches the Nash-Williams/Tutte optimum —
   so whenever ⌊k/2⌋ disjoint spanning trees exist, they are found.

   Packing can be masked: an optional membership mask restricts the
   span to a vertex subset and an optional usability predicate vetoes
   individual edges, so the same CSR snapshot (e.g. the union topology
   of a whole churn trace) hosts packs for every epoch's live
   subgraph. [patch] re-stripes an existing pack after a mask change
   without starting the search over: it drops the invalidated tree
   edges, greedily reconnects each tree's components through
   still-unowned usable edges, and when greedy stalls finishes with
   the same augmenting search seeded from the surviving assignment —
   one augmenting path per missing edge, so [None] (caller re-packs,
   possibly backing the count off) only means the count is no longer
   feasible under the new masks. *)

type t = {
  source : int;
  count : int;
  n : int;
  members : int;  (** vertices each tree spans ([n] for an unmasked pack) *)
  parent : int array;  (** [count * n]; [parent.(t*n + v)], -1 at the source and off-mask *)
  depth : int array;  (** [count * n]; hops from the source in tree [t] *)
  child_off : int array;  (** [count * (n+1)]; children of [v] in tree [t] *)
  child : int array;  (** [count * (members-1)] child vertices, ascending per node *)
  child_eidx : int array;  (** CSR slot of (node → child), parallel to [child] *)
  max_depths : int array;  (** per tree *)
}

let source t = t.source

let count t = t.count

let n t = t.n

let members t = t.members

let parent t ~tree v = t.parent.((tree * t.n) + v)

let depth t ~tree v = t.depth.((tree * t.n) + v)

let max_depth t ~tree = t.max_depths.(tree)

let iter_children t ~tree ~node f =
  let base = tree * (t.n + 1) in
  for i = t.child_off.(base + node) to t.child_off.(base + node + 1) - 1 do
    f ~child:t.child.(i) ~eidx:t.child_eidx.(i)
  done

let edges t ~tree =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    let p = t.parent.((tree * t.n) + v) in
    if p >= 0 then acc := (p, v) :: !acc
  done;
  !acc

let min_degree csr =
  let n = Csr.n csr in
  if n = 0 then 0
  else begin
    let md = ref max_int in
    for v = 0 to n - 1 do
      let d = Csr.degree csr v in
      if d < !md then md := d
    done;
    !md
  end

let default_count csr = max 1 (min_degree csr / 2)

(* storage-agnostic row access; packing is a setup cost, not a per-send
   hot path, so the closure indirection is fine *)
let row_accessors csr =
  match Csr.storage csr with
  | Csr.Ints { offsets; neighbors } ->
      ((fun v -> offsets.(v)), fun i -> neighbors.(i))
  | Csr.Big { offsets; neighbors } ->
      ( (fun v -> Bigarray.Array1.get offsets v),
        fun i -> Bigarray.Array1.get neighbors i )

(* undirected edge endpoints and the slot→edge-id map — the shared
   setup of [pack] and [patch] *)
let edge_arrays csr =
  let m = Csr.m csr in
  let eu = Array.make (max 1 m) 0 and ev = Array.make (max 1 m) 0 in
  let i = ref 0 in
  Csr.iter_edges csr (fun u v ->
      eu.(!i) <- u;
      ev.(!i) <- v;
      incr i);
  let eu = Array.sub eu 0 m and ev = Array.sub ev 0 m in
  let und_of_slot = Array.make (Csr.degree_sum csr) 0 in
  for e = 0 to m - 1 do
    und_of_slot.(Csr.edge_index csr eu.(e) ev.(e)) <- e;
    und_of_slot.(Csr.edge_index csr ev.(e) eu.(e)) <- e
  done;
  (eu, ev, und_of_slot)

(* per-undirected-edge claimability under the masks: both endpoints
   member and both directed slots pass the usability predicate *)
let allowed_of csr ~member ~usable ~eu ~ev =
  let m = Array.length eu in
  let allowed = Array.make m true in
  (match member with
  | None -> ()
  | Some mem ->
      for e = 0 to m - 1 do
        if not (mem.(eu.(e)) && mem.(ev.(e))) then allowed.(e) <- false
      done);
  (match usable with
  | None -> ()
  | Some f ->
      for e = 0 to m - 1 do
        if
          allowed.(e)
          && not (f (Csr.edge_index csr eu.(e) ev.(e)) && f (Csr.edge_index csr ev.(e) eu.(e)))
        then allowed.(e) <- false
      done);
  allowed

(* Orient each tree's owned edge set from the source — BFS over the
   owned adjacency, then the grouped-children layout. [None] unless
   every tree is a forest of exactly [members − 1] edges reaching all
   [members] masked vertices from the source: the spanning check of
   [attempt] and the validity check of [patch] in one place. *)
let orient csr ~source ~count ~members ~owner ~eu ~ev =
  let n = Csr.n csr in
  let m = Array.length eu in
  let target = count * (max 0 (members - 1)) in
  let sizes = Array.make count 0 in
  let adj_off = Array.make ((count * n) + 1) 0 in
  let ok = ref true in
  for e = 0 to m - 1 do
    let o = owner.(e) in
    if o >= 0 then begin
      sizes.(o) <- sizes.(o) + 1;
      let bu = (o * n) + eu.(e) and bv = (o * n) + ev.(e) in
      adj_off.(bu + 1) <- adj_off.(bu + 1) + 1;
      adj_off.(bv + 1) <- adj_off.(bv + 1) + 1
    end
  done;
  Array.iter (fun s -> if s <> members - 1 then ok := false) sizes;
  if not !ok then None
  else begin
    for i = 1 to count * n do
      adj_off.(i) <- adj_off.(i) + adj_off.(i - 1)
    done;
    let adj_v = Array.make (2 * max 1 target) 0 in
    let cursor = Array.make (count * n) 0 in
    Array.blit adj_off 0 cursor 0 (count * n);
    for e = 0 to m - 1 do
      let o = owner.(e) in
      if o >= 0 then begin
        let bu = (o * n) + eu.(e) and bv = (o * n) + ev.(e) in
        adj_v.(cursor.(bu)) <- ev.(e);
        cursor.(bu) <- cursor.(bu) + 1;
        adj_v.(cursor.(bv)) <- eu.(e);
        cursor.(bv) <- cursor.(bv) + 1
      end
    done;
    let parent = Array.make (count * n) (-1) in
    let depth = Array.make (count * n) 0 in
    let child_off = Array.make (count * (n + 1)) 0 in
    let child = Array.make (max 1 target) 0 in
    let child_eidx = Array.make (max 1 target) 0 in
    let max_depths = Array.make count 0 in
    let stamp = Array.make n (-1) in
    let queue = Array.make n 0 in
    for t = 0 to count - 1 do
      if !ok then begin
        let base = t * n in
        let reached = ref 1 in
        stamp.(source) <- t;
        let head = ref 0 and tail = ref 0 in
        queue.(!tail) <- source;
        incr tail;
        parent.(base + source) <- -1;
        depth.(base + source) <- 0;
        let maxd = ref 0 in
        while !head < !tail do
          let u = queue.(!head) in
          incr head;
          for i = adj_off.(base + u) to adj_off.(base + u + 1) - 1 do
            let v = adj_v.(i) in
            if stamp.(v) <> t then begin
              stamp.(v) <- t;
              parent.(base + v) <- u;
              depth.(base + v) <- depth.(base + u) + 1;
              if depth.(base + v) > !maxd then maxd := depth.(base + v);
              incr reached;
              queue.(!tail) <- v;
              incr tail
            end
          done
        done;
        max_depths.(t) <- !maxd;
        if !reached <> members then ok := false
      end
    done;
    if not !ok then None
    else begin
      (* children grouped per node, filled in ascending child order *)
      for t = 0 to count - 1 do
        let obase = t * (n + 1) in
        for v = 0 to n - 1 do
          let p = parent.((t * n) + v) in
          if p >= 0 then child_off.(obase + p + 1) <- child_off.(obase + p + 1) + 1
        done;
        child_off.(obase) <- t * (max 0 (members - 1));
        for v = 1 to n do
          child_off.(obase + v) <- child_off.(obase + v) + child_off.(obase + v - 1)
        done
      done;
      let fill = Array.copy child_off in
      for t = 0 to count - 1 do
        let obase = t * (n + 1) in
        for v = 0 to n - 1 do
          let p = parent.((t * n) + v) in
          if p >= 0 then begin
            let pos = fill.(obase + p) in
            child.(pos) <- v;
            child_eidx.(pos) <- Csr.edge_index csr p v;
            fill.(obase + p) <- pos + 1
          end
        done
      done;
      Some { source; count; n; members; parent; depth; child_off; child; child_eidx; max_depths }
    end
  end

(* Matroid-union completion: grow a partial owner assignment — each
   tree's owned edge set a forest over the member vertices — one
   shortest augmenting path at a time (insert an unowned edge into
   some forest, cascading swaps along the exchange graph) until the
   trees own [target = count * (members − 1)] edges in total. Every
   allowed edge joins at most [members] vertices' worth of forest, so
   hitting the total forces each tree to exactly members − 1 edges.
   Reaches the Nash-Williams/Tutte optimum from any forest-valid seed;
   [false] means [count] disjoint spanning trees do not exist. Scan
   orders are fixed (edges ascending, trees ascending), so the result
   is deterministic in the seed assignment. *)
let complete csr ~count ~eu ~ev ~owner ~owned ~target =
  let n = Csr.n csr in
  let m = Array.length eu in
  let queue = Array.make (max 1 n) 0 in
  (* scratch for the per-augmentation forest structures *)
  let comp = Array.make (count * n) (-1) in
  let fparent = Array.make (count * n) (-1) in
  let fpedge = Array.make (count * n) (-1) in
  let fdepth = Array.make (count * n) 0 in
  let adj_off = Array.make ((count * n) + 1) 0 in
  let adj_v = Array.make (2 * max 1 target) 0 in
  let adj_e = Array.make (2 * max 1 target) 0 in
  let cursor = Array.make (count * n) 0 in
  let rebuild_forests () =
    Array.fill adj_off 0 (Array.length adj_off) 0;
    for e = 0 to m - 1 do
      let o = owner.(e) in
      if o >= 0 then begin
        let bu = (o * n) + eu.(e) and bv = (o * n) + ev.(e) in
        adj_off.(bu + 1) <- adj_off.(bu + 1) + 1;
        adj_off.(bv + 1) <- adj_off.(bv + 1) + 1
      end
    done;
    for i = 1 to count * n do
      adj_off.(i) <- adj_off.(i) + adj_off.(i - 1)
    done;
    Array.blit adj_off 0 cursor 0 (count * n);
    for e = 0 to m - 1 do
      let o = owner.(e) in
      if o >= 0 then begin
        let bu = (o * n) + eu.(e) and bv = (o * n) + ev.(e) in
        adj_v.(cursor.(bu)) <- ev.(e);
        adj_e.(cursor.(bu)) <- e;
        cursor.(bu) <- cursor.(bu) + 1;
        adj_v.(cursor.(bv)) <- eu.(e);
        adj_e.(cursor.(bv)) <- e;
        cursor.(bv) <- cursor.(bv) + 1
      end
    done;
    Array.fill comp 0 (count * n) (-1);
    for t = 0 to count - 1 do
      let base = t * n in
      for root = 0 to n - 1 do
        if comp.(base + root) < 0 then begin
          comp.(base + root) <- root;
          fparent.(base + root) <- -1;
          fpedge.(base + root) <- -1;
          fdepth.(base + root) <- 0;
          let head = ref 0 and tail = ref 0 in
          queue.(!tail) <- root;
          incr tail;
          while !head < !tail do
            let u = queue.(!head) in
            incr head;
            for i = adj_off.(base + u) to adj_off.(base + u + 1) - 1 do
              let v = adj_v.(i) in
              if comp.(base + v) < 0 then begin
                comp.(base + v) <- root;
                fparent.(base + v) <- u;
                fpedge.(base + v) <- adj_e.(i);
                fdepth.(base + v) <- fdepth.(base + u) + 1;
                queue.(!tail) <- v;
                incr tail
              end
            done
          done
        end
      done
    done
  in
  (* visit every forest-[t] edge on the path between u and v (both in
     the same component, so the tree path exists) *)
  let path_edges t u v f =
    let base = t * n in
    let a = ref u and b = ref v in
    while !a <> !b do
      if fdepth.(base + !a) >= fdepth.(base + !b) then begin
        f fpedge.(base + !a);
        a := fparent.(base + !a)
      end
      else begin
        f fpedge.(base + !b);
        b := fparent.(base + !b)
      end
    done
  in
  let pred = Array.make (max 1 m) (-1) in
  let seen = Array.make (max 1 m) false in
  let equeue = Array.make (max 1 m) 0 in
  let owned = ref owned in
  let augment () =
    rebuild_forests ();
    Array.fill seen 0 m false;
    let head = ref 0 and tail = ref 0 in
    for e = 0 to m - 1 do
      if owner.(e) = -1 then begin
        seen.(e) <- true;
        pred.(e) <- -1;
        equeue.(!tail) <- e;
        incr tail
      end
    done;
    let goal = ref (-1) and goal_tree = ref (-1) in
    while !head < !tail && !goal < 0 do
      let e = equeue.(!head) in
      incr head;
      let u = eu.(e) and v = ev.(e) in
      let t = ref 0 in
      while !t < count && !goal < 0 do
        let i = !t in
        if i <> owner.(e) then begin
          if comp.((i * n) + u) <> comp.((i * n) + v) then begin
            goal := e;
            goal_tree := i
          end
          else
            path_edges i u v (fun f ->
                if not seen.(f) then begin
                  seen.(f) <- true;
                  pred.(f) <- e;
                  equeue.(!tail) <- f;
                  incr tail
                end)
        end;
        incr t
      done
    done;
    if !goal < 0 then false
    else begin
      (* cascade the swaps back along the shortest alternating path *)
      let cur = ref !goal and give = ref !goal_tree in
      let continue = ref true in
      while !continue do
        let old = owner.(!cur) in
        owner.(!cur) <- !give;
        if old < 0 then continue := false
        else begin
          give := old;
          cur := pred.(!cur)
        end
      done;
      incr owned;
      true
    end
  in
  let feasible = ref true in
  while !feasible && !owned < target do
    if not (augment ()) then feasible := false
  done;
  !feasible

(* One packing attempt at a fixed tree count; [None] when the union of
   forests cannot reach count spanning trees (then the caller retries
   with one tree fewer). [eu]/[ev] are the undirected edge endpoints,
   [und_of_slot] maps each directed CSR slot to its undirected edge id.
   [allowed] vetoes masked-out edges (owner −2: never claimed, never
   seeded into the augmenting search); [members] counts the masked
   vertices each tree must span. *)
let attempt csr ~source ~count ~eu ~ev ~und_of_slot ~allowed ~members =
  let n = Csr.n csr in
  let m = Array.length eu in
  let lo, nbr = row_accessors csr in
  let owner = Array.init m (fun e -> if allowed.(e) then -1 else -2) in
  let owned = ref 0 in
  let target = count * (max 0 (members - 1)) in
  (* Phase 1: BFS-layered greedy packing. The trees grow in lockstep —
     each round every tree expands its whole frontier by one layer over
     still-unowned edges — so no tree hogs the short edges: depths stay
     near count × eccentricity instead of one shallow tree starving the
     rest into long detours. A tree whose frontier empties before
     spanning just stalls; phase 2 repairs it exactly. *)
  let visited = Array.make (count * n) false in
  let frontier = Array.init count (fun _ -> Array.make n 0) in
  let fsize = Array.make count 0 in
  let next = Array.make n 0 in
  (* Degree reservation: [entered.(v)] trees have reached v so far and
     [free_deg.(v)] of its claimable edges are unowned. A claim must
     leave every endpoint at least [count - entered] free edges — one
     entry path per tree still to come — or a wave would capture a
     whole low-degree star (the hub pattern in kdiamond) and cut the
     other trees off. *)
  let free_deg = Array.make n 0 in
  for e = 0 to m - 1 do
    if allowed.(e) then begin
      free_deg.(eu.(e)) <- free_deg.(eu.(e)) + 1;
      free_deg.(ev.(e)) <- free_deg.(ev.(e)) + 1
    end
  done;
  let entered = Array.make n 0 in
  entered.(source) <- count;
  for t = 0 to count - 1 do
    visited.((t * n) + source) <- true
  done;
  let claim_ok u v =
    free_deg.(u) - 1 >= count - entered.(u) && free_deg.(v) - 1 >= count - (entered.(v) + 1)
  in
  let do_claim t e u v =
    owner.(e) <- t;
    incr owned;
    free_deg.(u) <- free_deg.(u) - 1;
    free_deg.(v) <- free_deg.(v) - 1;
    entered.(v) <- entered.(v) + 1;
    visited.((t * n) + v) <- true;
    frontier.(t).(fsize.(t)) <- v;
    fsize.(t) <- fsize.(t) + 1
  in
  (* the source's edges are the bottleneck every tree must pass
     through: deal them out round-robin before the waves start, or the
     first tree's layer-1 sweep would claim them all and starve the
     rest at birth *)
  let deal = ref 0 in
  for i = lo source to lo (source + 1) - 1 do
    let v = nbr i in
    let e = und_of_slot.(i) in
    if owner.(e) = -1 && claim_ok source v then begin
      let t = !deal mod count in
      incr deal;
      do_claim t e source v
    end
  done;
  let progress = ref true in
  while !progress do
    progress := false;
    for t = 0 to count - 1 do
      let base = t * n in
      let flen = fsize.(t) in
      if flen > 0 then begin
        Array.blit frontier.(t) 0 next 0 flen;
        fsize.(t) <- 0;
        for fi = 0 to flen - 1 do
          let u = next.(fi) in
          for i = lo u to lo (u + 1) - 1 do
            let v = nbr i in
            let e = und_of_slot.(i) in
            if owner.(e) = -1 && (not visited.(base + v)) && claim_ok u v then do_claim t e u v
          done
        done;
        if fsize.(t) > 0 then progress := true
      end
    done
  done;
  (* phase 2: matroid-union augmentation until every forest spans *)
  if not (complete csr ~count ~eu ~ev ~owner ~owned:!owned ~target) then None
  else orient csr ~source ~count ~members ~owner ~eu ~ev

let members_of ~n ~member =
  match member with
  | None -> n
  | Some mem ->
      let c = ref 0 in
      Array.iter (fun b -> if b then incr c) mem;
      !c

let pack ?count ?member ?usable csr ~source =
  let n = Csr.n csr in
  if n = 0 then invalid_arg "Tree_pack.pack: empty graph";
  if source < 0 || source >= n then invalid_arg "Tree_pack.pack: source out of range";
  (match member with
  | Some mem when Array.length mem <> n -> invalid_arg "Tree_pack.pack: member mask length"
  | Some mem when not mem.(source) -> invalid_arg "Tree_pack.pack: source is not a member"
  | _ -> ());
  let requested = match count with Some c -> c | None -> default_count csr in
  if requested < 1 then invalid_arg "Tree_pack.pack: count must be >= 1";
  let eu, ev, und_of_slot = edge_arrays csr in
  let allowed = allowed_of csr ~member ~usable ~eu ~ev in
  let members = members_of ~n ~member in
  let rec go c =
    match attempt csr ~source ~count:c ~eu ~ev ~und_of_slot ~allowed ~members with
    | Some t -> t
    | None ->
        if c <= 1 then invalid_arg "Tree_pack.pack: graph is not connected"
        else go (c - 1)
  in
  go requested

let pack_all ?pool ?count ?member ?usable csr ~sources =
  let srcs = Array.of_list sources in
  let len = Array.length srcs in
  let out = Array.make len None in
  let work i = out.(i) <- Some (pack ?count ?member ?usable csr ~source:srcs.(i)) in
  (match pool with
  | Some p when len > 1 -> Par.Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:len (fun ~worker:_ i -> work i)
  | _ ->
      for i = 0 to len - 1 do
        work i
      done);
  Array.map
    (function Some t -> t | None -> assert false (* parallel_for covered every index *))
    out

(* Incremental re-stripe after a mask change, on the same CSR snapshot
   the pack was built over. The edge-set view makes this simple: each
   tree is members−1 owned undirected edges; drop the ones the new
   masks invalidate, then reconnect each tree's broken components
   greedily (scan unreached members in ascending order, claim the
   first still-unowned allowed edge from their component into the
   source component), and re-orient by BFS. Claims go through the
   shared owner array, so edge-disjointness is structural; every loop
   walks ascending vertex/slot order, so the result is deterministic.
   When free edges are too scarce for greedy — at count = ⌊k/2⌋ the
   trees own nearly every edge, so a leave can strand a component
   whose only ways back are owned elsewhere — [complete] finishes
   from the assignment built so far, one augmenting path per missing
   edge. [None] — caller falls back to a full [pack], which may also
   back the count off — therefore means the count is genuinely
   infeasible under the new masks. *)
let patch t csr ?member ?usable () =
  let n = Csr.n csr in
  if n <> t.n then invalid_arg "Tree_pack.patch: CSR size does not match the pack";
  (match member with
  | Some mem when Array.length mem <> n -> invalid_arg "Tree_pack.patch: member mask length"
  | Some mem when not mem.(t.source) -> invalid_arg "Tree_pack.patch: source is not a member"
  | _ -> ());
  let eu, ev, und_of_slot = edge_arrays csr in
  let m = Array.length eu in
  let allowed = allowed_of csr ~member ~usable ~eu ~ev in
  let members = members_of ~n ~member in
  let is_member v = match member with None -> true | Some mem -> mem.(v) in
  let owner = Array.init m (fun e -> if allowed.(e) then -1 else -2) in
  let dirty = Array.make t.count false in
  let ok = ref true in
  (* re-own the surviving tree edges; a dropped edge marks its tree *)
  for tree = 0 to t.count - 1 do
    let base = tree * n in
    for v = 0 to n - 1 do
      let p = t.parent.(base + v) in
      if p >= 0 then begin
        let e = und_of_slot.(Csr.edge_index csr p v) in
        if allowed.(e) then
          if owner.(e) = -1 then owner.(e) <- tree
          else (* another tree claimed it: the pack does not fit this CSR *)
            ok := false
        else dirty.(tree) <- true
      end
    done
  done;
  if not !ok then None
  else begin
    (* joins: a member the old pack did not span must enter every tree *)
    let was_spanned v = v = t.source || t.parent.(v) >= 0 in
    let joined = ref false in
    for v = 0 to n - 1 do
      if is_member v && not (was_spanned v) then joined := true
    done;
    if !joined then Array.fill dirty 0 t.count true;
    if members <> t.members && not (Array.exists Fun.id dirty) then
      (* a leaver whose edges were all already gone — trees must shrink *)
      Array.fill dirty 0 t.count true;
    if not (Array.exists Fun.id dirty) then Some t
    else begin
      let lo, nbr = row_accessors csr in
      let reached = Array.make n false in
      let cstamp = Array.make n (-1) in
      let pass_id = ref 0 in
      let comp_nodes = Array.make n 0 in
      let queue = Array.make n 0 in
      (* per-tree adjacency over currently owned edges, rebuilt per
         dirty tree (linear in m) *)
      let adj_off = Array.make (n + 1) 0 in
      let adj_v = Array.make (2 * max 1 (members - 1) * 2) 0 in
      let tree = ref 0 in
      while !ok && !tree < t.count do
        let tr = !tree in
        if dirty.(tr) then begin
          (* adjacency of tree [tr]'s surviving edges *)
          Array.fill adj_off 0 (n + 1) 0;
          let deg_total = ref 0 in
          for e = 0 to m - 1 do
            if owner.(e) = tr then begin
              adj_off.(eu.(e) + 1) <- adj_off.(eu.(e) + 1) + 1;
              adj_off.(ev.(e) + 1) <- adj_off.(ev.(e) + 1) + 1;
              deg_total := !deg_total + 2
            end
          done;
          for i = 1 to n do
            adj_off.(i) <- adj_off.(i) + adj_off.(i - 1)
          done;
          let adj_v =
            if !deg_total <= Array.length adj_v then adj_v else Array.make !deg_total 0
          in
          let cursor = Array.copy adj_off in
          for e = 0 to m - 1 do
            if owner.(e) = tr then begin
              adj_v.(cursor.(eu.(e))) <- ev.(e);
              cursor.(eu.(e)) <- cursor.(eu.(e)) + 1;
              adj_v.(cursor.(ev.(e))) <- eu.(e);
              cursor.(ev.(e)) <- cursor.(ev.(e)) + 1
            end
          done;
          (* the source component is the anchor *)
          Array.fill reached 0 n false;
          reached.(t.source) <- true;
          let head = ref 0 and tail = ref 0 in
          queue.(!tail) <- t.source;
          incr tail;
          while !head < !tail do
            let u = queue.(!head) in
            incr head;
            for i = adj_off.(u) to adj_off.(u + 1) - 1 do
              let v = adj_v.(i) in
              if not reached.(v) then begin
                reached.(v) <- true;
                queue.(!tail) <- v;
                incr tail
              end
            done
          done;
          (* reconnect: components can chain through each other (an
             attached component becomes the landing zone for the next),
             so sweep until a pass attaches nothing; [pass_id] makes
             component stamps per-pass, so a component that failed one
             pass is reconsidered on the next *)
          let progress = ref true in
          let remaining = ref 0 in
          for v = 0 to n - 1 do
            if is_member v && not reached.(v) then incr remaining
          done;
          while !progress && !remaining > 0 do
            progress := false;
            incr pass_id;
            let pass = !pass_id in
            for v = 0 to n - 1 do
              if is_member v && not reached.(v) && cstamp.(v) <> pass then begin
                (* collect v's component in BFS order *)
                let csize = ref 0 in
                cstamp.(v) <- pass;
                comp_nodes.(!csize) <- v;
                incr csize;
                let head = ref 0 in
                while !head < !csize do
                  let u = comp_nodes.(!head) in
                  incr head;
                  for i = adj_off.(u) to adj_off.(u + 1) - 1 do
                    let w = adj_v.(i) in
                    if cstamp.(w) <> pass && not reached.(w) then begin
                      cstamp.(w) <- pass;
                      comp_nodes.(!csize) <- w;
                      incr csize
                    end
                  done
                done;
                (* first free allowed edge from the component into the
                   reached set, component scanned in BFS order, each
                   node's slots ascending *)
                let found = ref false in
                let ci = ref 0 in
                while (not !found) && !ci < !csize do
                  let u = comp_nodes.(!ci) in
                  let i = ref (lo u) in
                  let hi = lo (u + 1) in
                  while (not !found) && !i < hi do
                    let w = nbr !i in
                    let e = und_of_slot.(!i) in
                    if owner.(e) = -1 && reached.(w) then begin
                      owner.(e) <- tr;
                      found := true
                    end;
                    incr i
                  done;
                  incr ci
                done;
                if !found then begin
                  progress := true;
                  for i = 0 to !csize - 1 do
                    reached.(comp_nodes.(i)) <- true;
                    decr remaining
                  done
                end
              end
            done
          done;
          (* a still-stranded component (no free edge back into the
             reached set) is left for the augmenting completion below *)
        end;
        incr tree
      done;
      let target = t.count * (max 0 (members - 1)) in
      let owned = ref 0 in
      for e = 0 to m - 1 do
        if owner.(e) >= 0 then incr owned
      done;
      if
        !owned < target
        && not (complete csr ~count:t.count ~eu ~ev ~owner ~owned:!owned ~target)
      then None
      else orient csr ~source:t.source ~count:t.count ~members ~owner ~eu ~ev
    end
  end

module Cache = struct
  type pack = t

  type nonrec t = {
    mutable csr : Csr.t option;
    tbl : (int * int, pack) Hashtbl.t;
    mutable evictions : int;
  }

  let create () = { csr = None; tbl = Hashtbl.create 16; evictions = 0 }

  let discard c =
    let live = Hashtbl.length c.tbl in
    if live > 0 then begin
      c.evictions <- c.evictions + live;
      Hashtbl.reset c.tbl
    end

  let reset_for c csr =
    match c.csr with
    | Some prev when prev == csr -> ()
    | _ ->
        discard c;
        c.csr <- Some csr

  let invalidate c = discard c

  let retarget c csr =
    discard c;
    c.csr <- Some csr

  let evictions c = c.evictions

  let get c ?count csr ~source =
    reset_for c csr;
    let cnt = match count with Some k -> k | None -> default_count csr in
    match Hashtbl.find_opt c.tbl (source, cnt) with
    | Some p -> p
    | None ->
        let p = pack ~count:cnt csr ~source in
        Hashtbl.add c.tbl (source, cnt) p;
        p

  let get_all ?pool c ?count csr ~sources =
    reset_for c csr;
    let cnt = match count with Some k -> k | None -> default_count csr in
    let missing =
      List.filter (fun s -> not (Hashtbl.mem c.tbl (s, cnt))) (List.sort_uniq compare sources)
    in
    if missing <> [] then begin
      let packed = pack_all ?pool ~count:cnt csr ~sources:missing in
      List.iteri (fun i s -> Hashtbl.add c.tbl (s, cnt) packed.(i)) missing
    end;
    Array.of_list (List.map (fun s -> Hashtbl.find c.tbl (s, cnt)) sources)
end
