(* Per-edge criticality checks are independent of one another: each
   builds its own edge-deleted copy and flow networks, and only reads
   the shared graph. With [?pool] the edge sweep fans out across
   domains; the edge order of [non_critical_edges] is preserved by
   writing verdicts into a slot per edge index. *)

let edge_is_critical g ~k u v =
  if not (Graph.has_edge g u v) then invalid_arg "Minimality.edge_is_critical: edge absent";
  let g' = Graph.without_edge g u v in
  let lambda = Connectivity.local_edge_connectivity ~limit:k g' ~s:u ~t:v in
  if lambda < k then true
  else
    let kappa = Connectivity.local_vertex_connectivity ~limit:k g' ~s:u ~t:v in
    kappa < k

let edge_array g =
  let edges = Array.make (Graph.m g) (0, 0) in
  let i = ref 0 in
  Graph.iter_edges g (fun u v ->
      edges.(!i) <- (u, v);
      incr i);
  edges

let use_pool pool m =
  match pool with Some p when Par.Pool.size p > 1 && m > 1 -> Some p | _ -> None

let non_critical_edges ?pool g ~k =
  match use_pool pool (Graph.m g) with
  | Some p ->
      let edges = edge_array g in
      let m = Array.length edges in
      let bad = Array.make m false in
      Par.Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:m (fun ~worker:_ i ->
          let u, v = edges.(i) in
          if not (edge_is_critical g ~k u v) then bad.(i) <- true);
      let out = ref [] in
      for i = m - 1 downto 0 do
        if bad.(i) then out := edges.(i) :: !out
      done;
      !out
  | None ->
      let bad = ref [] in
      Graph.iter_edges g (fun u v ->
          if not (edge_is_critical g ~k u v) then bad := (u, v) :: !bad);
      List.rev !bad

let is_link_minimal ?pool g ~k =
  match use_pool pool (Graph.m g) with
  | Some p ->
      let edges = edge_array g in
      (* One non-critical edge settles the answer; the flag only ever
         goes false, so the verdict is schedule-independent and late
         iterations merely skip their flow computations. *)
      let ok = Atomic.make true in
      Par.Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:(Array.length edges) (fun ~worker:_ i ->
          if Atomic.get ok then begin
            let u, v = edges.(i) in
            if not (edge_is_critical g ~k u v) then Atomic.set ok false
          end);
      Atomic.get ok
  | None ->
      let ok = ref true in
      Graph.iter_edges g (fun u v -> if !ok && not (edge_is_critical g ~k u v) then ok := false);
      !ok
