(* All flow-network construction and the global-connectivity search
   loops run over a frozen CSR snapshot: the builders know the exact arc
   count up front (zero growth copies) and neighbour scans are flat
   array reads. The [Graph.t] entry points snapshot once and delegate. *)

let edge_flow_network_csr csr =
  let net =
    Maxflow.Net.create_sized ~n:(max 1 (Csr.n csr)) ~arc_capacity:(4 * Csr.m csr)
  in
  Csr.iter_edges csr (fun u v -> Maxflow.Net.add_edge_bidir net u v ~cap:1);
  net

let edge_flow_network g = edge_flow_network_csr (Csr.of_graph g)

let vertex_split_network_csr csr =
  let nv = Csr.n csr in
  let v_in v = 2 * v and v_out v = (2 * v) + 1 in
  let net =
    Maxflow.Net.create_sized ~n:(max 1 (2 * nv)) ~arc_capacity:((2 * nv) + (4 * Csr.m csr))
  in
  for v = 0 to nv - 1 do
    Maxflow.Net.add_arc net ~src:(v_in v) ~dst:(v_out v) ~cap:1
  done;
  (* An undirected edge {u,v} lets flow cross in either direction between
     the out-side of one endpoint and the in-side of the other. Edge arcs
     carry effectively infinite capacity: flow is already bounded by the
     unit interior arcs, and saturating only those guarantees minimum
     cuts consist of interior arcs — i.e. of vertices. *)
  let big = max 1 nv in
  Csr.iter_edges csr (fun u v ->
      Maxflow.Net.add_arc net ~src:(v_out u) ~dst:(v_in v) ~cap:big;
      Maxflow.Net.add_arc net ~src:(v_out v) ~dst:(v_in u) ~cap:big);
  (net, v_in, v_out)

let vertex_split_network g = vertex_split_network_csr (Csr.of_graph g)

let check_pair g s t name =
  let nv = Graph.n g in
  if s < 0 || s >= nv || t < 0 || t >= nv then invalid_arg (name ^ ": vertex out of range");
  if s = t then invalid_arg (name ^ ": s = t")

let local_edge_connectivity ?limit g ~s ~t =
  check_pair g s t "Connectivity.local_edge_connectivity";
  let net = edge_flow_network g in
  Maxflow.max_flow ?limit net ~s ~t

let local_vertex_connectivity ?limit g ~s ~t =
  check_pair g s t "Connectivity.local_vertex_connectivity";
  if Graph.has_edge g s t then begin
    let g' = Graph.without_edge g s t in
    let net, v_in, v_out = vertex_split_network g' in
    let limit' = Option.map (fun l -> max 0 (l - 1)) limit in
    1 + Maxflow.max_flow ?limit:limit' net ~s:(v_out s) ~t:(v_in t)
  end
  else begin
    let net, v_in, v_out = vertex_split_network g in
    Maxflow.max_flow ?limit net ~s:(v_out s) ~t:(v_in t)
  end

(* Iterate λ(v0, t) over all t, reusing one network. *)
let edge_connectivity_upto_csr limit csr =
  let nv = Csr.n csr in
  if nv <= 1 then 0
  else begin
    let net = edge_flow_network_csr csr in
    let best = ref limit in
    let t = ref 1 in
    while !best > 0 && !t < nv do
      Maxflow.Net.reset_flow net;
      let f = Maxflow.max_flow ~limit:!best net ~s:0 ~t:!t in
      if f < !best then best := f;
      incr t
    done;
    !best
  end

let edge_connectivity_csr csr =
  let nv = Csr.n csr in
  if nv <= 1 then 0
  else begin
    (* λ(G) ≤ δ(G). *)
    let delta = ref max_int in
    for v = 0 to nv - 1 do
      delta := min !delta (Csr.degree csr v)
    done;
    edge_connectivity_upto_csr !delta csr
  end

let edge_connectivity g = edge_connectivity_csr (Csr.of_graph g)

(* Decision probes are independent maxflows capped at k (a fixed limit,
   unlike the exact-value loops whose shrinking limit is a sequential
   optimisation): with [?pool] they distribute across domains, one
   private flow network per domain. The verdict — "every probe ≥ k" —
   is the same at any domain count. *)

let use_pool pool =
  match pool with Some p when Par.Pool.size p > 1 -> Some p | _ -> None

let is_k_edge_connected_csr ?pool csr ~k =
  if k < 0 then invalid_arg "Connectivity.is_k_edge_connected: negative k";
  if k = 0 then Csr.n csr > 0
  else if Csr.n csr <= 1 then false
  else
    match use_pool pool with
    | Some p ->
        let nv = Csr.n csr in
        let nets = Array.init (Par.Pool.size p) (fun _ -> edge_flow_network_csr csr) in
        let ok = Atomic.make true in
        Par.Pool.parallel_for ~chunk:1 p ~lo:1 ~hi:nv (fun ~worker t ->
            if Atomic.get ok then begin
              let net = nets.(worker) in
              Maxflow.Net.reset_flow net;
              if Maxflow.max_flow ~limit:k net ~s:0 ~t < k then Atomic.set ok false
            end);
        Atomic.get ok
    | None -> edge_connectivity_upto_csr k csr >= k

let is_k_edge_connected ?pool g ~k = is_k_edge_connected_csr ?pool (Csr.of_graph g) ~k

let min_degree_vertex csr =
  let nv = Csr.n csr in
  let best = ref 0 in
  for v = 1 to nv - 1 do
    if Csr.degree csr v < Csr.degree csr !best then best := v
  done;
  !best

let is_complete csr =
  let nv = Csr.n csr in
  Csr.m csr = nv * (nv - 1) / 2

(* κ(G) capped at [limit], by the min-degree-neighbourhood reduction. *)
let vertex_connectivity_upto_csr limit csr =
  let nv = Csr.n csr in
  if nv <= 1 then 0
  else if is_complete csr then min limit (nv - 1)
  else begin
    let v = min_degree_vertex csr in
    let sources = v :: Csr.neighbors csr v in
    let net, v_in, v_out = vertex_split_network_csr csr in
    let best = ref (min limit (Csr.degree csr v)) in
    List.iter
      (fun s ->
        for t = 0 to nv - 1 do
          if !best > 0 && t <> s && not (Csr.mem_edge csr s t) then begin
            Maxflow.Net.reset_flow net;
            let f = Maxflow.max_flow ~limit:!best net ~s:(v_out s) ~t:(v_in t) in
            if f < !best then best := f
          end
        done)
      sources;
    !best
  end

let vertex_connectivity_csr csr = vertex_connectivity_upto_csr max_int csr

let vertex_connectivity g = vertex_connectivity_csr (Csr.of_graph g)

let is_k_vertex_connected_csr ?pool csr ~k =
  if k < 0 then invalid_arg "Connectivity.is_k_vertex_connected: negative k";
  if k = 0 then Csr.n csr > 0
  else if Csr.n csr < k + 1 then false
  else
    match use_pool pool with
    | Some p ->
        let nv = Csr.n csr in
        if is_complete csr then nv - 1 >= k
        else begin
          let v = min_degree_vertex csr in
          (* κ(G) ≤ δ(G): the sequential path's initial bound. *)
          if Csr.degree csr v < k then false
          else begin
            let sources = v :: Csr.neighbors csr v in
            let pairs = ref [] and npairs = ref 0 in
            List.iter
              (fun s ->
                for t = 0 to nv - 1 do
                  if t <> s && not (Csr.mem_edge csr s t) then begin
                    pairs := (s, t) :: !pairs;
                    incr npairs
                  end
                done)
              sources;
            let pairs = Array.of_list (List.rev !pairs) in
            let nets = Array.init (Par.Pool.size p) (fun _ -> vertex_split_network_csr csr) in
            let ok = Atomic.make true in
            Par.Pool.parallel_for ~chunk:1 p ~lo:0 ~hi:!npairs (fun ~worker i ->
                if Atomic.get ok then begin
                  let s, t = pairs.(i) in
                  let net, v_in, v_out = nets.(worker) in
                  Maxflow.Net.reset_flow net;
                  if Maxflow.max_flow ~limit:k net ~s:(v_out s) ~t:(v_in t) < k then
                    Atomic.set ok false
                end);
            Atomic.get ok
          end
        end
    | None -> vertex_connectivity_upto_csr k csr >= k

let is_k_vertex_connected ?pool g ~k = is_k_vertex_connected_csr ?pool (Csr.of_graph g) ~k

let min_edge_cut g =
  let nv = Graph.n g in
  if nv <= 1 || not (Components.is_connected g) then []
  else begin
    (* find the t minimising maxflow(0, t), then read the cut *)
    let csr = Csr.of_graph g in
    let lambda = edge_connectivity_csr csr in
    let net = edge_flow_network_csr csr in
    let best_t = ref (-1) in
    let t = ref 1 in
    while !best_t < 0 && !t < nv do
      Maxflow.Net.reset_flow net;
      if Maxflow.max_flow ~limit:(lambda + 1) net ~s:0 ~t:!t = lambda then best_t := !t;
      incr t
    done;
    Maxflow.Net.reset_flow net;
    ignore (Maxflow.max_flow net ~s:0 ~t:!best_t);
    let side = Maxflow.min_cut_side net ~s:0 in
    let cut = ref [] in
    Csr.iter_edges csr (fun u v -> if side.(u) <> side.(v) then cut := (u, v) :: !cut);
    List.rev !cut
  end

let min_vertex_cut g =
  let nv = Graph.n g in
  let csr = Csr.of_graph g in
  if nv <= 1 || is_complete csr || not (Components.is_connected g) then []
  else begin
    let kappa = vertex_connectivity_csr csr in
    let v = min_degree_vertex csr in
    let sources = v :: Csr.neighbors csr v in
    let net, v_in, v_out = vertex_split_network_csr csr in
    (* find an (s,t) pair realising kappa, then cut vertices are the
       saturated interior arcs crossing the residual cut *)
    let found = ref [] and done_ = ref false in
    List.iter
      (fun s ->
        if not !done_ then
          for t = 0 to nv - 1 do
            if (not !done_) && t <> s && not (Csr.mem_edge csr s t) then begin
              Maxflow.Net.reset_flow net;
              if Maxflow.max_flow ~limit:(kappa + 1) net ~s:(v_out s) ~t:(v_in t) = kappa then begin
                let side = Maxflow.min_cut_side net ~s:(v_out s) in
                let cut = ref [] in
                for u = nv - 1 downto 0 do
                  if side.(v_in u) && not side.(v_out u) then cut := u :: !cut
                done;
                found := !cut;
                done_ := true
              end
            end
          done)
      sources;
    !found
  end
