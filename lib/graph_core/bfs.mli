(** Breadth-first search.

    All functions accept an optional [alive] mask (length [n]); vertices
    with [alive.(v) = false] are treated as removed — the view used for
    node-crash experiments. The source must be alive. *)

val distances : ?alive:bool array -> Graph.t -> src:int -> int array
(** Hop distances from [src]; unreachable (or dead) vertices get [-1]. *)

val distances_and_parents : ?alive:bool array -> Graph.t -> src:int -> int array * int array
(** As {!distances}, plus a BFS parent array ([-1] for [src] and
    unreached vertices). *)

val path : ?alive:bool array -> Graph.t -> src:int -> dst:int -> int list option
(** A shortest path from [src] to [dst] inclusive, if one exists. *)

val eccentricity : ?alive:bool array -> Graph.t -> src:int -> int option
(** Max finite distance from [src], or [None] when some alive vertex is
    unreachable (infinite eccentricity). *)

val reachable_count : ?alive:bool array -> Graph.t -> src:int -> int
(** Number of vertices reachable from [src], including [src] itself. *)

(** {2 CSR fast path}

    The functions below traverse a frozen {!Csr.t} snapshot with flat
    int arrays and a preallocated queue — no [Queue.t] boxing, no
    set-tree pointer chasing. Semantics (including [?alive] handling and
    error messages) match the [Graph.t] functions above exactly. *)

module Workspace : sig
  type t
  (** Reusable scratch space (distance, parent and queue arrays) for
      repeated CSR traversals — eccentricity sweeps, Monte-Carlo
      flooding — with zero per-call allocation. A workspace grows to the
      largest graph it has served and is never shrunk. Not thread-safe:
      one workspace per concurrent traversal. *)

  val create : unit -> t
end

val csr_run : Workspace.t -> ?alive:bool array -> Csr.t -> src:int -> unit
(** Run BFS from [src], leaving distances and parents in the workspace
    (read them via {!csr_distances_into} or the returned arrays of the
    allocating variants). *)

val csr_distances_into : Workspace.t -> ?alive:bool array -> Csr.t -> src:int -> int array
(** As {!distances}, but over a CSR snapshot and into the workspace.
    Returns the workspace's own distance array: it may be longer than
    [Csr.n csr] (only the first [n] entries are meaningful) and is
    invalidated by the next run on the same workspace. *)

val csr_distances : ?alive:bool array -> Csr.t -> src:int -> int array
(** Allocating convenience: exact-length fresh distance array. *)

val csr_distances_and_parents : ?alive:bool array -> Csr.t -> src:int -> int array * int array
