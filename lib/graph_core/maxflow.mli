(** Dinic's maximum-flow algorithm on integer-capacity networks.

    The connectivity procedures in {!Connectivity} reduce to unit-capacity
    flows, for which Dinic runs in O(E·√V); in this library flows are
    additionally cut off at a small limit [k], giving O(k·E) in the
    decision use-case. *)

module Net : sig
  type t
  (** A directed flow network with mutable flow state. *)

  val create : n:int -> t
  (** [n] nodes, no arcs. *)

  val create_sized : n:int -> arc_capacity:int -> t
  (** As {!create}, but preallocating the flat arc arrays
      ([arc_capacity] arc slots: each {!add_arc} consumes two, each
      {!add_edge_bidir} four), so a caller that knows the final arc
      count — e.g. a CSR-driven network build — pays zero growth
      copies. *)

  val node_count : t -> int

  val add_arc : t -> src:int -> dst:int -> cap:int -> unit
  (** Add a forward arc of capacity [cap] and its residual reverse arc of
      capacity 0. *)

  val add_edge_bidir : t -> int -> int -> cap:int -> unit
  (** Two arcs of capacity [cap], one in each direction — the standard
      encoding of an undirected unit edge. *)

  val reset_flow : t -> unit
  (** Zero all flow, keeping the arc structure, so the same network can be
      reused for several (s,t) queries. *)
end

val max_flow : ?limit:int -> Net.t -> s:int -> t:int -> int
(** Maximum s→t flow. With [~limit], stops as soon as the flow reaches
    [limit] (returns a value ≤ limit) — the cheap "is flow ≥ k?" decision
    form. Mutates the network's flow state ({!Net.reset_flow} to reuse).
    @raise Invalid_argument if [s = t] or either is out of range. *)

val min_cut_side : Net.t -> s:int -> bool array
(** After {!max_flow} has run (without hitting its limit), the set of
    nodes reachable from [s] in the residual network — the s-side of a
    minimum cut. *)

val iter_flow_arcs : Net.t -> (src:int -> dst:int -> flow:int -> unit) -> unit
(** After a {!max_flow} run, visit every forward arc currently carrying
    positive flow. Used for flow decomposition (disjoint-path
    extraction in {!Menger}). *)
