(* Every aggregate here is a sweep of BFS passes over a fixed topology,
   so each entry point snapshots the graph to CSR once and reuses one
   BFS workspace across all sources — zero per-source allocation. With
   [?pool] the per-source passes fan out across domains (the snapshot
   is immutable, so sharing it is free) with one workspace per domain;
   results are identical to the sequential sweep at any domain count. *)

let check_mask_csr csr alive =
  match alive with
  | None -> ()
  | Some a ->
      if Array.length a <> Csr.n csr then invalid_arg "Paths: alive mask has wrong length"

let live_fun alive =
  match alive with None -> fun _ -> true | Some a -> fun v -> a.(v)

(* Eccentricity of [src] from a workspace run: max finite distance over
   live vertices, or None when some live vertex is unreachable. *)
let ecc_of_run ws ?alive csr ~src =
  let nv = Csr.n csr in
  let dist = Bfs.csr_distances_into ws ?alive csr ~src in
  let live = live_fun alive in
  let ecc = ref 0 and complete = ref true in
  for v = 0 to nv - 1 do
    if live v then begin
      let d = dist.(v) in
      if d < 0 then complete := false else if d > !ecc then ecc := d
    end
  done;
  if !complete then Some !ecc else None

let use_pool pool n =
  match pool with Some p when Par.Pool.size p > 1 && n > 1 -> Some p | _ -> None

let eccentricities_csr ?pool ?alive csr =
  check_mask_csr csr alive;
  let live = live_fun alive in
  let nv = Csr.n csr in
  match use_pool pool nv with
  | Some p ->
      let wss = Array.init (Par.Pool.size p) (fun _ -> Bfs.Workspace.create ()) in
      let out = Array.make nv None in
      Par.Pool.parallel_for p ~lo:0 ~hi:nv (fun ~worker v ->
          if live v then out.(v) <- ecc_of_run wss.(worker) ?alive csr ~src:v);
      out
  | None ->
      let ws = Bfs.Workspace.create () in
      Array.init nv (fun v -> if live v then ecc_of_run ws ?alive csr ~src:v else None)

let eccentricities ?pool ?alive g = eccentricities_csr ?pool ?alive (Csr.of_graph g)

(* Fold alive vertices' eccentricities with [f]; None when the graph is
   empty or some alive vertex has undefined (infinite) eccentricity. *)
let fold_ecc_csr ?pool ?alive csr f =
  check_mask_csr csr alive;
  let live = live_fun alive in
  let nv = Csr.n csr in
  match use_pool pool nv with
  | Some p ->
      let wss = Array.init (Par.Pool.size p) (fun _ -> Bfs.Workspace.create ()) in
      (* Disconnection anywhere forces the overall None, so the flag
         only ever goes false — scheduling order cannot change the
         result, it only saves work after the verdict is known. *)
      let connected = Atomic.make true in
      let join a b =
        match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (f a b)
      in
      let best =
        Par.Pool.parallel_fold p ~lo:0 ~hi:nv ~init:None
          ~body:(fun ~worker v acc ->
            if (not (Atomic.get connected)) || not (live v) then acc
            else
              match ecc_of_run wss.(worker) ?alive csr ~src:v with
              | None ->
                  Atomic.set connected false;
                  acc
              | Some e -> join acc (Some e))
          ~combine:join
      in
      if Atomic.get connected then best else None
  | None ->
      let ws = Bfs.Workspace.create () in
      let best = ref None and ok = ref true in
      let v = ref 0 in
      while !ok && !v < nv do
        if live !v then begin
          match ecc_of_run ws ?alive csr ~src:!v with
          | None -> ok := false
          | Some e -> best := Some (match !best with None -> e | Some b -> f b e)
        end;
        incr v
      done;
      if !ok then !best else None

let diameter_csr ?pool ?alive csr = fold_ecc_csr ?pool ?alive csr max

let radius_csr ?pool ?alive csr = fold_ecc_csr ?pool ?alive csr min

let diameter ?pool ?alive g = diameter_csr ?pool ?alive (Csr.of_graph g)

let radius ?pool ?alive g = radius_csr ?pool ?alive (Csr.of_graph g)

let average_path_length ?alive g =
  let csr = Csr.of_graph g in
  check_mask_csr csr alive;
  let nv = Csr.n csr in
  let live = live_fun alive in
  let ws = Bfs.Workspace.create () in
  let total = ref 0 and pairs = ref 0 and ok = ref true in
  for src = 0 to nv - 1 do
    if !ok && live src then begin
      let dist = Bfs.csr_distances_into ws ?alive csr ~src in
      for v = 0 to nv - 1 do
        if live v && v <> src then begin
          let d = dist.(v) in
          if d < 0 then ok := false
          else begin
            total := !total + d;
            incr pairs
          end
        end
      done
    end
  done;
  if !ok && !pairs > 0 then Some (float_of_int !total /. float_of_int !pairs) else None

let diameter_lower_bound g ~seeds =
  if seeds = [] then invalid_arg "Paths.diameter_lower_bound: empty seeds";
  let csr = Csr.of_graph g in
  let ws = Bfs.Workspace.create () in
  List.fold_left
    (fun acc s ->
      match ecc_of_run ws csr ~src:s with
      | Some e -> max acc e
      | None -> invalid_arg "Paths.diameter_lower_bound: graph is disconnected")
    0 seeds
