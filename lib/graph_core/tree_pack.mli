(** Edge-disjoint spanning-tree packing from a frozen CSR snapshot.

    A k-connected LHG contains ⌊k/2⌋ edge-disjoint spanning trees
    (Nash-Williams/Tutte via k-edge-connectivity ≥ k); striping a chunk
    stream round-robin across them is the Kim–Srikant load-spreading
    move that converts the paper's structural guarantee into streaming
    delay. Packing is greedy BFS layer by layer, with a matroid-union
    augmenting-path repair pass when greedy stalls, so the advertised
    count is reached whenever it is feasible; on an infeasible count the
    packer backs off one tree at a time (a disconnected graph raises).

    Trees are stored as flat int arrays (parent/depth plus a CSR-style
    child index carrying the {!Csr.edge_index} slot of each parent→child
    link), so per-chunk forwarding touches contiguous memory and never
    allocates. Packings are deterministic: same snapshot, same source,
    same masks, same trees.

    {2 Masked packing and incremental re-striping}

    [?member] and [?usable] restrict a pack to a live subgraph of the
    snapshot: only member vertices are spanned and only edges whose
    both directed slots pass [usable] may be claimed. This is how one
    frozen CSR — say the union topology of an entire churn trace —
    hosts a pack for every epoch's membership. After the masks change,
    {!patch} re-stripes the existing pack instead of starting the
    search over: it drops the tree edges the new masks invalidate,
    reconnects each broken tree greedily through still-unowned usable
    edges (linear time when that suffices), finishes with the
    augmenting search seeded from the surviving assignment when it
    does not, and re-orients. [None] from [patch] means the tree count
    is no longer feasible under the new masks — fall back to a fresh
    masked {!pack}, which also backs the count off. *)

type t

val pack : ?count:int -> ?member:bool array -> ?usable:(int -> bool) -> Csr.t -> source:int -> t
(** [pack csr ~source] packs [count] (default {!default_count})
    edge-disjoint spanning trees rooted at [source]. Falls back to
    fewer trees if [count] is infeasible. With [?member] (length-n
    mask) only member vertices are spanned; with [?usable] (predicate
    on directed CSR slots, applied to both directions) only edges it
    accepts are claimed — the masked subgraph must be connected.
    @raise Invalid_argument on an empty graph or a disconnected
    (masked) subgraph, an out-of-range or non-member source, or
    [count < 1]. *)

val pack_all :
  ?pool:Par.Pool.t ->
  ?count:int ->
  ?member:bool array ->
  ?usable:(int -> bool) ->
  Csr.t ->
  sources:int list ->
  t array
(** One packing per source, in list order; [?pool] fans the (mutually
    independent) packings out across domains. Results are identical to
    the sequential ones at any pool size. *)

val patch : t -> Csr.t -> ?member:bool array -> ?usable:(int -> bool) -> unit -> t option
(** [patch t csr ~member ~usable ()] re-stripes [t] for new masks over
    the {e same} snapshot it was packed on: surviving tree edges keep
    their tree, invalidated ones are dropped, leavers fall out of the
    span, joiners are attached, and each tree's broken components are
    reconnected through edges no tree owns — greedily first, then by
    matroid-union augmentation from the surviving assignment when
    greedy strands a component — all in deterministic order, so equal
    masks give equal packs. The result spans the new member set with
    [count t] edge-disjoint trees, or is [None] when that count is
    infeasible under the new masks (caller should fall back to a fresh
    masked {!pack}, which backs the count off). A no-op mask change
    returns the pack physically unchanged.
    @raise Invalid_argument if [csr] has a different vertex count than
    the pack or the source is masked out. *)

val default_count : Csr.t -> int
(** ⌊min-degree/2⌋, floored at 1 — the paper's ⌊k/2⌋ when the snapshot
    is an admissible (n, k) LHG. *)

val source : t -> int

val count : t -> int
(** Number of trees actually packed (≤ requested). *)

val n : t -> int

val members : t -> int
(** Number of vertices each tree spans — [n t] for an unmasked pack. *)

val parent : t -> tree:int -> int -> int
(** Parent of a vertex in one tree; [-1] at the source (and at
    non-member vertices of a masked pack). *)

val depth : t -> tree:int -> int -> int

val max_depth : t -> tree:int -> int
(** Eccentricity of the source in one tree — a lower bound on that
    tree's worst-case uncongested delivery delay. *)

val iter_children : t -> tree:int -> node:int -> (child:int -> eidx:int -> unit) -> unit
(** Children in ascending order; [eidx] is the {!Csr.edge_index} slot of
    the directed (node → child) link, the key for per-link FIFO state. *)

val edges : t -> tree:int -> (int * int) list
(** The members−1 (parent, child) pairs of one tree, child-ascending. *)

(** Packings cached per (snapshot, source, count), keyed on physical
    snapshot identity like {!Overlay.Cert} — a new frozen topology
    invalidates everything, re-running a workload on the same snapshot
    reuses every tree. The silent snapshot-swap eviction that a
    controller commit triggers is observable: {!evictions} counts every
    entry ever discarded, and {!invalidate}/{!retarget} let the owner
    of a reconfiguring topology evict {e explicitly} instead of relying
    on the key check. Not thread-safe; callers serialise access. *)
module Cache : sig
  type pack = t

  type t

  val create : unit -> t

  val get : t -> ?count:int -> Csr.t -> source:int -> pack

  val get_all : ?pool:Par.Pool.t -> t -> ?count:int -> Csr.t -> sources:int list -> pack array
  (** Packings for [sources] in list order, computing the missing ones
      (in parallel under [?pool]). *)

  val invalidate : t -> unit
  (** Drop every cached packing (counted in {!evictions}); the cache
      keeps serving the same snapshot. For when the masks over a
      snapshot changed meaning even though the snapshot did not. *)

  val retarget : t -> Csr.t -> unit
  (** Point the cache at a new snapshot, discarding (and counting) all
      entries now — the explicit form of what the next [get] on a new
      snapshot would do silently. *)

  val evictions : t -> int
  (** Total entries ever discarded — by snapshot swaps, {!invalidate},
      or {!retarget}. A growing count under a supposedly stable
      topology is the cache-thrash signal {!Obs} dashboards watch. *)
end
