(** Edge-disjoint spanning-tree packing from a frozen CSR snapshot.

    A k-connected LHG contains ⌊k/2⌋ edge-disjoint spanning trees
    (Nash-Williams/Tutte via k-edge-connectivity ≥ k); striping a chunk
    stream round-robin across them is the Kim–Srikant load-spreading
    move that converts the paper's structural guarantee into streaming
    delay. Packing is greedy BFS layer by layer, with a matroid-union
    augmenting-path repair pass when greedy stalls, so the advertised
    count is reached whenever it is feasible; on an infeasible count the
    packer backs off one tree at a time (a disconnected graph raises).

    Trees are stored as flat int arrays (parent/depth plus a CSR-style
    child index carrying the {!Csr.edge_index} slot of each parent→child
    link), so per-chunk forwarding touches contiguous memory and never
    allocates. Packings are deterministic: same snapshot, same source,
    same trees. *)

type t

val pack : ?count:int -> Csr.t -> source:int -> t
(** [pack csr ~source] packs [count] (default {!default_count})
    edge-disjoint spanning trees rooted at [source]. Falls back to
    fewer trees if [count] is infeasible.
    @raise Invalid_argument on an empty or disconnected graph, an
    out-of-range source, or [count < 1]. *)

val pack_all : ?pool:Par.Pool.t -> ?count:int -> Csr.t -> sources:int list -> t array
(** One packing per source, in list order; [?pool] fans the (mutually
    independent) packings out across domains. Results are identical to
    the sequential ones at any pool size. *)

val default_count : Csr.t -> int
(** ⌊min-degree/2⌋, floored at 1 — the paper's ⌊k/2⌋ when the snapshot
    is an admissible (n, k) LHG. *)

val source : t -> int

val count : t -> int
(** Number of trees actually packed (≤ requested). *)

val n : t -> int

val parent : t -> tree:int -> int -> int
(** Parent of a vertex in one tree; [-1] at the source. *)

val depth : t -> tree:int -> int -> int

val max_depth : t -> tree:int -> int
(** Eccentricity of the source in one tree — a lower bound on that
    tree's worst-case uncongested delivery delay. *)

val iter_children : t -> tree:int -> node:int -> (child:int -> eidx:int -> unit) -> unit
(** Children in ascending order; [eidx] is the {!Csr.edge_index} slot of
    the directed (node → child) link, the key for per-link FIFO state. *)

val edges : t -> tree:int -> (int * int) list
(** The n−1 (parent, child) pairs of one tree, child-ascending. *)

(** Packings cached per (snapshot, source, count), keyed on physical
    snapshot identity like {!Overlay.Cert} — a new frozen topology
    invalidates everything, re-running a workload on the same snapshot
    reuses every tree. Not thread-safe; callers serialise access. *)
module Cache : sig
  type pack = t

  type t

  val create : unit -> t

  val get : t -> ?count:int -> Csr.t -> source:int -> pack

  val get_all : ?pool:Par.Pool.t -> t -> ?count:int -> Csr.t -> sources:int list -> pack array
  (** Packings for [sources] in list order, computing the missing ones
      (in parallel under [?pool]). *)
end
