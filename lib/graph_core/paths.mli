(** Distance aggregates: diameter, radius, average path length.

    All-pairs quantities run one BFS per vertex — O(n·m). Every entry
    point freezes the graph into one {!Csr.t} snapshot and sweeps it
    with a single reused {!Bfs.Workspace}, so the per-source cost is a
    flat-array BFS with no allocation; callers that already hold a
    snapshot can use the [_csr] variants to skip the freeze. *)

val diameter : ?alive:bool array -> Graph.t -> int option
(** Exact diameter (max over vertices of eccentricity), or [None] when
    the (alive part of the) graph is disconnected or empty. *)

val radius : ?alive:bool array -> Graph.t -> int option
(** Min eccentricity, with the same conventions as {!diameter}. *)

val average_path_length : ?alive:bool array -> Graph.t -> float option
(** Mean hop distance over all ordered pairs of distinct alive vertices,
    or [None] when disconnected or fewer than two alive vertices. *)

val eccentricities : ?alive:bool array -> Graph.t -> int option array
(** Per-vertex eccentricity ([None] for dead vertices or when some alive
    vertex is unreachable from that vertex). *)

val diameter_lower_bound : Graph.t -> seeds:int list -> int
(** Cheap lower bound: max eccentricity over the given BFS seed
    vertices. Useful to confirm "linear diameter" on very large graphs
    without n BFS passes. Requires a connected graph and non-empty
    seeds. *)

val diameter_csr : ?alive:bool array -> Csr.t -> int option
(** {!diameter} over an existing snapshot. *)

val radius_csr : ?alive:bool array -> Csr.t -> int option

val eccentricities_csr : ?alive:bool array -> Csr.t -> int option array
