(** Distance aggregates: diameter, radius, average path length.

    All-pairs quantities run one BFS per vertex — O(n·m). Every entry
    point freezes the graph into one {!Csr.t} snapshot and sweeps it
    with a single reused {!Bfs.Workspace}, so the per-source cost is a
    flat-array BFS with no allocation; callers that already hold a
    snapshot can use the [_csr] variants to skip the freeze.

    The sweep entry points also take [?pool]: per-source BFS passes are
    independent reads of the immutable snapshot, so with a
    {!Par.Pool.t} they fan out across domains (one workspace per
    domain). Results are identical to the sequential sweep at any
    domain count; omitting [pool] (or passing a 1-domain pool) runs the
    original sequential code. *)

val diameter : ?pool:Par.Pool.t -> ?alive:bool array -> Graph.t -> int option
(** Exact diameter (max over vertices of eccentricity), or [None] when
    the (alive part of the) graph is disconnected or empty. *)

val radius : ?pool:Par.Pool.t -> ?alive:bool array -> Graph.t -> int option
(** Min eccentricity, with the same conventions as {!diameter}. *)

val average_path_length : ?alive:bool array -> Graph.t -> float option
(** Mean hop distance over all ordered pairs of distinct alive vertices,
    or [None] when disconnected or fewer than two alive vertices. *)

val eccentricities : ?pool:Par.Pool.t -> ?alive:bool array -> Graph.t -> int option array
(** Per-vertex eccentricity ([None] for dead vertices or when some alive
    vertex is unreachable from that vertex). *)

val diameter_lower_bound : Graph.t -> seeds:int list -> int
(** Cheap lower bound: max eccentricity over the given BFS seed
    vertices. Useful to confirm "linear diameter" on very large graphs
    without n BFS passes. Requires a connected graph and non-empty
    seeds. *)

val diameter_csr : ?pool:Par.Pool.t -> ?alive:bool array -> Csr.t -> int option
(** {!diameter} over an existing snapshot. *)

val radius_csr : ?pool:Par.Pool.t -> ?alive:bool array -> Csr.t -> int option

val eccentricities_csr : ?pool:Par.Pool.t -> ?alive:bool array -> Csr.t -> int option array
