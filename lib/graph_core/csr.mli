(** Immutable compressed-sparse-row adjacency snapshots.

    {!Graph.t} is the mutable build-side representation: adjacency sets
    make edge insertion/removal simple and keep iteration deterministic,
    but every neighbour visit pays O(log d) pointer chasing. A [Csr.t]
    freezes a graph into two flat arrays — row [offsets] and a
    concatenated, per-row-sorted [neighbors] stream — so traversals
    (BFS, flooding, flow-network construction) run over contiguous
    memory with O(1) neighbour access and zero allocation.

    Two storage backends carry those arrays:

    - [Ints] — plain [int array]s on the OCaml heap, the default;
    - [Big] — [Bigarray] arrays outside the OCaml heap, so multi-million
      entry adjacency never inflates major-GC marking work. Pick it with
      [~big:true] at construction ({!of_graph}, {!Builder.create}).

    A snapshot is a value: it never observes later mutations of the
    source graph. Re-run {!of_graph} after the edge set changes.
    Neighbour iteration order is ascending, identical to {!Graph}'s,
    whatever the backend. *)

type bigints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type storage =
  | Ints of { offsets : int array; neighbors : int array }
  | Big of { offsets : bigints; neighbors : bigints }
      (** Row [v] occupies indices [offsets.(v) .. offsets.(v+1) - 1] of
          [neighbors] in either backend. {b Do not mutate.} *)

type t

val of_graph : ?big:bool -> Graph.t -> t
(** Freeze the current edge set of a graph. O(n + m). [~big] (default
    false) selects the off-heap Bigarray backend. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val storage : t -> storage
(** The raw backing arrays, for flat hot loops (BFS, flow construction,
    benchmarks) that want to specialise per backend. {b Do not
    mutate.} *)

val is_bigarray : t -> bool

val degree : t -> int -> int
(** O(1): [offsets.(v+1) - offsets.(v)]. *)

val neighbors : t -> int -> int list
(** Ascending list of neighbours (allocates; prefer the iterators). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Visit neighbours in ascending order. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val mem_edge : t -> int -> int -> bool
(** Edge membership by binary search within the row: O(log d). *)

val edge_index : t -> int -> int -> int
(** The slot index of the directed edge (u,v) inside the concatenated
    neighbour stream, or [-1] if absent — O(log d). Every directed edge
    owns one dense slot in [\[0, degree_sum)], which makes the result
    the natural key for per-link state (capacities, FIFO queues) kept
    in flat arrays alongside the snapshot. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge exactly once, as [u < v], lexicographically. *)

val offsets : t -> int array
(** The raw row-offset array of an [Ints] snapshot, length [n + 1].
    {b Do not mutate.}
    @raise Invalid_argument on a Bigarray-backed snapshot — hot loops
    that must handle both backends match on {!storage} instead. *)

val neighbor_array : t -> int array
(** The raw concatenated neighbour stream of an [Ints] snapshot, length
    [2m], each row sorted ascending. {b Do not mutate.}
    @raise Invalid_argument on a Bigarray-backed snapshot. *)

val degree_sum : t -> int
(** Sum of degrees = [2 * m]. O(1). *)

(** Direct CSR construction, skipping the Set-backed {!Graph.t}
    entirely — the path that makes million-node topologies cheap.
    Callers enumerate their edges twice:

    {[
      let b = Csr.Builder.create ~n () in
      iter_edges (Csr.Builder.count_edge b);
      Csr.Builder.ready b;
      iter_edges (Csr.Builder.add_edge b);
      let csr = Csr.Builder.finish b
    ]}

    Both passes must produce the same multiset of edges (checked), with
    no self-loops and no duplicates (checked at {!Builder.finish}). *)
module Builder : sig
  type csr = t

  type t

  val create : ?big:bool -> n:int -> unit -> t
  (** A builder for an [n]-vertex graph; [~big] picks the backend of the
      finished snapshot. *)

  val count_edge : t -> int -> int -> unit
  (** Phase 1: account one undirected edge (both endpoint degrees). *)

  val ready : t -> unit
  (** Close the counting phase: prefix-sums the offsets and allocates
      the neighbour store. *)

  val add_edge : t -> int -> int -> unit
  (** Phase 2: place one undirected edge (both directions). *)

  val finish : t -> csr
  (** Sort each row ascending (insertion sort — rows are short for the
      bounded-degree constructions this serves) and seal the snapshot.
      @raise Invalid_argument if the fill phase did not replay the
      counting phase exactly, or on a duplicate edge. *)
end
