(** Immutable compressed-sparse-row adjacency snapshots.

    {!Graph.t} is the mutable build-side representation: adjacency sets
    make edge insertion/removal simple and keep iteration deterministic,
    but every neighbour visit pays O(log d) pointer chasing. A [Csr.t]
    freezes a graph into two flat [int array]s — row [offsets] and a
    concatenated, per-row-sorted [neighbors] stream — so traversals
    (BFS, flooding, flow-network construction) run over contiguous
    memory with O(1) neighbour access and zero allocation.

    A snapshot is a value: it never observes later mutations of the
    source graph. Re-run {!of_graph} after the edge set changes.
    Neighbour iteration order is ascending, identical to {!Graph}'s. *)

type t

val of_graph : Graph.t -> t
(** Freeze the current edge set of a graph. O(n + m). *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int
(** O(1): [offsets.(v+1) - offsets.(v)]. *)

val neighbors : t -> int -> int list
(** Ascending list of neighbours (allocates; prefer the iterators). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Visit neighbours in ascending order. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val mem_edge : t -> int -> int -> bool
(** Edge membership by binary search within the row: O(log d). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge exactly once, as [u < v], lexicographically. *)

val offsets : t -> int array
(** The raw row-offset array, length [n + 1]: row [v] occupies indices
    [offsets.(v) .. offsets.(v+1) - 1] of {!neighbor_array}. Exposed for
    flat hot loops (BFS, flow construction, benchmarks). {b Do not
    mutate.} *)

val neighbor_array : t -> int array
(** The raw concatenated neighbour stream, length [2m], each row sorted
    ascending. {b Do not mutate.} *)

val degree_sum : t -> int
(** Sum of degrees = [2 * m]. O(1). *)
