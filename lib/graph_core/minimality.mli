(** Link minimality (LHG property P3).

    A k-connected graph is link-minimal when removing any single edge
    lowers its node or link connectivity below k. Given λ(G) ≥ k and
    κ(G) ≥ k, removing e = (u,v) creates a sub-k cut iff that cut
    separates u from t = v (any other cut would already exist in G), so
    a local flow test at the endpoints of the removed edge is exact.

    The per-edge tests are independent (each builds its own
    edge-deleted copy and flow networks), so the sweep entry points
    take [?pool] and distribute edges across domains; answers are
    identical at any domain count. *)

val edge_is_critical : Graph.t -> k:int -> int -> int -> bool
(** [edge_is_critical g ~k u v]: does removing edge (u,v) drop
    λ(u,v) or κ(u,v) in [g - (u,v)] below [k]? Requires the edge to be
    present. *)

val is_link_minimal : ?pool:Par.Pool.t -> Graph.t -> k:int -> bool
(** Every edge is critical. O(m) local flow computations. *)

val non_critical_edges : ?pool:Par.Pool.t -> Graph.t -> k:int -> (int * int) list
(** The edges whose removal keeps both connectivities ≥ k — empty iff
    {!is_link_minimal}. Edge order matches {!Graph.iter_edges}
    regardless of [pool]. Useful diagnostics in tests and in the
    verifier's error reports. *)
