(* Both extractors run a unit-capacity max-flow, then decompose the flow
   into arc-disjoint s→t paths. Antiparallel unit flows (u→v and v→u both
   carrying flow through distinct directional arcs) are cancelled first —
   they form a 2-cycle that contributes nothing to the s→t value. The
   decomposition then follows successor lists, consuming one flow unit
   per step; acyclicity of what remains guarantees termination. *)

(* successor multiset: node -> mutable list of flow successors *)
let build_succ n_nodes net =
  let flow_tbl = Hashtbl.create 256 in
  let key u v = (u * n_nodes) + v in
  Maxflow.iter_flow_arcs net (fun ~src ~dst ~flow ->
      let k = key src dst in
      Hashtbl.replace flow_tbl k (flow + Option.value ~default:0 (Hashtbl.find_opt flow_tbl k)));
  (* Cancel antiparallel flow. *)
  let succ = Array.make n_nodes [] in
  Hashtbl.iter
    (fun k f ->
      let u = k / n_nodes and v = k mod n_nodes in
      let back = Option.value ~default:0 (Hashtbl.find_opt flow_tbl (key v u)) in
      let net_f = f - back in
      if net_f > 0 then
        for _ = 1 to net_f do
          succ.(u) <- v :: succ.(u)
        done)
    flow_tbl;
  succ

let peel_paths succ ~s ~t ~count =
  let take u =
    match succ.(u) with
    | v :: rest ->
        succ.(u) <- rest;
        Some v
    | [] -> None
  in
  let rec walk u acc =
    if u = t then List.rev (t :: acc)
    else
      match take u with
      | Some v -> walk v (u :: acc)
      | None -> invalid_arg "Menger: flow decomposition failed (internal error)"
  in
  List.init count (fun _ -> walk s [])

(* Drop loops from a walk: on revisiting a vertex, discard the cycle in
   between. Only removes edges, so pairwise edge-disjointness is kept. *)
let simplify_walk walk =
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest ->
        if List.mem v acc then
          let rec unwind = function
            | w :: tl when w <> v -> unwind tl
            | tl -> tl
          in
          go (unwind acc) rest
        else go (v :: acc) rest
  in
  go [] walk

let edge_disjoint_paths ?limit g ~s ~t =
  if s = t then invalid_arg "Menger.edge_disjoint_paths: s = t";
  let net = Connectivity.edge_flow_network g in
  let flow = Maxflow.max_flow ?limit net ~s ~t in
  let succ = build_succ (Graph.n g) net in
  List.map simplify_walk (peel_paths succ ~s ~t ~count:flow)

let vertex_disjoint_paths ?limit g ~s ~t =
  if s = t then invalid_arg "Menger.vertex_disjoint_paths: s = t";
  let direct = Graph.has_edge g s t in
  let work = if direct then Graph.without_edge g s t else g in
  let limit' = if direct then Option.map (fun l -> max 0 (l - 1)) limit else limit in
  let net, v_in, v_out = Connectivity.vertex_split_network work in
  let flow = Maxflow.max_flow ?limit:limit' net ~s:(v_out s) ~t:(v_in t) in
  let succ = build_succ (2 * Graph.n work) net in
  let split_paths = peel_paths succ ~s:(v_out s) ~t:(v_in t) ~count:flow in
  (* A split-network path alternates v_out → w_in → w_out → ...; original
     vertices are the in-nodes (even ids) halved, prefixed by s. *)
  (* in-nodes are the even split ids: [v_in v = 2v]. *)
  let unsplit p = s :: List.filter_map (fun node -> if node mod 2 = 0 then Some (node / 2) else None) p in
  let paths = List.map unsplit split_paths in
  if direct then [ s; t ] :: paths else paths

let fan_paths ?limit g ~sources ~t =
  let n = Graph.n g in
  if t < 0 || t >= n then invalid_arg "Menger.fan_paths: t out of range";
  if List.exists (fun s -> s < 0 || s >= n) sources then
    invalid_arg "Menger.fan_paths: source out of range";
  if List.mem t sources then invalid_arg "Menger.fan_paths: t among sources";
  if List.length (List.sort_uniq compare sources) <> List.length sources then
    invalid_arg "Menger.fan_paths: duplicate source";
  (* Vertex-split unit network plus one super-source. Arcs super → s_in
     consume each source's own split arc, so every source lies on at most
     one path and never appears as an internal vertex of another; the
     sink is t_in, so paths may share only t. *)
  let v_in v = 2 * v and v_out v = (2 * v) + 1 in
  let super = 2 * n in
  let net = Maxflow.Net.create ~n:((2 * n) + 1) in
  for v = 0 to n - 1 do
    Maxflow.Net.add_arc net ~src:(v_in v) ~dst:(v_out v) ~cap:1
  done;
  Graph.iter_edges g (fun u v ->
      Maxflow.Net.add_arc net ~src:(v_out u) ~dst:(v_in v) ~cap:1;
      Maxflow.Net.add_arc net ~src:(v_out v) ~dst:(v_in u) ~cap:1);
  List.iter (fun s -> Maxflow.Net.add_arc net ~src:super ~dst:(v_in s) ~cap:1) sources;
  let flow = Maxflow.max_flow ?limit net ~s:super ~t:(v_in t) in
  let succ = build_succ ((2 * n) + 1) net in
  let split_paths = peel_paths succ ~s:super ~t:(v_in t) ~count:flow in
  (* Original vertices are the in-nodes (even ids) halved; drop super. *)
  List.map
    (fun p ->
      List.filter_map
        (fun node -> if node <> super && node mod 2 = 0 then Some (node / 2) else None)
        p)
    split_paths

let check_edge_disjoint paths =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun p ->
      let rec walk = function
        | u :: (v :: _ as rest) ->
            let e = (min u v, max u v) in
            if Hashtbl.mem seen e then ok := false else Hashtbl.add seen e ();
            walk rest
        | [ _ ] | [] -> ()
      in
      walk p)
    paths;
  !ok

let check_internally_disjoint ~s ~t paths =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun p ->
      (match p with
      | first :: _ when first = s -> ()
      | _ -> ok := false);
      (match List.rev p with
      | last :: _ when last = t -> ()
      | _ -> ok := false);
      List.iter
        (fun v ->
          if v <> s && v <> t then
            if Hashtbl.mem seen v then ok := false else Hashtbl.add seen v ())
        p)
    paths;
  !ok
