module Net = struct
  (* Arc i and its reverse are stored at indices 2j and 2j+1, so the
     reverse of arc a is [a lxor 1]. Per-node incidence is an intrusive
     linked list over two flat arrays: [first.(v)] is the most recently
     added arc out of [v] (-1 when none) and [nexts.(a)] chains to the
     previously added one — the same reverse-insertion iteration order
     the earlier list-based representation produced, with no boxing and
     nothing to freeze before a flow run. *)
  type t = {
    n : int;
    mutable heads : int array; (* arc -> destination node *)
    mutable caps : int array; (* arc -> remaining capacity *)
    mutable orig_caps : int array;
    mutable nexts : int array; (* arc -> next arc out of the same node *)
    first : int array; (* node -> first arc index, -1 when none *)
    mutable arc_count : int;
  }

  let create_sized ~n ~arc_capacity =
    if n <= 0 then invalid_arg "Maxflow.Net.create";
    let cap = max 16 arc_capacity in
    {
      n;
      heads = Array.make cap 0;
      caps = Array.make cap 0;
      orig_caps = Array.make cap 0;
      nexts = Array.make cap (-1);
      first = Array.make n (-1);
      arc_count = 0;
    }

  let create ~n = create_sized ~n ~arc_capacity:16

  let node_count net = net.n

  let ensure net needed =
    let capn = Array.length net.heads in
    if needed > capn then begin
      let ncap = max needed (2 * capn) in
      let grow fill a = Array.append a (Array.make (ncap - Array.length a) fill) in
      net.heads <- grow 0 net.heads;
      net.caps <- grow 0 net.caps;
      net.orig_caps <- grow 0 net.orig_caps;
      net.nexts <- grow (-1) net.nexts
    end

  let add_arc net ~src ~dst ~cap =
    if src < 0 || src >= net.n || dst < 0 || dst >= net.n then
      invalid_arg "Maxflow.Net.add_arc: node out of range";
    if cap < 0 then invalid_arg "Maxflow.Net.add_arc: negative capacity";
    ensure net (net.arc_count + 2);
    let a = net.arc_count in
    net.heads.(a) <- dst;
    net.caps.(a) <- cap;
    net.orig_caps.(a) <- cap;
    net.heads.(a + 1) <- src;
    net.caps.(a + 1) <- 0;
    net.orig_caps.(a + 1) <- 0;
    net.nexts.(a) <- net.first.(src);
    net.first.(src) <- a;
    net.nexts.(a + 1) <- net.first.(dst);
    net.first.(dst) <- a + 1;
    net.arc_count <- net.arc_count + 2

  let add_edge_bidir net u v ~cap =
    add_arc net ~src:u ~dst:v ~cap;
    add_arc net ~src:v ~dst:u ~cap

  let reset_flow net = Array.blit net.orig_caps 0 net.caps 0 net.arc_count
end

let infinity_cap = max_int / 4

let max_flow ?(limit = infinity_cap) (net : Net.t) ~s ~t =
  if s = t then invalid_arg "Maxflow.max_flow: s = t";
  if s < 0 || s >= net.Net.n || t < 0 || t >= net.Net.n then
    invalid_arg "Maxflow.max_flow: node out of range";
  let nn = net.Net.n in
  let heads = net.Net.heads and caps = net.Net.caps in
  let first = net.Net.first and nexts = net.Net.nexts in
  let level = Array.make nn (-1) in
  (* [iter.(u)] is the next arc of u to try in the current phase — the
     current-arc optimisation, holding arc ids directly. *)
  let iter = Array.make nn (-1) in
  let queue = Array.make nn 0 in
  let build_levels () =
    Array.fill level 0 nn (-1);
    level.(s) <- 0;
    queue.(0) <- s;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let lv = level.(u) + 1 in
      let a = ref first.(u) in
      while !a >= 0 do
        let v = heads.(!a) in
        if caps.(!a) > 0 && level.(v) < 0 then begin
          level.(v) <- lv;
          queue.(!tail) <- v;
          incr tail
        end;
        a := nexts.(!a)
      done
    done;
    level.(t) >= 0
  in
  let rec dfs u pushed =
    if u = t then pushed
    else begin
      let res = ref 0 in
      while !res = 0 && iter.(u) >= 0 do
        let a = iter.(u) in
        let v = heads.(a) in
        if caps.(a) > 0 && level.(v) = level.(u) + 1 then begin
          let d = dfs v (min pushed caps.(a)) in
          if d > 0 then begin
            caps.(a) <- caps.(a) - d;
            caps.(a lxor 1) <- caps.(a lxor 1) + d;
            res := d
          end
          else iter.(u) <- nexts.(a)
        end
        else iter.(u) <- nexts.(a)
      done;
      !res
    end
  in
  let flow = ref 0 in
  let continue = ref true in
  while !continue && !flow < limit && build_levels () do
    Array.blit first 0 iter 0 nn;
    let pushed = ref (dfs s (limit - !flow)) in
    while !pushed > 0 do
      flow := !flow + !pushed;
      pushed := if !flow < limit then dfs s (limit - !flow) else 0
    done;
    if !pushed = 0 && !flow >= limit then continue := false
  done;
  !flow

let iter_flow_arcs (net : Net.t) f =
  let a = ref 0 in
  while !a < net.Net.arc_count do
    (* Forward arcs sit at even indices; flow = original - residual. *)
    let flow = net.Net.orig_caps.(!a) - net.Net.caps.(!a) in
    if flow > 0 then begin
      let src = net.Net.heads.(!a + 1) and dst = net.Net.heads.(!a) in
      f ~src ~dst ~flow
    end;
    a := !a + 2
  done

let min_cut_side (net : Net.t) ~s =
  let seen = Array.make net.Net.n false in
  let queue = Array.make net.Net.n 0 in
  seen.(s) <- true;
  queue.(0) <- s;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let a = ref net.Net.first.(u) in
    while !a >= 0 do
      let v = net.Net.heads.(!a) in
      if net.Net.caps.(!a) > 0 && not seen.(v) then begin
        seen.(v) <- true;
        queue.(!tail) <- v;
        incr tail
      end;
      a := net.Net.nexts.(!a)
    done
  done;
  seen
