(** Simple undirected graphs on vertices [0..n-1].

    The vertex set is fixed at creation; edges are mutable. Self-loops
    and parallel edges are rejected, matching the simple-graph setting of
    Harary/LHG theory. Adjacency is stored as integer sets, giving
    O(log d) membership tests and deterministic (ascending) neighbour
    iteration order — important for reproducible simulations. *)

type t

val create : n:int -> t
(** [create ~n] is the edgeless graph on [n >= 0] vertices. *)

val append_vertex : t -> int
(** Add one isolated vertex and return its id (= previous [n]).
    Amortised O(1). *)

val pop_vertex : t -> unit
(** Remove the highest-numbered vertex, which must be isolated
    (degree 0) — the inverse of {!append_vertex}.
    @raise Invalid_argument on an empty graph or a non-isolated last
    vertex. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the undirected edge [{u,v}]. Idempotent.
    @raise Invalid_argument on self-loops or out-of-range vertices. *)

val remove_edge : t -> int -> int -> unit
(** Remove the edge if present; no-op otherwise. *)

val has_edge : t -> int -> int -> bool

val degree : t -> int -> int

val neighbors : t -> int -> int list
(** Ascending list of neighbours. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterate neighbours in ascending order without allocating a list. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge visited exactly once, as [u < v], in
    lexicographic order. *)

val edges : t -> (int * int) list
(** All edges as [u < v] pairs, lexicographically sorted. *)

val of_edges : n:int -> (int * int) list -> t
(** Build a graph from an edge list (duplicates ignored). *)

val copy : t -> t

val without_edge : t -> int -> int -> t
(** Fresh copy with one edge removed. *)

val without_vertices : t -> int list -> t
(** Fresh copy (same vertex numbering) with all edges incident to the
    given vertices removed — the standard "node crash" view in which
    removed vertices remain as isolated placeholders. *)

val degree_sum : t -> int
(** Sum of degrees over all vertices; equals [2 * m g] by the handshake
    lemma. Exposed for cheap invariant checks in tests. *)

val is_symmetric : t -> bool
(** Internal-consistency check: adjacency is symmetric. Always [true]
    unless the representation was corrupted; used by tests.
    Short-circuits on the first asymmetric pair. *)

val equal : t -> t -> bool
(** Same vertex count and same edge set. Short-circuits on the first
    differing adjacency row. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary ["graph(n=.., m=..)"]. *)
