module Workspace = struct
  (* Arrays are grown to the largest graph seen and never shrunk; only
     the first [Csr.n csr] entries are meaningful after a run. *)
  type t = { mutable dist : int array; mutable parent : int array; mutable queue : int array }

  let create () = { dist = [||]; parent = [||]; queue = [||] }

  let ensure ws nv =
    if Array.length ws.dist < nv then begin
      ws.dist <- Array.make nv (-1);
      ws.parent <- Array.make nv (-1);
      ws.queue <- Array.make nv 0
    end
end

let check_alive g alive =
  match alive with
  | None -> fun _ -> true
  | Some a ->
      if Array.length a <> Graph.n g then invalid_arg "Bfs: alive mask has wrong length";
      fun v -> a.(v)

let distances_and_parents ?alive g ~src =
  let nv = Graph.n g in
  let live = check_alive g alive in
  if src < 0 || src >= nv then invalid_arg "Bfs: source out of range";
  if not (live src) then invalid_arg "Bfs: source is not alive";
  let dist = Array.make nv (-1) in
  let parent = Array.make nv (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v ->
        if live v && dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v q
        end)
  done;
  (dist, parent)

let distances ?alive g ~src = fst (distances_and_parents ?alive g ~src)

let path ?alive g ~src ~dst =
  let dist, parent = distances_and_parents ?alive g ~src in
  if dst < 0 || dst >= Graph.n g then invalid_arg "Bfs.path: dst out of range";
  if dist.(dst) < 0 then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end

let eccentricity ?alive g ~src =
  let live = check_alive g alive in
  let dist = distances ?alive g ~src in
  let ecc = ref 0 and complete = ref true in
  Array.iteri
    (fun v d ->
      if live v then if d < 0 then complete := false else if d > !ecc then ecc := d)
    dist;
  if !complete then Some !ecc else None

let reachable_count ?alive g ~src =
  let dist = distances ?alive g ~src in
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 dist

(* CSR fast path: flat arrays, an int queue with head/tail cursors (BFS
   enqueues each vertex at most once, so no wrap-around is needed), and
   no per-visit closure in the common no-mask case. *)

let csr_run ws ?alive csr ~src =
  let nv = Csr.n csr in
  (match alive with
  | Some a when Array.length a <> nv -> invalid_arg "Bfs: alive mask has wrong length"
  | _ -> ());
  if src < 0 || src >= nv then invalid_arg "Bfs: source out of range";
  (match alive with
  | Some a when not a.(src) -> invalid_arg "Bfs: source is not alive"
  | _ -> ());
  Workspace.ensure ws nv;
  let dist = ws.Workspace.dist and parent = ws.Workspace.parent and queue = ws.Workspace.queue in
  Array.fill dist 0 nv (-1);
  Array.fill parent 0 nv (-1);
  let head = ref 0 and tail = ref 1 in
  dist.(src) <- 0;
  queue.(0) <- src;
  (* the loop is written out once per (storage, mask) combination so the
     hot path reads its arrays without per-visit dispatch or closures *)
  (match Csr.storage csr, alive with
  | Csr.Ints { offsets = off; neighbors = nbr }, None ->
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        let du1 = dist.(u) + 1 in
        for i = off.(u) to off.(u + 1) - 1 do
          let v = nbr.(i) in
          if dist.(v) < 0 then begin
            dist.(v) <- du1;
            parent.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end
        done
      done
  | Csr.Ints { offsets = off; neighbors = nbr }, Some a ->
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        let du1 = dist.(u) + 1 in
        for i = off.(u) to off.(u + 1) - 1 do
          let v = nbr.(i) in
          if dist.(v) < 0 && a.(v) then begin
            dist.(v) <- du1;
            parent.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end
        done
      done
  | Csr.Big { offsets = off; neighbors = nbr }, None ->
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        let du1 = dist.(u) + 1 in
        for i = Bigarray.Array1.unsafe_get off u to Bigarray.Array1.unsafe_get off (u + 1) - 1 do
          let v = Bigarray.Array1.unsafe_get nbr i in
          if dist.(v) < 0 then begin
            dist.(v) <- du1;
            parent.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end
        done
      done
  | Csr.Big { offsets = off; neighbors = nbr }, Some a ->
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        let du1 = dist.(u) + 1 in
        for i = Bigarray.Array1.unsafe_get off u to Bigarray.Array1.unsafe_get off (u + 1) - 1 do
          let v = Bigarray.Array1.unsafe_get nbr i in
          if dist.(v) < 0 && a.(v) then begin
            dist.(v) <- du1;
            parent.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end
        done
      done)

let csr_distances_into ws ?alive csr ~src =
  csr_run ws ?alive csr ~src;
  ws.Workspace.dist

let csr_distances ?alive csr ~src =
  (* A fresh workspace is sized exactly to the graph, so its arrays can
     be handed out directly. *)
  let ws = Workspace.create () in
  csr_run ws ?alive csr ~src;
  ws.Workspace.dist

let csr_distances_and_parents ?alive csr ~src =
  let ws = Workspace.create () in
  csr_run ws ?alive csr ~src;
  (ws.Workspace.dist, ws.Workspace.parent)
