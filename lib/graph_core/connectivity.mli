(** Vertex and edge connectivity via unit-capacity max-flow.

    Local (pairwise) connectivities follow Menger's theorem:
    - λ(s,t) = max number of edge-disjoint s–t paths = max-flow with
      bidirectional unit arcs;
    - κ(s,t) = max number of internally vertex-disjoint s–t paths =
      max-flow on the vertex-split network (each vertex v becomes
      v_in → v_out with capacity 1; s and t are not split).

    Global values:
    - λ(G) = min over t ≠ v₀ of λ(v₀, t), because every edge cut
      separates v₀ from some vertex;
    - κ(G) = min over s ∈ {v} ∪ N(v) (v a minimum-degree vertex) and t
      non-adjacent to s of κ(s,t). Correctness: a minimum vertex cut C
      has |C| = κ(G) ≤ δ(G) = |N(v)| < |{v} ∪ N(v)|, so some
      w ∈ {v} ∪ N(v) avoids C and lies in one component of G − C; any
      vertex t of another component is non-adjacent to w and
      κ(w,t) = κ(G). Complete graphs (no non-adjacent pair) have
      κ(Kₙ) = n − 1 by convention.

    Decision forms cut each flow computation off at [k] and are the ones
    used by the LHG verifier. They take [?pool]: the (s,t) probes of a
    decision are independent fixed-limit maxflows over the immutable
    snapshot, so a {!Par.Pool.t} distributes them across domains with
    one private flow network per domain — same verdict at any domain
    count. (The exact-value searches keep their sequential
    shrinking-limit loops.) *)

val local_edge_connectivity : ?limit:int -> Graph.t -> s:int -> t:int -> int
(** λ(s,t); with [~limit] the returned value is capped at [limit]. *)

val local_vertex_connectivity : ?limit:int -> Graph.t -> s:int -> t:int -> int
(** κ(s,t) for non-adjacent s ≠ t. For adjacent s,t the function returns
    [1 + κ'(s,t)] where κ' is computed in the graph without the edge —
    the standard extension (the direct edge is one path). *)

val edge_connectivity : Graph.t -> int
(** Exact λ(G); 0 for disconnected or single-vertex graphs. *)

val vertex_connectivity : Graph.t -> int
(** Exact κ(G); [n-1] for complete graphs, 0 when disconnected. *)

val is_k_edge_connected : ?pool:Par.Pool.t -> Graph.t -> k:int -> bool
(** Decision: λ(G) ≥ k, with flows cut off at [k]. [k = 0] is trivially
    true for non-empty graphs. *)

val is_k_vertex_connected : ?pool:Par.Pool.t -> Graph.t -> k:int -> bool
(** Decision: κ(G) ≥ k (requires n ≥ k+1 for k ≥ 1, per the standard
    definition). *)

val min_edge_cut : Graph.t -> (int * int) list
(** An actual minimum edge cut: λ(G) edges whose removal disconnects G
    (empty when G is already disconnected or has ≤ 1 vertex). *)

val min_vertex_cut : Graph.t -> int list
(** An actual minimum vertex cut: κ(G) vertices whose removal
    disconnects G. Empty when G is complete (no vertex cut exists) or
    already disconnected. Useful for pinpointing the weak spots of a
    topology — e.g. which peers an adversary must crash. *)

val edge_flow_network : Graph.t -> Maxflow.Net.t
(** The reusable bidirectional unit network of a graph (one node per
    vertex). Exposed for callers issuing many (s,t) queries. *)

val vertex_split_network : Graph.t -> Maxflow.Net.t * (int -> int) * (int -> int)
(** [(net, v_in, v_out)]: the vertex-split unit network. Terminal
    vertices of a κ(s,t) query must use [v_out s] as source and
    [v_in t] as sink; the splitting arc of s and t is effectively
    bypassed because flow leaves from s_out and enters t_in. *)

(** {2 CSR variants}

    The [Graph.t] functions above snapshot the graph once and delegate
    to these; callers that already hold a {!Csr.t} (e.g. the LHG
    verifier, which runs several connectivity checks over one frozen
    topology) should use them directly. Networks are built in one pass
    with exact arc preallocation. *)

val edge_flow_network_csr : Csr.t -> Maxflow.Net.t

val vertex_split_network_csr : Csr.t -> Maxflow.Net.t * (int -> int) * (int -> int)

val edge_connectivity_csr : Csr.t -> int

val vertex_connectivity_csr : Csr.t -> int

val is_k_edge_connected_csr : ?pool:Par.Pool.t -> Csr.t -> k:int -> bool

val is_k_vertex_connected_csr : ?pool:Par.Pool.t -> Csr.t -> k:int -> bool
