(** Constructive Menger: extract maximum families of disjoint paths.

    Beyond the numeric connectivity values of {!Connectivity}, these
    functions return the actual paths — the objects a flooding protocol
    relies on (each failure can kill at most one path of the family). *)

val edge_disjoint_paths : ?limit:int -> Graph.t -> s:int -> t:int -> int list list
(** A maximum (or [limit]-capped) family of pairwise edge-disjoint s–t
    paths, each given as the full vertex sequence [s; ...; t]. *)

val vertex_disjoint_paths : ?limit:int -> Graph.t -> s:int -> t:int -> int list list
(** A maximum (or capped) family of internally vertex-disjoint s–t paths.
    When s and t are adjacent, the direct edge [\[s; t\]] is one of the
    returned paths. *)

val fan_paths : ?limit:int -> Graph.t -> sources:int list -> t:int -> int list list
(** A maximum (or capped) family of paths, each from a *distinct* member
    of [sources] to [t], pairwise vertex-disjoint except at [t] (a
    "fan" rooted at [t]). Each path reads [s_i; ...; t]. At most
    [List.length sources] paths exist; the certificate cache caps with
    [~limit:k] for its k-fan probes.
    @raise Invalid_argument on duplicate sources, out-of-range vertices,
    or [t] listed among the sources. *)

val check_edge_disjoint : int list list -> bool
(** [true] iff no undirected edge appears in two paths. Test helper. *)

val check_internally_disjoint : s:int -> t:int -> int list list -> bool
(** [true] iff no vertex other than [s], [t] appears in two paths, and
    every path starts at [s] and ends at [t]. Test helper. *)
