(* One mutex/condvar pair drives the whole pool: jobs are rare (one per
   parallel section) and coarse, so handoff cost is irrelevant next to
   the work; what matters is that workers park in [Condition.wait]
   between jobs instead of spinning. Intra-job distribution uses an
   atomic chunk cursor — claiming a chunk is one fetch-and-add. *)

type job = worker:int -> unit

type t = {
  size : int;
  mutex : Mutex.t;
  start : Condition.t;  (* signalled when [epoch] advances or [stop] flips *)
  finished : Condition.t;  (* signalled when [pending] hits 0 *)
  mutable epoch : int;  (* job generation counter *)
  mutable job : job option;
  mutable pending : int;  (* workers still inside the current job *)
  mutable failure : exn option;  (* first worker exception of the job *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;  (* length [size - 1]; [] after shutdown *)
}

let worker_loop t id =
  let seen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    while (not t.stop) && t.epoch = !seen do
      Condition.wait t.start t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.epoch;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      let error = (try job ~worker:id; None with e -> Some e) in
      Mutex.lock t.mutex;
      (match error with
      | Some e when t.failure = None -> t.failure <- Some e
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 || domains > 1024 then
    invalid_arg "Par.Pool.create: domains must be in [1, 1024]";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      job = None;
      pending = 0;
      failure = None;
      stop = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let run t f =
  if t.size = 1 then begin
    if t.stop then invalid_arg "Par.Pool.run: pool is shut down";
    f ~worker:0
  end
  else begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Par.Pool.run: pool is shut down"
    end;
    (* Serialise submissions from other domains: wait out any running job. *)
    while t.job <> None do
      Condition.wait t.finished t.mutex
    done;
    t.job <- Some f;
    t.failure <- None;
    t.pending <- t.size - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    let caller_error = (try f ~worker:0; None with e -> Some e) in
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    let worker_error = t.failure in
    t.failure <- None;
    Condition.broadcast t.finished;
    Mutex.unlock t.mutex;
    match caller_error, worker_error with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let check_range name lo hi =
  if hi < lo then invalid_arg (name ^ ": hi < lo")

let chunk_size name chunk ~n ~size =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg (name ^ ": chunk must be positive")
  (* 4 chunks per domain: enough slack for load imbalance, few enough
     that the d1 path (one domain, no atomics contention) stays within a
     few percent of a plain loop even for tiny bodies. *)
  | None -> max 1 (n / (4 * size))

let parallel_for ?chunk t ~lo ~hi f =
  check_range "Par.Pool.parallel_for" lo hi;
  let n = hi - lo in
  if n = 0 then ()
  else if t.size = 1 || n = 1 then
    for i = lo to hi - 1 do
      f ~worker:0 i
    done
  else begin
    let chunk = chunk_size "Par.Pool.parallel_for" chunk ~n ~size:t.size in
    let nchunks = (n + chunk - 1) / chunk in
    let cursor = Atomic.make 0 in
    run t (fun ~worker ->
        let continue = ref true in
        while !continue do
          let c = Atomic.fetch_and_add cursor 1 in
          if c >= nchunks then continue := false
          else begin
            let clo = lo + (c * chunk) in
            let chi = min hi (clo + chunk) in
            for i = clo to chi - 1 do
              f ~worker i
            done
          end
        done)
  end

let parallel_fold ?chunk t ~lo ~hi ~init ~body ~combine =
  check_range "Par.Pool.parallel_fold" lo hi;
  let n = hi - lo in
  if n = 0 then init
  else if t.size = 1 then begin
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := body ~worker:0 i !acc
    done;
    !acc
  end
  else begin
    let chunk = chunk_size "Par.Pool.parallel_fold" chunk ~n ~size:t.size in
    let nchunks = (n + chunk - 1) / chunk in
    let slots = Array.make nchunks init in
    let cursor = Atomic.make 0 in
    run t (fun ~worker ->
        let continue = ref true in
        while !continue do
          let c = Atomic.fetch_and_add cursor 1 in
          if c >= nchunks then continue := false
          else begin
            let clo = lo + (c * chunk) in
            let chi = min hi (clo + chunk) in
            let acc = ref init in
            for i = clo to chi - 1 do
              acc := body ~worker i !acc
            done;
            slots.(c) <- !acc
          end
        done);
    Array.fold_left combine init slots
  end

let default_domains () =
  match Sys.getenv_opt "LHG_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> min d 1024
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_pool =
  lazy
    (let p = create ~domains:(default_domains ()) in
     (* Worker domains must be joined before the runtime tears down. *)
     at_exit (fun () -> shutdown p);
     p)

let default () = Lazy.force default_pool
