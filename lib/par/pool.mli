(** A fixed-size domain pool for embarrassingly parallel sweeps.

    The pool owns [domains - 1] persistent worker domains (the calling
    domain is always participant 0), woken per job through one
    mutex/condition pair — no work stealing, no per-task allocation
    beyond one closure per job. Work distribution inside a job is
    dynamic: participants claim fixed-size index chunks from a shared
    atomic cursor, so uneven per-index cost (maxflow probes, BFS from
    high-eccentricity sources) balances without a scheduler.

    The library's parallel entry points are all of the form
    "independent reads over an immutable {!Graph_core.Csr} snapshot
    with per-participant scratch state" — see the DESIGN chapter on
    multicore execution. They take [?pool] and run sequentially when
    the pool has one domain (or when no pool is given), with
    bit-identical results either way.

    Pools are not reentrant: a job must not submit another job to the
    same pool (run nested sections sequentially instead). One pool may
    be shared by any number of call sites, but only one job runs at a
    time; concurrent submissions from other domains block. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains that idle
    until jobs arrive. [domains] must be between 1 and 1024; a pool of
    1 runs everything in the caller and spawns nothing.
    @raise Invalid_argument outside that range. *)

val size : t -> int
(** Number of participants (workers + the caller). *)

val shutdown : t -> unit
(** Join and free the worker domains. Subsequent jobs raise
    [Invalid_argument]. Idempotent. Pools are also safe to abandon to
    the GC only at process exit — prefer explicit shutdown. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with
    {!default_domains} domains and joined automatically at exit. *)

val default_domains : unit -> int
(** Domain budget for {!default}: [LHG_DOMAINS] when set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)

val run : t -> (worker:int -> unit) -> unit
(** [run pool f] executes [f ~worker] once on every participant
    (worker ids [0 .. size - 1]; id 0 is the caller) and returns when
    all have finished. If any participant raises, one of the raised
    exceptions is re-raised in the caller after the barrier.
    @raise Invalid_argument on a shut-down pool. *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (worker:int -> int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] calls [f ~worker i] exactly once for
    every [i] in [lo .. hi - 1], distributing chunks of indices over
    the participants. [worker] identifies the executing participant —
    use it to index per-participant scratch (workspaces, flow
    networks). [chunk] (default: [max 1 ((hi - lo) / (4 * size))])
    trades scheduling overhead against load balance. Iterations must
    be independent: they may write to disjoint data (e.g. slot [i] of
    a result array) but must not order-depend on each other. On a
    1-domain pool this is a plain sequential loop. *)

val parallel_fold :
  ?chunk:int ->
  t ->
  lo:int ->
  hi:int ->
  init:'a ->
  body:(worker:int -> int -> 'a -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** Deterministic ordered reduction. The index range is cut into
    chunks; each chunk is folded left-to-right with [body] starting
    from [init]; chunk results are then combined left-to-right, in
    index order, with [combine] starting from [init]. The result is
    therefore independent of how chunks were scheduled across domains.
    For the result to also be independent of the {e chunk grid} (and
    thus equal to a plain sequential fold), [combine] must be
    associative with identity [init] and satisfy
    [body ~worker i acc = combine acc (body ~worker i init)] — true
    for the min/max/sum/and reductions used in this library. *)
