(** Adversarial fault-plan generators.

    Where {!Plan} says what a fault plan is, [Gen] decides which plans
    are worth running: the interesting region of a k-connected
    topology is its minimum cuts, because that is where the k−1
    guarantee is tight. A {!sweep} produces a batch of plans at every
    fault budget from 0 to [max_faults] — below the boundary they must
    all deliver, at and above it the cut-directed adversaries should
    produce a concrete disconnection witness.

    Generators never crash the [source]: the guarantee (and its proof
    via the residual graph) is about delivery {e from} a live source,
    so crash pools exclude it and pad from elsewhere instead. *)

type adversary =
  | Min_vertex_cut
      (** crash subsets of an actual minimum vertex cut ({!Graph_core.Connectivity.min_vertex_cut}),
          padded with high-degree vertices beyond the cut size *)
  | Min_edge_cut
      (** down subsets of an actual minimum edge cut, padded with
          further edges beyond the cut size *)
  | High_degree  (** crash the highest-degree vertices first *)
  | Random_static  (** uniform crash sets, all at one time *)
  | Random_dynamic
      (** random mixes of crashes and link cuts at random times, some
          healing later — same weight, adversarial timing *)

val all : adversary list

val to_string : adversary -> string
(** CLI names: [min-cut], [min-edge-cut], [high-degree], [random],
    [dynamic]. *)

val of_string : string -> (adversary, string) result

val sweep :
  ?plans_per_level:int ->
  ?at:float ->
  rng:Graph_core.Prng.t ->
  graph:Graph_core.Graph.t ->
  source:int ->
  max_faults:int ->
  adversary ->
  Plan.t list
(** Plans at every fault budget [f = 0 .. max_faults]: level 0 is the
    single empty plan; each further level contributes
    [plans_per_level] (default 3) plans of weight exactly [f] — a
    deterministic prefix of the adversary's target pool first (so at
    [f = |min cut|] the full cut is always among the plans), then
    random variations drawn from [rng]. [at] (default 0) is the fault
    time for the static adversaries. Requires [max_faults < n]
    budget-wise only; pools silently cap at what the topology offers.
    @raise Invalid_argument on negative [max_faults] or
    [plans_per_level < 1]. *)
