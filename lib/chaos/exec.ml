module Network = Netsim.Network
module Sim = Netsim.Sim

let apply net = function
  | Plan.Crash v -> Network.crash net v
  | Plan.Recover v -> Network.recover net v
  | Plan.Link_down (u, v) -> Network.fail_link net u v
  | Plan.Link_up (u, v) -> Network.restore_link net u v
  | Plan.Partition vs ->
      List.iter (fun (u, v) -> Network.fail_link net u v) (Plan.cut_edges (Network.csr net) vs)
  | Plan.Heal -> Network.heal net
  | Plan.Loss_rate r -> Network.set_loss_rate net r

let install net plan =
  let sim = Network.sim net in
  List.iter
    (fun { Plan.at; event } -> Sim.schedule_at sim ~time:at (fun () -> apply net event))
    (Plan.events plan)

let prepare_hook plan = { Flood.Env.prepare = (fun net -> install net plan) }
