module Csr = Graph_core.Csr

type event =
  | Crash of int
  | Recover of int
  | Link_down of int * int
  | Link_up of int * int
  | Partition of int list
  | Heal
  | Loss_rate of float

type timed = { at : float; event : event }

type t = timed list (* sorted by [at], stable *)

let make evs = List.stable_sort (fun a b -> compare a.at b.at) evs
let empty = []
let events t = t
let is_empty t = t = []

let norm_link u v = if u <= v then (u, v) else (v, u)

module Iset = Set.Make (Int)

module Lset = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let crash_victims t =
  List.fold_left
    (fun acc { event; _ } -> match event with Crash v -> Iset.add v acc | _ -> acc)
    Iset.empty t
  |> Iset.elements

(* the edges between [vs] and its complement *)
let cut_edges csr vs =
  let inside = Array.make (Csr.n csr) false in
  List.iter (fun v -> if v >= 0 && v < Csr.n csr then inside.(v) <- true) vs;
  let acc = ref [] in
  Csr.iter_edges csr (fun u v -> if inside.(u) <> inside.(v) then acc := (u, v) :: !acc);
  List.rev !acc

let downed_links csr t =
  List.fold_left
    (fun acc { event; _ } ->
      match event with
      | Link_down (u, v) -> Lset.add (norm_link u v) acc
      | Partition vs -> List.fold_left (fun acc e -> Lset.add e acc) acc (cut_edges csr vs)
      | _ -> acc)
    Lset.empty t
  |> Lset.elements

let weight csr t = List.length (crash_victims t) + List.length (downed_links csr t)

let stochastic t =
  List.exists (fun { event; _ } -> match event with Loss_rate r -> r > 0.0 | _ -> false) t

let validate csr t =
  let n = Csr.n csr in
  let check_vertex what v =
    if v < 0 || v >= n then Error (Printf.sprintf "%s: vertex %d out of range [0,%d)" what v n)
    else Ok ()
  in
  let check_link what u v =
    match (check_vertex what u, check_vertex what v) with
    | Error e, _ | _, Error e -> Error e
    | Ok (), Ok () ->
        if not (Csr.mem_edge csr u v) then
          Error (Printf.sprintf "%s: no edge (%d,%d) in topology" what u v)
        else Ok ()
  in
  let check_event { at; event } =
    if not (Float.is_finite at) || at < 0.0 then
      Error (Printf.sprintf "event at %g: time must be finite and >= 0" at)
    else
      match event with
      | Crash v -> check_vertex "crash" v
      | Recover v -> check_vertex "recover" v
      | Link_down (u, v) -> check_link "link_down" u v
      | Link_up (u, v) -> check_link "link_up" u v
      | Partition vs -> (
          if vs = [] then Error "partition: empty vertex set"
          else
            match List.find_opt (fun v -> v < 0 || v >= n) vs with
            | Some v -> check_vertex "partition" v
            | None ->
                let distinct = Iset.of_list vs in
                if Iset.cardinal distinct >= n then
                  Error "partition: set must be a proper subset of the vertices"
                else Ok ())
      | Heal -> Ok ()
      | Loss_rate r ->
          if Float.is_finite r && r >= 0.0 && r < 1.0 then Ok ()
          else Error (Printf.sprintf "loss_rate: %g outside [0,1)" r)
  in
  let rec go = function
    | [] -> Ok ()
    | e :: rest -> ( match check_event e with Ok () -> go rest | Error _ as err -> err)
  in
  go t

(* text format *)

let string_of_event = function
  | Crash v -> Printf.sprintf "crash %d" v
  | Recover v -> Printf.sprintf "recover %d" v
  | Link_down (u, v) -> Printf.sprintf "link_down %d %d" u v
  | Link_up (u, v) -> Printf.sprintf "link_up %d %d" u v
  | Partition vs -> "partition " ^ String.concat " " (List.map string_of_int vs)
  | Heal -> "heal"
  | Loss_rate r -> Printf.sprintf "loss_rate %g" r

let to_string t =
  String.concat "" (List.map (fun { at; event } -> Printf.sprintf "%g %s\n" at (string_of_event event)) t)

let parse_line lineno line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  let tokens =
    String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
    |> List.filter (fun s -> s <> "")
  in
  let fail fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt in
  let int_arg what s =
    match int_of_string_opt s with Some v -> Ok v | None -> fail "%s: not an integer: %s" what s
  in
  match tokens with
  | [] -> Ok None
  | time :: keyword :: args -> (
      match float_of_string_opt time with
      | None -> fail "bad time: %s" time
      | Some at -> (
          let ( let* ) = Result.bind in
          let timed event = Ok (Some { at; event }) in
          match (keyword, args) with
          | "crash", [ v ] ->
              let* v = int_arg "crash" v in
              timed (Crash v)
          | "recover", [ v ] ->
              let* v = int_arg "recover" v in
              timed (Recover v)
          | "link_down", [ u; v ] ->
              let* u = int_arg "link_down" u in
              let* v = int_arg "link_down" v in
              timed (Link_down (u, v))
          | "link_up", [ u; v ] ->
              let* u = int_arg "link_up" u in
              let* v = int_arg "link_up" v in
              timed (Link_up (u, v))
          | "partition", (_ :: _ as vs) ->
              let* vs =
                List.fold_left
                  (fun acc s ->
                    let* acc = acc in
                    let* v = int_arg "partition" s in
                    Ok (v :: acc))
                  (Ok []) vs
              in
              timed (Partition (List.rev vs))
          | "heal", [] -> timed Heal
          | "loss_rate", [ r ] -> (
              match float_of_string_opt r with
              | Some r -> timed (Loss_rate r)
              | None -> fail "loss_rate: not a number: %s" r)
          | ("crash" | "recover" | "link_down" | "link_up" | "partition" | "heal" | "loss_rate"), _
            ->
              fail "wrong number of arguments for %s" keyword
          | kw, _ -> fail "unknown event: %s" kw))
  | [ _ ] -> fail "missing event keyword"

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (make (List.rev acc))
    | line :: rest -> (
        match parse_line lineno line with
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some ev) -> go (lineno + 1) (ev :: acc) rest
        | Error _ as err -> err)
  in
  go 1 [] lines

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg
