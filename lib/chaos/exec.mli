(** Scheduling a fault plan onto a live simulation.

    The bridge between pure {!Plan} data and a running
    {!Netsim.Network}: {!install} turns every timed event into a
    simulator callback, so faults fire at their virtual times
    interleaved with the protocol's own messages, and every fault and
    heal is emitted as an {!Obs.Registry} span event by the network
    layer. {!prepare_hook} packages that as a {!Flood.Env.prepare}, the
    polymorphic hook every [run_env] protocol entry point honours —
    which is how {!Audit} injects chaos into protocols that know
    nothing about plans. *)

val install : 'msg Netsim.Network.t -> Plan.t -> unit
(** Schedule every event of the plan at its absolute virtual time on
    the network's simulator. [Partition] is expanded against the
    network's frozen topology snapshot at fire time; crash/recover and
    link down/up apply idempotently (see {!Netsim.Network}). Call
    before the simulation starts draining (plans assume time 0 is the
    protocol's first send).
    @raise Invalid_argument via the network layer if the plan is
    structurally invalid for the topology — {!Plan.validate} first. *)

val prepare_hook : Plan.t -> Flood.Env.prepare
(** [{ prepare = fun net -> install net plan }] — thread through
    {!Flood.Env.with_prepare}. *)
