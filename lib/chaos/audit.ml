module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Prng = Graph_core.Prng
module Env = Flood.Env

type witness = {
  crashed_nodes : int list;
  downed_links : (int * int) list;
  unreached : int list;
}

type plan_report = {
  index : int;
  plan : Plan.t;
  weight : int;
  stochastic : bool;
  complete : bool;
  delivered : int;
  obligated : int;
  completion_time : float;
  messages : int;
  witness : witness option;
}

type row = { faults : int; plans : int; complete_plans : int; stochastic_plans : int }

type t = {
  k : int;
  source : int;
  reports : plan_report list;
  matrix : row list;
  boundary_ok : bool;
  violations : plan_report list;
}

module Iset = Set.Make (Int)

module Lset = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let norm_link (u, v) = if u <= v then (u, v) else (v, u)

(* env's own hook (if any) first, then the plan's *)
let compose_prepare (base : Env.prepare option) plan : Env.prepare =
  let plan_hook = Exec.prepare_hook plan in
  match base with
  | None -> plan_hook
  | Some first ->
      {
        prepare =
          (fun net ->
            first.prepare net;
            plan_hook.prepare net);
      }

let run_one ~env ~graph ~source ~csr ~static_crashed ~static_links ~seed ~obs ~index plan =
  let crashed_all =
    Iset.union static_crashed (Iset.of_list (Plan.crash_victims plan)) |> Iset.elements
  in
  let downed_all =
    Lset.union static_links (Lset.of_list (Plan.downed_links csr plan)) |> Lset.elements
  in
  let weight = List.length crashed_all + List.length downed_all in
  let stochastic = env.Env.loss_rate > 0.0 || Plan.stochastic plan in
  let run_env =
    {
      env with
      Env.seed = Some seed;
      obs;
      pool = None;
      prepare = Some (compose_prepare env.Env.prepare plan);
    }
  in
  let r = Flood.Flooding.run_env ~env:run_env ~graph ~source () in
  let n = Graph.n graph in
  let obliged = Array.make n true in
  List.iter (fun v -> obliged.(v) <- false) crashed_all;
  let obligated = ref 0 and delivered = ref 0 and unreached = ref [] in
  for v = n - 1 downto 0 do
    if obliged.(v) then begin
      incr obligated;
      if r.Flood.Flooding.delivered.(v) then incr delivered else unreached := v :: !unreached
    end
  done;
  let complete = !delivered = !obligated in
  {
    index;
    plan;
    weight;
    stochastic;
    complete;
    delivered = !delivered;
    obligated = !obligated;
    completion_time = r.Flood.Flooding.completion_time;
    messages = r.Flood.Flooding.messages_sent;
    witness =
      (if complete then None
       else Some { crashed_nodes = crashed_all; downed_links = downed_all; unreached = !unreached });
  }

let matrix_of reports =
  let by_weight = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let plans, complete, stoch =
        match Hashtbl.find_opt by_weight r.weight with Some x -> x | None -> (0, 0, 0)
      in
      Hashtbl.replace by_weight r.weight
        ( plans + 1,
          (complete + if r.complete then 1 else 0),
          (stoch + if r.stochastic then 1 else 0) ))
    reports;
  Hashtbl.fold
    (fun faults (plans, complete_plans, stochastic_plans) acc ->
      { faults; plans; complete_plans; stochastic_plans } :: acc)
    by_weight []
  |> List.sort (fun a b -> compare a.faults b.faults)

let derive_seeds ~env n =
  let rng = Prng.create ~seed:(Env.seed_value env) in
  Array.init n (fun _ -> Int64.to_int (Prng.bits64 rng) land max_int)

let run ~env ~graph ~k ~source ~plans =
  if k < 1 then invalid_arg "Audit.run: k < 1";
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Audit.run: source out of range";
  if List.mem source env.Env.crashed then invalid_arg "Audit.run: source is statically crashed";
  let csr = Csr.of_graph graph in
  let plans = Array.of_list plans in
  Array.iteri
    (fun i p ->
      match Plan.validate csr p with
      | Ok () -> ()
      | Error msg -> invalid_arg (Printf.sprintf "Audit.run: plan %d: %s" i msg))
    plans;
  let static_crashed = Iset.of_list env.Env.crashed in
  let static_links = Lset.of_list (List.map norm_link env.Env.failed_links) in
  let nplans = Array.length plans in
  (* per-plan seeds derive sequentially up front, so the sweep is
     bit-identical at any domain count *)
  let seeds = derive_seeds ~env nplans in
  let observed = Obs.Registry.enabled env.Env.obs in
  let reports = Array.make nplans None in
  let one ~obs i =
    reports.(i) <-
      Some
        (run_one ~env ~graph ~source ~csr ~static_crashed ~static_links ~seed:seeds.(i) ~obs
           ~index:i plans.(i))
  in
  (match env.Env.pool with
  | Some pool when Par.Pool.size pool > 1 && nplans > 1 ->
      (* domains must not share a registry, so the parallel sweep pays
         one registry per plan; merging in plan order keeps the
         aggregate identical to the sequential path *)
      let registries =
        Array.init nplans (fun _ -> if observed then Obs.Registry.create () else Obs.Registry.nil)
      in
      Par.Pool.parallel_for pool ~lo:0 ~hi:nplans (fun ~worker:_ i -> one ~obs:registries.(i) i);
      if observed then Array.iter (fun r -> Obs.Registry.merge env.Env.obs r) registries
  | _ ->
      (* sequential sweeps reuse one scratch registry: merge after each
         plan, clear, go again — no per-plan allocation *)
      let scratch = if observed then Obs.Registry.create () else Obs.Registry.nil in
      Array.iteri
        (fun i _ ->
          one ~obs:scratch i;
          if observed then begin
            Obs.Registry.merge env.Env.obs scratch;
            Obs.Registry.clear scratch
          end)
        plans);
  let reports = Array.to_list reports |> List.filter_map Fun.id in
  let violations =
    List.filter (fun r -> (not r.stochastic) && r.weight <= k - 1 && not r.complete) reports
  in
  {
    k;
    source;
    reports;
    matrix = matrix_of reports;
    boundary_ok = violations = [];
    violations;
  }

let first_witness t =
  List.fold_left
    (fun best r ->
      if r.complete then best
      else
        match best with
        | None -> Some r
        | Some b -> if r.weight < b.weight then Some r else best)
    None t.reports
