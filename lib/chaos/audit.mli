(** Sweeping a flood against fault plans: the empirical k−1 boundary.

    The paper's claim is exact: on a k-connected topology,
    deterministic flooding delivers to every live node under {e any}
    k−1 failures — and a k-fault adversary aiming at a minimum cut can
    break it. [Audit] checks both halves empirically. It replays one
    flooding execution per plan (each under its own derived seed and,
    when observability is on, its own registry) and classifies:

    - the {b obligation} of a plan is every node it never crashes —
      a node that is down at any point during the run is owed nothing
      (it may miss the wave even if it recovers), but a node that was
      up throughout must be reached;
    - a plan {b completes} when its whole obligation is delivered;
    - {!t.boundary_ok} holds when every deterministic plan of
      {!Plan.weight} ≤ k−1 completed — the guarantee half. Plans with
      probabilistic loss ({!Plan.stochastic}, or a positive
      [env.loss_rate]) are reported but exempt;
    - an incomplete plan carries a {!witness}: the fault set it
      deployed and the obligated nodes left unreached — at weight ≥ k
      this is the concrete cut demonstrating tightness.

    Soundness of the obligation (why dynamic plans are held to the
    same boundary): a real execution delivers at least as much as
    flooding on the residual graph with every ever-crashed node and
    ever-downed link removed, and weight ≤ k−1 keeps that residual
    graph connected.

    Plans are independent, so the sweep fans out over [env.pool]
    ({!Par.Pool}) when one is supplied; per-plan seeds are derived
    sequentially up front and per-plan registries are merged in plan
    order, so reports are bit-identical at any domain count. *)

type witness = {
  crashed_nodes : int list;  (** every node the run ever crashed *)
  downed_links : (int * int) list;  (** every link it ever downed *)
  unreached : int list;  (** obligated nodes the flood missed *)
}

type plan_report = {
  index : int;  (** position in the input plan list *)
  plan : Plan.t;
  weight : int;
      (** distinct faults deployed, static [env] failures included *)
  stochastic : bool;
  complete : bool;
  delivered : int;  (** obligated nodes reached *)
  obligated : int;
  completion_time : float;
  messages : int;
  witness : witness option;  (** present iff not [complete] *)
}

type row = {
  faults : int;  (** the weight this row aggregates *)
  plans : int;
  complete_plans : int;
  stochastic_plans : int;
}

type t = {
  k : int;
  source : int;
  reports : plan_report list;  (** in input order *)
  matrix : row list;  (** per-weight delivery matrix, ascending *)
  boundary_ok : bool;
  violations : plan_report list;
      (** deterministic plans of weight ≤ k−1 that did not complete —
          empty exactly when [boundary_ok] *)
}

val run :
  env:Flood.Env.t ->
  graph:Graph_core.Graph.t ->
  k:int ->
  source:int ->
  plans:Plan.t list ->
  t
(** Flood [graph] from [source] once per plan and aggregate. [env]
    supplies everything else: latency and loss model, base seed
    (per-plan seeds derive from it), static [crashed]/[failed_links]
    (applied to every run and counted into each plan's weight and
    witness), registry (per-plan registries are merged into it in plan
    order when enabled) and [pool] for the parallel sweep. An [env]
    [prepare] hook, if any, runs before each plan's own.
    @raise Invalid_argument if [k < 1], the source is out of range or
    statically crashed, or any plan fails {!Plan.validate} (the error
    names the plan index). *)

val derive_seeds : env:Flood.Env.t -> int -> int array
(** The sweep's per-run seed schedule: [n] seeds drawn sequentially
    from a {!Graph_core.Prng} over the env's base seed, before any
    fan-out — the discipline that keeps every pool-parallel audit
    (this one, {!Assemble.Audit}) bit-identical at any domain count.
    Exposed so sibling audits derive identically shaped schedules
    instead of re-inventing the pattern. *)

val first_witness : t -> plan_report option
(** The lowest-weight incomplete report (ties: first by index) — the
    sharpest demonstration the sweep found, typically a k-fault
    min-cut plan. *)
