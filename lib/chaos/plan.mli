(** Declarative fault plans: a timeline of faults and heals.

    A plan is what an adversary does to one run: crash nodes, bring
    them back, cut links, partition a vertex set away, heal everything,
    or turn on probabilistic message loss — each at a virtual time.
    Plans are pure data; {!Exec} schedules them on a live simulation
    and {!Audit} sweeps a protocol against batches of them.

    {2 Weight — the currency of the guarantee}

    The LHG guarantee is about {e how much} an adversary breaks, not
    when: a k-connected topology floods through any k−1 failures. The
    {!weight} of a plan is the number of distinct fault {e elements} it
    ever touches — distinct crashed nodes plus distinct downed links
    (partitions expanded to the edges they cut) — regardless of timing
    or later recovery. A real execution under a plan delivers at least
    as much as flooding on the residual graph with every ever-crashed
    node and ever-downed link removed, so [weight ≤ k−1] on a
    k-connected graph implies every never-crashed node is reached even
    when faults flap mid-flood. {!Loss_rate} events carry no weight:
    they make the plan {!stochastic} and exempt it from the
    deterministic boundary instead.

    {2 Text format}

    One event per line, [<time> <keyword> <args…>]; blank lines and
    [#] comments ignored:
    {v
    # crash node 3 at t=0, cut a link at t=1.5, heal later
    0.0  crash 3
    1.5  link_down 0 4
    2.0  recover 3
    2.5  partition 1 2 3
    4.0  link_up 0 4
    5.0  heal
    0.0  loss_rate 0.05
    v} *)

type event =
  | Crash of int  (** node stops sending and receiving *)
  | Recover of int  (** crashed node comes back (no state replay) *)
  | Link_down of int * int  (** undirected link fails *)
  | Link_up of int * int  (** failed link comes back *)
  | Partition of int list
      (** every edge between the set and its complement fails *)
  | Heal  (** all currently failed links come back *)
  | Loss_rate of float  (** i.i.d. message loss switches to this rate *)

type timed = { at : float; event : event }

type t
(** A plan: timed events, kept sorted by time (stable — same-time
    events keep their given order). *)

val make : timed list -> t
(** Sort the events by time (stable) into a plan. Structural validity
    against a topology is {!validate}'s business. *)

val empty : t

val events : t -> timed list
(** Ascending by [at]. *)

val is_empty : t -> bool

val crash_victims : t -> int list
(** Distinct nodes ever crashed, ascending. *)

val cut_edges : Graph_core.Csr.t -> int list -> (int * int) list
(** The edges between a vertex set and its complement, as [u < v]
    lexicographic — what a [Partition] of that set downs. Out-of-range
    vertices in the set are ignored. *)

val downed_links : Graph_core.Csr.t -> t -> (int * int) list
(** Distinct links ever downed — explicit [Link_down]s plus the cut
    edges of every [Partition], expanded against the topology —
    normalised to [u < v], ascending. *)

val weight : Graph_core.Csr.t -> t -> int
(** [|crash_victims| + |downed_links|] — the plan's fault count for
    the k−1 boundary (see the module preamble). *)

val stochastic : t -> bool
(** The plan sets a positive loss rate somewhere, so delivery is
    probabilistic and the deterministic boundary does not apply. *)

val validate : Graph_core.Csr.t -> t -> (unit, string) result
(** Structural check against a topology: vertices in range, downed and
    restored links are real edges, partitions are proper non-empty
    vertex subsets, loss rates in [\[0,1)], times finite and ≥ 0. *)

val to_string : t -> string
(** Render in the text format above (one event per line). *)

val of_string : string -> (t, string) result
(** Parse the text format; errors carry the offending line number. *)

val of_file : string -> (t, string) result
(** {!of_string} on a file's contents; [Error] on unreadable files. *)
