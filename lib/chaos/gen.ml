module Graph = Graph_core.Graph
module Prng = Graph_core.Prng
module Connectivity = Graph_core.Connectivity

type adversary = Min_vertex_cut | Min_edge_cut | High_degree | Random_static | Random_dynamic

let all = [ Min_vertex_cut; Min_edge_cut; High_degree; Random_static; Random_dynamic ]

let to_string = function
  | Min_vertex_cut -> "min-cut"
  | Min_edge_cut -> "min-edge-cut"
  | High_degree -> "high-degree"
  | Random_static -> "random"
  | Random_dynamic -> "dynamic"

let of_string = function
  | "min-cut" -> Ok Min_vertex_cut
  | "min-edge-cut" -> Ok Min_edge_cut
  | "high-degree" -> Ok High_degree
  | "random" -> Ok Random_static
  | "dynamic" -> Ok Random_dynamic
  | s ->
      Error
        (Printf.sprintf "unknown adversary %S (expected %s)" s
           (String.concat ", " (List.map to_string all)))

let crash_plan ~at victims =
  Plan.make (List.map (fun v -> { Plan.at; event = Plan.Crash v }) victims)

let link_plan ~at links =
  Plan.make (List.map (fun (u, v) -> { Plan.at; event = Plan.Link_down (u, v) }) links)

let sample rng pool k =
  Prng.sample_without_replacement rng ~k ~n:(Array.length pool) |> List.map (fun i -> pool.(i))

(* highest degree first, ties by index — the padding order for every
   vertex pool *)
let degree_desc g vs =
  List.stable_sort (fun a b -> compare (Graph.degree g b, a) (Graph.degree g a, b)) vs

(* [first] (adversary's primary targets, in their given order) followed
   by every other non-source vertex in degree-descending order *)
let vertex_pool g ~source ~first =
  let n = Graph.n g in
  let first = List.filter (fun v -> v <> source) first in
  let in_first = Array.make n false in
  List.iter (fun v -> in_first.(v) <- true) first;
  let rest =
    List.init n Fun.id
    |> List.filter (fun v -> v <> source && not in_first.(v))
    |> degree_desc g
  in
  (Array.of_list (first @ rest), List.length first)

(* [first] edges followed by every other edge in lexicographic order *)
let edge_pool g ~first =
  let norm (u, v) = if u <= v then (u, v) else (v, u) in
  let first = List.map norm first in
  let seen = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace seen e ()) first;
  let rest = List.filter (fun e -> not (Hashtbl.mem seen (norm e))) (Graph.edges g) in
  (Array.of_list (first @ List.map norm rest), List.length first)

(* one level-f batch per fault budget: the deterministic pool prefix
   (when [use_prefix]) plus random subsets from a window that stays
   focused around the primary targets *)
let budget_sweep ~plans_per_level ~rng ~pool ~focus ~max_faults ~use_prefix ~plan_of =
  let npool = Array.length pool in
  let plans = ref [ Plan.empty ] in
  for f = 1 to max_faults do
    let f' = min f npool in
    if f' > 0 then begin
      if use_prefix then plans := plan_of (Array.to_list (Array.sub pool 0 f')) :: !plans;
      let window = min npool (max (2 * f') focus) in
      let windowed = Array.sub pool 0 window in
      let randoms = plans_per_level - if use_prefix then 1 else 0 in
      for _ = 1 to randoms do
        plans := plan_of (sample rng windowed f') :: !plans
      done
    end
  done;
  List.rev !plans

let dynamic_plan ~rng ~vpool ~epool f =
  let c = min (Prng.int rng (f + 1)) (Array.length vpool) in
  let l = min (f - c) (Array.length epool) in
  let c = min (Array.length vpool) (c + (f - c - l)) in
  let events = ref [] in
  let add at event = events := { Plan.at; event } :: !events in
  List.iter
    (fun v ->
      let t0 = Prng.float rng 4.0 in
      add t0 (Plan.Crash v);
      if Prng.bool rng then add (t0 +. 0.5 +. Prng.float rng 4.0) (Plan.Recover v))
    (sample rng vpool c);
  List.iter
    (fun (u, v) ->
      let t0 = Prng.float rng 4.0 in
      add t0 (Plan.Link_down (u, v));
      if Prng.bool rng then add (t0 +. 0.5 +. Prng.float rng 4.0) (Plan.Link_up (u, v)))
    (sample rng epool l);
  if Prng.int rng 4 = 0 then add (9.0 +. Prng.float rng 2.0) Plan.Heal;
  Plan.make !events

let sweep ?(plans_per_level = 3) ?(at = 0.0) ~rng ~graph ~source ~max_faults adversary =
  if max_faults < 0 then invalid_arg "Gen.sweep: max_faults < 0";
  if plans_per_level < 1 then invalid_arg "Gen.sweep: plans_per_level < 1";
  match adversary with
  | Min_vertex_cut ->
      let pool, focus = vertex_pool graph ~source ~first:(Connectivity.min_vertex_cut graph) in
      budget_sweep ~plans_per_level ~rng ~pool ~focus ~max_faults ~use_prefix:true
        ~plan_of:(crash_plan ~at)
  | High_degree ->
      let pool, _ = vertex_pool graph ~source ~first:[] in
      budget_sweep ~plans_per_level ~rng ~pool ~focus:0 ~max_faults ~use_prefix:true
        ~plan_of:(crash_plan ~at)
  | Random_static ->
      let pool, _ = vertex_pool graph ~source ~first:[] in
      budget_sweep ~plans_per_level ~rng ~pool ~focus:(Array.length pool) ~max_faults
        ~use_prefix:false ~plan_of:(crash_plan ~at)
  | Min_edge_cut ->
      let pool, focus = edge_pool graph ~first:(Connectivity.min_edge_cut graph) in
      budget_sweep ~plans_per_level ~rng ~pool ~focus ~max_faults ~use_prefix:true
        ~plan_of:(link_plan ~at)
  | Random_dynamic ->
      let vpool, _ = vertex_pool graph ~source ~first:[] in
      let epool, _ = edge_pool graph ~first:[] in
      let plans = ref [ Plan.empty ] in
      for f = 1 to max_faults do
        for _ = 1 to plans_per_level do
          plans := dynamic_plan ~rng ~vpool ~epool f :: !plans
        done
      done;
      List.rev !plans
