type kind = Sent | Delivered | Dropped_link | Dropped_crash | Dropped_random | Dropped_queue

type event = { time : float; kind : kind; src : int; dst : int; seq : int }

type t = {
  buf : event option array;
  mutable next : int;  (** total events ever recorded *)
}

let create ?(capacity = 1_000_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0 }

let record t ev =
  t.buf.(t.next mod Array.length t.buf) <- Some ev;
  t.next <- t.next + 1

let count t = min t.next (Array.length t.buf)

let dropped_events t = max 0 (t.next - Array.length t.buf)

let events t =
  let cap = Array.length t.buf in
  let kept = count t in
  let start = t.next - kept in
  List.init kept (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some ev -> ev
      | None -> invalid_arg "Trace.events: buffer corrupt")

let kind_name = function
  | Sent -> "sent"
  | Delivered -> "delivered"
  | Dropped_link -> "dropped-link"
  | Dropped_crash -> "dropped-crash"
  | Dropped_random -> "dropped-random"
  | Dropped_queue -> "dropped-queue"

let pp_event fmt ev =
  Format.fprintf fmt "[%.3f] #%d %s %d->%d" ev.time ev.seq (kind_name ev.kind) ev.src ev.dst
