(** Message-passing network layer over a graph topology.

    Sits on top of {!Sim}: sending enqueues a delivery event after a
    latency drawn from the latency model. Failure injection covers the
    crash-stop node model (a crashed node neither sends nor receives —
    in-flight messages to it are dropped on delivery), fail-stop links,
    and i.i.d. probabilistic message loss. All drops are counted in
    {!stats}. The payload type is the caller's ['msg]. *)

type 'msg t

type latency = Graph_core.Prng.t -> src:int -> dst:int -> float
(** Latency model: virtual time units for one message on one link. *)

val constant_latency : float -> latency

val uniform_latency : lo:float -> hi:float -> latency

val exponential_latency : mean:float -> latency
(** 1 + Exp(mean−1): a floor of one time unit plus an exponential tail —
    a common WAN-ish model that keeps causality (strictly positive). *)

type stats = {
  sent : int;  (** messages handed to the network *)
  delivered : int;  (** messages that reached a live handler *)
  dropped_link : int;  (** lost to failed links *)
  dropped_crash : int;  (** lost to crashed destinations *)
  dropped_random : int;  (** lost to the loss-rate coin *)
}

val create :
  sim:Sim.t ->
  graph:Graph_core.Graph.t ->
  ?latency:latency ->
  ?loss_rate:float ->
  ?processing_delay:float ->
  ?trace:Trace.t ->
  ?obs:Obs.Registry.t ->
  unit ->
  'msg t
(** New network; default latency is [constant_latency 1.0], default
    loss rate 0. With [?trace], every send and terminal outcome is
    recorded ({!Trace}).

    With [?obs] (default {!Obs.Registry.nil}), the network publishes
    into the registry as it runs: counters [net.sent], [net.delivered]
    and the three [net.dropped_*] reasons, the [net.latency] histogram
    of drawn link delays, the [net.queue_depth] histogram of receiver
    backlog (when [processing_delay > 0]), and [Crash]/[Link_down] span
    events for failure injection. A disabled registry costs one branch
    per record and allocates nothing.

    [?processing_delay] (default 0) models receiver contention: each
    node handles one message per [processing_delay] time units, queueing
    arrivals FIFO — so a node's effective latency grows with its degree
    and message pressure, which is what makes constant-degree topologies
    attractive beyond edge counts. *)

val graph : 'msg t -> Graph_core.Graph.t
(** The construction-side graph passed to {!create}. The network
    freezes a CSR snapshot of it at creation; later mutations of this
    graph are not observed by {!send}/{!fail_link}. *)

val csr : 'msg t -> Graph_core.Csr.t
(** The frozen topology snapshot. Protocols should iterate neighbours
    from this (flat arrays) rather than from {!graph}. *)

val sim : 'msg t -> Sim.t

val obs : 'msg t -> Obs.Registry.t
(** The registry passed to {!create} ({!Obs.Registry.nil} if none). *)

val set_receiver : 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> unit
(** Install the protocol's receive handler (one per network). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Send over the edge (src,dst).
    @raise Invalid_argument if no such edge exists or [src] is crashed.
    The message is silently dropped (and counted) on link failure, the
    loss coin, or a crashed/crashing destination at delivery time. *)

val crash : 'msg t -> int -> unit
(** Crash-stop the node, effective immediately. Idempotent. *)

val is_crashed : 'msg t -> int -> bool

val alive_mask : 'msg t -> bool array
(** Snapshot: [true] per live vertex. *)

val fail_link : 'msg t -> int -> int -> unit
(** Fail the undirected link (both directions). Idempotent; the edge
    must exist in the topology. *)

val link_failed : 'msg t -> int -> int -> bool

val stats : 'msg t -> stats
