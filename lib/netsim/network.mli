(** Message-passing network layer over a graph topology.

    Sits on top of {!Sim}: sending enqueues a delivery event after a
    latency drawn from the latency model. Failure injection covers the
    crash-recover node model (a crashed node neither sends nor receives
    until it {!recover}s), fail-stop links that can come back up
    ({!restore_link}, {!heal}), and i.i.d. probabilistic message loss
    whose rate can change mid-run ({!set_loss_rate}). All drops are
    counted in {!stats}; every fault and heal is emitted as an
    {!Obs.Registry} span event. The payload type is the caller's ['msg].

    {2 Link capacity and FIFO queues}

    By default every link has infinite bandwidth: messages only pay the
    latency model. With a finite [?link_capacity] (messages per time
    unit, per directed link), each directed edge becomes a
    FIFO-serviced channel: a message entering a busy link waits behind
    the backlog, departs one service time ([1/capacity]) after its
    predecessor, and arrives at departure + latency. [?queue_cap]
    bounds the backlog (the in-service message included); an arrival
    finding the queue full is either drop-tailed and counted
    [dropped_queue] ({!Drop_tail}, the default) or admitted anyway
    ({!Block} — an infinite buffer whose pressure shows up as delay and
    in the [net.link_queue] histogram rather than as loss).

    Queue state is one float per directed edge — the time the link
    drains — and occupancy is recovered arithmetically from it, so the
    bounded FIFO adds no events, no allocation, and is byte-identical
    across the Calendar and Heap engines. FIFO order holds per link:
    two messages sent on the same directed edge are delivered in send
    order (under a deterministic latency model; a random latency model
    can still reorder them in flight, exactly as without capacity).

    {2 Priority bands}

    [?bands] (1–4, default 1) splits each link's FIFO plane into
    strict-priority bands, band 0 highest. Every send is stamped with
    the network's current {!send_band} (default: the lowest band, so
    plain data traffic needs no opt-in); a control plane raises the
    band around its own bursts with {!set_send_band}. Admission of a
    band-[b] message waits behind the backlogs of every band of equal
    or higher priority but never behind a lower band — so the high
    band's delay is bounded by at most the one message already in
    service, the standard non-preemptive priority model. Order within
    a band stays FIFO; [queue_cap] bounds each band separately (a
    saturated bulk band cannot drop-tail the control band); and
    [?band_weights] (one positive factor per band) scales each band's
    service rate — weight [w] serves [w × link_capacity] messages per
    time unit, a weighted-fair knob on top of the strict priorities.
    Per-band deliveries and drops are reported by {!band_stats}.

    The whole plane keeps the zero-event discipline — one float per
    (band, directed edge) — and stays byte-identical across engines.
    A single-band network is bit-for-bit the pre-band engine. With
    [bands > 1] the band rides the event payload word above the
    message, so int-plane messages must stay below [2^58] (they are
    chunk ids and round numbers in practice).

    {2 Recovery semantics}

    Crash state is evaluated {e at delivery time}, not at send time. A
    message in flight to a node that is crashed when the message lands
    is dropped and counted [dropped_crash]; a message in flight to a
    node that has {!recover}ed before its delivery event fires is
    delivered normally and counted [delivered] — the crash window only
    swallows what actually lands inside it. Senders are checked at send
    time: {!send} from a currently crashed source raises.

    {2 Cost model}

    In-flight messages ride {!Sim}'s struct-of-arrays event pool as
    four integers; the ['msg] payload is parked in a recycled slot
    store. With tracing off and an [Obs] registry disabled, a
    steady-state {!send} (or {!send_neighbors} fan-out) allocates
    nothing. A simulator hosts at most one network: creation installs
    the simulator's single message sink, so a second [create] on the
    same [sim] raises. *)

type 'msg t

type latency = Graph_core.Prng.t -> src:int -> dst:int -> float
(** Latency model: virtual time units for one message on one link. *)

val constant_latency : float -> latency

val uniform_latency : lo:float -> hi:float -> latency

val exponential_latency : mean:float -> latency
(** 1 + Exp(mean−1): a floor of one time unit plus an exponential tail —
    a common WAN-ish model that keeps causality (strictly positive). *)

type queue_policy =
  | Drop_tail  (** a full link queue rejects the arrival (counted [dropped_queue]) *)
  | Block
      (** a full link queue admits anyway: no loss, unbounded buffer,
          pressure visible as queueing delay instead *)

type stats = {
  sent : int;  (** messages handed to the network *)
  delivered : int;  (** messages that reached a live handler *)
  dropped_link : int;  (** lost to failed links *)
  dropped_crash : int;  (** lost to crashed destinations *)
  dropped_random : int;  (** lost to the loss-rate coin *)
  dropped_queue : int;  (** drop-tailed by a full bounded link FIFO *)
}

val create :
  sim:Sim.t ->
  graph:Graph_core.Graph.t ->
  ?latency:latency ->
  ?loss_rate:float ->
  ?processing_delay:float ->
  ?link_capacity:float ->
  ?queue_cap:int ->
  ?queue_policy:queue_policy ->
  ?bands:int ->
  ?band_weights:float array ->
  ?trace:Trace.t ->
  ?obs:Obs.Registry.t ->
  unit ->
  'msg t
(** New network; default latency is [constant_latency 1.0], default
    loss rate 0. With [?trace], every send and terminal outcome is
    recorded ({!Trace}).

    With [?obs] (default {!Obs.Registry.nil}), the network publishes
    into the registry as it runs: counters [net.sent], [net.delivered]
    and the three [net.dropped_*] reasons, the [net.latency] histogram
    of drawn link delays, the [net.queue_depth] histogram of receiver
    backlog (when [processing_delay > 0]), and
    [Crash]/[Recover]/[Link_down]/[Link_up]/[Loss_rate] span events for
    fault injection and healing. A disabled registry costs one branch
    per record and allocates nothing.

    [?processing_delay] (default 0) models receiver contention: each
    node handles one message per [processing_delay] time units, queueing
    arrivals FIFO — so a node's effective latency grows with its degree
    and message pressure, which is what makes constant-degree topologies
    attractive beyond edge counts.

    [?link_capacity] (default infinite) turns each directed edge into a
    bounded FIFO channel serving [link_capacity] messages per time
    unit; [?queue_cap] (default unbounded, must be ≥ 1) bounds its
    backlog and [?queue_policy] (default {!Drop_tail}) picks what a
    full queue does — see the link-capacity section above. The
    [net.link_queue] histogram records the occupancy seen by each
    admitted message.

    [?bands] (default 1) and [?band_weights] configure the strict-
    priority / weighted queueing plane — see the priority-bands section
    above.
    @raise Invalid_argument if [link_capacity] is not a positive finite
    rate, [queue_cap < 1], [bands] is outside [\[1, 4\]], or
    [band_weights] has the wrong length or a non-positive entry. *)

val create_csr :
  sim:Sim.t ->
  csr:Graph_core.Csr.t ->
  ?latency:latency ->
  ?loss_rate:float ->
  ?processing_delay:float ->
  ?link_capacity:float ->
  ?queue_cap:int ->
  ?queue_policy:queue_policy ->
  ?bands:int ->
  ?band_weights:float array ->
  ?trace:Trace.t ->
  ?obs:Obs.Registry.t ->
  unit ->
  'msg t
(** Like {!create}, but directly over a frozen CSR snapshot — the
    million-node path, where no mutable adjacency-set graph ever
    exists. {!graph} raises on such a network. *)

val graph : 'msg t -> Graph_core.Graph.t
(** The construction-side graph passed to {!create}. The network
    freezes a CSR snapshot of it at creation; later mutations of this
    graph are not observed by {!send}/{!fail_link}.
    @raise Invalid_argument on a network built with {!create_csr}. *)

val csr : 'msg t -> Graph_core.Csr.t
(** The frozen topology snapshot. Protocols should iterate neighbours
    from this (flat arrays) rather than from {!graph}. *)

val sim : 'msg t -> Sim.t

val obs : 'msg t -> Obs.Registry.t
(** The registry passed to {!create} ({!Obs.Registry.nil} if none). *)

val set_receiver : 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> unit
(** Install the protocol's receive handler (one per network). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Send over the edge (src,dst).
    @raise Invalid_argument if no such edge exists or [src] is crashed.
    The message is silently dropped (and counted) on link failure, the
    loss coin, or a crashed/crashing destination at delivery time. *)

val send_neighbors : ?except:int -> 'msg t -> src:int -> 'msg -> unit
(** Send [msg] over every edge incident to [src], in ascending
    neighbour order — exactly [send] per neighbour, minus the
    per-neighbour edge-membership check (the edges come from the
    network's own topology snapshot). [?except] skips one neighbour —
    the don't-echo-back rule of flooding. The flooding hot path.
    @raise Invalid_argument if [src] is out of range or crashed. *)

val send_neighbors_except : 'msg t -> src:int -> except:int -> 'msg -> unit
(** [send_neighbors] with a mandatory exclusion ([-1] for none). The
    optional argument above boxes a [Some] per call; per-delivery hot
    loops should use this variant instead. *)

val set_int_receiver : int t -> (dst:int -> src:int -> int -> unit) -> unit
(** Install the receive handler of an int-message network on both
    delivery planes: the slot plane of {!send}/{!send_neighbors} and
    the int plane of {!send_neighbors_int}. *)

val send_neighbors_int : int t -> src:int -> except:int -> int -> unit
(** {!send_neighbors_except} for networks whose message is a bare
    non-negative int (a hop count, a round number): the message rides
    the pooled event's payload word directly, skipping the slot-store
    round trip — the million-node flooding fast path. Seq numbers,
    counters, drop decisions and RNG draws match the slot plane message
    for message, and when the network is tracing the call transparently
    degrades to {!send_neighbors_except} so trace seqs are preserved.
    Deliveries arrive at the {!set_int_receiver} handler. *)

val send_int : int t -> src:int -> dst:int -> eidx:int -> int -> unit
(** One int-plane message over the directed edge whose CSR slot is
    [eidx] — the tree-forwarding hot path, where the caller (a
    {!Graph_core.Tree_pack}) already holds each parent→child slot, so
    neither [send]'s membership check nor its [edge_index] search is
    paid. Same counters, drop decisions and RNG discipline as
    {!send_neighbors_int}; degrades to the slot plane under tracing.
    [eidx] must be the slot of (src, dst) — unchecked.
    @raise Invalid_argument if [src] is crashed. *)

val link_usable : 'msg t -> src:int -> dst:int -> eidx:int -> bool
(** Would a send on this directed edge reach a live queue right now?
    [false] when the link is failed, [dst] is crashed, or a finite
    {!Drop_tail} FIFO is full ({!Block} always admits, so pressure
    alone never makes a link unusable). Evaluated at the same instant
    the network checks these on a send, so a protocol branching on it
    agrees with the drop accounting. [eidx] must be the slot of
    (src, dst) — unchecked. *)

val hottest_links : 'msg t -> max:int -> (int * int * int) list
(** The [max] directed links with the highest per-link occupancy
    high-water mark, as [(src, dst, peak)] sorted hottest first (ties
    to the lexicographically first link), links that never queued
    omitted. Unlike {!max_queue_backlog} this counts the occupancy
    seen by drop-tailed arrivals too — a saturated link rejecting
    everything is the hottest link there is. Empty without a finite
    capacity. *)

val crash : 'msg t -> int -> unit
(** Crash the node, effective immediately. Idempotent (only the first
    call emits a [Crash] span event). Messages already in flight to it
    are dropped only if they land while it is down — see the recovery
    semantics above. *)

val recover : 'msg t -> int -> unit
(** Bring a crashed node back up, effective immediately. Idempotent
    (only a transition emits a [Recover] span event). The node resumes
    receiving — including messages still in flight from before or
    during its crash window — and may send again. It does {e not}
    replay anything it missed; catch-up is the protocol's business
    (e.g. {!Flood.Reliable}'s anti-entropy). *)

val is_crashed : 'msg t -> int -> bool

val alive_mask : 'msg t -> bool array
(** Snapshot: [true] per currently live vertex. *)

val ever_crashed : 'msg t -> bool array
(** Snapshot: [true] per vertex that was {!crash}ed at least once over
    the run, whether or not it has since {!recover}ed — what lets a
    protocol audit distinguish "participated throughout" from "came
    back mid-run" without replaying the fault plan. *)

val fail_link : 'msg t -> int -> int -> unit
(** Fail the undirected link (both directions). Idempotent; the edge
    must exist in the topology. *)

val restore_link : 'msg t -> int -> int -> unit
(** Bring a failed link back up (both directions). Idempotent (only a
    transition emits a [Link_up] span event); the edge must exist in
    the topology. Messages dropped while the link was down stay lost. *)

val heal : 'msg t -> unit
(** Restore every currently failed link, in sorted link order (so the
    [Link_up] event sequence is deterministic). *)

val link_failed : 'msg t -> int -> int -> bool

val loss_rate : 'msg t -> float
(** The current i.i.d. message-loss probability. *)

val set_loss_rate : 'msg t -> float -> unit
(** Change the loss rate, effective for subsequent {!send}s (messages
    already in flight keep the coin they were tossed). Emits a
    [Loss_rate] span event when the value changes; [info] carries the
    new rate in parts per million.
    @raise Invalid_argument outside [\[0,1)]. *)

val stats : 'msg t -> stats
(** Cumulative counters. Under recovery, [dropped_crash] counts only
    messages that landed inside a crash window; deliveries after a
    {!recover} count as [delivered] (see the recovery semantics
    above). *)

val link_capacity : 'msg t -> float option
(** The per-link service rate, [None] when links are infinite. *)

val queue_cap : 'msg t -> int

val queue_policy : 'msg t -> queue_policy

val bands : 'msg t -> int
(** Number of priority bands (1 when none were configured). *)

val send_band : 'msg t -> int
(** The band subsequent sends are stamped with (initially the lowest
    priority, [bands − 1]). *)

val set_send_band : 'msg t -> int -> unit
(** Switch the sending band, effective for subsequent sends; messages
    already admitted keep their band. The idiom is bracketing: a
    control plane saves {!send_band}, raises to band 0 around its
    burst, and restores.
    @raise Invalid_argument outside [\[0, bands)]. *)

val band_stats : 'msg t -> band:int -> stats
(** Per-band counters: sends and send-side drops are attributed to the
    band current at send time, deliveries and crash drops to the band
    the message was stamped with. Sums over all bands equal {!stats};
    with a single band this {e is} {!stats}.
    @raise Invalid_argument outside [\[0, bands)]. *)

val max_queue_backlog : 'msg t -> int
(** High-water mark of any single link FIFO's occupancy over the run
    (0 without a finite capacity) — the queue-depth maximum that bench
    tables report. *)

val link_backlog_now : 'msg t -> src:int -> dst:int -> int
(** Current occupancy of the directed link's FIFO (messages admitted
    but not yet departed, the in-service one included). Always 0
    without a finite capacity.
    @raise Invalid_argument if the edge does not exist. *)
