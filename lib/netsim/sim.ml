module Prng = Graph_core.Prng
module Pqueue = Graph_core.Pqueue

type engine = Calendar | Heap

(* The event pool is chunked: capacity grows one fixed-size chunk at a
   time and chunks are never copied or freed, so a long run's memory is
   touched exactly once — no doubling copies, no munmap churn (page
   faults, not instructions, dominate at million-event scale). An event
   id is [chunk lsl chunk_bits lor offset]. 4096-entry chunks keep a
   short-lived simulator's setup cost at a few tens of KB while a
   million-event backlog still fits in a few hundred chunks. *)
let chunk_bits = 10

let chunk_len = 1 lsl chunk_bits

let chunk_mask = chunk_len - 1

(* Two ints carry a message event: [link] packs src/dst (31 bits each,
   [-1] marks a closure event), [tagpay] packs the payload over the
   2-bit tag. *)
let link_bits = 31

let link_mask = (1 lsl link_bits) - 1

let tag_bits = 2

let tag_mask = (1 lsl tag_bits) - 1

(* The calendar queue serves events year by year: the service window is
   [year*width, (year+1)*width). Entering a window partitions the home
   bucket's ids into [serving] (this year) and the compacted remainder
   (later years, same bucket modulo nbuckets). [serving] is kept sorted
   lazily: appends that arrive already in (time, seq) order — the
   steady state of constant-latency flooding — never trigger a sort. *)
type calendar = {
  width : float;
  nbuckets : int;  (* rounded up to a power of two *)
  bmask : int;  (* nbuckets - 1 *)
  bdata : int array array;  (* per-bucket event ids; inner arrays grow by doubling *)
  blen : int array;
  mutable year : int;
  mutable w0 : float;  (* width *. year — cached window bounds *)
  mutable w1 : float;  (* width *. (year + 1) *)
  mutable w2 : float;  (* width *. (year + 2): the next window, the steady-state insert target *)
  lt : float array;  (* length 1: time of the last serving append (float-array cell, unboxed) *)
  mutable last_id : int;  (* id of that append, for (time, seq) tie checks *)
  mutable serving : int array;
  mutable serve_len : int;
  mutable serve_pos : int;
  mutable sorted : bool;  (* [serving.(serve_pos .. serve_len-1)] ascending? *)
}

type queue = Cal of calendar | Hp of (float * int * int) Pqueue.t

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable pending : int;
  rng : Prng.t;
  m_events : Obs.Registry.counter;
  counting : bool;  (* cached [Obs.Registry.enabled obs] *)
  queue : queue;
  mutable handler : src:int -> dst:int -> tag:int -> payload:int -> unit;
  mutable handler_set : bool;
  (* chunked struct-of-arrays event pool, indexed by event id; a
     free-list stack recycles ids so steady-state message traffic
     allocates nothing *)
  mutable ev_time : float array array;
  mutable ev_seq : int array array;
  mutable ev_link : int array array;
  mutable ev_tagpay : int array array;
  mutable nchunks : int;
  mutable free : int array array;  (* id stack, chunked like the pool *)
  mutable free_top : int;
  (* closure events are the rare case: callbacks live in a small side
     table, referenced through [tagpay] *)
  mutable cbs : (unit -> unit) array;
  mutable cb_free : int array;
  mutable cb_free_top : int;
}

let no_callback () = ()

let default_handler ~src:_ ~dst:_ ~tag:_ ~payload:_ =
  invalid_arg "Sim: message event fired with no handler installed (set_message_handler)"

let create ?(seed = 0x51) ?(obs = Obs.Registry.nil) ?(engine = Calendar)
    ?(bucket_width = 1.0) ?(buckets = 512) () =
  if not (bucket_width > 0.0) then invalid_arg "Sim.create: bucket_width must be positive";
  if buckets < 1 then invalid_arg "Sim.create: buckets must be positive";
  let queue =
    match engine with
    | Calendar ->
        (* a power-of-two bucket count turns the per-event modulo into a
           mask; rounding up only changes the hash spread, never order *)
        let nbuckets =
          let b = ref 1 in
          while !b < buckets do
            b := 2 * !b
          done;
          !b
        in
        Cal
          {
            width = bucket_width;
            nbuckets;
            bmask = nbuckets - 1;
            bdata = Array.make nbuckets [||];
            blen = Array.make nbuckets 0;
            year = 0;
            w0 = 0.0;
            w1 = bucket_width;
            w2 = bucket_width *. 2.0;
            lt = [| 0.0 |];
            last_id = -1;
            serving = [||];
            serve_len = 0;
            serve_pos = 0;
            sorted = true;
          }
    | Heap ->
        Hp
          (Pqueue.create ~cmp:(fun (t1, s1, _) (t2, s2, _) ->
               match Float.compare t1 t2 with 0 -> compare (s1 : int) s2 | c -> c))
  in
  let t =
    {
      clock = 0.0;
      next_seq = 0;
      processed = 0;
      pending = 0;
      rng = Prng.create ~seed;
      m_events = Obs.Registry.counter obs "sim.events";
      counting = Obs.Registry.enabled obs;
      queue;
      handler = default_handler;
      handler_set = false;
      ev_time = [||];
      ev_seq = [||];
      ev_link = [||];
      ev_tagpay = [||];
      nchunks = 0;
      free = [||];
      free_top = 0;
      cbs = [||];
      cb_free = [||];
      cb_free_top = 0;
    }
  in
  Obs.Registry.set_clock obs (fun () -> t.clock);
  t

let engine t = match t.queue with Cal _ -> Calendar | Hp _ -> Heap

let now t = t.clock

let rng t = t.rng

let fork_rng t = Prng.split t.rng

(* -- event pool --------------------------------------------------------- *)

let[@inline] time_of t id =
  Array.unsafe_get (Array.unsafe_get t.ev_time (id lsr chunk_bits)) (id land chunk_mask)

let[@inline] seq_of t id =
  Array.unsafe_get (Array.unsafe_get t.ev_seq (id lsr chunk_bits)) (id land chunk_mask)

(* only reached with an empty free list *)
let add_chunk t =
  let c = t.nchunks in
  if c = Array.length t.ev_time then begin
    (* double the chunk spine (pointer arrays, a few hundred bytes) *)
    let spine a = Array.append a (Array.make (max 8 c) [||]) in
    t.ev_time <- spine t.ev_time;
    t.ev_seq <- spine t.ev_seq;
    t.ev_link <- spine t.ev_link;
    t.ev_tagpay <- spine t.ev_tagpay;
    t.free <- spine t.free
  end;
  t.ev_time.(c) <- Array.make chunk_len 0.0;
  t.ev_seq.(c) <- Array.make chunk_len 0;
  t.ev_link.(c) <- Array.make chunk_len (-1);
  t.ev_tagpay.(c) <- Array.make chunk_len 0;
  t.free.(c) <- Array.make chunk_len 0;
  t.nchunks <- c + 1;
  (* the free list is empty here, so the fresh ids occupy stack
     positions 0..chunk_len-1 — all inside free chunk 0 — stacked
     descending so the lowest id pops first *)
  let base = c lsl chunk_bits in
  let f0 = t.free.(0) in
  for i = 0 to chunk_len - 1 do
    f0.(i) <- base + chunk_len - 1 - i
  done;
  t.free_top <- chunk_len

let alloc_event t ~time =
  if t.free_top = 0 then add_chunk t;
  let p = t.free_top - 1 in
  t.free_top <- p;
  let id = Array.unsafe_get (Array.unsafe_get t.free (p lsr chunk_bits)) (p land chunk_mask) in
  Array.unsafe_set (Array.unsafe_get t.ev_time (id lsr chunk_bits)) (id land chunk_mask) time;
  Array.unsafe_set (Array.unsafe_get t.ev_seq (id lsr chunk_bits)) (id land chunk_mask) t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.pending <- t.pending + 1;
  id

let[@inline] release_event t id =
  let p = t.free_top in
  Array.unsafe_set (Array.unsafe_get t.free (p lsr chunk_bits)) (p land chunk_mask) id;
  t.free_top <- p + 1;
  t.pending <- t.pending - 1

let alloc_cb t cb =
  if t.cb_free_top = 0 then begin
    let cap = Array.length t.cbs in
    let ncap = if cap = 0 then 64 else 2 * cap in
    let ncbs = Array.make ncap no_callback in
    Array.blit t.cbs 0 ncbs 0 cap;
    t.cbs <- ncbs;
    let nf = Array.make ncap 0 in
    for i = 0 to ncap - cap - 1 do
      nf.(i) <- ncap - 1 - i
    done;
    t.cb_free <- nf;
    t.cb_free_top <- ncap - cap
  end;
  t.cb_free_top <- t.cb_free_top - 1;
  let s = t.cb_free.(t.cb_free_top) in
  t.cbs.(s) <- cb;
  s

(* -- calendar queue ----------------------------------------------------- *)

let ev_less t a b =
  let ta = time_of t a and tb = time_of t b in
  ta < tb || (ta = tb && seq_of t a < seq_of t b)

(* move the service window to [year], keeping the cached bounds in step.
   [w2] must equal the [w1] this window computes for [year + 1] exactly —
   same multiplication, same operands — so the steady-state insert fast
   path below agrees bit-for-bit with the serving filter. *)
let[@inline] cal_set_year cal year =
  cal.year <- year;
  cal.w0 <- cal.width *. float_of_int year;
  cal.w1 <- cal.width *. float_of_int (year + 1);
  cal.w2 <- cal.width *. float_of_int (year + 2)

let cal_push_bucket cal id b =
  let arr = Array.unsafe_get cal.bdata b in
  let len = Array.unsafe_get cal.blen b in
  if len = Array.length arr then begin
    let narr = Array.make (max 8 (2 * len)) 0 in
    Array.blit arr 0 narr 0 len;
    cal.bdata.(b) <- narr;
    narr.(len) <- id
  end
  else Array.unsafe_set arr len id;
  Array.unsafe_set cal.blen b (len + 1)

(* [time] is [time_of t id], already loaded by every caller. The sorted
   check compares against the previous append through the [lt]/[last_id]
   cache, so the monotone fast path never re-reads pool chunks. *)
let cal_push_serving t cal id time =
  if cal.serve_pos = cal.serve_len then begin
    cal.serve_pos <- 0;
    cal.serve_len <- 0;
    cal.sorted <- true
  end;
  let len = cal.serve_len in
  if len = Array.length cal.serving then begin
    let narr = Array.make (max 16 (2 * len)) 0 in
    Array.blit cal.serving 0 narr 0 len;
    cal.serving <- narr
  end;
  (if cal.sorted && len > cal.serve_pos then begin
     let lt = Array.unsafe_get cal.lt 0 in
     if time < lt then cal.sorted <- false
     else if time = lt && seq_of t id < seq_of t cal.last_id then cal.sorted <- false
   end);
  Array.unsafe_set cal.lt 0 time;
  cal.last_id <- id;
  Array.unsafe_set cal.serving len id;
  cal.serve_len <- len + 1

(* pull this year's events out of the window's home bucket *)
let cal_load_bucket t cal =
  let b = cal.year land cal.bmask in
  let len = Array.unsafe_get cal.blen b in
  if len > 0 then begin
    let w1 = cal.w1 in
    let arr = Array.unsafe_get cal.bdata b in
    let keep = ref 0 in
    for i = 0 to len - 1 do
      let id = Array.unsafe_get arr i in
      let tm = time_of t id in
      if tm < w1 then cal_push_serving t cal id tm
      else begin
        Array.unsafe_set arr !keep id;
        incr keep
      end
    done;
    Array.unsafe_set cal.blen b !keep
  end

(* The service window advanced past [time]'s year (peeks walk it forward
   over empty stretches): fold the unserved tail back into its home
   bucket and restart at [time]'s year. Time never runs backwards past
   the clock, so served events are unaffected. *)
let cal_rewind t cal time =
  let b = cal.year land cal.bmask in
  for i = cal.serve_pos to cal.serve_len - 1 do
    cal_push_bucket cal cal.serving.(i) b
  done;
  cal.serve_pos <- 0;
  cal.serve_len <- 0;
  cal.sorted <- true;
  cal_set_year cal (int_of_float (time /. cal.width));
  cal_load_bucket t cal

let cal_insert t cal id =
  let time = time_of t id in
  if time < cal.w0 then cal_rewind t cal time;
  if time < cal.w1 then cal_push_serving t cal id time
  else if time < cal.w2 then
    (* next year's window — the steady state of unit-latency flooding;
       [w2] matches the filter bound bit-for-bit, so no division *)
    cal_push_bucket cal id ((cal.year + 1) land cal.bmask)
  else cal_push_bucket cal id (int_of_float (time /. cal.width) land cal.bmask)

(* sort serving.(serve_pos .. serve_len-1) by (time, seq): quicksort down
   to short runs, then one insertion pass. Keys are distinct (seq is
   unique), so strict-less partitioning is safe. *)
let cal_sort t cal =
  let a = cal.serving in
  let rec quick lo hi =
    if hi - lo > 16 then begin
      let mid = lo + ((hi - lo) / 2) in
      let p1 = a.(lo) and p2 = a.(mid) and p3 = a.(hi - 1) in
      let pivot =
        if ev_less t p1 p2 then
          if ev_less t p2 p3 then p2 else if ev_less t p1 p3 then p3 else p1
        else if ev_less t p1 p3 then p1
        else if ev_less t p2 p3 then p3
        else p2
      in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while ev_less t a.(!i) pivot do
          incr i
        done;
        while ev_less t pivot a.(!j) do
          decr j
        done;
        if !i <= !j then begin
          let tmp = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      quick lo (!j + 1);
      quick !i hi
    end
  in
  quick cal.serve_pos cal.serve_len;
  for i = cal.serve_pos + 1 to cal.serve_len - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= cal.serve_pos && ev_less t x a.(!j) do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done;
  cal.sorted <- true;
  (* the append-monotonicity cache tracks the buffer's last element,
     which the sort has just moved — refresh it or the next append
     would compare against a mid-buffer key and miss an inversion *)
  let last = a.(cal.serve_len - 1) in
  Array.unsafe_set cal.lt 0 (time_of t last);
  cal.last_id <- last

(* the id of the earliest pending event, advancing the service window as
   needed; -1 when the queue is empty. Does not consume. *)
let cal_locate t cal =
  if t.pending = 0 then -1
  else if cal.serve_pos < cal.serve_len then begin
    if not cal.sorted then cal_sort t cal;
    cal.serving.(cal.serve_pos)
  end
  else begin
    let scanned = ref 0 in
    while cal.serve_pos >= cal.serve_len do
      if !scanned >= cal.nbuckets then begin
        (* a whole year of empty windows: jump straight to the earliest
           pending event instead of stepping bucket by bucket *)
        let best = ref infinity in
        for b = 0 to cal.nbuckets - 1 do
          let arr = Array.unsafe_get cal.bdata b in
          for i = 0 to Array.unsafe_get cal.blen b - 1 do
            let tm = time_of t (Array.unsafe_get arr i) in
            if tm < !best then best := tm
          done
        done;
        cal_set_year cal (int_of_float (!best /. cal.width));
        scanned := 0
      end
      else begin
        cal_set_year cal (cal.year + 1);
        incr scanned
      end;
      cal_load_bucket t cal
    done;
    if not cal.sorted then cal_sort t cal;
    cal.serving.(cal.serve_pos)
  end

(* -- scheduling --------------------------------------------------------- *)

let enqueue t id =
  match t.queue with
  | Cal cal -> cal_insert t cal id
  | Hp q -> Pqueue.push q (time_of t id, seq_of t id, id)

let[@inline] set_link t id v =
  Array.unsafe_set (Array.unsafe_get t.ev_link (id lsr chunk_bits)) (id land chunk_mask) v

let[@inline] set_tagpay t id v =
  Array.unsafe_set (Array.unsafe_get t.ev_tagpay (id lsr chunk_bits)) (id land chunk_mask) v

let schedule_at t ~time callback =
  if time < t.clock then invalid_arg "Sim.schedule_at: time is in the past";
  let slot = alloc_cb t callback in
  let id = alloc_event t ~time in
  set_link t id (-1);
  set_tagpay t id slot;
  enqueue t id

let schedule t ~delay callback =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) callback

let set_message_handler t f =
  if t.handler_set then invalid_arg "Sim.set_message_handler: handler already installed";
  t.handler_set <- true;
  t.handler <- f

let[@inline] message_core t ~time ~src ~dst ~tag ~payload =
  (* negative values have high bits set, so the shifts also catch them *)
  if (src lor dst) lsr link_bits <> 0 then
    invalid_arg "Sim.schedule_message: src/dst outside [0, 2^31)";
  if tag lsr tag_bits <> 0 then invalid_arg "Sim.schedule_message: tag outside [0, 4)";
  if payload < 0 then invalid_arg "Sim.schedule_message: negative payload";
  let id = alloc_event t ~time in
  set_link t id ((src lsl link_bits) lor dst);
  set_tagpay t id ((payload lsl tag_bits) lor tag);
  enqueue t id

let schedule_message t ~time ~src ~dst ~tag ~payload =
  if time < t.clock then invalid_arg "Sim.schedule_message: time is in the past";
  message_core t ~time ~src ~dst ~tag ~payload

(* The per-message hot path: saves the caller a [now] round trip (and
   the boxed float it would pass back) on every send. *)
let schedule_message_after t ~delay ~src ~dst ~tag ~payload =
  if delay < 0.0 then invalid_arg "Sim.schedule_message_after: negative delay";
  message_core t ~time:(t.clock +. delay) ~src ~dst ~tag ~payload

(* -- execution ---------------------------------------------------------- *)

let pop_next t =
  match t.queue with
  | Cal cal ->
      let id = cal_locate t cal in
      if id >= 0 then cal.serve_pos <- cal.serve_pos + 1;
      id
  | Hp q -> ( match Pqueue.pop q with Some (_, _, id) -> id | None -> -1)

let peek_id t =
  match t.queue with
  | Cal cal -> cal_locate t cal
  | Hp q -> ( match Pqueue.peek q with Some (_, _, id) -> id | None -> -1)

let step t =
  let id = pop_next t in
  if id < 0 then false
  else begin
    let c = id lsr chunk_bits and o = id land chunk_mask in
    t.clock <- Array.unsafe_get (Array.unsafe_get t.ev_time c) o;
    t.processed <- t.processed + 1;
    if t.counting then Obs.Registry.incr t.m_events;
    let link = Array.unsafe_get (Array.unsafe_get t.ev_link c) o in
    let tp = Array.unsafe_get (Array.unsafe_get t.ev_tagpay c) o in
    (* recycle before dispatch: the handler may schedule into this slot *)
    release_event t id;
    if link >= 0 then
      t.handler ~src:(link lsr link_bits) ~dst:(link land link_mask) ~tag:(tp land tag_mask)
        ~payload:(tp lsr tag_bits)
    else begin
      let cb = t.cbs.(tp) in
      t.cbs.(tp) <- no_callback;
      t.cb_free.(t.cb_free_top) <- tp;
      t.cb_free_top <- t.cb_free_top + 1;
      cb ()
    end;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        let id = peek_id t in
        if id < 0 || time_of t id > limit then continue := false
        else ignore (step t : bool)
      done

let events_processed t = t.processed

let pending t = t.pending
