module Prng = Graph_core.Prng
module Pqueue = Graph_core.Pqueue

type event = { time : float; seq : int; callback : unit -> unit }

type t = {
  queue : event Pqueue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  rng : Prng.t;
  m_events : Obs.Registry.counter;
}

let compare_event a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create ?(seed = 0x51) ?(obs = Obs.Registry.nil) () =
  let t =
    {
      queue = Pqueue.create ~cmp:compare_event;
      clock = 0.0;
      next_seq = 0;
      processed = 0;
      rng = Prng.create ~seed;
      m_events = Obs.Registry.counter obs "sim.events";
    }
  in
  Obs.Registry.set_clock obs (fun () -> t.clock);
  t

let now t = t.clock

let rng t = t.rng

let fork_rng t = Prng.split t.rng

let schedule_at t ~time callback =
  if time < t.clock then invalid_arg "Sim.schedule_at: time is in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Pqueue.push t.queue { time; seq; callback }

let schedule t ~delay callback =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) callback

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.processed <- t.processed + 1;
      Obs.Registry.incr t.m_events;
      ev.callback ();
      true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> ( match Pqueue.peek t.queue with Some ev -> ev.time <= limit | None -> false)
  in
  while continue () && step t do
    ()
  done

let events_processed t = t.processed

let pending t = Pqueue.length t.queue
