(** Discrete-event simulation engine.

    A classic event-queue simulator: callbacks scheduled at virtual
    times, executed in (time, insertion-sequence) order, so runs are
    fully deterministic given a seed — ties never depend on hash or
    allocation order. The engine knows nothing about networks; see
    {!Network} for the message-passing layer built on top. *)

type t

val create : ?seed:int -> ?obs:Obs.Registry.t -> unit -> t
(** Fresh simulator at time 0 with a deterministic RNG (default seed
    0x51). With [?obs], the registry's span-event clock is pointed at
    this simulation's virtual time and every executed event bumps the
    ["sim.events"] counter — the shared timeline that lets protocol
    spans, wire traces and metrics line up. *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Graph_core.Prng.t
(** The simulation's RNG stream. Draw all protocol randomness from here
    (or from {!fork_rng}) to keep runs reproducible. *)

val fork_rng : t -> Graph_core.Prng.t
(** An independent RNG stream split off the simulation's. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] time units from now. [delay] must be ≥ 0. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute virtual time ≥ {!now}. *)

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the queue, or stop (without executing further events) once the
    next event is strictly later than [until]. *)

val events_processed : t -> int

val pending : t -> int
(** Events still queued. *)
