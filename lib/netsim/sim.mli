(** Discrete-event simulation engine.

    Callbacks and messages scheduled at virtual times, executed in
    (time, insertion-sequence) order, so runs are fully deterministic
    given a seed — ties never depend on hash or allocation order. The
    engine knows nothing about networks; see {!Network} for the
    message-passing layer built on top.

    Two interchangeable queue engines produce the identical execution
    order:

    - {!Calendar} (default) — a calendar queue: events hash into time
      buckets of [bucket_width], and only the current service window is
      ever sorted. Constant-latency flooding appends in near-sorted
      order, so the common case is O(1) per event with zero allocation
      (event fields live in a recycled struct-of-arrays pool).
    - {!Heap} — the classic binary-heap ordering, kept as the reference
      implementation for differential tests.

    Messages are the allocation-free fast path: four integer fields
    ([src]/[dst]/[tag]/[payload]) delivered to a single pre-installed
    handler ({!set_message_handler}), instead of one closure per
    event. *)

type t

type engine =
  | Calendar  (** bucketed calendar queue — the default *)
  | Heap  (** reference binary heap, for differential testing *)

val create :
  ?seed:int ->
  ?obs:Obs.Registry.t ->
  ?engine:engine ->
  ?bucket_width:float ->
  ?buckets:int ->
  unit ->
  t
(** Fresh simulator at time 0 with a deterministic RNG (default seed
    0x51). With [?obs], the registry's span-event clock is pointed at
    this simulation's virtual time and every executed event bumps the
    ["sim.events"] counter — the shared timeline that lets protocol
    spans, wire traces and metrics line up.

    [bucket_width] (default 1.0) and [buckets] (default 512) shape the
    calendar queue; they affect performance only, never ordering. The
    defaults suit unit-latency networks, where one bucket holds one
    flood round. *)

val engine : t -> engine

val now : t -> float
(** Current virtual time. *)

val rng : t -> Graph_core.Prng.t
(** The simulation's RNG stream. Draw all protocol randomness from here
    (or from {!fork_rng}) to keep runs reproducible. *)

val fork_rng : t -> Graph_core.Prng.t
(** An independent RNG stream split off the simulation's. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] time units from now. [delay] must be ≥ 0. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute virtual time ≥ {!now}. *)

val set_message_handler :
  t -> (src:int -> dst:int -> tag:int -> payload:int -> unit) -> unit
(** Install the sink for message events. One handler per simulator — a
    second install raises — because messages carry no closure: whoever
    owns the handler owns the meaning of [tag]/[payload]. *)

val schedule_message :
  t -> time:float -> src:int -> dst:int -> tag:int -> payload:int -> unit
(** Schedule a message event at an absolute virtual time ≥ {!now}, to be
    delivered to the {!set_message_handler} sink. The four fields are
    packed into two pooled integers, so [src] and [dst] must lie in
    [0, 2^31), [tag] in [0, 4), and [payload] must be ≥ 0 (below 2^60).
    Allocation-free in steady state: the pool grows chunk-wise and never
    copies, so memory is touched once however large the backlog. *)

val schedule_message_after :
  t -> delay:float -> src:int -> dst:int -> tag:int -> payload:int -> unit
(** [schedule_message] at [now + delay]. The per-message hot path for
    senders that think in delays: one call instead of a {!now} round
    trip, and a constant [delay] costs no float boxing at the call
    site. @raise Invalid_argument on a negative [delay]. *)

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the queue, or stop (without executing further events) once the
    next event is strictly later than [until]. *)

val events_processed : t -> int

val pending : t -> int
(** Events still queued. *)
