module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Prng = Graph_core.Prng

type latency = Prng.t -> src:int -> dst:int -> float

let constant_latency l = fun _ ~src:_ ~dst:_ -> l

let uniform_latency ~lo ~hi =
  if lo < 0.0 || hi < lo then invalid_arg "Network.uniform_latency";
  fun rng ~src:_ ~dst:_ -> lo +. Prng.float rng (hi -. lo)

let exponential_latency ~mean =
  if mean <= 1.0 then invalid_arg "Network.exponential_latency: mean must exceed the 1.0 floor";
  fun rng ~src:_ ~dst:_ -> 1.0 +. Prng.exponential rng ~mean:(mean -. 1.0)

type stats = {
  sent : int;
  delivered : int;
  dropped_link : int;
  dropped_crash : int;
  dropped_random : int;
}

type 'msg t = {
  sim : Sim.t;
  graph : Graph.t;
  csr : Csr.t;  (** topology frozen at creation; every send checks it *)
  latency : latency;
  mutable loss_rate : float;
  trace : Trace.t option;
  processing_delay : float;
  next_free : float array;  (** per-node receiver availability time *)
  mutable next_seq : int;
  rng : Prng.t;
  crashed : bool array;
  failed_links : (int * int, unit) Hashtbl.t;
  mutable receiver : dst:int -> src:int -> 'msg -> unit;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_link : int;
  mutable dropped_crash : int;
  mutable dropped_random : int;
  obs : Obs.Registry.t;
  m_sent : Obs.Registry.counter;
  m_delivered : Obs.Registry.counter;
  m_dropped_link : Obs.Registry.counter;
  m_dropped_crash : Obs.Registry.counter;
  m_dropped_random : Obs.Registry.counter;
  h_latency : Obs.Registry.histogram;
  h_queue_depth : Obs.Registry.histogram;
}

let create ~sim ~graph ?(latency = constant_latency 1.0) ?(loss_rate = 0.0)
    ?(processing_delay = 0.0) ?trace ?(obs = Obs.Registry.nil) () =
  if loss_rate < 0.0 || loss_rate >= 1.0 then invalid_arg "Network.create: loss_rate outside [0,1)";
  if processing_delay < 0.0 then invalid_arg "Network.create: negative processing_delay";
  {
    sim;
    graph;
    csr = Csr.of_graph graph;
    latency;
    loss_rate;
    trace;
    processing_delay;
    next_free = Array.make (Graph.n graph) 0.0;
    next_seq = 0;
    rng = Sim.fork_rng sim;
    crashed = Array.make (Graph.n graph) false;
    failed_links = Hashtbl.create 16;
    receiver = (fun ~dst:_ ~src:_ _ -> ());
    sent = 0;
    delivered = 0;
    dropped_link = 0;
    dropped_crash = 0;
    dropped_random = 0;
    obs;
    m_sent = Obs.Registry.counter obs "net.sent";
    m_delivered = Obs.Registry.counter obs "net.delivered";
    m_dropped_link = Obs.Registry.counter obs "net.dropped_link";
    m_dropped_crash = Obs.Registry.counter obs "net.dropped_crash";
    m_dropped_random = Obs.Registry.counter obs "net.dropped_random";
    h_latency = Obs.Registry.histogram obs "net.latency" ~bounds:Obs.Registry.time_bounds;
    h_queue_depth =
      Obs.Registry.histogram obs "net.queue_depth" ~bounds:Obs.Registry.depth_bounds;
  }

let graph t = t.graph

let csr t = t.csr

let sim t = t.sim

let obs t = t.obs

let set_receiver t f = t.receiver <- f

let link_key u v = (min u v, max u v)

let is_crashed t v = t.crashed.(v)

let crash t v =
  if v < 0 || v >= Graph.n t.graph then invalid_arg "Network.crash: vertex out of range";
  if not t.crashed.(v) then Obs.Registry.event t.obs Obs.Registry.Crash ~node:v ~info:0;
  t.crashed.(v) <- true

let recover t v =
  if v < 0 || v >= Graph.n t.graph then invalid_arg "Network.recover: vertex out of range";
  if t.crashed.(v) then Obs.Registry.event t.obs Obs.Registry.Recover ~node:v ~info:0;
  t.crashed.(v) <- false

let alive_mask t = Array.map not t.crashed

let fail_link t u v =
  if not (Csr.mem_edge t.csr u v) then invalid_arg "Network.fail_link: no such edge";
  if not (Hashtbl.mem t.failed_links (link_key u v)) then
    Obs.Registry.event t.obs Obs.Registry.Link_down ~node:u ~info:v;
  Hashtbl.replace t.failed_links (link_key u v) ()

let restore_link t u v =
  if not (Csr.mem_edge t.csr u v) then invalid_arg "Network.restore_link: no such edge";
  if Hashtbl.mem t.failed_links (link_key u v) then begin
    Obs.Registry.event t.obs Obs.Registry.Link_up ~node:u ~info:v;
    Hashtbl.remove t.failed_links (link_key u v)
  end

let heal t =
  (* sorted so the Link_up event order is independent of hash layout *)
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) t.failed_links [] in
  List.iter (fun (u, v) -> restore_link t u v) (List.sort compare keys)

let link_failed t u v = Hashtbl.mem t.failed_links (link_key u v)

let loss_rate t = t.loss_rate

let set_loss_rate t r =
  if r < 0.0 || r >= 1.0 then invalid_arg "Network.set_loss_rate: loss_rate outside [0,1)";
  if r <> t.loss_rate then
    Obs.Registry.event t.obs Obs.Registry.Loss_rate ~node:0
      ~info:(int_of_float (Float.round (r *. 1e6)));
  t.loss_rate <- r

let emit t kind ~src ~dst ~seq =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.record tr { Trace.time = Sim.now t.sim; kind; src; dst; seq }

let send t ~src ~dst msg =
  if not (Csr.mem_edge t.csr src dst) then invalid_arg "Network.send: no such edge";
  if t.crashed.(src) then invalid_arg "Network.send: source is crashed";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.sent <- t.sent + 1;
  Obs.Registry.incr t.m_sent;
  emit t Trace.Sent ~src ~dst ~seq;
  if link_failed t src dst then begin
    t.dropped_link <- t.dropped_link + 1;
    Obs.Registry.incr t.m_dropped_link;
    emit t Trace.Dropped_link ~src ~dst ~seq
  end
  else if t.loss_rate > 0.0 && Prng.float t.rng 1.0 < t.loss_rate then begin
    t.dropped_random <- t.dropped_random + 1;
    Obs.Registry.incr t.m_dropped_random;
    emit t Trace.Dropped_random ~src ~dst ~seq
  end
  else begin
    let delay = t.latency t.rng ~src ~dst in
    if delay < 0.0 then invalid_arg "Network.send: latency model produced a negative delay";
    if Obs.Registry.enabled t.obs then Obs.Registry.observe t.h_latency delay;
    let deliver () =
      if t.crashed.(dst) then begin
        t.dropped_crash <- t.dropped_crash + 1;
        Obs.Registry.incr t.m_dropped_crash;
        emit t Trace.Dropped_crash ~src ~dst ~seq
      end
      else begin
        t.delivered <- t.delivered + 1;
        Obs.Registry.incr t.m_delivered;
        emit t Trace.Delivered ~src ~dst ~seq;
        t.receiver ~dst ~src msg
      end
    in
    Sim.schedule t.sim ~delay (fun () ->
        if t.processing_delay = 0.0 then deliver ()
        else begin
          (* FIFO receiver queue: one message per processing_delay *)
          let start = Float.max (Sim.now t.sim) t.next_free.(dst) in
          let finish = start +. t.processing_delay in
          if Obs.Registry.enabled t.obs then
            Obs.Registry.observe t.h_queue_depth
              ((start -. Sim.now t.sim) /. t.processing_delay);
          t.next_free.(dst) <- finish;
          Sim.schedule_at t.sim ~time:finish deliver
        end)
  end

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped_link = t.dropped_link;
    dropped_crash = t.dropped_crash;
    dropped_random = t.dropped_random;
  }
