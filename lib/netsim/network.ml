module Graph = Graph_core.Graph
module Csr = Graph_core.Csr
module Prng = Graph_core.Prng

type latency = Prng.t -> src:int -> dst:int -> float

let constant_latency l = fun _ ~src:_ ~dst:_ -> l

let uniform_latency ~lo ~hi =
  if lo < 0.0 || hi < lo then invalid_arg "Network.uniform_latency";
  fun rng ~src:_ ~dst:_ -> lo +. Prng.float rng (hi -. lo)

let exponential_latency ~mean =
  if mean <= 1.0 then invalid_arg "Network.exponential_latency: mean must exceed the 1.0 floor";
  fun rng ~src:_ ~dst:_ -> 1.0 +. Prng.exponential rng ~mean:(mean -. 1.0)

type queue_policy = Drop_tail | Block

type stats = {
  sent : int;
  delivered : int;
  dropped_link : int;
  dropped_crash : int;
  dropped_random : int;
  dropped_queue : int;
}

(* In-flight messages ride the Sim event pool as packed ints; the
   ['msg] itself and its trace seq are parked in a recycled slot store,
   with the slot id as the event payload. Event tags encode the
   delivery phase: [tag_arrival] fires when the link latency has
   elapsed, [tag_deliver] when a positive processing delay has also
   elapsed. Like the Sim pool, the slot store is chunked — growth never
   copies or frees, so backlog memory is touched exactly once. *)
let tag_arrival = 0

let tag_deliver = 1

(* The int plane: an [int t]'s message can ride the event payload word
   itself, skipping the slot store round trip. Only reachable through
   [send_neighbors_int], which the interface restricts to [int t], and
   only taken when tracing is off (the slot store is what parks a
   message's trace seq). *)
let tag_int_arrival = 2

let tag_int_deliver = 3

(* Priority bands: with [bands > 1] the sending band rides the event
   payload word above the slot id / int message, so the delivery side
   can account per band. Sim packs [payload lsl 2 | tag] into one OCaml
   int, leaving 61 bits — band bits 58..59 keep every slot id and every
   int-plane message (< 2^58 by contract) intact. Single-band networks
   never encode, so their payload words — and hence their executions —
   are bit-identical to the pre-band engine. *)
let band_shift = 58

let band_payload_mask = (1 lsl band_shift) - 1

let max_bands = 4

let chunk_bits = 10

let chunk_len = 1 lsl chunk_bits

let chunk_mask = chunk_len - 1

type 'msg t = {
  sim : Sim.t;
  graph : Graph.t option;  (** only when built from a mutable graph *)
  csr : Csr.t;  (** topology frozen at creation; every send checks it *)
  latency : latency;
  unit_latency : bool;  (** no model given: constant 1.0 without the closure call *)
  obs_on : bool;  (** cached [Obs.Registry.enabled obs] — registries never toggle *)
  mutable loss_rate : float;
  trace : Trace.t option;
  processing_delay : float;
  next_free : float array;  (** per-node receiver availability time *)
  cap_on : bool;  (** a finite link capacity was given *)
  service : float;  (** per-message service time = 1 / capacity (0 when [cap_on] is false) *)
  capacity : float;  (** messages per time unit per directed link (0 = infinite) *)
  queue_cap : int;  (** max backlog per directed link {e per band}, in-service message included *)
  queue_policy : queue_policy;
  bands : int;  (** priority bands on the FIFO plane; band 0 is highest *)
  band_service : float array;
      (** per-band service time = [service /. weight] (length [bands];
          empty when [cap_on] is false) *)
  mutable send_band : int;  (** band stamped on subsequent sends *)
  nslots : int;  (** [Csr.degree_sum csr] — the per-band stride of [link_free] *)
  link_free : float array;
      (** per-band, per-directed-edge (index [band * nslots + slot])
          time the band's share of the link finishes its current
          backlog; occupancy is implicit —
          [ceil ((free - now) / band_service)] — so a bounded FIFO
          costs no events and no allocation *)
  link_peak : int array;
      (** band-major high-water mark of the occupancy seen by arrivals
          (admitted or drop-tailed) — the per-link breakdown behind
          [max_backlog], feeding {!hottest_links} *)
  b_sent : int array;  (** per-band counters; [[||]] when [bands = 1] (global stats suffice) *)
  b_delivered : int array;
  b_dropped_link : int array;
  b_dropped_crash : int array;
  b_dropped_random : int array;
  b_dropped_queue : int array;
  mutable next_seq : int;
  rng : Prng.t;
  crashed : bool array;
  was_crashed : bool array;
      (** sticky: set by {!crash}, never cleared — the post-run record
          of which nodes a fault plan ever took down *)
  failed_links : (int * int, unit) Hashtbl.t;
  mutable failed_count : int;  (** = Hashtbl.length failed_links, kept for the send fast path *)
  tracing : bool;  (** trace <> None — gates the per-slot seq bookkeeping *)
  mutable receiver : dst:int -> src:int -> 'msg -> unit;
  mutable int_receiver : dst:int -> src:int -> int -> unit;
      (** the int plane's sink — only installed on [int t] networks *)
  mutable slots : 'msg array array;
  mutable slot_seq : int array array;
  mutable slot_nchunks : int;
  mutable slot_free : int array array;
  mutable slot_free_top : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_link : int;
  mutable dropped_crash : int;
  mutable dropped_random : int;
  mutable dropped_queue : int;
  mutable max_backlog : int;  (** high-water mark of any link's FIFO occupancy *)
  obs : Obs.Registry.t;
  m_sent : Obs.Registry.counter;
  m_delivered : Obs.Registry.counter;
  m_dropped_link : Obs.Registry.counter;
  m_dropped_crash : Obs.Registry.counter;
  m_dropped_random : Obs.Registry.counter;
  m_dropped_queue : Obs.Registry.counter;
  h_latency : Obs.Registry.histogram;
  h_queue_depth : Obs.Registry.histogram;
  h_link_queue : Obs.Registry.histogram;
}

(* -- payload slot store ------------------------------------------------- *)

(* only reached with an empty free list; [msg] doubles as the new
   chunk's fill element so no dummy ['msg] is ever needed *)
let add_slot_chunk t msg =
  let c = t.slot_nchunks in
  if c = Array.length t.slots then begin
    let spine a = Array.append a (Array.make (max 8 c) [||]) in
    t.slots <- spine t.slots;
    t.slot_seq <- spine t.slot_seq;
    t.slot_free <- spine t.slot_free
  end;
  t.slots.(c) <- Array.make chunk_len msg;
  t.slot_seq.(c) <- (if t.tracing then Array.make chunk_len 0 else [||]);
  t.slot_free.(c) <- Array.make chunk_len 0;
  t.slot_nchunks <- c + 1;
  (* empty free list: the fresh ids occupy stack positions
     0..chunk_len-1 in free chunk 0, descending so the lowest pops
     first *)
  let base = c lsl chunk_bits in
  let f0 = t.slot_free.(0) in
  for i = 0 to chunk_len - 1 do
    f0.(i) <- base + chunk_len - 1 - i
  done;
  t.slot_free_top <- chunk_len

let alloc_slot t msg seq =
  if t.slot_free_top = 0 then add_slot_chunk t msg;
  let p = t.slot_free_top - 1 in
  t.slot_free_top <- p;
  let s =
    Array.unsafe_get (Array.unsafe_get t.slot_free (p lsr chunk_bits)) (p land chunk_mask)
  in
  Array.unsafe_set (Array.unsafe_get t.slots (s lsr chunk_bits)) (s land chunk_mask) msg;
  if t.tracing then
    Array.unsafe_set (Array.unsafe_get t.slot_seq (s lsr chunk_bits)) (s land chunk_mask) seq;
  s

(* -- delivery sink ------------------------------------------------------ *)

let emit t kind ~src ~dst ~seq =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.record tr { Trace.time = Sim.now t.sim; kind; src; dst; seq }

let deliver t ~src ~dst slot =
  let band, slot =
    if t.bands > 1 then (slot lsr band_shift, slot land band_payload_mask) else (0, slot)
  in
  let msg = Array.unsafe_get (Array.unsafe_get t.slots (slot lsr chunk_bits)) (slot land chunk_mask) in
  let seq =
    if t.tracing then
      Array.unsafe_get (Array.unsafe_get t.slot_seq (slot lsr chunk_bits)) (slot land chunk_mask)
    else 0
  in
  let p = t.slot_free_top in
  Array.unsafe_set (Array.unsafe_get t.slot_free (p lsr chunk_bits)) (p land chunk_mask) slot;
  t.slot_free_top <- p + 1;
  (* [dst] came off a CSR row, so it is in range *)
  if Array.unsafe_get t.crashed dst then begin
    t.dropped_crash <- t.dropped_crash + 1;
    if t.bands > 1 then t.b_dropped_crash.(band) <- t.b_dropped_crash.(band) + 1;
    Obs.Registry.incr t.m_dropped_crash;
    emit t Trace.Dropped_crash ~src ~dst ~seq
  end
  else begin
    t.delivered <- t.delivered + 1;
    if t.bands > 1 then t.b_delivered.(band) <- t.b_delivered.(band) + 1;
    if t.obs_on then Obs.Registry.incr t.m_delivered;
    if t.tracing then emit t Trace.Delivered ~src ~dst ~seq;
    t.receiver ~dst ~src msg
  end

(* same accounting as [deliver], minus the slot round trip; never
   reached with tracing on, so no seq and no emits *)
let deliver_int t ~src ~dst hop =
  let band, hop =
    if t.bands > 1 then (hop lsr band_shift, hop land band_payload_mask) else (0, hop)
  in
  if Array.unsafe_get t.crashed dst then begin
    t.dropped_crash <- t.dropped_crash + 1;
    if t.bands > 1 then t.b_dropped_crash.(band) <- t.b_dropped_crash.(band) + 1;
    Obs.Registry.incr t.m_dropped_crash
  end
  else begin
    t.delivered <- t.delivered + 1;
    if t.bands > 1 then t.b_delivered.(band) <- t.b_delivered.(band) + 1;
    if t.obs_on then Obs.Registry.incr t.m_delivered;
    t.int_receiver ~dst ~src hop
  end

(* FIFO receiver queue: one message per processing_delay *)
let queue_processing t ~src ~dst ~tag ~payload =
  let now = Sim.now t.sim in
  let start = Float.max now t.next_free.(dst) in
  let finish = start +. t.processing_delay in
  if Obs.Registry.enabled t.obs then
    Obs.Registry.observe t.h_queue_depth ((start -. now) /. t.processing_delay);
  t.next_free.(dst) <- finish;
  Sim.schedule_message t.sim ~time:finish ~src ~dst ~tag ~payload

let handle t ~src ~dst ~tag ~payload =
  if tag >= tag_int_arrival then begin
    if tag = tag_int_arrival && t.processing_delay > 0.0 then
      queue_processing t ~src ~dst ~tag:tag_int_deliver ~payload
    else deliver_int t ~src ~dst payload
  end
  else if tag = tag_arrival && t.processing_delay > 0.0 then
    queue_processing t ~src ~dst ~tag:tag_deliver ~payload
  else deliver t ~src ~dst payload

let make ~sim ~graph ~csr ?latency ?(loss_rate = 0.0)
    ?(processing_delay = 0.0) ?link_capacity ?(queue_cap = max_int)
    ?(queue_policy = Drop_tail) ?(bands = 1) ?band_weights ?trace
    ?(obs = Obs.Registry.nil) () =
  if loss_rate < 0.0 || loss_rate >= 1.0 then invalid_arg "Network.create: loss_rate outside [0,1)";
  if processing_delay < 0.0 then invalid_arg "Network.create: negative processing_delay";
  let capacity = match link_capacity with Some c -> c | None -> 0.0 in
  (match link_capacity with
  | Some c when not (c > 0.0) || not (Float.is_finite c) ->
      invalid_arg "Network.create: link_capacity must be a positive finite rate"
  | _ -> ());
  if queue_cap < 1 then invalid_arg "Network.create: queue_cap must be at least 1";
  if bands < 1 || bands > max_bands then
    invalid_arg (Printf.sprintf "Network.create: bands must be in [1, %d]" max_bands);
  (match band_weights with
  | None -> ()
  | Some w ->
      if Array.length w <> bands then
        invalid_arg "Network.create: band_weights length must equal bands";
      Array.iter
        (fun x ->
          if not (x > 0.0) || not (Float.is_finite x) then
            invalid_arg "Network.create: band weights must be positive finite")
        w);
  let cap_on = capacity > 0.0 in
  let service = if cap_on then 1.0 /. capacity else 0.0 in
  let nslots = Csr.degree_sum csr in
  let t =
    {
      sim;
      graph;
      csr;
      latency = (match latency with Some l -> l | None -> constant_latency 1.0);
      unit_latency = latency = None;
      obs_on = Obs.Registry.enabled obs;
      loss_rate;
      trace;
      processing_delay;
      next_free = Array.make (Csr.n csr) 0.0;
      cap_on;
      service;
      capacity;
      queue_cap;
      queue_policy;
      bands;
      band_service =
        (if not cap_on then [||]
         else
           match band_weights with
           | None -> Array.make bands service
           | Some w -> Array.map (fun x -> service /. x) w);
      (* default to the lowest band: data traffic needs no opt-in, and a
         control plane opts {e up} around each burst via set_send_band *)
      send_band = bands - 1;
      nslots;
      link_free = (if cap_on then Array.make (bands * nslots) 0.0 else [||]);
      link_peak = (if cap_on then Array.make (bands * nslots) 0 else [||]);
      b_sent = (if bands > 1 then Array.make bands 0 else [||]);
      b_delivered = (if bands > 1 then Array.make bands 0 else [||]);
      b_dropped_link = (if bands > 1 then Array.make bands 0 else [||]);
      b_dropped_crash = (if bands > 1 then Array.make bands 0 else [||]);
      b_dropped_random = (if bands > 1 then Array.make bands 0 else [||]);
      b_dropped_queue = (if bands > 1 then Array.make bands 0 else [||]);
      next_seq = 0;
      rng = Sim.fork_rng sim;
      crashed = Array.make (Csr.n csr) false;
      was_crashed = Array.make (Csr.n csr) false;
      failed_links = Hashtbl.create 16;
      failed_count = 0;
      tracing = trace <> None;
      receiver = (fun ~dst:_ ~src:_ _ -> ());
      int_receiver = (fun ~dst:_ ~src:_ _ -> ());
      slots = [||];
      slot_seq = [||];
      slot_nchunks = 0;
      slot_free = [||];
      slot_free_top = 0;
      sent = 0;
      delivered = 0;
      dropped_link = 0;
      dropped_crash = 0;
      dropped_random = 0;
      dropped_queue = 0;
      max_backlog = 0;
      obs;
      m_sent = Obs.Registry.counter obs "net.sent";
      m_delivered = Obs.Registry.counter obs "net.delivered";
      m_dropped_link = Obs.Registry.counter obs "net.dropped_link";
      m_dropped_crash = Obs.Registry.counter obs "net.dropped_crash";
      m_dropped_random = Obs.Registry.counter obs "net.dropped_random";
      m_dropped_queue = Obs.Registry.counter obs "net.dropped_queue";
      h_latency = Obs.Registry.histogram obs "net.latency" ~bounds:Obs.Registry.time_bounds;
      h_queue_depth =
        Obs.Registry.histogram obs "net.queue_depth" ~bounds:Obs.Registry.depth_bounds;
      h_link_queue =
        Obs.Registry.histogram obs "net.link_queue" ~bounds:Obs.Registry.depth_bounds;
    }
  in
  (* one network per simulator: the Sim message sink is ours alone *)
  Sim.set_message_handler sim (fun ~src ~dst ~tag ~payload -> handle t ~src ~dst ~tag ~payload);
  t

let create ~sim ~graph ?latency ?loss_rate ?processing_delay ?link_capacity ?queue_cap
    ?queue_policy ?bands ?band_weights ?trace ?obs () =
  make ~sim ~graph:(Some graph) ~csr:(Csr.of_graph graph) ?latency ?loss_rate ?processing_delay
    ?link_capacity ?queue_cap ?queue_policy ?bands ?band_weights ?trace ?obs ()

let create_csr ~sim ~csr ?latency ?loss_rate ?processing_delay ?link_capacity ?queue_cap
    ?queue_policy ?bands ?band_weights ?trace ?obs () =
  make ~sim ~graph:None ~csr ?latency ?loss_rate ?processing_delay ?link_capacity ?queue_cap
    ?queue_policy ?bands ?band_weights ?trace ?obs ()

let graph t =
  match t.graph with
  | Some g -> g
  | None -> invalid_arg "Network.graph: network was created from a CSR snapshot (use Network.csr)"

let csr t = t.csr

let sim t = t.sim

let obs t = t.obs

let set_receiver t f = t.receiver <- f

(* installing on both planes keeps delivery uniform whether a given
   message rode the int plane or (tracing) fell back to the slot plane *)
let set_int_receiver t f =
  t.receiver <- f;
  t.int_receiver <- f

let link_key u v = (min u v, max u v)

let is_crashed t v = t.crashed.(v)

let crash t v =
  if v < 0 || v >= Csr.n t.csr then invalid_arg "Network.crash: vertex out of range";
  if not t.crashed.(v) then Obs.Registry.event t.obs Obs.Registry.Crash ~node:v ~info:0;
  t.crashed.(v) <- true;
  t.was_crashed.(v) <- true

let recover t v =
  if v < 0 || v >= Csr.n t.csr then invalid_arg "Network.recover: vertex out of range";
  if t.crashed.(v) then Obs.Registry.event t.obs Obs.Registry.Recover ~node:v ~info:0;
  t.crashed.(v) <- false

let alive_mask t = Array.map not t.crashed

let ever_crashed t = Array.copy t.was_crashed

let fail_link t u v =
  if not (Csr.mem_edge t.csr u v) then invalid_arg "Network.fail_link: no such edge";
  if not (Hashtbl.mem t.failed_links (link_key u v)) then begin
    Obs.Registry.event t.obs Obs.Registry.Link_down ~node:u ~info:v;
    Hashtbl.replace t.failed_links (link_key u v) ();
    t.failed_count <- t.failed_count + 1
  end

let restore_link t u v =
  if not (Csr.mem_edge t.csr u v) then invalid_arg "Network.restore_link: no such edge";
  if Hashtbl.mem t.failed_links (link_key u v) then begin
    Obs.Registry.event t.obs Obs.Registry.Link_up ~node:u ~info:v;
    Hashtbl.remove t.failed_links (link_key u v);
    t.failed_count <- t.failed_count - 1
  end

let heal t =
  (* sorted so the Link_up event order is independent of hash layout *)
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) t.failed_links [] in
  List.iter (fun (u, v) -> restore_link t u v) (List.sort compare keys)

let link_failed t u v = Hashtbl.mem t.failed_links (link_key u v)

let loss_rate t = t.loss_rate

let set_loss_rate t r =
  if r < 0.0 || r >= 1.0 then invalid_arg "Network.set_loss_rate: loss_rate outside [0,1)";
  if r <> t.loss_rate then
    Obs.Registry.event t.obs Obs.Registry.Loss_rate ~node:0
      ~info:(int_of_float (Float.round (r *. 1e6)));
  t.loss_rate <- r

(* -- bounded per-link FIFO ---------------------------------------------- *)

(* With a finite capacity, directed edge [eidx] serves one message per
   [service] time units; [link_free.(band * nslots + eidx)] is when the
   band's share of its current backlog drains. Occupancy is recovered
   arithmetically from that single float — no departure events, no
   allocation — and the admission decision depends only on [now] and
   prior sends on the same link, both of which the Calendar and Heap
   engines agree on, so queued streams stay byte-identical across
   engines.

   With [bands > 1], a band-[b] arrival waits behind the backlogs of
   every band of equal or higher priority (0..b) but never behind a
   lower one — strict priority with at most the one message already in
   service ahead of the high band, the standard zero-preemption model.
   A message already admitted keeps its departure time: priority steers
   future admissions, it does not recall the past. Occupancy and
   [queue_cap] are per band, so a saturated bulk band cannot drop-tail
   the control band. *)
let link_backlog_band t ~band ~eidx ~now =
  let free = Array.unsafe_get t.link_free ((band * t.nslots) + eidx) in
  if free > now then
    int_of_float
      (Float.ceil (((free -. now) /. Array.unsafe_get t.band_service band) -. 1e-9))
  else 0

let link_backlog t ~eidx ~now = link_backlog_band t ~band:t.send_band ~eidx ~now

(* Departure time of the admitted message, or [-1.0] for a drop-tail
   rejection (full queue under [Drop_tail]; [Block] always admits). *)
let link_admit t ~band ~eidx ~now =
  let backlog = link_backlog_band t ~band ~eidx ~now in
  let slot = (band * t.nslots) + eidx in
  (* the per-link peak counts rejected arrivals too: a saturated link
     that drop-tails everything is the hottest link there is *)
  if backlog > Array.unsafe_get t.link_peak slot then Array.unsafe_set t.link_peak slot backlog;
  if backlog >= t.queue_cap && t.queue_policy = Drop_tail then -1.0
  else begin
    if backlog > t.max_backlog then t.max_backlog <- backlog;
    if t.obs_on then Obs.Registry.observe t.h_link_queue (float_of_int backlog);
    (* start behind every equal-or-higher-priority backlog on this link;
       for [bands = 1] the loop reads the one float the old engine read,
       so the arithmetic — and the bytes downstream — are unchanged *)
    let start = ref now in
    for b = 0 to band do
      let f = Array.unsafe_get t.link_free ((b * t.nslots) + eidx) in
      if f > !start then start := f
    done;
    let depart = !start +. Array.unsafe_get t.band_service band in
    Array.unsafe_set t.link_free slot depart;
    depart
  end

(* The edge and source-crash preconditions are the caller's; everything
   after is the steady-state hot path — no closures, no tuples (the
   failed-links probe is skipped while the table is empty), no
   allocation once the slot and event pools are warm. [eidx] is the
   directed edge's CSR slot, consulted only under a finite
   [link_capacity]. *)
let unchecked_send t ~src ~dst ~eidx msg =
  let band = t.send_band in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.sent <- t.sent + 1;
  if t.bands > 1 then t.b_sent.(band) <- t.b_sent.(band) + 1;
  if t.obs_on then Obs.Registry.incr t.m_sent;
  if t.tracing then emit t Trace.Sent ~src ~dst ~seq;
  if t.failed_count > 0 && link_failed t src dst then begin
    t.dropped_link <- t.dropped_link + 1;
    if t.bands > 1 then t.b_dropped_link.(band) <- t.b_dropped_link.(band) + 1;
    Obs.Registry.incr t.m_dropped_link;
    emit t Trace.Dropped_link ~src ~dst ~seq
  end
  else if t.loss_rate > 0.0 && Prng.float t.rng 1.0 < t.loss_rate then begin
    t.dropped_random <- t.dropped_random + 1;
    if t.bands > 1 then t.b_dropped_random.(band) <- t.b_dropped_random.(band) + 1;
    Obs.Registry.incr t.m_dropped_random;
    emit t Trace.Dropped_random ~src ~dst ~seq
  end
  else if t.cap_on then begin
    let now = Sim.now t.sim in
    let depart = link_admit t ~band ~eidx ~now in
    if depart < 0.0 then begin
      t.dropped_queue <- t.dropped_queue + 1;
      if t.bands > 1 then t.b_dropped_queue.(band) <- t.b_dropped_queue.(band) + 1;
      Obs.Registry.incr t.m_dropped_queue;
      emit t Trace.Dropped_queue ~src ~dst ~seq
    end
    else begin
      let delay =
        if t.unit_latency then 1.0
        else begin
          let d = t.latency t.rng ~src ~dst in
          if d < 0.0 then invalid_arg "Network.send: latency model produced a negative delay";
          d
        end
      in
      if t.obs_on then Obs.Registry.observe t.h_latency delay;
      let slot = alloc_slot t msg seq in
      let payload = if t.bands > 1 then (band lsl band_shift) lor slot else slot in
      Sim.schedule_message t.sim ~time:(depart +. delay) ~src ~dst ~tag:tag_arrival ~payload
    end
  end
  else begin
    let delay =
      if t.unit_latency then 1.0
      else begin
        let d = t.latency t.rng ~src ~dst in
        if d < 0.0 then invalid_arg "Network.send: latency model produced a negative delay";
        d
      end
    in
    if t.obs_on then Obs.Registry.observe t.h_latency delay;
    let slot = alloc_slot t msg seq in
    let payload = if t.bands > 1 then (band lsl band_shift) lor slot else slot in
    Sim.schedule_message_after t.sim ~delay ~src ~dst ~tag:tag_arrival ~payload
  end

let send t ~src ~dst msg =
  if not (Csr.mem_edge t.csr src dst) then invalid_arg "Network.send: no such edge";
  if t.crashed.(src) then invalid_arg "Network.send: source is crashed";
  let eidx = if t.cap_on then Csr.edge_index t.csr src dst else -1 in
  unchecked_send t ~src ~dst ~eidx msg

(* Non-optional variant: the flooding hot loop calls this once per
   delivered message, and an optional [?except] would box a [Some] on
   every call. Pass [-1] for no exclusion. *)
let send_neighbors_except t ~src ~except msg =
  if src < 0 || src >= Csr.n t.csr then invalid_arg "Network.send_neighbors: vertex out of range";
  if Array.unsafe_get t.crashed src then invalid_arg "Network.send_neighbors: source is crashed";
  (* edges come from our own frozen CSR row, so the per-neighbour edge
     membership check that [send] must do is free here *)
  (* the loop index [i] is the directed edge's CSR slot — the per-link
     queue key comes for free on the fan-out path *)
  match Csr.storage t.csr with
  | Csr.Ints { offsets; neighbors } ->
      for i = offsets.(src) to offsets.(src + 1) - 1 do
        let dst = neighbors.(i) in
        if dst <> except then unchecked_send t ~src ~dst ~eidx:i msg
      done
  | Csr.Big { offsets; neighbors } ->
      for i = Bigarray.Array1.unsafe_get offsets src
            to Bigarray.Array1.unsafe_get offsets (src + 1) - 1 do
        let dst = Bigarray.Array1.unsafe_get neighbors i in
        if dst <> except then unchecked_send t ~src ~dst ~eidx:i msg
      done

let send_neighbors ?(except = -1) t ~src msg = send_neighbors_except t ~src ~except msg

(* [unchecked_send] with the hop riding the event payload word: same
   seq consumption, same counters, same drop decisions and RNG draws,
   so stats agree with the slot plane message for message *)
let unchecked_send_int t ~src ~dst ~eidx hop =
  let band = t.send_band in
  t.next_seq <- t.next_seq + 1;
  t.sent <- t.sent + 1;
  if t.bands > 1 then t.b_sent.(band) <- t.b_sent.(band) + 1;
  if t.obs_on then Obs.Registry.incr t.m_sent;
  if t.failed_count > 0 && link_failed t src dst then begin
    t.dropped_link <- t.dropped_link + 1;
    if t.bands > 1 then t.b_dropped_link.(band) <- t.b_dropped_link.(band) + 1;
    Obs.Registry.incr t.m_dropped_link
  end
  else if t.loss_rate > 0.0 && Prng.float t.rng 1.0 < t.loss_rate then begin
    t.dropped_random <- t.dropped_random + 1;
    if t.bands > 1 then t.b_dropped_random.(band) <- t.b_dropped_random.(band) + 1;
    Obs.Registry.incr t.m_dropped_random
  end
  else if t.cap_on then begin
    let now = Sim.now t.sim in
    let depart = link_admit t ~band ~eidx ~now in
    if depart < 0.0 then begin
      t.dropped_queue <- t.dropped_queue + 1;
      if t.bands > 1 then t.b_dropped_queue.(band) <- t.b_dropped_queue.(band) + 1;
      Obs.Registry.incr t.m_dropped_queue
    end
    else begin
      let delay =
        if t.unit_latency then 1.0
        else begin
          let d = t.latency t.rng ~src ~dst in
          if d < 0.0 then invalid_arg "Network.send: latency model produced a negative delay";
          d
        end
      in
      if t.obs_on then Obs.Registry.observe t.h_latency delay;
      let payload = if t.bands > 1 then (band lsl band_shift) lor hop else hop in
      Sim.schedule_message t.sim ~time:(depart +. delay) ~src ~dst ~tag:tag_int_arrival ~payload
    end
  end
  else begin
    let delay =
      if t.unit_latency then 1.0
      else begin
        let d = t.latency t.rng ~src ~dst in
        if d < 0.0 then invalid_arg "Network.send: latency model produced a negative delay";
        d
      end
    in
    if t.obs_on then Obs.Registry.observe t.h_latency delay;
    let payload = if t.bands > 1 then (band lsl band_shift) lor hop else hop in
    Sim.schedule_message_after t.sim ~delay ~src ~dst ~tag:tag_int_arrival ~payload
  end

let send_neighbors_int t ~src ~except hop =
  if t.tracing then
    (* trace seqs live in the slot store; take the slow plane *)
    send_neighbors_except t ~src ~except hop
  else begin
    if src < 0 || src >= Csr.n t.csr then
      invalid_arg "Network.send_neighbors: vertex out of range";
    if Array.unsafe_get t.crashed src then
      invalid_arg "Network.send_neighbors: source is crashed";
    match Csr.storage t.csr with
    | Csr.Ints { offsets; neighbors } ->
        for i = offsets.(src) to offsets.(src + 1) - 1 do
          let dst = neighbors.(i) in
          if dst <> except then unchecked_send_int t ~src ~dst ~eidx:i hop
        done
    | Csr.Big { offsets; neighbors } ->
        for i = Bigarray.Array1.unsafe_get offsets src
              to Bigarray.Array1.unsafe_get offsets (src + 1) - 1 do
          let dst = Bigarray.Array1.unsafe_get neighbors i in
          if dst <> except then unchecked_send_int t ~src ~dst ~eidx:i hop
        done
  end

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped_link = t.dropped_link;
    dropped_crash = t.dropped_crash;
    dropped_random = t.dropped_random;
    dropped_queue = t.dropped_queue;
  }

let link_capacity t = if t.cap_on then Some t.capacity else None

let queue_cap t = t.queue_cap

let queue_policy t = t.queue_policy

let bands t = t.bands

let send_band t = t.send_band

let set_send_band t band =
  if band < 0 || band >= t.bands then invalid_arg "Network.set_send_band: band out of range";
  t.send_band <- band

let band_stats t ~band =
  if band < 0 || band >= t.bands then invalid_arg "Network.band_stats: band out of range";
  if t.bands = 1 then
    {
      sent = t.sent;
      delivered = t.delivered;
      dropped_link = t.dropped_link;
      dropped_crash = t.dropped_crash;
      dropped_random = t.dropped_random;
      dropped_queue = t.dropped_queue;
    }
  else
    {
      sent = t.b_sent.(band);
      delivered = t.b_delivered.(band);
      dropped_link = t.b_dropped_link.(band);
      dropped_crash = t.b_dropped_crash.(band);
      dropped_random = t.b_dropped_random.(band);
      dropped_queue = t.b_dropped_queue.(band);
    }

let max_queue_backlog t = t.max_backlog

let link_backlog_now t ~src ~dst =
  if not t.cap_on then 0
  else begin
    let eidx = Csr.edge_index t.csr src dst in
    if eidx < 0 then invalid_arg "Network.link_backlog_now: no such edge";
    link_backlog t ~eidx ~now:(Sim.now t.sim)
  end

(* Single-edge int-plane send with the caller-supplied CSR slot: the
   tree-forwarding hot path, where the packing already carries each
   parent→child slot so neither the membership check nor the
   [edge_index] binary search of [send] is paid. Degrades to the slot
   plane under tracing, exactly like [send_neighbors_int]. *)
let send_int t ~src ~dst ~eidx hop =
  if Array.unsafe_get t.crashed src then invalid_arg "Network.send_int: source is crashed";
  if t.tracing then unchecked_send t ~src ~dst ~eidx hop
  else unchecked_send_int t ~src ~dst ~eidx hop

(* Would a send on this directed edge reach a live queue right now?
   Evaluated at send time, the same instant the network itself checks
   link state — so a protocol branching on it and the drop accounting
   can never disagree. A full Drop_tail FIFO counts as unusable; Block
   always admits, so pressure alone never trips the fallback. *)
let link_usable t ~src ~dst ~eidx =
  (not (t.failed_count > 0 && link_failed t src dst))
  && (not (Array.unsafe_get t.crashed dst))
  && ((not t.cap_on)
     || t.queue_policy = Block
     || link_backlog t ~eidx ~now:(Sim.now t.sim) < t.queue_cap)

let hottest_links t ~max:limit =
  if (not t.cap_on) || limit <= 0 then []
  else begin
    let peak = Array.make limit 0 in
    let lsrc = Array.make limit 0 in
    let ldst = Array.make limit 0 in
    let filled = ref 0 in
    let slot = ref 0 in
    for src = 0 to Csr.n t.csr - 1 do
      Csr.iter_neighbors t.csr src (fun dst ->
          (* a link's heat is its hottest band *)
          let p = ref (Array.unsafe_get t.link_peak !slot) in
          for b = 1 to t.bands - 1 do
            let q = Array.unsafe_get t.link_peak ((b * t.nslots) + !slot) in
            if q > !p then p := q
          done;
          let p = !p in
          incr slot;
          if p > 0 && (!filled < limit || p > peak.(limit - 1)) then begin
            (* insert after equal peaks: slots walk ascending (src, dst),
               so ties resolve to the lexicographically first link —
               deterministic whatever the engine or pool size *)
            let i = ref 0 in
            while !i < !filled && peak.(!i) >= p do
              incr i
            done;
            if !i < limit then begin
              let last = min !filled (limit - 1) in
              for j = last downto !i + 1 do
                peak.(j) <- peak.(j - 1);
                lsrc.(j) <- lsrc.(j - 1);
                ldst.(j) <- ldst.(j - 1)
              done;
              peak.(!i) <- p;
              lsrc.(!i) <- src;
              ldst.(!i) <- dst;
              if !filled < limit then incr filled
            end
          end)
    done;
    let acc = ref [] in
    for i = !filled - 1 downto 0 do
      acc := (lsrc.(i), ldst.(i), peak.(i)) :: !acc
    done;
    !acc
  end
