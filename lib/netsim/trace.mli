(** Network event traces.

    A recorder that {!Network} writes into when attached: one event per
    message send and per terminal outcome (delivery or one of the drop
    reasons), each stamped with virtual time and a per-message sequence
    number. Used by the test-suite to assert causality (every delivery
    has an earlier matching send, latencies are respected) and by
    protocol debugging to reconstruct exactly what happened on the
    wire. *)

type kind =
  | Sent
  | Delivered
  | Dropped_link
  | Dropped_crash
  | Dropped_random
  | Dropped_queue  (** drop-tail: the link's bounded FIFO was full at send *)

type event = {
  time : float;
  kind : kind;
  src : int;
  dst : int;
  seq : int;  (** per-network message number, assigned at send *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of the most recent [capacity] events (default 1_000_000).
    Older events are discarded silently — {!dropped_events} tells how
    many. *)

val record : t -> event -> unit
(** Append an event (called by {!Network}). *)

val events : t -> event list
(** Retained events, oldest first. *)

val count : t -> int
(** Retained event count. *)

val dropped_events : t -> int
(** Events evicted by the ring buffer. *)

val kind_name : kind -> string

val pp_event : Format.formatter -> event -> unit
