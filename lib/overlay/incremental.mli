(** In-place incremental LHG growth — one peer per join, stable ids.

    {!Membership} measures the cost of *canonical rebuilds*; this module
    implements the constructive content of the K-DIAMOND existence proof
    as actual overlay operations, so a join touches O(k²) edges and no
    peer ever changes identity. Each join applies exactly one of the
    proof's steps to the current frontier parent:

    - [Added_leaf] — a new shared leaf under the active parent
      (+k edges), allowed up to k−2 per parent (rule 5d);
    - [Group_formed] — the parent's k−2 added leaves, one shared leaf
      and the new peer fuse into an unshared k-clique leaf (rule 4),
      dropping each absorbed leaf to a single parent edge;
    - [Group_converted] — a full parent's next clique leaf becomes the k
      copies of a new internal node whose k−1 shared-leaf children are
      the rewired added leaves plus the new peer — the height-growth
      step, applied in breadth-first parent order so the tree stays
      balanced.

    Every intermediate graph is a valid LHG for its size (tested against
    the independent verifier), and the graph is k-regular exactly at the
    REG_KDIAMOND sizes. *)

type op = Added_leaf | Group_formed | Group_converted

type join_report = {
  op : op;
  new_vertex : int;  (** the id assigned to the joining peer *)
  edges_added : int;
  edges_removed : int;
}

type t

val start : ?obs:Obs.Registry.t -> k:int -> unit -> t
(** The base overlay: (2k, k) — k root copies fully joined to k shared
    leaves. Requires k ≥ 3 (k = 2 has no added-leaf budget to drive the
    state machine). With [?obs], every join/leave records into the
    [incremental.cost] rewiring histogram and emits a
    [Churn_join]/[Churn_leave] span event stamped with the post-op
    overlay size ([node] = the peer's id, [info] = edges touched). *)

val graph : t -> Graph_core.Graph.t
(** The live topology. Treat as read-only. *)

val n : t -> int

val k : t -> int

val join : t -> join_report
(** Admit one peer. *)

val leave : t -> (join_report, Error.t) result
(** Remove the most recently admitted peer by undoing its join in place
    (same O(k²) edge budget; the report mirrors the undone operation
    with added/removed counts swapped). Stack discipline: an arbitrary
    departure is handled at the application layer by letting the newest
    peer adopt the departing peer's role, so the overlay only ever
    retires the newest id. Fails with {!Error.At_base_size} at the base
    size 2k. *)

val joins : t -> count:int -> join_report list
(** [count] consecutive joins, reports in order. *)

val total_rewired : t -> int
(** Cumulative edges added + removed over all joins so far. *)

val op_name : op -> string
