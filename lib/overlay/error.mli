(** The one error type of the overlay layer.

    Every fallible overlay operation — building a topology, resizing it,
    running a churn walk, feeding the reconfiguration controller — fails
    with a value of this type, so callers match on structure instead of
    parsing strings, and the CLI prints every failure uniformly. *)

type t =
  | No_topology of { family : string; n : int; k : int; reason : string }
      (** The family has no graph at (n,k): JD gaps, n < 2k, k < 2 —
          [reason] carries the construction's own diagnosis. *)
  | Below_floor of { family : string; target : int; floor : int }
      (** A shrink request would take the overlay below its minimum
          size (2k for the constructive families). *)
  | At_base_size of { k : int }
      (** {!Incremental.leave} on an engine already at its 2k base. *)
  | Invalid_probability of float  (** [join_probability] outside [0,1] (or NaN). *)
  | Invalid_steps of int  (** negative step count. *)
  | Invalid_trace of { line : int; reason : string }
      (** A controller request trace that does not parse. *)
  | Node_cap of { requested : int; cap : int }
      (** A size request above the configured node cap — refused up
          front instead of letting the build run the machine out of
          memory. The CLI cap comes from [LHG_MAX_NODES]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
